// Protocol-zoo comparison suite.
//
// Three obligations for the early-stopping/authenticated baselines:
//  * Domination order: on shared worlds, P_opt decides no later than P_es,
//    and P_es no later than P_basic — per agent, exhaustively on small
//    shapes (representative-world sweep) and on seeded samples at n=8.
//  * The analytic crossover: at f=0 the early stoppers decide in round 2
//    while P_min sits at its fixed t+2; at f=t they match P_opt's round 3
//    on Example 7.1's worst case.
//  * Engine agreement for the per-destination wire path: E_auth (the first
//    non-broadcast exchange) must produce identical records and accounting
//    across simulate(), a bare Stepper, and the worker-pool workload
//    driver — the three-engine differential that replaced PR 3's broadcast
//    static_assert.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "action/authenticated.hpp"
#include "action/early_stop.hpp"
#include "core/spec.hpp"
#include "exchange/authenticated.hpp"
#include "exchange/report.hpp"
#include "failure/canonical.hpp"
#include "failure/generators.hpp"
#include "failure/orbit_sweep.hpp"
#include "net/workload.hpp"
#include "sim/drivers.hpp"
#include "sim/simulator.hpp"
#include "sim/stepper.hpp"
#include "stats/rng.hpp"

namespace eba {
namespace {

std::vector<Value> all_ones(int n) {
  return std::vector<Value>(static_cast<std::size_t>(n), Value::one);
}

// ---------------------------------------------------------------------------
// Domination: P_opt ≤ P_es ≤ P_basic, per agent, on shared worlds
// ---------------------------------------------------------------------------

void expect_domination(const FailurePattern& alpha,
                       const std::vector<Value>& prefs, const RunDriver& opt,
                       const RunDriver& es, const RunDriver& basic,
                       const std::string& what) {
  const RunSummary r_opt = opt(alpha, prefs);
  const RunSummary r_es = es(alpha, prefs);
  const RunSummary r_basic = basic(alpha, prefs);
  for (AgentId i = 0; i < alpha.n(); ++i) {
    const int o = r_opt.round_of(i);
    const int e = r_es.round_of(i);
    const int b = r_basic.round_of(i);
    ASSERT_GT(o, 0) << what << " agent " << i << " undecided under P_opt";
    ASSERT_GT(e, 0) << what << " agent " << i << " undecided under P_es";
    ASSERT_GT(b, 0) << what << " agent " << i << " undecided under P_basic";
    EXPECT_LE(o, e) << what << ": P_opt later than P_es at agent " << i;
    EXPECT_LE(e, b) << what << ": P_es later than P_basic at agent " << i;
  }
}

struct Shape {
  int n;
  int t;
};

class ZooDomination : public ::testing::TestWithParam<Shape> {};

TEST_P(ZooDomination, ExhaustiveOnSmallShapes) {
  const auto [n, t] = GetParam();
  EnumerationConfig cfg{.n = n, .t = t, .rounds = 2};
  const RunDriver opt = make_fip_driver(n, t);
  const RunDriver es = make_early_stop_driver(n, t);
  const RunDriver basic = make_basic_driver(n, t);
  const std::uint64_t covered = for_each_representative_world(
      cfg, [&](const FailurePattern& alpha, const std::vector<Value>& p,
               std::uint64_t /*weight*/) {
        expect_domination(alpha, p, opt, es, basic, "exhaustive");
        return !::testing::Test::HasFailure();
      });
  EXPECT_EQ(covered, count_adversaries(cfg) * (std::uint64_t{1} << cfg.n));
}

INSTANTIATE_TEST_SUITE_P(Shapes, ZooDomination,
                         ::testing::Values(Shape{3, 1}, Shape{4, 1},
                                           Shape{4, 2}, Shape{5, 2}),
                         [](const ::testing::TestParamInfo<Shape>& pinfo) {
                           return "n" + std::to_string(pinfo.param.n) + "t" +
                                  std::to_string(pinfo.param.t);
                         });

TEST(ZooDomination, SampledWorldsAtN8) {
  const int n = 8;
  const int t = 2;
  const RunDriver opt = make_fip_driver(n, t);
  const RunDriver es = make_early_stop_driver(n, t);
  const RunDriver basic = make_basic_driver(n, t);
  Rng rng(0x200d);
  for (int k = 0; k < 60; ++k) {
    const auto alpha = sample_adversary(n, t, t + 2, 0.4, rng);
    const auto prefs = sample_preferences(n, rng);
    expect_domination(alpha, prefs, opt, es, basic,
                      "sampled iter=" + std::to_string(k));
    if (::testing::Test::HasFailure()) break;
  }
}

// P_auth rides the same evidence through signed per-destination messages:
// under omission failures (nobody forges) its decision rounds must equal
// P_es's on every shared world.
TEST(ZooDomination, AuthMatchesEarlyStopRounds) {
  const int n = 8;
  const int t = 2;
  const RunDriver es = make_early_stop_driver(n, t);
  const RunDriver auth = make_auth_driver(n, t);
  Rng rng(0xa07b);
  for (int k = 0; k < 40; ++k) {
    const auto alpha = sample_adversary(n, t, t + 2, 0.4, rng);
    const auto prefs = sample_preferences(n, rng);
    const RunSummary r_es = es(alpha, prefs);
    const RunSummary r_auth = auth(alpha, prefs);
    for (AgentId i = 0; i < n; ++i)
      EXPECT_EQ(r_es.round_of(i), r_auth.round_of(i))
          << "iter " << k << " agent " << i;
    // The signatures are pure overhead under omissions: same message count,
    // 64 extra bits each.
    EXPECT_EQ(r_auth.messages_sent, r_es.messages_sent) << "iter " << k;
    EXPECT_EQ(r_auth.bits_sent,
              r_es.bits_sent + 64 * r_es.messages_sent)
        << "iter " << k;
  }
}

// ---------------------------------------------------------------------------
// The analytic crossover: where early stopping beats the t+1-style baselines
// ---------------------------------------------------------------------------

TEST(ZooCrossover, FailureFreePinsRoundTwoAgainstPMinTPlusTwo) {
  const int n = 8;
  const int t = 3;
  const auto alpha = FailurePattern::failure_free(n);
  const auto prefs = all_ones(n);
  const RunSummary r_min = make_min_driver(n, t)(alpha, prefs);
  const RunSummary r_es = make_early_stop_driver(n, t)(alpha, prefs);
  const RunSummary r_auth = make_auth_driver(n, t)(alpha, prefs);
  const RunSummary r_opt = make_fip_driver(n, t)(alpha, prefs);
  for (AgentId i = 0; i < n; ++i) {
    // f=0: the count test (|faults ∪ zeros| = 0 < time) fires at time 1.
    EXPECT_EQ(r_es.round_of(i), 2) << "agent " << i;
    EXPECT_EQ(r_auth.round_of(i), 2) << "agent " << i;
    EXPECT_EQ(r_opt.round_of(i), 2) << "agent " << i;
    // P_min cannot stop early: unanimous 1 always costs t+2 rounds.
    EXPECT_EQ(r_min.round_of(i), t + 2) << "agent " << i;
  }
}

TEST(ZooCrossover, WorstCaseFEqualsTMatchesPOptRoundThree) {
  // Example 7.1's world (t silent faulty agents, unanimous 1) at n=8, t=2:
  // f = t is early stopping's worst case — the budget-common test pins the
  // faulty set in round 2 and decides in round 3, exactly P_opt's round.
  const int n = 8;
  const int t = 2;
  AgentSet silent;
  for (AgentId i = 0; i < t; ++i) silent.insert(i);
  const auto alpha = silent_agents_pattern(n, silent, t + 3);
  const auto prefs = all_ones(n);
  const RunSummary r_es = make_early_stop_driver(n, t)(alpha, prefs);
  const RunSummary r_opt = make_fip_driver(n, t)(alpha, prefs);
  for (AgentId i : alpha.nonfaulty()) {
    EXPECT_EQ(r_es.round_of(i), 3) << "agent " << i;
    EXPECT_EQ(r_opt.round_of(i), 3) << "agent " << i;
  }
}

// ---------------------------------------------------------------------------
// Three-engine differential for the per-destination wire path
// ---------------------------------------------------------------------------

void expect_records_equal(const RunRecord& got, const RunRecord& want,
                          const std::string& what) {
  EXPECT_EQ(got.n, want.n) << what;
  EXPECT_EQ(got.t, want.t) << what;
  ASSERT_EQ(got.rounds, want.rounds) << what;
  EXPECT_EQ(got.inits, want.inits) << what;
  EXPECT_EQ(got.nonfaulty, want.nonfaulty) << what;
  EXPECT_EQ(got.actions, want.actions) << what;
  EXPECT_EQ(got.sent, want.sent) << what;
  EXPECT_EQ(got.delivered, want.delivered) << what;
}

template <class X, class P>
void expect_three_engines_agree(const X& x, const P& p, int n, int t,
                                std::uint64_t seed, int count,
                                const std::string& name) {
  // Shared seeded worlds.
  std::vector<InstanceSpec> specs;
  Rng rng(seed);
  for (int k = 0; k < count; ++k)
    specs.push_back({sample_adversary(n, t, t + 2, 0.4, rng),
                     sample_preferences(n, rng)});

  // Engine 3: the worker-pool workload driver (serialize µ → byte bus with
  // per-(from,to) payloads → decode → δ).
  WorkloadOptions wopt;
  wopt.workers = 2;
  const auto pooled = run_workload(x, p, std::span(specs), t, wopt);
  ASSERT_EQ(pooled.instances.size(), specs.size());

  for (int k = 0; k < count; ++k) {
    const auto& alpha = specs[static_cast<std::size_t>(k)].alpha;
    const auto& prefs = specs[static_cast<std::size_t>(k)].inits;
    const std::string what = name + " iter=" + std::to_string(k);

    // Engine 1: simulate() (stepper + materializing sink).
    const auto sim = simulate(x, p, alpha, prefs, t);

    // Engine 2: a bare stepper.
    Stepper<X, P> stepper(x, p, alpha, prefs, t, StepperOptions{});
    while (stepper.step()) {
    }

    expect_records_equal(stepper.record(), sim.record, what + " [stepper]");
    EXPECT_EQ(stepper.bits_sent(), sim.bits_sent) << what;
    EXPECT_EQ(stepper.messages_sent(), sim.messages_sent) << what;

    const auto& wire = pooled.instances[static_cast<std::size_t>(k)];
    expect_records_equal(wire.record, sim.record, what + " [workload]");

    EXPECT_TRUE(check_eba(sim.record).ok()) << what;
  }
}

TEST(ZooWirePath, AuthThreeEngineDifferential) {
  const int n = 5;
  const int t = 2;
  expect_three_engines_agree(AuthExchange(n, t, kDefaultAuthKey), PAuth(n, t),
                             n, t, 0x3e9, 12, "E_auth");
}

TEST(ZooWirePath, ReportThreeEngineDifferential) {
  // The broadcast sibling through the same wire path: E_report payloads
  // round-trip the byte bus with the one-decode-per-sender fan-out.
  const int n = 5;
  const int t = 2;
  expect_three_engines_agree(ReportExchange(n, t), PEarlyStop(n, t), n, t,
                             0x3ea, 12, "E_report");
}

// ---------------------------------------------------------------------------
// Signature semantics: a bad signature is an omission, not a crash
// ---------------------------------------------------------------------------

TEST(ZooAuth, TamperedSignatureConvictsTheSender) {
  const int n = 4;
  const int t = 1;
  const AuthExchange x(n, t, kDefaultAuthKey);
  AuthState s = x.initial_state(0, Value::one);

  // A full round-1 inbox of honest payloads for agent 0...
  std::vector<std::optional<AuthMsg>> inbox;
  for (AgentId j = 0; j < n; ++j) {
    AuthState sender = x.initial_state(j, Value::one);
    inbox.push_back(x.message(sender, Action::noop(), /*dest=*/0));
  }
  // ...except agent 2's signature is flipped.
  inbox[2]->sig ^= 1;

  x.update(s, Action::noop(),
           std::span<const std::optional<AuthMsg>>(inbox));
  EXPECT_TRUE(s.faults.contains(2)) << "forged payload must convict";
  EXPECT_EQ(s.faults.size(), 1);

  // A payload signed for another destination is equally dead: replay
  // agent 3's report addressed to agent 1 into agent 0's inbox.
  AuthState s2 = x.initial_state(0, Value::one);
  std::vector<std::optional<AuthMsg>> replay;
  for (AgentId j = 0; j < n; ++j) {
    AuthState sender = x.initial_state(j, Value::one);
    replay.push_back(
        x.message(sender, Action::noop(), /*dest=*/j == 3 ? 1 : 0));
  }
  x.update(s2, Action::noop(),
           std::span<const std::optional<AuthMsg>>(replay));
  EXPECT_TRUE(s2.faults.contains(3)) << "cross-destination replay must fail";
}

}  // namespace
}  // namespace eba
