// Equivalence suite for the instance-oriented run engine.
//
// The refactor's correctness oracle is RunRecord equality: the in-place
// Stepper behind simulate(), the opt-in trace-sink materialization, the
// single-instance run_cluster wrapper, the legacy thread-per-agent cluster,
// and the many-instance worker-pool workload must all reproduce the seed
// simulator's semantics (tests/reference_simulator.hpp, kept verbatim)
// for seeded (pattern, preferences) sweeps across P_min / P_basic / P_opt —
// including the early-decide and max_rounds-truncation edges.
#include <gtest/gtest.h>

#include "action/p_basic.hpp"
#include "action/p_min.hpp"
#include "action/p_opt.hpp"
#include "core/spec.hpp"
#include "failure/generators.hpp"
#include "net/cluster.hpp"
#include "net/workload.hpp"
#include "reference_simulator.hpp"
#include "sim/simulator.hpp"
#include "sim/stepper.hpp"
#include "stats/rng.hpp"

namespace eba {
namespace {

void expect_records_equal(const RunRecord& got, const RunRecord& want,
                          const std::string& what) {
  EXPECT_EQ(got.n, want.n) << what;
  EXPECT_EQ(got.t, want.t) << what;
  ASSERT_EQ(got.rounds, want.rounds) << what;
  EXPECT_EQ(got.inits, want.inits) << what;
  EXPECT_EQ(got.nonfaulty, want.nonfaulty) << what;
  EXPECT_EQ(got.actions, want.actions) << what;
  EXPECT_EQ(got.sent, want.sent) << what;
  EXPECT_EQ(got.delivered, want.delivered) << what;
}

template <class X, class P>
void expect_engine_matches_reference(const X& x, const P& p,
                                     const FailurePattern& alpha,
                                     const std::vector<Value>& inits, int t,
                                     const SimulateOptions& opt,
                                     const std::string& what) {
  const auto want = testing::reference_simulate(x, p, alpha, inits, t, opt);

  // simulate(): Stepper + MaterializingSink, byte-compatible Run<X>.
  const auto got = simulate(x, p, alpha, inits, t, opt);
  expect_records_equal(got.record, want.record, what + " [simulate]");
  EXPECT_EQ(got.bits_sent, want.bits_sent) << what;
  EXPECT_EQ(got.messages_sent, want.messages_sent) << what;
  ASSERT_EQ(got.states.size(), want.states.size()) << what;
  for (std::size_t m = 0; m < want.states.size(); ++m)
    EXPECT_EQ(got.states[m], want.states[m]) << what << " states at time " << m;

  // A bare Stepper (no sink): identical record, identical final states.
  StepperOptions sopt;
  sopt.max_rounds = opt.max_rounds;
  sopt.stop_when_all_decided = opt.stop_when_all_decided;
  Stepper<X, P> stepper(x, p, alpha, inits, t, sopt);
  while (stepper.step()) {
  }
  EXPECT_EQ(stepper.bits_sent(), want.bits_sent) << what;
  EXPECT_EQ(stepper.messages_sent(), want.messages_sent) << what;
  expect_records_equal(stepper.record(), want.record, what + " [stepper]");
  EXPECT_EQ(stepper.states(), want.states.back()) << what << " final states";
}

template <class MakeX, class MakeP>
void sweep_protocol(MakeX make_x, MakeP make_p, int n, int t,
                    std::uint64_t seed, int iterations,
                    const std::string& name) {
  const auto x = make_x(n);
  const auto p = make_p(n, t);
  Rng rng(seed);
  for (int k = 0; k < iterations; ++k) {
    const auto alpha = sample_adversary(n, t, t + 2, 0.4, rng);
    const auto prefs = sample_preferences(n, rng);
    const std::string what = name + " seed=" + std::to_string(seed) +
                             " iter=" + std::to_string(k);
    // Default early-stopping semantics.
    expect_engine_matches_reference(x, p, alpha, prefs, t, SimulateOptions{},
                                    what);
    // max_rounds truncation: a horizon so short runs are cut mid-protocol.
    SimulateOptions truncated;
    truncated.max_rounds = 2;
    expect_engine_matches_reference(x, p, alpha, prefs, t, truncated,
                                    what + " truncated");
    // No early stop: the run must cover the whole horizon even after
    // every agent decided.
    SimulateOptions full;
    full.max_rounds = t + 3;
    full.stop_when_all_decided = false;
    expect_engine_matches_reference(x, p, alpha, prefs, t, full,
                                    what + " no-early-stop");
  }
}

TEST(StepperEquivalence, PMinMatchesSeedSemantics) {
  sweep_protocol([](int n) { return MinExchange(n); },
                 [](int n, int t) { return PMin(n, t); }, 5, 2, 101, 12,
                 "P_min");
}

TEST(StepperEquivalence, PBasicMatchesSeedSemantics) {
  sweep_protocol([](int n) { return BasicExchange(n); },
                 [](int n, int t) { return PBasic(n, t); }, 5, 2, 102, 12,
                 "P_basic");
}

TEST(StepperEquivalence, POptMatchesSeedSemantics) {
  // Exercises the borrowed-round fast path (graphs moved through the round
  // pipeline, copy-on-write on delivery forks) against the seed's
  // shared_ptr message semantics.
  sweep_protocol([](int n) { return FipExchange(n); },
                 [](int n, int t) { return POpt(n, t); }, 4, 2, 103, 8,
                 "P_opt");
}

TEST(StepperEquivalence, EarlyDecideStopsLikeSeed) {
  // Failure-free with a zero preference: everyone decides 0 in round 1 and
  // the early-stop kicks in identically (the Stepper's running undecided
  // counter vs the seed's per-round rescan).
  const int n = 6;
  const int t = 2;
  std::vector<Value> prefs(static_cast<std::size_t>(n), Value::one);
  prefs[0] = Value::zero;
  expect_engine_matches_reference(MinExchange(n), PMin(n, t),
                                  FailurePattern::failure_free(n), prefs, t,
                                  SimulateOptions{}, "early-decide");
}

TEST(StepperTest, UndecidedCounterTracksDecisions) {
  const int n = 4;
  const int t = 2;
  std::vector<Value> prefs(static_cast<std::size_t>(n), Value::one);
  prefs[0] = Value::zero;
  Stepper<MinExchange, PMin> stepper(MinExchange(n), PMin(n, t),
                                     FailurePattern::failure_free(n), prefs,
                                     t);
  EXPECT_EQ(stepper.undecided(), n);
  ASSERT_TRUE(stepper.step());  // round 1: agent 0 decides 0, announces
  EXPECT_EQ(stepper.undecided(), n - 1);
  ASSERT_TRUE(stepper.step());  // round 2: everyone else hears and decides
  EXPECT_EQ(stepper.undecided(), 0);
  EXPECT_TRUE(stepper.done());
  EXPECT_FALSE(stepper.step());
}

TEST(StepperTest, TraceSinkSeesEveryTime) {
  const int n = 4;
  const int t = 1;
  MaterializingSink<MinExchange> sink;
  StepperOptions opt;
  opt.max_rounds = 3;
  opt.stop_when_all_decided = false;
  Stepper<MinExchange, PMin> stepper(
      MinExchange(n), PMin(n, t), FailurePattern::failure_free(n),
      std::vector<Value>(static_cast<std::size_t>(n), Value::one), t, opt,
      &sink);
  while (stepper.step()) {
  }
  ASSERT_EQ(sink.states().size(), 4u) << "times 0..3";
  for (const auto& states : sink.states())
    EXPECT_EQ(states.size(), static_cast<std::size_t>(n));
  EXPECT_EQ(sink.states().back(), stepper.states());
}

/// A sink that records every (time, states) callback verbatim, so tests can
/// pin WHEN the stepper publishes, not just what ended up materialized.
template <class X>
class RecordingSink final : public TraceSink<X> {
 public:
  void on_states(int time,
                 std::span<const typename X::State> states) override {
    times.push_back(time);
    snapshots.emplace_back(states.begin(), states.end());
  }
  std::vector<int> times;
  std::vector<std::vector<typename X::State>> snapshots;
};

/// The sink contract: exactly one callback per round boundary — time 0 at
/// construction, then time m after round m completes — and each snapshot
/// equal to the reference simulator's states[m]. Checked for both halting
/// modes the driver exercises: early decide and max_rounds truncation.
template <class X, class P>
void expect_sink_pins_reference(const X& x, const P& p,
                                const FailurePattern& alpha,
                                const std::vector<Value>& inits, int t,
                                const SimulateOptions& opt,
                                const std::string& what) {
  const auto want = testing::reference_simulate(x, p, alpha, inits, t, opt);

  RecordingSink<X> sink;
  StepperOptions sopt;
  sopt.max_rounds = opt.max_rounds;
  sopt.stop_when_all_decided = opt.stop_when_all_decided;
  Stepper<X, P> stepper(x, p, alpha, inits, t, sopt, &sink);
  while (stepper.step()) {
  }

  ASSERT_EQ(sink.times.size(),
            static_cast<std::size_t>(want.record.rounds) + 1)
      << what << ": one callback per time 0..rounds";
  for (std::size_t m = 0; m < sink.times.size(); ++m)
    EXPECT_EQ(sink.times[m], static_cast<int>(m))
        << what << ": boundary callbacks in round order";
  ASSERT_EQ(sink.snapshots.size(), want.states.size()) << what;
  for (std::size_t m = 0; m < want.states.size(); ++m)
    EXPECT_EQ(sink.snapshots[m], want.states[m])
        << what << " states at time " << m;

  // MaterializingSink is the same stream, stored: rerun and compare.
  MaterializingSink<X> mat;
  Stepper<X, P> again(x, p, alpha, inits, t, sopt, &mat);
  while (again.step()) {
  }
  EXPECT_EQ(mat.states(), want.states) << what << " [materializing]";
}

TEST(StepperTest, SinkBoundariesUnderEarlyDecideMatchReference) {
  // Failure-free with one zero preference: P_min decides early and the
  // stepper halts before the horizon. The sink must stop with it — no
  // phantom boundary for rounds that never ran.
  const int n = 5;
  const int t = 2;
  std::vector<Value> prefs(static_cast<std::size_t>(n), Value::one);
  prefs[1] = Value::zero;
  expect_sink_pins_reference(MinExchange(n), PMin(n, t),
                             FailurePattern::failure_free(n), prefs, t,
                             SimulateOptions{}, "sink early-decide p_min");

  Rng rng(404);
  for (int k = 0; k < 3; ++k) {
    const auto alpha = sample_adversary(n, t, t + 2, 0.4, rng);
    expect_sink_pins_reference(FipExchange(n), POpt(n, t), alpha,
                               sample_preferences(n, rng), t,
                               SimulateOptions{},
                               "sink early-decide p_opt iter=" +
                                   std::to_string(k));
  }
}

TEST(StepperTest, SinkBoundariesUnderMaxRoundsTruncationMatchReference) {
  const int n = 5;
  const int t = 2;
  Rng rng(405);
  for (int max_rounds : {1, 2}) {
    SimulateOptions opt;
    opt.max_rounds = max_rounds;
    opt.stop_when_all_decided = false;
    const auto alpha = sample_adversary(n, t, t + 2, 0.4, rng);
    const auto prefs = sample_preferences(n, rng);
    expect_sink_pins_reference(
        MinExchange(n), PMin(n, t), alpha, prefs, t, opt,
        "sink truncated p_min R=" + std::to_string(max_rounds));
    expect_sink_pins_reference(
        FipExchange(n), POpt(n, t), alpha, prefs, t, opt,
        "sink truncated p_opt R=" + std::to_string(max_rounds));
  }
}

TEST(BusPoolTest, AcquireReleaseAndExhaustion) {
  BusPool pool(2);
  EXPECT_EQ(pool.capacity(), 2u);
  const auto a = pool.acquire(FailurePattern::failure_free(3));
  const auto b = pool.acquire(FailurePattern::failure_free(3));
  EXPECT_EQ(pool.in_use(), 2u);
  EXPECT_THROW((void)pool.acquire(FailurePattern::failure_free(3)),
               std::logic_error);
  pool.release(a);
  EXPECT_EQ(pool.in_use(), 1u);
  const auto c = pool.acquire(FailurePattern::failure_free(4));
  EXPECT_EQ(pool.in_use(), 2u);
  pool.release(b);
  pool.release(c);
  EXPECT_EQ(pool.in_use(), 0u);
  EXPECT_THROW(pool.release(c), std::logic_error) << "double release";
}

TEST(BusPoolTest, ExchangeRoundFiltersLikeThePattern) {
  const int n = 3;
  FailurePattern alpha(n, AgentSet{0, 1});
  alpha.drop(0, 2, 0);
  BusPool pool(1);
  const auto slot = pool.acquire(alpha);

  std::vector<std::optional<Bytes>> outbox;
  for (AgentId i = 0; i < n; ++i)
    outbox.push_back(Bytes{static_cast<std::uint8_t>(i)});
  const auto res = pool.exchange_round(slot, std::move(outbox));
  EXPECT_EQ(res.round, 0);
  EXPECT_FALSE(res.inbox[0][2].has_value()) << "dropped by the adversary";
  EXPECT_TRUE(res.inbox[1][2].has_value());
  EXPECT_TRUE(res.inbox[2][2].has_value()) << "self-delivery";
  EXPECT_EQ((*res.inbox[1][2])[0], 2);
  EXPECT_EQ(res.sent[2], (AgentSet{0, 1}));
  EXPECT_EQ(res.delivered[2], AgentSet{1});
  EXPECT_EQ(pool.completed_rounds(slot), 1);

  // ⊥ payloads are not delivered anywhere.
  std::vector<std::optional<Bytes>> silent(static_cast<std::size_t>(n));
  const auto res2 = pool.exchange_round(slot, std::move(silent));
  EXPECT_EQ(res2.round, 1);
  for (AgentId to = 0; to < n; ++to)
    for (AgentId from = 0; from < n; ++from)
      EXPECT_FALSE(res2.inbox[static_cast<std::size_t>(to)]
                             [static_cast<std::size_t>(from)]
                                 .has_value());
  pool.release(slot);
}

template <class X, class P>
std::vector<InstanceSpec> seeded_specs(const X& x, int t, int count,
                                       std::uint64_t seed) {
  std::vector<InstanceSpec> specs;
  specs.reserve(static_cast<std::size_t>(count));
  Rng rng(seed);
  for (int k = 0; k < count; ++k)
    specs.push_back({sample_adversary(x.n(), t, t + 2, 0.4, rng),
                     sample_preferences(x.n(), rng)});
  return specs;
}

template <class X, class P>
void expect_workload_matches_reference(const X& x, const P& p, int t,
                                       int count, std::uint64_t seed,
                                       int workers,
                                       const std::string& name) {
  const auto specs = seeded_specs<X, P>(x, t, count, seed);
  WorkloadOptions opt;
  opt.workers = workers;
  const auto result = run_workload(x, p, std::span(specs), t, opt);
  ASSERT_EQ(result.instances.size(), specs.size());
  ASSERT_EQ(result.latency_us.size(), specs.size());
  EXPECT_EQ(result.concurrent_instances, specs.size());
  for (std::size_t k = 0; k < specs.size(); ++k) {
    const auto want = testing::reference_simulate(
        x, p, specs[k].alpha, specs[k].inits, t, SimulateOptions{});
    expect_records_equal(result.instances[k].record, want.record,
                         name + " instance " + std::to_string(k));
    EXPECT_EQ(result.instances[k].final_states, want.states.back())
        << name << " instance " << k;
    EXPECT_GT(result.latency_us[k], 0.0) << name << " instance " << k;
    EXPECT_TRUE(check_eba(result.instances[k].record).ok())
        << name << " instance " << k;
  }
}

TEST(WorkloadTest, WorkerPoolMatchesReferencePMin) {
  expect_workload_matches_reference(MinExchange(5), PMin(5, 2), 2, 48, 201, 4,
                                    "P_min");
}

TEST(WorkloadTest, WorkerPoolMatchesReferencePBasic) {
  expect_workload_matches_reference(BasicExchange(5), PBasic(5, 2), 2, 48,
                                    202, 4, "P_basic");
}

TEST(WorkloadTest, WorkerPoolMatchesReferencePOptOverTheWire) {
  expect_workload_matches_reference(FipExchange(4), POpt(4, 2), 2, 24, 203, 4,
                                    "P_opt");
}

TEST(WorkloadTest, SingleWorkerMatchesManyWorkers) {
  const FipExchange x(4);
  const POpt p(4, 2);
  const auto specs = seeded_specs<FipExchange, POpt>(x, 2, 16, 204);
  WorkloadOptions one;
  one.workers = 1;
  WorkloadOptions many;
  many.workers = 4;
  const auto a = run_workload(x, p, std::span(specs), 2, one);
  const auto b = run_workload(x, p, std::span(specs), 2, many);
  for (std::size_t k = 0; k < specs.size(); ++k) {
    expect_records_equal(a.instances[k].record, b.instances[k].record,
                         "instance " + std::to_string(k));
    EXPECT_EQ(a.instances[k].final_states, b.instances[k].final_states);
  }
}

TEST(WorkloadTest, MaxRoundsTruncatesEveryInstance) {
  const MinExchange x(4);
  const PMin p(4, 2);
  // All-ones preferences, failure-free: P_min normally decides in round
  // t+2; a horizon of 1 truncates it.
  std::vector<InstanceSpec> specs(
      8, {FailurePattern::failure_free(4),
          std::vector<Value>(4, Value::one)});
  WorkloadOptions opt;
  opt.workers = 3;
  opt.max_rounds = 1;
  const auto result = run_workload(x, p, std::span(specs), 2, opt);
  for (const auto& inst : result.instances) EXPECT_EQ(inst.record.rounds, 1);
}

TEST(AdaptiveWorkloadTest, ThreeEnginesAgreeOnSeededStrategies) {
  // The adaptive differential: a fresh same-seeded strategy driven through
  // (a) the bare Stepper (run_adaptive), (b) simulate_adaptive and (c) the
  // wire-path worker pool must produce identical RunRecords and identical
  // realized patterns. Strategy RNG consumption is observation-independent,
  // so the seed pins the whole run; any divergence means one engine shows
  // the strategy a different world (or applies its drops differently).
  const int n = 4;
  const int t = 2;
  const FipExchange x(n);
  const POpt p(n, t);
  std::vector<Value> prefs(static_cast<std::size_t>(n), Value::one);
  prefs[static_cast<std::size_t>(n - 1)] = Value::zero;

  for (const auto& factory : shipped_strategies(n, t, FailureModel::general)) {
    for (std::uint64_t seed : {5ull, 6ull}) {
      const std::string what = factory.name + " seed " + std::to_string(seed);

      auto bare_strat = factory.make(seed);
      const AdaptiveOutcome bare = run_adaptive(x, p, *bare_strat, prefs, t);

      auto sim_strat = factory.make(seed);
      FailurePattern sim_realized = FailurePattern::failure_free(1);
      const auto sim = simulate_adaptive(x, p, *sim_strat, prefs, t,
                                         SimulateOptions{}, &sim_realized);

      std::vector<AdaptiveInstanceSpec> specs;
      specs.push_back({factory.make(seed), prefs});
      WorkloadOptions wopt;
      wopt.workers = 2;
      const auto pooled = run_adaptive_workload(x, p, std::span(specs), t, wopt);
      ASSERT_EQ(pooled.instances.size(), 1u) << what;

      expect_records_equal(sim.record, bare.summary.record, what + " [sim]");
      expect_records_equal(pooled.instances[0].record, bare.summary.record,
                           what + " [pool]");
      EXPECT_TRUE(sim_realized == bare.realized) << what;
    }
  }
}

TEST(AdaptiveWorkloadTest, ManyInstancesUnderManyWorkers) {
  // A batch of seeded random-budget instances over the pool equals the bare
  // runs instance-for-instance, regardless of worker interleaving.
  const int n = 5;
  const int t = 2;
  const MinExchange x(n);
  const PMin p(n, t);
  Rng rng(301);
  std::vector<AdaptiveInstanceSpec> specs;
  std::vector<std::vector<Value>> all_prefs;
  for (int k = 0; k < 24; ++k) {
    const auto prefs = sample_preferences(n, rng);
    specs.push_back({make_random_budget_strategy(
                         n, t, FailureModel::general,
                         static_cast<std::uint64_t>(k)),
                     prefs});
    all_prefs.push_back(prefs);
  }
  WorkloadOptions wopt;
  wopt.workers = 4;
  const auto pooled = run_adaptive_workload(x, p, std::span(specs), t, wopt);
  ASSERT_EQ(pooled.instances.size(), specs.size());
  for (std::size_t k = 0; k < specs.size(); ++k) {
    auto strat = make_random_budget_strategy(n, t, FailureModel::general,
                                             static_cast<std::uint64_t>(k));
    const AdaptiveOutcome want = run_adaptive(x, p, *strat, all_prefs[k], t);
    expect_records_equal(pooled.instances[k].record, want.summary.record,
                         "instance " + std::to_string(k));
  }
}

TEST(ClusterWrapperTest, RunClusterEqualsThreadPerAgent) {
  // The new single-instance wrapper and the legacy thread-per-agent model
  // must agree record-for-record (both are also pinned against simulate()
  // in test_net.cpp).
  Rng rng(205);
  for (int k = 0; k < 5; ++k) {
    const auto alpha = sample_adversary(4, 2, 4, 0.4, rng);
    const auto prefs = sample_preferences(4, rng);
    const auto pooled = run_cluster(FipExchange(4), POpt(4, 2), alpha, prefs, 2);
    const auto threaded = run_cluster_thread_per_agent(FipExchange(4),
                                                       POpt(4, 2), alpha,
                                                       prefs, 2);
    expect_records_equal(pooled.record, threaded.record,
                         "iter " + std::to_string(k));
    EXPECT_EQ(pooled.final_states, threaded.final_states);
  }
}

}  // namespace
}  // namespace eba
