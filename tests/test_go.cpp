// General-omissions model GO(t) end-to-end:
//
//   * model-checked implementation: P_opt_go implements the knowledge-based
//     program P1 in exhaustively enumerated γ_go contexts, and the
//     synthesizer re-derives its decisions from P1 semantics alone;
//   * exhaustive spec + domination sweeps over canonical GO orbits at
//     n = 4 (t = 1, 2) and n = 5 (t = 1), with multiplicity-coverage
//     asserts against the closed-form GO space counts;
//   * the GO fault machinery (clause/cover reasoning, self-conviction of
//     receive-faulty agents, the n > 2t identifiability boundary);
//   * differential pins: a GO pattern with an empty receive-drop plane is
//     bit-identical to the SO pattern with the same send plane, across the
//     simulate/Stepper/worker-pool execution paths (reference_simulator.hpp
//     oracle), and the GO adversary walk begins with exactly the SO walk.
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "action/p_opt_go.hpp"
#include "core/spec.hpp"
#include "failure/canonical.hpp"
#include "failure/generators.hpp"
#include "kripke/kbp.hpp"
#include "kripke/synthesis.hpp"
#include "kripke/system.hpp"
#include "net/workload.hpp"
#include "reference_simulator.hpp"
#include "sim/drivers.hpp"
#include "stats/rng.hpp"

namespace eba {
namespace {

std::string describe(const KbpMismatch& m) {
  return "run " + std::to_string(m.point.run) + " time " +
         std::to_string(m.point.time) + " agent " + std::to_string(m.agent) +
         ": concrete=" + to_string(m.concrete) +
         " program=" + to_string(m.program);
}

// ---------------------------------------------------------------------------
// Model-checked implementation theorems in γ_go.
// ---------------------------------------------------------------------------

// P_opt_go implements P1 in γ_go(3, 1) (drops on either plane in the first
// two rounds, every preference vector). With t = 1 every agent decides by
// round t+2 = 3 — except provably-receive-faulty agents, which may run
// later, and whose times 0..2 are still epistemically adequate (R = 2), so
// the check runs through time 3 as in the SO test.
TEST(KripkeGo, POptGoImplementsP1) {
  InterpretedSystem<FipExchange, POptGo> sys(FipExchange(3), POptGo(3, 1), 1,
                                             4);
  sys.add_all_runs(go_config(3, 1, 2));
  sys.finalize();
  EXPECT_EQ(sys.num_runs(), 769 * 8);
  const auto mismatches = check_implementation(
      sys,
      [](const auto& I, Point pt, AgentId i) { return eval_p1(I, pt, i); }, 3);
  EXPECT_TRUE(mismatches.empty())
      << mismatches.size() << " mismatches; first: " << describe(mismatches[0]);
}

// n = 4 with drops in round 1 only: adequate through time 1, which is where
// the interesting GO decisions of this family appear (cf. the SO TwoFaults
// test). The receive plane makes this context 16x the SO one.
TEST(KripkeGo, POptGoImplementsP1AtN4) {
  InterpretedSystem<FipExchange, POptGo> sys(FipExchange(4), POptGo(4, 1), 1,
                                             4);
  sys.add_all_runs(go_config(4, 1, 1));
  sys.finalize();
  EXPECT_EQ(sys.num_runs(), 257 * 16);
  const auto mismatches = check_implementation(
      sys,
      [](const auto& I, Point pt, AgentId i) { return eval_p1(I, pt, i); }, 1);
  EXPECT_TRUE(mismatches.empty())
      << mismatches.size() << " mismatches; first: " << describe(mismatches[0]);
}

// ---------------------------------------------------------------------------
// Synthesis: round-by-round construction from P1 semantics over γ_go worlds
// reproduces P_opt_go's decisions (value AND round), with no knowledge of
// the concrete protocol. Horizon r+1 keeps every compared action inside the
// truncated context's adequacy range (actions in rounds <= r+1 are decided
// from states at times <= r).
// ---------------------------------------------------------------------------
class SynthesisGo
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(SynthesisGo, P1InGoContextMatchesPOptGo) {
  const auto [n, t, rounds, horizon] = GetParam();
  std::vector<std::pair<FailurePattern, std::vector<Value>>> worlds;
  const auto prefs = all_preference_vectors(n);
  enumerate_adversaries(go_config(n, t, rounds), [&](const FailurePattern& a) {
    for (const auto& p : prefs) worlds.emplace_back(a, p);
    return true;
  });
  KbpSynthesizer<FipExchange> synth(FipExchange(n), t, KbpProgram::p1);
  const auto result = synth.run(worlds, horizon);
  for (std::size_t w = 0; w < worlds.size(); ++w) {
    SimulateOptions opt;
    opt.max_rounds = horizon;
    opt.stop_when_all_decided = false;
    const auto run = simulate(FipExchange(n), POptGo(n, t), worlds[w].first,
                              worlds[w].second, t, opt);
    for (AgentId i = 0; i < n; ++i) {
      const auto expected = run.record.decision(i);
      const auto& got = result.decisions[w][static_cast<std::size_t>(i)];
      ASSERT_EQ(got.has_value(), expected.has_value()) << "world " << w;
      if (expected) {
        ASSERT_EQ(got->value, expected->value) << "world " << w;
        ASSERT_EQ(got->round, expected->round) << "world " << w;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Contexts, SynthesisGo,
    ::testing::Values(std::tuple{3, 1, 2, 4},   // full γ_go(3,1), deep horizon
                      std::tuple{4, 1, 1, 2},   // round-1 drops
                      std::tuple{4, 1, 2, 3}),  // 262144 worlds, both planes
    [](const ::testing::TestParamInfo<std::tuple<int, int, int, int>>& info) {
      std::string name = "n";
      name += std::to_string(std::get<0>(info.param));
      name += "t";
      name += std::to_string(std::get<1>(info.param));
      name += "r";
      name += std::to_string(std::get<2>(info.param));
      return name;
    });

// ---------------------------------------------------------------------------
// Exhaustive spec sweep over canonical GO orbits (spec satisfaction is
// relabeling-invariant; multiplicities must cover the whole GO space).
// ---------------------------------------------------------------------------
struct Shape {
  int n;
  int t;
  int rounds;
};

class ExhaustiveSpecGo : public ::testing::TestWithParam<Shape> {};

TEST_P(ExhaustiveSpecGo, AllGoAdversariesAllPreferences) {
  const auto [n, t, rounds] = GetParam();
  const EnumerationConfig cfg = go_config(n, t, rounds);
  const auto prefs = all_preference_vectors(n);
  const auto go = make_go_driver(n, t);
  std::uint64_t checked = 0;
  std::uint64_t covered = 0;
  enumerate_canonical_adversaries(
      cfg, [&](const FailurePattern& alpha, std::uint64_t multiplicity) {
        covered += multiplicity;
        EXPECT_TRUE(alpha.in_go(t));
        for (const auto& p : prefs) {
          const RunSummary s = go(alpha, p);
          const SpecReport rep = check_eba(s.record);
          EXPECT_TRUE(rep.ok_strict())
              << "n=" << n << " t=" << t << ": "
              << (rep.violations.empty() ? "?" : rep.violations[0]);
          ++checked;
          if (::testing::Test::HasFailure()) return false;
        }
        return true;
      });
  EXPECT_GT(checked, 0u);
  EXPECT_EQ(covered, count_go_adversaries(cfg))
      << "orbit multiplicities must cover the whole GO space";
}

INSTANTIATE_TEST_SUITE_P(Shapes, ExhaustiveSpecGo,
                         ::testing::Values(Shape{3, 1, 2}, Shape{4, 1, 2},
                                           Shape{4, 2, 1}, Shape{5, 1, 1}),
                         [](const ::testing::TestParamInfo<Shape>& info) {
                           std::string name = "n";
                           name += std::to_string(info.param.n);
                           name += "t";
                           name += std::to_string(info.param.t);
                           name += "r";
                           name += std::to_string(info.param.rounds);
                           return name;
                         });

// ---------------------------------------------------------------------------
// Domination over canonical GO orbits: the common-knowledge lines never
// delay a decision (P_opt_go <= its P0 ablation pointwise), and on the SO
// members of the space (empty receive plane) the SO-optimal P_opt — which
// reasons over the smaller SO world set — is never later than P_opt_go.
// ---------------------------------------------------------------------------
TEST(DominationGo, CommonKnowledgeNeverLaterOnCanonicalOrbits) {
  for (const auto& [n, t, rounds] :
       std::vector<std::tuple<int, int, int>>{{4, 1, 2}, {4, 2, 1}}) {
    const auto go = make_go_driver(n, t);
    const auto go_p0 = make_go_p0_driver(n, t);
    const auto so_opt = make_fip_driver(n, t);
    const auto prefs = all_preference_vectors(n);
    std::uint64_t covered = 0;
    const EnumerationConfig cfg = go_config(n, t, rounds);
    enumerate_canonical_adversaries(
        cfg, [&](const FailurePattern& alpha, std::uint64_t multiplicity) {
          covered += multiplicity;
          for (const auto& p : prefs) {
            const RunSummary g = go(alpha, p);
            const RunSummary g0 = go_p0(alpha, p);
            for (AgentId i : alpha.nonfaulty()) {
              EXPECT_GT(g.round_of(i), 0) << "n=" << n << " t=" << t;
              EXPECT_LE(g.round_of(i), g0.round_of(i))
                  << "P_opt_go later than its P0 ablation, agent " << i;
            }
            if (!alpha.has_receive_drops()) {
              const RunSummary f = so_opt(alpha, p);
              for (AgentId i : alpha.nonfaulty())
                EXPECT_LE(f.round_of(i), g.round_of(i))
                    << "SO-optimal later than GO-optimal on an SO run, agent "
                    << i;
            }
          }
          return !::testing::Test::HasFailure();
        });
    EXPECT_EQ(covered, count_go_adversaries(cfg));
  }
}

// ---------------------------------------------------------------------------
// The GO Example-7.1 analogue: t coordinated deaf-and-mute faults, all-one
// preferences. With n > 2t the pooled evidence forces the faulty set (no
// <= t cover avoids a silent agent once it has more than t witnesses), the
// common-knowledge test fires, and P_opt_go decides in round 3 while the P0
// ablation needs t+2. At n = 2t the nonfaulty set is itself a <= t cover —
// the observers genuinely cannot tell silent senders from their own deaf
// receive plane — so NO faults are forced and both variants take t+2.
// ---------------------------------------------------------------------------
TEST(Example71Go, CommonKnowledgeShortcutIffIdentifiable) {
  for (const auto& [n, t, expect_shortcut] :
       std::vector<std::tuple<int, int, bool>>{
           {8, 3, true}, {12, 5, true}, {8, 4, false}}) {
    AgentSet silent;
    for (AgentId i = 0; i < t; ++i) silent.insert(i);
    const FailurePattern alpha = deaf_mute_agents_pattern(n, silent, t + 3);
    const std::vector<Value> ones(static_cast<std::size_t>(n), Value::one);
    const RunSummary g = make_go_driver(n, t)(alpha, ones);
    const RunSummary g0 = make_go_p0_driver(n, t)(alpha, ones);
    for (AgentId i : alpha.nonfaulty()) {
      EXPECT_EQ(g.round_of(i), expect_shortcut ? 3 : t + 2)
          << "n=" << n << " t=" << t << " agent " << i;
      EXPECT_EQ(g0.round_of(i), t + 2) << "n=" << n << " t=" << t;
    }
    EXPECT_TRUE(check_eba(g.record).ok());
    EXPECT_TRUE(check_eba(g0.record).ok());
  }
}

// ---------------------------------------------------------------------------
// GO fault machinery units.
// ---------------------------------------------------------------------------

// A receiver that misses more senders than the budget explains convicts
// ITSELF: with t = 1, two distinct missing senders leave {self} as the only
// cover. With t = 2 the evidence is ambiguous (both senders may be faulty),
// so nothing is forced and everyone is possibly faulty.
TEST(GoFaults, ReceiveFaultSelfConviction) {
  OmissionEvidence e(4);
  e.add(1, 0);  // round-1 message 1 -> 0 missing
  e.add(2, 0);  // round-1 message 2 -> 0 missing
  EXPECT_EQ(go_known_faults(e, 1), AgentSet{0});
  EXPECT_EQ(go_possibly_faulty(e, 1), AgentSet{0});
  EXPECT_EQ(go_known_faults(e, 2), AgentSet{});
  EXPECT_EQ(go_possibly_faulty(e, 2), AgentSet::all(4));
  // A single missing edge never convicts anyone.
  OmissionEvidence single(4);
  single.add(3, 1);
  EXPECT_EQ(go_known_faults(single, 1), AgentSet{});
  EXPECT_EQ(go_possibly_faulty(single, 1), (AgentSet{1, 3}).united(AgentSet{}));
  EXPECT_TRUE(go_cover_exists(single, 1, AgentSet{}));
  EXPECT_FALSE(go_cover_exists(single, 1, AgentSet{1, 3}));
  // Inconsistent evidence (needs more faults than the budget) throws.
  OmissionEvidence wide(6);
  wide.add(0, 1);
  wide.add(2, 3);
  wide.add(4, 5);
  EXPECT_FALSE(go_cover_exists(wide, 2, AgentSet{}));
  EXPECT_THROW((void)go_known_faults(wide, 2), std::logic_error);
  EXPECT_EQ(go_known_faults(wide, 3), AgentSet{});
}

// The evidence recurrence over a concrete run: after a silent round, every
// receiver holds one clause per missing sender, and evidence propagates to
// whoever hears from the receiver.
TEST(GoFaults, EvidenceRecurrenceOverARun) {
  const int n = 4;
  const int t = 1;
  FailurePattern alpha(n, AgentSet{1, 2, 3});  // 0 faulty
  alpha.deafen_forever(0, 2);                  // 0 hears nobody, rounds 1-2
  const std::vector<Value> inits{Value::one, Value::one, Value::one,
                                 Value::one};
  SimulateOptions opt;
  opt.stop_when_all_decided = false;
  opt.max_rounds = 3;
  const auto run = simulate(FipExchange(n), POptGo(n, t), alpha, inits, t, opt);
  // Agent 0 at time 2 knows it missed 1, 2, 3 twice: self-conviction.
  const auto& g0 = run.states[2][0].graph;
  const OmissionEvidence e0 = go_evidence(g0, 0, 2);
  EXPECT_EQ(e0.adj(0), (AgentSet{1, 2, 3}));
  EXPECT_EQ(go_known_faults(e0, t), AgentSet{0});
  // Agent 1 at time 2 heard 0's time-1 graph? No — 0 still SENDS (deaf, not
  // mute), so 1 has 0's evidence of round 1 and knows 0 convicts itself
  // only once the budget is exceeded; with two missing senders at t=1 the
  // round-1 evidence {1->0, 2->0, 3->0} already forces {0}.
  const auto& g1 = run.states[2][1].graph;
  EXPECT_EQ(go_known_faults(go_evidence(g1, 1, 2), t), AgentSet{0});
  // The full table agrees with the per-node query.
  const auto table = go_evidence_table(g1);
  EXPECT_EQ(table[2][1], go_evidence(g1, 1, 2));
  EXPECT_EQ(table[0][1].implicated(), AgentSet{});
}

// A provably-deaf agent still terminates: once its own evidence forces
// {self} as the fault set, every other agent is provably nonfaulty — so any
// hidden 0-cascade among them completed within two rounds, the hidden-chain
// space exhausts, and the deaf agent decides 1. This is GO-specific
// behavior the SO cond_1 cannot express (it never consults the budget).
// Note the deaf agent decides 1 even when an unseen 0 exists: agreement
// binds nonfaulty deciders only, and the deaf agent IS the fault.
TEST(GoFaults, DeafAgentEventuallyDecidesOne) {
  const int n = 4;
  const int t = 1;
  FailurePattern alpha(n, AgentSet{1, 2, 3});
  alpha.deafen_forever(0, t + 3);
  const std::vector<Value> ones(static_cast<std::size_t>(n), Value::one);
  const RunSummary s = make_go_driver(n, t)(alpha, ones);
  // Nonfaulty agents see a failure-free all-one round and decide in round 2
  // (the deaf agent still sends); the deaf agent proves itself faulty after
  // round 1 and exhausts the chain space one round later.
  EXPECT_EQ(s.round_of(0), 3);
  for (AgentId i = 1; i < n; ++i) EXPECT_EQ(s.round_of(i), 2);
  EXPECT_TRUE(check_eba(s.record).ok_strict());
  // An unseen zero does not change the deaf agent's (correct) decision.
  auto zeros = ones;
  zeros[1] = Value::zero;
  const RunSummary z = make_go_driver(n, t)(alpha, zeros);
  EXPECT_EQ(z.decisions[0]->value, Value::one);
  EXPECT_TRUE(check_eba(z.record).ok());
}

// The indirect go_cond0 clause in action: a partially deaf agent that SAW
// the 0-decision (relayed once) but whose budget proves the cascade among
// the provably-nonfaulty peers is completing right now decides 0 with it —
// even though it never received a just-decided message directly.
TEST(GoFaults, PartiallyDeafAgentJoinsTheForcedCascade) {
  const int n = 3;
  const int t = 1;
  FailurePattern alpha(n, AgentSet{1, 2});  // agent 0 faulty
  alpha.drop_receive(0, 2, 0);              // round 1: 0 misses 2 (the zero)
  alpha.drop_receive(1, 1, 0);              // round 2: 0 misses 1
  const std::vector<Value> prefs{Value::one, Value::one, Value::zero};
  const RunSummary s = make_go_driver(n, t)(alpha, prefs);
  // 2 decides 0 in round 1; 1 hears it and decides 0 in round 2. Agent 0
  // sees 2's decision only via 2's round-2 graph, and at time 2 its two
  // missing messages force {0} as the fault set: 1 is provably nonfaulty,
  // provably heard 2's broadcast, and provably decides 0 in round 2 — so 0
  // knows "some agent just decided 0" without having witnessed it.
  EXPECT_EQ(s.decisions[0]->value, Value::zero);
  EXPECT_EQ(s.round_of(0), 3);
  EXPECT_EQ(s.round_of(1), 2);
  EXPECT_EQ(s.round_of(2), 1);
  EXPECT_TRUE(check_eba(s.record).ok_strict());
}

// ---------------------------------------------------------------------------
// Differential pins: empty receive plane == SO, across every execution path.
// ---------------------------------------------------------------------------

// The GO walk of each faulty set starts with exactly the SO walk: the send
// block is the less significant half of the word chain, so the first
// 2^(send bits) GO patterns per faulty set have an empty receive plane and
// equal their SO counterparts bit for bit (operator== covers both planes).
TEST(GoDifferential, GoWalkExtendsSoWalk) {
  const EnumerationConfig so{.n = 4, .t = 2, .rounds = 1};
  const EnumerationConfig go = go_config(4, 2, 1);
  AdversaryIterator so_it(so);
  AdversaryIterator go_it(go);
  std::uint64_t compared = 0;
  while (const FailurePattern* sp = so_it.next()) {
    // Advance the GO iterator to the next empty-receive-plane pattern.
    const FailurePattern* gp = go_it.next();
    while (gp && gp->has_receive_drops()) gp = go_it.next();
    ASSERT_NE(gp, nullptr);
    EXPECT_EQ(*gp, *sp) << "at SO index " << compared;
    EXPECT_TRUE(gp->in_so(so.t));
    ++compared;
  }
  EXPECT_EQ(compared, count_adversaries(so));
  EXPECT_EQ(count_go_adversaries(so), count_adversaries(go));
  EXPECT_EQ(try_count_go_adversaries(so), try_count_adversaries(go));
}

/// Field-by-field record equality (RunRecord has no operator==).
void expect_records_equal(const RunRecord& got, const RunRecord& want,
                          const std::string& label) {
  EXPECT_EQ(got.n, want.n) << label;
  EXPECT_EQ(got.t, want.t) << label;
  EXPECT_EQ(got.rounds, want.rounds) << label;
  EXPECT_EQ(got.inits, want.inits) << label;
  EXPECT_EQ(got.nonfaulty, want.nonfaulty) << label;
  EXPECT_EQ(got.actions, want.actions) << label;
  EXPECT_EQ(got.sent, want.sent) << label;
  EXPECT_EQ(got.delivered, want.delivered) << label;
}

// GO patterns drive every execution layer identically: the Stepper-based
// simulate(), a bare Stepper, and the worker-pool workload all reproduce
// the retained seed simulator on sampled GO adversaries — receive drops
// included — and an SO pattern pushed through the same layers is unchanged
// by the receive plane's existence.
TEST(GoDifferential, EnginesMatchReferenceOnGoPatterns) {
  const int n = 5;
  const int t = 2;
  const FipExchange x(n);
  const POptGo p(n, t);
  Rng rng(424242);
  std::vector<InstanceSpec> specs;
  for (int k = 0; k < 24; ++k)
    specs.push_back({sample_go_adversary(n, rng.below(t + 1), t + 2, 0.35,
                                         0.35, rng),
                     sample_preferences(n, rng)});
  // simulate() vs the seed oracle.
  for (const auto& spec : specs) {
    const auto want =
        testing::reference_simulate(x, p, spec.alpha, spec.inits, t);
    const auto got = simulate(x, p, spec.alpha, spec.inits, t);
    expect_records_equal(got.record, want.record, "simulate");
    EXPECT_EQ(got.states, want.states) << "simulate states";
  }
  // Worker-pool workload vs the oracle.
  WorkloadOptions opt;
  opt.workers = 4;
  const auto result = run_workload(x, p, std::span(specs), t, opt);
  ASSERT_EQ(result.instances.size(), specs.size());
  for (std::size_t k = 0; k < specs.size(); ++k) {
    const auto want = testing::reference_simulate(x, p, specs[k].alpha,
                                                  specs[k].inits, t);
    expect_records_equal(result.instances[k].record, want.record,
                         "workload " + std::to_string(k));
    EXPECT_EQ(result.instances[k].final_states, want.states.back())
        << "workload " << k;
  }
}

// Equivariance extends to the receive plane: relabeled GO runs are
// relabeled runs (P_opt_go never looks at numeric ids).
TEST(GoDifferential, POptGoCommutesWithAgentRenaming) {
  Rng rng(20260801);
  for (const auto& [n, t] :
       std::vector<std::pair<int, int>>{{4, 1}, {5, 2}}) {
    const auto drive = make_go_driver(n, t);
    for (int trial = 0; trial < 8; ++trial) {
      const FailurePattern alpha =
          sample_go_adversary(n, rng.below(t + 1), t + 1, 0.5, 0.5, rng);
      const std::vector<Value> prefs = sample_preferences(n, rng);
      std::vector<AgentId> perm(static_cast<std::size_t>(n));
      for (AgentId i = 0; i < n; ++i) perm[static_cast<std::size_t>(i)] = i;
      for (int i = n - 1; i > 0; --i)
        std::swap(perm[static_cast<std::size_t>(i)],
                  perm[static_cast<std::size_t>(rng.below(i + 1))]);
      const FailurePattern beta = relabeled(alpha, perm);
      std::vector<Value> relabeled_prefs(static_cast<std::size_t>(n));
      for (AgentId i = 0; i < n; ++i)
        relabeled_prefs[static_cast<std::size_t>(
            perm[static_cast<std::size_t>(i)])] =
            prefs[static_cast<std::size_t>(i)];
      const RunSummary base = drive(alpha, prefs);
      const RunSummary image = drive(beta, relabeled_prefs);
      for (AgentId i = 0; i < n; ++i) {
        const auto& d = base.decisions[static_cast<std::size_t>(i)];
        const auto& e = image.decisions[static_cast<std::size_t>(
            perm[static_cast<std::size_t>(i)])];
        ASSERT_EQ(d.has_value(), e.has_value()) << "agent " << i;
        if (d) {
          EXPECT_EQ(d->value, e->value) << "agent " << i;
          EXPECT_EQ(d->round, e->round) << "agent " << i;
        }
      }
    }
  }
}

}  // namespace
}  // namespace eba
