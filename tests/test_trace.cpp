// Tests for the run-trace formatter.
#include <gtest/gtest.h>

#include "failure/generators.hpp"
#include "sim/drivers.hpp"
#include "sim/trace.hpp"

namespace eba {
namespace {

TEST(TraceTest, ContainsAgentsRoundsAndDecisions) {
  const int n = 3;
  const int t = 1;
  FailurePattern alpha(n, AgentSet{0, 1});
  alpha.drop(0, 2, 1);
  std::vector<Value> prefs{Value::one, Value::one, Value::zero};
  const RunSummary s = make_min_driver(n, t)(alpha, prefs);
  const std::string out = format_run(s.record);

  EXPECT_NE(out.find("round 1"), std::string::npos);
  EXPECT_NE(out.find("decide(0)"), std::string::npos);
  EXPECT_NE(out.find("faulty"), std::string::npos);
  // Agent 2's round-1 decision message to agent 1 was omitted.
  EXPECT_NE(out.find("x{1}"), std::string::npos);
  // Decision summary column.
  EXPECT_NE(out.find("0 @ r"), std::string::npos);
}

TEST(TraceTest, HidesDeliveriesOnRequest) {
  const int n = 3;
  FailurePattern alpha(n, AgentSet{0, 1});
  alpha.drop(0, 2, 1);
  std::vector<Value> prefs{Value::one, Value::one, Value::zero};
  const RunSummary s = make_min_driver(n, 1)(alpha, prefs);
  const std::string out = format_run(s.record, {.show_deliveries = false});
  EXPECT_EQ(out.find("x{"), std::string::npos);
}

TEST(TraceTest, UndecidedAgentShowsNone) {
  RunRecord r;
  r.n = 2;
  r.t = 0;
  r.rounds = 1;
  r.inits = {Value::one, Value::one};
  r.nonfaulty = AgentSet{0};
  r.actions = {{Action::decide(Value::one), Action::noop()}};
  r.sent = {{AgentSet{1}, AgentSet{}}};
  r.delivered = {{AgentSet{1}, AgentSet{}}};
  const std::string out = format_run(r);
  EXPECT_NE(out.find("none"), std::string::npos);
}

TEST(TraceTest, EmptyRecordThrows) {
  EXPECT_THROW((void)format_run(RunRecord{}), std::logic_error);
}

}  // namespace
}  // namespace eba
