// Unit tests for failure patterns and adversary generators.
#include <gtest/gtest.h>

#include "failure/generators.hpp"
#include "failure/pattern.hpp"
#include "stats/rng.hpp"

namespace eba {
namespace {

TEST(PatternTest, FailureFreeDeliversEverything) {
  const auto p = FailurePattern::failure_free(4);
  EXPECT_EQ(p.nonfaulty(), AgentSet::all(4));
  EXPECT_EQ(p.num_faulty(), 0);
  for (int m = 0; m < 5; ++m)
    for (AgentId i = 0; i < 4; ++i)
      for (AgentId j = 0; j < 4; ++j) EXPECT_TRUE(p.delivered(m, i, j));
  EXPECT_TRUE(p.in_so(0));
  EXPECT_TRUE(p.is_crash());
}

TEST(PatternTest, DropsOnlyFromFaultySenders) {
  FailurePattern p(3, AgentSet{0, 1});  // agent 2 faulty
  p.drop(0, 2, 0);
  EXPECT_FALSE(p.delivered(0, 2, 0));
  EXPECT_TRUE(p.delivered(0, 2, 1));
  EXPECT_TRUE(p.delivered(1, 2, 0));  // only round 1 dropped
  EXPECT_THROW(p.drop(0, 0, 1), std::logic_error);  // nonfaulty sender
  EXPECT_THROW(p.drop(0, 2, 2), std::logic_error);  // self-delivery
}

TEST(PatternTest, SelfDeliveryAlwaysSucceeds) {
  FailurePattern p(3, AgentSet{0, 1});
  p.silence(0, 2);
  EXPECT_TRUE(p.delivered(0, 2, 2));
  EXPECT_EQ(p.dropped(0, 2).size(), 2);
}

TEST(PatternTest, CrashDetection) {
  const auto crash = crash_pattern(4, 1, 1, AgentSet{2}, 4);
  EXPECT_TRUE(crash.is_crash());
  EXPECT_TRUE(crash.delivered(0, 1, 0));   // before crash
  EXPECT_TRUE(crash.delivered(1, 1, 2));   // survivor of crash round
  EXPECT_FALSE(crash.delivered(1, 1, 0));  // dropped in crash round
  EXPECT_FALSE(crash.delivered(2, 1, 2));  // silent afterwards

  FailurePattern not_crash(3, AgentSet{0, 1});
  not_crash.drop(0, 2, 0);  // partial drop, then full delivery again
  not_crash.drop(2, 2, 0);
  not_crash.drop(2, 2, 1);
  EXPECT_FALSE(not_crash.is_crash());
}

TEST(PatternTest, SilentAgentsScenario) {
  const auto p = silent_agents_pattern(5, AgentSet{0, 1}, 3);
  EXPECT_EQ(p.faulty(), (AgentSet{0, 1}));
  for (int m = 0; m < 3; ++m) {
    EXPECT_FALSE(p.delivered(m, 0, 4));
    EXPECT_FALSE(p.delivered(m, 1, 2));
    EXPECT_TRUE(p.delivered(m, 2, 3));
  }
}

TEST(EnumerationTest, CountsMatchFormula) {
  // n=3, t=1, rounds=2: 1 (no faulty) + 3 * 2^(1*2*2) = 49.
  EnumerationConfig cfg{.n = 3, .t = 1, .rounds = 2};
  EXPECT_EQ(count_adversaries(cfg), 49u);
  std::uint64_t visited = enumerate_adversaries(cfg, [](const auto&) { return true; });
  EXPECT_EQ(visited, 49u);
}

TEST(EnumerationTest, AllPatternsAreValidSo) {
  EnumerationConfig cfg{.n = 4, .t = 2, .rounds = 1};
  std::uint64_t visited = enumerate_adversaries(cfg, [&](const FailurePattern& p) {
    EXPECT_TRUE(p.in_so(2));
    EXPECT_EQ(p.n(), 4);
    return true;
  });
  // 1 + C(4,1)*2^3 + C(4,2)*2^6 = 1 + 32 + 384 = 417.
  EXPECT_EQ(visited, 417u);
}

TEST(PatternTest, ReceivePlaneSemantics) {
  FailurePattern p(4, AgentSet{0, 1, 3});  // agent 2 faulty
  p.drop_receive(0, 1, 2);
  EXPECT_FALSE(p.delivered(0, 1, 2));  // nonfaulty sender, lost anyway
  EXPECT_TRUE(p.delivered(0, 1, 3));
  EXPECT_TRUE(p.delivered(1, 1, 2));  // only round 1 dropped
  EXPECT_EQ(p.dropped_receive(0, 2), AgentSet{1});
  EXPECT_EQ(p.dropped(0, 2), AgentSet{});  // send plane untouched
  EXPECT_TRUE(p.has_receive_drops());
  EXPECT_FALSE(p.in_so(1));  // a receive drop disqualifies SO membership
  EXPECT_TRUE(p.in_go(1));
  EXPECT_TRUE(p.go_valid(1));
  EXPECT_THROW(p.drop_receive(0, 0, 1), std::logic_error);  // nonfaulty rcvr
  EXPECT_THROW(p.drop_receive(0, 2, 2), std::logic_error);  // self-delivery
}

TEST(PatternTest, DeafenAndPlaneIndependence) {
  FailurePattern p(3, AgentSet{0, 1});  // 2 faulty
  p.deafen(0, 2);
  EXPECT_EQ(p.dropped_receive(0, 2), (AgentSet{0, 1}));
  EXPECT_TRUE(p.delivered(0, 2, 2));  // self-delivery survives deafness
  // Both planes dropping the same message is representable and idempotent
  // for delivery.
  p.drop(0, 2, 0);
  EXPECT_FALSE(p.delivered(0, 2, 0));
  EXPECT_EQ(p.recorded_receive_rounds(), 1);
  // An SO-style pattern reports an empty receive plane.
  FailurePattern so(3, AgentSet{0, 1});
  so.silence(0, 2);
  EXPECT_FALSE(so.has_receive_drops());
  EXPECT_TRUE(so.in_so(1));
}

TEST(EnumerationTest, GoCountsMatchFormula) {
  // GO doubles the drop bits: n=3, t=1, rounds=2 gives
  // 1 + 3 * 2^(2*1*2*2) = 1 + 3 * 256 = 769.
  const EnumerationConfig cfg = go_config(3, 1, 2);
  EXPECT_EQ(count_adversaries(cfg), 769u);
  EXPECT_EQ(count_go_adversaries({.n = 3, .t = 1, .rounds = 2}), 769u);
  EXPECT_EQ(try_count_go_adversaries({.n = 3, .t = 1, .rounds = 2}), 769u);
  std::uint64_t visited = 0;
  std::uint64_t with_recv = 0;
  enumerate_adversaries(cfg, [&](const FailurePattern& p) {
    EXPECT_TRUE(p.in_go(1));
    ++visited;
    if (p.has_receive_drops()) ++with_recv;
    return true;
  });
  EXPECT_EQ(visited, 769u);
  // Per faulty set, 16 of the 256 plane combinations are receive-free.
  EXPECT_EQ(with_recv, 769u - 1u - 3u * 16u);
}

TEST(EnumerationTest, GoCountOverflowIsAnExplicitError) {
  // 2 * k * (n-1) * rounds >= 64 while the SO count still fits: the GO
  // twins must refuse rather than wrap.
  const EnumerationConfig cfg{.n = 9, .t = 2, .rounds = 2};
  EXPECT_TRUE(try_count_adversaries(cfg).has_value());
  EXPECT_FALSE(try_count_go_adversaries(cfg).has_value());
  EXPECT_THROW((void)count_go_adversaries(cfg), std::logic_error);
}

TEST(SamplerTest, GoSamplerRespectsPlanes) {
  Rng rng1(99);
  Rng rng2(99);
  for (int k = 0; k < 20; ++k) {
    const auto p1 = sample_go_adversary(8, 3, 4, 0.3, 0.4, rng1);
    const auto p2 = sample_go_adversary(8, 3, 4, 0.3, 0.4, rng2);
    EXPECT_EQ(p1, p2) << "GO sampling must be deterministic per seed";
    EXPECT_EQ(p1.num_faulty(), 3);
    EXPECT_TRUE(p1.in_go(3));
    for (int m = 0; m < 4; ++m)
      for (AgentId i = 0; i < 8; ++i)
        if (!p1.dropped_receive(m, i).empty()) {
          EXPECT_TRUE(p1.faulty().contains(i));
        }
  }
  // recv_drop_prob = 0 degenerates to the SO sampler's support.
  Rng rng3(5);
  const auto so_like = sample_go_adversary(6, 2, 3, 0.5, 0.0, rng3);
  EXPECT_FALSE(so_like.has_receive_drops());
  EXPECT_TRUE(so_like.in_so(2));
}

TEST(EnumerationTest, EarlyStop) {
  EnumerationConfig cfg{.n = 3, .t = 1, .rounds = 2};
  int seen = 0;
  enumerate_adversaries(cfg, [&](const auto&) { return ++seen < 10; });
  EXPECT_EQ(seen, 10);
}

TEST(SamplerTest, RespectsShapeAndSeedDeterminism) {
  Rng rng1(42);
  Rng rng2(42);
  for (int k = 0; k < 20; ++k) {
    const auto p1 = sample_adversary(8, 3, 4, 0.3, rng1);
    const auto p2 = sample_adversary(8, 3, 4, 0.3, rng2);
    EXPECT_EQ(p1.num_faulty(), 3);
    EXPECT_TRUE(p1.in_so(3));
    EXPECT_EQ(p1, p2) << "sampling must be deterministic per seed";
  }
}

TEST(SamplerTest, UniformFaultySelectionCoversAllAgents) {
  Rng rng(7);
  AgentSet seen;
  for (int k = 0; k < 200; ++k)
    seen = seen.united(sample_adversary(6, 2, 1, 0.5, rng).faulty());
  EXPECT_EQ(seen, AgentSet::all(6));
}

TEST(PreferenceTest, AllVectorsEnumerated) {
  const auto prefs = all_preference_vectors(3);
  EXPECT_EQ(prefs.size(), 8u);
  int zeros = 0;
  for (const auto& p : prefs)
    for (Value v : p) zeros += v == Value::zero ? 1 : 0;
  EXPECT_EQ(zeros, 12);  // each slot is 0 in half the vectors
}

TEST(PreferenceTest, SampleDeterministic) {
  Rng a(9);
  Rng b(9);
  EXPECT_EQ(sample_preferences(10, a), sample_preferences(10, b));
}

}  // namespace
}  // namespace eba
