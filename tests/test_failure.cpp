// Unit tests for failure patterns and adversary generators.
#include <gtest/gtest.h>

#include "failure/generators.hpp"
#include "failure/pattern.hpp"
#include "stats/rng.hpp"

namespace eba {
namespace {

TEST(PatternTest, FailureFreeDeliversEverything) {
  const auto p = FailurePattern::failure_free(4);
  EXPECT_EQ(p.nonfaulty(), AgentSet::all(4));
  EXPECT_EQ(p.num_faulty(), 0);
  for (int m = 0; m < 5; ++m)
    for (AgentId i = 0; i < 4; ++i)
      for (AgentId j = 0; j < 4; ++j) EXPECT_TRUE(p.delivered(m, i, j));
  EXPECT_TRUE(p.in_so(0));
  EXPECT_TRUE(p.is_crash());
}

TEST(PatternTest, DropsOnlyFromFaultySenders) {
  FailurePattern p(3, AgentSet{0, 1});  // agent 2 faulty
  p.drop(0, 2, 0);
  EXPECT_FALSE(p.delivered(0, 2, 0));
  EXPECT_TRUE(p.delivered(0, 2, 1));
  EXPECT_TRUE(p.delivered(1, 2, 0));  // only round 1 dropped
  EXPECT_THROW(p.drop(0, 0, 1), std::logic_error);  // nonfaulty sender
  EXPECT_THROW(p.drop(0, 2, 2), std::logic_error);  // self-delivery
}

TEST(PatternTest, SelfDeliveryAlwaysSucceeds) {
  FailurePattern p(3, AgentSet{0, 1});
  p.silence(0, 2);
  EXPECT_TRUE(p.delivered(0, 2, 2));
  EXPECT_EQ(p.dropped(0, 2).size(), 2);
}

TEST(PatternTest, CrashDetection) {
  const auto crash = crash_pattern(4, 1, 1, AgentSet{2}, 4);
  EXPECT_TRUE(crash.is_crash());
  EXPECT_TRUE(crash.delivered(0, 1, 0));   // before crash
  EXPECT_TRUE(crash.delivered(1, 1, 2));   // survivor of crash round
  EXPECT_FALSE(crash.delivered(1, 1, 0));  // dropped in crash round
  EXPECT_FALSE(crash.delivered(2, 1, 2));  // silent afterwards

  FailurePattern not_crash(3, AgentSet{0, 1});
  not_crash.drop(0, 2, 0);  // partial drop, then full delivery again
  not_crash.drop(2, 2, 0);
  not_crash.drop(2, 2, 1);
  EXPECT_FALSE(not_crash.is_crash());
}

TEST(PatternTest, SilentAgentsScenario) {
  const auto p = silent_agents_pattern(5, AgentSet{0, 1}, 3);
  EXPECT_EQ(p.faulty(), (AgentSet{0, 1}));
  for (int m = 0; m < 3; ++m) {
    EXPECT_FALSE(p.delivered(m, 0, 4));
    EXPECT_FALSE(p.delivered(m, 1, 2));
    EXPECT_TRUE(p.delivered(m, 2, 3));
  }
}

TEST(EnumerationTest, CountsMatchFormula) {
  // n=3, t=1, rounds=2: 1 (no faulty) + 3 * 2^(1*2*2) = 49.
  EnumerationConfig cfg{.n = 3, .t = 1, .rounds = 2};
  EXPECT_EQ(count_adversaries(cfg), 49u);
  std::uint64_t visited = enumerate_adversaries(cfg, [](const auto&) { return true; });
  EXPECT_EQ(visited, 49u);
}

TEST(EnumerationTest, AllPatternsAreValidSo) {
  EnumerationConfig cfg{.n = 4, .t = 2, .rounds = 1};
  std::uint64_t visited = enumerate_adversaries(cfg, [&](const FailurePattern& p) {
    EXPECT_TRUE(p.in_so(2));
    EXPECT_EQ(p.n(), 4);
    return true;
  });
  // 1 + C(4,1)*2^3 + C(4,2)*2^6 = 1 + 32 + 384 = 417.
  EXPECT_EQ(visited, 417u);
}

TEST(EnumerationTest, EarlyStop) {
  EnumerationConfig cfg{.n = 3, .t = 1, .rounds = 2};
  int seen = 0;
  enumerate_adversaries(cfg, [&](const auto&) { return ++seen < 10; });
  EXPECT_EQ(seen, 10);
}

TEST(SamplerTest, RespectsShapeAndSeedDeterminism) {
  Rng rng1(42);
  Rng rng2(42);
  for (int k = 0; k < 20; ++k) {
    const auto p1 = sample_adversary(8, 3, 4, 0.3, rng1);
    const auto p2 = sample_adversary(8, 3, 4, 0.3, rng2);
    EXPECT_EQ(p1.num_faulty(), 3);
    EXPECT_TRUE(p1.in_so(3));
    EXPECT_EQ(p1, p2) << "sampling must be deterministic per seed";
  }
}

TEST(SamplerTest, UniformFaultySelectionCoversAllAgents) {
  Rng rng(7);
  AgentSet seen;
  for (int k = 0; k < 200; ++k)
    seen = seen.united(sample_adversary(6, 2, 1, 0.5, rng).faulty());
  EXPECT_EQ(seen, AgentSet::all(6));
}

TEST(PreferenceTest, AllVectorsEnumerated) {
  const auto prefs = all_preference_vectors(3);
  EXPECT_EQ(prefs.size(), 8u);
  int zeros = 0;
  for (const auto& p : prefs)
    for (Value v : p) zeros += v == Value::zero ? 1 : 0;
  EXPECT_EQ(zeros, 12);  // each slot is 0 in half the vectors
}

TEST(PreferenceTest, SampleDeterministic) {
  Rng a(9);
  Rng b(9);
  EXPECT_EQ(sample_preferences(10, a), sample_preferences(10, b));
}

}  // namespace
}  // namespace eba
