// Spec-oracle fuzzing: seeded sweeps over every shipped protocol must be
// violation-free at n beyond exhaustive reach, and the oracle + shrinker
// must actually work — proven with a deliberately broken P_min whose bug
// only fires under a drop, where the fuzzer has to find it, the shrinker
// has to reduce it to the single responsible drop, and the shrunk case has
// to replay.
#include <gtest/gtest.h>

#include "action/p_min.hpp"
#include "core/spec.hpp"
#include "sim/fuzz.hpp"
#include "sim/simulator.hpp"

namespace eba {
namespace {

// ---------------------------------------------------------------------------
// Clean sweeps: every shipped protocol, SO and GO, n = 8 and 16
// ---------------------------------------------------------------------------

FuzzConfig sweep_config(ProtocolKind kind, int n, int iterations) {
  FuzzConfig cfg;
  cfg.n = n;
  cfg.t = 2;
  cfg.protocol = kind;
  cfg.model = model_of(kind);  // GO space for the _go pair, SO otherwise
  cfg.base_seed = 0xeba0 + static_cast<std::uint64_t>(kind);
  cfg.iterations = iterations;
  cfg.strict = true;  // Prop 6.1: validity-for-all and the t+2 bound too
  return cfg;
}

TEST(FuzzSweep, AllShippedProtocolsCleanAtN8) {
  for (ProtocolKind kind :
       {ProtocolKind::p_min, ProtocolKind::p_basic, ProtocolKind::p_opt,
        ProtocolKind::p_opt_p0, ProtocolKind::p_opt_go,
        ProtocolKind::p_opt_go_p0, ProtocolKind::early_stop,
        ProtocolKind::authenticated}) {
    const FuzzReport rep = run_fuzz(sweep_config(kind, 8, 40));
    EXPECT_TRUE(rep.ok()) << to_string(kind) << ": " << rep.violations
                          << " violations in " << rep.runs << " runs";
    EXPECT_EQ(rep.runs, 40u) << to_string(kind);
  }
}

TEST(FuzzSweep, CheapProtocolsCleanAtN16) {
  // The FIP state at n=16 is heavyweight; the exchange-light protocols
  // cover the large-n regime here, the FIPs at n=8 above and in
  // bench_adversary's large-n rows. The zoo baselines (report-set states,
  // no graphs) are cheap enough to ride along.
  for (ProtocolKind kind :
       {ProtocolKind::p_min, ProtocolKind::p_basic, ProtocolKind::early_stop,
        ProtocolKind::authenticated}) {
    const FuzzReport rep = run_fuzz(sweep_config(kind, 16, 60));
    EXPECT_TRUE(rep.ok()) << to_string(kind);
  }
}

TEST(FuzzSweep, GoSpaceExercisesBothPlanes) {
  // At least one sampled GO case must actually use the receive plane —
  // otherwise the GO sweep silently degenerates to SO.
  FuzzConfig cfg = sweep_config(ProtocolKind::p_opt_go, 8, 40);
  bool receive_plane_seen = false;
  for (int i = 0; i < cfg.iterations; ++i)
    receive_plane_seen = receive_plane_seen ||
                         fuzz_case(cfg, static_cast<std::uint64_t>(i))
                             .alpha.has_receive_drops();
  EXPECT_TRUE(receive_plane_seen);
}

// ---------------------------------------------------------------------------
// The oracle fires: a P_min whose jd handling is broken after round 1
// ---------------------------------------------------------------------------

/// P_min with the relay path severed: a "somebody decided 0" report (jd) is
/// honored only through time 1. An agent that misses the ORIGINAL round-1
/// announcement because of a single send drop ignores the round-2 relays
/// and decides 1 at time t+1 — an agreement violation that needs a failure
/// to fire (failure-free runs are correct, so the fuzzer must find it).
class BrokenPMin {
 public:
  BrokenPMin(int n, int t) : t_(t) {
    EBA_REQUIRE(t >= 0 && n - t >= 2, "P_min requires 0 <= t <= n-2");
  }

  [[nodiscard]] Action operator()(const MinState& s) const {
    if (s.decided) return Action::noop();
    if (s.init == Value::zero) return Action::decide(Value::zero);
    if (s.time <= 1 && s.jd == Value::zero)  // BUG: relays ignored later
      return Action::decide(Value::zero);
    if (s.time == t_ + 1) return Action::decide(Value::one);
    return Action::noop();
  }

 private:
  int t_;
};

RunDriver broken_min_driver(int n, int t) {
  return [n, t](const FailurePattern& alpha, const std::vector<Value>& prefs) {
    auto run = simulate(MinExchange(n), BrokenPMin(n, t), alpha, prefs, t);
    RunSummary s;
    s.n = n;
    s.rounds = run.record.rounds;
    s.record = std::move(run.record);
    return s;
  };
}

/// The minimal counterexample at (n=5, t=1): agent 0 faulty with init 0,
/// everyone else init 1, and the single drop of 0's round-1 announcement to
/// agent 1. Agents 2-4 decide 0 in round 2 off the direct announcement;
/// agent 1 only gets relays, ignores them, and decides 1.
FailurePattern minimal_broken_pattern(int n) {
  AgentSet nonfaulty = AgentSet::all(n);
  nonfaulty.erase(0);
  FailurePattern alpha(n, nonfaulty);
  alpha.drop(0, 0, 1);
  return alpha;
}

std::vector<Value> minimal_broken_prefs(int n) {
  std::vector<Value> prefs(static_cast<std::size_t>(n), Value::one);
  prefs[0] = Value::zero;
  return prefs;
}

std::size_t total_drops(const FailurePattern& alpha) {
  std::size_t total = 0;
  for (int m = 0; m < alpha.recorded_rounds(); ++m)
    for (AgentId i = 0; i < alpha.n(); ++i)
      total += static_cast<std::size_t>(alpha.dropped(m, i).size());
  for (int m = 0; m < alpha.recorded_receive_rounds(); ++m)
    for (AgentId i = 0; i < alpha.n(); ++i)
      total += static_cast<std::size_t>(alpha.dropped_receive(m, i).size());
  return total;
}

FuzzConfig broken_config() {
  FuzzConfig cfg;
  cfg.n = 5;
  cfg.t = 1;
  cfg.model = FailureModel::sending;
  cfg.base_seed = 3;
  cfg.iterations = 600;  // deterministic: this seed finds the bug well inside
  cfg.drop_prob = 0.4;
  cfg.strict = false;  // the planted bug is a SAFETY violation; isolate it
  cfg.max_failures = 1;
  return cfg;
}

TEST(FuzzOracle, FindsThePlantedBugAndShrinksToOneDrop) {
  const FuzzConfig cfg = broken_config();
  const RunDriver driver = broken_min_driver(cfg.n, cfg.t);
  const FuzzReport rep = run_fuzz(cfg, driver);
  ASSERT_FALSE(rep.ok()) << "the oracle must fire on the planted bug";
  ASSERT_FALSE(rep.failures.empty());

  const FuzzFailure& f = rep.failures.front();
  EXPECT_FALSE(f.report.agreement) << "the planted bug breaks Agreement";
  // The shrunk case is still failing, and minimal: one faulty agent, ONE
  // drop (the severed announcement), faulty-first labels.
  EXPECT_FALSE(f.shrunk_report.ok());
  EXPECT_EQ(f.shrunk.num_faulty(), 1);
  EXPECT_FALSE(f.shrunk.is_nonfaulty(0)) << "canonical faulty-first labels";
  EXPECT_EQ(total_drops(f.shrunk), 1u);
  // Replays: the recorded (shrunk pattern, prefs) reproduce the violation.
  const SpecReport again = check_eba(driver(f.shrunk, f.shrunk_prefs).record);
  EXPECT_FALSE(again.ok());
  // And the original failing case replays from its recorded index.
  const FuzzCase orig = fuzz_case(cfg, f.index);
  EXPECT_TRUE(orig.alpha == f.alpha);
  EXPECT_EQ(orig.prefs, f.prefs);
  EXPECT_FALSE(check_eba(driver(orig.alpha, orig.prefs).record).ok());
}

TEST(FuzzOracle, ShrinkerRecognizesAnAlreadyMinimalCase) {
  const FuzzConfig cfg = broken_config();
  const RunDriver driver = broken_min_driver(cfg.n, cfg.t);
  const ShrinkResult s = shrink_failure(
      cfg, driver, minimal_broken_pattern(cfg.n), minimal_broken_prefs(cfg.n));
  EXPECT_EQ(s.steps, 0) << "nothing to remove from the minimal case";
  EXPECT_TRUE(s.alpha == minimal_broken_pattern(cfg.n));
  EXPECT_EQ(s.prefs, minimal_broken_prefs(cfg.n));
  EXPECT_FALSE(s.report.ok());
}

TEST(FuzzOracle, ShrinkRequiresAFailingCase) {
  const FuzzConfig cfg = broken_config();
  // The REAL P_min has no bug: handing the shrinker a passing case is a
  // contract violation, not a silent no-op.
  const RunDriver correct = [&](const FailurePattern& alpha,
                                const std::vector<Value>& prefs) {
    auto run = simulate(MinExchange(cfg.n), PMin(cfg.n, cfg.t), alpha, prefs,
                        cfg.t);
    RunSummary s;
    s.n = cfg.n;
    s.rounds = run.record.rounds;
    s.record = std::move(run.record);
    return s;
  };
  EXPECT_THROW((void)shrink_failure(cfg, correct, minimal_broken_pattern(cfg.n),
                                    minimal_broken_prefs(cfg.n)),
               std::logic_error);
}

}  // namespace
}  // namespace eba
