// The seed's pre-Stepper simulate(), retained verbatim as the differential
// oracle for the instance-oriented run engine: it materializes a full
// states[m][i] snapshot every round and rescans `decided` at the top of
// every round, exactly as the original sim/simulator.hpp did. The
// equivalence suite (test_workload.cpp) asserts the Stepper-based
// simulate(), the trace-sink materialization, and the worker-pool cluster
// all reproduce this semantics bit for bit.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "core/types.hpp"
#include "exchange/exchange.hpp"
#include "failure/pattern.hpp"
#include "sim/simulator.hpp"

namespace eba::testing {

template <ExchangeProtocol X, class P>
Run<X> reference_simulate(const X& x, const P& act,
                          const FailurePattern& alpha,
                          const std::vector<Value>& inits, int t,
                          const SimulateOptions& opt = {}) {
  const int n = x.n();
  EBA_REQUIRE(alpha.n() == n, "pattern/exchange agent count mismatch");
  EBA_REQUIRE(static_cast<int>(inits.size()) == n, "inits size mismatch");
  const int max_rounds = opt.max_rounds > 0 ? opt.max_rounds : t + 4;

  Run<X> run;
  run.record.n = n;
  run.record.t = t;
  run.record.inits = inits;
  run.record.nonfaulty = alpha.nonfaulty();

  run.states.emplace_back();
  run.states.back().reserve(static_cast<std::size_t>(n));
  for (AgentId i = 0; i < n; ++i)
    run.states.back().push_back(
        x.initial_state(i, inits[static_cast<std::size_t>(i)]));

  std::vector<bool> decided(static_cast<std::size_t>(n), false);
  using Message = typename X::Message;

  for (int m = 0; m < max_rounds; ++m) {
    if (opt.stop_when_all_decided) {
      bool all = true;
      for (bool d : decided) all = all && d;
      if (all) break;
    }
    const auto& cur = run.states[static_cast<std::size_t>(m)];

    // 1. Actions.
    std::vector<Action> actions(static_cast<std::size_t>(n));
    for (AgentId i = 0; i < n; ++i) {
      actions[static_cast<std::size_t>(i)] = act(cur[static_cast<std::size_t>(i)]);
      if (actions[static_cast<std::size_t>(i)].is_decide())
        decided[static_cast<std::size_t>(i)] = true;
    }

    // 2. Messages (broadcast: µ is destination-independent).
    std::vector<std::optional<Message>> outgoing(static_cast<std::size_t>(n));
    std::vector<AgentSet> sent(static_cast<std::size_t>(n));
    std::vector<AgentSet> delivered_to(static_cast<std::size_t>(n));
    for (AgentId i = 0; i < n; ++i) {
      outgoing[static_cast<std::size_t>(i)] =
          x.message(cur[static_cast<std::size_t>(i)],
                    actions[static_cast<std::size_t>(i)], /*dest=*/0);
      if (outgoing[static_cast<std::size_t>(i)]) {
        run.bits_sent +=
            static_cast<std::size_t>(n - 1) *
            x.message_bits(*outgoing[static_cast<std::size_t>(i)]);
        run.messages_sent += static_cast<std::size_t>(n - 1);
        sent[static_cast<std::size_t>(i)] =
            AgentSet::all(n).minus(AgentSet{i});
      }
    }

    // 3. Adversary filtering + delivery; self-delivery always succeeds.
    std::vector<std::vector<std::optional<Message>>> inbox(
        static_cast<std::size_t>(n),
        std::vector<std::optional<Message>>(static_cast<std::size_t>(n)));
    for (AgentId i = 0; i < n; ++i) {
      if (!outgoing[static_cast<std::size_t>(i)]) continue;
      for (AgentId j = 0; j < n; ++j) {
        if (!alpha.delivered(m, i, j)) continue;
        inbox[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] =
            outgoing[static_cast<std::size_t>(i)];
        if (j != i) delivered_to[static_cast<std::size_t>(i)].insert(j);
      }
    }

    // 4. State updates.
    run.states.emplace_back(cur);
    auto& next = run.states.back();
    for (AgentId i = 0; i < n; ++i)
      x.update(next[static_cast<std::size_t>(i)],
               actions[static_cast<std::size_t>(i)],
               std::span<const std::optional<Message>>(
                   inbox[static_cast<std::size_t>(i)]));

    run.record.actions.push_back(std::move(actions));
    run.record.sent.push_back(std::move(sent));
    run.record.delivered.push_back(std::move(delivered_to));
  }

  run.record.rounds = static_cast<int>(run.record.actions.size());
  return run;
}

}  // namespace eba::testing
