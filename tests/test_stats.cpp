// Unit tests for the stats substrate: aggregation, histograms, the table
// printer, and the deterministic RNG.
#include <gtest/gtest.h>

#include <sstream>

#include "stats/agg.hpp"
#include "stats/rng.hpp"
#include "stats/table.hpp"

namespace eba {
namespace {

TEST(AggregateTest, BasicStatistics) {
  Aggregate a;
  for (double x : {4.0, 1.0, 3.0, 2.0}) a.add(x);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 4.0);
  EXPECT_DOUBLE_EQ(a.mean(), 2.5);
  EXPECT_DOUBLE_EQ(a.percentile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(a.percentile(1.0), 4.0);
  EXPECT_DOUBLE_EQ(a.percentile(0.0), 1.0);
}

TEST(AggregateTest, AddAfterQueryResorts) {
  Aggregate a;
  a.add(5.0);
  EXPECT_DOUBLE_EQ(a.max(), 5.0);
  a.add(9.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
  EXPECT_DOUBLE_EQ(a.min(), 5.0);
}

TEST(AggregateTest, MergeAndAddAllFoldSamples) {
  Aggregate a;
  a.add(1.0);
  a.add(9.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);  // force a sort before mutating again
  Aggregate b;
  const double more[] = {3.0, 7.0};
  b.add_all(more);
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_DOUBLE_EQ(a.percentile(0.5), 3.0);
  EXPECT_EQ(b.count(), 2u) << "merge leaves the source unchanged";
  EXPECT_DOUBLE_EQ(b.min(), 3.0);
  Aggregate empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 4u);
  a.merge(a);  // self-merge doubles the samples, no iterator invalidation
  EXPECT_EQ(a.count(), 8u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
}

TEST(AggregateTest, EmptyThrows) {
  Aggregate a;
  EXPECT_THROW((void)a.mean(), std::logic_error);
  EXPECT_THROW((void)a.percentile(0.5), std::logic_error);
}

TEST(IntHistogramTest, CountsAndMaxKey) {
  IntHistogram h;
  h.add(2);
  h.add(2);
  h.add(5);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.count(2), 2u);
  EXPECT_EQ(h.count(3), 0u);
  EXPECT_EQ(h.count(99), 0u);
  EXPECT_EQ(h.max_key(), 5);
  EXPECT_THROW(h.add(-1), std::logic_error);
}

TEST(IntHistogramTest, EmptyMaxKeyIsMinusOne) {
  IntHistogram h;
  EXPECT_EQ(h.max_key(), -1);
  EXPECT_EQ(h.total(), 0u);
}

TEST(TableTest, AlignsColumns) {
  Table t({"name", "n"});
  t.row("alpha", 1);
  t.row("b", 23456);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("23456"), std::string::npos);
  // Every line has the same position for the second column start.
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(TableTest, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::logic_error);
}

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.raw(), b.raw());
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const int x = rng.below(7);
    EXPECT_GE(x, 0);
    EXPECT_LT(x, 7);
  }
  EXPECT_THROW((void)rng.below(0), std::logic_error);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(10);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

}  // namespace
}  // namespace eba
