// Property-based tests over communication graphs harvested from random
// runs: lattice laws of merge, idempotence of view extraction, monotonicity
// of cones and fault knowledge, and serialization size accounting.
#include <gtest/gtest.h>

#include "exchange/fip.hpp"
#include "failure/generators.hpp"
#include "graph/knowledge.hpp"
#include "net/serialize.hpp"
#include "sim/simulator.hpp"
#include "stats/rng.hpp"

namespace eba {
namespace {

struct Shape {
  int n;
  int t;
  std::uint64_t seed;
};

class GraphProperties : public ::testing::TestWithParam<Shape> {
 protected:
  /// All agents' states at all times of one random FIP run.
  std::vector<std::vector<FipState>> states() const {
    const auto [n, t, seed] = GetParam();
    Rng rng(seed);
    const auto alpha = sample_adversary(n, t, t + 2, 0.4, rng);
    const auto prefs = sample_preferences(n, rng);
    auto noop = [](const FipState&) { return Action::noop(); };
    SimulateOptions opt;
    opt.max_rounds = t + 2;
    opt.stop_when_all_decided = false;
    return simulate(FipExchange(n), noop, alpha, prefs, t, opt).states;
  }
};

TEST_P(GraphProperties, MergeIsIdempotent) {
  for (const auto& row : states()) {
    for (const auto& s : row) {
      CommGraph g = s.graph;
      g.merge(s.graph);
      EXPECT_EQ(g, s.graph);
    }
  }
}

TEST_P(GraphProperties, MergeIsCommutativeOnDefiniteLabels) {
  const auto all = states();
  const auto& last = all.back();
  for (std::size_t a = 0; a < last.size(); ++a) {
    for (std::size_t b = a + 1; b < last.size(); ++b) {
      CommGraph ab = last[a].graph;
      ab.merge(last[b].graph);
      CommGraph ba = last[b].graph;
      ba.merge(last[a].graph);
      EXPECT_EQ(ab, ba) << "merging peers " << a << " and " << b;
    }
  }
}

TEST_P(GraphProperties, ExtractViewIsIdempotent) {
  const auto all = states();
  const auto& s = all.back()[0];
  const Cone cone(s.graph, s.self, s.graph.time());
  for (int m = 0; m < s.graph.time(); ++m) {
    for (AgentId j : cone.at(m)) {
      const CommGraph once = extract_view(s.graph, j, m);
      const CommGraph twice = extract_view(once, j, m);
      EXPECT_EQ(once, twice);
    }
  }
}

TEST_P(GraphProperties, ExtractViewIsTransitive) {
  // Extracting (k, m2) from an extracted view of (j, m) equals extracting
  // (k, m2) directly: what j knew about k's view is exactly what the
  // original owner knows about it.
  const auto all = states();
  const auto& s = all.back()[0];
  const int top = s.graph.time();
  const Cone cone(s.graph, s.self, top);
  for (int m = 0; m < top; ++m) {
    for (AgentId j : cone.at(m)) {
      const CommGraph view = extract_view(s.graph, j, m);
      const Cone sub(view, j, m);
      for (int m2 = 0; m2 < m; ++m2) {
        for (AgentId k : sub.at(m2)) {
          EXPECT_EQ(extract_view(view, k, m2), extract_view(s.graph, k, m2));
        }
      }
    }
  }
}

TEST_P(GraphProperties, ConesGrowWithTime) {
  const auto all = states();
  for (std::size_t m = 1; m < all.size(); ++m) {
    for (const auto& s : all[m]) {
      const Cone now(s.graph, s.self, s.time);
      // Everything heard by time m-1 is still heard at time m.
      const auto& prev_state = all[m - 1][static_cast<std::size_t>(s.self)];
      const Cone before(prev_state.graph, s.self, prev_state.time);
      for (int m2 = 0; m2 < prev_state.time; ++m2)
        EXPECT_TRUE(before.at(m2).subset_of(now.at(m2)));
    }
  }
}

TEST_P(GraphProperties, KnownFaultsAreMonotoneAndSound) {
  const auto [n, t, seed] = GetParam();
  Rng rng(seed + 1);
  const auto alpha = sample_adversary(n, t, t + 2, 0.4, rng);
  const auto prefs = sample_preferences(n, rng);
  auto noop = [](const FipState&) { return Action::noop(); };
  SimulateOptions opt;
  opt.max_rounds = t + 2;
  opt.stop_when_all_decided = false;
  const auto run = simulate(FipExchange(n), noop, alpha, prefs, t, opt);
  for (const auto& row : run.states) {
    for (const auto& s : row) {
      const auto table = known_faults_table(s.graph);
      for (int m = 0; m + 1 <= s.graph.time(); ++m) {
        for (AgentId j = 0; j < n; ++j) {
          const AgentSet fm = table[static_cast<std::size_t>(m)]
                                   [static_cast<std::size_t>(j)];
          const AgentSet fm1 = table[static_cast<std::size_t>(m + 1)]
                                    [static_cast<std::size_t>(j)];
          EXPECT_TRUE(fm.subset_of(fm1)) << "f monotone in time";
          // Soundness: only genuinely faulty agents are ever blamed.
          EXPECT_TRUE(fm1.subset_of(alpha.faulty()));
        }
      }
    }
  }
}

TEST_P(GraphProperties, SerializationRoundTripsAndSizesMatch) {
  const auto all = states();
  for (const auto& row : all) {
    for (const auto& s : row) {
      Writer w;
      encode_graph(w, s.graph);
      const Bytes payload = w.take();
      Reader r(payload);
      EXPECT_EQ(decode_graph(r), s.graph);
      // 8 header bytes + two ceil(n/8)-byte plane words per receiver row
      // (time * n rows) plus two for the preference planes.
      const std::size_t row_bytes =
          (static_cast<std::size_t>(s.graph.n()) + 7) / 8;
      const std::size_t rows = static_cast<std::size_t>(s.graph.time()) *
                               static_cast<std::size_t>(s.graph.n());
      EXPECT_EQ(payload.size(), 8u + 2 * row_bytes * (rows + 1));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomRuns, GraphProperties,
                         ::testing::Values(Shape{4, 1, 1}, Shape{5, 2, 2},
                                           Shape{6, 3, 3}, Shape{8, 3, 4},
                                           Shape{10, 4, 5}, Shape{12, 5, 6}),
                         [](const ::testing::TestParamInfo<Shape>& pinfo) {
                           std::string name = "n";
                           name += std::to_string(pinfo.param.n);
                           name += "t";
                           name += std::to_string(pinfo.param.t);
                           name += "s";
                           name += std::to_string(pinfo.param.seed);
                           return name;
                         });

}  // namespace
}  // namespace eba
