// Randomized property sweeps at larger scales than the exhaustive tests can
// reach: the EBA specification, the termination bound, the 0-chain
// characterization of 0-decisions, and cross-protocol agreement of decided
// values, over thousands of sampled (adversary, preference) pairs.
#include <gtest/gtest.h>

#include "core/chain.hpp"
#include "core/spec.hpp"
#include "failure/generators.hpp"
#include "sim/drivers.hpp"
#include "stats/rng.hpp"

namespace eba {
namespace {

struct Sweep {
  int n;
  int t;
  int samples;
  double drop_prob;
};

class RandomSweep : public ::testing::TestWithParam<Sweep> {};

TEST_P(RandomSweep, SpecHoldsForAllThreeProtocols) {
  const auto [n, t, samples, drop_prob] = GetParam();
  Rng rng(static_cast<std::uint64_t>(n * 1000 + t));
  const auto drivers = paper_drivers(n, t);
  for (int k = 0; k < samples; ++k) {
    const int faults = rng.below(t + 1);
    const auto alpha = sample_adversary(n, faults, t + 2, drop_prob, rng);
    const auto prefs = sample_preferences(n, rng);
    for (const auto& [name, drive] : drivers) {
      const RunSummary s = drive(alpha, prefs);
      const SpecReport rep = check_eba(s.record);
      ASSERT_TRUE(rep.ok_strict())
          << name << " sample " << k << ": "
          << (rep.violations.empty() ? "?" : rep.violations[0]);
    }
  }
}

// Every 0-decision is backed by a 0-chain ending at the decider (the key
// lemma behind Agreement in Prop 6.1 and Lemma A.5).
TEST_P(RandomSweep, ZeroDecisionsAreChainBacked) {
  const auto [n, t, samples, drop_prob] = GetParam();
  Rng rng(static_cast<std::uint64_t>(n * 77 + t));
  const auto drivers = paper_drivers(n, t);
  for (int k = 0; k < samples / 2; ++k) {
    const auto alpha = sample_adversary(n, t, t + 2, drop_prob, rng);
    const auto prefs = sample_preferences(n, rng);
    for (const auto& [name, drive] : drivers) {
      const RunSummary s = drive(alpha, prefs);
      const auto chains = analyze_zero_chains(s.record);
      for (AgentId i = 0; i < n; ++i) {
        const auto d = s.decisions[static_cast<std::size_t>(i)];
        if (!d || d->value != Value::zero) continue;
        EXPECT_TRUE(chains.receives_chain(i, d->round - 1))
            << name << ": agent " << i << " decided 0 in round " << d->round
            << " without receiving a 0-chain";
      }
    }
  }
}

// If anyone decides 0, every nonfaulty 0-decision happens within one round
// of a nonfaulty chain position (decision-time coherence); and nonfaulty
// agents never split across values — re-checked here against the raw chain
// structure rather than the spec checker.
TEST_P(RandomSweep, NonfaultyValuesNeverSplit) {
  const auto [n, t, samples, drop_prob] = GetParam();
  Rng rng(static_cast<std::uint64_t>(n * 31 + t));
  for (int k = 0; k < samples / 2; ++k) {
    const auto alpha = sample_adversary(n, t, t + 2, drop_prob, rng);
    const auto prefs = sample_preferences(n, rng);
    for (const auto& [name, drive] : paper_drivers(n, t)) {
      const RunSummary s = drive(alpha, prefs);
      AgentSet zeros, ones;
      for (AgentId i : alpha.nonfaulty()) {
        const auto d = s.decisions[static_cast<std::size_t>(i)];
        ASSERT_TRUE(d.has_value()) << name;
        (d->value == Value::zero ? zeros : ones).insert(i);
      }
      EXPECT_TRUE(zeros.empty() || ones.empty()) << name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, RandomSweep,
    ::testing::Values(Sweep{5, 2, 400, 0.3}, Sweep{6, 3, 300, 0.5},
                      Sweep{8, 4, 200, 0.25}, Sweep{10, 3, 150, 0.4},
                      Sweep{12, 5, 80, 0.35}, Sweep{16, 6, 30, 0.3},
                      Sweep{24, 4, 10, 0.5}),
    [](const ::testing::TestParamInfo<Sweep>& pinfo) {
      std::string name = "n";
      name += std::to_string(pinfo.param.n);
      name += "t";
      name += std::to_string(pinfo.param.t);
      return name;
    });

// Crash failures are a special case of sending omissions (paper §3): the
// protocols must satisfy the spec under crash patterns too.
TEST(CrashSweep, SpecHoldsUnderCrashFailures) {
  const int n = 6;
  const int t = 2;
  Rng rng(55);
  for (int k = 0; k < 200; ++k) {
    const AgentId who = rng.below(n);
    const int round = rng.below(t + 2);
    AgentSet survivors;
    for (AgentId j = 0; j < n; ++j)
      if (j != who && rng.chance(0.5)) survivors.insert(j);
    const auto alpha = crash_pattern(n, who, round, survivors, t + 3);
    ASSERT_TRUE(alpha.is_crash());
    const auto prefs = sample_preferences(n, rng);
    for (const auto& [name, drive] : paper_drivers(n, t)) {
      const RunSummary s = drive(alpha, prefs);
      ASSERT_TRUE(check_eba(s.record).ok_strict()) << name << " sample " << k;
    }
  }
}

// Degenerate shapes: t = 0 (no failures allowed) and the largest legal t.
TEST(EdgeShapes, TZeroDecidesFast) {
  const int n = 4;
  const auto alpha = FailurePattern::failure_free(n);
  for (const auto& [name, drive] : paper_drivers(n, 0)) {
    const std::vector<Value> ones(static_cast<std::size_t>(n), Value::one);
    const RunSummary s = drive(alpha, ones);
    for (AgentId i = 0; i < n; ++i)
      EXPECT_LE(s.round_of(i), 2) << name << " agent " << i;
    EXPECT_TRUE(check_eba(s.record).ok_strict()) << name;
  }
}

TEST(EdgeShapes, MaximalTIsExercised) {
  const int n = 5;
  const int t = n - 2;
  Rng rng(91);
  for (int k = 0; k < 50; ++k) {
    const auto alpha = sample_adversary(n, t, t + 2, 0.6, rng);
    const auto prefs = sample_preferences(n, rng);
    for (const auto& [name, drive] : paper_drivers(n, t)) {
      const RunSummary s = drive(alpha, prefs);
      ASSERT_TRUE(check_eba(s.record).ok_strict()) << name;
    }
  }
}

TEST(EdgeShapes, MaxAgentsBoundary) {
  // The AgentSet representation caps the system at 64 agents; the limited-
  // information protocols must work right at the boundary.
  const int n = kMaxAgents;
  const int t = 8;
  Rng rng(64);
  const auto alpha = sample_adversary(n, t, t + 2, 0.3, rng);
  const auto prefs = sample_preferences(n, rng);
  for (const auto& [name, drive] :
       std::vector<NamedDriver>{{"P_min", make_min_driver(n, t)},
                                {"P_basic", make_basic_driver(n, t)}}) {
    const RunSummary s = drive(alpha, prefs);
    EXPECT_TRUE(check_eba(s.record).ok_strict()) << name;
  }
}

TEST(EdgeShapes, TwoAgents) {
  // n=2, t=0: the smallest legal system.
  for (const auto& [name, drive] : paper_drivers(2, 0)) {
    const RunSummary s = drive(FailurePattern::failure_free(2),
                               {Value::one, Value::zero});
    EXPECT_TRUE(check_eba(s.record).ok_strict()) << name;
    for (AgentId i = 0; i < 2; ++i) {
      ASSERT_TRUE(s.decisions[static_cast<std::size_t>(i)].has_value());
      EXPECT_EQ(s.decisions[static_cast<std::size_t>(i)]->value, Value::zero);
    }
  }
}

}  // namespace
}  // namespace eba
