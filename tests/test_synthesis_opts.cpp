// KbpSynthesizer scaling tests: (a) the optimizations are invisible —
// synthesis produces bit-identical decision tables and per-world decisions
// with and without world dedup, class/component memoization, and
// parallelism; (b) the optimized synthesizer re-derives the paper's
// protocols at n = 5 (Thm 6.5/6.6 beyond the seed's n <= 4 ceiling) and in
// a γ_fip context at n = 4.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "action/p_basic.hpp"
#include "action/p_min.hpp"
#include "action/p_opt.hpp"
#include "failure/generators.hpp"
#include "kripke/synthesis.hpp"

namespace eba {
namespace {

std::vector<std::pair<FailurePattern, std::vector<Value>>> all_worlds(
    const EnumerationConfig& cfg) {
  std::vector<std::pair<FailurePattern, std::vector<Value>>> worlds;
  const auto prefs = all_preference_vectors(cfg.n);
  enumerate_adversaries(cfg, [&](const FailurePattern& alpha) {
    for (const auto& p : prefs) worlds.emplace_back(alpha, p);
    return true;
  });
  return worlds;
}

/// The option grid: baseline (everything off), each lever alone, all
/// levers, and all levers with oversubscribed parallelism (4 threads even
/// on a 1-core box exercises the pool paths).
std::vector<std::pair<std::string, SynthesisOptions>> option_grid() {
  return {
      {"baseline", {.dedup_worlds = false, .memoize = false, .workers = 1}},
      {"dedup", {.dedup_worlds = true, .memoize = false, .workers = 1}},
      {"memoize", {.dedup_worlds = false, .memoize = true, .workers = 1}},
      {"dedup+memoize", {.dedup_worlds = true, .memoize = true, .workers = 1}},
      {"all+parallel", {.dedup_worlds = true, .memoize = true, .workers = 4}},
      {"parallel-no-memo",
       {.dedup_worlds = false, .memoize = false, .workers = 4}},
      {"dedup+parallel-no-memo",
       {.dedup_worlds = true, .memoize = false, .workers = 4}},
  };
}

template <class X>
void expect_invariant_under_options(X x, int t, KbpProgram program,
                                    const EnumerationConfig& cfg,
                                    int horizon) {
  const auto worlds = all_worlds(cfg);
  KbpSynthesizer<X> baseline_synth(
      x, t, program, {.dedup_worlds = false, .memoize = false, .workers = 1});
  const auto baseline = baseline_synth.run(worlds, horizon);
  EXPECT_EQ(baseline.stats.evaluated_rounds, baseline.stats.world_rounds)
      << "baseline must evaluate every world every round";
  for (const auto& [name, opt] : option_grid()) {
    KbpSynthesizer<X> synth(x, t, program, opt);
    const auto result = synth.run(worlds, horizon);
    EXPECT_EQ(result.table, baseline.table) << name;
    ASSERT_EQ(result.decisions.size(), baseline.decisions.size()) << name;
    for (std::size_t w = 0; w < worlds.size(); ++w) {
      for (AgentId i = 0; i < x.n(); ++i) {
        const auto& got = result.decisions[w][static_cast<std::size_t>(i)];
        const auto& want = baseline.decisions[w][static_cast<std::size_t>(i)];
        ASSERT_EQ(got.has_value(), want.has_value())
            << name << " world " << w << " agent " << i;
        if (want) {
          EXPECT_EQ(got->value, want->value) << name << " world " << w;
          EXPECT_EQ(got->round, want->round) << name << " world " << w;
        }
      }
    }
    if (opt.dedup_worlds) {
      EXPECT_LT(result.stats.evaluated_rounds, result.stats.world_rounds)
          << name << ": dedup found no duplicate joint signatures";
    }
  }
}

TEST(SynthesisOptions, P0MinContextInvariant) {
  expect_invariant_under_options(MinExchange(3), 1, KbpProgram::p0,
                                 {.n = 3, .t = 1, .rounds = 2}, 4);
}

TEST(SynthesisOptions, P0BasicContextInvariant) {
  expect_invariant_under_options(BasicExchange(3), 1, KbpProgram::p0,
                                 {.n = 3, .t = 1, .rounds = 2}, 4);
}

TEST(SynthesisOptions, P1MinContextInvariant) {
  expect_invariant_under_options(MinExchange(3), 1, KbpProgram::p1,
                                 {.n = 3, .t = 1, .rounds = 2}, 4);
}

TEST(SynthesisOptions, P1FipContextInvariant) {
  expect_invariant_under_options(FipExchange(3), 1, KbpProgram::p1,
                                 {.n = 3, .t = 1, .rounds = 2}, 4);
}

// Component memoization must slash the number of C_N traversals, not just
// match results: in the γ_fip n=3 context the baseline runs one BFS per
// (world, peer) test, the memoized path one per component.
TEST(SynthesisOptions, MemoizationCollapsesBfsCount) {
  const auto worlds = all_worlds({.n = 3, .t = 1, .rounds = 2});
  KbpSynthesizer<FipExchange> baseline(
      FipExchange(3), 1, KbpProgram::p1,
      {.dedup_worlds = false, .memoize = false, .workers = 1});
  KbpSynthesizer<FipExchange> memoized(
      FipExchange(3), 1, KbpProgram::p1,
      {.dedup_worlds = true, .memoize = true, .workers = 1});
  const auto slow = baseline.run(worlds, 4);
  const auto fast = memoized.run(worlds, 4);
  EXPECT_GT(slow.stats.common_bfs, 10 * fast.stats.common_bfs);
}

// Thm 6.5 at n = 5: synthesis from P0 over the full γ_min(5, 1) context
// (1281 adversaries × 32 preference vectors = 40992 worlds) re-derives
// exactly P_min on every reachable local state.
TEST(SynthesisScale, P0MinContextYieldsPMinAtN5) {
  const int n = 5;
  const int t = 1;
  const auto worlds = all_worlds({.n = n, .t = t, .rounds = 2});
  ASSERT_EQ(worlds.size(), 40992u);
  KbpSynthesizer<MinExchange> synth(MinExchange(n), t, KbpProgram::p0);
  const auto result = synth.run(worlds, 4);
  const PMin pmin(n, t);
  EXPECT_GT(result.table.size(), 10u);
  for (const auto& [state, action] : result.table)
    EXPECT_EQ(action, pmin(state))
        << "state time=" << state.time << " init=" << to_string(state.init)
        << " jd=" << to_string(state.jd);
  EXPECT_LT(result.stats.evaluated_rounds, result.stats.world_rounds / 50)
      << "dedup should collapse the n=5 context by orders of magnitude";
}

// Thm 6.6 at n = 5: synthesis from P0 over γ_basic(5, 1) re-derives P_basic.
TEST(SynthesisScale, P0BasicContextYieldsPBasicAtN5) {
  const int n = 5;
  const int t = 1;
  const auto worlds = all_worlds({.n = n, .t = t, .rounds = 2});
  KbpSynthesizer<BasicExchange> synth(BasicExchange(n), t, KbpProgram::p0);
  const auto result = synth.run(worlds, 4);
  const PBasic pbasic(n, t);
  EXPECT_GT(result.table.size(), 10u);
  for (const auto& [state, action] : result.table)
    EXPECT_EQ(action, pbasic(state))
        << "state time=" << state.time << " init=" << to_string(state.init)
        << " jd=" << to_string(state.jd) << " #1=" << state.ones;
}

// γ_fip beyond n = 3: P1 synthesized over the full-information context
// (n = 4, drops through round t+1 = 2 so the partial system is
// epistemically adequate wherever decisions happen) reproduces P_opt's runs
// decision-for-decision.
TEST(SynthesisScale, P1FipContextMatchesPOptAtN4) {
  const int n = 4;
  const int t = 1;
  const auto worlds = all_worlds({.n = n, .t = t, .rounds = 2});
  ASSERT_EQ(worlds.size(), 4112u);
  KbpSynthesizer<FipExchange> synth(FipExchange(n), t, KbpProgram::p1);
  const auto result = synth.run(worlds, 4);
  for (std::size_t w = 0; w < worlds.size(); ++w) {
    SimulateOptions opt;
    opt.max_rounds = 4;
    opt.stop_when_all_decided = false;
    const auto run = simulate(FipExchange(n), POpt(n, t), worlds[w].first,
                              worlds[w].second, t, opt);
    for (AgentId i = 0; i < n; ++i) {
      const auto expected = run.record.decision(i);
      const auto& got = result.decisions[w][static_cast<std::size_t>(i)];
      ASSERT_EQ(got.has_value(), expected.has_value()) << "world " << w;
      if (expected) {
        EXPECT_EQ(got->value, expected->value) << "world " << w;
        EXPECT_EQ(got->round, expected->round) << "world " << w;
      }
    }
  }
}

}  // namespace
}  // namespace eba
