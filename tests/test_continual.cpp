// The Halpern–Moses–Waarts optimality characterization (Theorem 7.5),
// checked mechanically for P_opt on an exhaustively enumerated
// full-information context:
//
//   i ∈ N ⇒ ( ○(decided_i = 0) ⇔ B_i^N(∃0 ∧ C⊡_{N∧O}∃0 ∧ ¬○(decided_i = 1)) )
//   i ∈ N ⇒ ( ○(decided_i = 1) ⇔ B_i^N(∃1 ∧ C⊡_{N∧Z}∃1 ∧ ¬○(decided_i = 0)) )
//
// Since Cor 7.8 says every implementation of P1 is optimal, P_opt must
// satisfy both biconditionals at every (epistemically adequate) point.
#include <gtest/gtest.h>

#include "action/p_opt.hpp"
#include "kripke/continual.hpp"
#include "kripke/system.hpp"

namespace eba {
namespace {

using FipSys = InterpretedSystem<FipExchange, POpt>;

/// decided_i = v holds at time pt.time + 1.
bool next_decided(const FipSys& I, Point pt, AgentId i, Value v) {
  const auto d = I.run(pt.run).record.decision(i);
  return d && d->value == v && d->round <= pt.time + 1;
}

class Theorem75 : public ::testing::TestWithParam<int> {};

TEST_P(Theorem75, OptimalityCharacterizationHoldsForPOpt) {
  const int n = GetParam();
  const int t = 1;
  FipSys sys(FipExchange(n), POpt(n, t), t, t + 3);
  sys.add_all_runs(EnumerationConfig{.n = n, .t = t, .rounds = 2});
  sys.finalize();

  const BoxReachability<FipSys> box_o(
      sys, nonfaulty_deciders_indexical(sys, Value::one));
  const BoxReachability<FipSys> box_z(
      sys, nonfaulty_deciders_indexical(sys, Value::zero));

  // C⊡ of a run-invariant fact depends only on the run; precompute both.
  std::vector<char> cck_exists0(static_cast<std::size_t>(sys.num_runs()));
  std::vector<char> cck_exists1(static_cast<std::size_t>(sys.num_runs()));
  for (int r = 0; r < sys.num_runs(); ++r) {
    cck_exists0[static_cast<std::size_t>(r)] =
        box_o.continual_common_knowledge(sys, r, [&](Point x) {
          return sys.exists_init(x, Value::zero);
        });
    cck_exists1[static_cast<std::size_t>(r)] =
        box_z.continual_common_knowledge(sys, r, [&](Point x) {
          return sys.exists_init(x, Value::one);
        });
  }

  // The enumeration covers drops in rounds 1..2, so knowledge is faithful
  // for times <= 2 — which covers every decision of P_opt at t=1 (all
  // decisions land by round t+2 = 3, i.e. actions at times <= 2).
  const int max_time = 2;
  int lhs_zero = 0;
  int lhs_one = 0;
  for (int r = 0; r < sys.num_runs(); ++r) {
    for (int m = 0; m <= max_time; ++m) {
      const Point pt{r, m};
      for (AgentId i : sys.nonfaulty_set(pt)) {
        const bool decides0 = next_decided(sys, pt, i, Value::zero);
        const bool decides1 = next_decided(sys, pt, i, Value::one);

        const bool rhs0 = sys.believes_nonfaulty(i, pt, [&](Point q) {
          return sys.exists_init(q, Value::zero) &&
                 cck_exists0[static_cast<std::size_t>(q.run)] &&
                 !next_decided(sys, q, i, Value::one);
        });
        const bool rhs1 = sys.believes_nonfaulty(i, pt, [&](Point q) {
          return sys.exists_init(q, Value::one) &&
                 cck_exists1[static_cast<std::size_t>(q.run)] &&
                 !next_decided(sys, q, i, Value::zero);
        });

        ASSERT_EQ(decides0, rhs0)
            << "run " << r << " time " << m << " agent " << i << " (0-side)";
        ASSERT_EQ(decides1, rhs1)
            << "run " << r << " time " << m << " agent " << i << " (1-side)";
        lhs_zero += decides0 ? 1 : 0;
        lhs_one += decides1 ? 1 : 0;
      }
    }
  }
  // Both sides of the characterization must actually fire.
  EXPECT_GT(lhs_zero, 0);
  EXPECT_GT(lhs_one, 0);
}

INSTANTIATE_TEST_SUITE_P(SmallContexts, Theorem75, ::testing::Values(3, 4),
                         [](const ::testing::TestParamInfo<int>& pinfo) {
                           std::string name = "n";
                           name += std::to_string(pinfo.param);
                           return name;
                         });

// Sanity for the ⊡ machinery itself: reachability is an equivalence
// relation; C⊡ of a run-invariant fact is constant on components, is
// factive on the own run, and fails whenever the component contains a
// counterexample run.
TEST(BoxReachability, BasicProperties) {
  const int n = 3;
  const int t = 1;
  FipSys sys(FipExchange(n), POpt(n, t), t, t + 3);
  sys.add_all_runs(EnumerationConfig{.n = n, .t = t, .rounds = 1});
  sys.finalize();

  // Use the theorem's N ∧ Z set: runs where nobody decides 0 have empty S,
  // hence singleton components, so positives are guaranteed to exist.
  const BoxReachability<FipSys> box(
      sys, nonfaulty_deciders_indexical(sys, Value::zero));
  auto exists1 = [&](Point x) { return sys.exists_init(x, Value::one); };

  std::vector<char> cck(static_cast<std::size_t>(sys.num_runs()));
  for (int r = 0; r < sys.num_runs(); ++r)
    cck[static_cast<std::size_t>(r)] =
        box.continual_common_knowledge(sys, r, exists1);

  int ck_runs = 0;
  for (int r = 0; r < sys.num_runs(); ++r) {
    EXPECT_TRUE(box.reachable(r, r));
    // Factivity on the own run.
    if (cck[static_cast<std::size_t>(r)]) {
      ++ck_runs;
      EXPECT_TRUE(exists1(Point{r, 0}));
    }
    // Constancy on components and symmetry (spot-checked against run 0).
    EXPECT_EQ(box.reachable(r, 0), box.reachable(0, r));
    if (box.reachable(r, 0)) {
      EXPECT_EQ(cck[static_cast<std::size_t>(r)], cck[0]);
    }
    // A ¬φ run in the component kills C⊡ for the whole component.
    if (!exists1(Point{r, 0})) {
      for (int r2 = 0; r2 < sys.num_runs(); ++r2) {
        if (box.reachable(r, r2)) {
          EXPECT_FALSE(cck[static_cast<std::size_t>(r2)]);
        }
      }
    }
  }
  EXPECT_GT(ck_runs, 0);
}

}  // namespace
}  // namespace eba
