// Reference implementation of communication graphs and their knowledge
// operators, retained verbatim (modulo naming) from the pre-bit-packed
// library for differential testing. Everything here is deliberately the
// slow, obviously-correct formulation: one byte per label, element-wise
// merge, per-member cone loops, and the recursive f-table recurrence —
// exactly what src/graph/{comm_graph,knowledge} computed before the packed
// two-plane representation. test_differential_graph.cpp drives both
// implementations through identical runs and asserts they never diverge.
#pragma once

#include <vector>

#include "graph/comm_graph.hpp"

namespace eba::testref {

class RefCommGraph {
 public:
  RefCommGraph(int n, AgentId self, Value own_init)
      : n_(n), time_(0),
        prefs_(static_cast<std::size_t>(n), PrefLabel::unknown) {
    prefs_[static_cast<std::size_t>(self)] = pref_of(own_init);
  }

  static RefCommGraph blank(int n, int time) {
    RefCommGraph g(n, 0, Value::zero);
    g.prefs_.assign(static_cast<std::size_t>(n), PrefLabel::unknown);
    g.time_ = time;
    g.labels_.assign(static_cast<std::size_t>(time) * static_cast<std::size_t>(n) *
                         static_cast<std::size_t>(n),
                     Label::unknown);
    return g;
  }

  [[nodiscard]] int n() const { return n_; }
  [[nodiscard]] int time() const { return time_; }

  [[nodiscard]] Label label(int m, AgentId from, AgentId to) const {
    return labels_[index(m, from, to)];
  }
  void set_label(int m, AgentId from, AgentId to, Label l) {
    labels_[index(m, from, to)] = l;
  }
  [[nodiscard]] PrefLabel pref(AgentId j) const {
    return prefs_[static_cast<std::size_t>(j)];
  }
  void set_pref(AgentId j, PrefLabel p) {
    prefs_[static_cast<std::size_t>(j)] = p;
  }

  void advance_round(AgentId self, AgentSet received_from) {
    const int m = time_;
    time_ += 1;
    labels_.resize(static_cast<std::size_t>(time_) *
                       static_cast<std::size_t>(n_) *
                       static_cast<std::size_t>(n_),
                   Label::unknown);
    for (AgentId from = 0; from < n_; ++from) {
      const bool got = from == self || received_from.contains(from);
      set_label(m, from, self, got ? Label::present : Label::absent);
    }
  }

  void merge(const RefCommGraph& other) {
    for (int m = 0; m < other.time_; ++m)
      for (AgentId from = 0; from < n_; ++from)
        for (AgentId to = 0; to < n_; ++to) {
          const Label theirs = other.label(m, from, to);
          if (theirs == Label::unknown) continue;
          set_label(m, from, to, theirs);
        }
    for (AgentId j = 0; j < n_; ++j) {
      const PrefLabel theirs = other.pref(j);
      if (theirs != PrefLabel::unknown) set_pref(j, theirs);
    }
  }

  /// Rebuilds a packed CommGraph through the label-level mutation API; the
  /// differential test checks this equals (and hashes equal to) the packed
  /// graph grown incrementally through advance_round/merge.
  [[nodiscard]] CommGraph to_packed() const {
    CommGraph g = CommGraph::blank(n_, time_);
    for (int m = 0; m < time_; ++m)
      for (AgentId from = 0; from < n_; ++from)
        for (AgentId to = 0; to < n_; ++to)
          g.set_label(m, from, to, label(m, from, to));
    for (AgentId j = 0; j < n_; ++j) g.set_pref(j, pref(j));
    return g;
  }

 private:
  [[nodiscard]] std::size_t index(int m, AgentId from, AgentId to) const {
    return (static_cast<std::size_t>(m) * static_cast<std::size_t>(n_) +
            static_cast<std::size_t>(from)) *
               static_cast<std::size_t>(n_) +
           static_cast<std::size_t>(to);
  }

  int n_;
  int time_;
  std::vector<Label> labels_;     ///< time * n * n, round-major
  std::vector<PrefLabel> prefs_;  ///< n
};

/// The pre-packed cone construction: per-member, per-sender label probes.
class RefCone {
 public:
  RefCone(const RefCommGraph& g, AgentId target, int m_top) : m_top_(m_top) {
    members_.assign(static_cast<std::size_t>(m_top) + 1, AgentSet{});
    members_[static_cast<std::size_t>(m_top)].insert(target);
    for (int m = m_top; m > 0; --m) {
      for (AgentId to : members_[static_cast<std::size_t>(m)]) {
        for (AgentId from = 0; from < g.n(); ++from) {
          if (g.label(m - 1, from, to) == Label::present)
            members_[static_cast<std::size_t>(m - 1)].insert(from);
        }
      }
    }
  }

  [[nodiscard]] bool contains(AgentId j, int m) const {
    return m >= 0 && m <= m_top_ &&
           members_[static_cast<std::size_t>(m)].contains(j);
  }
  [[nodiscard]] AgentSet at(int m) const {
    return members_[static_cast<std::size_t>(m)];
  }
  [[nodiscard]] int last_heard(AgentId j) const {
    for (int m = m_top_; m >= 0; --m)
      if (members_[static_cast<std::size_t>(m)].contains(j)) return m;
    return -1;
  }

 private:
  int m_top_;
  std::vector<AgentSet> members_;
};

inline RefCommGraph ref_extract_view(const RefCommGraph& g, AgentId j, int m) {
  const RefCone cone(g, j, m);
  RefCommGraph view = RefCommGraph::blank(g.n(), m);
  for (int m2 = 1; m2 <= m; ++m2)
    for (AgentId to : cone.at(m2))
      for (AgentId from = 0; from < g.n(); ++from)
        view.set_label(m2 - 1, from, to, g.label(m2 - 1, from, to));
  for (AgentId k : cone.at(0)) view.set_pref(k, g.pref(k));
  return view;
}

/// The full f table by the original element-wise recurrence.
inline std::vector<std::vector<AgentSet>> ref_known_faults_table(
    const RefCommGraph& g) {
  std::vector<std::vector<AgentSet>> f(
      static_cast<std::size_t>(g.time()) + 1,
      std::vector<AgentSet>(static_cast<std::size_t>(g.n())));
  for (int m = 1; m <= g.time(); ++m) {
    for (AgentId j = 0; j < g.n(); ++j) {
      AgentSet acc = f[static_cast<std::size_t>(m - 1)][static_cast<std::size_t>(j)];
      for (AgentId from = 0; from < g.n(); ++from) {
        switch (g.label(m - 1, from, j)) {
          case Label::absent:
            acc.insert(from);
            break;
          case Label::present:
            acc = acc.united(
                f[static_cast<std::size_t>(m - 1)][static_cast<std::size_t>(from)]);
            break;
          case Label::unknown:
            break;
        }
      }
      f[static_cast<std::size_t>(m)][static_cast<std::size_t>(j)] = acc;
    }
  }
  return f;
}

}  // namespace eba::testref
