// Cross-protocol behavioural tests: the paper's worked claims
// (Prop 8.2 failure-free decision rounds, Example 7.1, Prop 6.1 termination
// bound) on concrete runs of P_min, P_basic and P_fip.
#include <gtest/gtest.h>

#include "core/spec.hpp"
#include "failure/canonical.hpp"
#include "failure/generators.hpp"
#include "failure/orbit_sweep.hpp"
#include "sim/drivers.hpp"

namespace eba {
namespace {

std::vector<Value> all_ones(int n) {
  return std::vector<Value>(static_cast<std::size_t>(n), Value::one);
}

std::vector<Value> ones_with_zero_at(int n, AgentId who) {
  auto v = all_ones(n);
  v[static_cast<std::size_t>(who)] = Value::zero;
  return v;
}

struct Shape {
  int n;
  int t;
};

class FailureFree : public ::testing::TestWithParam<Shape> {};

// Prop 8.2(a): failure-free with some 0 preference: everyone decides 0 by
// round 2 under all three protocols.
TEST_P(FailureFree, SomeZeroDecidesByRoundTwo) {
  const auto [n, t] = GetParam();
  const auto alpha = FailurePattern::failure_free(n);
  for (const auto& [name, drive] : paper_drivers(n, t)) {
    for (AgentId z = 0; z < n; ++z) {
      const RunSummary s = drive(alpha, ones_with_zero_at(n, z));
      for (AgentId i = 0; i < n; ++i) {
        ASSERT_TRUE(s.decisions[static_cast<std::size_t>(i)].has_value())
            << name << " agent " << i;
        EXPECT_EQ(s.decisions[static_cast<std::size_t>(i)]->value, Value::zero)
            << name;
        EXPECT_LE(s.decisions[static_cast<std::size_t>(i)]->round, 2) << name;
      }
      EXPECT_TRUE(check_eba(s.record).ok_strict()) << name;
    }
  }
}

// Prop 8.2(b): failure-free all-1: P_min decides in round t+2; P_basic and
// P_fip decide in round 2.
TEST_P(FailureFree, AllOnesRounds) {
  const auto [n, t] = GetParam();
  const auto alpha = FailurePattern::failure_free(n);
  const auto prefs = all_ones(n);

  const RunSummary min_run = make_min_driver(n, t)(alpha, prefs);
  const RunSummary basic_run = make_basic_driver(n, t)(alpha, prefs);
  const RunSummary fip_run = make_fip_driver(n, t)(alpha, prefs);

  for (AgentId i = 0; i < n; ++i) {
    EXPECT_EQ(min_run.round_of(i), t + 2) << "P_min agent " << i;
    EXPECT_EQ(basic_run.round_of(i), 2) << "P_basic agent " << i;
    EXPECT_EQ(fip_run.round_of(i), 2) << "P_fip agent " << i;
    EXPECT_EQ(min_run.decisions[static_cast<std::size_t>(i)]->value, Value::one);
    EXPECT_EQ(basic_run.decisions[static_cast<std::size_t>(i)]->value, Value::one);
    EXPECT_EQ(fip_run.decisions[static_cast<std::size_t>(i)]->value, Value::one);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, FailureFree,
                         ::testing::Values(Shape{3, 1}, Shape{4, 1}, Shape{4, 2},
                                           Shape{5, 2}, Shape{5, 3}, Shape{6, 2},
                                           Shape{7, 4}, Shape{8, 3}),
                         [](const ::testing::TestParamInfo<Shape>& pinfo) {
                           std::string name = "n";
                           name += std::to_string(pinfo.param.n);
                           name += "t";
                           name += std::to_string(pinfo.param.t);
                           return name;
                         });

// Example 7.1: n=20, t=10, all preferences 1, agents 0..9 faulty and silent.
// The FIP decides in round 3; P_min and P_basic decide in round 12.
TEST(Example71, FipDecidesRoundThreeOthersRoundTwelve) {
  const int n = 20;
  const int t = 10;
  AgentSet silent;
  for (AgentId i = 0; i < t; ++i) silent.insert(i);
  const auto alpha = silent_agents_pattern(n, silent, t + 3);
  const auto prefs = all_ones(n);

  const RunSummary fip_run = make_fip_driver(n, t)(alpha, prefs);
  const RunSummary min_run = make_min_driver(n, t)(alpha, prefs);
  const RunSummary basic_run = make_basic_driver(n, t)(alpha, prefs);

  for (AgentId i : alpha.nonfaulty()) {
    EXPECT_EQ(fip_run.round_of(i), 3) << "P_fip agent " << i;
    EXPECT_EQ(min_run.round_of(i), t + 2) << "P_min agent " << i;
    EXPECT_EQ(basic_run.round_of(i), t + 2) << "P_basic agent " << i;
  }
  EXPECT_TRUE(check_eba(fip_run.record).ok());
  EXPECT_TRUE(check_eba(min_run.record).ok());
  EXPECT_TRUE(check_eba(basic_run.record).ok());
}

// Prop 6.1 / Prop 7.3 over every small adversary: all three protocols
// satisfy the EBA spec (with validity even for faulty agents and the t+2
// termination bound) on every SO(t) pattern with drops in the first two
// rounds and every preference vector. The sweep visits one representative
// world per (agent-renaming orbit × stabilizer preference class)
// (failure/orbit_sweep.hpp): spec-satisfaction is relabeling-invariant, so
// representative coverage equals full coverage — the run-level symmetry
// reduction that lets the sweep reach n = 7 — and the world weights are
// checked to sum to the unreduced (pattern × preference) count.
class ExhaustiveSpec : public ::testing::TestWithParam<Shape> {};

TEST_P(ExhaustiveSpec, AllAdversariesAllPreferences) {
  const auto [n, t] = GetParam();
  EnumerationConfig cfg{.n = n, .t = t, .rounds = 2};
  const auto drivers = paper_drivers(n, t);
  std::uint64_t checked = 0;
  const std::uint64_t covered = for_each_representative_world(
      cfg, [&](const FailurePattern& alpha, const std::vector<Value>& p,
               std::uint64_t /*weight*/) {
        for (const auto& [name, drive] : drivers) {
          const RunSummary s = drive(alpha, p);
          const SpecReport rep = check_eba(s.record);
          EXPECT_TRUE(rep.ok_strict())
              << name << ": "
              << (rep.violations.empty() ? "?" : rep.violations[0]);
          ++checked;
          if (::testing::Test::HasFailure()) return false;
        }
        return true;
      });
  EXPECT_GT(checked, 0u);
  EXPECT_EQ(covered,
            count_adversaries(cfg) * (std::uint64_t{1} << cfg.n))
      << "representative weights must cover the whole world space";
}

INSTANTIATE_TEST_SUITE_P(Shapes, ExhaustiveSpec,
                         ::testing::Values(Shape{3, 1}, Shape{4, 1},
                                           Shape{4, 2}, Shape{5, 1},
                                           Shape{6, 1}, Shape{7, 1}),
                         [](const ::testing::TestParamInfo<Shape>& pinfo) {
                           std::string name = "n";
                           name += std::to_string(pinfo.param.n);
                           name += "t";
                           name += std::to_string(pinfo.param.t);
                           return name;
                         });

// The protocol-zoo baselines (P_es over E_report, P_auth over E_auth) under
// the same exhaustive representative-world sweep, plus the early-stopping
// round bound on every swept world: with f realized faults, every agent
// decides in round ≤ min(f+2, t+2) — equivalently at state time
// ≤ min(f+1, t+1), which implies the classical min(f+2, t+1) early-stopping
// *time* bound (see docs/PROTOCOL_ZOO.md on the round-vs-time numbering).
class ZooExhaustive : public ::testing::TestWithParam<Shape> {};

TEST_P(ZooExhaustive, SpecAndEarlyStoppingBound) {
  const auto [n, t] = GetParam();
  EnumerationConfig cfg{.n = n, .t = t, .rounds = 2};
  const std::vector<std::pair<const char*, RunDriver>> drivers = {
      {"P_es", make_early_stop_driver(n, t)},
      {"P_auth", make_auth_driver(n, t)},
  };
  std::uint64_t checked = 0;
  const std::uint64_t covered = for_each_representative_world(
      cfg, [&](const FailurePattern& alpha, const std::vector<Value>& p,
               std::uint64_t /*weight*/) {
        const int f = alpha.num_faulty();
        const int bound = std::min(f + 2, t + 2);
        for (const auto& [name, drive] : drivers) {
          const RunSummary s = drive(alpha, p);
          const SpecReport rep = check_eba(s.record);
          EXPECT_TRUE(rep.ok_strict())
              << name << ": "
              << (rep.violations.empty() ? "?" : rep.violations[0]);
          for (AgentId i = 0; i < n; ++i)
            EXPECT_LE(s.round_of(i), bound)
                << name << " agent " << i << " missed the early-stopping "
                << "bound min(f+2, t+2) with f=" << f;
          ++checked;
          if (::testing::Test::HasFailure()) return false;
        }
        return true;
      });
  EXPECT_GT(checked, 0u);
  EXPECT_EQ(covered, count_adversaries(cfg) * (std::uint64_t{1} << cfg.n))
      << "representative weights must cover the whole world space";
}

INSTANTIATE_TEST_SUITE_P(Shapes, ZooExhaustive,
                         ::testing::Values(Shape{3, 1}, Shape{4, 1},
                                           Shape{4, 2}, Shape{5, 1},
                                           Shape{5, 2}),
                         [](const ::testing::TestParamInfo<Shape>& pinfo) {
                           std::string name = "n";
                           name += std::to_string(pinfo.param.n);
                           name += "t";
                           name += std::to_string(pinfo.param.t);
                           return name;
                         });

// Failure-free behaviour of the zoo baselines: any 0 preference decides 0
// by round 2; unanimous 1 decides 1 in round 2 (f=0 ⇒ the count test fires
// at time 1) — the low-f regime where early stopping beats P_min's fixed
// t+2 (pinned against P_min in test_zoo.cpp).
TEST_P(FailureFree, ZooBaselinesDecideByRoundTwo) {
  const auto [n, t] = GetParam();
  const auto alpha = FailurePattern::failure_free(n);
  const std::vector<std::pair<const char*, RunDriver>> drivers = {
      {"P_es", make_early_stop_driver(n, t)},
      {"P_auth", make_auth_driver(n, t)},
  };
  for (const auto& [name, drive] : drivers) {
    const RunSummary ones_run = drive(alpha, all_ones(n));
    for (AgentId i = 0; i < n; ++i) {
      EXPECT_EQ(ones_run.round_of(i), 2) << name << " agent " << i;
      EXPECT_EQ(ones_run.decisions[static_cast<std::size_t>(i)]->value,
                Value::one)
          << name;
    }
    EXPECT_TRUE(check_eba(ones_run.record).ok_strict()) << name;
    for (AgentId z = 0; z < n; ++z) {
      const RunSummary s = drive(alpha, ones_with_zero_at(n, z));
      for (AgentId i = 0; i < n; ++i) {
        ASSERT_TRUE(s.decisions[static_cast<std::size_t>(i)].has_value())
            << name << " agent " << i;
        EXPECT_EQ(s.decisions[static_cast<std::size_t>(i)]->value, Value::zero)
            << name;
        EXPECT_LE(s.round_of(i), 2) << name;
      }
      EXPECT_TRUE(check_eba(s.record).ok_strict()) << name;
    }
  }
}

// Example 7.1's world for the zoo baselines: t silent faulty agents,
// unanimous 1. The budget-common test pins the faulty set at exactly t in
// round 2 and fires simultaneously: both baselines decide in round 3, the
// same round as P_opt (f = t is early stopping's worst case; the win is at
// low f).
TEST(Example71, ZooBaselinesDecideRoundThree) {
  const int n = 20;
  const int t = 10;
  AgentSet silent;
  for (AgentId i = 0; i < t; ++i) silent.insert(i);
  const auto alpha = silent_agents_pattern(n, silent, t + 3);
  const auto prefs = all_ones(n);

  for (const auto& [name, drive] :
       std::vector<std::pair<const char*, RunDriver>>{
           {"P_es", make_early_stop_driver(n, t)},
           {"P_auth", make_auth_driver(n, t)}}) {
    const RunSummary s = drive(alpha, prefs);
    for (AgentId i : alpha.nonfaulty())
      EXPECT_EQ(s.round_of(i), 3) << name << " agent " << i;
    EXPECT_TRUE(check_eba(s.record).ok()) << name;
  }
}

}  // namespace
}  // namespace eba
