// Run-relabeling tests: the simulate-once-relabel-everywhere engine is
// *exact*. relabel_run reproduces re-simulation bit for bit across all four
// protocols, both omission models, and static as well as adaptive-realized
// patterns; the orbit machinery's renamings and preference quotients are
// sound; the quotiented add_all_runs and the orbit-reuse synthesizer are
// pinned identical to their re-simulation baselines.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "action/p_basic.hpp"
#include "action/p_min.hpp"
#include "action/p_opt.hpp"
#include "action/p_opt_go.hpp"
#include "exchange/basic.hpp"
#include "exchange/fip.hpp"
#include "exchange/min.hpp"
#include "failure/canonical.hpp"
#include "failure/generators.hpp"
#include "failure/orbit_sweep.hpp"
#include "kripke/canonical_worlds.hpp"
#include "kripke/synthesis.hpp"
#include "kripke/system.hpp"
#include "sim/adaptive.hpp"
#include "sim/relabel.hpp"
#include "sim/simulator.hpp"
#include "stats/rng.hpp"

namespace eba {
namespace {

std::vector<AgentId> identity_perm(int n) {
  std::vector<AgentId> p(static_cast<std::size_t>(n));
  std::iota(p.begin(), p.end(), 0);
  return p;
}

/// Some fixed non-trivial renamings of n agents (a rotation and a swap).
std::vector<std::vector<AgentId>> sample_perms(int n) {
  std::vector<std::vector<AgentId>> out;
  std::vector<AgentId> rot(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    rot[static_cast<std::size_t>(i)] = static_cast<AgentId>((i + 1) % n);
  out.push_back(std::move(rot));
  auto swap01 = identity_perm(n);
  std::swap(swap01[0], swap01[1]);
  out.push_back(std::move(swap01));
  std::vector<AgentId> rev(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    rev[static_cast<std::size_t>(i)] = static_cast<AgentId>(n - 1 - i);
  out.push_back(std::move(rev));
  return out;
}

/// relabel_run(run(α, p), π) == run(π·α, π·p), bit for bit, for one
/// protocol pair.
template <class X, class P>
void expect_equivariant(const X& x, const P& act, const FailurePattern& alpha,
                        const std::vector<Value>& prefs, int t,
                        const std::vector<AgentId>& perm, const char* label) {
  SimulateOptions opt;
  opt.max_rounds = t + 2;
  opt.stop_when_all_decided = false;
  const Run<X> base = simulate(x, act, alpha, prefs, t, opt);
  const Run<X> relabeled_run = relabel_run(base, perm);
  const Run<X> resimulated = simulate(x, act, relabeled(alpha, perm),
                                      relabel_prefs(prefs, perm), t, opt);
  EXPECT_TRUE(relabeled_run == resimulated) << label;
}

void expect_equivariant_all_protocols(const FailurePattern& alpha,
                                      const std::vector<Value>& prefs, int t,
                                      const std::vector<AgentId>& perm,
                                      bool go_pattern) {
  const int n = alpha.n();
  // P_opt is certified for SO only; P_opt_go covers both models.
  if (!go_pattern) {
    expect_equivariant(MinExchange(n), PMin(n, t), alpha, prefs, t, perm,
                       "P_min");
    expect_equivariant(BasicExchange(n), PBasic(n, t), alpha, prefs, t, perm,
                       "P_basic");
    expect_equivariant(FipExchange(n), POpt(n, t), alpha, prefs, t, perm,
                       "P_opt");
  }
  expect_equivariant(FipExchange(n), POptGo(n, t), alpha, prefs, t, perm,
                     "P_opt_go");
}

TEST(RelabelRun, MatchesResimulationOnStaticPatterns) {
  for (const bool go : {false, true}) {
    const int n = 4;
    const int t = 2;
    EnumerationConfig cfg =
        go ? go_config(n, t, 1) : EnumerationConfig{.n = n, .t = t, .rounds = 1};
    Rng rng(7);
    std::uint64_t orbits = 0;
    enumerate_canonical_adversaries(
        cfg, [&](const FailurePattern& rep, std::uint64_t) {
          ++orbits;
          const std::vector<Value> prefs = sample_preferences(n, rng);
          for (const auto& perm : sample_perms(n))
            expect_equivariant_all_protocols(rep, prefs, t, perm, go);
          return orbits < 12;  // a spread of orbits keeps the test fast
        });
    EXPECT_GT(orbits, 0u);
  }
}

TEST(RelabelRun, MatchesResimulationOnAdaptiveRealizedPatterns) {
  const int n = 4;
  const int t = 1;
  Rng rng(11);
  for (const auto model : {FailureModel::sending, FailureModel::general}) {
    for (const auto& factory : shipped_strategies(n, t, model)) {
      const auto strat = factory.make(3);
      const std::vector<Value> prefs = sample_preferences(n, rng);
      AdaptiveRunOptions aopt;
      aopt.stop_when_all_decided = false;
      const AdaptiveOutcome out = run_adaptive(
          FipExchange(n), POptGo(n, t), *strat, prefs, t, aopt);
      // The realized pattern replayed statically must relabel like any
      // other pattern.
      for (const auto& perm : sample_perms(n))
        expect_equivariant_all_protocols(out.realized, prefs, t, perm,
                                         model == FailureModel::general);
    }
  }
}

TEST(ExpandOrbitPerms, PermsReconstructMembersInMaterializedOrder) {
  for (const EnumerationConfig cfg :
       {EnumerationConfig{.n = 4, .t = 2, .rounds = 1}, go_config(3, 1, 1)}) {
    enumerate_canonical_adversaries(
        cfg, [&](const FailurePattern& rep, std::uint64_t) {
          const std::vector<FailurePattern> members = expand_orbit(rep);
          std::size_t at = 0;
          bool first_is_identity_rep = false;
          expand_orbit_perms(
              rep, [&](const FailurePattern& member,
                       const std::vector<AgentId>& perm) {
                EXPECT_LT(at, members.size());
                EXPECT_EQ(member, members[at]) << "streaming order diverged";
                EXPECT_EQ(member, relabeled(rep, perm))
                    << "perm does not produce the member";
                if (at == 0)
                  first_is_identity_rep =
                      member == rep && perm == identity_perm(cfg.n);
                ++at;
                return true;
              });
          EXPECT_EQ(at, members.size());
          EXPECT_TRUE(first_is_identity_rep)
              << "first member must be the representative under identity";
          return true;
        });
  }
}

TEST(OrbitStabilizer, FixesTheRepresentativeAndQuotientCoversTheCube) {
  for (const EnumerationConfig cfg :
       {EnumerationConfig{.n = 4, .t = 2, .rounds = 1}, go_config(3, 1, 1)}) {
    const std::uint64_t P = std::uint64_t{1} << cfg.n;
    enumerate_canonical_adversaries(
        cfg, [&](const FailurePattern& rep, std::uint64_t) {
          for (const auto& sg : orbit_stabilizer(rep))
            EXPECT_EQ(relabeled(rep, sg), rep);

          const PreferenceQuotient q = preference_quotient(rep);
          std::uint64_t total = 0;
          for (const auto& cls : q.classes) total += cls.size;
          EXPECT_EQ(total, P) << "class sizes must tile the preference cube";
          for (std::uint64_t mask = 0; mask < P; ++mask) {
            const auto& cls = q.classes[q.class_of[mask]];
            EXPECT_LE(cls.mask, mask) << "class representative is lex-min";
            const auto& sigma = q.sigma[mask];
            EXPECT_EQ(AgentSet(cls.mask).permuted(sigma).bits(), mask)
                << "sigma must carry the class representative to the mask";
            EXPECT_EQ(relabeled(rep, sigma), rep)
                << "sigma must be a stabilizer element";
          }
          EXPECT_EQ(preference_classes(rep), q.classes);
          return true;
        });
  }
}

TEST(OrbitSweep, RepresentativeWeightsCoverAllWorlds) {
  for (const EnumerationConfig cfg :
       {EnumerationConfig{.n = 5, .t = 1, .rounds = 1},
        EnumerationConfig{.n = 4, .t = 2, .rounds = 2}, go_config(4, 1, 1)}) {
    std::uint64_t visited = 0;
    const std::uint64_t covered = for_each_representative_world(
        cfg, [&](const FailurePattern&, const std::vector<Value>&,
                 std::uint64_t weight) {
          EXPECT_GT(weight, 0u);
          ++visited;
          return true;
        });
    EXPECT_GT(visited, 0u);
    EXPECT_EQ(covered,
              count_adversaries(cfg) * (std::uint64_t{1} << cfg.n));
  }
}

/// The quotiented add_all_runs produces the identical run list (bit for
/// bit, same order) and the identical finalized Kripke partition,
/// class for class.
template <class X, class P>
void expect_same_system(X x, P act, int t, int horizon,
                        const EnumerationConfig& cfg) {
  InterpretedSystem<X, P> relabel_sys(x, act, t, horizon);
  relabel_sys.add_all_runs(cfg, {.reuse = RunReuse::relabel});
  InterpretedSystem<X, P> resim_sys(x, act, t, horizon);
  resim_sys.add_all_runs(cfg, {.reuse = RunReuse::resimulate});
  ASSERT_EQ(relabel_sys.num_runs(), resim_sys.num_runs());
  for (int r = 0; r < relabel_sys.num_runs(); ++r)
    ASSERT_TRUE(relabel_sys.run(r) == resim_sys.run(r)) << "run " << r;
  relabel_sys.finalize();
  resim_sys.finalize();
  EXPECT_TRUE(relabel_sys.same_partition(resim_sys));
}

TEST(AddAllRuns, RelabelPathIsBitIdenticalToResimulation) {
  expect_same_system(FipExchange(4), POpt(4, 1), 1, 3,
                     EnumerationConfig{.n = 4, .t = 1, .rounds = 1});
  expect_same_system(MinExchange(4), PMin(4, 2), 2, 4,
                     EnumerationConfig{.n = 4, .t = 2, .rounds = 1});
  expect_same_system(FipExchange(3), POptGo(3, 1), 1, 3, go_config(3, 1, 1));
}

TEST(Synthesizer, OrbitReuseMatchesPlainRun) {
  struct Case {
    int n;
    int t;
    KbpProgram program;
    int horizon;
  };
  for (const Case c : {Case{4, 1, KbpProgram::p0, 3},
                       Case{3, 1, KbpProgram::p1, 3}}) {
    const EnumerationConfig cfg{.n = c.n, .t = c.t, .rounds = 2};
    const CanonicalContext ctx = canonical_context_worlds(cfg);
    ASSERT_EQ(ctx.worlds.size(),
              count_adversaries(cfg) * (std::uint64_t{1} << c.n));
    ASSERT_EQ(ctx.orbits.size(), ctx.worlds.size());
    EXPECT_LT(ctx.representatives, ctx.worlds.size());

    KbpSynthesizer<FipExchange> plain(FipExchange(c.n), c.t, c.program);
    const auto expected = plain.run(ctx.worlds, c.horizon);
    KbpSynthesizer<FipExchange> reuse(FipExchange(c.n), c.t, c.program);
    const auto actual = reuse.run(ctx.worlds, c.horizon, ctx.orbits);

    EXPECT_EQ(actual.decisions, expected.decisions);
    EXPECT_EQ(actual.table.size(), expected.table.size());
    for (const auto& [state, action] : expected.table) {
      const auto it = actual.table.find(state);
      ASSERT_NE(it, actual.table.end());
      EXPECT_TRUE(it->second == action);
    }
    EXPECT_LT(actual.stats.evaluated_rounds, expected.stats.evaluated_rounds);
  }
}

}  // namespace
}  // namespace eba
