// Unit tests for communication graphs and the knowledge operators
// f, D, V, cone, extract_view (paper §A.2.7).
#include <gtest/gtest.h>

#include "exchange/fip.hpp"
#include "failure/generators.hpp"
#include "graph/knowledge.hpp"
#include "sim/simulator.hpp"

namespace eba {
namespace {

/// Runs E_fip with an all-noop action protocol for `rounds` rounds and
/// returns the final states; a convenient way to build real graphs.
std::vector<FipState> fip_states(int n, const FailurePattern& alpha,
                                 const std::vector<Value>& inits, int rounds) {
  const FipExchange x(n);
  auto noop = [](const FipState&) { return Action::noop(); };
  SimulateOptions opt;
  opt.max_rounds = rounds;
  opt.stop_when_all_decided = false;
  auto run = simulate(x, noop, alpha, inits, /*t=*/n - 2, opt);
  return run.states.back();
}

std::vector<Value> mixed_inits(int n) {
  std::vector<Value> v(static_cast<std::size_t>(n), Value::one);
  v[0] = Value::zero;
  return v;
}

TEST(CommGraphTest, AdvanceRecordsIncomingLabels) {
  CommGraph g(3, 0, Value::one);
  g.advance_round(0, AgentSet{1});
  EXPECT_EQ(g.time(), 1);
  EXPECT_EQ(g.label(0, 1, 0), Label::present);
  EXPECT_EQ(g.label(0, 2, 0), Label::absent);
  EXPECT_EQ(g.label(0, 0, 0), Label::present);
  EXPECT_EQ(g.label(0, 1, 2), Label::unknown);
}

TEST(CommGraphTest, MergeTakesDefiniteLabels) {
  CommGraph a(3, 0, Value::one);
  a.advance_round(0, AgentSet{1, 2});
  CommGraph b(3, 1, Value::zero);
  b.advance_round(1, AgentSet{2});
  a.merge(b);
  EXPECT_EQ(a.label(0, 2, 1), Label::present);
  EXPECT_EQ(a.label(0, 0, 1), Label::absent);
  EXPECT_EQ(a.pref(1), PrefLabel::zero);
}

TEST(CommGraphTest, MergeConflictThrows) {
  CommGraph a(2, 0, Value::one);
  a.advance_round(0, AgentSet{1});
  CommGraph b = CommGraph::blank(2, 1);
  b.set_label(0, 1, 0, Label::absent);  // contradicts a's observation
  EXPECT_THROW(a.merge(b), std::logic_error);
}

TEST(CommGraphTest, BitSizeMatchesShape) {
  CommGraph g = CommGraph::blank(4, 3);
  EXPECT_EQ(g.bit_size(), 2u * (3 * 4 * 4) + 2u * 4);
}

TEST(CommGraphTest, HashDistinguishesContent) {
  CommGraph a = CommGraph::blank(3, 1);
  CommGraph b = CommGraph::blank(3, 1);
  EXPECT_EQ(a.hash(), b.hash());
  b.set_label(0, 0, 1, Label::present);
  EXPECT_NE(a, b);
  EXPECT_NE(a.hash(), b.hash());
}

TEST(ConeTest, FailureFreeConeCoversEveryone) {
  const int n = 4;
  const auto states = fip_states(n, FailurePattern::failure_free(n),
                                 mixed_inits(n), 2);
  const Cone cone(states[0].graph, 0, 2);
  EXPECT_EQ(cone.at(2), AgentSet{0});
  EXPECT_EQ(cone.at(1), AgentSet::all(n));
  EXPECT_EQ(cone.at(0), AgentSet::all(n));
  for (AgentId j = 1; j < n; ++j) EXPECT_EQ(cone.last_heard(j), 1);
  EXPECT_EQ(cone.last_heard(0), 2);
}

TEST(ConeTest, SilentAgentNeverEntersCone) {
  const int n = 4;
  const auto alpha = silent_agents_pattern(n, AgentSet{3}, 3);
  const auto states = fip_states(n, alpha, mixed_inits(n), 3);
  const Cone cone(states[0].graph, 0, 3);
  for (int m = 0; m <= 2; ++m) EXPECT_FALSE(cone.contains(3, m)) << m;
  EXPECT_EQ(cone.last_heard(3), -1);
}

TEST(ConeTest, RelayedHistoryIsVisible) {
  // Agent 3 is silent towards 0 but talks to 1; 0 hears (3,0) via 1 at
  // time 2.
  const int n = 4;
  FailurePattern alpha(n, AgentSet{0, 1, 2});
  alpha.drop(0, 3, 0);
  alpha.drop(1, 3, 0);
  alpha.drop(2, 3, 0);
  const auto states = fip_states(n, alpha, mixed_inits(n), 2);
  const Cone cone(states[0].graph, 0, 2);
  EXPECT_TRUE(cone.contains(3, 0)) << "relayed through agent 1's graph";
  EXPECT_FALSE(cone.contains(3, 1));
  EXPECT_EQ(cone.last_heard(3), 0);
}

TEST(ExtractViewTest, ReconstructsExactSentGraph) {
  // In a deterministic run, the view extracted for (j, m) must equal the
  // graph agent j actually had at time m.
  const int n = 4;
  FailurePattern alpha(n, AgentSet{0, 1, 2});
  alpha.drop(0, 3, 1);
  alpha.drop(1, 3, 2);
  const FipExchange x(n);
  auto noop = [](const FipState&) { return Action::noop(); };
  SimulateOptions opt;
  opt.max_rounds = 3;
  opt.stop_when_all_decided = false;
  const auto run = simulate(x, noop, alpha, mixed_inits(n), n - 2, opt);

  const CommGraph& owner = run.states[3][0].graph;
  const Cone cone(owner, 0, 3);
  for (int m = 0; m <= 2; ++m) {
    for (AgentId j = 0; j < n; ++j) {
      if (!cone.contains(j, m)) continue;
      const CommGraph view = extract_view(owner, j, m);
      EXPECT_EQ(view, run.states[static_cast<std::size_t>(m)]
                          [static_cast<std::size_t>(j)]
                              .graph)
          << "agent " << j << " time " << m;
    }
  }
}

TEST(KnownFaultsTest, ReceiverDetectsSilentSender) {
  const int n = 4;
  const auto alpha = silent_agents_pattern(n, AgentSet{3}, 2);
  const auto states = fip_states(n, alpha, mixed_inits(n), 2);
  const CommGraph& g = states[0].graph;
  EXPECT_EQ(known_faults(g, 0, 0), AgentSet{});
  EXPECT_EQ(known_faults(g, 0, 1), AgentSet{3});
  EXPECT_EQ(known_faults(g, 0, 2), AgentSet{3});
  // Agent 0 also knows (via round-2 graphs) that 1 and 2 detected 3.
  EXPECT_EQ(known_faults(g, 1, 1), AgentSet{3});
  EXPECT_EQ(known_faults(g, 2, 1), AgentSet{3});
}

TEST(KnownFaultsTest, FaultKnowledgePropagatesOneRoundLate) {
  // Agent 3 drops only its message to 2 in round 1; 2 detects it, everyone
  // else learns it from 2's round-2 graph.
  const int n = 4;
  FailurePattern alpha(n, AgentSet{0, 1, 2});
  alpha.drop(0, 3, 2);
  const auto states = fip_states(n, alpha, mixed_inits(n), 2);
  const CommGraph& g = states[0].graph;
  EXPECT_EQ(known_faults(g, 0, 1), AgentSet{}) << "0 saw nothing in round 1";
  EXPECT_EQ(known_faults(g, 2, 1), AgentSet{3}) << "2 detected the omission";
  EXPECT_EQ(known_faults(g, 0, 2), AgentSet{3}) << "relayed in round 2";
}

TEST(DistributedFaultsTest, UnionOverSet) {
  const int n = 5;
  FailurePattern alpha(n, AgentSet{0, 1, 2});
  alpha.drop(0, 3, 1);  // only 1 sees 3's fault
  alpha.drop(0, 4, 2);  // only 2 sees 4's fault
  const auto states = fip_states(n, alpha, mixed_inits(n), 2);
  const CommGraph& g = states[0].graph;
  EXPECT_EQ(distributed_faults(g, AgentSet{1, 2}, 1), (AgentSet{3, 4}));
  EXPECT_EQ(distributed_faults(g, AgentSet{0}, 1), AgentSet{});
}

TEST(KnownValuesTest, TracksWhoKnewWhichInitsWhen) {
  const int n = 4;
  const auto states = fip_states(n, FailurePattern::failure_free(n),
                                 mixed_inits(n), 2);
  const CommGraph& g = states[1].graph;
  const Cone cone(g, 1, 2);
  // At time 0, agent 0 knew only its own 0; agent 1 only its own 1.
  EXPECT_EQ(known_values(g, 0, 0, cone), std::vector<Value>{Value::zero});
  EXPECT_EQ(known_values(g, 1, 0, cone), std::vector<Value>{Value::one});
  // At time 1 everyone knows both values.
  EXPECT_EQ(known_values(g, 1, 1, cone),
            (std::vector<Value>{Value::zero, Value::one}));
  // Unreachable nodes yield the empty set.
  EXPECT_TRUE(known_values(g, 2, 2, cone).empty());
}

}  // namespace
}  // namespace eba
