// Durable storage engine suite (src/store/): the fault-injecting VFS, the
// torn-write-safe journal, keyed digests, file-backed traces, and run-log
// recovery.
//
// The adversary here is the power cut. Every test drives real injected
// faults through MemVfs — tears at every byte offset of the final page,
// cuts at every fsync boundary, failed writes at every position — and
// demands the contract the engine documents: recovery either returns a
// verified prefix of what was appended (never losing a synced record,
// never inventing one) or rejects with a typed DecodeError. Silent wrong
// records and UB are the only losing moves.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "action/p_min.hpp"
#include "audit/certificate.hpp"
#include "audit/digest.hpp"
#include "audit/trace_file.hpp"
#include "failure/generators.hpp"
#include "net/checkpoint.hpp"
#include "sim/simulator.hpp"
#include "stats/rng.hpp"
#include "store/file_trace.hpp"
#include "store/journal.hpp"
#include "store/run_log.hpp"
#include "store/vfs.hpp"

namespace eba {
namespace {

using Kind = DecodeError::Kind;

Bytes bytes_of(std::initializer_list<int> vals) {
  Bytes out;
  for (int v : vals) out.push_back(static_cast<std::uint8_t>(v));
  return out;
}

/// A small deterministic payload, distinct per index.
Bytes payload_for(int k, std::size_t len = 20) {
  Bytes out(len);
  for (std::size_t i = 0; i < len; ++i)
    out[i] = static_cast<std::uint8_t>((k * 37 + static_cast<int>(i)) & 0xFF);
  return out;
}

void expect_prefix_of(const std::vector<JournalRecord>& got,
                      const std::vector<Bytes>& appended,
                      const std::string& what) {
  ASSERT_LE(got.size(), appended.size()) << what << ": invented records";
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].seq, i + 1) << what;
    EXPECT_EQ(got[i].payload, appended[i]) << what << " record " << i;
  }
}

// -- MemVfs ------------------------------------------------------------------

TEST(MemVfsTest, SyncedPrefixSurvivesPowerCutUnsyncedTailVanishes) {
  MemVfs vfs;
  auto f = vfs.create("d/f");
  f->append(bytes_of({1, 2, 3}));
  f->sync();
  vfs.sync_dir("d/");
  f->append(bytes_of({4, 5}));
  EXPECT_EQ(f->size(), 5u);

  vfs.power_cut("d/");
  EXPECT_EQ(vfs.read("d/f"), bytes_of({1, 2, 3}));
  // The surviving handle keeps writing to the same inode.
  f->append(bytes_of({9}));
  EXPECT_EQ(vfs.read("d/f"), bytes_of({1, 2, 3, 9}));
}

TEST(MemVfsTest, NamespaceChangesNeedDirectorySync) {
  MemVfs vfs;
  {
    auto f = vfs.create("d/a");
    f->append(bytes_of({1}));
    f->sync();  // content durable, name not
  }
  vfs.power_cut("d/");
  EXPECT_FALSE(vfs.exists("d/a")) << "creation without sync_dir survived";

  {
    auto f = vfs.create("d/a");
    f->append(bytes_of({1}));
    f->sync();
  }
  vfs.sync_dir("d/");
  {
    auto f = vfs.create("d/b");
    f->append(bytes_of({2}));
    f->sync();
    vfs.rename("d/b", "d/a");  // atomic replace, but no sync_dir
  }
  vfs.power_cut("d/");
  EXPECT_EQ(vfs.read("d/a"), bytes_of({1})) << "unsynced rename survived";

  {
    auto f = vfs.create("d/c");
    f->append(bytes_of({3}));
    f->sync();
    vfs.rename("d/c", "d/a");
  }
  vfs.sync_dir("d/");
  vfs.power_cut("d/");
  EXPECT_EQ(vfs.read("d/a"), bytes_of({3})) << "synced rename lost";
  EXPECT_FALSE(vfs.exists("d/c"));
}

TEST(MemVfsTest, TearSpecKeepsPartOfTheTailAndCanCorruptIt) {
  for (bool corrupt : {false, true}) {
    MemVfs vfs;
    auto f = vfs.create("d/f");
    f->append(bytes_of({1, 2}));
    f->sync();
    vfs.sync_dir("d/");
    f->append(bytes_of({3, 4, 5, 6}));

    TearSpec tear;
    tear.path = "d/f";
    tear.keep = 2;
    tear.corrupt = corrupt;
    vfs.power_cut("d/", tear);
    const Bytes after = vfs.read("d/f");
    ASSERT_EQ(after.size(), 4u);
    EXPECT_EQ(after[0], 1);
    EXPECT_EQ(after[1], 2);
    EXPECT_EQ(after[2], 3);
    EXPECT_EQ(after[3], corrupt ? (4 ^ 0x5A) : 4);
  }
}

TEST(MemVfsTest, PowerCutPrefixDoesNotSwallowSiblingDirectories) {
  // "root/inst-3/" must not match "root/inst-30/..." — the per-instance
  // logs the workload engine cuts are disambiguated by the trailing slash.
  MemVfs vfs;
  for (const char* dir : {"root/inst-3/", "root/inst-30/"}) {
    auto f = vfs.create(std::string(dir) + "f");
    f->append(bytes_of({7}));
    f->sync();
    vfs.sync_dir(dir);
    f->append(bytes_of({8}));
  }
  vfs.power_cut("root/inst-3/");
  EXPECT_EQ(vfs.read("root/inst-3/f"), bytes_of({7}));
  EXPECT_EQ(vfs.read("root/inst-30/f"), bytes_of({7, 8}))
      << "sibling directory was cut";
}

TEST(MemVfsTest, InjectedWriteFailureIsPartialAndTyped) {
  MemVfs vfs;
  auto f = vfs.create("d/f");
  vfs.fail_appends_after(1);
  f->append(bytes_of({1, 2}));  // survives
  EXPECT_THROW(f->append(bytes_of({3, 4, 5, 6})), IoError);
  // Half the failed buffer landed: the garbage recovery must cope with.
  EXPECT_EQ(vfs.read("d/f"), bytes_of({1, 2, 3, 4}));
  // The fault disarms after firing once.
  f->append(bytes_of({9}));
  EXPECT_EQ(f->size(), 5u);
}

// -- Keyed digests -----------------------------------------------------------

TEST(KeyedDigestTest, KeyZeroIsBitIdenticalToPlainDigest) {
  Digest64 plain;
  KeyedDigest64 keyed(0);
  for (int i = 0; i < 16; ++i) {
    plain.u8(static_cast<std::uint8_t>(i));
    keyed.u8(static_cast<std::uint8_t>(i));
    plain.u64(0x1234567890ABCDEFull * static_cast<unsigned>(i + 1));
    keyed.u64(0x1234567890ABCDEFull * static_cast<unsigned>(i + 1));
  }
  EXPECT_EQ(keyed.value(), plain.value());
  EXPECT_EQ(KeyedDigest64::chain(0, 1, 2, 3), Digest64::chain(1, 2, 3));
}

TEST(KeyedDigestTest, DifferentKeysSeparateAndKeyCheckDiscriminates) {
  const auto digest_under = [](std::uint64_t key) {
    KeyedDigest64 d(key);
    d.u64(0xDEADBEEFull);
    return d.value();
  };
  EXPECT_NE(digest_under(1), digest_under(2));
  EXPECT_NE(digest_under(1), digest_under(0));
  EXPECT_NE(KeyedDigest64::key_check_word(1), KeyedDigest64::key_check_word(2));
  EXPECT_EQ(KeyedDigest64::key_check_word(7), KeyedDigest64::key_check_word(7));
}

// -- Journal: plain roundtrips -----------------------------------------------

TEST(JournalTest, RoundtripAcrossReopenPreservesEveryRecord) {
  MemVfs vfs;
  std::vector<Bytes> appended;
  {
    Journal j = Journal::create(vfs, "jl");
    for (int k = 0; k < 5; ++k) {
      appended.push_back(payload_for(k));
      EXPECT_EQ(j.append(static_cast<std::uint8_t>(1 + k % 3), appended.back()),
                static_cast<std::uint64_t>(k + 1));
    }
    j.sync();
    EXPECT_EQ(j.last_seq(), 5u);
    EXPECT_TRUE(j.records().empty()) << "appends must not echo into records()";
  }
  Journal j = Journal::open(vfs, "jl");
  ASSERT_EQ(j.records().size(), 5u);
  expect_prefix_of(j.records(), appended, "reopen");
  EXPECT_EQ(j.records()[2].kind, 3);
  EXPECT_EQ(j.last_seq(), 5u);
  // And the reopened journal continues the sequence.
  EXPECT_EQ(j.append(1, payload_for(5)), 6u);
}

TEST(JournalTest, SegmentsRollAndGcDropsOnlyDeadSealedSegments) {
  MemVfs vfs;
  JournalOptions opt;
  opt.page_size = 64;
  opt.segment_bytes = 64;  // every record fills a segment: rolls constantly
  std::vector<Bytes> appended;
  Journal j = Journal::create(vfs, "jl", opt);
  for (int k = 0; k < 6; ++k) {
    appended.push_back(payload_for(k));
    j.append(1, appended.back());
  }
  j.sync();
  EXPECT_GE(j.segment_count(), 5u);

  // GC below seq 4: segments holding only records 1..3 go, the rest stay.
  j.gc(4);
  EXPECT_LT(j.segment_count(), 6u);
  {
    Journal back = Journal::open(vfs, "jl", opt);
    ASSERT_EQ(back.records().size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_EQ(back.records()[i].seq, i + 4);
      EXPECT_EQ(back.records()[i].payload, appended[i + 3]);
    }
    EXPECT_EQ(back.last_seq(), 6u);
  }
  // GC is crash-safe: a cut right after it still opens cleanly.
  vfs.power_cut("jl/");
  Journal again = Journal::open(vfs, "jl", opt);
  EXPECT_EQ(again.records().size(), 3u);
}

TEST(JournalTest, OpenWithoutManifestIsTyped) {
  MemVfs vfs;
  try {
    (void)Journal::open(vfs, "nowhere");
    FAIL() << "open on an empty directory succeeded";
  } catch (const DecodeError& e) {
    EXPECT_EQ(e.kind(), Kind::missing_frame);
  }
}

TEST(JournalTest, OversizePayloadRefused) {
  MemVfs vfs;
  Journal j = Journal::create(vfs, "jl");
  EXPECT_THROW((void)j.append(1, Bytes((1u << 28) + 1)), IoError);
}

// -- Journal: power-cut fault injection --------------------------------------

/// Builds a journal with `synced` records made durable and `unsynced` more
/// buffered but not fsynced, returning everything appended.
std::vector<Bytes> build_journal(MemVfs& vfs, const JournalOptions& opt,
                                 int synced, int unsynced) {
  std::vector<Bytes> appended;
  Journal j = Journal::create(vfs, "jl", opt);
  for (int k = 0; k < synced; ++k) {
    appended.push_back(payload_for(k));
    j.append(1, appended.back());
  }
  j.sync();
  for (int k = 0; k < unsynced; ++k) {
    appended.push_back(payload_for(synced + k));
    j.append(1, appended.back());
  }
  return appended;
}

TEST(JournalTest, TornWriteSweepEveryByteOffsetOfTheFinalPage) {
  // Two durable records, one buffered record, then a power cut that tears
  // the unsynced tail at EVERY byte offset — with and without a corrupted
  // final byte. Whatever survives, open() must hand back a verified prefix
  // (never fewer than the 2 durable records, never a wrong byte), stay
  // idempotent across reopen, and accept further appends.
  JournalOptions opt;
  opt.page_size = 64;
  const std::size_t tail_pages = 64;  // the buffered record occupies 1 page

  for (std::size_t keep = 0; keep <= tail_pages; ++keep) {
    for (bool corrupt : {false, true}) {
      const std::string what = "keep " + std::to_string(keep) +
                               (corrupt ? " corrupt" : " clean");
      MemVfs vfs;
      const std::vector<Bytes> appended = build_journal(vfs, opt, 2, 1);

      TearSpec tear;
      tear.path = "jl/seg-000001";
      tear.keep = keep;
      tear.corrupt = corrupt;
      vfs.power_cut("jl/", tear);

      std::vector<Bytes> recovered;
      {
        Journal j = Journal::open(vfs, "jl", opt);
        expect_prefix_of(j.records(), appended, what);
        ASSERT_GE(j.records().size(), 2u) << what << ": durable record lost";
        for (const JournalRecord& r : j.records())
          recovered.push_back(r.payload);
      }
      {
        // Idempotent: recovery must not chew further on a second open.
        Journal j = Journal::open(vfs, "jl", opt);
        ASSERT_EQ(j.records().size(), recovered.size()) << what;

        // And the repaired journal keeps working.
        const Bytes extra = payload_for(99);
        j.append(2, extra);
        j.sync();
        Journal back = Journal::open(vfs, "jl", opt);
        ASSERT_EQ(back.records().size(), recovered.size() + 1) << what;
        EXPECT_EQ(back.records().back().payload, extra) << what;
        EXPECT_EQ(back.records().back().kind, 2) << what;
      }
    }
  }
}

TEST(JournalTest, PowerCutAtEveryFsyncBoundary) {
  // K records, fsync after each; cut the power with only the first `cut`
  // syncs issued. Exactly the synced records survive — none lost, none
  // resurrected.
  constexpr int kRecords = 8;
  JournalOptions opt;
  opt.page_size = 64;
  for (int cut = 0; cut <= kRecords; ++cut) {
    MemVfs vfs;
    std::vector<Bytes> appended;
    {
      Journal j = Journal::create(vfs, "jl", opt);
      for (int k = 0; k < kRecords; ++k) {
        appended.push_back(payload_for(k));
        j.append(1, appended.back());
        if (k < cut) j.sync();
      }
    }
    vfs.power_cut("jl/");
    Journal j = Journal::open(vfs, "jl", opt);
    ASSERT_EQ(j.records().size(), static_cast<std::size_t>(cut))
        << "cut after sync " << cut;
    expect_prefix_of(j.records(), appended, "cut " + std::to_string(cut));
  }
}

TEST(JournalTest, PowerCutStormAcrossSegmentRolls) {
  // Small segments force rolls (which sync the old segment and commit a new
  // manifest); a cut at any point must keep at least everything explicitly
  // synced and still open cleanly.
  JournalOptions opt;
  opt.page_size = 64;
  opt.segment_bytes = 128;
  for (int synced = 0; synced <= 6; ++synced) {
    MemVfs vfs;
    std::vector<Bytes> appended;
    {
      Journal j = Journal::create(vfs, "jl", opt);
      for (int k = 0; k < 6; ++k) {
        appended.push_back(payload_for(k));
        j.append(1, appended.back());
        if (k < synced) j.sync();
      }
    }
    vfs.power_cut("jl/");
    Journal j = Journal::open(vfs, "jl", opt);
    ASSERT_GE(j.records().size(), static_cast<std::size_t>(synced))
        << "synced " << synced << ": durable record lost";
    expect_prefix_of(j.records(), appended, "synced " + std::to_string(synced));
  }
}

TEST(JournalTest, FailedNthAppendLeavesARecoverableJournal) {
  // The Nth OS-level write fails after landing half its bytes. The journal
  // surfaces the IoError; a power cut + reopen then recovers a verified
  // prefix and the journal accepts appends again.
  JournalOptions opt;
  opt.page_size = 64;
  opt.segment_bytes = 256;
  for (long fail_at = 0; fail_at < 8; ++fail_at) {
    MemVfs vfs;
    std::vector<Bytes> appended;
    bool io_failed = false;
    {
      Journal j = Journal::create(vfs, "jl", opt);
      vfs.fail_appends_after(fail_at);
      for (int k = 0; k < 12 && !io_failed; ++k) {
        try {
          appended.push_back(payload_for(k));
          j.append(1, appended.back());
          j.sync();
        } catch (const IoError&) {
          appended.pop_back();  // the failed record never fully landed
          io_failed = true;
        }
      }
    }
    ASSERT_TRUE(io_failed) << "fault at " << fail_at << " never fired";
    vfs.fail_appends_after(-1);
    vfs.power_cut("jl/");
    Journal j = Journal::open(vfs, "jl", opt);
    expect_prefix_of(j.records(), appended, "fail at " + std::to_string(fail_at));
    const std::size_t recovered = j.records().size();
    j.append(1, payload_for(77));
    j.sync();
    Journal back = Journal::open(vfs, "jl", opt);
    EXPECT_EQ(back.records().size(), recovered + 1)
        << "fail at " << fail_at << ": journal unusable after recovery";
  }
}

// -- Journal: keyed authentication -------------------------------------------

TEST(JournalTest, WrongKeyRejectedAsKeyMismatch) {
  MemVfs vfs;
  JournalOptions keyed;
  keyed.key = 0xFEEDFACEull;
  {
    Journal j = Journal::create(vfs, "jl", keyed);
    j.append(1, payload_for(0));
    j.sync();
  }
  ASSERT_EQ(Journal::open(vfs, "jl", keyed).records().size(), 1u);

  for (std::uint64_t wrong : {0ull, 7ull}) {
    JournalOptions bad = keyed;
    bad.key = wrong;
    try {
      (void)Journal::open(vfs, "jl", bad);
      FAIL() << "key " << wrong << " accepted";
    } catch (const DecodeError& e) {
      EXPECT_EQ(e.kind(), Kind::key_mismatch) << "key " << wrong;
    }
  }

  // And the other direction: a key against an unkeyed journal.
  MemVfs vfs2;
  { (void)Journal::create(vfs2, "jl"); }
  JournalOptions with_key;
  with_key.key = 5;
  try {
    (void)Journal::open(vfs2, "jl", with_key);
    FAIL() << "unkeyed journal accepted a key";
  } catch (const DecodeError& e) {
    EXPECT_EQ(e.kind(), Kind::key_mismatch);
  }
}

TEST(JournalTest, SealedSegmentCorruptionIsAHardTypedError) {
  // Damage inside a sealed (non-final) segment is corruption of committed
  // records — silently dropping them would violate durability, so open()
  // must refuse with a typed error instead of "recovering".
  MemVfs vfs;
  JournalOptions opt;
  opt.page_size = 64;
  opt.segment_bytes = 64;  // every record rolls: first segments are sealed
  {
    Journal j = Journal::create(vfs, "jl", opt);
    for (int k = 0; k < 3; ++k) j.append(1, payload_for(k));
    j.sync();
  }
  Bytes sealed = vfs.read("jl/seg-000001");
  ASSERT_FALSE(sealed.empty());
  sealed[10] ^= 0x40;  // flip a payload bit: CRC must catch it
  {
    auto f = vfs.create("jl/seg-000001");
    f->append(sealed);
    f->sync();
  }
  vfs.sync_dir("jl/");
  EXPECT_THROW((void)Journal::open(vfs, "jl", opt), DecodeError);
}

// -- Keyed traces and certificates -------------------------------------------

Run<MinExchange> small_run(int n = 4, int t = 1, std::uint64_t seed = 11) {
  Rng rng(seed);
  return simulate(MinExchange(n), PMin(n, t),
                  sample_adversary(n, t, t + 2, 0.35, rng),
                  sample_preferences(n, rng), t);
}

TEST(KeyedTraceTest, KeyedRoundtripVerifiesAndMismatchesAreTyped) {
  const auto run = small_run();
  const std::uint64_t key = 0x5EC2E7ull;
  const Bytes keyed = write_trace(run.record, 9, key);
  const Bytes unkeyed = write_trace(run.record, 9);
  EXPECT_NE(keyed, unkeyed);

  const TraceFile parsed = read_trace(keyed, key);
  EXPECT_EQ(parsed.version, kTraceFormatVersionKeyed);
  EXPECT_EQ(parsed.record, run.record);
  EXPECT_TRUE(replay_verify(keyed, key).ok);

  const auto expect_key_mismatch = [](const Bytes& bytes, std::uint64_t k,
                                      const std::string& what) {
    try {
      (void)read_trace(bytes, k);
      FAIL() << what;
    } catch (const DecodeError& e) {
      EXPECT_EQ(e.kind(), Kind::key_mismatch) << what;
    }
  };
  expect_key_mismatch(keyed, 0, "keyed trace read without a key");
  expect_key_mismatch(keyed, key + 1, "keyed trace read with the wrong key");
  expect_key_mismatch(unkeyed, key, "unkeyed trace read with a key");
  EXPECT_FALSE(replay_verify(keyed, key + 1).ok);
  EXPECT_FALSE(replay_verify(keyed).parsed);
}

TEST(KeyedTraceTest, KeyedTraceRejectsTruncationAndBitFlips) {
  const auto run = small_run(4, 1, 13);
  const std::uint64_t key = 77;
  const Bytes trace = write_trace(run.record, 1, key);
  for (std::size_t cut = 0; cut < trace.size(); ++cut) {
    Bytes buf(trace.begin(), trace.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(replay_verify(buf, key).parsed) << "cut " << cut;
  }
  for (std::size_t at = 0; at < trace.size(); ++at) {
    Bytes buf = trace;
    buf[at] ^= 1;
    EXPECT_FALSE(replay_verify(buf, key).ok) << "flip at " << at;
  }
}

TEST(KeyedCertificateTest, WrongKeyFailsVerificationBothWays) {
  const auto run = small_run(5, 2, 17);
  const std::uint64_t key = 0xA11CEull;
  const DecisionCertificate cert = build_certificate(run.record, 3, key);
  EXPECT_TRUE(verify_certificate(cert, run.record, key).ok);
  EXPECT_FALSE(verify_certificate(cert, run.record).ok)
      << "keyed certificate verified without the key";
  EXPECT_FALSE(verify_certificate(cert, run.record, key + 1).ok);
  const DecisionCertificate plain = build_certificate(run.record, 3);
  EXPECT_FALSE(verify_certificate(plain, run.record, key).ok)
      << "unkeyed certificate verified under a key";
  // Key 0 reproduces the historical unkeyed digests bit-for-bit.
  EXPECT_EQ(plain, build_certificate(run.record, 3, 0));
}

// -- File-backed traces ------------------------------------------------------

TEST(FileTraceTest, OnDiskBytesPinnedToInMemoryWriter) {
  const auto run = small_run(5, 2, 19);
  const RunRecord& rec = run.record;
  MemVfs vfs;
  FileTraceWriter w(vfs, "t/trace.ebtr", 42, rec.n, rec.t, rec.nonfaulty,
                    rec.inits);
  for (int m = 0; m < rec.rounds; ++m) {
    const std::size_t um = static_cast<std::size_t>(m);
    w.add_round(rec.actions[um], rec.sent[um], rec.delivered[um]);
  }
  const Bytes out = w.finish(build_certificate(rec, 42));
  EXPECT_EQ(out, write_trace(rec, 42)) << "streamed != one-shot";
  EXPECT_EQ(vfs.read("t/trace.ebtr"), out) << "disk bytes diverge";
  // finish() fsyncs: the complete trace survives a power cut. (The name
  // itself needs the caller's sync_dir, so sync it first.)
  vfs.sync_dir("t/");
  vfs.power_cut("t/");
  EXPECT_EQ(vfs.read("t/trace.ebtr"), out);
  EXPECT_TRUE(replay_verify(vfs.read("t/trace.ebtr")).ok);
}

TEST(FileTraceTest, WriterCrashLeavesADetectablePrefix) {
  const auto run = small_run(4, 1, 23);
  const RunRecord& rec = run.record;
  MemVfs vfs;
  FileTraceWriter w(vfs, "t/trace.ebtr", 1, rec.n, rec.t, rec.nonfaulty,
                    rec.inits);
  w.add_record_rounds(rec);
  // No finish(): the writer "crashed". The on-disk prefix parses as an
  // unterminated container — a typed rejection, not an accepted trace.
  const Bytes partial = vfs.read("t/trace.ebtr");
  ASSERT_FALSE(partial.empty());
  try {
    (void)read_trace(partial);
    FAIL() << "unterminated streamed trace accepted";
  } catch (const DecodeError& e) {
    EXPECT_EQ(e.kind(), Kind::missing_frame);
  }
}

TEST(FileTraceTest, KeyedStreamingMatchesKeyedOneShot) {
  const auto run = small_run(4, 1, 29);
  const RunRecord& rec = run.record;
  const std::uint64_t key = 0xBEE5ull;
  MemVfs vfs;
  FileTraceWriter w(vfs, "t/k.ebtr", 7, rec.n, rec.t, rec.nonfaulty, rec.inits,
                    key);
  w.add_record_rounds(rec);
  const Bytes out = w.finish(build_certificate(rec, 7, key));
  EXPECT_EQ(out, write_trace(rec, 7, key));
  EXPECT_TRUE(replay_verify(vfs.read("t/k.ebtr"), key).ok);
}

// -- DiskVfs -----------------------------------------------------------------

TEST(DiskVfsTest, JournalRoundtripOnTheRealFilesystem) {
  namespace fs = std::filesystem;
  char tmpl[] = "/tmp/eba_store_test_XXXXXX";
  char* dir_c = ::mkdtemp(tmpl);
  ASSERT_NE(dir_c, nullptr);
  const std::string dir = std::string(dir_c) + "/jl";

  DiskVfs vfs;
  std::vector<Bytes> appended;
  {
    JournalOptions opt;
    opt.page_size = 512;
    Journal j = Journal::create(vfs, dir, opt);
    for (int k = 0; k < 4; ++k) {
      appended.push_back(payload_for(k, 100));
      j.append(1, appended.back());
    }
    j.sync();
    j.gc(1);  // exercises manifest rewrite + directory fsync on disk
  }
  {
    JournalOptions opt;
    opt.page_size = 512;
    Journal j = Journal::open(vfs, dir, opt);
    expect_prefix_of(j.records(), appended, "disk");
    ASSERT_EQ(j.records().size(), 4u);
    appended.push_back(payload_for(9, 100));
    j.append(2, appended.back());
    j.sync();
  }
  // Simulated torn tail on a real file: truncate into the final record's
  // body, reopen — the four older records survive, the torn one is gone.
  const std::string seg = dir + "/seg-000001";
  vfs.truncate(seg, vfs.read(seg).size() - 450);
  {
    JournalOptions opt;
    opt.page_size = 512;
    Journal j = Journal::open(vfs, dir, opt);
    expect_prefix_of(j.records(), appended, "disk torn");
    ASSERT_EQ(j.records().size(), 4u);
  }
  fs::remove_all(dir_c);
}

// -- Run-log recovery --------------------------------------------------------

/// Drives a PMin instance round by round while writing the exact journal
/// the workload engine would: intent before the round, delta after it.
struct DurableRunFixture {
  MemVfs vfs;
  RunRecord want;
  FailurePattern alpha{1, AgentSet{0}};
  std::vector<Value> inits;
  int n = 5, t = 2;
  MinExchange x{5};
  PMin p{5, 2};

  DurableRunFixture() {
    // Deterministically pick a seed whose run lasts >= 4 rounds, so every
    // test has room to crash mid-run.
    for (std::uint64_t seed = 31;; ++seed) {
      Rng rng(seed);
      alpha = sample_adversary(n, t, t + 2, 0.4, rng);
      inits = sample_preferences(n, rng);
      want = simulate(x, p, alpha, inits, t).record;
      if (want.rounds >= 4) break;
    }
  }

  IntentPayload intent_for(int m) const {
    IntentPayload intent;
    intent.round = m;
    intent.actions = want.actions[static_cast<std::size_t>(m)];
    for (AgentId i = 0; i < n; ++i) {
      intent.dropped_send.push_back(alpha.dropped(m, i));
      intent.dropped_receive.push_back(alpha.dropped_receive(m, i));
    }
    return intent;
  }

  /// Journal: checkpoint at time 0, `completed` full rounds (intent +
  /// delta), then one trailing intent — the mid-round crash shape.
  RunLog build_log(int completed, bool trailing_intent) {
    RunLog log = RunLog::create(vfs, "rl");
    Stepper<MinExchange, PMin> stepper(x, p, alpha, inits, t);
    log.log_checkpoint(checkpoint_stepper(stepper));
    for (int m = 0; m < completed; ++m) {
      log.log_intent(intent_for(m));
      EXPECT_TRUE(stepper.step()) << "fixture run shorter than expected";
      log.log_delta(delta_of_record(stepper.record(), m));
    }
    if (trailing_intent) log.log_intent(intent_for(completed));
    return log;
  }
};

TEST(RunLogTest, MidRoundRecoveryCompletesTheIntentRound) {
  DurableRunFixture fx;
  ASSERT_GE(fx.want.rounds, 3);
  const int crash_round = 2;  // crash while round 3 (m=2) is staged
  { RunLog log = fx.build_log(crash_round, /*trailing_intent=*/true); }

  fx.vfs.power_cut("rl/");
  RunLog log = RunLog::open(fx.vfs, "rl");
  auto recovered = recover_run<MinExchange, PMin>(
      fx.x, fx.p, log.journal().records());
  EXPECT_TRUE(recovered.finished_intent);
  EXPECT_EQ(recovered.replayed_rounds, crash_round + 1);
  EXPECT_EQ(recovered.stepper.time(), crash_round + 1);

  // The caller's contract: re-log the recovered round, then continue.
  log.log_delta(
      delta_of_record(recovered.stepper.record(), recovered.stepper.time() - 1));
  while (recovered.stepper.step()) {
  }
  EXPECT_EQ(recovered.stepper.record(), fx.want)
      << "recovered run diverges from the uninterrupted one";
}

TEST(RunLogTest, RecoverySurvivesASecondCrash) {
  DurableRunFixture fx;
  ASSERT_GE(fx.want.rounds, 3);
  { RunLog log = fx.build_log(1, /*trailing_intent=*/true); }
  fx.vfs.power_cut("rl/");
  {
    RunLog log = RunLog::open(fx.vfs, "rl");
    auto recovered = recover_run<MinExchange, PMin>(
        fx.x, fx.p, log.journal().records());
    ASSERT_TRUE(recovered.finished_intent);
    log.log_delta(delta_of_record(recovered.stepper.record(),
                                  recovered.stepper.time() - 1));
    log.log_intent(fx.intent_for(2));  // next round staged... crash again
  }
  fx.vfs.power_cut("rl/");
  RunLog log = RunLog::open(fx.vfs, "rl");
  auto recovered = recover_run<MinExchange, PMin>(
      fx.x, fx.p, log.journal().records());
  EXPECT_TRUE(recovered.finished_intent);
  EXPECT_EQ(recovered.stepper.time(), 3);
  while (recovered.stepper.step()) {
  }
  EXPECT_EQ(recovered.stepper.record(), fx.want);
}

TEST(RunLogTest, DivergentDeltaAndForgedIntentRejected) {
  DurableRunFixture fx;
  ASSERT_GE(fx.want.rounds, 2);
  {
    // A delta whose actions were edited: replay must refuse to return it.
    RunLog log = RunLog::create(fx.vfs, "bad1");
    Stepper<MinExchange, PMin> stepper(fx.x, fx.p, fx.alpha, fx.inits, fx.t);
    log.log_checkpoint(checkpoint_stepper(stepper));
    ASSERT_TRUE(stepper.step());
    DeltaPayload delta = delta_of_record(stepper.record(), 0);
    // Forge agent 0's logged action: the replayed round cannot realize it.
    delta.actions[0] = delta.actions[0].is_decide() ? Action::noop()
                                                    : Action::decide(Value::zero);
    log.log_delta(delta);
  }
  {
    RunLog log = RunLog::open(fx.vfs, "bad1");
    try {
      (void)recover_run<MinExchange, PMin>(fx.x, fx.p,
                                           log.journal().records());
      FAIL() << "divergent delta accepted";
    } catch (const DecodeError& e) {
      EXPECT_EQ(e.kind(), Kind::malformed);
    }
  }
  {
    // A trailing intent whose drop rows were forged: the re-run's realized
    // drops cannot match, so recovery must throw, not fabricate a round.
    RunLog log = RunLog::create(fx.vfs, "bad2");
    Stepper<MinExchange, PMin> stepper(fx.x, fx.p, fx.alpha, fx.inits, fx.t);
    log.log_checkpoint(checkpoint_stepper(stepper));
    IntentPayload intent = fx.intent_for(0);
    AgentSet& row = intent.dropped_send[1];
    if (row.contains(0))
      row.erase(0);
    else
      row.insert(0);
    log.log_intent(intent);
  }
  RunLog log = RunLog::open(fx.vfs, "bad2");
  try {
    (void)recover_run<MinExchange, PMin>(fx.x, fx.p,
                                         log.journal().records());
    FAIL() << "forged intent accepted";
  } catch (const DecodeError& e) {
    EXPECT_EQ(e.kind(), Kind::malformed);
  }
}

TEST(RunLogTest, GcKeepsRecoverabilityFromTheNewestCheckpoints) {
  DurableRunFixture fx;
  JournalOptions opt;
  opt.page_size = 64;
  opt.segment_bytes = 64;  // aggressive rolls so GC has segments to drop
  {
    RunLog log = RunLog::create(fx.vfs, "rl", opt);
    Stepper<MinExchange, PMin> stepper(fx.x, fx.p, fx.alpha, fx.inits, fx.t);
    log.log_checkpoint(checkpoint_stepper(stepper));
    while (stepper.step()) {
      const int m = stepper.time() - 1;
      log.log_intent(fx.intent_for(m));
      log.log_delta(delta_of_record(stepper.record(), m));
      log.log_checkpoint(checkpoint_stepper(stepper));
      log.gc_keep_checkpoints(2);
    }
  }
  fx.vfs.power_cut("rl/");
  RunLog log = RunLog::open(fx.vfs, "rl", opt);
  auto recovered = recover_run<MinExchange, PMin>(
      fx.x, fx.p, log.journal().records());
  EXPECT_EQ(recovered.stepper.time(), fx.want.rounds)
      << "GC'd log no longer recovers to the durable edge";
  while (recovered.stepper.step()) {
  }
  EXPECT_EQ(recovered.stepper.record(), fx.want);
}

}  // namespace
}  // namespace eba
