// Model-checker tests: sanity of the epistemic semantics (factivity,
// locality), and the paper's characterizations —
//   Prop A.2(a): C_N(t-faulty) at m  ⇔  dist_N(t-faulty) at m-1,
//   Lemma A.20:  the f/D cardinality test of P_opt  ⇔  C_N(t-faulty),
// checked by brute force over every point of exhaustively enumerated
// systems.
#include <gtest/gtest.h>

#include "action/p_min.hpp"
#include "action/p_opt.hpp"
#include "exchange/min.hpp"
#include "graph/knowledge.hpp"
#include "kripke/kbp.hpp"
#include "kripke/system.hpp"

namespace eba {
namespace {

using MinSys = InterpretedSystem<MinExchange, PMin>;
using FipSys = InterpretedSystem<FipExchange, POpt>;

MinSys build_min_system(int n, int t, int rounds) {
  MinSys sys(MinExchange(n), PMin(n, t), t, t + 3);
  sys.add_all_runs(EnumerationConfig{.n = n, .t = t, .rounds = rounds});
  sys.finalize();
  return sys;
}

FipSys build_fip_system(int n, int t, int rounds) {
  FipSys sys(FipExchange(n), POpt(n, t), t, t + 3);
  sys.add_all_runs(EnumerationConfig{.n = n, .t = t, .rounds = rounds});
  sys.finalize();
  return sys;
}

TEST(KnowledgeSemantics, FactivityAndLocality) {
  const MinSys sys = build_min_system(3, 1, 2);
  int knowledge_points = 0;
  for (int r = 0; r < sys.num_runs(); ++r) {
    for (int m = 0; m <= sys.horizon(); ++m) {
      const Point pt{r, m};
      for (AgentId i = 0; i < 3; ++i) {
        // Factivity: K_i φ ⇒ φ (here φ = "some agent has initial value 0").
        const auto phi = [&](Point q) { return sys.exists_init(q, Value::zero); };
        if (sys.knows(i, pt, phi)) {
          EXPECT_TRUE(phi(pt));
          ++knowledge_points;
        }
        // Locality: indistinguishable runs share the local state.
        for (int r2 : sys.indistinguishable_runs(i, pt))
          EXPECT_EQ(sys.state({r2, m}, i), sys.state(pt, i));
      }
    }
  }
  EXPECT_GT(knowledge_points, 0);
}

TEST(KnowledgeSemantics, AgentKnowsItsOwnInit) {
  const MinSys sys = build_min_system(3, 1, 2);
  for (int r = 0; r < sys.num_runs(); ++r) {
    for (AgentId i = 0; i < 3; ++i) {
      const Point pt{r, 0};
      const Value v = sys.init(pt, i);
      EXPECT_TRUE(sys.knows(i, pt, [&](Point q) { return sys.init(q, i) == v; }));
    }
  }
}

TEST(KnowledgeSemantics, NobodyKnowsWhoIsFaultyInMinContext) {
  // In γ_min agents never learn who is faulty (paper §7): K_i(j ∉ N) fails
  // everywhere for j ≠ i.
  const MinSys sys = build_min_system(3, 1, 2);
  for (int r = 0; r < sys.num_runs(); ++r) {
    for (int m = 0; m <= 2; ++m) {
      for (AgentId i = 0; i < 3; ++i) {
        for (AgentId j = 0; j < 3; ++j) {
          if (j == i) continue;
          EXPECT_FALSE(sys.knows(
              i, {r, m}, [&](Point q) { return !sys.nonfaulty(q, j); }));
        }
      }
    }
  }
}

TEST(KnowledgeSemantics, CommonKnowledgeImpliesEveryoneKnows) {
  const FipSys sys = build_fip_system(3, 1, 1);
  const auto N = sys.nonfaulty_indexical();
  int holds = 0;
  for (int r = 0; r < sys.num_runs(); ++r) {
    for (int m = 0; m <= 2; ++m) {
      const Point pt{r, m};
      const auto phi = [&](Point q) { return sys.exists_init(q, Value::one); };
      if (sys.common_knowledge(N, pt, phi)) {
        EXPECT_TRUE(sys.everyone_knows(N, pt, phi));
        ++holds;
      }
    }
  }
  EXPECT_GT(holds, 0);
}

/// dist_N(t-faulty) at pt: between them, the nonfaulty agents know about t
/// faulty agents.
bool dist_t_faulty(const FipSys& sys, Point pt) {
  AgentSet known;
  for (AgentId j : sys.nonfaulty_set(pt)) {
    for (AgentId k = 0; k < sys.n(); ++k) {
      if (sys.knows(j, pt, [&](Point q) { return !sys.nonfaulty(q, k); }))
        known.insert(k);
    }
  }
  return known.size() >= sys.t();
}

/// C_N(t-faulty) at pt via the brute-force common-knowledge operator.
bool common_t_faulty(const FipSys& sys, Point pt) {
  const int n = sys.n();
  const int t = sys.t();
  std::vector<AgentId> pick;
  auto try_subsets = [&](auto&& self, AgentId next) -> bool {
    if (static_cast<int>(pick.size()) == t) {
      return sys.common_knowledge(sys.nonfaulty_indexical(), pt, [&](Point q) {
        for (AgentId a : pick)
          if (sys.nonfaulty(q, a)) return false;
        return true;
      });
    }
    for (AgentId a = next; a < n; ++a) {
      pick.push_back(a);
      if (self(self, a + 1)) return true;
      pick.pop_back();
    }
    return false;
  };
  return try_subsets(try_subsets, 0);
}

// Prop A.2(a): for every point with time >= 1,
//   C_N(t-faulty)  ⇔  dist_N(t-faulty) one round earlier.
TEST(PropA2, CommonKnowledgeOfFaultsIffPriorDistributedKnowledge) {
  const FipSys sys = build_fip_system(3, 1, 1);
  int both = 0;
  for (int r = 0; r < sys.num_runs(); ++r) {
    for (int m = 1; m <= 2; ++m) {
      const Point pt{r, m};
      const bool ck = common_t_faulty(sys, pt);
      const bool dist = dist_t_faulty(sys, {r, m - 1});
      EXPECT_EQ(ck, dist) << "run " << r << " time " << m;
      both += ck ? 1 : 0;
    }
  }
  EXPECT_GT(both, 0) << "the equivalence should be exercised positively";
}

// Lemma A.20: the polynomial-time f/D cardinality test used by P_opt agrees
// with brute-force C_N(t-faulty) at every reachable point.
TEST(LemmaA20, GraphCardinalityTestMatchesCommonKnowledge) {
  const FipSys sys = build_fip_system(3, 1, 1);
  const int t = sys.t();
  int positives = 0;
  for (int r = 0; r < sys.num_runs(); ++r) {
    for (int m = 1; m <= 2; ++m) {
      const Point pt{r, m};
      const bool ck = common_t_faulty(sys, pt);
      bool graph_test = false;
      for (AgentId i = 0; i < sys.n() && !graph_test; ++i) {
        const CommGraph& g = sys.state(pt, i).graph;
        const auto f = known_faults_table(g);
        const AgentSet f_self =
            f[static_cast<std::size_t>(m)][static_cast<std::size_t>(i)];
        AgentSet dist;
        for (AgentId j : f_self.complement(sys.n()))
          dist = dist.united(
              f[static_cast<std::size_t>(m - 1)][static_cast<std::size_t>(j)]);
        graph_test = f_self.size() == t && dist.size() == t;
      }
      EXPECT_EQ(graph_test, ck) << "run " << r << " time " << m;
      positives += ck ? 1 : 0;
    }
  }
  EXPECT_GT(positives, 0);
}

// The C_N(t-faulty ∧ ...) conditions can never hold in the minimal context
// (paper §7: "agents never learn who is faulty"), so P1 ≡ P0 there.
TEST(P1EquivalentToP0InMinContext, CommonConditionNeverHolds) {
  MinSys sys(MinExchange(3), PMin(3, 1), 1, 4);
  sys.add_all_runs(EnumerationConfig{.n = 3, .t = 1, .rounds = 2});
  sys.finalize();
  for (int r = 0; r < sys.num_runs(); ++r)
    for (int m = 0; m <= 3; ++m) {
      EXPECT_FALSE(common_condition(sys, {r, m}, Value::zero));
      EXPECT_FALSE(common_condition(sys, {r, m}, Value::one));
    }
}

// ... and consequently the two programs select identical actions at every
// point of γ_min and γ_basic.
TEST(P1EquivalentToP0InMinContext, ProgramsSelectSameActions) {
  MinSys sys(MinExchange(3), PMin(3, 1), 1, 4);
  sys.add_all_runs(EnumerationConfig{.n = 3, .t = 1, .rounds = 2});
  sys.finalize();
  for (int r = 0; r < sys.num_runs(); ++r)
    for (int m = 0; m <= 3; ++m)
      for (AgentId i = 0; i < 3; ++i)
        EXPECT_EQ(eval_p0(sys, {r, m}, i), eval_p1(sys, {r, m}, i))
            << "run " << r << " time " << m << " agent " << i;
}

}  // namespace
}  // namespace eba
