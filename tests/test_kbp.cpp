// Knowledge-based-program tests: the implementation theorems checked
// mechanically on exhaustively enumerated contexts —
//   Thm 6.5: P_min implements P0 in γ_min,
//   Thm 6.6: P_basic implements P0 in γ_basic,
//   Thm A.21 (+ Cor 7.8): P_opt implements P1 in γ_fip,
// and the round-by-round synthesis procedure re-deriving P_min / P_basic
// from P0.
#include <gtest/gtest.h>

#include "action/p_basic.hpp"
#include "action/p_min.hpp"
#include "action/p_opt.hpp"
#include "kripke/kbp.hpp"
#include "kripke/synthesis.hpp"
#include "kripke/system.hpp"

namespace eba {
namespace {

std::string describe(const KbpMismatch& m) {
  return "run " + std::to_string(m.point.run) + " time " +
         std::to_string(m.point.time) + " agent " + std::to_string(m.agent) +
         ": concrete=" + to_string(m.concrete) + " program=" +
         to_string(m.program);
}

// Epistemic adequacy: enumerating adversaries with drops confined to the
// first R rounds yields exactly the full context's set of time-m states for
// m <= R, so knowledge (and the KBP's tests) are faithful up to time R.
// Beyond that the truncated system gives agents spurious knowledge, so the
// implementation checks stop at max_time = R unless every agent has decided
// by then anyway (which holds when R >= t+2-1, since actions at time t+1 are
// determined by time-(t+1) states... see per-test comments).
template <class Sys, class Program>
void expect_implements(const Sys& sys, const Program& program, int max_time) {
  const auto mismatches = check_implementation(sys, program, max_time);
  EXPECT_TRUE(mismatches.empty())
      << mismatches.size() << " mismatches; first: " << describe(mismatches[0]);
}

// Thm 6.5: P_min implements P0 in γ_min (n=3, t=1 and n=4, t=1, drops in the
// first two rounds, every preference vector). With t=1 every agent decides
// by round t+2 = 3, so checking through time 3 is sound: times 0..2 are
// epistemically adequate (R=2), and at time 3 everyone has decided, making
// both sides noop.
TEST(Theorem65, PMinImplementsP0) {
  for (const int n : {3, 4}) {
    InterpretedSystem<MinExchange, PMin> sys(MinExchange(n), PMin(n, 1), 1, 4);
    sys.add_all_runs(EnumerationConfig{.n = n, .t = 1, .rounds = 2});
    sys.finalize();
    expect_implements(
        sys,
        [](const auto& I, Point pt, AgentId i) { return eval_p0(I, pt, i); },
        3);
  }
}

// Thm 6.6: P_basic implements P0 in γ_basic.
TEST(Theorem66, PBasicImplementsP0) {
  for (const int n : {3, 4}) {
    InterpretedSystem<BasicExchange, PBasic> sys(BasicExchange(n),
                                                 PBasic(n, 1), 1, 4);
    sys.add_all_runs(EnumerationConfig{.n = n, .t = 1, .rounds = 2});
    sys.finalize();
    expect_implements(
        sys,
        [](const auto& I, Point pt, AgentId i) { return eval_p0(I, pt, i); },
        3);
  }
}

// Thm A.21 / Cor 7.8: P_opt implements P1 in the full-information context.
TEST(TheoremA21, POptImplementsP1) {
  for (const int n : {3, 4}) {
    InterpretedSystem<FipExchange, POpt> sys(FipExchange(n), POpt(n, 1), 1, 4);
    sys.add_all_runs(EnumerationConfig{.n = n, .t = 1, .rounds = 2});
    sys.finalize();
    expect_implements(
        sys,
        [](const auto& I, Point pt, AgentId i) { return eval_p1(I, pt, i); },
        3);
  }
}

// Two faulty agents (n=4, t=2), drops in round 1 only: the truncated system
// is adequate through time 1, which is where the interesting common-
// knowledge decisions of P1 appear in this family (silent faults are
// detected at time 1).
TEST(TheoremA21, POptImplementsP1TwoFaults) {
  InterpretedSystem<FipExchange, POpt> sys(FipExchange(4), POpt(4, 2), 2, 5);
  sys.add_all_runs(EnumerationConfig{.n = 4, .t = 2, .rounds = 1});
  sys.finalize();
  expect_implements(
      sys,
      [](const auto& I, Point pt, AgentId i) { return eval_p1(I, pt, i); },
      1);
}

std::vector<std::pair<FailurePattern, std::vector<Value>>> all_worlds(
    const EnumerationConfig& cfg) {
  std::vector<std::pair<FailurePattern, std::vector<Value>>> worlds;
  const auto prefs = all_preference_vectors(cfg.n);
  enumerate_adversaries(cfg, [&](const FailurePattern& alpha) {
    for (const auto& p : prefs) worlds.emplace_back(alpha, p);
    return true;
  });
  return worlds;
}

// Synthesis from P0 in γ_min re-derives exactly P_min on reachable states.
TEST(Synthesis, P0InMinContextYieldsPMin) {
  const int n = 3;
  const int t = 1;
  KbpSynthesizer<MinExchange> synth(MinExchange(n), t, KbpProgram::p0);
  const auto result =
      synth.run(all_worlds(EnumerationConfig{.n = n, .t = t, .rounds = 2}), 4);
  const PMin pmin(n, t);
  EXPECT_GT(result.table.size(), 10u);
  for (const auto& [state, action] : result.table)
    EXPECT_EQ(action, pmin(state))
        << "state time=" << state.time << " init=" << to_string(state.init)
        << " jd=" << to_string(state.jd);
}

// Synthesis from P0 in γ_basic re-derives exactly P_basic.
TEST(Synthesis, P0InBasicContextYieldsPBasic) {
  const int n = 3;
  const int t = 1;
  KbpSynthesizer<BasicExchange> synth(BasicExchange(n), t, KbpProgram::p0);
  const auto result =
      synth.run(all_worlds(EnumerationConfig{.n = n, .t = t, .rounds = 2}), 4);
  const PBasic pbasic(n, t);
  EXPECT_GT(result.table.size(), 10u);
  for (const auto& [state, action] : result.table)
    EXPECT_EQ(action, pbasic(state))
        << "state time=" << state.time << " init=" << to_string(state.init)
        << " jd=" << to_string(state.jd) << " #1=" << state.ones;
}

// Synthesis from P1 in γ_fip reproduces P_opt's runs decision-for-decision.
// Enumeration must cover drops through round t+1 = 2 so the partial system
// is epistemically adequate at every time where decisions happen.
TEST(Synthesis, P1InFipContextMatchesPOpt) {
  const int n = 3;
  const int t = 1;
  const auto worlds = all_worlds(EnumerationConfig{.n = n, .t = t, .rounds = 2});
  KbpSynthesizer<FipExchange> synth(FipExchange(n), t, KbpProgram::p1);
  const auto result = synth.run(worlds, 4);

  const auto drive = [&](const FailurePattern& alpha,
                         const std::vector<Value>& inits) {
    SimulateOptions opt;
    opt.max_rounds = 4;
    opt.stop_when_all_decided = false;
    return simulate(FipExchange(n), POpt(n, t), alpha, inits, t, opt);
  };
  for (std::size_t w = 0; w < worlds.size(); ++w) {
    const auto run = drive(worlds[w].first, worlds[w].second);
    for (AgentId i = 0; i < n; ++i) {
      const auto expected = run.record.decision(i);
      const auto& got = result.decisions[w][static_cast<std::size_t>(i)];
      ASSERT_EQ(got.has_value(), expected.has_value()) << "world " << w;
      if (expected) {
        EXPECT_EQ(got->value, expected->value) << "world " << w;
        EXPECT_EQ(got->round, expected->round) << "world " << w;
      }
    }
  }
}

// The synthesized P0 protocol satisfies the EBA spec in every world.
TEST(Synthesis, SynthesizedProtocolSatisfiesSpec) {
  const int n = 3;
  const int t = 1;
  const auto worlds = all_worlds(EnumerationConfig{.n = n, .t = t, .rounds = 2});
  KbpSynthesizer<MinExchange> synth(MinExchange(n), t, KbpProgram::p0);
  const auto result = synth.run(worlds, 4);
  for (std::size_t w = 0; w < worlds.size(); ++w) {
    const auto& nonfaulty = worlds[w].first.nonfaulty();
    std::optional<Value> agreed;
    for (AgentId i : nonfaulty) {
      const auto& d = result.decisions[w][static_cast<std::size_t>(i)];
      ASSERT_TRUE(d.has_value()) << "termination, world " << w;
      EXPECT_LE(d->round, t + 2);
      if (agreed)
        EXPECT_EQ(*agreed, d->value) << "agreement, world " << w;
      else
        agreed = d->value;
    }
  }
}

}  // namespace
}  // namespace eba
