// Symmetry-reduction tests: the canonicalized adversary enumeration is
// *exact* — orbit multiplicities reproduce the unreduced counts on every
// small configuration, orbit expansion recovers the unreduced pattern set,
// the closed-form Burnside orbit count matches the enumerated orbit count,
// and the paper's protocols are equivariant under agent renaming (the fact
// that makes consuming one representative per orbit sound for
// relabeling-invariant sweeps).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>
#include <set>
#include <sstream>
#include <string>

#include "failure/canonical.hpp"
#include "failure/generators.hpp"
#include "sim/drivers.hpp"
#include "stats/rng.hpp"

namespace eba {
namespace {

/// Canonical byte encoding of a pattern (both planes) for multiset
/// comparisons.
std::string encode(const FailurePattern& p) {
  std::ostringstream out;
  out << p.n() << ':' << p.nonfaulty().bits() << ':';
  for (int m = 0; m < p.recorded_rounds(); ++m)
    for (AgentId i = 0; i < p.n(); ++i) out << p.dropped(m, i).bits() << ',';
  out << 'r';
  for (int m = 0; m < p.recorded_receive_rounds(); ++m)
    for (AgentId i = 0; i < p.n(); ++i)
      out << p.dropped_receive(m, i).bits() << ',';
  return out.str();
}

std::vector<EnumerationConfig> small_configs() {
  std::vector<EnumerationConfig> cfgs;
  for (const FailureModel model :
       {FailureModel::sending, FailureModel::general})
    for (int n = 2; n <= 5; ++n)
      for (int t = 0; t < n && t <= 3; ++t)
        for (int rounds = 1; rounds <= 2; ++rounds) {
          const EnumerationConfig cfg{
              .n = n, .t = t, .rounds = rounds, .model = model};
          // Keep the unreduced walk cheap: skip configs beyond ~70k patterns.
          const auto count = try_count_adversaries(cfg);
          if (count && *count <= 70000) cfgs.push_back(cfg);
        }
  cfgs.push_back({.n = 6, .t = 1, .rounds = 1});
  cfgs.push_back({.n = 6, .t = 1, .rounds = 2});
  cfgs.push_back(go_config(6, 1, 1));
  return cfgs;
}

std::string describe(const EnumerationConfig& cfg) {
  return "n=" + std::to_string(cfg.n) + " t=" + std::to_string(cfg.t) +
         " rounds=" + std::to_string(cfg.rounds) +
         (cfg.model == FailureModel::general ? " GO" : " SO");
}

// The heart of the exactness claim: per configuration, the canonical orbit
// multiplicities sum to the unreduced count, the enumerated orbit count
// matches Burnside's closed form, and every representative is canonical.
TEST(CanonicalEnumeration, OrbitMultiplicitiesSumToUnreducedCount) {
  for (const auto& cfg : small_configs()) {
    const std::uint64_t unreduced = count_adversaries(cfg);
    std::uint64_t multiplicity_sum = 0;
    std::uint64_t orbits = 0;
    std::set<std::string> reps;
    enumerate_canonical_adversaries(
        cfg, [&](const FailurePattern& rep, std::uint64_t multiplicity) {
          ++orbits;
          multiplicity_sum += multiplicity;
          EXPECT_TRUE(is_canonical(rep)) << describe(cfg);
          EXPECT_TRUE(cfg.model == FailureModel::general ? rep.in_go(cfg.t)
                                                         : rep.in_so(cfg.t))
              << describe(cfg);
          EXPECT_EQ(orbit_size(rep), multiplicity) << describe(cfg);
          EXPECT_TRUE(reps.insert(encode(rep)).second)
              << describe(cfg) << ": duplicate representative";
          return true;
        });
    EXPECT_EQ(multiplicity_sum, unreduced) << describe(cfg);
    EXPECT_EQ(orbits, count_canonical_adversaries(cfg)) << describe(cfg);
    EXPECT_LE(orbits, unreduced) << describe(cfg);
  }
}

// The unreduced walk and the orbit expansion of the canonical walk produce
// exactly the same multiset of patterns (each exactly once).
TEST(CanonicalEnumeration, OrbitExpansionRecoversUnreducedSpace) {
  for (const auto& cfg : small_configs()) {
    if (count_adversaries(cfg) > 10000) continue;  // keep the multiset cheap
    std::set<std::string> unreduced;
    enumerate_adversaries(cfg, [&](const FailurePattern& p) {
      EXPECT_TRUE(unreduced.insert(encode(p)).second)
          << describe(cfg) << ": unreduced enumeration repeated a pattern";
      return true;
    });
    std::set<std::string> expanded;
    enumerate_canonical_adversaries(
        cfg, [&](const FailurePattern& rep, std::uint64_t multiplicity) {
          const auto members = expand_orbit(rep);
          EXPECT_EQ(members.size(), multiplicity) << describe(cfg);
          for (const auto& member : members)
            EXPECT_TRUE(expanded.insert(encode(member)).second)
                << describe(cfg) << ": orbit expansion repeated a pattern";
          return true;
        });
    EXPECT_EQ(expanded, unreduced) << describe(cfg);
  }
}

// canonicalize() maps every unreduced pattern onto an emitted representative
// and the preimage counts equal the multiplicities.
TEST(CanonicalEnumeration, CanonicalizeMapsOntoRepresentatives) {
  const EnumerationConfig cfg{.n = 4, .t = 2, .rounds = 1};
  std::map<std::string, std::uint64_t> expected;
  enumerate_canonical_adversaries(
      cfg, [&](const FailurePattern& rep, std::uint64_t multiplicity) {
        expected[encode(rep)] = multiplicity;
        return true;
      });
  std::map<std::string, std::uint64_t> preimages;
  enumerate_adversaries(cfg, [&](const FailurePattern& p) {
    const FailurePattern rep = canonicalize(p);
    EXPECT_TRUE(is_canonical(rep));
    ++preimages[encode(rep)];
    return true;
  });
  EXPECT_EQ(preimages, expected);
}

// The lazy iterator preserves the seed enumerator's count and visits each
// pattern once; early stopping works; and configurations past the seed's
// 48-drop-bit ceiling are now reachable lazily.
TEST(AdversaryIterator, MatchesCountsAndSupportsHugeConfigs) {
  for (const auto& cfg : small_configs()) {
    if (count_adversaries(cfg) > 10000) continue;
    std::set<std::string> seen;
    AdversaryIterator it(cfg);
    while (const FailurePattern* p = it.next())
      EXPECT_TRUE(seen.insert(encode(*p)).second) << describe(cfg);
    EXPECT_EQ(it.yielded(), count_adversaries(cfg)) << describe(cfg);
    EXPECT_EQ(seen.size(), count_adversaries(cfg)) << describe(cfg);
  }

  // 48 drop bits per pattern (k = 4): the seed enumerator refused this
  // outright (hard `bits < 48` ceiling); the lazy iterator streams it and
  // early-stops fine.
  const EnumerationConfig huge{.n = 7, .t = 4, .rounds = 2};
  EXPECT_GT(count_adversaries(huge), std::uint64_t{1} << 48)
      << "sanity: this config is past the seed enumerator's ceiling";
  std::uint64_t probe = 0;
  const std::uint64_t visited =
      enumerate_adversaries(huge, [&](const FailurePattern& p) {
        EXPECT_TRUE(p.in_so(4));
        EXPECT_EQ(p.n(), 7);
        return ++probe < 1000;
      });
  EXPECT_EQ(visited, 1000u);
}

// Checked counting: overflow raises an explicit error instead of wrapping.
TEST(CheckedCounts, OverflowIsAnExplicitError) {
  // k = 2, n = 5, rounds = 8: shift = 2*4*8 = 64 — the seed's
  // `choose << shift` silently wrapped here.
  const EnumerationConfig overflowing{.n = 5, .t = 2, .rounds = 8};
  EXPECT_EQ(try_count_adversaries(overflowing), std::nullopt);
  EXPECT_THROW((void)count_adversaries(overflowing), std::logic_error);

  const EnumerationConfig fine{.n = 3, .t = 1, .rounds = 2};
  EXPECT_EQ(count_adversaries(fine), 49u);
  EXPECT_EQ(try_count_adversaries(fine), std::optional<std::uint64_t>(49u));

  // The GO plane doubles the shift: rounds = 4 overflows under general
  // omissions while the SO count still fits — checked for orbit counting
  // too (the Burnside exponent doubles the same way).
  const EnumerationConfig go_edge{.n = 5, .t = 2, .rounds = 4};
  EXPECT_TRUE(try_count_adversaries(go_edge).has_value());
  EXPECT_EQ(try_count_go_adversaries(go_edge), std::nullopt);
  EXPECT_THROW((void)count_go_adversaries(go_edge), std::logic_error);
  EXPECT_TRUE(try_count_canonical_adversaries(go_config(4, 1, 2)).has_value());

  // Binomial intermediates may wrap uint64 while the count itself fits:
  // rounds = 0 makes the count sum_{k<=t} C(n,k), and C(63,31)*32 > 2^64.
  // By symmetry sum_{k<=31} C(63,k) is exactly 2^62.
  const EnumerationConfig wide{.n = 63, .t = 31, .rounds = 0};
  EXPECT_EQ(count_adversaries(wide), std::uint64_t{1} << 62);
}

// The k = 0 iteration must not materialize the full S_n: one drop-free
// orbit, in closed form and by enumeration, fast even at n = 10 where
// 10! permutations would otherwise be built.
TEST(CanonicalEnumeration, FaultFreeOrbitIsSpecialCased) {
  const EnumerationConfig cfg{.n = 10, .t = 0, .rounds = 3};
  EXPECT_EQ(count_canonical_adversaries(cfg), 1u);
  std::uint64_t orbits = enumerate_canonical_adversaries(
      cfg, [&](const FailurePattern& rep, std::uint64_t multiplicity) {
        EXPECT_EQ(rep.num_faulty(), 0);
        EXPECT_EQ(multiplicity, 1u);
        EXPECT_TRUE(is_canonical(rep));
        EXPECT_EQ(orbit_size(rep), 1u);
        EXPECT_EQ(expand_orbit(rep).size(), 1u);
        return true;
      });
  EXPECT_EQ(orbits, 1u);
}

// Equivariance of the paper's protocols under agent renaming: relabeling
// (adversary, preferences) by pi relabels the run — agent pi(i) decides in
// the same round with the same value as agent i did. This is what licenses
// orbit-reduced sweeps of relabeling-invariant properties.
TEST(Equivariance, ProtocolsCommuteWithAgentRenaming) {
  Rng rng(20260731);
  for (const auto& [n, t] :
       std::vector<std::pair<int, int>>{{3, 1}, {4, 2}, {5, 2}}) {
    for (int trial = 0; trial < 12; ++trial) {
      const FailurePattern alpha =
          sample_adversary(n, rng.below(t + 1), t + 1, 0.5, rng);
      const std::vector<Value> prefs = sample_preferences(n, rng);
      std::vector<AgentId> perm(static_cast<std::size_t>(n));
      std::iota(perm.begin(), perm.end(), 0);
      for (int i = n - 1; i > 0; --i)
        std::swap(perm[static_cast<std::size_t>(i)],
                  perm[static_cast<std::size_t>(rng.below(i + 1))]);

      const FailurePattern relabeled_alpha = relabeled(alpha, perm);
      std::vector<Value> relabeled_prefs(static_cast<std::size_t>(n));
      for (AgentId i = 0; i < n; ++i)
        relabeled_prefs[static_cast<std::size_t>(
            perm[static_cast<std::size_t>(i)])] =
            prefs[static_cast<std::size_t>(i)];

      auto drivers = paper_drivers(n, t);
      drivers.push_back({"P_opt_go", make_go_driver(n, t)});
      for (const auto& [name, drive] : drivers) {
        const RunSummary base = drive(alpha, prefs);
        const RunSummary image = drive(relabeled_alpha, relabeled_prefs);
        for (AgentId i = 0; i < n; ++i) {
          const auto& d = base.decisions[static_cast<std::size_t>(i)];
          const auto& e = image.decisions[static_cast<std::size_t>(
              perm[static_cast<std::size_t>(i)])];
          ASSERT_EQ(d.has_value(), e.has_value())
              << name << " n=" << n << " t=" << t << " agent " << i;
          if (d) {
            EXPECT_EQ(d->value, e->value) << name << " agent " << i;
            EXPECT_EQ(d->round, e->round) << name << " agent " << i;
          }
        }
      }
      // (Equivariance on two-plane GO patterns — where the renaming also
      // acts on receive drops — is covered by tests/test_go.cpp's
      // POptGoCommutesWithAgentRenaming.)
    }
  }
}

}  // namespace
}  // namespace eba
