// Randomized differential test: the bit-packed CommGraph and its
// word-parallel knowledge operators against the retained byte-per-label
// reference implementation (tests/reference_graph.hpp).
//
// Both implementations are driven through the same label-level API calls —
// advance_round / merge exactly as FipExchange::update issues them — on
// seeded random failure patterns, then compared on every label, preference,
// hash, cone membership, last_heard, extracted view, and fault-table entry.
// A second part replays P_opt runs and asserts that the incremental
// cached decision path (persistent FipState knowledge cache + inferred
// table) matches a from-scratch recomputation at every (agent, time).
#include <gtest/gtest.h>

#include <vector>

#include "action/p_opt.hpp"
#include "failure/generators.hpp"
#include "graph/knowledge.hpp"
#include "reference_graph.hpp"
#include "sim/simulator.hpp"
#include "stats/rng.hpp"

namespace eba {
namespace {

using testref::RefCommGraph;
using testref::RefCone;

struct DualRun {
  std::vector<CommGraph> packed;
  std::vector<RefCommGraph> ref;
};

/// Advances both implementations through one FIP round under `alpha`,
/// mirroring FipExchange::update: advance_round with the delivered set, then
/// merge every delivered peer graph (snapshotted before the round).
void step(DualRun& d, const FailurePattern& alpha, int m) {
  const int n = alpha.n();
  const std::vector<CommGraph> packed_before = d.packed;
  const std::vector<RefCommGraph> ref_before = d.ref;
  for (AgentId i = 0; i < n; ++i) {
    AgentSet received;
    for (AgentId j = 0; j < n; ++j)
      if (alpha.delivered(m, j, i)) received.insert(j);
    d.packed[static_cast<std::size_t>(i)].advance_round(i, received);
    d.ref[static_cast<std::size_t>(i)].advance_round(i, received);
    for (AgentId j : received) {
      if (j == i) continue;
      d.packed[static_cast<std::size_t>(i)].merge(
          packed_before[static_cast<std::size_t>(j)]);
      d.ref[static_cast<std::size_t>(i)].merge(
          ref_before[static_cast<std::size_t>(j)]);
    }
  }
}

void expect_graphs_match(const CommGraph& g, const RefCommGraph& r) {
  ASSERT_EQ(g.n(), r.n());
  ASSERT_EQ(g.time(), r.time());
  for (int m = 0; m < g.time(); ++m)
    for (AgentId from = 0; from < g.n(); ++from)
      for (AgentId to = 0; to < g.n(); ++to)
        ASSERT_EQ(g.label(m, from, to), r.label(m, from, to))
            << "label (" << m << ", " << from << ", " << to << ")";
  for (AgentId j = 0; j < g.n(); ++j) ASSERT_EQ(g.pref(j), r.pref(j));
  // The graph rebuilt label-by-label through the mutation API must be equal
  // to — and hash identically to — the incrementally grown packed graph.
  const CommGraph rebuilt = r.to_packed();
  EXPECT_EQ(rebuilt, g);
  EXPECT_EQ(rebuilt.hash(), g.hash());
}

void expect_knowledge_matches(const CommGraph& g, const RefCommGraph& r,
                              AgentId owner) {
  const int top = g.time();
  const Cone cone(g, owner, top);
  const RefCone ref_cone(r, owner, top);
  for (int m = 0; m <= top; ++m)
    ASSERT_EQ(cone.at(m), ref_cone.at(m)) << "cone level " << m;
  for (AgentId j = 0; j < g.n(); ++j)
    ASSERT_EQ(cone.last_heard(j), ref_cone.last_heard(j)) << "agent " << j;

  const auto table = known_faults_table(g);
  const auto ref_table = testref::ref_known_faults_table(r);
  ASSERT_EQ(table.size(), ref_table.size());
  for (std::size_t m = 0; m < table.size(); ++m)
    for (AgentId j = 0; j < g.n(); ++j) {
      ASSERT_EQ(table[m][static_cast<std::size_t>(j)],
                ref_table[m][static_cast<std::size_t>(j)])
          << "f(" << j << ", " << m << ")";
      // Row-only queries must agree with the full table.
      ASSERT_EQ(known_faults(g, j, static_cast<int>(m)),
                table[m][static_cast<std::size_t>(j)]);
    }

  for (int m = 0; m <= top; ++m)
    for (AgentId j = 0; j < g.n(); ++j) {
      if (!cone.contains(j, m)) continue;
      const CommGraph view = extract_view(g, j, m);
      const CommGraph ref_view = testref::ref_extract_view(r, j, m).to_packed();
      ASSERT_EQ(view, ref_view) << "view (" << j << ", " << m << ")";
      ASSERT_EQ(view.hash(), ref_view.hash());
    }
}

TEST(DifferentialGraph, PackedMatchesReferenceOnRandomRuns) {
  Rng rng(20230717);
  for (int trial = 0; trial < 12; ++trial) {
    const int n = 3 + static_cast<int>(rng.below(6));  // 3..8
    const int t = 1 + static_cast<int>(rng.below(n - 2 > 0 ? n - 2 : 1));
    const int rounds = t + 2;
    const auto alpha = sample_adversary(n, t, rounds, 0.35, rng);
    const auto prefs = sample_preferences(n, rng);

    DualRun d;
    for (AgentId i = 0; i < n; ++i) {
      d.packed.emplace_back(n, i, prefs[static_cast<std::size_t>(i)]);
      d.ref.emplace_back(n, i, prefs[static_cast<std::size_t>(i)]);
    }
    for (int m = 0; m < rounds; ++m) {
      step(d, alpha, m);
      for (AgentId i = 0; i < n; ++i) {
        SCOPED_TRACE("trial " + std::to_string(trial) + " round " +
                     std::to_string(m + 1) + " agent " + std::to_string(i));
        expect_graphs_match(d.packed[static_cast<std::size_t>(i)],
                            d.ref[static_cast<std::size_t>(i)]);
      }
    }
    // Knowledge operators are compared once per agent at the final time (the
    // richest graphs); earlier times are covered via extract_view recursion.
    for (AgentId i = 0; i < n; ++i) {
      SCOPED_TRACE("trial " + std::to_string(trial) + " agent " +
                   std::to_string(i));
      expect_knowledge_matches(d.packed[static_cast<std::size_t>(i)],
                               d.ref[static_cast<std::size_t>(i)], i);
    }
  }
}

TEST(DifferentialGraph, CachedDecisionsMatchFromScratchRecomputation) {
  Rng rng(424242);
  for (int trial = 0; trial < 8; ++trial) {
    const int n = 4 + static_cast<int>(rng.below(4));  // 4..7
    const int t = 1 + static_cast<int>(rng.below(2));
    const auto alpha = sample_adversary(n, t, t + 2, 0.4, rng);
    const auto prefs = sample_preferences(n, rng);

    const FipExchange x(n);
    const POpt p(n, t);
    SimulateOptions opt;
    opt.max_rounds = t + 3;
    const auto run = simulate(x, p, alpha, prefs, t, opt);

    for (int m = 0; m < run.record.rounds; ++m) {
      for (AgentId i = 0; i < n; ++i) {
        // The recorded action came from the incremental path: a knowledge
        // cache and inferred table carried across rounds. Recompute from a
        // pristine state (same graph, cold caches) and compare.
        FipState fresh = run.states[static_cast<std::size_t>(m)]
                                   [static_cast<std::size_t>(i)];
        fresh.inferred = ActionTable{};
        fresh.knowledge = KnowledgeCache{};
        const Action recomputed = p(fresh);
        EXPECT_EQ(recomputed,
                  run.record.actions[static_cast<std::size_t>(m)]
                                    [static_cast<std::size_t>(i)])
            << "trial " << trial << " time " << m << " agent " << i;
      }
    }
  }
}

TEST(DifferentialGraph, StaticTestsAgreeWithCachedOverloads) {
  Rng rng(7);
  for (int trial = 0; trial < 6; ++trial) {
    const int n = 5;
    const int t = 2;
    const auto alpha = sample_adversary(n, t, t + 2, 0.4, rng);
    const auto prefs = sample_preferences(n, rng);
    const FipExchange x(n);
    const POpt p(n, t);
    SimulateOptions opt;
    opt.max_rounds = t + 2;
    opt.stop_when_all_decided = false;
    const auto run = simulate(x, p, alpha, prefs, t, opt);
    for (AgentId i = 0; i < n; ++i) {
      const FipState& s = run.states.back()[static_cast<std::size_t>(i)];
      p.infer_actions(s);
      KnowledgeCache cache;
      for (Value v : {Value::zero, Value::one}) {
        const bool plain = POpt::common_test(s.graph, i, v, t, s.inferred);
        // Twice through the same cache: cold then memoized.
        EXPECT_EQ(plain, POpt::common_test(s.graph, i, v, t, s.inferred, cache));
        EXPECT_EQ(plain, POpt::common_test(s.graph, i, v, t, s.inferred, cache));
      }
      const bool plain1 = POpt::cond1_test(s.graph, i, s.inferred);
      EXPECT_EQ(plain1, POpt::cond1_test(s.graph, i, s.inferred, cache));
    }
  }
}

}  // namespace
}  // namespace eba
