// Tests for the common-knowledge ablation: P0 evaluated over the
// full-information exchange (P_opt with the C_N lines disabled) is a
// correct EBA protocol — Prop 6.1 holds in *every* EBA context — but it is
// not optimal: it loses the Example 7.1 shortcut, and the knowledge-based
// fixed point it implements is P0, not P1.
#include <gtest/gtest.h>

#include "action/p_opt.hpp"
#include "core/spec.hpp"
#include "exchange/fip.hpp"
#include "failure/generators.hpp"
#include "kripke/kbp.hpp"
#include "kripke/system.hpp"
#include "sim/drivers.hpp"
#include "stats/rng.hpp"

namespace eba {
namespace {

TEST(Ablation, P0OnFipSatisfiesSpecExhaustively) {
  const int n = 3;
  const int t = 1;
  const auto drive = make_fip_p0_driver(n, t);
  const auto prefs = all_preference_vectors(n);
  enumerate_adversaries(EnumerationConfig{.n = n, .t = t, .rounds = 2},
                        [&](const FailurePattern& alpha) {
                          for (const auto& p : prefs) {
                            const SpecReport rep =
                                check_eba(drive(alpha, p).record);
                            EXPECT_TRUE(rep.ok_strict());
                          }
                          return !::testing::Test::HasFailure();
                        });
}

TEST(Ablation, P0OnFipSatisfiesSpecOnRandomRuns) {
  const int n = 8;
  const int t = 3;
  const auto drive = make_fip_p0_driver(n, t);
  Rng rng(414);
  for (int k = 0; k < 100; ++k) {
    const auto alpha = sample_adversary(n, rng.below(t + 1), t + 2, 0.4, rng);
    const auto prefs = sample_preferences(n, rng);
    ASSERT_TRUE(check_eba(drive(alpha, prefs).record).ok_strict());
  }
}

TEST(Ablation, LosesExampleSevenOneShortcut) {
  const int n = 8;
  const int t = 4;
  const auto alpha = silent_agents_pattern(
      n, AgentSet::all(n).minus(AgentSet::all(n - t)), t + 3);
  const std::vector<Value> prefs(static_cast<std::size_t>(n), Value::one);
  const RunSummary with_ck = make_fip_driver(n, t)(alpha, prefs);
  const RunSummary without_ck = make_fip_p0_driver(n, t)(alpha, prefs);
  for (AgentId i : alpha.nonfaulty()) {
    EXPECT_EQ(with_ck.round_of(i), 3);
    EXPECT_EQ(without_ck.round_of(i), t + 2)
        << "without the common-knowledge lines the shortcut must vanish";
  }
}

TEST(Ablation, NeverEarlierThanFullPOpt) {
  const int n = 6;
  const int t = 2;
  const auto full = make_fip_driver(n, t);
  const auto ablated = make_fip_p0_driver(n, t);
  Rng rng(415);
  for (int k = 0; k < 100; ++k) {
    const auto alpha = sample_adversary(n, rng.below(t + 1), t + 2, 0.4, rng);
    const auto prefs = sample_preferences(n, rng);
    const RunSummary f = full(alpha, prefs);
    const RunSummary a = ablated(alpha, prefs);
    for (AgentId i : alpha.nonfaulty())
      EXPECT_LE(f.round_of(i), a.round_of(i));
  }
}

// The ablated protocol is an implementation of the knowledge-based program
// P0 with respect to the full-information context (Prop 6.1's "all
// implementations of P0" covers it).
TEST(Ablation, P0OnFipImplementsP0) {
  InterpretedSystem<FipExchange, POpt> sys(
      FipExchange(3), POpt(3, 1, POpt::CommonKnowledge::disabled), 1, 4);
  sys.add_all_runs(EnumerationConfig{.n = 3, .t = 1, .rounds = 2});
  sys.finalize();
  const auto mismatches = check_implementation(
      sys,
      [](const auto& I, Point pt, AgentId i) { return eval_p0(I, pt, i); },
      3);
  EXPECT_TRUE(mismatches.empty()) << mismatches.size() << " mismatches";
}

}  // namespace
}  // namespace eba
