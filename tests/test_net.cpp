// Messaging-layer tests: wire-format round trips, the round bus barrier and
// fault injection, and end-to-end equivalence of the threaded cluster with
// the abstract simulator.
#include <gtest/gtest.h>

#include <thread>

#include "action/p_basic.hpp"
#include "action/p_min.hpp"
#include "action/p_opt.hpp"
#include "core/spec.hpp"
#include "failure/generators.hpp"
#include "net/cluster.hpp"
#include "net/serialize.hpp"
#include "sim/simulator.hpp"
#include "stats/rng.hpp"

namespace eba {
namespace {

TEST(SerializeTest, ValueRoundTrip) {
  for (Value v : {Value::zero, Value::one})
    EXPECT_EQ(from_bytes<Value>(to_bytes(v)), v);
}

TEST(SerializeTest, BasicMsgRoundTrip) {
  for (BasicMsg m : {BasicMsg::decide0, BasicMsg::decide1, BasicMsg::init1})
    EXPECT_EQ(from_bytes<BasicMsg>(to_bytes(m)), m);
}

TEST(SerializeTest, GraphRoundTrip) {
  CommGraph g(4, 2, Value::one);
  g.advance_round(2, AgentSet{0, 3});
  g.advance_round(2, AgentSet{1});
  g.set_pref(0, PrefLabel::zero);
  Writer w;
  encode_graph(w, g);
  const Bytes payload = w.take();
  Reader r(payload);
  EXPECT_EQ(decode_graph(r), g);
  EXPECT_TRUE(r.exhausted());
}

TEST(SerializeTest, SharedGraphMessageRoundTrip) {
  const auto g = std::make_shared<const CommGraph>(CommGraph(3, 1, Value::zero));
  const auto back = from_bytes<std::shared_ptr<const CommGraph>>(to_bytes(g));
  EXPECT_EQ(*back, *g);
}

TEST(SerializeTest, TruncatedPayloadThrows) {
  Bytes b = to_bytes(std::make_shared<const CommGraph>(CommGraph(3, 0, Value::one)));
  b.pop_back();
  try {
    (void)from_bytes<std::shared_ptr<const CommGraph>>(b);
    FAIL() << "truncated graph payload accepted";
  } catch (const DecodeError& e) {
    EXPECT_EQ(e.kind(), DecodeError::Kind::truncated);
  }
}

TEST(SerializeTest, TrailingBytesThrow) {
  Bytes b = to_bytes(Value::one);
  b.push_back(0);
  try {
    (void)from_bytes<Value>(b);
    FAIL() << "over-length payload accepted";
  } catch (const DecodeError& e) {
    EXPECT_EQ(e.kind(), DecodeError::Kind::trailing);
  }
}

// -- Decoder fuzz: untrusted bytes land in DecodeError, never UB -------------

/// Decoding any mutation either succeeds (a mutated-but-wellformed buffer)
/// or throws DecodeError. An EBA_REQUIRE (std::logic_error) firing would
/// mean a decoder treated attacker bytes as a caller contract.
template <class Decode>
void fuzz_decoder(const Bytes& wellformed, Decode&& decode,
                  const std::string& what) {
  for (std::size_t cut = 0; cut < wellformed.size(); ++cut) {
    Bytes buf(wellformed.begin(),
              wellformed.begin() + static_cast<std::ptrdiff_t>(cut));
    try {
      decode(buf);
    } catch (const DecodeError&) {
    } catch (const std::exception& e) {
      FAIL() << what << ": truncation at " << cut
             << " escaped as non-DecodeError: " << e.what();
    }
  }
  for (std::size_t at = 0; at < wellformed.size(); ++at) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes buf = wellformed;
      buf[at] ^= static_cast<std::uint8_t>(1u << bit);
      try {
        decode(buf);
      } catch (const DecodeError&) {
      } catch (const std::exception& e) {
        FAIL() << what << ": bit " << bit << " flip at byte " << at
               << " escaped as non-DecodeError: " << e.what();
      }
    }
  }
  // Over-length and junk prefixes.
  Bytes longer = wellformed;
  longer.push_back(0xEE);
  try {
    decode(longer);
  } catch (const DecodeError&) {
  } catch (const std::exception& e) {
    FAIL() << what << ": over-length escaped as non-DecodeError: " << e.what();
  }
}

TEST(SerializeFuzzTest, GraphDecoderNeverEscapes) {
  CommGraph g(5, 3, Value::one);
  g.advance_round(3, AgentSet{0, 2, 4});
  g.advance_round(3, AgentSet{1, 2});
  g.set_pref(2, PrefLabel::zero);
  Writer w;
  encode_graph(w, g);
  fuzz_decoder(
      w.take(),
      [](const Bytes& b) {
        Reader r(b);
        (void)decode_graph(r);
        if (!r.exhausted())
          throw DecodeError(DecodeError::Kind::trailing, "trailing");
      },
      "graph");
}

TEST(SerializeFuzzTest, PatternAndRecordDecodersNeverEscape) {
  Rng rng(71);
  const FailurePattern alpha = sample_go_adversary(5, 2, 4, 0.4, 0.3, rng);
  Writer wp;
  encode_pattern(wp, alpha);
  const Bytes pattern_bytes = wp.take();
  {
    Reader r(pattern_bytes);
    EXPECT_TRUE(decode_pattern(r) == alpha) << "pattern round-trip";
  }
  fuzz_decoder(
      pattern_bytes,
      [](const Bytes& b) {
        Reader r(b);
        (void)decode_pattern(r);
      },
      "pattern");

  const auto run = simulate(MinExchange(5), PMin(5, 2), alpha,
                            sample_preferences(5, rng), 2);
  Writer wr;
  encode_record(wr, run.record);
  const Bytes record_bytes = wr.take();
  {
    Reader r(record_bytes);
    EXPECT_EQ(decode_record(r), run.record) << "record round-trip";
  }
  fuzz_decoder(
      record_bytes,
      [](const Bytes& b) {
        Reader r(b);
        (void)decode_record(r);
      },
      "record");
}

TEST(SerializeFuzzTest, StateDecodersNeverEscape) {
  const auto run = simulate(FipExchange(4), POpt(4, 2),
                            FailurePattern::failure_free(4),
                            std::vector<Value>(4, Value::one), 2);
  Writer w;
  encode_state(w, run.states.back()[1]);
  fuzz_decoder(
      w.take(),
      [&run](const Bytes& b) {
        Reader r(b);
        FipState s = run.states.back()[1];
        decode_state(r, s);
      },
      "fip-state");
}

TEST(SerializeFuzzTest, FrameLengthCannotOverread) {
  // A frame whose length field promises more than the buffer holds must be
  // a truncation error, not a read past the end.
  Bytes out;
  write_frame(out, 1, Bytes{1, 2, 3});
  Bytes huge = out;
  huge[1] = 0xFF;
  huge[2] = 0xFF;  // length ~64K, buffer ~12 bytes
  std::size_t pos = 0;
  try {
    (void)read_frame(huge, pos);
    FAIL() << "oversized frame length accepted";
  } catch (const DecodeError& e) {
    EXPECT_EQ(e.kind(), DecodeError::Kind::truncated);
  }
  // The pristine frame round-trips.
  pos = 0;
  const Frame f = read_frame(out, pos);
  EXPECT_EQ(f.kind, 1);
  EXPECT_EQ(f.payload, (Bytes{1, 2, 3}));
  EXPECT_EQ(pos, out.size());
}

TEST(RoundBusTest, BarrierDeliversAndFilters) {
  const int n = 3;
  FailurePattern alpha(n, AgentSet{0, 1});
  alpha.drop(0, 2, 0);
  RoundBus bus(n, alpha);
  std::vector<RoundBus::RoundResult> results(static_cast<std::size_t>(n));
  {
    std::vector<std::jthread> threads;
    for (AgentId i = 0; i < n; ++i)
      threads.emplace_back([&, i] {
        results[static_cast<std::size_t>(i)] =
            bus.exchange(i, Bytes{static_cast<std::uint8_t>(i)}, false);
      });
  }
  // Agent 0 misses agent 2's payload; everyone else gets everything.
  EXPECT_FALSE(results[0].inbox[2].has_value());
  EXPECT_TRUE(results[0].inbox[1].has_value());
  EXPECT_TRUE(results[1].inbox[2].has_value());
  EXPECT_TRUE(results[2].inbox[2].has_value()) << "self-delivery";
  EXPECT_EQ((*results[1].inbox[2])[0], 2);
  EXPECT_FALSE(results[0].all_decided);
  EXPECT_EQ(bus.completed_rounds(), 1);
  EXPECT_EQ(bus.delivered_log(0)[2], AgentSet{1});
}

TEST(RoundBusTest, LogsThrowUntilTheRoundCompletes) {
  const int n = 2;
  RoundBus bus(n, FailurePattern::failure_free(n));
  // No round has completed yet: the logs must refuse, not return garbage.
  EXPECT_THROW((void)bus.delivered_log(0), std::logic_error);
  EXPECT_THROW((void)bus.sent_log(0), std::logic_error);
  EXPECT_EQ(bus.completed_rounds(), 0);
  RoundBus::RoundResult r0, r1;
  {
    std::vector<std::jthread> threads;
    threads.reserve(2);
    threads.emplace_back([&] { r0 = bus.exchange(0, Bytes{1}, false); });
    threads.emplace_back([&] { r1 = bus.exchange(1, Bytes{2}, false); });
  }
  EXPECT_EQ(bus.completed_rounds(), 1);
  EXPECT_NO_THROW((void)bus.delivered_log(0));
  EXPECT_NO_THROW((void)bus.sent_log(0));
  // Round 1 has not completed: still out of bounds.
  EXPECT_THROW((void)bus.delivered_log(1), std::logic_error);
  EXPECT_THROW((void)bus.sent_log(1), std::logic_error);
  EXPECT_THROW((void)bus.delivered_log(-1), std::logic_error);
}

TEST(RoundBusTest, AllDecidedFlagAggregates) {
  const int n = 2;
  RoundBus bus(n, FailurePattern::failure_free(n));
  RoundBus::RoundResult r0, r1;
  {
    std::vector<std::jthread> threads;
    threads.reserve(2);
    threads.emplace_back([&] { r0 = bus.exchange(0, std::nullopt, true); });
    threads.emplace_back([&] { r1 = bus.exchange(1, std::nullopt, true); });
  }
  EXPECT_TRUE(r0.all_decided);
  EXPECT_TRUE(r1.all_decided);
}

template <class X, class P>
void expect_cluster_matches_simulator(const X& x, const P& p,
                                      const FailurePattern& alpha,
                                      const std::vector<Value>& inits, int t) {
  const auto cluster = run_cluster(x, p, alpha, inits, t);
  SimulateOptions opt;
  opt.max_rounds = t + 4;
  const auto sim = simulate(x, p, alpha, inits, t, opt);
  ASSERT_EQ(cluster.record.rounds, sim.record.rounds);
  EXPECT_EQ(cluster.record.actions, sim.record.actions);
  EXPECT_EQ(cluster.record.delivered, sim.record.delivered);
  EXPECT_EQ(cluster.record.sent, sim.record.sent);
  for (AgentId i = 0; i < x.n(); ++i)
    EXPECT_EQ(cluster.final_states[static_cast<std::size_t>(i)],
              sim.states.back()[static_cast<std::size_t>(i)]);
}

TEST(ClusterTest, MatchesSimulatorPMin) {
  const int n = 5;
  const int t = 2;
  Rng rng(31);
  for (int k = 0; k < 10; ++k) {
    const auto alpha = sample_adversary(n, t, t + 2, 0.4, rng);
    const auto prefs = sample_preferences(n, rng);
    expect_cluster_matches_simulator(MinExchange(n), PMin(n, t), alpha, prefs, t);
  }
}

TEST(ClusterTest, MatchesSimulatorPBasic) {
  const int n = 5;
  const int t = 2;
  Rng rng(32);
  for (int k = 0; k < 10; ++k) {
    const auto alpha = sample_adversary(n, t, t + 2, 0.4, rng);
    const auto prefs = sample_preferences(n, rng);
    expect_cluster_matches_simulator(BasicExchange(n), PBasic(n, t), alpha,
                                     prefs, t);
  }
}

TEST(ClusterTest, MatchesSimulatorPOptWithGraphPayloads) {
  const int n = 4;
  const int t = 2;
  Rng rng(33);
  for (int k = 0; k < 5; ++k) {
    const auto alpha = sample_adversary(n, t, t + 2, 0.4, rng);
    const auto prefs = sample_preferences(n, rng);
    expect_cluster_matches_simulator(FipExchange(n), POpt(n, t), alpha, prefs, t);
  }
}

TEST(ClusterTest, ThreadPerAgentMatchesSimulatorPOpt) {
  // The legacy n-threads-per-run model, kept as the reference (and as the
  // throughput-bench baseline), must still match the simulator.
  const int n = 4;
  const int t = 2;
  Rng rng(34);
  for (int k = 0; k < 3; ++k) {
    const auto alpha = sample_adversary(n, t, t + 2, 0.4, rng);
    const auto prefs = sample_preferences(n, rng);
    const auto cluster =
        run_cluster_thread_per_agent(FipExchange(n), POpt(n, t), alpha, prefs, t);
    const auto sim = simulate(FipExchange(n), POpt(n, t), alpha, prefs, t);
    ASSERT_EQ(cluster.record.rounds, sim.record.rounds);
    EXPECT_EQ(cluster.record.actions, sim.record.actions);
    EXPECT_EQ(cluster.record.delivered, sim.record.delivered);
    EXPECT_EQ(cluster.record.sent, sim.record.sent);
  }
}

TEST(ClusterTest, ExampleSeventyOneOverTheWire) {
  // The headline example end-to-end over byte payloads: 8 agents, t=4,
  // 4 silent faulty agents, all-ones preferences — the FIP cluster decides 1
  // in round 3.
  const int n = 8;
  const int t = 4;
  AgentSet silent;
  for (AgentId i = 0; i < t; ++i) silent.insert(i);
  const auto alpha = silent_agents_pattern(n, silent, t + 3);
  const std::vector<Value> prefs(static_cast<std::size_t>(n), Value::one);
  const auto result = run_cluster(FipExchange(n), POpt(n, t), alpha, prefs, t);
  for (AgentId i : alpha.nonfaulty()) {
    const auto d = result.record.decision(i);
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->round, 3);
    EXPECT_EQ(d->value, Value::one);
  }
  EXPECT_TRUE(check_eba(result.record).ok());
}

}  // namespace
}  // namespace eba
