// Crash-safety suite: decision certificates, durable traces, and
// snapshot/restore with fault injection.
//
// The correctness oracle everywhere is the determinism differential: a
// crashed-and-restored run must finish with the RunRecord an uninterrupted
// run produces — across protocols, failure models and adaptive adversaries
// (whose realized pattern must survive the snapshot). The durable formats
// get the adversarial treatment: every truncation and bit flip of a
// certificate, trace or checkpoint must come back as a typed DecodeError
// or a failed verification, never an accept and never UB.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "action/p_basic.hpp"
#include "action/p_min.hpp"
#include "action/p_opt.hpp"
#include "action/p_opt_go.hpp"
#include "audit/certificate.hpp"
#include "audit/trace_file.hpp"
#include "core/spec.hpp"
#include "failure/generators.hpp"
#include "net/checkpoint.hpp"
#include "net/workload.hpp"
#include "sim/adaptive.hpp"
#include "sim/simulator.hpp"
#include "stats/rng.hpp"

namespace eba {
namespace {

void expect_records_equal(const RunRecord& got, const RunRecord& want,
                          const std::string& what) {
  EXPECT_EQ(got.n, want.n) << what;
  EXPECT_EQ(got.t, want.t) << what;
  ASSERT_EQ(got.rounds, want.rounds) << what;
  EXPECT_EQ(got.inits, want.inits) << what;
  EXPECT_EQ(got.nonfaulty, want.nonfaulty) << what;
  EXPECT_EQ(got.actions, want.actions) << what;
  EXPECT_EQ(got.sent, want.sent) << what;
  EXPECT_EQ(got.delivered, want.delivered) << what;
}

FailurePattern seeded_pattern(int n, int t, FailureModel model,
                              std::uint64_t seed) {
  Rng rng(seed);
  return model == FailureModel::sending
             ? sample_adversary(n, t, t + 2, 0.35, rng)
             : sample_go_adversary(n, t, t + 2, 0.35, 0.25, rng);
}

std::vector<Value> seeded_prefs(int n, std::uint64_t seed) {
  Rng rng(seed);
  return sample_preferences(n, rng);
}

// -- Decision certificates ---------------------------------------------------

template <class X, class P>
void expect_certificate_roundtrip(const X& x, const P& p, FailureModel model,
                                  std::uint64_t seed,
                                  const std::string& what) {
  const int t = 2;
  const auto run = simulate(x, p, seeded_pattern(x.n(), t, model, seed),
                            seeded_prefs(x.n(), seed + 1), t);
  const DecisionCertificate cert = build_certificate(run.record, seed);
  const CertificateCheck check = verify_certificate(cert, run.record);
  EXPECT_TRUE(check.ok) << what;
  EXPECT_TRUE(check.errors.empty()) << what;
  EXPECT_EQ(cert.rounds, run.record.rounds) << what;
  ASSERT_EQ(cert.evidence.size(),
            static_cast<std::size_t>(run.record.rounds))
      << what;
  // A decided run's certificate must claim exactly the spec's decision.
  const SpecReport spec = check_eba(run.record);
  if (spec.ok() && cert.decided_value) {
    for (AgentId i : run.record.nonfaulty) {
      const auto d = run.record.decision(i);
      ASSERT_TRUE(d.has_value()) << what;
      EXPECT_EQ(d->value, *cert.decided_value) << what;
    }
  }

  // Codec roundtrip.
  Writer w;
  encode_certificate(w, cert);
  const Bytes bytes = w.take();
  Reader r(bytes);
  const DecisionCertificate back = decode_certificate(r);
  EXPECT_TRUE(r.exhausted()) << what;
  EXPECT_EQ(back, cert) << what;
}

TEST(CertificateTest, BuildVerifyAndCodecRoundtrip) {
  expect_certificate_roundtrip(MinExchange(6), PMin(6, 2),
                               FailureModel::sending, 21, "p_min");
  expect_certificate_roundtrip(BasicExchange(6), PBasic(6, 2),
                               FailureModel::sending, 22, "p_basic");
  expect_certificate_roundtrip(FipExchange(5), POpt(5, 2),
                               FailureModel::sending, 23, "p_opt");
  expect_certificate_roundtrip(FipExchange(5), POptGo(5, 2),
                               FailureModel::general, 24, "p_opt_go");
}

TEST(CertificateTest, DetectsEditedEvidence) {
  const int n = 5, t = 2;
  const auto run =
      simulate(FipExchange(n), POpt(n, t),
               seeded_pattern(n, t, FailureModel::sending, 31),
               seeded_prefs(n, 32), t);
  const DecisionCertificate cert = build_certificate(run.record, 7);

  // Editing a delivered plane breaks the evidence chain AND the pattern
  // digest (delivered \ sent changes the realized omissions).
  RunRecord tampered = run.record;
  ASSERT_GT(tampered.rounds, 0);
  auto& row = tampered.delivered[0][0];
  row = row.empty() ? tampered.sent[0][0] : AgentSet{};
  const CertificateCheck check = verify_certificate(cert, tampered);
  EXPECT_FALSE(check.ok);
  EXPECT_FALSE(check.errors.empty());

  // Editing the claimed decision is caught by the summary + final digest.
  DecisionCertificate lying = cert;
  lying.decided_value = lying.decided_value == Value::one
                            ? std::optional<Value>(Value::zero)
                            : std::optional<Value>(Value::one);
  const CertificateCheck check2 = verify_certificate(lying, run.record);
  EXPECT_FALSE(check2.ok);
}

TEST(CertificateTest, DecoderRejectsStructurallyImpossible) {
  const int n = 4, t = 1;
  const auto run = simulate(MinExchange(n), PMin(n, t),
                            FailurePattern::failure_free(n),
                            std::vector<Value>(n, Value::one), t);
  Writer w;
  encode_certificate(w, build_certificate(run.record));
  const Bytes bytes = w.take();

  // Truncation at every byte boundary is a typed error.
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    Bytes short_buf(bytes.begin(),
                    bytes.begin() + static_cast<std::ptrdiff_t>(cut));
    Reader r(short_buf);
    EXPECT_THROW((void)decode_certificate(r), DecodeError) << "cut " << cut;
  }
}

// -- Durable traces ----------------------------------------------------------

TEST(TraceFileTest, RoundtripParsesIdentically) {
  const int n = 5, t = 2;
  const auto run = simulate(FipExchange(n), POptGo(n, t),
                            seeded_pattern(n, t, FailureModel::general, 41),
                            seeded_prefs(n, 42), t);
  const Bytes trace = write_trace(run.record, 123);
  const TraceFile parsed = read_trace(trace);
  EXPECT_EQ(parsed.version, kTraceFormatVersion);
  EXPECT_EQ(parsed.instance_id, 123u);
  EXPECT_EQ(parsed.record, run.record);
  EXPECT_EQ(parsed.certificate, build_certificate(run.record, 123));

  const ReplayReport report = replay_verify(trace);
  EXPECT_TRUE(report.ok) << report.summary();
  EXPECT_TRUE(report.parsed && report.cert_ok);
}

TEST(TraceFileTest, EveryTruncationAndBitFlipRejected) {
  const int n = 4, t = 1;
  const auto run = simulate(MinExchange(n), PMin(n, t),
                            seeded_pattern(n, t, FailureModel::sending, 51),
                            seeded_prefs(n, 52), t);
  const Bytes trace = write_trace(run.record);
  ASSERT_TRUE(replay_verify(trace).ok);

  for (std::size_t cut = 0; cut < trace.size(); ++cut) {
    Bytes t_buf(trace.begin(),
                trace.begin() + static_cast<std::ptrdiff_t>(cut));
    const ReplayReport report = replay_verify(t_buf);
    EXPECT_FALSE(report.ok) << "truncation at " << cut;
    EXPECT_FALSE(report.parsed) << "truncation at " << cut;
  }
  for (std::size_t at = 0; at < trace.size(); ++at) {
    for (int bit : {0, 7}) {
      Bytes t_buf = trace;
      t_buf[at] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_FALSE(replay_verify(t_buf).ok)
          << "bit " << bit << " flip at byte " << at;
    }
  }
}

TEST(TraceFileTest, VersionSkewMagicAndTrailingRejected) {
  const int n = 4, t = 1;
  const auto run = simulate(MinExchange(n), PMin(n, t),
                            FailurePattern::failure_free(n),
                            std::vector<Value>(n, Value::zero), t);
  const Bytes trace = write_trace(run.record);

  Bytes skew = trace;
  skew[4] = 0x7F;  // version 127
  try {
    (void)read_trace(skew);
    FAIL() << "version skew accepted";
  } catch (const DecodeError& e) {
    EXPECT_EQ(e.kind(), DecodeError::Kind::bad_version);
  }

  Bytes magic = trace;
  magic[1] = 'X';
  try {
    (void)read_trace(magic);
    FAIL() << "magic corruption accepted";
  } catch (const DecodeError& e) {
    EXPECT_EQ(e.kind(), DecodeError::Kind::bad_magic);
  }

  Bytes trailing = trace;
  trailing.push_back(0);
  EXPECT_THROW((void)read_trace(trailing), DecodeError);

  // A trace cut after a whole frame (certificate missing) is rejected as an
  // unterminated stream, which is what makes writer crashes detectable.
  std::size_t pos = 8;
  (void)read_frame(trace, pos);  // header frame
  Bytes unterminated(trace.begin(),
                     trace.begin() + static_cast<std::ptrdiff_t>(pos));
  try {
    (void)read_trace(unterminated);
    FAIL() << "unterminated trace accepted";
  } catch (const DecodeError& e) {
    EXPECT_EQ(e.kind(), DecodeError::Kind::missing_frame);
  }
}

TEST(TraceFileTest, TruncatedHorizonRunVerifiesWithoutDecision) {
  // A max_rounds-cut run reaches no decision; its certificate must not claim
  // one, and replay_verify must accept the trace without the termination
  // properties (which a cut run cannot satisfy).
  const int n = 5, t = 2;
  SimulateOptions opt;
  opt.max_rounds = 1;
  const auto run = simulate(MinExchange(n), PMin(n, t),
                            seeded_pattern(n, t, FailureModel::sending, 61),
                            std::vector<Value>(n, Value::one), t, opt);
  const Bytes trace = write_trace(run.record);
  const TraceFile parsed = read_trace(trace);
  EXPECT_FALSE(parsed.certificate.decided_value.has_value());
  EXPECT_EQ(parsed.certificate.decided_round, -1);
  const ReplayReport report = replay_verify(trace);
  EXPECT_TRUE(report.ok) << report.summary();
  EXPECT_FALSE(report.complete);
}

// -- Checkpoint/restore ------------------------------------------------------

/// Runs the instance to completion, checkpointing at EVERY round boundary,
/// then restores from each checkpoint and re-runs to completion: every
/// restored run must match the uninterrupted record, wire accounting and
/// final states exactly.
template <class X, class P>
void expect_restore_matches(const X& x, const P& p, const FailurePattern& alpha,
                            const std::vector<Value>& prefs, int t,
                            const std::string& what) {
  Stepper<X, P> stepper(x, p, alpha, prefs, t);
  std::vector<Bytes> checkpoints;
  checkpoints.push_back(checkpoint_stepper(stepper));
  while (stepper.step()) checkpoints.push_back(checkpoint_stepper(stepper));
  const RunRecord want = stepper.take_record();
  const auto want_states = stepper.take_states();

  for (std::size_t k = 0; k < checkpoints.size(); ++k) {
    Stepper<X, P> restored = restore_stepper<X, P>(x, p, checkpoints[k]);
    EXPECT_EQ(restored.time(), static_cast<int>(k)) << what;
    EXPECT_EQ(restored.start_time(), restored.time()) << what;
    while (restored.step()) {
    }
    expect_records_equal(restored.record(), want,
                         what + " restored from round " + std::to_string(k));
    EXPECT_EQ(restored.states(), want_states) << what << " round " << k;
  }
}

TEST(CheckpointTest, RestoreMatchesUninterruptedEveryProtocol) {
  const int t = 2;
  expect_restore_matches(MinExchange(5), PMin(5, t),
                         seeded_pattern(5, t, FailureModel::sending, 71),
                         seeded_prefs(5, 72), t, "p_min");
  expect_restore_matches(BasicExchange(5), PBasic(5, t),
                         seeded_pattern(5, t, FailureModel::sending, 73),
                         seeded_prefs(5, 74), t, "p_basic");
  expect_restore_matches(FipExchange(4), POpt(4, t),
                         seeded_pattern(4, t, FailureModel::sending, 75),
                         seeded_prefs(4, 76), t, "p_opt");
  expect_restore_matches(FipExchange(4), POptGo(4, t),
                         seeded_pattern(4, t, FailureModel::general, 77),
                         seeded_prefs(4, 78), t, "p_opt_go");
}

TEST(CheckpointTest, RestoredSinkObservesFromResumeTime) {
  const int n = 4, t = 1;
  const MinExchange x(n);
  const PMin p(n, t);
  Stepper<MinExchange, PMin> stepper(x, p, FailurePattern::failure_free(n),
                                     std::vector<Value>(n, Value::one), t);
  ASSERT_TRUE(stepper.step());
  ASSERT_TRUE(stepper.step());
  const Bytes ck = checkpoint_stepper(stepper);

  MaterializingSink<MinExchange> sink;
  Stepper<MinExchange, PMin> restored =
      restore_stepper<MinExchange, PMin>(x, p, ck, &sink);
  ASSERT_EQ(sink.states().size(), 1u) << "resume-time states only";
  while (restored.step()) {
  }
  EXPECT_EQ(sink.states().size(),
            static_cast<std::size_t>(restored.time() - 2 + 1));
  EXPECT_EQ(sink.states().back(), restored.states());
}

TEST(CheckpointTest, CorruptCheckpointsRejected) {
  const int n = 4, t = 1;
  const MinExchange x(n);
  const PMin p(n, t);
  Stepper<MinExchange, PMin> stepper(
      x, p, seeded_pattern(n, t, FailureModel::sending, 81),
      seeded_prefs(n, 82), t);
  ASSERT_TRUE(stepper.step());
  const Bytes ck = checkpoint_stepper(stepper);

  {
    const auto pristine = restore_stepper<MinExchange, PMin>(x, p, ck);
    ASSERT_EQ(pristine.time(), 1) << "pristine checkpoint must restore";
  }
  for (std::size_t cut = 0; cut < ck.size(); ++cut) {
    Bytes short_buf(ck.begin(), ck.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_THROW((void)(restore_stepper<MinExchange, PMin>(x, p, short_buf)),
                 DecodeError)
        << "cut " << cut;
  }
  for (std::size_t at = 0; at < ck.size(); ++at) {
    Bytes flip = ck;
    flip[at] ^= 1;
    EXPECT_THROW((void)(restore_stepper<MinExchange, PMin>(x, p, flip)),
                 DecodeError)
        << "flip at " << at;
  }
  // A checkpoint for the wrong context is rejected, not misapplied.
  EXPECT_THROW(
      (void)(restore_stepper<MinExchange, PMin>(MinExchange(n + 1),
                                                PMin(n + 1, t), ck)),
      DecodeError);
}

TEST(CheckpointTest, AdaptiveRestoreReplaysTheStrategy) {
  // The realized pattern must survive the snapshot: a restored instance with
  // a rolled-back strategy re-produces the exact drops the uninterrupted
  // adaptive run realizes — including the RNG-driven strategy, whose engine
  // position rides in the adversary-state blob.
  const int n = 5, t = 2;
  const FipExchange x(n);
  const POptGo p(n, t);
  const auto prefs = seeded_prefs(n, 91);

  for (const auto& factory : shipped_strategies(n, t, FailureModel::general)) {
    for (std::uint64_t seed : {3ull, 4ull}) {
      const std::string what = factory.name + " seed " + std::to_string(seed);

      auto want_strat = factory.make(seed);
      const AdaptiveOutcome want = run_adaptive(x, p, *want_strat, prefs, t);

      // Interrupted twin: checkpoint (stepper + strategy) after two rounds.
      auto strat = factory.make(seed);
      FailurePattern base = strat->base_pattern();
      Stepper<FipExchange, POptGo> stepper(x, p, std::move(base), prefs, t);
      stepper.set_adversary_hook(make_strategy_hook(*strat, t));
      ASSERT_TRUE(stepper.step()) << what;
      ASSERT_TRUE(stepper.step()) << what;
      const Bytes ck = checkpoint_stepper(stepper, strat->checkpoint_state());

      std::string blob;
      Stepper<FipExchange, POptGo> restored =
          restore_stepper<FipExchange, POptGo>(x, p, ck, nullptr, &blob);
      auto fresh = factory.make(seed);  // same construction, rolled back
      fresh->restore_state(blob);
      restored.set_adversary_hook(make_strategy_hook(*fresh, t));
      while (restored.step()) {
      }

      expect_records_equal(restored.record(), want.summary.record, what);
      EXPECT_TRUE(restored.pattern() == want.realized)
          << what << ": realized pattern did not survive the snapshot";
    }
  }
}

// -- Workload crash injection ------------------------------------------------

TEST(BusPoolTest, AcquireAtResumeRoundFiltersTheRightRounds) {
  const int n = 3;
  FailurePattern alpha(n, AgentSet{0, 1});
  alpha.drop(2, 2, 0);  // round 2: 2 -> 0 dropped
  BusPool pool(1);
  const auto slot = pool.acquire(alpha, /*resume_round=*/2);
  EXPECT_EQ(pool.completed_rounds(slot), 2);
  std::vector<std::optional<Bytes>> outbox;
  for (AgentId i = 0; i < n; ++i) outbox.push_back(Bytes{1});
  const auto res = pool.exchange_round(slot, std::move(outbox));
  EXPECT_EQ(res.round, 2);
  EXPECT_FALSE(res.inbox[0][2].has_value()) << "round-2 drop must apply";
  EXPECT_TRUE(res.inbox[1][2].has_value());
  pool.release(slot);
}

TEST(WorkloadRecoveryTest, CrashInjectionRequiresSnapshotCadence) {
  const MinExchange x(4);
  const PMin p(4, 1);
  std::vector<InstanceSpec> specs(
      2, {FailurePattern::failure_free(4), std::vector<Value>(4, Value::one)});
  CrashSchedule crashes;
  crashes.rounds = {{1}, {}};
  WorkloadOptions opt;
  opt.crashes = &crashes;  // no snapshot_every
  EXPECT_THROW((void)run_workload(x, p, std::span(specs), 1, opt),
               std::logic_error);
}

template <class X, class P>
void expect_crash_storm_matches(const X& x, const P& p, int t, int count,
                                std::uint64_t seed, const std::string& what) {
  Rng rng(seed);
  std::vector<InstanceSpec> specs;
  for (int k = 0; k < count; ++k)
    specs.push_back({sample_adversary(x.n(), t, t + 2, 0.4, rng),
                     sample_preferences(x.n(), rng)});

  WorkloadOptions plain;
  plain.workers = 3;
  const auto want = run_workload(x, p, std::span(specs), t, plain);
  EXPECT_EQ(want.crashes_injected, 0u);

  const CrashSchedule crashes =
      CrashSchedule::seeded(specs.size(), t + 2, seed + 1, 2);
  WorkloadOptions crashy;
  crashy.workers = 3;
  crashy.snapshot_every = 1;
  crashy.crashes = &crashes;
  crashy.record_traces = true;
  const auto got = run_workload(x, p, std::span(specs), t, crashy);
  EXPECT_GT(got.crashes_injected, 0u) << what;
  EXPECT_GT(got.snapshots_taken, specs.size()) << what;

  ASSERT_EQ(got.instances.size(), want.instances.size());
  ASSERT_EQ(got.traces.size(), specs.size()) << what;
  for (std::size_t k = 0; k < specs.size(); ++k) {
    expect_records_equal(got.instances[k].record, want.instances[k].record,
                         what + " instance " + std::to_string(k));
    EXPECT_EQ(got.instances[k].final_states, want.instances[k].final_states)
        << what << " instance " << k;
    // The streamed trace — re-opened across crashes — is byte-identical to
    // one written from the final record, and verifies end-to-end.
    EXPECT_EQ(got.traces[k],
              write_trace(got.instances[k].record,
                          static_cast<std::uint64_t>(k)))
        << what << " instance " << k;
    const ReplayReport report = replay_verify(got.traces[k]);
    EXPECT_TRUE(report.ok) << what << " instance " << k << ": "
                           << report.summary();
  }
}

TEST(WorkloadRecoveryTest, StaticCrashStormMatchesUninterruptedPMin) {
  expect_crash_storm_matches(MinExchange(5), PMin(5, 2), 2, 16, 401, "p_min");
}

TEST(WorkloadRecoveryTest, StaticCrashStormMatchesUninterruptedPOpt) {
  expect_crash_storm_matches(FipExchange(4), POpt(4, 2), 2, 8, 402, "p_opt");
}

// -- Durable-store crash injection -------------------------------------------

/// Mid-round crash storms through the durable storage engine: every
/// instance journals checkpoints/deltas/intents to a shared MemVfs, every
/// scheduled crash is a real power cut (unsynced bytes gone) fired while a
/// round is staged, and recovery replays the journal. The storm's records,
/// final states and streamed traces must be byte-identical to an
/// uninterrupted run — the paper's §3 determinism made durable.
template <class X, class P>
void expect_mid_round_storm_matches(const X& x, const P& p, FailureModel model,
                                    int t, int count, std::uint64_t seed,
                                    const std::string& what) {
  std::vector<InstanceSpec> specs;
  for (int k = 0; k < count; ++k)
    specs.push_back({seeded_pattern(x.n(), t, model, seed + 7 * k),
                     seeded_prefs(x.n(), seed + 7 * k + 1)});

  WorkloadOptions plain;
  plain.workers = 3;
  const auto want = run_workload(x, p, std::span(specs), t, plain);

  MemVfs vfs;
  DurableStoreOptions store;
  store.vfs = &vfs;
  store.root = "wl";
  store.journal.page_size = 256;
  store.keep_checkpoints = 2;

  // Both flavors at once: boundary crashes and mid-round power cuts.
  CrashSchedule crashes = CrashSchedule::seeded(specs.size(), t + 2, seed + 1);
  crashes.mid_rounds =
      CrashSchedule::seeded_mid_round(specs.size(), t + 2, seed + 2, 2)
          .mid_rounds;

  WorkloadOptions crashy;
  crashy.workers = 3;
  crashy.snapshot_every = 1;
  crashy.crashes = &crashes;
  crashy.record_traces = true;
  crashy.store = &store;
  const auto got = run_workload(x, p, std::span(specs), t, crashy);
  EXPECT_GT(got.crashes_injected, specs.size()) << what;

  ASSERT_EQ(got.instances.size(), want.instances.size());
  for (std::size_t k = 0; k < specs.size(); ++k) {
    expect_records_equal(got.instances[k].record, want.instances[k].record,
                         what + " instance " + std::to_string(k));
    EXPECT_EQ(got.instances[k].final_states, want.instances[k].final_states)
        << what << " instance " << k;
    EXPECT_EQ(got.traces[k],
              write_trace(got.instances[k].record,
                          static_cast<std::uint64_t>(k)))
        << what << " instance " << k;
    EXPECT_TRUE(replay_verify(got.traces[k]).ok) << what << " instance " << k;
  }
}

TEST(DurableWorkloadTest, MidRoundCrashStormMatchesUninterruptedPMin) {
  expect_mid_round_storm_matches(MinExchange(5), PMin(5, 2),
                                 FailureModel::sending, 2, 10, 601, "p_min");
}

TEST(DurableWorkloadTest, MidRoundCrashStormMatchesUninterruptedPBasic) {
  expect_mid_round_storm_matches(BasicExchange(5), PBasic(5, 2),
                                 FailureModel::sending, 2, 8, 602, "p_basic");
}

TEST(DurableWorkloadTest, MidRoundCrashStormMatchesUninterruptedPOpt) {
  expect_mid_round_storm_matches(FipExchange(4), POpt(4, 2),
                                 FailureModel::sending, 2, 8, 603, "p_opt");
}

TEST(DurableWorkloadTest, MidRoundCrashStormMatchesUninterruptedPOptGo) {
  expect_mid_round_storm_matches(FipExchange(4), POptGo(4, 2),
                                 FailureModel::general, 2, 8, 604, "p_opt_go");
}

TEST(DurableWorkloadTest, MidRoundCrashRequiresAStore) {
  const MinExchange x(4);
  const PMin p(4, 1);
  std::vector<InstanceSpec> specs(
      2, {FailurePattern::failure_free(4), std::vector<Value>(4, Value::one)});
  const CrashSchedule crashes = CrashSchedule::seeded_mid_round(2, 3, 9);
  WorkloadOptions opt;
  opt.snapshot_every = 1;
  opt.crashes = &crashes;  // mid-round entries but no store
  EXPECT_THROW((void)run_workload(x, p, std::span(specs), 1, opt),
               std::logic_error);
}

TEST(DurableWorkloadTest, KeyedStoreStormStaysDeterministic) {
  // The whole durable path under a nonzero key: journals authenticate
  // every record, traces stay unkeyed (their bytes are pinned), results
  // unchanged.
  const int t = 2;
  const MinExchange x(5);
  const PMin p(5, t);
  std::vector<InstanceSpec> specs;
  for (int k = 0; k < 6; ++k)
    specs.push_back({seeded_pattern(5, t, FailureModel::sending, 701 + k),
                     seeded_prefs(5, 711 + k)});
  WorkloadOptions plain;
  plain.workers = 2;
  const auto want = run_workload(x, p, std::span(specs), t, plain);

  MemVfs vfs;
  DurableStoreOptions store;
  store.vfs = &vfs;
  store.root = "wl";
  store.journal.key = 0xC0FFEEull;
  store.journal.page_size = 256;
  const CrashSchedule crashes =
      CrashSchedule::seeded_mid_round(specs.size(), t + 2, 721, 2);
  WorkloadOptions crashy;
  crashy.workers = 2;
  crashy.snapshot_every = 1;
  crashy.crashes = &crashes;
  crashy.store = &store;
  const auto got = run_workload(x, p, std::span(specs), t, crashy);
  EXPECT_GT(got.crashes_injected, 0u);
  for (std::size_t k = 0; k < specs.size(); ++k)
    expect_records_equal(got.instances[k].record, want.instances[k].record,
                         "keyed instance " + std::to_string(k));
  // The on-disk journal really is keyed: opening without the key fails.
  try {
    (void)RunLog::open(vfs, "wl/inst-0");
    FAIL() << "keyed journal opened without its key";
  } catch (const DecodeError& e) {
    EXPECT_EQ(e.kind(), DecodeError::Kind::key_mismatch);
  }
}

TEST(DurableWorkloadTest, AdaptiveMidRoundStormMatchesUninterrupted) {
  // Adaptive strategies + durable mid-round recovery: the strategy's state
  // blob rides in the journaled checkpoint, the realized drops ride in the
  // write-ahead intents, and the recovered runs must still realize the
  // exact pattern the uninterrupted adaptive runs do.
  const int n = 4, t = 2;
  const FipExchange x(n);
  const POptGo p(n, t);

  const int count = 6;
  std::vector<std::vector<Value>> all_prefs;
  std::vector<AdaptiveInstanceSpec> specs;
  Rng rng(801);
  const auto factories = shipped_strategies(n, t, FailureModel::general);
  for (int k = 0; k < count; ++k) {
    const auto prefs = sample_preferences(n, rng);
    const auto& factory =
        factories[static_cast<std::size_t>(k) % factories.size()];
    specs.push_back({factory.make(static_cast<std::uint64_t>(k)), prefs});
    all_prefs.push_back(prefs);
  }

  MemVfs vfs;
  DurableStoreOptions store;
  store.vfs = &vfs;
  store.root = "wl";
  store.journal.page_size = 256;
  const CrashSchedule crashes =
      CrashSchedule::seeded_mid_round(specs.size(), t + 2, 802, 2);
  WorkloadOptions opt;
  opt.workers = 3;
  opt.snapshot_every = 1;
  opt.crashes = &crashes;
  opt.record_traces = true;
  opt.store = &store;
  const auto got = run_adaptive_workload(x, p, std::span(specs), t, opt);
  EXPECT_GT(got.crashes_injected, 0u);

  for (int k = 0; k < count; ++k) {
    const std::size_t uk = static_cast<std::size_t>(k);
    const auto& factory = factories[uk % factories.size()];
    auto strat = factory.make(static_cast<std::uint64_t>(k));
    const AdaptiveOutcome want = run_adaptive(x, p, *strat, all_prefs[uk], t);
    expect_records_equal(got.instances[uk].record, want.summary.record,
                         factory.name + " instance " + std::to_string(k));
    EXPECT_TRUE(replay_verify(got.traces[uk]).ok)
        << "instance " << k << ": "
        << replay_verify(got.traces[uk]).summary();
  }
}

TEST(WorkloadRecoveryTest, AdaptiveCrashStormMatchesUninterrupted) {
  // The full stack at once: adaptive strategies choosing drops online, the
  // wire path mirroring them, snapshots carrying strategy state, and seeded
  // crashes — against per-instance uninterrupted bare runs.
  const int n = 4, t = 2;
  const FipExchange x(n);
  const POptGo p(n, t);

  const int count = 8;
  std::vector<std::vector<Value>> all_prefs;
  std::vector<AdaptiveInstanceSpec> specs;
  Rng rng(501);
  const auto factories = shipped_strategies(n, t, FailureModel::general);
  for (int k = 0; k < count; ++k) {
    const auto prefs = sample_preferences(n, rng);
    const auto& factory = factories[static_cast<std::size_t>(k) %
                                    factories.size()];
    specs.push_back({factory.make(static_cast<std::uint64_t>(k)), prefs});
    all_prefs.push_back(prefs);
  }

  const CrashSchedule crashes = CrashSchedule::seeded(specs.size(), t + 2,
                                                      502, 2);
  WorkloadOptions opt;
  opt.workers = 3;
  opt.snapshot_every = 1;
  opt.crashes = &crashes;
  opt.record_traces = true;
  const auto got = run_adaptive_workload(x, p, std::span(specs), t, opt);
  EXPECT_GT(got.crashes_injected, 0u);

  for (int k = 0; k < count; ++k) {
    const std::size_t uk = static_cast<std::size_t>(k);
    const auto& factory = factories[uk % factories.size()];
    auto strat = factory.make(static_cast<std::uint64_t>(k));
    const AdaptiveOutcome want =
        run_adaptive(x, p, *strat, all_prefs[uk], t);
    expect_records_equal(got.instances[uk].record, want.summary.record,
                         factory.name + " instance " + std::to_string(k));
    const ReplayReport report = replay_verify(got.traces[uk]);
    EXPECT_TRUE(report.ok) << "instance " << k << ": " << report.summary();
  }
}

}  // namespace
}  // namespace eba
