// Simulator-level tests: determinism, round semantics, early stopping,
// message/bit accounting (the raw material of Prop 8.1).
#include <gtest/gtest.h>

#include "action/p_basic.hpp"
#include "action/p_min.hpp"
#include "action/p_opt.hpp"
#include "core/spec.hpp"
#include "failure/generators.hpp"
#include "sim/drivers.hpp"
#include "sim/simulator.hpp"
#include "stats/rng.hpp"

namespace eba {
namespace {

std::vector<Value> all_ones(int n) {
  return std::vector<Value>(static_cast<std::size_t>(n), Value::one);
}

TEST(SimulatorTest, DeterministicAcrossCalls) {
  const int n = 6;
  const int t = 2;
  Rng rng(11);
  for (int k = 0; k < 10; ++k) {
    const auto alpha = sample_adversary(n, t, t + 2, 0.4, rng);
    const auto prefs = sample_preferences(n, rng);
    for (const auto& [name, drive] : paper_drivers(n, t)) {
      const RunSummary a = drive(alpha, prefs);
      const RunSummary b = drive(alpha, prefs);
      EXPECT_EQ(a.record.actions, b.record.actions) << name;
      EXPECT_EQ(a.bits_sent, b.bits_sent) << name;
    }
  }
}

TEST(SimulatorTest, StopsWhenAllDecided) {
  const int n = 4;
  const int t = 2;
  // Failure-free with a 0: everything is over in 2 rounds even though the
  // horizon allows t+4 = 6.
  auto prefs = all_ones(n);
  prefs[0] = Value::zero;
  const RunSummary s =
      make_min_driver(n, t)(FailurePattern::failure_free(n), prefs);
  EXPECT_EQ(s.rounds, 2);
}

TEST(SimulatorTest, NoEarlyStopCoversHorizon) {
  const MinExchange x(4);
  const PMin p(4, 2);
  SimulateOptions opt;
  opt.max_rounds = 6;
  opt.stop_when_all_decided = false;
  const auto run = simulate(x, p, FailurePattern::failure_free(4), all_ones(4),
                            2, opt);
  EXPECT_EQ(run.record.rounds, 6);
  EXPECT_EQ(run.states.size(), 7u);
}

// Prop 8.1, exact accounting for P_min: each agent sends exactly one
// decision message to the n-1 others, so n(n-1) bits per run — the paper's
// "n^2 bits" with self-messages excluded.
TEST(BitAccounting, PMinSendsExactlyNTimesNMinusOneBits) {
  for (int n : {3, 5, 8, 13}) {
    const int t = n - 2;
    const auto s =
        make_min_driver(n, t)(FailurePattern::failure_free(n), all_ones(n));
    EXPECT_EQ(s.bits_sent, static_cast<std::size_t>(n) *
                               static_cast<std::size_t>(n - 1));
    EXPECT_EQ(s.messages_sent, static_cast<std::size_t>(n) *
                                   static_cast<std::size_t>(n - 1));
  }
}

// P_min sends n(n-1) bits in every run, not just failure-free ones.
TEST(BitAccounting, PMinBitsInvariantUnderFailures) {
  const int n = 6;
  const int t = 2;
  Rng rng(5);
  for (int k = 0; k < 30; ++k) {
    const auto alpha = sample_adversary(n, t, t + 2, 0.5, rng);
    const auto prefs = sample_preferences(n, rng);
    const auto s = make_min_driver(n, t)(alpha, prefs);
    EXPECT_EQ(s.bits_sent, static_cast<std::size_t>(n) *
                               static_cast<std::size_t>(n - 1));
  }
}

// P_basic in the all-ones failure-free run: every agent broadcasts (init,1)
// in round 1 (2 bits each) and its decision in round 2 (2 bits each).
TEST(BitAccounting, PBasicFailureFreeAllOnes) {
  const int n = 5;
  const int t = 3;
  const auto s =
      make_basic_driver(n, t)(FailurePattern::failure_free(n), all_ones(n));
  EXPECT_EQ(s.rounds, 2);
  EXPECT_EQ(s.bits_sent, 2u * 2u * static_cast<std::size_t>(n) *
                             static_cast<std::size_t>(n - 1));
}

// P_basic total bits are bounded by the Prop 8.1 envelope O(n^2 t):
// at most (t+2) rounds of 2-bit broadcasts.
TEST(BitAccounting, PBasicWithinEnvelope) {
  const int n = 8;
  const int t = 4;
  Rng rng(17);
  for (int k = 0; k < 30; ++k) {
    const auto alpha = sample_adversary(n, t, t + 2, 0.4, rng);
    const auto prefs = sample_preferences(n, rng);
    const auto s = make_basic_driver(n, t)(alpha, prefs);
    EXPECT_LE(s.bits_sent, 2u * static_cast<std::size_t>(t + 2) *
                               static_cast<std::size_t>(n) *
                               static_cast<std::size_t>(n - 1));
  }
}

// The FIP's graph messages grow with time: round r+1 graphs carry
// 2(r n^2 + n) bits.
TEST(BitAccounting, FipGraphSizesGrowLinearlyInTime) {
  const int n = 4;
  const int t = 2;
  const FipExchange x(n);
  const POpt p(n, t);
  SimulateOptions opt;
  opt.max_rounds = 3;
  opt.stop_when_all_decided = false;
  const auto run =
      simulate(x, p, FailurePattern::failure_free(n), all_ones(n), t, opt);
  std::size_t expected = 0;
  for (int r = 0; r < 3; ++r)
    expected += static_cast<std::size_t>(n) * static_cast<std::size_t>(n - 1) *
                (2u * static_cast<std::size_t>(r) * static_cast<std::size_t>(n) *
                     static_cast<std::size_t>(n) +
                 2u * static_cast<std::size_t>(n));
  EXPECT_EQ(run.bits_sent, expected);
}

TEST(SimulatorTest, RecordsSentAndDelivered) {
  const int n = 3;
  const int t = 1;
  FailurePattern alpha(n, AgentSet{0, 1});
  alpha.drop(0, 2, 0);
  auto prefs = all_ones(n);
  prefs[2] = Value::zero;  // agent 2 decides round 1 and announces
  const auto s = make_min_driver(n, t)(alpha, prefs);
  EXPECT_EQ(s.record.sent[0][2], (AgentSet{0, 1}));
  EXPECT_EQ(s.record.delivered[0][2], AgentSet{1}) << "message to 0 dropped";
}

TEST(SimulatorTest, MismatchedInputsThrow) {
  const MinExchange x(3);
  const PMin p(3, 1);
  EXPECT_THROW(
      simulate(x, p, FailurePattern::failure_free(4), all_ones(3), 1),
      std::logic_error);
  EXPECT_THROW(
      simulate(x, p, FailurePattern::failure_free(3), all_ones(2), 1),
      std::logic_error);
}

}  // namespace
}  // namespace eba
