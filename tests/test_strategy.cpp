// Adversary-strategy layer: the worst-case searchers against exhaustive
// sweeps, the adaptive strategies' validity contract, and the seeded fuzz
// determinism.
//
//  * greedy/B&B (failure/strategy.hpp) are pinned against the exhaustive
//    canonical-orbit maximum on spaces small enough to sweep — the B&B must
//    match it EXACTLY (it visits a representative of every orbit), and the
//    prunings must not change the answer;
//  * every shipped adaptive strategy must realize a pattern inside its
//    declared SO(t)/GO(t) budget and keep the certified protocols
//    spec-clean, and a strategy that breaks the hook contract must throw;
//  * fuzz cases are pure functions of (config, index): replaying an index
//    reproduces the pattern, preferences and verdict bit-for-bit.
#include <gtest/gtest.h>

#include <cmath>

#include "core/spec.hpp"
#include "failure/canonical.hpp"
#include "failure/strategy.hpp"
#include "sim/adaptive.hpp"
#include "sim/fuzz.hpp"
#include "sim/objective.hpp"

namespace eba {
namespace {

// ---------------------------------------------------------------------------
// Worst-case search vs exhaustive sweep
// ---------------------------------------------------------------------------

EnumerationConfig space_of(int n, int t, int rounds, FailureModel model) {
  EnumerationConfig cfg;
  cfg.n = n;
  cfg.t = t;
  cfg.rounds = rounds;
  cfg.model = model;
  return cfg;
}

/// The ground truth: evaluate every canonical orbit representative. The
/// evaluator maximizes over ALL preference vectors, so its score is
/// relabeling-invariant and the orbit maximum equals the space maximum.
double exhaustive_max(const EnumerationConfig& cfg,
                      const PatternEvaluator& eval) {
  double best = -std::numeric_limits<double>::infinity();
  enumerate_canonical_adversaries(
      cfg, [&](const FailurePattern& p, std::uint64_t) {
        best = std::max(best, eval(p).score);
        return true;
      });
  return best;
}

PatternEvaluator evaluator_for(SearchObjective objective, ProtocolKind kind,
                               int n, int t) {
  ObjectiveConfig cfg;
  cfg.objective = objective;
  cfg.protocol = kind;
  cfg.n = n;
  cfg.t = t;
  return make_pattern_evaluator(cfg);
}

struct SweepCase {
  ProtocolKind kind;
  int n;
  int t;
  int rounds;
  FailureModel model;
};

TEST(WorstCaseSearch, BnbMatchesExhaustiveDecisionRound) {
  const SweepCase cases[] = {
      {ProtocolKind::p_min, 3, 1, 2, FailureModel::sending},
      {ProtocolKind::p_basic, 4, 1, 2, FailureModel::sending},
      {ProtocolKind::p_opt, 4, 1, 2, FailureModel::sending},
      {ProtocolKind::p_opt_go, 3, 1, 2, FailureModel::general},
  };
  for (const SweepCase& c : cases) {
    const auto eval =
        evaluator_for(SearchObjective::decision_round, c.kind, c.n, c.t);
    SearchOptions opt;
    opt.space = space_of(c.n, c.t, c.rounds, c.model);
    const SearchResult got = branch_and_bound_worst_case(opt, eval);
    const double want = exhaustive_max(opt.space, eval);
    EXPECT_EQ(got.best_score, want) << to_string(c.kind);
    // The winning pattern really scores what the search claims, and lives
    // in the advertised space.
    EXPECT_EQ(eval(got.best).score, got.best_score) << to_string(c.kind);
    EXPECT_TRUE(c.model == FailureModel::sending ? got.best.in_so(c.t)
                                                 : got.best.in_go(c.t));
    // Every protocol here has a worst case at the Prop 6.1 bound t+2.
    EXPECT_EQ(got.best_score, static_cast<double>(c.t + 2))
        << to_string(c.kind);
  }
}

TEST(WorstCaseSearch, BnbMatchesExhaustiveMessagesSuppressed) {
  const auto eval = evaluator_for(SearchObjective::messages_suppressed,
                                  ProtocolKind::p_min, 4, 1);
  SearchOptions opt;
  opt.space = space_of(4, 1, 2, FailureModel::sending);
  opt.objective = SearchObjective::messages_suppressed;
  const SearchResult got = branch_and_bound_worst_case(opt, eval);
  EXPECT_EQ(got.best_score, exhaustive_max(opt.space, eval));
  EXPECT_GT(got.best_score, 0.0);
}

TEST(WorstCaseSearch, BnbMatchesExhaustiveEvidenceAmbiguity) {
  const auto eval = evaluator_for(SearchObjective::evidence_ambiguity,
                                  ProtocolKind::p_opt, 3, 1);
  SearchOptions opt;
  opt.space = space_of(3, 1, 2, FailureModel::sending);
  opt.objective = SearchObjective::evidence_ambiguity;
  const SearchResult got = branch_and_bound_worst_case(opt, eval);
  EXPECT_EQ(got.best_score, exhaustive_max(opt.space, eval));
}

TEST(WorstCaseSearch, PruningsDoNotChangeTheAnswer) {
  const auto eval =
      evaluator_for(SearchObjective::decision_round, ProtocolKind::p_opt, 3, 1);
  SearchOptions pruned;
  pruned.space = space_of(3, 1, 2, FailureModel::sending);
  SearchOptions bare = pruned;
  bare.use_symmetry = false;
  bare.use_settled_pruning = false;
  const SearchResult a = branch_and_bound_worst_case(pruned, eval);
  const SearchResult b = branch_and_bound_worst_case(bare, eval);
  EXPECT_EQ(a.best_score, b.best_score);
  EXPECT_GT(a.stats.pruned_symmetry + a.stats.pruned_settled, 0u)
      << "the pruned search should actually prune something here";
  EXPECT_LE(a.stats.evaluations, b.stats.evaluations);
}

TEST(WorstCaseSearch, CeilingTurnsSearchIntoFirstWitness) {
  const auto eval =
      evaluator_for(SearchObjective::decision_round, ProtocolKind::p_min, 4, 1);
  SearchOptions full;
  full.space = space_of(4, 1, 2, FailureModel::sending);
  SearchOptions capped = full;
  capped.score_ceiling = 3.0;  // Prop 6.1: t+2
  const SearchResult a = branch_and_bound_worst_case(full, eval);
  const SearchResult b = branch_and_bound_worst_case(capped, eval);
  EXPECT_EQ(a.best_score, b.best_score);
  EXPECT_TRUE(b.ceiling_reached);
  EXPECT_LE(b.stats.evaluations, a.stats.evaluations);
}

TEST(WorstCaseSearch, GreedyIsValidAndBoundedByBnb) {
  const auto eval =
      evaluator_for(SearchObjective::decision_round, ProtocolKind::p_opt, 4, 1);
  SearchOptions opt;
  opt.space = space_of(4, 1, 2, FailureModel::sending);
  const SearchResult greedy = greedy_worst_case(opt, eval);
  const SearchResult exact = branch_and_bound_worst_case(opt, eval);
  EXPECT_TRUE(greedy.best.in_so(1));
  EXPECT_LE(greedy.best_score, exact.best_score);
  EXPECT_EQ(eval(greedy.best).score, greedy.best_score);
}

// ---------------------------------------------------------------------------
// Adaptive strategies: validity + spec cleanliness
// ---------------------------------------------------------------------------

TEST(AdaptiveStrategy, ShippedStrategiesStayInsideTheirBudget) {
  const int n = 5;
  const int t = 2;
  for (FailureModel model : {FailureModel::sending, FailureModel::general}) {
    // The certified protocol for the model; every shipped strategy of the
    // model must leave it spec-clean.
    const ProtocolKind kind = model == FailureModel::sending
                                  ? ProtocolKind::p_opt
                                  : ProtocolKind::p_opt_go;
    const AdaptiveDriver drive = make_adaptive_driver(kind, n, t);
    for (const NamedStrategyFactory& f : shipped_strategies(n, t, model)) {
      for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
        const auto strat = f.make(seed);
        std::vector<Value> prefs(static_cast<std::size_t>(n), Value::one);
        prefs[static_cast<std::size_t>(n - 1)] = Value::zero;
        const AdaptiveOutcome out = drive(*strat, prefs);
        const std::string what = f.name + " seed " + std::to_string(seed);
        // Realized pattern: within the budget of the STRATEGY's model (a
        // strategy may promise SO even when run in a GO sweep).
        EXPECT_TRUE(strat->model() == FailureModel::sending
                        ? out.realized.in_so(t)
                        : out.realized.in_go(t))
            << what;
        const SpecReport rep = check_eba(out.summary.record);
        EXPECT_TRUE(rep.ok_strict())
            << what << (rep.violations.empty() ? "" : ": " + rep.violations[0]);
        // Replaying the realized pattern as a STATIC adversary reproduces
        // the adaptive run (the hook only ever added current-round drops).
        const RunSummary replay =
            make_driver(kind, n, t)(out.realized, prefs);
        EXPECT_EQ(replay.record.actions, out.summary.record.actions) << what;
        EXPECT_EQ(replay.record.delivered, out.summary.record.delivered)
            << what;
      }
    }
  }
}

TEST(AdaptiveStrategy, RandomBudgetIsSeedDeterministic) {
  const int n = 6;
  const int t = 2;
  std::vector<Value> prefs(static_cast<std::size_t>(n), Value::one);
  const AdaptiveDriver drive = make_adaptive_driver(ProtocolKind::p_opt_go, n, t);
  const auto a = make_random_budget_strategy(n, t, FailureModel::general, 42);
  const auto b = make_random_budget_strategy(n, t, FailureModel::general, 42);
  const auto c = make_random_budget_strategy(n, t, FailureModel::general, 43);
  const FailurePattern ra = drive(*a, prefs).realized;
  const FailurePattern rb = drive(*b, prefs).realized;
  const FailurePattern rc = drive(*c, prefs).realized;
  EXPECT_TRUE(ra == rb) << "same seed, same realized pattern";
  EXPECT_FALSE(ra == rc) << "different seed should diverge here";
}

/// A strategy that violates the hook contract by rewriting round 0 once the
/// run has moved past it.
class RewritesThePast final : public AdversaryStrategy {
 public:
  explicit RewritesThePast(int n) : n_(n) {}
  [[nodiscard]] std::string name() const override { return "rewrites_past"; }
  [[nodiscard]] FailureModel model() const override {
    return FailureModel::sending;
  }
  [[nodiscard]] FailurePattern base_pattern() override {
    AgentSet nonfaulty = AgentSet::all(n_);
    nonfaulty.erase(0);
    return FailurePattern(n_, nonfaulty);
  }
  void on_round(const StagedRound& obs, FailurePattern& alpha) override {
    if (obs.round >= 1) alpha.drop(0, 0, 1);
  }

 private:
  int n_;
};

/// A strategy that claims SO but sneaks in a receive drop.
class CheatsThePlane final : public AdversaryStrategy {
 public:
  explicit CheatsThePlane(int n) : n_(n) {}
  [[nodiscard]] std::string name() const override { return "cheats_plane"; }
  [[nodiscard]] FailureModel model() const override {
    return FailureModel::sending;
  }
  [[nodiscard]] FailurePattern base_pattern() override {
    AgentSet nonfaulty = AgentSet::all(n_);
    nonfaulty.erase(0);
    return FailurePattern(n_, nonfaulty);
  }
  void on_round(const StagedRound& obs, FailurePattern& alpha) override {
    alpha.drop_receive(obs.round, 1, 0);
  }

 private:
  int n_;
};

TEST(AdaptiveStrategy, HookRejectsContractViolations) {
  const int n = 4;
  const int t = 1;
  const AdaptiveDriver drive = make_adaptive_driver(ProtocolKind::p_min, n, t);
  std::vector<Value> prefs(static_cast<std::size_t>(n), Value::one);
  RewritesThePast past(n);
  EXPECT_THROW((void)drive(past, prefs), std::logic_error);
  CheatsThePlane plane(n);
  EXPECT_THROW((void)drive(plane, prefs), std::logic_error);
}

// ---------------------------------------------------------------------------
// Fuzz determinism
// ---------------------------------------------------------------------------

TEST(FuzzDeterminism, CasesReplayFromTheirIndex) {
  FuzzConfig cfg;
  cfg.n = 12;
  cfg.t = 3;
  cfg.model = FailureModel::general;
  cfg.base_seed = 7;
  for (std::uint64_t idx : {0ull, 1ull, 17ull, 999ull}) {
    const FuzzCase a = fuzz_case(cfg, idx);
    const FuzzCase b = fuzz_case(cfg, idx);
    EXPECT_TRUE(a.alpha == b.alpha) << idx;
    EXPECT_EQ(a.prefs, b.prefs) << idx;
    EXPECT_EQ(a.seed, b.seed) << idx;
  }
  // Distinct indices must not collide on this tiny sample.
  EXPECT_FALSE(fuzz_case(cfg, 0).alpha == fuzz_case(cfg, 1).alpha);
}

TEST(FuzzDeterminism, ReportsAreReproducible) {
  FuzzConfig cfg;
  cfg.n = 6;
  cfg.t = 2;
  cfg.protocol = ProtocolKind::p_basic;
  cfg.iterations = 25;
  cfg.base_seed = 11;
  const FuzzReport a = run_fuzz(cfg);
  const FuzzReport b = run_fuzz(cfg);
  EXPECT_EQ(a.runs, b.runs);
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_TRUE(a.ok()) << "P_basic must be spec-clean";
}

}  // namespace
}  // namespace eba
