// Unit tests for core types: AgentSet, Action, RunRecord, the EBA spec
// checker, and 0-chain analysis.
#include <gtest/gtest.h>

#include "core/chain.hpp"
#include "core/spec.hpp"
#include "core/types.hpp"

namespace eba {
namespace {

TEST(AgentSetTest, InsertEraseContains) {
  AgentSet s;
  EXPECT_TRUE(s.empty());
  s.insert(3);
  s.insert(7);
  EXPECT_TRUE(s.contains(3));
  EXPECT_TRUE(s.contains(7));
  EXPECT_FALSE(s.contains(4));
  EXPECT_EQ(s.size(), 2);
  s.erase(3);
  EXPECT_FALSE(s.contains(3));
  EXPECT_EQ(s.size(), 1);
}

TEST(AgentSetTest, AllAndComplement) {
  const AgentSet all = AgentSet::all(5);
  EXPECT_EQ(all.size(), 5);
  AgentSet s{1, 3};
  const AgentSet c = s.complement(5);
  EXPECT_EQ(c.size(), 3);
  EXPECT_TRUE(c.contains(0));
  EXPECT_TRUE(c.contains(2));
  EXPECT_TRUE(c.contains(4));
  EXPECT_EQ(s.united(c), all);
  EXPECT_TRUE(s.intersected(c).empty());
}

TEST(AgentSetTest, IterationInOrder) {
  AgentSet s{5, 0, 2};
  std::vector<AgentId> seen;
  for (AgentId i : s) seen.push_back(i);
  EXPECT_EQ(seen, (std::vector<AgentId>{0, 2, 5}));
}

TEST(AgentSetTest, SubsetAndMinus) {
  AgentSet a{1, 2, 3};
  AgentSet b{1, 2, 3, 4};
  EXPECT_TRUE(a.subset_of(b));
  EXPECT_FALSE(b.subset_of(a));
  EXPECT_EQ(b.minus(a), AgentSet{4});
}

TEST(AgentSetTest, MaxAgentsBoundary) {
  const AgentSet full = AgentSet::all(kMaxAgents);
  EXPECT_EQ(full.size(), kMaxAgents);
  EXPECT_TRUE(full.contains(63));
  EXPECT_THROW(AgentSet{}.insert(64), std::logic_error);
  EXPECT_THROW(AgentSet::all(65), std::logic_error);
}

TEST(ActionTest, NoopAndDecide) {
  const Action noop = Action::noop();
  EXPECT_FALSE(noop.is_decide());
  EXPECT_THROW((void)noop.value(), std::logic_error);
  const Action d0 = Action::decide(Value::zero);
  EXPECT_TRUE(d0.is_decide());
  EXPECT_TRUE(d0.decides(Value::zero));
  EXPECT_FALSE(d0.decides(Value::one));
  EXPECT_EQ(d0.value(), Value::zero);
  EXPECT_NE(d0, Action::decide(Value::one));
  EXPECT_EQ(Action::noop(), Action());
}

TEST(ValueTest, OppositeAndConversions) {
  EXPECT_EQ(opposite(Value::zero), Value::one);
  EXPECT_EQ(opposite(Value::one), Value::zero);
  EXPECT_EQ(to_int(Value::one), 1);
  EXPECT_EQ(value_of(0), Value::zero);
  EXPECT_EQ(to_string(Action::decide(Value::one)), "decide(1)");
  EXPECT_EQ(to_string(std::optional<Value>{}), "⊥");
}

/// Builds an empty record shell with the given shape.
RunRecord shell(int n, int t, int rounds) {
  RunRecord r;
  r.n = n;
  r.t = t;
  r.rounds = rounds;
  r.inits.assign(static_cast<std::size_t>(n), Value::one);
  r.nonfaulty = AgentSet::all(n);
  r.actions.assign(static_cast<std::size_t>(rounds),
                   std::vector<Action>(static_cast<std::size_t>(n)));
  r.sent.assign(static_cast<std::size_t>(rounds),
                std::vector<AgentSet>(static_cast<std::size_t>(n)));
  r.delivered.assign(static_cast<std::size_t>(rounds),
                     std::vector<AgentSet>(static_cast<std::size_t>(n)));
  return r;
}

TEST(RunRecordTest, DecisionFindsFirstDecide) {
  RunRecord r = shell(2, 1, 3);
  r.actions[1][0] = Action::decide(Value::zero);
  const auto d = r.decision(0);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->round, 2);
  EXPECT_EQ(d->value, Value::zero);
  EXPECT_FALSE(r.decision(1).has_value());
}

TEST(SpecTest, CleanRunPasses) {
  RunRecord r = shell(3, 1, 3);
  for (AgentId i = 0; i < 3; ++i) r.actions[1][static_cast<std::size_t>(i)] =
      Action::decide(Value::one);
  const SpecReport rep = check_eba(r);
  EXPECT_TRUE(rep.ok_strict()) << (rep.violations.empty() ? "" : rep.violations[0]);
}

TEST(SpecTest, DetectsDoubleDecision) {
  RunRecord r = shell(3, 1, 3);
  r.actions[0][0] = Action::decide(Value::one);
  r.actions[1][0] = Action::decide(Value::zero);
  for (AgentId i = 1; i < 3; ++i)
    r.actions[1][static_cast<std::size_t>(i)] = Action::decide(Value::one);
  EXPECT_FALSE(check_eba(r).unique_decision);
}

TEST(SpecTest, DetectsDisagreement) {
  RunRecord r = shell(3, 1, 3);
  r.inits[0] = Value::zero;
  r.actions[1][0] = Action::decide(Value::zero);
  r.actions[1][1] = Action::decide(Value::one);
  r.actions[1][2] = Action::decide(Value::one);
  EXPECT_FALSE(check_eba(r).agreement);
}

TEST(SpecTest, AgreementIgnoresFaultyAgents) {
  RunRecord r = shell(3, 1, 3);
  r.inits[0] = Value::zero;
  r.nonfaulty = AgentSet{1, 2};
  r.actions[1][0] = Action::decide(Value::zero);  // faulty disagrees: allowed
  r.actions[1][1] = Action::decide(Value::one);
  r.actions[1][2] = Action::decide(Value::one);
  const SpecReport rep = check_eba(r);
  EXPECT_TRUE(rep.agreement);
  EXPECT_TRUE(rep.ok());
}

TEST(SpecTest, DetectsInvalidValue) {
  RunRecord r = shell(3, 1, 3);  // all inits are 1
  r.actions[0][0] = Action::decide(Value::zero);
  for (AgentId i = 1; i < 3; ++i)
    r.actions[1][static_cast<std::size_t>(i)] = Action::decide(Value::zero);
  const SpecReport rep = check_eba(r);
  EXPECT_FALSE(rep.validity);
}

TEST(SpecTest, FaultyInvalidValueOnlyFlagsStrict) {
  RunRecord r = shell(3, 1, 3);
  r.nonfaulty = AgentSet{1, 2};
  r.actions[0][0] = Action::decide(Value::zero);  // faulty decides unheld value
  r.actions[1][1] = Action::decide(Value::one);
  r.actions[1][2] = Action::decide(Value::one);
  const SpecReport rep = check_eba(r);
  EXPECT_TRUE(rep.validity);
  EXPECT_FALSE(rep.validity_all);
  EXPECT_TRUE(rep.ok());
  EXPECT_FALSE(rep.ok_strict());
}

TEST(SpecTest, DetectsNonTermination) {
  RunRecord r = shell(3, 1, 4);
  r.actions[1][0] = Action::decide(Value::one);
  r.actions[1][1] = Action::decide(Value::one);
  // agent 2 never decides
  const SpecReport rep = check_eba(r);
  EXPECT_FALSE(rep.termination);
}

TEST(SpecTest, DetectsLateDecision) {
  RunRecord r = shell(3, 1, 5);
  for (AgentId i = 0; i < 3; ++i)
    r.actions[4][static_cast<std::size_t>(i)] = Action::decide(Value::one);
  const SpecReport rep = check_eba(r);
  EXPECT_TRUE(rep.termination);
  EXPECT_FALSE(rep.termination_bound);  // round 5 > t+2 = 3
}

/// A hand-built run with a 0-chain 0 -> 1 -> 2: agent 0 has init 0, decides
/// round 1 and reaches only agent 1; agent 1 decides round 2 and reaches
/// only agent 2; agent 2 decides round 3 but its decision message reaches
/// nobody, so agent 3's later 0-decision does not extend the chain.
RunRecord chain_run() {
  RunRecord r = shell(4, 2, 4);
  r.inits[0] = Value::zero;
  r.nonfaulty = AgentSet{2, 3};
  r.actions[0][0] = Action::decide(Value::zero);
  r.delivered[0][0] = AgentSet{1};
  r.actions[1][1] = Action::decide(Value::zero);
  r.delivered[1][1] = AgentSet{2};
  r.actions[2][2] = Action::decide(Value::zero);
  r.delivered[2][2] = AgentSet{};
  r.actions[3][3] = Action::decide(Value::zero);
  return r;
}

TEST(ChainTest, DetectsChainPositions) {
  const auto a = analyze_zero_chains(chain_run());
  EXPECT_EQ(a.longest, 2);
  EXPECT_TRUE(a.receives_chain(0, 0));
  EXPECT_TRUE(a.receives_chain(1, 1));
  EXPECT_TRUE(a.receives_chain(2, 2));
  EXPECT_EQ(a.chain_end_time[3], -1);  // never hears the round-3 decision
}

TEST(ChainTest, LongestChainAgents) {
  const auto chain = longest_zero_chain(chain_run());
  EXPECT_EQ(chain, (std::vector<AgentId>{0, 1, 2}));
}

TEST(ChainTest, NoChainWithoutZeroInit) {
  RunRecord r = shell(3, 1, 3);
  r.actions[1][0] = Action::decide(Value::zero);  // decides 0 but no init 0
  const auto a = analyze_zero_chains(r);
  EXPECT_EQ(a.longest, -1);
}

TEST(ChainTest, BrokenDeliveryBreaksChain) {
  RunRecord r = chain_run();
  r.delivered[1][1] = AgentSet{};  // agent 2 never hears the round-2 decision
  const auto a = analyze_zero_chains(r);
  EXPECT_EQ(a.longest, 1);
  EXPECT_EQ(a.chain_end_time[2], -1);
}

}  // namespace
}  // namespace eba
