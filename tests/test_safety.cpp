// Proposition 6.4 — the safety condition (Definition 6.2) under which
// Theorem 6.3 guarantees that every implementation of P0 is optimal —
// checked mechanically for γ_min and γ_basic on exhaustively enumerated
// contexts:
//
//  (1) if agent i has not received a 0-chain by (r, m), there is a point
//      (r', m) with the same local state where ALL agents prefer 1
//      ("the only way to learn about a 0 is a 0-chain");
//
//  (2) if i is undecided and does not know that nobody is deciding 0, there
//      is a point (r', m) with the same local state where i is nonfaulty
//      and some NONFAULTY agent decides 0 in round m+1 ("the only obstacle
//      to deciding 1 is a possibly-nonfaulty 0-decider").
//
// Together with Prop 6.1 (correctness, already tested) these are exactly
// the hypotheses of Thm 6.3, so passing here is a mechanical certificate of
// the optimality of P_min and P_basic on these contexts.
#include <gtest/gtest.h>

#include "action/p_basic.hpp"
#include "action/p_min.hpp"
#include "action/p_opt.hpp"
#include "core/chain.hpp"
#include "exchange/fip.hpp"
#include "kripke/system.hpp"

namespace eba {
namespace {

template <class Sys>
void check_safety(const Sys& sys, int max_time) {
  const int n = sys.n();

  // Per-run 0-chain structure.
  std::vector<ZeroChainAnalysis> chains;
  chains.reserve(static_cast<std::size_t>(sys.num_runs()));
  for (int r = 0; r < sys.num_runs(); ++r)
    chains.push_back(analyze_zero_chains(sys.run(r).record));

  auto received_chain_by = [&](int r, AgentId i, int m) {
    const int end = chains[static_cast<std::size_t>(r)]
                        .chain_end_time[static_cast<std::size_t>(i)];
    return end >= 0 && end <= m;
  };

  int clause1_exercised = 0;
  int clause2_exercised = 0;
  for (int r = 0; r < sys.num_runs(); ++r) {
    for (int m = 0; m <= max_time; ++m) {
      const Point pt{r, m};
      for (AgentId i = 0; i < n; ++i) {
        // ---- Clause (1) ----
        if (!received_chain_by(r, i, m)) {
          bool witness = false;
          for (int r2 : sys.indistinguishable_runs(i, pt)) {
            if (!sys.exists_init({r2, m}, Value::zero)) {
              witness = true;
              break;
            }
          }
          EXPECT_TRUE(witness)
              << "clause 1: run " << r << " time " << m << " agent " << i;
          ++clause1_exercised;
        }

        // ---- Clause (2) ----
        if (sys.decided(pt, i)) continue;
        const bool knows_no_decider = sys.knows(i, pt, [&](Point q) {
          for (AgentId j = 0; j < n; ++j)
            if (sys.deciding(q, j, Value::zero)) return false;
          return true;
        });
        if (knows_no_decider) continue;
        bool witness = false;
        for (int r2 : sys.indistinguishable_runs(i, pt)) {
          const Point q{r2, m};
          if (!sys.nonfaulty(q, i)) continue;
          for (AgentId j : sys.nonfaulty_set(q)) {
            if (sys.deciding(q, j, Value::zero)) {
              witness = true;
              break;
            }
          }
          if (witness) break;
        }
        EXPECT_TRUE(witness)
            << "clause 2: run " << r << " time " << m << " agent " << i;
        ++clause2_exercised;
      }
    }
  }
  EXPECT_GT(clause1_exercised, 0);
  EXPECT_GT(clause2_exercised, 0);
}

TEST(Prop64Safety, HoldsInMinContext) {
  for (const int n : {3, 4}) {
    InterpretedSystem<MinExchange, PMin> sys(MinExchange(n), PMin(n, 1), 1, 4);
    sys.add_all_runs(EnumerationConfig{.n = n, .t = 1, .rounds = 2});
    sys.finalize();
    check_safety(sys, /*max_time=*/2);
  }
}

TEST(Prop64Safety, HoldsInBasicContext) {
  for (const int n : {3, 4}) {
    InterpretedSystem<BasicExchange, PBasic> sys(BasicExchange(n),
                                                 PBasic(n, 1), 1, 4);
    sys.add_all_runs(EnumerationConfig{.n = n, .t = 1, .rounds = 2});
    sys.finalize();
    check_safety(sys, /*max_time=*/2);
  }
}

// Contrast: the safety condition does NOT hold for the full-information
// exchange (the paper's remark after Def 6.2) — an agent can learn about a
// 0 without receiving a 0-chain, so clause (1) must fail somewhere. This is
// exactly why P0 is not optimal for γ_fip and P1 is needed.
TEST(Prop64Safety, Clause1FailsInFipContext) {
  InterpretedSystem<FipExchange, POpt> sys(FipExchange(3), POpt(3, 1), 1, 4);
  sys.add_all_runs(EnumerationConfig{.n = 3, .t = 1, .rounds = 2});
  sys.finalize();

  std::vector<ZeroChainAnalysis> chains;
  for (int r = 0; r < sys.num_runs(); ++r)
    chains.push_back(analyze_zero_chains(sys.run(r).record));

  bool found_failure = false;
  for (int r = 0; r < sys.num_runs() && !found_failure; ++r) {
    for (int m = 0; m <= 2 && !found_failure; ++m) {
      for (AgentId i = 0; i < 3 && !found_failure; ++i) {
        const int end = chains[static_cast<std::size_t>(r)]
                            .chain_end_time[static_cast<std::size_t>(i)];
        if (end >= 0 && end <= m) continue;  // received a chain
        bool witness = false;
        for (int r2 : sys.indistinguishable_runs(i, {r, m}))
          if (!sys.exists_init({r2, m}, Value::zero)) witness = true;
        if (!witness) found_failure = true;  // knows ∃0 without a chain
      }
    }
  }
  EXPECT_TRUE(found_failure)
      << "in γ_fip an agent can learn ∃0 without receiving a 0-chain";
}

}  // namespace
}  // namespace eba
