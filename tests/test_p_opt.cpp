// Unit tests for P_opt's graph tests (Def. A.19): common_v, cond_0, cond_1,
// and the inferred-action machinery, on hand-picked scenarios where the
// expected truth values are derivable from the paper's arguments.
#include <gtest/gtest.h>

#include "action/p_opt.hpp"
#include "core/spec.hpp"
#include "failure/generators.hpp"
#include "graph/knowledge.hpp"
#include "sim/simulator.hpp"

namespace eba {
namespace {

Run<FipExchange> run_fip(int n, int t, const FailurePattern& alpha,
                         const std::vector<Value>& inits, int rounds) {
  SimulateOptions opt;
  opt.max_rounds = rounds;
  opt.stop_when_all_decided = false;
  return simulate(FipExchange(n), POpt(n, t), alpha, inits, t, opt);
}

std::vector<Value> all_ones(int n) {
  return std::vector<Value>(static_cast<std::size_t>(n), Value::one);
}

TEST(POptConditions, Cond0AtTimeZeroIsOwnInit) {
  const FipExchange x(3);
  const FipState s0 = x.initial_state(0, Value::zero);
  const FipState s1 = x.initial_state(1, Value::one);
  EXPECT_TRUE(POpt::cond0_test(s0.graph, 0, Value::zero, s0.inferred));
  EXPECT_FALSE(POpt::cond0_test(s1.graph, 1, Value::one, s1.inferred));
}

TEST(POptConditions, Cond1FalseAtTimeZero) {
  const FipExchange x(3);
  const FipState s = x.initial_state(0, Value::one);
  EXPECT_FALSE(POpt::cond1_test(s.graph, 0, s.inferred));
}

TEST(POptConditions, Cond0SeesDeliveredZeroDecision) {
  // Agent 0 has init 0 and decides in round 1; its round-1 graph reaches
  // agent 1 but (by omission... agent 0 is nonfaulty, so everyone) hears it.
  const int n = 3;
  const auto run = run_fip(n, 1, FailurePattern::failure_free(n),
                           {Value::zero, Value::one, Value::one}, 2);
  const FipState& s1 = run.states[1][1];
  const POpt p(n, 1);
  p.infer_actions(s1);
  EXPECT_TRUE(POpt::cond0_test(s1.graph, 1, Value::one, s1.inferred));
  EXPECT_EQ(s1.inferred.get(0, 0), KnownAction::decide0);
}

TEST(POptConditions, Cond1TrueWhenEveryoneHeardAndNoZeros) {
  // Failure-free all-ones at time 1: no hidden 0-chain can exist because
  // every agent's init is known to be 1.
  const int n = 4;
  const auto run = run_fip(n, 2, FailurePattern::failure_free(n), all_ones(n), 1);
  const FipState& s = run.states[1][0];
  const POpt p(n, 2);
  p.infer_actions(s);
  EXPECT_TRUE(POpt::cond1_test(s.graph, 0, s.inferred));
}

TEST(POptConditions, Cond1FalseWhileHiddenChainPossible) {
  // One silent faulty agent with unknown preference: it could have had
  // init 0 and be feeding a hidden 0-chain, so cond_1 must fail at time 1
  // (the silent agent plus one more unheard slot would be needed at time 2;
  // at time 1 a chain of length 1 through the silent agent is conceivable).
  const int n = 4;
  const auto alpha = silent_agents_pattern(n, AgentSet{3}, 3);
  const auto run = run_fip(n, 1, alpha, all_ones(n), 1);
  const FipState& s = run.states[1][0];
  const POpt p(n, 1);
  p.infer_actions(s);
  EXPECT_FALSE(POpt::cond1_test(s.graph, 0, s.inferred));
}

TEST(POptConditions, CommonRequiresAtLeastOneRound) {
  const FipExchange x(3);
  const FipState s = x.initial_state(0, Value::one);
  EXPECT_FALSE(POpt::common_test(s.graph, 0, Value::one, 1, s.inferred));
  EXPECT_FALSE(POpt::common_test(s.graph, 0, Value::zero, 1, s.inferred));
}

TEST(POptConditions, CommonOneHoldsAfterSilentFaultsDetected) {
  // Example 7.1 in miniature: n=4, t=1, agent 3 silent, all inits 1.
  // At time 1 each nonfaulty agent detects the fault (dist holds); at time 2
  // C_N(t-faulty ∧ no-decided(0) ∧ ∃1) holds and common_test must fire.
  const int n = 4;
  const int t = 1;
  const auto alpha = silent_agents_pattern(n, AgentSet{3}, 3);
  const auto run = run_fip(n, t, alpha, all_ones(n), 2);
  const POpt p(n, t);

  const FipState& s1 = run.states[1][0];
  p.infer_actions(s1);
  EXPECT_FALSE(POpt::common_test(s1.graph, 0, Value::one, t, s1.inferred))
      << "only distributed knowledge at time 1, not common";

  const FipState& s2 = run.states[2][0];
  p.infer_actions(s2);
  EXPECT_TRUE(POpt::common_test(s2.graph, 0, Value::one, t, s2.inferred));
  EXPECT_FALSE(POpt::common_test(s2.graph, 0, Value::zero, t, s2.inferred))
      << "no agent is known to prefer 0";
}

TEST(POptConditions, CommonZeroBlockedByKnownOneDecision) {
  // If some possibly-nonfaulty agent already decided 1, common_0 cannot
  // hold (condition (b) of Def. A.19).
  const int n = 4;
  const int t = 1;
  const auto alpha = silent_agents_pattern(n, AgentSet{3}, 4);
  SimulateOptions opt;
  opt.max_rounds = 4;
  opt.stop_when_all_decided = false;
  const auto run = simulate(FipExchange(n), POpt(n, t), alpha, all_ones(n), t, opt);
  // By time 3, the nonfaulty agents decided 1 in round 3; common_0 stays
  // false ever after.
  const FipState& s3 = run.states[3][0];
  const POpt p(n, t);
  p.infer_actions(s3);
  EXPECT_FALSE(POpt::common_test(s3.graph, 0, Value::zero, t, s3.inferred));
}

TEST(POptInference, TablesAreConsistentWithActualActions) {
  // Whatever an agent infers about (j, m) must match what j actually did.
  const int n = 5;
  const int t = 2;
  Rng rng(77);
  for (int k = 0; k < 20; ++k) {
    const auto alpha = sample_adversary(n, t, t + 2, 0.4, rng);
    const auto prefs = sample_preferences(n, rng);
    SimulateOptions opt;
    opt.max_rounds = t + 3;
    opt.stop_when_all_decided = false;
    const auto run = simulate(FipExchange(n), POpt(n, t), alpha, prefs, t, opt);
    const POpt p(n, t);
    for (int m = 0; m <= t + 3; ++m) {
      for (AgentId i = 0; i < n; ++i) {
        const FipState& s = run.states[static_cast<std::size_t>(m)]
                                      [static_cast<std::size_t>(i)];
        p.infer_actions(s);
        for (AgentId j = 0; j < n; ++j) {
          for (int m2 = 0; m2 < m; ++m2) {
            const KnownAction known = s.inferred.get(j, m2);
            if (known == KnownAction::unknown) continue;
            const Action actual =
                m2 < run.record.rounds
                    ? run.record.actions[static_cast<std::size_t>(m2)]
                                        [static_cast<std::size_t>(j)]
                    : Action::noop();
            EXPECT_EQ(known, to_known(actual))
                << "observer " << i << " about (" << j << "," << m2 << ")";
          }
        }
      }
    }
  }
}

TEST(POptInference, SilentAgentStaysUnknown) {
  const int n = 4;
  const auto alpha = silent_agents_pattern(n, AgentSet{3}, 3);
  const auto run = run_fip(n, 1, alpha, all_ones(n), 2);
  const FipState& s = run.states[2][0];
  const POpt p(n, 1);
  p.infer_actions(s);
  EXPECT_EQ(s.inferred.get(3, 0), KnownAction::unknown);
  EXPECT_EQ(s.inferred.get(3, 1), KnownAction::unknown);
}

TEST(POptProtocol, RejectsForeignState) {
  const POpt p(4, 1);
  const FipExchange x(3);
  const FipState s = x.initial_state(0, Value::one);
  EXPECT_THROW((void)p(s), std::logic_error);
}

TEST(POptProtocol, BoundsValidated) {
  EXPECT_THROW(POpt(3, 2), std::logic_error);  // needs n - t >= 2
  EXPECT_THROW(POpt(3, -1), std::logic_error);
  EXPECT_NO_THROW(POpt(3, 1));
}

}  // namespace
}  // namespace eba
