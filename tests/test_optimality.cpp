// Empirical optimality / domination tests (Thm 6.3, Cor 6.7, Cor 7.8).
//
// True optimality is a statement over all protocols; what is checkable by
// experiment is the domination partial order between the paper's own
// protocols on corresponding runs (same adversary, same preferences):
//   * P_opt (the optimal FIP) decides no later than P_min and P_basic for
//     every nonfaulty agent, in every corresponding run;
//   * each protocol pair has runs where one is strictly earlier, so none of
//     P_min/P_basic dominates the other (they are incomparable optima with
//     respect to *different* exchanges).
#include <gtest/gtest.h>

#include "failure/canonical.hpp"
#include "failure/generators.hpp"
#include "failure/orbit_sweep.hpp"
#include "sim/drivers.hpp"
#include "stats/rng.hpp"

namespace eba {
namespace {

struct Shape {
  int n;
  int t;
};

class Domination : public ::testing::TestWithParam<Shape> {};

TEST_P(Domination, FipNeverLaterOnSampledRuns) {
  const auto [n, t] = GetParam();
  const auto fip = make_fip_driver(n, t);
  const auto mini = make_min_driver(n, t);
  const auto basic = make_basic_driver(n, t);
  Rng rng(static_cast<std::uint64_t>(n * 100 + t));
  int strictly_earlier_than_min = 0;
  int strictly_earlier_than_basic = 0;
  for (int k = 0; k < 151; ++k) {
    // Random omissions almost never let the FIP strictly beat P_basic (the
    // §8 conjecture); the Example 7.1 pattern — coordinated silence with
    // all-one preferences — does, so seed it as the first sample.
    const FailurePattern alpha =
        k == 0 ? silent_agents_pattern(
                     n, AgentSet::all(n).minus(AgentSet::all(n - t)), t + 2)
               : sample_adversary(n, rng.below(t + 1), t + 2, 0.35, rng);
    const std::vector<Value> prefs =
        k == 0 ? std::vector<Value>(static_cast<std::size_t>(n), Value::one)
               : sample_preferences(n, rng);
    const RunSummary f = fip(alpha, prefs);
    const RunSummary m = mini(alpha, prefs);
    const RunSummary b = basic(alpha, prefs);
    for (AgentId i : alpha.nonfaulty()) {
      ASSERT_GT(f.round_of(i), 0);
      EXPECT_LE(f.round_of(i), m.round_of(i))
          << "P_opt later than P_min for agent " << i;
      EXPECT_LE(f.round_of(i), b.round_of(i))
          << "P_opt later than P_basic for agent " << i;
      strictly_earlier_than_min += f.round_of(i) < m.round_of(i) ? 1 : 0;
      strictly_earlier_than_basic += f.round_of(i) < b.round_of(i) ? 1 : 0;
    }
  }
  EXPECT_GT(strictly_earlier_than_min, 0)
      << "the FIP should strictly win somewhere";
  EXPECT_GT(strictly_earlier_than_basic, 0);
}

INSTANTIATE_TEST_SUITE_P(Shapes, Domination,
                         ::testing::Values(Shape{4, 2}, Shape{5, 2},
                                           Shape{6, 3}, Shape{8, 4}),
                         [](const ::testing::TestParamInfo<Shape>& pinfo) {
                           std::string name = "n";
                           name += std::to_string(pinfo.param.n);
                           name += "t";
                           name += std::to_string(pinfo.param.t);
                           return name;
                         });

// Exhaustive domination check on small contexts: P_opt never later than
// either limited-exchange protocol on any adversary with drops in the first
// two rounds. One representative world per (renaming orbit × stabilizer
// preference class) suffices (per-agent decision-round comparisons are
// relabeling-equivariant — tests/test_canonical.cpp, tests/test_relabel.cpp),
// which is what makes the n = 6 sweep affordable; the world weights are
// checked to cover the unreduced (pattern × preference) space.
TEST(DominationExhaustive, FipNeverLaterSmallContext) {
  for (const auto& [n, t] :
       std::vector<std::pair<int, int>>{{4, 1}, {5, 1}, {6, 1}}) {
    const auto fip = make_fip_driver(n, t);
    const auto mini = make_min_driver(n, t);
    const auto basic = make_basic_driver(n, t);
    const EnumerationConfig cfg{.n = n, .t = t, .rounds = 2};
    const std::uint64_t covered = for_each_representative_world(
        cfg, [&](const FailurePattern& alpha, const std::vector<Value>& p,
                 std::uint64_t /*weight*/) {
          const RunSummary f = fip(alpha, p);
          const RunSummary m = mini(alpha, p);
          const RunSummary b = basic(alpha, p);
          for (AgentId i : alpha.nonfaulty()) {
            EXPECT_LE(f.round_of(i), m.round_of(i)) << "n=" << n;
            EXPECT_LE(f.round_of(i), b.round_of(i)) << "n=" << n;
          }
          return !::testing::Test::HasFailure();
        });
    EXPECT_EQ(covered, count_adversaries(cfg) * (std::uint64_t{1} << cfg.n));
  }
}

// P_basic strictly beats P_min on the failure-free all-ones run (round 2 vs
// t+2), and P_min is never later than P_basic when a 0 exists — the two
// limited-information optima are incomparable across runs in decision-time
// profile, which is consistent with each being optimal only with respect to
// its own exchange.
TEST(Incomparability, BasicWinsAllOnesMinTiesElsewhere) {
  const int n = 5;
  const int t = 3;
  const auto alpha = FailurePattern::failure_free(n);
  const std::vector<Value> ones(static_cast<std::size_t>(n), Value::one);
  const RunSummary m = make_min_driver(n, t)(alpha, ones);
  const RunSummary b = make_basic_driver(n, t)(alpha, ones);
  for (AgentId i = 0; i < n; ++i) {
    EXPECT_EQ(b.round_of(i), 2);
    EXPECT_EQ(m.round_of(i), t + 2);
  }
}

// Prop 8.2(a) consequence: with any 0 present and no failures, all three
// protocols tie at round <= 2 — P_basic's extra messages buy nothing.
TEST(Incomparability, AllTieWithAZeroFailureFree) {
  const int n = 6;
  const int t = 2;
  const auto alpha = FailurePattern::failure_free(n);
  Rng rng(3);
  for (int k = 0; k < 20; ++k) {
    auto prefs = sample_preferences(n, rng);
    prefs[static_cast<std::size_t>(rng.below(n))] = Value::zero;
    const auto drivers = paper_drivers(n, t);
    std::vector<RunSummary> out;
    out.reserve(drivers.size());
    for (const auto& d : drivers) out.push_back(d.run(alpha, prefs));
    for (AgentId i = 0; i < n; ++i) {
      EXPECT_EQ(out[0].round_of(i), out[1].round_of(i));
      EXPECT_EQ(out[1].round_of(i), out[2].round_of(i));
      EXPECT_LE(out[0].round_of(i), 2);
    }
  }
}

// Corresponding runs under the same exchange have identical states
// regardless of the action protocol (the γ_fip property of §7) — here
// verified as: the adversary and preferences alone determine decision times
// for each protocol, so re-running yields identical profiles.
TEST(CorrespondingRuns, ProfilesAreReproducible) {
  const int n = 5;
  const int t = 2;
  Rng rng(21);
  const auto alpha = sample_adversary(n, t, t + 2, 0.3, rng);
  const auto prefs = sample_preferences(n, rng);
  for (const auto& [name, drive] : paper_drivers(n, t)) {
    const RunSummary a = drive(alpha, prefs);
    const RunSummary b = drive(alpha, prefs);
    for (AgentId i = 0; i < n; ++i)
      EXPECT_EQ(a.round_of(i), b.round_of(i)) << name;
  }
}

}  // namespace
}  // namespace eba
