// The paper's §1 impossibility argument, reproduced mechanically: there is
// no EBA protocol for omission failures that is 0-biased in the naive sense
// ("decide 0 as soon as you learn some agent preferred 0").
//
// We implement the naive 0-biased protocol PZeroBiased over the eager
// gossip exchange E_relay and show:
//   1. it IS a correct EBA protocol under crash failures (exhaustively);
//   2. under sending omissions, the paper's run r' — the faulty agent sits
//      on its 0 and releases it to exactly one agent in round t+1 — makes
//      two nonfaulty agents decide differently;
//   3. the chain-based protocols of §6 survive that very adversary.
#include <gtest/gtest.h>

#include "action/p_zero_biased.hpp"
#include "core/spec.hpp"
#include "exchange/relay.hpp"
#include "failure/generators.hpp"
#include "sim/drivers.hpp"
#include "sim/simulator.hpp"

namespace eba {
namespace {

RunSummary drive_zero_biased(int n, int t, const FailurePattern& alpha,
                             const std::vector<Value>& prefs) {
  const auto run =
      simulate(RelayExchange(n), PZeroBiased(n, t), alpha, prefs, t);
  RunSummary s;
  s.n = n;
  s.rounds = run.record.rounds;
  s.bits_sent = run.bits_sent;
  for (AgentId i = 0; i < n; ++i) s.decisions.push_back(run.record.decision(i));
  s.record = run.record;
  return s;
}

/// The paper's run r': n agents, agent 0 faulty with init 0, everyone else
/// init 1; agent 0 is silent except for one message to agent 2 in round t+1.
FailurePattern intro_adversary(int n, int t) {
  AgentSet faulty{0};
  FailurePattern p(n, faulty.complement(n));
  for (int m = 0; m <= t + 2; ++m)
    for (AgentId to = 1; to < n; ++to)
      if (!(m == t && to == 2)) p.drop(m, 0, to);
  return p;
}

std::vector<Value> intro_prefs(int n) {
  std::vector<Value> prefs(static_cast<std::size_t>(n), Value::one);
  prefs[0] = Value::zero;
  return prefs;
}

// §1, the positive half: under crash failures the naive 0-biased protocol
// satisfies EBA — exhaustively over every crash adversary shape (crash
// agent, crash round, survivor subset) and every preference vector.
TEST(ZeroBiased, CorrectUnderCrashFailures) {
  const int n = 4;
  const int t = 1;
  const auto prefs = all_preference_vectors(n);
  int checked = 0;
  for (AgentId who = 0; who < n; ++who) {
    for (int round = 0; round <= t + 1; ++round) {
      // Every survivor subset of the crash round.
      for (std::uint64_t bits = 0; bits < (1u << (n - 1)); ++bits) {
        AgentSet survivors;
        int slot = 0;
        for (AgentId j = 0; j < n; ++j) {
          if (j == who) continue;
          if ((bits >> slot) & 1u) survivors.insert(j);
          ++slot;
        }
        const auto alpha = crash_pattern(n, who, round, survivors, t + 3);
        ASSERT_TRUE(alpha.is_crash());
        for (const auto& p : prefs) {
          const RunSummary s = drive_zero_biased(n, t, alpha, p);
          const SpecReport rep = check_eba(s.record);
          ASSERT_TRUE(rep.ok())
              << (rep.violations.empty() ? "?" : rep.violations[0]);
          ++checked;
        }
      }
    }
  }
  EXPECT_GT(checked, 1000);
}

// Also correct in every failure-free run, deciding 0 by round 2 whenever a
// 0 exists — the "biased" speed that makes the protocol attractive.
TEST(ZeroBiased, FastZeroDecisionsWithoutFailures) {
  const int n = 5;
  const int t = 2;
  const auto alpha = FailurePattern::failure_free(n);
  for (const auto& p : all_preference_vectors(n)) {
    const RunSummary s = drive_zero_biased(n, t, alpha, p);
    EXPECT_TRUE(check_eba(s.record).ok());
    bool has0 = false;
    for (Value v : p) has0 = has0 || v == Value::zero;
    if (has0) {
      for (AgentId i = 0; i < n; ++i) EXPECT_LE(s.round_of(i), 2);
    }
  }
}

// §1, the impossibility half: the intro adversary splits the nonfaulty
// agents. Agent 2 learns the withheld 0 in round t+1 and decides 0; the
// other nonfaulty agents decide 1 at the same time.
TEST(ZeroBiased, IntroAdversaryViolatesAgreement) {
  for (const auto& [n, t] : std::vector<std::pair<int, int>>{{3, 1}, {4, 2},
                                                             {5, 1}}) {
    const RunSummary s =
        drive_zero_biased(n, t, intro_adversary(n, t), intro_prefs(n));
    const SpecReport rep = check_eba(s.record);
    EXPECT_FALSE(rep.agreement)
        << "n=" << n << " t=" << t
        << ": the naive 0-biased protocol should split here";
    // Concretely: agent 2 decides 0, agent 1 decides 1, both nonfaulty.
    EXPECT_EQ(s.decisions[2]->value, Value::zero);
    EXPECT_EQ(s.decisions[1]->value, Value::one);
  }
}

// The impossibility is not an artifact of one handcrafted pattern: an
// exhaustive scan over all SO(1) adversaries finds violations for the naive
// protocol, and their count is nonzero — while the chain-based P_min has
// none anywhere (re-checked side by side).
TEST(ZeroBiased, ExhaustiveScanFindsViolationsOnlyForNaive) {
  const int n = 3;
  const int t = 1;
  const auto prefs = all_preference_vectors(n);
  const auto min_driver = make_min_driver(n, t);
  std::uint64_t naive_violations = 0;
  std::uint64_t min_violations = 0;
  enumerate_adversaries(
      EnumerationConfig{.n = n, .t = t, .rounds = 3},
      [&](const FailurePattern& alpha) {
        for (const auto& p : prefs) {
          if (!check_eba(drive_zero_biased(n, t, alpha, p).record).agreement)
            ++naive_violations;
          if (!check_eba(min_driver(alpha, p).record).ok()) ++min_violations;
        }
        return true;
      });
  EXPECT_GT(naive_violations, 0u);
  EXPECT_EQ(min_violations, 0u);
}

// The chain-based protocols survive the intro adversary itself.
TEST(ZeroBiased, ChainProtocolsSurviveIntroAdversary) {
  const int n = 4;
  const int t = 2;
  const auto alpha = intro_adversary(n, t);
  const auto prefs = intro_prefs(n);
  for (const auto& [name, drive] : paper_drivers(n, t)) {
    const SpecReport rep = check_eba(drive(alpha, prefs).record);
    EXPECT_TRUE(rep.ok()) << name;
  }
}

// Crash failures cannot express the intro adversary: a crashed agent cannot
// fall silent and then speak again.
TEST(ZeroBiased, IntroAdversaryIsNotACrashPattern) {
  EXPECT_FALSE(intro_adversary(3, 1).is_crash());
  EXPECT_FALSE(intro_adversary(4, 2).is_crash());
}

}  // namespace
}  // namespace eba
