// Unit tests for the information-exchange protocols E_min, E_basic, E_fip:
// µ message selection, δ state updates, and the EBA-context constraints.
#include <gtest/gtest.h>

#include "exchange/basic.hpp"
#include "exchange/exchange.hpp"
#include "exchange/fip.hpp"
#include "exchange/min.hpp"

namespace eba {
namespace {

template <class M>
std::vector<std::optional<M>> empty_inbox(int n) {
  return std::vector<std::optional<M>>(static_cast<std::size_t>(n));
}

static_assert(ExchangeProtocol<MinExchange>);
static_assert(ExchangeProtocol<BasicExchange>);
static_assert(ExchangeProtocol<FipExchange>);

TEST(MinExchangeTest, InitialState) {
  const MinExchange x(3);
  const MinState s = x.initial_state(1, Value::one);
  EXPECT_EQ(s.time, 0);
  EXPECT_EQ(s.init, Value::one);
  EXPECT_FALSE(s.decided);
  EXPECT_FALSE(s.jd);
}

TEST(MinExchangeTest, SendsOnlyOnDecision) {
  const MinExchange x(3);
  const MinState s = x.initial_state(0, Value::zero);
  EXPECT_FALSE(x.message(s, Action::noop(), 1).has_value());
  EXPECT_EQ(x.message(s, Action::decide(Value::zero), 1), Value::zero);
  EXPECT_EQ(x.message(s, Action::decide(Value::one), 2), Value::one);
  EXPECT_EQ(x.message_bits(Value::zero), 1u);
}

TEST(MinExchangeTest, UpdateSetsDecidedAndJd) {
  const MinExchange x(3);
  MinState s = x.initial_state(0, Value::one);
  auto inbox = empty_inbox<Value>(3);
  inbox[2] = Value::zero;
  x.update(s, Action::noop(), inbox);
  EXPECT_EQ(s.time, 1);
  EXPECT_EQ(s.jd, Value::zero);
  EXPECT_FALSE(s.decided);

  x.update(s, Action::decide(Value::zero), empty_inbox<Value>(3));
  EXPECT_EQ(s.time, 2);
  EXPECT_EQ(s.decided, Value::zero);
  EXPECT_FALSE(s.jd) << "jd resets when nothing is heard";
}

TEST(MinExchangeTest, JdPrefersZeroOnConflict) {
  const MinExchange x(3);
  MinState s = x.initial_state(0, Value::one);
  auto inbox = empty_inbox<Value>(3);
  inbox[1] = Value::one;
  inbox[2] = Value::zero;
  x.update(s, Action::noop(), inbox);
  EXPECT_EQ(s.jd, Value::zero);
}

TEST(MinExchangeTest, DoubleDecisionThrows) {
  const MinExchange x(2);
  MinState s = x.initial_state(0, Value::one);
  x.update(s, Action::decide(Value::one), empty_inbox<Value>(2));
  EXPECT_THROW(x.update(s, Action::decide(Value::one), empty_inbox<Value>(2)),
               std::logic_error);
}

TEST(BasicExchangeTest, UndecidedOneBroadcastsInitOne) {
  const BasicExchange x(3);
  const BasicState one = x.initial_state(0, Value::one);
  EXPECT_EQ(x.message(one, Action::noop(), 1), BasicMsg::init1);
  const BasicState zero = x.initial_state(0, Value::zero);
  EXPECT_FALSE(x.message(zero, Action::noop(), 1).has_value());
  EXPECT_EQ(x.message(one, Action::decide(Value::one), 1), BasicMsg::decide1);
  EXPECT_EQ(x.message_bits(BasicMsg::init1), 2u);
}

TEST(BasicExchangeTest, StopsInitOneAfterJdOrDecision) {
  const BasicExchange x(3);
  BasicState s = x.initial_state(0, Value::one);
  auto inbox = empty_inbox<BasicMsg>(3);
  inbox[1] = BasicMsg::decide1;
  x.update(s, Action::noop(), inbox);
  EXPECT_EQ(s.jd, Value::one);
  EXPECT_FALSE(x.message(s, Action::noop(), 1).has_value());
}

TEST(BasicExchangeTest, CountsOnesIncludingSelf) {
  const BasicExchange x(4);
  BasicState s = x.initial_state(0, Value::one);
  auto inbox = empty_inbox<BasicMsg>(4);
  inbox[0] = BasicMsg::init1;  // own broadcast comes back
  inbox[2] = BasicMsg::init1;
  inbox[3] = BasicMsg::init1;
  x.update(s, Action::noop(), inbox);
  EXPECT_EQ(s.ones, 3);
}

TEST(BasicExchangeTest, OnesResetOnDecisionMessage) {
  const BasicExchange x(4);
  BasicState s = x.initial_state(0, Value::one);
  auto inbox = empty_inbox<BasicMsg>(4);
  inbox[1] = BasicMsg::init1;
  inbox[2] = BasicMsg::decide0;
  x.update(s, Action::noop(), inbox);
  EXPECT_EQ(s.ones, 0) << "#1 is ignored once a decision message arrives";
  EXPECT_EQ(s.jd, Value::zero);
}

TEST(BasicExchangeTest, OnesResetWhenDecided) {
  const BasicExchange x(4);
  BasicState s = x.initial_state(0, Value::one);
  auto inbox = empty_inbox<BasicMsg>(4);
  inbox[1] = BasicMsg::init1;
  x.update(s, Action::decide(Value::one), inbox);
  EXPECT_EQ(s.ones, 0);
}

TEST(FipExchangeTest, InitialGraphKnowsOwnPreferenceOnly) {
  const FipExchange x(3);
  const FipState s = x.initial_state(1, Value::zero);
  EXPECT_EQ(s.graph.time(), 0);
  EXPECT_EQ(s.graph.pref(1), PrefLabel::zero);
  EXPECT_EQ(s.graph.pref(0), PrefLabel::unknown);
}

TEST(FipExchangeTest, AlwaysBroadcastsGraph) {
  const FipExchange x(3);
  const FipState s = x.initial_state(0, Value::one);
  const auto m = x.message(s, Action::noop(), 2);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(**m, s.graph);
  EXPECT_EQ(x.message_bits(*m), s.graph.bit_size());
}

TEST(FipExchangeTest, UpdateRecordsDeliveriesAndMergesPrefs) {
  const FipExchange x(3);
  FipState s0 = x.initial_state(0, Value::one);
  const FipState s1 = x.initial_state(1, Value::zero);

  auto inbox = empty_inbox<FipExchange::Message>(3);
  inbox[0] = std::make_shared<const CommGraph>(s0.graph);  // self
  inbox[1] = std::make_shared<const CommGraph>(s1.graph);
  // agent 2 omitted
  x.update(s0, Action::noop(), inbox);

  EXPECT_EQ(s0.time, 1);
  EXPECT_EQ(s0.graph.time(), 1);
  EXPECT_EQ(s0.graph.label(0, 1, 0), Label::present);
  EXPECT_EQ(s0.graph.label(0, 2, 0), Label::absent);
  EXPECT_EQ(s0.graph.label(0, 0, 0), Label::present);
  EXPECT_EQ(s0.graph.label(0, 0, 1), Label::unknown)
      << "a sender does not learn whether its own sends were delivered";
  EXPECT_EQ(s0.graph.pref(1), PrefLabel::zero) << "merged from agent 1's graph";
  EXPECT_EQ(s0.graph.pref(2), PrefLabel::unknown);
}

TEST(FipExchangeTest, StateEqualityIgnoresDecisionCache) {
  const FipExchange x(2);
  FipState a = x.initial_state(0, Value::one);
  FipState b = x.initial_state(0, Value::one);
  b.decided = Value::one;
  EXPECT_EQ(a, b);
  EXPECT_EQ(hash_value(a), hash_value(b));
  b.init = Value::zero;
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace eba
