// Proposition 8.1 — message complexity in bits.
//
// Paper claim: each run of P_min sends n^2 bits in total; each run of
// P_basic sends at most O(n^2 t) bits; a standard communication-graph
// implementation of the full-information exchange uses O(n^4 t^2) bits.
//
// We measure exact bit totals in (a) the common case — failure-free,
// all-one preferences — and (b) the worst case — the hidden-0-chain
// adversary that forces the limited-information protocols to run the full
// t+2 rounds. For the FIP envelope we additionally run the graph exchange
// for the full t+2 rounds (the optimal action protocol itself stops much
// earlier, which is the point of the paper's §8 discussion). Normalized
// columns show that the measured totals track the claimed shapes: the
// constants stay flat as n and t grow.
#include <iostream>

#include "bench_util.hpp"
#include "exchange/fip.hpp"
#include "sim/simulator.hpp"

namespace eba::bench {
namespace {

std::size_t fip_exchange_bits(int n, int rounds) {
  const FipExchange x(n);
  auto noop = [](const FipState&) { return Action::noop(); };
  SimulateOptions opt;
  opt.max_rounds = rounds;
  opt.stop_when_all_decided = false;
  const auto run = simulate(x, noop, FailurePattern::failure_free(n),
                            all_ones(n), rounds, opt);
  return run.bits_sent;
}

void run() {
  banner("Proposition 8.1 — total bits sent per run",
         "Claim: P_min = n(n-1) always; P_basic = O(n^2 t); full-information "
         "graph exchange = O(n^4 t^2).\nNormalized columns divide by the "
         "claimed shape; flat constants across rows confirm the shape.");

  Table table({"n", "t", "scenario", "P_min bits", "min/n^2", "P_basic bits",
               "basic/(n^2 t)", "FIP(t+2 rnds) bits", "fip/(n^4 t^2)"});

  for (const int n : {4, 8, 16, 24, 32}) {
    for (const int t : {1, n / 4, n / 2 - 1}) {
      if (t < 1 || n - t < 2) continue;
      const double n2 = static_cast<double>(n) * n;
      const std::size_t fip_bits = fip_exchange_bits(n, t + 2);
      for (const bool worst : {false, true}) {
        const FailurePattern alpha =
            worst ? hidden_chain_pattern(n, t, t + 3)
                  : FailurePattern::failure_free(n);
        const std::vector<Value> prefs = worst ? one_zero(n) : all_ones(n);
        const RunSummary min_run = make_min_driver(n, t)(alpha, prefs);
        const RunSummary basic_run = make_basic_driver(n, t)(alpha, prefs);
        table.row(n, t, worst ? "hidden-chain" : "failure-free",
                  min_run.bits_sent, static_cast<double>(min_run.bits_sent) / n2,
                  basic_run.bits_sent,
                  static_cast<double>(basic_run.bits_sent) / (n2 * t),
                  fip_bits,
                  static_cast<double>(fip_bits) / (n2 * n2 * t * t));
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nNote: the FIP column is the cost of exchanging communication"
               " graphs for the\nfull t+2 rounds; the *optimal* FIP action"
               " protocol typically stops far earlier\n(see bench_example71"
               " and bench_failure_sweep).\n";
}

}  // namespace
}  // namespace eba::bench

int main() {
  eba::bench::run();
  return 0;
}
