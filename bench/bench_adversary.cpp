// Adversary-strategy benchmark (BENCH_adversary.json).
//
// Three families of gated rows:
//
//  * worst_case — the branch-and-bound searcher (failure/strategy.hpp) must
//    find the ANALYTIC worst decision round — the Prop 6.1 bound t+2 — for
//    each small (protocol, n, t) configuration, SO and GO; the headline is
//    P_opt at n=4, t=2 with the t+2 score ceiling (first-witness mode). An
//    Example-7.1 anchor row pins the analytic decision rounds (P_opt round
//    3, P_min/P_basic round t+2) the searches are measured against.
//  * adaptive — the shipped adaptive GO strategies (sim/adaptive.hpp) at
//    n=16 must sustain a worst decision round at least as late as the best
//    STATIC pattern found by random sampling with the same budget: an
//    adversary that reacts to staged decisions must not lose to blind
//    sampling.
//  * fuzz — seeded spec-oracle sweeps (sim/fuzz.hpp) at n = 8..64 with zero
//    violations across SO and GO; the rows that make "correct at large n"
//    a measured, regression-gated claim rather than an extrapolation.
//
// Output: machine-readable JSON on stdout (written verbatim to
// BENCH_adversary.json by ci/run_benches.cmake, gated by ci/check_bench.py
// --baseline-adversary); human-readable table on stderr. Exit code is
// self-gating. `--fuzz-smoke` runs a seconds-budget fuzz subset only (for
// ci/verify.sh) and writes no JSON.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "failure/generators.hpp"
#include "failure/strategy.hpp"
#include "sim/adaptive.hpp"
#include "sim/fuzz.hpp"
#include "sim/objective.hpp"
#include "stats/rng.hpp"
#include "stats/table.hpp"

namespace eba::bench {
namespace {

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

// ---------------------------------------------------------------------------
// Worst-case search rows
// ---------------------------------------------------------------------------

struct WorstCaseRow {
  std::string label;
  std::string searcher;  ///< "bnb" or "greedy"
  ProtocolKind protocol = ProtocolKind::p_opt;
  FailureModel model = FailureModel::sending;
  int n = 0;
  int t = 0;
  int rounds = 0;
  bool use_ceiling = false;
  int expected_round = 0;  ///< the analytic worst decision round (t+2)
  /// `gate_exact`: row fails unless found == expected. Greedy rows gate
  /// found <= expected only (hill climbing may stall on a plateau).
  bool gate_exact = true;

  int found_round = 0;
  bool ceiling_reached = false;
  std::uint64_t nodes = 0;
  std::uint64_t evaluations = 0;
  std::uint64_t pruned_symmetry = 0;
  std::uint64_t pruned_settled = 0;
  std::uint64_t pruned_unreached = 0;
  double seconds = 0;
  bool ok = false;
};

void run_worst_case(WorstCaseRow& row) {
  ObjectiveConfig ocfg;
  ocfg.objective = SearchObjective::decision_round;
  ocfg.protocol = row.protocol;
  ocfg.n = row.n;
  ocfg.t = row.t;
  const PatternEvaluator eval = make_pattern_evaluator(ocfg);

  SearchOptions opt;
  opt.space = EnumerationConfig{
      .n = row.n, .t = row.t, .rounds = row.rounds, .model = row.model};
  if (row.use_ceiling)
    opt.score_ceiling = static_cast<double>(row.expected_round);

  const SearchResult res = row.searcher == "greedy"
                               ? greedy_worst_case(opt, eval)
                               : branch_and_bound_worst_case(opt, eval);
  row.found_round = static_cast<int>(res.best_score);
  row.ceiling_reached = res.ceiling_reached;
  row.nodes = res.stats.nodes;
  row.evaluations = res.stats.evaluations;
  row.pruned_symmetry = res.stats.pruned_symmetry;
  row.pruned_settled = res.stats.pruned_settled;
  row.pruned_unreached = res.stats.pruned_unreached;
  row.seconds = res.seconds;
  row.ok = row.gate_exact ? row.found_round == row.expected_round
                          : row.found_round <= row.expected_round;
}

void json_worst_case(std::ostringstream& out, const WorstCaseRow& r,
                     const char* indent) {
  out << indent << "{\"label\": \"" << r.label << "\", \"searcher\": \""
      << r.searcher << "\", \"protocol\": \"" << to_string(r.protocol)
      << "\", \"model\": \""
      << (r.model == FailureModel::sending ? "SO" : "GO")
      << "\", \"n\": " << r.n << ", \"t\": " << r.t
      << ", \"rounds\": " << r.rounds
      << ", \"expected_round\": " << r.expected_round
      << ", \"found_round\": " << r.found_round << ", \"ceiling_reached\": "
      << (r.ceiling_reached ? "true" : "false") << ", \"nodes\": " << r.nodes
      << ", \"evaluations\": " << r.evaluations
      << ", \"pruned_symmetry\": " << r.pruned_symmetry
      << ", \"pruned_settled\": " << r.pruned_settled
      << ", \"pruned_unreached\": " << r.pruned_unreached
      << ", \"seconds\": " << fmt(r.seconds) << ", \"ok\": "
      << (r.ok ? "true" : "false") << "}";
}

// ---------------------------------------------------------------------------
// Example 7.1 anchor
// ---------------------------------------------------------------------------

struct Example71Row {
  int n = 20;
  int t = 10;
  int fip_round = 0;
  int min_round = 0;
  int basic_round = 0;
  bool ok = false;
};

Example71Row run_example71() {
  Example71Row row;
  AgentSet silent;
  for (AgentId i = 0; i < row.t; ++i) silent.insert(i);
  const FailurePattern alpha =
      silent_agents_pattern(row.n, silent, row.t + 3);
  const std::vector<Value> ones(static_cast<std::size_t>(row.n), Value::one);

  const RunSummary fip =
      make_driver(ProtocolKind::p_opt, row.n, row.t)(alpha, ones);
  const RunSummary min =
      make_driver(ProtocolKind::p_min, row.n, row.t)(alpha, ones);
  const RunSummary basic =
      make_driver(ProtocolKind::p_basic, row.n, row.t)(alpha, ones);
  row.fip_round = fip.last_nonfaulty_round();
  row.min_round = min.last_nonfaulty_round();
  row.basic_round = basic.last_nonfaulty_round();
  row.ok = row.fip_round == 3 && row.min_round == row.t + 2 &&
           row.basic_round == row.t + 2;
  return row;
}

// ---------------------------------------------------------------------------
// Adaptive vs static sampling at n=16
// ---------------------------------------------------------------------------

struct AdaptiveReport {
  int n = 16;
  int t = 3;
  std::string protocol = "P_opt_go";
  struct StrategyRow {
    std::string name;
    int worst_round = 0;
    int runs = 0;
  };
  std::vector<StrategyRow> strategies;
  int adaptive_worst = 0;   ///< max over strategies
  int static_worst = 0;     ///< max over sampled static patterns
  int static_samples = 0;
  double seconds = 0;
  bool ok = false;  ///< adaptive_worst >= static_worst
};

AdaptiveReport run_adaptive_vs_static() {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point start = Clock::now();
  AdaptiveReport rep;
  const int n = rep.n;
  const int t = rep.t;
  const ProtocolKind kind = ProtocolKind::p_opt_go;
  const std::vector<Value> ones(static_cast<std::size_t>(n), Value::one);

  // Adaptive side: every shipped GO strategy; the seeded one gets a handful
  // of seeds, the deterministic ones run once.
  const AdaptiveDriver drive = make_adaptive_driver(kind, n, t);
  for (const NamedStrategyFactory& f :
       shipped_strategies(n, t, FailureModel::general)) {
    AdaptiveReport::StrategyRow row;
    row.name = f.name;
    const int seeds = f.name == "random_budget" ? 8 : 1;
    for (int s = 0; s < seeds; ++s) {
      const auto strat = f.make(static_cast<std::uint64_t>(s) + 1);
      const AdaptiveOutcome out = drive(*strat, ones);
      row.worst_round =
          std::max(row.worst_round, out.summary.last_nonfaulty_round());
      row.runs += 1;
    }
    rep.adaptive_worst = std::max(rep.adaptive_worst, row.worst_round);
    rep.strategies.push_back(std::move(row));
  }

  // Static side: blind random GO sampling with the same budget (k = t
  // faulty, drops over the same t+2-round prefix).
  const RunDriver run = make_driver(kind, n, t);
  Rng rng(0xadd5);
  rep.static_samples = 40;
  for (int s = 0; s < rep.static_samples; ++s) {
    const FailurePattern alpha =
        sample_go_adversary(n, t, t + 2, 0.35, 0.2, rng);
    rep.static_worst =
        std::max(rep.static_worst, run(alpha, ones).last_nonfaulty_round());
  }

  rep.ok = rep.adaptive_worst >= rep.static_worst;
  rep.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  return rep;
}

// ---------------------------------------------------------------------------
// Fuzz rows at n = 8..64
// ---------------------------------------------------------------------------

struct FuzzRow {
  std::string label;
  FuzzConfig cfg;
  FuzzReport report;
};

FuzzRow run_fuzz_row(std::string label, ProtocolKind kind, int n, int t,
                     int iterations) {
  FuzzRow row;
  row.label = std::move(label);
  row.cfg.n = n;
  row.cfg.t = t;
  row.cfg.protocol = kind;
  row.cfg.model = model_of(kind);
  row.cfg.base_seed = 0xf022;
  row.cfg.iterations = iterations;
  row.cfg.strict = true;
  row.report = run_fuzz(row.cfg);
  return row;
}

void json_fuzz(std::ostringstream& out, const FuzzRow& r,
               const char* indent) {
  out << indent << "{\"label\": \"" << r.label << "\", \"protocol\": \""
      << to_string(r.cfg.protocol) << "\", \"model\": \""
      << (r.cfg.model == FailureModel::sending ? "SO" : "GO")
      << "\", \"n\": " << r.cfg.n << ", \"t\": " << r.cfg.t
      << ", \"runs\": " << r.report.runs
      << ", \"violations\": " << r.report.violations
      << ", \"seconds\": " << fmt(r.report.seconds) << ", \"spec_ok\": "
      << (r.report.ok() ? "true" : "false") << "}";
}

/// Seconds-budget subset for ci/verify.sh: enough to catch a broken oracle
/// or a protocol regression, cheap enough for every CI run.
int fuzz_smoke() {
  bool ok = true;
  for (const auto& [kind, n, t, iters] :
       {std::tuple{ProtocolKind::p_opt, 8, 2, 10},
        std::tuple{ProtocolKind::p_opt_go, 8, 2, 10},
        std::tuple{ProtocolKind::p_min, 16, 4, 20},
        std::tuple{ProtocolKind::early_stop, 16, 4, 20},
        std::tuple{ProtocolKind::authenticated, 16, 4, 20}}) {
    FuzzConfig cfg;
    cfg.n = n;
    cfg.t = t;
    cfg.protocol = kind;
    cfg.model = model_of(kind);
    cfg.base_seed = 0x50a0;
    cfg.iterations = iters;
    const FuzzReport rep = run_fuzz(cfg);
    std::cerr << "fuzz-smoke " << to_string(kind) << " n=" << n
              << ": " << rep.runs << " runs, " << rep.violations
              << " violations\n";
    ok = ok && rep.ok();
  }
  std::cerr << (ok ? "fuzz-smoke PASS\n" : "fuzz-smoke FAIL\n");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace eba::bench

int main(int argc, char** argv) {
  using namespace eba;
  using namespace eba::bench;

  if (argc > 1 && std::strcmp(argv[1], "--fuzz-smoke") == 0)
    return fuzz_smoke();

  // --- worst-case search rows ----------------------------------------------
  // The headline: P_opt at n=4, t=2 over the SO space with drops in rounds
  // 1..t+1, first-witness mode at the Prop 6.1 ceiling t+2.
  std::vector<WorstCaseRow> worst;
  worst.push_back({.label = "bnb_p_opt_n4_t2",
                   .searcher = "bnb",
                   .protocol = ProtocolKind::p_opt,
                   .n = 4,
                   .t = 2,
                   .rounds = 3,
                   .use_ceiling = true,
                   .expected_round = 4});
  worst.push_back({.label = "bnb_p_opt_n4_t1",
                   .searcher = "bnb",
                   .protocol = ProtocolKind::p_opt,
                   .n = 4,
                   .t = 1,
                   .rounds = 2,
                   .expected_round = 3});
  worst.push_back({.label = "bnb_p_basic_n4_t1",
                   .searcher = "bnb",
                   .protocol = ProtocolKind::p_basic,
                   .n = 4,
                   .t = 1,
                   .rounds = 2,
                   .expected_round = 3});
  worst.push_back({.label = "bnb_p_opt_go_n3_t1",
                   .searcher = "bnb",
                   .protocol = ProtocolKind::p_opt_go,
                   .model = FailureModel::general,
                   .n = 3,
                   .t = 1,
                   .rounds = 2,
                   .expected_round = 3});
  worst.push_back({.label = "greedy_p_opt_n4_t1",
                   .searcher = "greedy",
                   .protocol = ProtocolKind::p_opt,
                   .n = 4,
                   .t = 1,
                   .rounds = 2,
                   .expected_round = 3,
                   .gate_exact = false});
  for (WorstCaseRow& row : worst) run_worst_case(row);
  const WorstCaseRow& headline = worst.front();

  // --- Example 7.1 anchor + adaptive-vs-static + fuzz ----------------------
  const Example71Row ex71 = run_example71();
  const AdaptiveReport adaptive = run_adaptive_vs_static();

  std::vector<FuzzRow> fuzz;
  fuzz.push_back(run_fuzz_row("fuzz_p_opt_n8", ProtocolKind::p_opt, 8, 2, 60));
  fuzz.push_back(
      run_fuzz_row("fuzz_p_opt_go_n8", ProtocolKind::p_opt_go, 8, 2, 60));
  fuzz.push_back(
      run_fuzz_row("fuzz_p_opt_go_n16", ProtocolKind::p_opt_go, 16, 3, 20));
  fuzz.push_back(
      run_fuzz_row("fuzz_p_basic_n32", ProtocolKind::p_basic, 32, 6, 60));
  fuzz.push_back(run_fuzz_row("fuzz_p_min_n64", ProtocolKind::p_min, 64, 8, 60));
  fuzz.push_back(
      run_fuzz_row("fuzz_p_es_n32", ProtocolKind::early_stop, 32, 6, 60));
  fuzz.push_back(
      run_fuzz_row("fuzz_p_auth_n32", ProtocolKind::authenticated, 32, 6, 60));

  // --- human-readable report (stderr) --------------------------------------
  std::cerr << "=== bench_adversary: worst-case search, adaptive "
               "strategies, spec-oracle fuzz ===\n\n";
  Table wtable({"row", "searcher", "model", "n", "t", "expected", "found",
                "evals", "seconds", "ok"});
  for (const WorstCaseRow& r : worst)
    wtable.row(r.label, r.searcher,
               r.model == FailureModel::sending ? "SO" : "GO", r.n, r.t,
               r.expected_round, r.found_round, r.evaluations, r.seconds,
               r.ok ? "yes" : "NO");
  wtable.print(std::cerr);
  std::cerr << "\nexample 7.1 (n=20, t=10): P_opt round " << ex71.fip_round
            << ", P_min round " << ex71.min_round << ", P_basic round "
            << ex71.basic_round << (ex71.ok ? " (ok)" : " (MISMATCH)")
            << "\n";
  std::cerr << "adaptive n=" << adaptive.n << " t=" << adaptive.t << " GO: ";
  for (const auto& s : adaptive.strategies)
    std::cerr << s.name << "=" << s.worst_round << " ";
  std::cerr << "| static sampling (" << adaptive.static_samples
            << " patterns) = " << adaptive.static_worst
            << (adaptive.ok ? " (adaptive >= static)" : " (ADAPTIVE LOST)")
            << "\n\n";
  Table ftable({"fuzz row", "model", "n", "t", "runs", "violations",
                "seconds"});
  for (const FuzzRow& r : fuzz)
    ftable.row(r.label, r.cfg.model == FailureModel::sending ? "SO" : "GO",
               r.cfg.n, r.cfg.t, r.report.runs, r.report.violations,
               r.report.seconds);
  ftable.print(std::cerr);

  // --- machine-readable JSON (stdout) --------------------------------------
  std::ostringstream out;
  out << "{\n";
  out << "  \"name\": \"bench_adversary\",\n";
  out << "  \"headline\": ";
  json_worst_case(out, headline, "");
  out << ",\n";
  out << "  \"worst_case\": [\n";
  for (std::size_t i = 0; i < worst.size(); ++i) {
    json_worst_case(out, worst[i], "    ");
    out << (i + 1 < worst.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"example71\": {\"n\": " << ex71.n << ", \"t\": " << ex71.t
      << ", \"p_opt_round\": " << ex71.fip_round
      << ", \"p_min_round\": " << ex71.min_round
      << ", \"p_basic_round\": " << ex71.basic_round << ", \"ok\": "
      << (ex71.ok ? "true" : "false") << "},\n";
  out << "  \"adaptive\": {\"protocol\": \"" << adaptive.protocol
      << "\", \"n\": " << adaptive.n << ", \"t\": " << adaptive.t
      << ", \"model\": \"GO\", \"strategies\": [";
  for (std::size_t i = 0; i < adaptive.strategies.size(); ++i) {
    const auto& s = adaptive.strategies[i];
    out << (i ? ", " : "") << "{\"name\": \"" << s.name
        << "\", \"worst_round\": " << s.worst_round
        << ", \"runs\": " << s.runs << "}";
  }
  out << "], \"adaptive_worst_round\": " << adaptive.adaptive_worst
      << ", \"static_samples\": " << adaptive.static_samples
      << ", \"static_worst_round\": " << adaptive.static_worst
      << ", \"seconds\": " << fmt(adaptive.seconds) << ", \"ok\": "
      << (adaptive.ok ? "true" : "false") << "},\n";
  out << "  \"fuzz\": [\n";
  for (std::size_t i = 0; i < fuzz.size(); ++i) {
    json_fuzz(out, fuzz[i], "    ");
    out << (i + 1 < fuzz.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
  std::cout << out.str();

  // --- self-gates ----------------------------------------------------------
  bool failed = false;
  for (const WorstCaseRow& r : worst)
    if (!r.ok) {
      std::cerr << "FAIL: " << r.label << " found round " << r.found_round
                << ", expected " << r.expected_round << "\n";
      failed = true;
    }
  if (!ex71.ok) {
    std::cerr << "FAIL: Example 7.1 decision rounds diverge from the paper\n";
    failed = true;
  }
  if (!adaptive.ok) {
    std::cerr << "FAIL: adaptive strategies lost to blind static sampling\n";
    failed = true;
  }
  for (const FuzzRow& r : fuzz)
    if (!r.report.ok()) {
      std::cerr << "FAIL: " << r.label << ": " << r.report.violations
                << " spec violations\n";
      failed = true;
    }
  return failed ? 1 : 0;
}
