// Section 8 conjecture — the cost of limited information exchange under
// failures.
//
// Paper: "We conjecture that even in runs with failures, P_basic may not be
// much worse than P_fip." We quantify it: for random omission adversaries
// with per-message drop probability p, we report the distribution of the
// per-agent decision-round gap (P_basic - P_fip) and (P_min - P_fip), plus
// mean decision rounds. The gap for P_basic stays near zero except under
// coordinated silence, supporting the conjecture and the paper's conclusion
// that the quadratic bit overhead of the FIP rarely buys anything.
#include <iostream>

#include "bench_util.hpp"
#include "stats/agg.hpp"
#include "stats/rng.hpp"

namespace eba::bench {
namespace {

void run() {
  banner("Section 8 — decision-round gap vs omission probability",
         "Conjecture: P_basic is rarely later than the optimal FIP even in "
         "failing runs.");

  Table table({"n", "t", "prefs", "drop p", "mean rnd fip", "mean rnd basic",
               "mean rnd min", "gap basic>fip %", "max gap basic",
               "gap min>fip %", "max gap min"});
  Rng rng(888);

  // Uniform random preferences almost always contain a 0 and end in round 2
  // regardless of protocol; the regime where information matters is
  // one-heavy preferences, so we sweep both all-ones and Pr[0] = 1/n.
  for (const auto& [n, t] : std::vector<std::pair<int, int>>{{8, 2}, {16, 4}}) {
    for (const bool rare_zero : {false, true}) {
    for (const double p : {0.05, 0.15, 0.3, 0.5}) {
      const auto fip = make_fip_driver(n, t);
      const auto basic = make_basic_driver(n, t);
      const auto mini = make_min_driver(n, t);
      Aggregate fip_rounds, basic_rounds, min_rounds;
      long basic_gap_positive = 0, min_gap_positive = 0, agents = 0;
      int basic_gap_max = 0, min_gap_max = 0;
      const int samples = n <= 8 ? 300 : 100;
      for (int k = 0; k < samples; ++k) {
        const auto alpha = sample_adversary(n, t, t + 2, p, rng);
        auto prefs = all_ones(n);
        if (rare_zero)
          for (auto& v : prefs)
            if (rng.chance(1.0 / n)) v = Value::zero;
        const RunSummary f = fip(alpha, prefs);
        const RunSummary b = basic(alpha, prefs);
        const RunSummary m = mini(alpha, prefs);
        for (AgentId i : alpha.nonfaulty()) {
          fip_rounds.add(f.round_of(i));
          basic_rounds.add(b.round_of(i));
          min_rounds.add(m.round_of(i));
          const int gb = b.round_of(i) - f.round_of(i);
          const int gm = m.round_of(i) - f.round_of(i);
          basic_gap_positive += gb > 0 ? 1 : 0;
          min_gap_positive += gm > 0 ? 1 : 0;
          basic_gap_max = std::max(basic_gap_max, gb);
          min_gap_max = std::max(min_gap_max, gm);
          ++agents;
        }
      }
      auto pct = [&](long x) {
        char buf[16];
        std::snprintf(buf, sizeof buf, "%.1f",
                      100.0 * static_cast<double>(x) /
                          static_cast<double>(agents));
        return std::string(buf);
      };
      table.row(n, t, rare_zero ? "Pr[0]=1/n" : "all-1", p, fip_rounds.mean(),
                basic_rounds.mean(), min_rounds.mean(),
                pct(basic_gap_positive), basic_gap_max,
                pct(min_gap_positive), min_gap_max);
    }
    }
  }
  table.print(std::cout);
  std::cout << "\nUnder random omissions the FIP's advantage over P_basic all"
               " but disappears — the §8\nconclusion that full information "
               "exchange is rarely worth its O(n^2) bit overhead.\n";
}

}  // namespace
}  // namespace eba::bench

int main() {
  eba::bench::run();
  return 0;
}
