// Ablation study — which design ingredient buys which rounds?
//
// Two ladders on the coordinated-silence family (k of the t faulty agents
// silent, all-one preferences — the regime where information matters):
//
//  1. Exchange ladder, fixed decision logic shape: E_min (decision
//     announcements only) -> E_basic (adds the (init,1) gossip and the #1
//     counting rule) -> E_fip (full communication graphs).
//
//  2. Common-knowledge ablation within the FIP: P_opt with the
//     C_N(t-faulty ∧ ...) lines disabled is exactly P0 evaluated over the
//     full-information exchange — still correct (Prop 6.1 holds in every
//     EBA context), but it forfeits the round-3 shortcut of Example 7.1,
//     showing the optimality of P1 is *entirely* due to the common-
//     knowledge test (§7: P1 differs from P0 only in those lines).
#include <iostream>

#include "bench_util.hpp"

namespace eba::bench {
namespace {

int worst_round(const RunSummary& s, AgentSet nonfaulty) {
  int worst = 0;
  for (AgentId i : nonfaulty) worst = std::max(worst, s.round_of(i));
  return worst;
}

void run() {
  banner("Ablation — exchange richness and the common-knowledge lines",
         "Rows: k silent faulty agents out of t, all-one preferences. "
         "Columns: worst nonfaulty decision round.");

  const int n = 12;
  const int t = 5;
  const auto mini = make_min_driver(n, t);
  const auto basic = make_basic_driver(n, t);
  const auto fip_p0 = make_fip_p0_driver(n, t);
  const auto fip = make_fip_driver(n, t);

  Table table({"k silent", "P_min (E_min)", "P_basic (E_basic)",
               "P0 on E_fip (no CK)", "P_opt (P1 on E_fip)"});
  for (int k = 1; k <= t; ++k) {
    AgentSet silent;
    for (AgentId i = 0; i < k; ++i) silent.insert(i);
    const auto alpha = silent_agents_pattern(n, silent, t + 3);
    const auto prefs = all_ones(n);
    table.row(k, worst_round(mini(alpha, prefs), alpha.nonfaulty()),
              worst_round(basic(alpha, prefs), alpha.nonfaulty()),
              worst_round(fip_p0(alpha, prefs), alpha.nonfaulty()),
              worst_round(fip(alpha, prefs), alpha.nonfaulty()));
  }
  table.print(std::cout);

  std::cout
      << "\nReadings:\n"
         "  * E_min -> E_basic: the (init,1) gossip converts silence into\n"
         "    counting evidence, decision at round k+2 instead of t+2.\n"
         "  * E_basic -> E_fip without common knowledge: nothing! P0's tests\n"
         "    extract no more from full graphs than #1 does on this family —\n"
         "    the paper's point that limited exchange is surprisingly strong.\n"
         "  * adding the common-knowledge lines (P1): the k = t row drops to\n"
         "    round 3 — the entire FIP advantage lives in the C_N test.\n";
}

}  // namespace
}  // namespace eba::bench

int main() {
  eba::bench::run();
  return 0;
}
