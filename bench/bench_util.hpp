// Shared helpers for the benchmark harness binaries.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "failure/generators.hpp"
#include "sim/drivers.hpp"
#include "stats/table.hpp"

namespace eba::bench {

inline std::vector<Value> all_ones(int n) {
  return std::vector<Value>(static_cast<std::size_t>(n), Value::one);
}

inline std::vector<Value> one_zero(int n, AgentId who = 0) {
  auto v = all_ones(n);
  v[static_cast<std::size_t>(who)] = Value::zero;
  return v;
}

/// The worst-case "hidden 0-chain" adversary: agents 0..t-1 are faulty;
/// agent k stays silent except for a single delivery to agent k+1 in round
/// k+1, relaying a 0-decision chain that the other agents cannot see. With
/// init_0 = 0 this drives the limited-information protocols to the full t+2
/// rounds.
inline FailurePattern hidden_chain_pattern(int n, int t, int horizon) {
  AgentSet faulty;
  for (AgentId k = 0; k < t; ++k) faulty.insert(k);
  FailurePattern p(n, faulty.complement(n));
  for (AgentId k = 0; k < t; ++k) {
    for (int m = 0; m < horizon; ++m) {
      for (AgentId to = 0; to < n; ++to) {
        if (to == k) continue;
        if (m == k && to == k + 1) continue;  // the single chain delivery
        p.drop(m, k, to);
      }
    }
  }
  return p;
}

inline void banner(const std::string& title, const std::string& claim) {
  std::cout << "\n=== " << title << " ===\n" << claim << "\n\n";
}

}  // namespace eba::bench
