// General-omissions benchmark (BENCH_go.json).
//
// Three GO(t) workload points for P_opt_go (action/p_opt_go.hpp):
//
//   * headline — the exhaustive spec sweep at n = 4, t = 2 (drops on both
//     planes in round 1): one representative world per (renaming orbit ×
//     stabilizer preference class) is simulated and checked against the EBA
//     spec, with the world weights certified to cover the whole
//     (GO pattern × preference) space (failure/orbit_sweep.hpp). This is
//     the "model-checking throughput" number: it exercises the clause
//     (vertex-cover) fault machinery, the GO chain test and the
//     common-knowledge test on every shape of 2-fault adversary.
//   * scale — decided-runs/sec over sampled GO adversaries at n = 16,
//     t = 2 (both planes, p = 0.3), spec-checked; the per-decision cost of
//     the cover reasoning at a bench-scale agent count.
//   * example71_go — the GO analogue of Example 7.1 (t deaf-and-mute
//     agents, all-one preferences) at n = 12, t = 5: the common-knowledge
//     shortcut must hit round 3 while the P0 ablation takes t+2, and at
//     n = 8, t = 4 (n = 2t, unidentifiable) both must take t+2.
//
// Output: machine-readable JSON on stdout (written verbatim to
// BENCH_go.json by ci/run_benches.cmake); human-readable table on stderr.
// Exit code is nonzero when any self-check fails; ci/check_bench.py
// additionally gates the headline wall time against the committed baseline.
#include <algorithm>
#include <chrono>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "action/p_opt_go.hpp"
#include "core/spec.hpp"
#include "failure/canonical.hpp"
#include "failure/generators.hpp"
#include "failure/orbit_sweep.hpp"
#include "sim/drivers.hpp"
#include "stats/table.hpp"

namespace eba::bench {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct SweepResult {
  std::uint64_t orbits = 0;
  std::uint64_t covered = 0;
  std::uint64_t space = 0;
  std::uint64_t runs = 0;
  double seconds = 0;
  bool spec_ok = true;
};

// Representative-world spec sweep: one run per (orbit × preference class),
// weights certified to cover every (pattern, preference vector) world.
SweepResult canonical_spec_sweep(int n, int t, int rounds) {
  SweepResult r;
  const EnumerationConfig cfg = go_config(n, t, rounds);
  r.space = count_go_adversaries(cfg) * (std::uint64_t{1} << n);
  const auto go = make_go_driver(n, t);
  const auto start = Clock::now();
  r.covered = for_each_representative_world(
      cfg, [&](const FailurePattern& alpha, const std::vector<Value>& p,
               std::uint64_t) {
        // Each orbit's first preference class is the all-zeros vector
        // (class representatives are lex-min), marking an orbit start.
        if (std::all_of(p.begin(), p.end(),
                        [](Value v) { return v == Value::zero; }))
          ++r.orbits;
        const RunSummary s = go(alpha, p);
        ++r.runs;
        if (!check_eba(s.record).ok_strict()) r.spec_ok = false;
        return r.spec_ok;
      });
  r.seconds = seconds_since(start);
  if (r.covered != r.space) r.spec_ok = false;
  return r;
}

struct ScaleResult {
  int n = 0;
  int t = 0;
  std::uint64_t runs = 0;
  double seconds = 0;
  double runs_per_sec = 0;
  bool spec_ok = true;
};

ScaleResult sampled_scale_point(int n, int t, int count) {
  ScaleResult r;
  r.n = n;
  r.t = t;
  const auto go = make_go_driver(n, t);
  Rng rng(static_cast<std::uint64_t>(n) * 1000 + static_cast<std::uint64_t>(t));
  std::vector<FailurePattern> alphas;
  std::vector<std::vector<Value>> prefs;
  for (int k = 0; k < count; ++k) {
    alphas.push_back(sample_go_adversary(n, rng.below(t + 1), t + 2, 0.3, 0.3,
                                         rng));
    prefs.push_back(sample_preferences(n, rng));
  }
  const auto start = Clock::now();
  for (int k = 0; k < count; ++k) {
    const RunSummary s = go(alphas[static_cast<std::size_t>(k)],
                            prefs[static_cast<std::size_t>(k)]);
    ++r.runs;
    if (!check_eba(s.record).ok()) r.spec_ok = false;
  }
  r.seconds = seconds_since(start);
  r.runs_per_sec = r.seconds > 0 ? static_cast<double>(r.runs) / r.seconds : 0;
  return r;
}

struct Example71Go {
  int n = 0;
  int t = 0;
  int go_round = 0;
  int p0_round = 0;
  bool ok = true;
};

Example71Go example71_go(int n, int t, int expect_go_round) {
  Example71Go e;
  e.n = n;
  e.t = t;
  AgentSet silent;
  for (AgentId i = 0; i < t; ++i) silent.insert(i);
  const FailurePattern alpha = deaf_mute_agents_pattern(n, silent, t + 3);
  const std::vector<Value> ones(static_cast<std::size_t>(n), Value::one);
  const RunSummary g = make_go_driver(n, t)(alpha, ones);
  const RunSummary g0 = make_go_p0_driver(n, t)(alpha, ones);
  for (AgentId i : alpha.nonfaulty()) {
    e.go_round = std::max(e.go_round, g.round_of(i));
    e.p0_round = std::max(e.p0_round, g0.round_of(i));
  }
  e.ok = e.go_round == expect_go_round && e.p0_round == t + 2 &&
         check_eba(g.record).ok() && check_eba(g0.record).ok();
  return e;
}

int run() {
  const SweepResult headline = canonical_spec_sweep(4, 2, 1);
  const SweepResult n5 = canonical_spec_sweep(5, 1, 1);
  const ScaleResult scale = sampled_scale_point(16, 2, 200);
  // n > 2t: the shortcut fires (round 3); n = 2t: provably impossible.
  const Example71Go shortcut = example71_go(12, 5, 3);
  const Example71Go boundary = example71_go(8, 4, 4 + 2);

  Table table({"point", "detail", "runs", "seconds", "ok"});
  const auto row = [&](const std::string& name, const std::string& detail,
                       std::uint64_t runs, double secs, bool ok) {
    table.add_row({name, detail, std::to_string(runs),
                   std::to_string(secs), ok ? "yes" : "NO"});
  };
  row("sweep n=4 t=2 r=1",
      std::to_string(headline.orbits) + " orbits / " +
          std::to_string(headline.space) + " worlds",
      headline.runs, headline.seconds, headline.spec_ok);
  row("sweep n=5 t=1 r=1",
      std::to_string(n5.orbits) + " orbits / " + std::to_string(n5.space) +
          " worlds",
      n5.runs, n5.seconds, n5.spec_ok);
  row("scale n=16 t=2",
      std::to_string(static_cast<std::uint64_t>(scale.runs_per_sec)) +
          " runs/s",
      scale.runs, scale.seconds, scale.spec_ok);
  row("example71_go n=12 t=5",
      "round " + std::to_string(shortcut.go_round) + " vs p0 " +
          std::to_string(shortcut.p0_round),
      1, 0, shortcut.ok);
  row("example71_go n=8 t=4",
      "round " + std::to_string(boundary.go_round) + " (n=2t: no shortcut)",
      1, 0, boundary.ok);
  table.print(std::cerr);

  const auto json_sweep = [](std::ostringstream& out, const SweepResult& s) {
    out << "{\"orbits\": " << s.orbits << ", \"covered\": " << s.covered
        << ", \"space\": " << s.space << ", \"runs\": " << s.runs
        << ", \"seconds\": " << s.seconds
        << ", \"spec_ok\": " << (s.spec_ok ? "true" : "false") << "}";
  };
  const auto json_ex = [](std::ostringstream& out, const Example71Go& e) {
    out << "{\"n\": " << e.n << ", \"t\": " << e.t
        << ", \"go_round\": " << e.go_round
        << ", \"p0_round\": " << e.p0_round
        << ", \"ok\": " << (e.ok ? "true" : "false") << "}";
  };
  std::ostringstream out;
  out << "{\n  \"headline\": ";
  json_sweep(out, headline);
  out << ",\n  \"sweep_n5\": ";
  json_sweep(out, n5);
  out << ",\n  \"scale\": {\"n\": " << scale.n << ", \"t\": " << scale.t
      << ", \"runs\": " << scale.runs << ", \"seconds\": " << scale.seconds
      << ", \"runs_per_sec\": " << scale.runs_per_sec
      << ", \"spec_ok\": " << (scale.spec_ok ? "true" : "false") << "},\n";
  out << "  \"example71_go\": ";
  json_ex(out, shortcut);
  out << ",\n  \"example71_go_boundary\": ";
  json_ex(out, boundary);
  out << "\n}\n";
  std::cout << out.str();

  const bool ok = headline.spec_ok && n5.spec_ok && scale.spec_ok &&
                  shortcut.ok && boundary.ok;
  if (!ok) std::cerr << "FAIL: a GO self-check failed\n";
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace eba::bench

int main() { return eba::bench::run(); }
