// Performance microbenchmarks (Prop 7.9 — P_opt is polynomial time).
//
// google-benchmark timings for the building blocks of the polynomial-time
// optimal FIP — graph merge, cone construction, view extraction, the
// common/cond tests — and end-to-end run simulation for all three
// protocols, as a function of n. Near-polynomial scaling in n is the
// empirical counterpart of Prop 7.9.
#include <benchmark/benchmark.h>

#include "action/p_basic.hpp"
#include "action/p_min.hpp"
#include "action/p_opt.hpp"
#include "bench_util.hpp"
#include "graph/knowledge.hpp"
#include "net/serialize.hpp"
#include "sim/simulator.hpp"

namespace eba::bench {
namespace {

/// A realistic mid-run FIP state: t silent faulty agents, everyone else
/// chattering, observed at time `rounds`.
FipState sample_state(int n, int t, int rounds) {
  const auto alpha = silent_agents_pattern(
      n, AgentSet::all(n).minus(AgentSet::all(n - t)), rounds + 1);
  auto noop = [](const FipState&) { return Action::noop(); };
  SimulateOptions opt;
  opt.max_rounds = rounds;
  opt.stop_when_all_decided = false;
  auto run = simulate(FipExchange(n), noop, alpha, all_ones(n), t, opt);
  return run.states.back()[0];
}

void BM_GraphMerge(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int t = n / 4;
  const FipState a = sample_state(n, t, t + 2);
  const FipState b = sample_state(n, t, t + 1);
  for (auto _ : state) {
    CommGraph g = a.graph;
    g.merge(b.graph);
    benchmark::DoNotOptimize(g);
  }
}
BENCHMARK(BM_GraphMerge)->Arg(8)->Arg(16)->Arg(32);

void BM_ConeConstruction(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int t = n / 4;
  const FipState s = sample_state(n, t, t + 2);
  for (auto _ : state) {
    Cone cone(s.graph, 0, s.graph.time());
    benchmark::DoNotOptimize(cone);
  }
}
BENCHMARK(BM_ConeConstruction)->Arg(8)->Arg(16)->Arg(32);

void BM_ExtractView(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int t = n / 4;
  const FipState s = sample_state(n, t, t + 2);
  const int m = s.graph.time() - 1;
  // Agent 1 is nonfaulty in sample_state, so (1, m) is in the cone.
  for (auto _ : state) {
    CommGraph view = extract_view(s.graph, 1, m);
    benchmark::DoNotOptimize(view);
  }
}
BENCHMARK(BM_ExtractView)->Arg(8)->Arg(16)->Arg(32);

void BM_CommonTest(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int t = n / 4;
  const FipState s = sample_state(n, t, t + 2);
  const POpt p(n, t);
  p.infer_actions(s);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        POpt::common_test(s.graph, 0, Value::one, t, s.inferred));
  }
}
BENCHMARK(BM_CommonTest)->Arg(8)->Arg(16)->Arg(32);

void BM_Cond1Test(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int t = n / 4;
  const FipState s = sample_state(n, t, t + 2);
  const POpt p(n, t);
  p.infer_actions(s);
  for (auto _ : state) {
    benchmark::DoNotOptimize(POpt::cond1_test(s.graph, 0, s.inferred));
  }
}
BENCHMARK(BM_Cond1Test)->Arg(8)->Arg(16)->Arg(32);

void BM_GraphSerialize(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const FipState s = sample_state(n, n / 4, n / 4 + 2);
  for (auto _ : state) {
    Writer w;
    encode_graph(w, s.graph);
    benchmark::DoNotOptimize(w.take());
  }
}
BENCHMARK(BM_GraphSerialize)->Arg(8)->Arg(16)->Arg(32);

template <class MakeDriver>
void run_full(benchmark::State& state, const MakeDriver& make) {
  const int n = static_cast<int>(state.range(0));
  const int t = n / 4 >= 1 ? n / 4 : 1;
  const auto drive = make(n, t);
  const auto alpha = hidden_chain_pattern(n, t, t + 3);
  const auto prefs = one_zero(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(drive(alpha, prefs));
  }
}

void BM_FullRunPMin(benchmark::State& state) {
  run_full(state, [](int n, int t) { return make_min_driver(n, t); });
}
BENCHMARK(BM_FullRunPMin)->Arg(8)->Arg(16)->Arg(32);

void BM_FullRunPBasic(benchmark::State& state) {
  run_full(state, [](int n, int t) { return make_basic_driver(n, t); });
}
BENCHMARK(BM_FullRunPBasic)->Arg(8)->Arg(16)->Arg(32);

void BM_FullRunPOpt(benchmark::State& state) {
  run_full(state, [](int n, int t) { return make_fip_driver(n, t); });
}
// n = 32 joined the sweep once the packed graph representation made it
// affordable; the trajectory now covers the same range as the other benches.
BENCHMARK(BM_FullRunPOpt)->Arg(8)->Arg(16)->Arg(24)->Arg(32);

}  // namespace
}  // namespace eba::bench

BENCHMARK_MAIN();
