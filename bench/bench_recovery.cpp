// Crash-recovery and durability benchmark (BENCH_recovery.json).
//
// Four families of gated rows:
//
//  * replay (headline) — offline verification throughput of EBTR trace
//    containers (audit/trace_file.hpp): a workload run streams one trace
//    per instance, then `replay_verify` re-parses every container,
//    re-derives its decision certificate and re-checks the EBA spec. Every
//    trace must verify; the row reports traces/sec and MB/sec.
//  * snapshot — the cost of durability: the same static workload run with
//    and without an every-round checkpoint cadence (net/checkpoint.hpp).
//    The records must be identical; the row reports the overhead ratio
//    (informational — wall-clock ratios are machine-dependent).
//  * crash_storm — seeded crash injection (WorkloadOptions::crashes) across
//    P_min/P_opt under SO, P_opt_go under GO, and an adaptive-adversary GO
//    workload: every instance is killed and restored mid-run, and the row
//    gates that the crashed-and-restored records equal an uninterrupted
//    run's and that every streamed trace still verifies.
//  * tamper — a rejection sweep over one finished trace: sampled
//    truncations and bit flips must ALL be rejected by the verifier.
//
// Output: machine-readable JSON on stdout (written verbatim to
// BENCH_recovery.json by ci/run_benches.cmake, gated by ci/check_bench.py
// --baseline-recovery); human-readable table on stderr. Exit code is
// self-gating.
#include <chrono>
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "action/p_min.hpp"
#include "action/p_opt.hpp"
#include "action/p_opt_go.hpp"
#include "audit/trace_file.hpp"
#include "exchange/fip.hpp"
#include "exchange/min.hpp"
#include "failure/generators.hpp"
#include "net/workload.hpp"
#include "stats/rng.hpp"
#include "stats/table.hpp"

namespace eba::bench {
namespace {

using Clock = std::chrono::steady_clock;

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::vector<InstanceSpec> make_specs(int n, int t, std::size_t count,
                                     FailureModel model, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<InstanceSpec> specs;
  specs.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    FailurePattern alpha =
        model == FailureModel::sending
            ? sample_adversary(n, t, t + 2, 0.35, rng)
            : sample_go_adversary(n, t, t + 2, 0.35, 0.2, rng);
    specs.push_back({std::move(alpha), sample_preferences(n, rng)});
  }
  return specs;
}

/// Same-seeded adaptive instances, cycling every shipped GO strategy.
std::vector<AdaptiveInstanceSpec> make_adaptive_specs(int n, int t,
                                                      std::size_t count,
                                                      std::uint64_t seed) {
  const auto factories = shipped_strategies(n, t, FailureModel::general);
  Rng rng(seed);
  std::vector<AdaptiveInstanceSpec> specs;
  specs.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    AdaptiveInstanceSpec spec;
    spec.strategy = factories[k % factories.size()].make(seed + k);
    spec.inits = sample_preferences(n, rng);
    specs.push_back(std::move(spec));
  }
  return specs;
}

// ---------------------------------------------------------------------------
// Replay-verification throughput (headline)
// ---------------------------------------------------------------------------

struct ReplayRow {
  int n = 8;
  int t = 2;
  std::size_t traces = 0;
  std::size_t bytes = 0;
  std::size_t verifications = 0;
  double seconds = 0;
  double traces_per_sec = 0;
  double mb_per_sec = 0;
  bool ok = false;
};

ReplayRow run_replay(std::size_t count, int repetitions) {
  ReplayRow row;
  const FipExchange x(row.n);
  const POpt act(row.n, row.t);
  const auto specs = make_specs(row.n, row.t, count, FailureModel::sending,
                                0xeb7101);
  WorkloadOptions opt;
  opt.record_traces = true;
  const auto result = run_workload(x, act, specs, row.t, opt);

  row.traces = result.traces.size();
  for (const Bytes& trace : result.traces) row.bytes += trace.size();

  // One verification is sub-microsecond work; repeating the pass keeps the
  // measured interval long enough for a cross-machine ratio gate.
  const Clock::time_point start = Clock::now();
  bool all_ok = true;
  for (int rep = 0; rep < repetitions; ++rep) {
    for (const Bytes& trace : result.traces) {
      const ReplayReport report = replay_verify(trace);
      all_ok = all_ok && report.ok && report.complete;
      row.verifications += 1;
    }
  }
  row.seconds = seconds_since(start);
  row.ok = all_ok && row.traces == count;
  if (row.seconds > 0) {
    row.traces_per_sec =
        static_cast<double>(row.verifications) / row.seconds;
    row.mb_per_sec = static_cast<double>(row.bytes) *
                     static_cast<double>(repetitions) / (1024.0 * 1024.0) /
                     row.seconds;
  }
  return row;
}

// ---------------------------------------------------------------------------
// Snapshot overhead
// ---------------------------------------------------------------------------

struct SnapshotRow {
  int n = 8;
  int t = 2;
  std::size_t instances = 0;
  double plain_seconds = 0;
  double durable_seconds = 0;
  double overhead_ratio = 0;
  std::size_t snapshots = 0;
  bool records_equal = false;
  bool ok = false;
};

SnapshotRow run_snapshot(std::size_t count) {
  SnapshotRow row;
  row.instances = count;
  const FipExchange x(row.n);
  const POpt act(row.n, row.t);
  const auto specs = make_specs(row.n, row.t, count, FailureModel::sending,
                                0xeb7102);

  Clock::time_point start = Clock::now();
  const auto plain = run_workload(x, act, specs, row.t);
  row.plain_seconds = seconds_since(start);

  WorkloadOptions durable;
  durable.snapshot_every = 1;
  start = Clock::now();
  const auto snapshotted = run_workload(x, act, specs, row.t, durable);
  row.durable_seconds = seconds_since(start);

  row.snapshots = snapshotted.snapshots_taken;
  row.records_equal = true;
  for (std::size_t k = 0; k < count; ++k)
    row.records_equal = row.records_equal &&
                        plain.instances[k].record ==
                            snapshotted.instances[k].record;
  row.overhead_ratio = row.plain_seconds > 0
                           ? row.durable_seconds / row.plain_seconds
                           : 0;
  row.ok = row.records_equal && row.snapshots > count;
  return row;
}

// ---------------------------------------------------------------------------
// Crash storms
// ---------------------------------------------------------------------------

struct CrashRow {
  std::string label;
  std::string model;  ///< "SO" or "GO"
  int n = 0;
  int t = 0;
  std::size_t instances = 0;
  std::size_t crashes = 0;
  std::size_t snapshots = 0;
  double seconds = 0;
  bool records_equal = false;
  bool traces_ok = false;
  bool ok = false;
};

template <class X, class P>
CrashRow run_crash_storm(std::string label, const X& x, const P& act, int t,
                         FailureModel model, std::size_t count,
                         std::uint64_t seed) {
  CrashRow row;
  row.label = std::move(label);
  row.model = model == FailureModel::sending ? "SO" : "GO";
  row.n = x.n();
  row.t = t;
  row.instances = count;
  const auto specs = make_specs(row.n, t, count, model, seed);

  const auto plain = run_workload(x, act, specs, t);

  const CrashSchedule storm =
      CrashSchedule::seeded(count, t + 2, seed + 1, /*crashes_per_instance=*/2);
  WorkloadOptions opt;
  opt.snapshot_every = 1;
  opt.crashes = &storm;
  opt.record_traces = true;
  const Clock::time_point start = Clock::now();
  const auto crashed = run_workload(x, act, specs, t, opt);
  row.seconds = seconds_since(start);

  row.crashes = crashed.crashes_injected;
  row.snapshots = crashed.snapshots_taken;
  row.records_equal = true;
  row.traces_ok = true;
  for (std::size_t k = 0; k < count; ++k) {
    row.records_equal = row.records_equal &&
                        plain.instances[k].record ==
                            crashed.instances[k].record;
    row.traces_ok = row.traces_ok && replay_verify(crashed.traces[k]).ok;
  }
  row.ok = row.records_equal && row.traces_ok && row.crashes > 0;
  return row;
}

CrashRow run_adaptive_crash_storm(std::size_t count, std::uint64_t seed) {
  CrashRow row;
  row.label = "crash_adaptive_p_opt_go";
  row.model = "GO";
  row.n = 8;
  row.t = 2;
  row.instances = count;
  const FipExchange x(row.n);
  const POptGo act(row.n, row.t);

  auto plain_specs = make_adaptive_specs(row.n, row.t, count, seed);
  const auto plain = run_adaptive_workload(x, act,
                                           std::span<AdaptiveInstanceSpec>(
                                               plain_specs),
                                           row.t);

  auto crash_specs = make_adaptive_specs(row.n, row.t, count, seed);
  const CrashSchedule storm =
      CrashSchedule::seeded(count, row.t + 2, seed + 1,
                            /*crashes_per_instance=*/2);
  WorkloadOptions opt;
  opt.snapshot_every = 1;
  opt.crashes = &storm;
  opt.record_traces = true;
  const Clock::time_point start = Clock::now();
  const auto crashed = run_adaptive_workload(
      x, act, std::span<AdaptiveInstanceSpec>(crash_specs), row.t, opt);
  row.seconds = seconds_since(start);

  row.crashes = crashed.crashes_injected;
  row.snapshots = crashed.snapshots_taken;
  row.records_equal = true;
  row.traces_ok = true;
  for (std::size_t k = 0; k < count; ++k) {
    row.records_equal = row.records_equal &&
                        plain.instances[k].record ==
                            crashed.instances[k].record;
    row.traces_ok = row.traces_ok && replay_verify(crashed.traces[k]).ok;
  }
  row.ok = row.records_equal && row.traces_ok && row.crashes > 0;
  return row;
}

void json_crash(std::ostringstream& out, const CrashRow& r,
                const char* indent) {
  out << indent << "{\"label\": \"" << r.label << "\", \"model\": \""
      << r.model << "\", \"n\": " << r.n << ", \"t\": " << r.t
      << ", \"instances\": " << r.instances << ", \"crashes\": " << r.crashes
      << ", \"snapshots\": " << r.snapshots
      << ", \"records_equal\": " << (r.records_equal ? "true" : "false")
      << ", \"traces_ok\": " << (r.traces_ok ? "true" : "false")
      << ", \"seconds\": " << fmt(r.seconds) << ", \"ok\": "
      << (r.ok ? "true" : "false") << "}";
}

// ---------------------------------------------------------------------------
// Tamper-rejection sweep
// ---------------------------------------------------------------------------

struct TamperRow {
  std::size_t trace_bytes = 0;
  std::size_t mutations = 0;
  std::size_t rejected = 0;
  double seconds = 0;
  bool ok = false;
};

TamperRow run_tamper() {
  TamperRow row;
  const int n = 8;
  const int t = 2;
  Rng rng(0xeb7103);
  const FailurePattern alpha = sample_adversary(n, t, t + 2, 0.35, rng);
  const auto run = simulate(FipExchange(n), POpt(n, t), alpha,
                            sample_preferences(n, rng), t);
  const Bytes trace = write_trace(run.record, /*instance_id=*/0xeb);
  row.trace_bytes = trace.size();

  const Clock::time_point start = Clock::now();
  // Sampled truncations and single-bit flips at a prime stride — the full
  // every-byte sweep lives in the tests; here the row measures and gates
  // the rejection path at bench scale.
  for (std::size_t cut = 0; cut < trace.size(); cut += 7) {
    Bytes mutant(trace.begin(),
                 trace.begin() + static_cast<std::ptrdiff_t>(cut));
    row.mutations += 1;
    if (!replay_verify(mutant).ok) row.rejected += 1;
  }
  for (std::size_t at = 0; at < trace.size(); at += 7) {
    Bytes mutant = trace;
    mutant[at] ^= static_cast<std::uint8_t>(1u << (at % 8));
    row.mutations += 1;
    if (!replay_verify(mutant).ok) row.rejected += 1;
  }
  row.seconds = seconds_since(start);
  row.ok = row.mutations > 0 && row.rejected == row.mutations &&
           replay_verify(trace).ok;
  return row;
}

}  // namespace
}  // namespace eba::bench

int main() {
  using namespace eba;
  using namespace eba::bench;

  const ReplayRow replay = run_replay(/*count=*/256, /*repetitions=*/64);
  const SnapshotRow snapshot = run_snapshot(/*count=*/128);

  std::vector<CrashRow> storms;
  storms.push_back(run_crash_storm("crash_p_min", MinExchange(8), PMin(8, 2),
                                   2, FailureModel::sending, 64, 0xeb7110));
  storms.push_back(run_crash_storm("crash_p_opt", FipExchange(8), POpt(8, 2),
                                   2, FailureModel::sending, 64, 0xeb7111));
  storms.push_back(run_crash_storm("crash_p_opt_go", FipExchange(8),
                                   POptGo(8, 2), 2, FailureModel::general, 64,
                                   0xeb7112));
  storms.push_back(run_adaptive_crash_storm(/*count=*/32, 0xeb7113));

  const TamperRow tamper = run_tamper();

  // --- human-readable report (stderr) --------------------------------------
  std::cerr << "=== bench_recovery: trace replay, snapshots, crash storms, "
               "tamper rejection ===\n\n";
  std::cerr << "replay headline: " << replay.traces << " traces ("
            << replay.bytes << " bytes) verified in " << fmt(replay.seconds)
            << "s = " << fmt(replay.traces_per_sec) << " traces/s, "
            << fmt(replay.mb_per_sec) << " MB/s"
            << (replay.ok ? " (ok)" : " (FAILED)") << "\n";
  std::cerr << "snapshot overhead: plain " << fmt(snapshot.plain_seconds)
            << "s vs every-round checkpoints " << fmt(snapshot.durable_seconds)
            << "s (" << fmt(snapshot.overhead_ratio) << "x, "
            << snapshot.snapshots << " snapshots)"
            << (snapshot.ok ? " (records identical)" : " (RECORDS DIVERGE)")
            << "\n\n";
  Table ctable({"crash storm", "model", "n", "t", "instances", "crashes",
                "snapshots", "seconds", "ok"});
  for (const CrashRow& r : storms)
    ctable.row(r.label, r.model, r.n, r.t, r.instances, r.crashes, r.snapshots,
               r.seconds, r.ok ? "yes" : "NO");
  ctable.print(std::cerr);
  std::cerr << "\ntamper sweep: " << tamper.rejected << "/" << tamper.mutations
            << " mutations rejected over a " << tamper.trace_bytes
            << "-byte trace" << (tamper.ok ? " (ok)" : " (SOME ACCEPTED)")
            << "\n";

  // --- machine-readable JSON (stdout) --------------------------------------
  std::ostringstream out;
  out << "{\n";
  out << "  \"name\": \"bench_recovery\",\n";
  out << "  \"headline\": {\"label\": \"replay_verify\", \"n\": " << replay.n
      << ", \"t\": " << replay.t << ", \"traces\": " << replay.traces
      << ", \"bytes\": " << replay.bytes
      << ", \"verifications\": " << replay.verifications
      << ", \"seconds\": " << fmt(replay.seconds)
      << ", \"traces_per_sec\": " << fmt(replay.traces_per_sec)
      << ", \"mb_per_sec\": " << fmt(replay.mb_per_sec) << ", \"ok\": "
      << (replay.ok ? "true" : "false") << "},\n";
  out << "  \"snapshot\": {\"n\": " << snapshot.n << ", \"t\": " << snapshot.t
      << ", \"instances\": " << snapshot.instances
      << ", \"plain_seconds\": " << fmt(snapshot.plain_seconds)
      << ", \"durable_seconds\": " << fmt(snapshot.durable_seconds)
      << ", \"overhead_ratio\": " << fmt(snapshot.overhead_ratio)
      << ", \"snapshots\": " << snapshot.snapshots
      << ", \"records_equal\": " << (snapshot.records_equal ? "true" : "false")
      << ", \"ok\": " << (snapshot.ok ? "true" : "false") << "},\n";
  out << "  \"crash_storms\": [\n";
  for (std::size_t i = 0; i < storms.size(); ++i) {
    json_crash(out, storms[i], "    ");
    out << (i + 1 < storms.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"tamper\": {\"trace_bytes\": " << tamper.trace_bytes
      << ", \"mutations\": " << tamper.mutations
      << ", \"rejected\": " << tamper.rejected
      << ", \"seconds\": " << fmt(tamper.seconds) << ", \"ok\": "
      << (tamper.ok ? "true" : "false") << "}\n";
  out << "}\n";
  std::cout << out.str();

  // --- self-gates ----------------------------------------------------------
  bool failed = false;
  if (!replay.ok) {
    std::cerr << "FAIL: a streamed trace did not verify offline\n";
    failed = true;
  }
  if (!snapshot.ok) {
    std::cerr << "FAIL: every-round checkpoints changed the run records\n";
    failed = true;
  }
  for (const CrashRow& r : storms)
    if (!r.ok) {
      std::cerr << "FAIL: " << r.label << ": records_equal="
                << r.records_equal << " traces_ok=" << r.traces_ok
                << " crashes=" << r.crashes << "\n";
      failed = true;
    }
  if (!tamper.ok) {
    std::cerr << "FAIL: tamper sweep accepted " << (tamper.mutations -
                                                    tamper.rejected)
              << " mutations\n";
    failed = true;
  }
  return failed ? 1 : 0;
}
