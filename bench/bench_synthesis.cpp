// KBP-synthesis benchmark (BENCH_synthesis.json).
//
// Measures the class-memoized, world-deduplicated, pool-parallel
// KbpSynthesizer (kripke/synthesis.hpp) against the pre-optimization
// baseline — the same synthesizer with every lever off, which evaluates the
// Thm 6.5/6.6 knowledge tests world-by-world with a fresh common-knowledge
// BFS per test, exactly the seed implementation. Both variants must produce
// bit-identical decision tables; the headline config is the full
// γ_min(n=4, t=1, drops ≤ 2 rounds) enumeration (4112 worlds) and its
// speedup is gated (>= 5x here and in ci/check_bench.py). Scale points the
// baseline cannot reach in bench time (γ_fip n=4 full enumeration, Thm 6.5
// at n=5, and γ_fip n=5 via orbit-level run reuse —
// kripke/canonical_worlds.hpp) run optimized-only and are checked against
// P_opt / P_min instead.
//
// Output: machine-readable JSON on stdout (written verbatim to
// BENCH_synthesis.json by ci/run_benches.cmake); human table on stderr.
#include <chrono>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "action/p_basic.hpp"
#include "action/p_min.hpp"
#include "action/p_opt.hpp"
#include "failure/generators.hpp"
#include "kripke/canonical_worlds.hpp"
#include "kripke/synthesis.hpp"
#include "stats/table.hpp"

namespace eba::bench {
namespace {

using Clock = std::chrono::steady_clock;

struct PointResult {
  std::string label;
  std::size_t worlds = 0;
  int horizon = 0;
  std::optional<double> baseline_seconds;
  double optimized_seconds = 0;
  std::optional<double> speedup;
  bool match = true;  ///< decisions identical (baseline vs optimized, or
                      ///< synthesized vs the paper's protocol)
  SynthesisStats stats;
};

/// The full context: every adversary of cfg × every preference vector.
/// (The world list is exchange-independent.)
std::vector<std::pair<FailurePattern, std::vector<Value>>> context_worlds(
    const EnumerationConfig& cfg) {
  std::vector<std::pair<FailurePattern, std::vector<Value>>> worlds;
  const auto prefs = all_preference_vectors(cfg.n);
  enumerate_adversaries(cfg, [&](const FailurePattern& alpha) {
    for (const auto& p : prefs) worlds.emplace_back(alpha, p);
    return true;
  });
  return worlds;
}

template <class X>
bool same_decisions(const SynthesisResult<X>& a, const SynthesisResult<X>& b) {
  if (a.decisions.size() != b.decisions.size()) return false;
  for (std::size_t w = 0; w < a.decisions.size(); ++w)
    for (std::size_t i = 0; i < a.decisions[w].size(); ++i) {
      const auto& da = a.decisions[w][i];
      const auto& db = b.decisions[w][i];
      if (da.has_value() != db.has_value()) return false;
      if (da && (da->value != db->value || da->round != db->round))
        return false;
    }
  return a.table == b.table;
}

/// Best-of-`repeats` wall time of one synthesis run; returns the last result.
template <class X>
SynthesisResult<X> timed_run(const X& x, int t, KbpProgram program,
                             const SynthesisOptions& opt,
                             const std::vector<typename KbpSynthesizer<X>::World>& worlds,
                             int horizon, int repeats, double& best_seconds) {
  best_seconds = 0;
  SynthesisResult<X> result;
  for (int r = 0; r < repeats; ++r) {
    KbpSynthesizer<X> synth(x, t, program, opt);
    const auto start = Clock::now();
    result = synth.run(worlds, horizon);
    const double s = std::chrono::duration<double>(Clock::now() - start).count();
    if (r == 0 || s < best_seconds) best_seconds = s;
  }
  return result;
}

constexpr SynthesisOptions kBaseline{
    .dedup_worlds = false, .memoize = false, .workers = 1};
constexpr SynthesisOptions kOptimized{
    .dedup_worlds = true, .memoize = true, .workers = 0};

/// A baseline-vs-optimized comparison point.
template <class X>
PointResult compare_point(const std::string& label, const X& x, int t,
                          KbpProgram program, const EnumerationConfig& cfg,
                          int horizon, int repeats) {
  PointResult out;
  out.label = label;
  out.horizon = horizon;
  const auto worlds = context_worlds(cfg);
  out.worlds = worlds.size();
  double base_s = 0;
  const auto base =
      timed_run(x, t, program, kBaseline, worlds, horizon, repeats, base_s);
  double opt_s = 0;
  const auto fast =
      timed_run(x, t, program, kOptimized, worlds, horizon, repeats, opt_s);
  out.baseline_seconds = base_s;
  out.optimized_seconds = opt_s;
  out.speedup = opt_s > 0 ? base_s / opt_s : 0;
  out.match = same_decisions(base, fast);
  out.stats = fast.stats;
  return out;
}

void json_stats(std::ostringstream& out, const SynthesisStats& s) {
  out << "{\"worlds\": " << s.worlds << ", \"world_rounds\": " << s.world_rounds
      << ", \"evaluated_rounds\": " << s.evaluated_rounds
      << ", \"common_bfs\": " << s.common_bfs << "}";
}

void json_point(std::ostringstream& out, const PointResult& p,
                const std::string& indent) {
  out << indent << "{\"label\": \"" << p.label << "\", \"worlds\": " << p.worlds
      << ", \"horizon\": " << p.horizon << ", \"baseline_seconds\": ";
  if (p.baseline_seconds)
    out << *p.baseline_seconds;
  else
    out << "null";
  out << ", \"optimized_seconds\": " << p.optimized_seconds
      << ", \"speedup\": ";
  if (p.speedup)
    out << *p.speedup;
  else
    out << "null";
  out << ", \"decisions_match\": " << (p.match ? "true" : "false")
      << ", \"stats\": ";
  json_stats(out, p.stats);
  out << "}";
}

int run() {
  constexpr double kMinSpeedup = 5.0;
  std::vector<PointResult> points;

  // Headline: Thm 6.5's context at the seed's scaling limit — the full
  // gamma_min(4, 1) enumeration, P0.
  points.push_back(compare_point("p0/gamma_min n=4 full", MinExchange(4), 1,
                                 KbpProgram::p0,
                                 {.n = 4, .t = 1, .rounds = 2}, 4, 3));

  // P1 comparisons: the common-knowledge BFS dominates the baseline here.
  points.push_back(compare_point("p1/gamma_min n=3 full", MinExchange(3), 1,
                                 KbpProgram::p1,
                                 {.n = 3, .t = 1, .rounds = 2}, 4, 3));
  points.push_back(compare_point("p1/gamma_fip n=3 full", FipExchange(3), 1,
                                 KbpProgram::p1,
                                 {.n = 3, .t = 1, .rounds = 2}, 4, 3));

  // Scale points (optimized only): checked against the paper's protocols.
  {
    PointResult p;
    p.label = "p1/gamma_fip n=4 full";
    p.horizon = 4;
    const auto worlds =
        context_worlds({.n = 4, .t = 1, .rounds = 2});
    p.worlds = worlds.size();
    const auto result = timed_run(FipExchange(4), 1, KbpProgram::p1,
                                  kOptimized, worlds, 4, 2,
                                  p.optimized_seconds);
    p.stats = result.stats;
    for (std::size_t w = 0; w < worlds.size() && p.match; ++w) {
      SimulateOptions sopt;
      sopt.max_rounds = 4;
      sopt.stop_when_all_decided = false;
      const auto run = simulate(FipExchange(4), POpt(4, 1), worlds[w].first,
                                worlds[w].second, 1, sopt);
      for (AgentId i = 0; i < 4; ++i) {
        const auto expected = run.record.decision(i);
        const auto& got = result.decisions[w][static_cast<std::size_t>(i)];
        if (got.has_value() != expected.has_value() ||
            (expected && (got->value != expected->value ||
                          got->round != expected->round)))
          p.match = false;
      }
    }
    points.push_back(p);
  }
  {
    // gamma_fip(5): reachable in bench time only with orbit-level run
    // reuse — knowledge tests run once per (orbit × preference class)
    // representative world and the rest are relabeled
    // (kripke/canonical_worlds.hpp). Decisions are checked against a
    // direct P_opt simulation of every world.
    PointResult p;
    p.label = "p1/gamma_fip n=5 orbit";
    p.horizon = 4;
    const CanonicalContext ctx =
        canonical_context_worlds({.n = 5, .t = 1, .rounds = 2});
    p.worlds = ctx.worlds.size();
    SynthesisResult<FipExchange> result;
    for (int r = 0; r < 2; ++r) {
      KbpSynthesizer<FipExchange> synth(FipExchange(5), 1, KbpProgram::p1,
                                        kOptimized);
      const auto start = Clock::now();
      result = synth.run(ctx.worlds, 4, ctx.orbits);
      const double s =
          std::chrono::duration<double>(Clock::now() - start).count();
      if (r == 0 || s < p.optimized_seconds) p.optimized_seconds = s;
    }
    p.stats = result.stats;
    for (std::size_t w = 0; w < ctx.worlds.size() && p.match; ++w) {
      SimulateOptions sopt;
      sopt.max_rounds = 4;
      sopt.stop_when_all_decided = false;
      const auto run = simulate(FipExchange(5), POpt(5, 1),
                                ctx.worlds[w].first, ctx.worlds[w].second, 1,
                                sopt);
      for (AgentId i = 0; i < 5; ++i) {
        const auto expected = run.record.decision(i);
        const auto& got = result.decisions[w][static_cast<std::size_t>(i)];
        if (got.has_value() != expected.has_value() ||
            (expected && (got->value != expected->value ||
                          got->round != expected->round)))
          p.match = false;
      }
    }
    points.push_back(p);
  }
  {
    PointResult p;
    p.label = "p0/gamma_min n=5 full";
    p.horizon = 4;
    const auto worlds =
        context_worlds({.n = 5, .t = 1, .rounds = 2});
    p.worlds = worlds.size();
    const auto result = timed_run(MinExchange(5), 1, KbpProgram::p0,
                                  kOptimized, worlds, 4, 2,
                                  p.optimized_seconds);
    p.stats = result.stats;
    const PMin pmin(5, 1);
    for (const auto& [state, action] : result.table)
      if (action != pmin(state)) p.match = false;
    points.push_back(p);
  }

  const PointResult& headline = points.front();

  // Human-readable report (stderr).
  std::cerr << "=== bench_synthesis: KBP synthesizer, baseline vs "
               "class-memoized/deduped/parallel ===\n\n";
  Table table({"point", "worlds", "baseline s", "optimized s", "speedup",
               "eval'd/world-rounds", "C_N BFS", "match"});
  for (const auto& p : points) {
    std::ostringstream frac;
    frac << p.stats.evaluated_rounds << "/" << p.stats.world_rounds;
    table.row(p.label, p.worlds,
              p.baseline_seconds
                  ? std::to_string(*p.baseline_seconds).substr(0, 8)
                  : std::string("-"),
              std::to_string(p.optimized_seconds).substr(0, 8),
              p.speedup ? std::to_string(*p.speedup).substr(0, 6)
                        : std::string("-"),
              frac.str(), p.stats.common_bfs, p.match ? "yes" : "NO");
  }
  table.print(std::cerr);

  // Machine-readable report (stdout).
  std::ostringstream out;
  out << "{\n  \"headline\": ";
  json_point(out, headline, "");
  out << ",\n  \"min_speedup\": " << kMinSpeedup;
  out << ",\n  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    json_point(out, points[i], "    ");
    if (i + 1 < points.size()) out << ",";
    out << "\n";
  }
  out << "  ]\n}\n";
  std::cout << out.str();

  bool ok = true;
  if (!headline.speedup || *headline.speedup < kMinSpeedup) {
    std::cerr << "\nFAIL: headline speedup below " << kMinSpeedup << "x\n";
    ok = false;
  }
  for (const auto& p : points)
    if (!p.match) {
      std::cerr << "\nFAIL: " << p.label
                << " decisions diverge from the reference\n";
      ok = false;
    }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace eba::bench

int main() { return eba::bench::run(); }
