// Durable storage-engine benchmark (BENCH_durability.json).
//
// Five families of rows over the store/ layer:
//
//  * journal_append_mem (headline) — fsync'd append throughput of the
//    segment journal on the in-memory VFS: every record is appended AND
//    synced, so the number is the per-record durability cost without disk
//    noise. The row gates that a reopen recovers every record.
//  * journal_append_disk — the same loop on DiskVfs against a real tmpfs/
//    disk directory. Informational (gated: false): absolute fsync latency
//    is machine-dependent, but the row still self-checks recovery.
//  * checkpoints — full-vs-delta durability cost for one instance: at every
//    round boundary, the size and encode time of a full EBCK checkpoint
//    (net/checkpoint.hpp) against the round's DeltaPayload. Gates that the
//    per-round delta is strictly smaller than the full checkpoint — the
//    reason delta checkpoints exist.
//  * crash_storms — mid-round power-cut storms through the durable store
//    (MemVfs + RunLog + WAL intents): seeded mid-round crashes across
//    P_min/SO, P_opt_go/GO and an adaptive-adversary GO workload; gates
//    that every crashed-and-restored record equals the uninterrupted run's
//    and every streamed trace verifies offline.
//  * torn_sweep — a power cut with a torn final page at every byte offset
//    (clean and corrupted): every tear must either recover the exact
//    durable prefix or reject with a typed error; never a wrong record.
//
// Output: machine-readable JSON on stdout (written verbatim to
// BENCH_durability.json by ci/run_benches.cmake, gated by ci/check_bench.py
// --baseline-durability); human-readable table on stderr. Exit code is
// self-gating.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "action/p_min.hpp"
#include "action/p_opt_go.hpp"
#include "audit/trace_file.hpp"
#include "exchange/fip.hpp"
#include "exchange/min.hpp"
#include "failure/generators.hpp"
#include "net/checkpoint.hpp"
#include "net/workload.hpp"
#include "sim/stepper.hpp"
#include "stats/rng.hpp"
#include "stats/table.hpp"
#include "store/run_log.hpp"
#include "store/vfs.hpp"

namespace eba::bench {
namespace {

using Clock = std::chrono::steady_clock;

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::vector<InstanceSpec> make_specs(int n, int t, std::size_t count,
                                     FailureModel model, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<InstanceSpec> specs;
  specs.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    FailurePattern alpha =
        model == FailureModel::sending
            ? sample_adversary(n, t, t + 2, 0.35, rng)
            : sample_go_adversary(n, t, t + 2, 0.35, 0.2, rng);
    specs.push_back({std::move(alpha), sample_preferences(n, rng)});
  }
  return specs;
}

// ---------------------------------------------------------------------------
// Fsync'd journal append throughput (headline: MemVfs; informational: disk)
// ---------------------------------------------------------------------------

struct AppendRow {
  std::string label;
  std::size_t records = 0;
  std::size_t payload_bytes = 0;
  std::size_t syncs = 0;
  double seconds = 0;
  double records_per_sec = 0;
  double mb_per_sec = 0;
  bool recovered_all = false;
  bool ok = false;
};

AppendRow run_append(std::string label, Vfs& vfs, const std::string& dir,
                     std::size_t count, std::size_t payload_bytes) {
  AppendRow row;
  row.label = std::move(label);
  row.records = count;
  row.payload_bytes = payload_bytes;

  JournalOptions opt;
  opt.page_size = 512;
  opt.segment_bytes = 1u << 18;
  Journal j = Journal::create(vfs, dir, opt);

  Bytes payload(payload_bytes);
  for (std::size_t b = 0; b < payload.size(); ++b)
    payload[b] = static_cast<std::uint8_t>(b * 131 + 7);

  const Clock::time_point start = Clock::now();
  for (std::size_t k = 0; k < count; ++k) {
    payload[0] = static_cast<std::uint8_t>(k);  // vary the bytes a little
    (void)j.append(kRunLogDelta, payload);
    j.sync();  // durability per record: this IS the measured cost
    row.syncs += 1;
  }
  row.seconds = seconds_since(start);

  const Journal reopened = Journal::open(vfs, dir, opt);
  row.recovered_all = reopened.records().size() == count &&
                      reopened.last_seq() == count;
  row.ok = row.recovered_all;
  if (row.seconds > 0) {
    row.records_per_sec = static_cast<double>(count) / row.seconds;
    row.mb_per_sec = static_cast<double>(count * payload_bytes) /
                     (1024.0 * 1024.0) / row.seconds;
  }
  return row;
}

void json_append(std::ostringstream& out, const AppendRow& r, bool gated) {
  out << "{\"label\": \"" << r.label << "\", \"records\": " << r.records
      << ", \"payload_bytes\": " << r.payload_bytes
      << ", \"syncs\": " << r.syncs << ", \"seconds\": " << fmt(r.seconds)
      << ", \"records_per_sec\": " << fmt(r.records_per_sec)
      << ", \"mb_per_sec\": " << fmt(r.mb_per_sec)
      << ", \"gated\": " << (gated ? "true" : "false")
      << ", \"ok\": " << (r.ok ? "true" : "false") << "}";
}

// ---------------------------------------------------------------------------
// Full-vs-delta checkpoint cost
// ---------------------------------------------------------------------------

struct CheckpointRow {
  int n = 0;
  int t = 0;
  int rounds = 0;
  std::size_t full_bytes_total = 0;   ///< one EBCK per round boundary
  std::size_t delta_bytes_total = 0;  ///< one DeltaPayload per round
  double full_seconds = 0;
  double delta_seconds = 0;
  double bytes_ratio = 0;  ///< delta/full, < 1 is the point
  bool ok = false;
};

CheckpointRow run_checkpoints(int n, int t, std::uint64_t seed,
                              int repetitions) {
  CheckpointRow row;
  row.n = n;
  row.t = t;
  const FipExchange x(n);
  const POptGo act(n, t);
  Rng rng(seed);
  const FailurePattern alpha =
      sample_go_adversary(n, t, t + 2, 0.35, 0.2, rng);
  const std::vector<Value> inits = sample_preferences(n, rng);

  Stepper<FipExchange, POptGo> stepper(x, act, alpha, inits, t);
  std::vector<Bytes> fulls;
  while (stepper.step()) {
    fulls.push_back(checkpoint_stepper(stepper));
    row.rounds += 1;
  }
  const RunRecord& record = stepper.record();

  // Sizes once; encode time over `repetitions` passes so the interval is
  // long enough to gate as a ratio.
  for (const Bytes& full : fulls) row.full_bytes_total += full.size();
  for (int m = 0; m < row.rounds; ++m) {
    Writer w;
    encode_delta(w, delta_of_record(record, m));
    row.delta_bytes_total += w.take().size();
  }

  Clock::time_point start = Clock::now();
  for (int rep = 0; rep < repetitions; ++rep) {
    Stepper<FipExchange, POptGo> s(x, act, alpha, inits, t);
    while (s.step()) (void)checkpoint_stepper(s).size();
  }
  row.full_seconds = seconds_since(start);

  start = Clock::now();
  for (int rep = 0; rep < repetitions; ++rep) {
    Stepper<FipExchange, POptGo> s(x, act, alpha, inits, t);
    while (s.step()) {
      Writer w;
      encode_delta(w, delta_of_record(s.record(), s.time() - 1));
      (void)w.take().size();
    }
  }
  row.delta_seconds = seconds_since(start);

  row.bytes_ratio =
      row.full_bytes_total > 0
          ? static_cast<double>(row.delta_bytes_total) /
                static_cast<double>(row.full_bytes_total)
          : 0;
  // The gate: per-round deltas must be strictly cheaper than per-round
  // full checkpoints, in bytes — otherwise the incremental tier is dead
  // weight.
  row.ok = row.rounds >= 2 && row.delta_bytes_total < row.full_bytes_total;
  return row;
}

// ---------------------------------------------------------------------------
// Mid-round durable crash storms
// ---------------------------------------------------------------------------

struct StormRow {
  std::string label;
  std::string model;
  int n = 0;
  int t = 0;
  std::size_t instances = 0;
  std::size_t crashes = 0;
  double seconds = 0;
  bool records_equal = false;
  bool traces_ok = false;
  bool ok = false;
};

template <class X, class P>
StormRow run_storm(std::string label, const X& x, const P& act, int t,
                   FailureModel model, std::size_t count,
                   std::uint64_t seed) {
  StormRow row;
  row.label = std::move(label);
  row.model = model == FailureModel::sending ? "SO" : "GO";
  row.n = x.n();
  row.t = t;
  row.instances = count;
  const auto specs = make_specs(row.n, t, count, model, seed);

  const auto plain = run_workload(x, act, specs, t);

  MemVfs vfs;
  DurableStoreOptions store;
  store.vfs = &vfs;
  store.root = "wl";
  store.journal.page_size = 256;
  store.keep_checkpoints = 2;
  CrashSchedule storm = CrashSchedule::seeded(count, t + 2, seed + 1);
  storm.mid_rounds =
      CrashSchedule::seeded_mid_round(count, t + 2, seed + 2, 2).mid_rounds;
  WorkloadOptions opt;
  opt.snapshot_every = 1;
  opt.crashes = &storm;
  opt.record_traces = true;
  opt.store = &store;
  const Clock::time_point start = Clock::now();
  const auto crashed = run_workload(x, act, specs, t, opt);
  row.seconds = seconds_since(start);

  row.crashes = crashed.crashes_injected;
  row.records_equal = true;
  row.traces_ok = true;
  for (std::size_t k = 0; k < count; ++k) {
    row.records_equal =
        row.records_equal &&
        plain.instances[k].record == crashed.instances[k].record;
    row.traces_ok = row.traces_ok && replay_verify(crashed.traces[k]).ok;
  }
  row.ok = row.records_equal && row.traces_ok && row.crashes >= count;
  return row;
}

StormRow run_adaptive_storm(std::size_t count, std::uint64_t seed) {
  StormRow row;
  row.label = "storm_adaptive_p_opt_go";
  row.model = "GO";
  row.n = 6;
  row.t = 2;
  row.instances = count;
  const FipExchange x(row.n);
  const POptGo act(row.n, row.t);

  const auto factories =
      shipped_strategies(row.n, row.t, FailureModel::general);
  const auto specs_at = [&](std::uint64_t salt) {
    Rng rng(seed + salt);
    std::vector<AdaptiveInstanceSpec> specs;
    for (std::size_t k = 0; k < count; ++k) {
      AdaptiveInstanceSpec spec;
      spec.strategy = factories[k % factories.size()].make(seed + k);
      spec.inits = sample_preferences(row.n, rng);
      specs.push_back(std::move(spec));
    }
    return specs;
  };

  auto plain_specs = specs_at(0);
  const auto plain = run_adaptive_workload(
      x, act, std::span<AdaptiveInstanceSpec>(plain_specs), row.t);

  auto crash_specs = specs_at(0);
  MemVfs vfs;
  DurableStoreOptions store;
  store.vfs = &vfs;
  store.root = "wl";
  store.journal.page_size = 256;
  const CrashSchedule storm =
      CrashSchedule::seeded_mid_round(count, row.t + 2, seed + 1, 2);
  WorkloadOptions opt;
  opt.snapshot_every = 1;
  opt.crashes = &storm;
  opt.record_traces = true;
  opt.store = &store;
  const Clock::time_point start = Clock::now();
  const auto crashed = run_adaptive_workload(
      x, act, std::span<AdaptiveInstanceSpec>(crash_specs), row.t, opt);
  row.seconds = seconds_since(start);

  row.crashes = crashed.crashes_injected;
  row.records_equal = true;
  row.traces_ok = true;
  for (std::size_t k = 0; k < count; ++k) {
    row.records_equal =
        row.records_equal &&
        plain.instances[k].record == crashed.instances[k].record;
    row.traces_ok = row.traces_ok && replay_verify(crashed.traces[k]).ok;
  }
  row.ok = row.records_equal && row.traces_ok && row.crashes > 0;
  return row;
}

void json_storm(std::ostringstream& out, const StormRow& r,
                const char* indent) {
  out << indent << "{\"label\": \"" << r.label << "\", \"model\": \""
      << r.model << "\", \"n\": " << r.n << ", \"t\": " << r.t
      << ", \"instances\": " << r.instances << ", \"crashes\": " << r.crashes
      << ", \"records_equal\": " << (r.records_equal ? "true" : "false")
      << ", \"traces_ok\": " << (r.traces_ok ? "true" : "false")
      << ", \"seconds\": " << fmt(r.seconds)
      << ", \"ok\": " << (r.ok ? "true" : "false") << "}";
}

// ---------------------------------------------------------------------------
// Torn-write sweep
// ---------------------------------------------------------------------------

struct TornRow {
  std::size_t offsets = 0;    ///< tear points tried (clean + corrupt)
  std::size_t recovered = 0;  ///< reopened with the exact durable prefix
  std::size_t rejected = 0;   ///< reopen refused with a typed DecodeError
  double seconds = 0;
  bool ok = false;  ///< every offset recovered-or-rejected, never wrong
};

TornRow run_torn_sweep() {
  TornRow row;
  constexpr std::uint32_t kPage = 128;
  constexpr std::size_t kSynced = 6;

  const Clock::time_point start = Clock::now();
  for (int corrupt = 0; corrupt < 2; ++corrupt) {
    for (std::uint32_t keep = 0; keep <= kPage; ++keep) {
      MemVfs vfs;
      JournalOptions opt;
      opt.page_size = kPage;
      Journal j = Journal::create(vfs, "j", opt);
      Bytes payload(40);
      for (std::size_t k = 0; k < kSynced; ++k) {
        payload[0] = static_cast<std::uint8_t>(k);
        (void)j.append(kRunLogDelta, payload);
        j.sync();
      }
      payload[0] = 0xEE;  // the unsynced record the tear lands on
      (void)j.append(kRunLogDelta, payload);

      TearSpec tear;
      tear.path = "j/seg-000001";
      tear.keep = keep;
      tear.corrupt = corrupt == 1;
      vfs.power_cut("j/", tear);

      row.offsets += 1;
      try {
        const Journal reopened = Journal::open(vfs, "j", opt);
        const auto& recs = reopened.records();
        // Wrong outcomes: losing a synced record, inventing one, or
        // surfacing damaged bytes as a valid record. (A corrupted byte in
        // the zero padding past the CRC legitimately recovers.)
        if (recs.size() < kSynced || recs.size() > kSynced + 1) return row;
        bool bytes_ok = true;
        for (std::size_t k = 0; k < recs.size(); ++k) {
          payload[0] =
              k < kSynced ? static_cast<std::uint8_t>(k) : std::uint8_t{0xEE};
          bytes_ok = bytes_ok && recs[k].seq == k + 1 &&
                     recs[k].payload == payload;
        }
        if (!bytes_ok) return row;
        row.recovered += 1;
      } catch (const DecodeError&) {
        row.rejected += 1;
      }
    }
  }
  row.seconds = seconds_since(start);
  row.ok = row.recovered + row.rejected == row.offsets && row.offsets > 0;
  return row;
}

}  // namespace
}  // namespace eba::bench

int main() {
  using namespace eba;
  using namespace eba::bench;

  MemVfs mem;
  const AppendRow mem_row =
      run_append("journal_append_mem", mem, "bench-journal",
                 /*count=*/20000, /*payload_bytes=*/128);

  // Disk row: real fsyncs in a throwaway directory; informational.
  char disk_dir[] = "/tmp/eba_bench_durability_XXXXXX";
  AppendRow disk_row;
  if (::mkdtemp(disk_dir) != nullptr) {
    DiskVfs disk;
    disk_row = run_append("journal_append_disk", disk,
                          std::string(disk_dir) + "/journal",
                          /*count=*/512, /*payload_bytes=*/128);
    std::error_code ec;
    std::filesystem::remove_all(disk_dir, ec);
  } else {
    disk_row.label = "journal_append_disk";
  }

  const CheckpointRow ckpt =
      run_checkpoints(/*n=*/8, /*t=*/2, 0xd07a01, /*repetitions=*/256);

  std::vector<StormRow> storms;
  storms.push_back(run_storm("storm_p_min", MinExchange(6), PMin(6, 2), 2,
                             FailureModel::sending, 48, 0xd07a10));
  storms.push_back(run_storm("storm_p_opt_go", FipExchange(6), POptGo(6, 2),
                             2, FailureModel::general, 48, 0xd07a11));
  storms.push_back(run_adaptive_storm(/*count=*/24, 0xd07a12));

  const TornRow torn = run_torn_sweep();

  // --- human-readable report (stderr) --------------------------------------
  std::cerr << "=== bench_durability: fsync'd journal, delta checkpoints, "
               "mid-round crash storms, torn writes ===\n\n";
  Table atable({"append", "records", "bytes", "syncs", "seconds", "rec/s",
                "MB/s", "ok"});
  for (const AppendRow* r :
       std::initializer_list<const AppendRow*>{&mem_row, &disk_row})
    atable.row(r->label, r->records, r->payload_bytes, r->syncs,
               fmt(r->seconds), fmt(r->records_per_sec), fmt(r->mb_per_sec),
               r->ok ? "yes" : "NO");
  atable.print(std::cerr);
  std::cerr << "\ncheckpoints: " << ckpt.rounds << " rounds, full "
            << ckpt.full_bytes_total << "B/" << fmt(ckpt.full_seconds)
            << "s vs delta " << ckpt.delta_bytes_total << "B/"
            << fmt(ckpt.delta_seconds) << "s (bytes ratio "
            << fmt(ckpt.bytes_ratio) << ")"
            << (ckpt.ok ? " (ok)" : " (DELTA NOT SMALLER)") << "\n\n";
  Table stable({"crash storm", "model", "n", "t", "instances", "crashes",
                "seconds", "ok"});
  for (const StormRow& r : storms)
    stable.row(r.label, r.model, r.n, r.t, r.instances, r.crashes,
               fmt(r.seconds), r.ok ? "yes" : "NO");
  stable.print(std::cerr);
  std::cerr << "\ntorn sweep: " << torn.offsets << " tears, "
            << torn.recovered << " recovered / " << torn.rejected
            << " rejected" << (torn.ok ? " (ok)" : " (WRONG RECOVERY)")
            << "\n";

  // --- machine-readable JSON (stdout) --------------------------------------
  std::ostringstream out;
  out << "{\n";
  out << "  \"name\": \"bench_durability\",\n";
  out << "  \"headline\": ";
  json_append(out, mem_row, /*gated=*/true);
  out << ",\n";
  out << "  \"disk\": ";
  json_append(out, disk_row, /*gated=*/false);
  out << ",\n";
  out << "  \"checkpoints\": {\"n\": " << ckpt.n << ", \"t\": " << ckpt.t
      << ", \"rounds\": " << ckpt.rounds
      << ", \"full_bytes\": " << ckpt.full_bytes_total
      << ", \"delta_bytes\": " << ckpt.delta_bytes_total
      << ", \"full_seconds\": " << fmt(ckpt.full_seconds)
      << ", \"delta_seconds\": " << fmt(ckpt.delta_seconds)
      << ", \"bytes_ratio\": " << fmt(ckpt.bytes_ratio)
      << ", \"ok\": " << (ckpt.ok ? "true" : "false") << "},\n";
  out << "  \"crash_storms\": [\n";
  for (std::size_t i = 0; i < storms.size(); ++i) {
    json_storm(out, storms[i], "    ");
    out << (i + 1 < storms.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"torn_sweep\": {\"offsets\": " << torn.offsets
      << ", \"recovered\": " << torn.recovered
      << ", \"rejected\": " << torn.rejected
      << ", \"seconds\": " << fmt(torn.seconds)
      << ", \"ok\": " << (torn.ok ? "true" : "false") << "}\n";
  out << "}\n";
  std::cout << out.str();

  // --- self-gates ----------------------------------------------------------
  bool failed = false;
  if (!mem_row.ok) {
    std::cerr << "FAIL: journal_append_mem did not recover every record\n";
    failed = true;
  }
  if (!disk_row.ok) {
    std::cerr << "FAIL: journal_append_disk did not recover every record\n";
    failed = true;
  }
  if (!ckpt.ok) {
    std::cerr << "FAIL: delta checkpoints are not smaller than full ones\n";
    failed = true;
  }
  for (const StormRow& r : storms)
    if (!r.ok) {
      std::cerr << "FAIL: " << r.label
                << ": records_equal=" << r.records_equal
                << " traces_ok=" << r.traces_ok << " crashes=" << r.crashes
                << "\n";
      failed = true;
    }
  if (!torn.ok) {
    std::cerr << "FAIL: torn sweep saw a wrong recovery ("
              << torn.recovered << " recovered + " << torn.rejected
              << " rejected != " << torn.offsets << " offsets)\n";
    failed = true;
  }
  return failed ? 1 : 0;
}
