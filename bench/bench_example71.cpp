// Example 7.1 — the full-information advantage under coordinated silence.
//
// Paper claim: with n = 20, t = 10, all initial preferences 1, and the ten
// faulty agents sending nothing, the nonfaulty agents decide in round 12
// under P_min and P_basic but already in round 3 under the (optimal) FIP:
// one round to detect the t silent agents, one round to make the detection
// common knowledge.
//
// We reproduce the exact example, then sweep the number of silent faulty
// agents k = 1..t. For k < t the k silent agents are the only hidden-chain
// candidates, so P_basic's counting test and the FIP's Hall-type cond_1 test
// both fire in round k+2 — they coincide exactly. Only at k = t does the
// silent set pin down the entire faulty set, making C_N(t-faulty) available
// and letting the FIP decide in round 3 while P_basic still needs round t+2.
#include <iostream>

#include "bench_util.hpp"

namespace eba::bench {
namespace {

int worst_nonfaulty_round(const RunSummary& s, AgentSet nonfaulty) {
  int worst = 0;
  for (AgentId i : nonfaulty) worst = std::max(worst, s.round_of(i));
  return worst;
}

void run() {
  banner("Example 7.1 — n=20, t=10, all-one preferences, silent faulty agents",
         "Claim: nonfaulty agents decide in round 12 with P_min/P_basic and "
         "in round 3 with the FIP.");

  const int n = 20;
  const int t = 10;

  Table table({"silent faulty k", "P_min round", "P_basic round", "P_fip round",
               "paper (k=t)"});
  for (int k = 1; k <= t; ++k) {
    AgentSet silent;
    for (AgentId i = 0; i < k; ++i) silent.insert(i);
    const auto alpha = silent_agents_pattern(n, silent, t + 3);
    const auto prefs = all_ones(n);
    const RunSummary m = make_min_driver(n, t)(alpha, prefs);
    const RunSummary b = make_basic_driver(n, t)(alpha, prefs);
    const RunSummary f = make_fip_driver(n, t)(alpha, prefs);
    table.row(k, worst_nonfaulty_round(m, alpha.nonfaulty()),
              worst_nonfaulty_round(b, alpha.nonfaulty()),
              worst_nonfaulty_round(f, alpha.nonfaulty()),
              k == t ? "12 / 12 / 3" : "-");
  }
  table.print(std::cout);

  std::cout << "\nThe k = t row is the paper's example: the FIP converts "
               "distributed detection of all\nt faults into common knowledge "
               "one round later and decides immediately, while the\n"
               "limited-information protocols must wait out the hidden-chain "
               "window of t+1 rounds.\n";
}

}  // namespace
}  // namespace eba::bench

int main() {
  eba::bench::run();
  return 0;
}
