// Proposition 8.2 — decision rounds in failure-free runs.
//
// Paper claim:
//  (a) if at least one agent prefers 0, all agents decide by round 2 under
//      P_min, P_basic and the FIP;
//  (b) if all agents prefer 1, P_min decides in round t+2 while P_basic and
//      the FIP decide in round 2.
//
// We sweep n and t, exhaustively covering every preference vector with a 0
// for small n and sampling for larger n, and report the worst (latest)
// decision round over all agents and runs per protocol and case.
#include <iostream>

#include "bench_util.hpp"
#include "stats/rng.hpp"

namespace eba::bench {
namespace {

void run() {
  banner("Proposition 8.2 — failure-free decision rounds",
         "Claim: with a 0 present all protocols finish by round 2; all-ones "
         "runs take round t+2 for P_min\nbut round 2 for P_basic and P_fip.");

  Table table({"n", "t", "case", "P_min worst round", "P_basic worst round",
               "P_fip worst round", "paper"});
  Rng rng(2023);

  for (const int n : {3, 4, 6, 8, 12, 16, 24, 32}) {
    int prev_t = 0;
    for (const int t : {1, n / 3, n - 2}) {
      if (t < 1 || n - t < 2 || t == prev_t) continue;
      prev_t = t;
      const auto alpha = FailurePattern::failure_free(n);
      const auto drivers = paper_drivers(n, t);

      // Case (a): preference vectors containing at least one 0.
      std::vector<std::vector<Value>> with_zero;
      if (n <= 8) {
        for (auto& p : all_preference_vectors(n)) {
          bool has0 = false;
          for (Value v : p) has0 = has0 || v == Value::zero;
          if (has0) with_zero.push_back(std::move(p));
        }
      } else {
        for (int k = 0; k < 32; ++k) {
          auto p = sample_preferences(n, rng);
          p[static_cast<std::size_t>(rng.below(n))] = Value::zero;
          with_zero.push_back(std::move(p));
        }
      }
      std::vector<int> worst_a(3, 0);
      for (const auto& prefs : with_zero) {
        for (std::size_t d = 0; d < drivers.size(); ++d) {
          const RunSummary s = drivers[d].run(alpha, prefs);
          for (AgentId i = 0; i < n; ++i)
            worst_a[d] = std::max(worst_a[d], s.round_of(i));
        }
      }
      table.row(n, t, "exists-0", worst_a[0], worst_a[1], worst_a[2],
                "all <= 2");

      // Case (b): the all-ones run.
      std::vector<int> worst_b(3, 0);
      for (std::size_t d = 0; d < drivers.size(); ++d) {
        const RunSummary s = drivers[d].run(alpha, all_ones(n));
        for (AgentId i = 0; i < n; ++i)
          worst_b[d] = std::max(worst_b[d], s.round_of(i));
      }
      table.row(n, t, "all-ones", worst_b[0], worst_b[1], worst_b[2],
                "t+2 = " + std::to_string(t + 2) + " / 2 / 2");
    }
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace eba::bench

int main() {
  eba::bench::run();
  return 0;
}
