// Proposition 6.1 — the t+2 termination bound.
//
// Paper claim: every implementation of P0 (and P1, Prop 7.3) terminates
// after at most t+1 rounds of message exchange — every agent decides by
// round t+2 — and Validity holds even for faulty agents.
//
// We report, per protocol and (n, t), the worst decision round observed
// over (a) every SO(t) adversary with drops in the first two rounds for
// small shapes (exhaustive) and (b) thousands of sampled adversaries for
// larger shapes, alongside the bound. A "tight" column shows whether some
// run actually reaches the bound (the hidden-chain adversary does).
//
// The exhaustive rows sweep one representative world per (renaming orbit ×
// stabilizer preference class) (failure/orbit_sweep.hpp) and reuse that one
// pass for all three protocols: decision rounds and spec-satisfaction are
// relabeling-invariant, so representative worlds cover the whole
// (pattern × preference) space — "worlds" is what was driven, "covered" the
// unreduced world count the weights certify (= count_adversaries · 2^n),
// which is also what unlocks the n = 6 exhaustive row.
#include <iostream>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "failure/canonical.hpp"
#include "failure/orbit_sweep.hpp"
#include "stats/rng.hpp"

namespace eba::bench {
namespace {

struct Worst {
  int round = 0;
  bool spec_ok = true;
};

void observe(const RunSummary& s, Worst& w) {
  const SpecReport rep = check_eba(s.record);
  w.spec_ok = w.spec_ok && rep.ok_strict();
  for (AgentId i = 0; i < s.n; ++i) w.round = std::max(w.round, s.round_of(i));
}

void run() {
  banner("Proposition 6.1 — termination by round t+2",
         "Claim: all agents decide within t+1 rounds of message exchange; "
         "Validity holds even for faulty agents.");

  Table table({"n", "t", "coverage", "worlds", "covered",
               "P_min worst", "P_basic worst", "P_fip worst", "bound t+2",
               "spec ok"});
  Rng rng(6171);

  // Exhaustive small shapes: one representative-world sweep per shape,
  // reused across all three protocols.
  for (const auto& [n, t] : std::vector<std::pair<int, int>>{
           {3, 1}, {4, 1}, {4, 2}, {5, 1}, {6, 1}}) {
    const EnumerationConfig cfg{.n = n, .t = t, .rounds = 2};
    const auto drivers = paper_drivers(n, t);
    std::vector<Worst> worst(3);
    std::uint64_t worlds = 0;
    const std::uint64_t covered = for_each_representative_world(
        cfg, [&](const FailurePattern& alpha, const std::vector<Value>& p,
                 std::uint64_t) {
          for (std::size_t d = 0; d < drivers.size(); ++d)
            observe(drivers[d].run(alpha, p), worst[d]);
          ++worlds;
          return true;
        });
    EBA_REQUIRE(covered ==
                    count_adversaries(cfg) * (std::uint64_t{1} << cfg.n),
                "representative weights must cover the unreduced space");
    const bool ok =
        worst[0].spec_ok && worst[1].spec_ok && worst[2].spec_ok;
    table.row(n, t, "exhaustive", worlds, covered,
              worst[0].round, worst[1].round, worst[2].round, t + 2,
              ok ? "yes" : "VIOLATED");
  }

  // Sampled larger shapes, seeded with the worst-case hidden chain.
  for (const auto& [n, t, samples] :
       std::vector<std::tuple<int, int, int>>{{6, 2, 2000}, {8, 4, 1000},
                                              {12, 5, 400}, {16, 7, 150},
                                              {24, 10, 40}}) {
    const auto drivers = paper_drivers(n, t);
    std::vector<Worst> worst(3);
    for (int k = 0; k < samples; ++k) {
      const FailurePattern alpha =
          k == 0 ? hidden_chain_pattern(n, t, t + 3)
                 : sample_adversary(n, rng.below(t + 1), t + 2, 0.4, rng);
      const std::vector<Value> prefs =
          k == 0 ? one_zero(n) : sample_preferences(n, rng);
      for (std::size_t d = 0; d < drivers.size(); ++d)
        observe(drivers[d].run(alpha, prefs), worst[d]);
    }
    const bool ok =
        worst[0].spec_ok && worst[1].spec_ok && worst[2].spec_ok;
    table.row(n, t, "sampled", samples, "-", worst[0].round,
              worst[1].round, worst[2].round, t + 2, ok ? "yes" : "VIOLATED");
  }
  table.print(std::cout);
  std::cout << "\nThe hidden-chain adversary (first sample of each sampled "
               "row) makes the bound tight\nfor P_min and P_basic; no run "
               "ever exceeds it.\n";
}

}  // namespace
}  // namespace eba::bench

int main() {
  eba::bench::run();
  return 0;
}
