// Empirical domination (Thm 6.3, Cor 6.7, Cor 7.8).
//
// Optimality is relative to an information exchange: P_min is optimal for
// E_min, P_basic for E_basic, and P_opt for the full-information exchange.
// Across exchanges the comparable notion is domination on corresponding
// runs (same adversary, same preferences). We measure, over sampled runs:
//   * how often P_opt decides strictly earlier than / ties with each
//     limited-information protocol (it must never be later);
//   * how often P_basic strictly beats P_min and vice versa (they are
//     incomparable: each wins somewhere).
#include <iostream>

#include "bench_util.hpp"
#include "stats/rng.hpp"

namespace eba::bench {
namespace {

struct Tally {
  long earlier = 0;
  long tie = 0;
  long later = 0;

  void observe(int lhs_round, int rhs_round) {
    if (lhs_round < rhs_round)
      ++earlier;
    else if (lhs_round == rhs_round)
      ++tie;
    else
      ++later;
  }
  [[nodiscard]] std::string pct(long x, long total) const {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%ld (%.1f%%)", x,
                  100.0 * static_cast<double>(x) / static_cast<double>(total));
    return buf;
  }
  [[nodiscard]] long total() const { return earlier + tie + later; }
};

void run() {
  banner("Empirical domination on corresponding runs",
         "Claim: the optimal FIP P_opt decides no later than P_min/P_basic "
         "for every nonfaulty agent in every run;\nP_min and P_basic are "
         "incomparable across runs.");

  Table table({"n", "t", "pair", "strictly earlier", "tie", "later (MUST be 0)"});
  Rng rng(88);

  for (const auto& [n, t] :
       std::vector<std::pair<int, int>>{{5, 2}, {8, 3}, {10, 4}, {16, 6}}) {
    const auto fip = make_fip_driver(n, t);
    const auto mini = make_min_driver(n, t);
    const auto basic = make_basic_driver(n, t);
    Tally fip_vs_min, fip_vs_basic, basic_vs_min;
    const int samples = n <= 10 ? 400 : 120;
    for (int k = 0; k < samples; ++k) {
      FailurePattern alpha = FailurePattern::failure_free(n);
      std::vector<Value> prefs;
      switch (k % 4) {
        case 0:  // coordinated silence, all ones (Example 7.1 family)
          alpha = silent_agents_pattern(
              n, AgentSet::all(n).minus(AgentSet::all(n - t)), t + 2);
          prefs = all_ones(n);
          break;
        case 1:  // hidden chain
          alpha = hidden_chain_pattern(n, t, t + 3);
          prefs = one_zero(n);
          break;
        case 2:  // failure-free all-ones: P_basic's strict win over P_min
          prefs = all_ones(n);
          break;
        default:  // random
          alpha = sample_adversary(n, rng.below(t + 1), t + 2, 0.35, rng);
          prefs = sample_preferences(n, rng);
      }
      const RunSummary f = fip(alpha, prefs);
      const RunSummary m = mini(alpha, prefs);
      const RunSummary b = basic(alpha, prefs);
      for (AgentId i : alpha.nonfaulty()) {
        fip_vs_min.observe(f.round_of(i), m.round_of(i));
        fip_vs_basic.observe(f.round_of(i), b.round_of(i));
        basic_vs_min.observe(b.round_of(i), m.round_of(i));
      }
    }
    const long tot = fip_vs_min.total();
    table.row(n, t, "P_opt vs P_min", fip_vs_min.pct(fip_vs_min.earlier, tot),
              fip_vs_min.pct(fip_vs_min.tie, tot), fip_vs_min.later);
    table.row(n, t, "P_opt vs P_basic",
              fip_vs_basic.pct(fip_vs_basic.earlier, tot),
              fip_vs_basic.pct(fip_vs_basic.tie, tot), fip_vs_basic.later);
    table.row(n, t, "P_basic vs P_min",
              basic_vs_min.pct(basic_vs_min.earlier, tot),
              basic_vs_min.pct(basic_vs_min.tie, tot),
              basic_vs_min.pct(basic_vs_min.later, tot) + " (allowed)");
  }
  table.print(std::cout);
  std::cout << "\n'later' for P_opt is the falsifiable claim: a single "
               "nonzero entry would contradict Cor 7.8.\n";
}

}  // namespace
}  // namespace eba::bench

int main() {
  eba::bench::run();
  return 0;
}
