// Protocol-zoo comparison matrix (BENCH_zoo.json).
//
// Five shipped protocols — P_min, P_basic, P_opt, P_es (early stopping) and
// P_auth (authenticated per-destination reports) — run on the same realized-
// fault family: f silent faulty agents with unanimous preference 1, f swept
// 0..t at n = 8, 16, 32. The matrix reads off decision rounds, message and
// bit totals and per-cell wall time, and self-checks three properties:
//
//   * spec_ok     — every run passes the strict EBA spec (Prop 6.1 bound);
//   * bound_ok    — the early stoppers decide within min(f+2, t+2) rounds
//                   (decided time min(f+1, t+1); see docs/PROTOCOL_ZOO.md
//                   on the numbering);
//   * dominate_ok — per world and per nonfaulty agent, P_opt decides no
//                   later than P_es, and P_es no later than P_basic.
//
// The interesting shape: at f < t every realized-fault-aware protocol
// decides in round f+2 while P_min sits at t+2; at f = t the budget test
// drops P_es (and P_opt) to round 3 while P_basic pays t+2.
//
// Output: machine-readable JSON on stdout (written to BENCH_zoo.json by
// ci/run_benches.cmake); human-readable table on stderr. Exit code is
// nonzero when any self-check fails; ci/check_bench.py additionally gates
// the headline wall time against the committed baseline and every boolean
// bit in the file. `--smoke` restricts to n = 8 for ci/verify.sh.
#include <algorithm>
#include <chrono>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/spec.hpp"
#include "failure/generators.hpp"
#include "sim/drivers.hpp"
#include "stats/table.hpp"

namespace eba::bench {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Row {
  std::string protocol;
  int n = 0;
  int t = 0;
  int f = 0;
  int round = 0;  ///< last nonfaulty decision round
  std::size_t messages = 0;
  std::size_t bits = 0;
  double seconds = 0;
  bool spec_ok = false;
  bool bound_ok = true;  ///< early-stop rows only; vacuously true elsewhere
};

struct Matrix {
  std::vector<Row> rows;
  bool spec_ok = true;
  bool bounds_ok = true;
  bool domination_ok = true;
};

// The five-protocol comparison at one (n, t), f swept 0..t on the silent-
// agents family with unanimous 1 preferences.
void sweep_shape(Matrix& m, int n, int t) {
  const std::vector<std::pair<std::string, RunDriver>> zoo = {
      {"P_min", make_min_driver(n, t)},
      {"P_basic", make_basic_driver(n, t)},
      {"P_opt", make_fip_driver(n, t)},
      {"P_es", make_early_stop_driver(n, t)},
      {"P_auth", make_auth_driver(n, t)},
  };
  const std::vector<Value> ones(static_cast<std::size_t>(n), Value::one);
  for (int f = 0; f <= t; ++f) {
    AgentSet silent;
    for (AgentId i = 0; i < f; ++i) silent.insert(i);
    const FailurePattern alpha = silent_agents_pattern(n, silent, t + 3);

    // Per-agent decision rounds of this world's P_opt/P_es/P_basic runs,
    // for the domination bit.
    std::vector<std::vector<int>> rounds_by_protocol(zoo.size());
    for (std::size_t k = 0; k < zoo.size(); ++k) {
      Row row;
      row.protocol = zoo[k].first;
      row.n = n;
      row.t = t;
      row.f = f;
      const auto start = Clock::now();
      const RunSummary s = zoo[k].second(alpha, ones);
      row.seconds = seconds_since(start);
      row.round = s.last_nonfaulty_round();
      row.messages = s.messages_sent;
      row.bits = s.bits_sent;
      row.spec_ok = check_eba(s.record).ok_strict();
      if (row.protocol == "P_es" || row.protocol == "P_auth") {
        const int bound = std::min(f + 2, t + 2);
        for (AgentId i = 0; i < n; ++i) {
          const int r = s.round_of(i);
          if (r <= 0 || r > bound) row.bound_ok = false;
        }
      }
      auto& per_agent = rounds_by_protocol[k];
      for (AgentId i = 0; i < n; ++i) per_agent.push_back(s.round_of(i));
      m.spec_ok = m.spec_ok && row.spec_ok;
      m.bounds_ok = m.bounds_ok && row.bound_ok;
      m.rows.push_back(std::move(row));
    }

    // Domination: P_opt <= P_es <= P_basic per nonfaulty agent. (Indices
    // into `zoo`: 1 = P_basic, 2 = P_opt, 3 = P_es.)
    for (AgentId i : alpha.nonfaulty()) {
      const int basic = rounds_by_protocol[1][static_cast<std::size_t>(i)];
      const int opt = rounds_by_protocol[2][static_cast<std::size_t>(i)];
      const int es = rounds_by_protocol[3][static_cast<std::size_t>(i)];
      if (!(opt <= es && es <= basic)) m.domination_ok = false;
    }
  }
}

int run(bool smoke) {
  const auto start = Clock::now();
  Matrix m;
  sweep_shape(m, 8, 3);
  if (!smoke) {
    sweep_shape(m, 16, 4);
    sweep_shape(m, 32, 4);
  }
  const double total_seconds = seconds_since(start);

  Table table({"protocol", "n", "t", "f", "round", "messages", "bits", "ok"});
  for (const Row& r : m.rows)
    table.add_row({r.protocol, std::to_string(r.n), std::to_string(r.t),
                   std::to_string(r.f), std::to_string(r.round),
                   std::to_string(r.messages), std::to_string(r.bits),
                   r.spec_ok && r.bound_ok ? "yes" : "NO"});
  table.print(std::cerr);
  std::cerr << "matrix: " << m.rows.size() << " rows in " << total_seconds
            << "s; spec " << (m.spec_ok ? "ok" : "FAIL") << ", bounds "
            << (m.bounds_ok ? "ok" : "FAIL") << ", domination "
            << (m.domination_ok ? "ok" : "FAIL") << "\n";

  std::ostringstream out;
  out << "{\n  \"headline\": {\"seconds\": " << total_seconds
      << ", \"rows\": " << m.rows.size() << ", \"smoke\": "
      << (smoke ? "true" : "false")
      << ", \"spec_ok\": " << (m.spec_ok ? "true" : "false")
      << ", \"bounds_ok\": " << (m.bounds_ok ? "true" : "false")
      << ", \"domination_ok\": " << (m.domination_ok ? "true" : "false")
      << "},\n  \"matrix\": [\n";
  for (std::size_t k = 0; k < m.rows.size(); ++k) {
    const Row& r = m.rows[k];
    out << "    {\"protocol\": \"" << r.protocol << "\", \"n\": " << r.n
        << ", \"t\": " << r.t << ", \"f\": " << r.f
        << ", \"round\": " << r.round << ", \"messages\": " << r.messages
        << ", \"bits\": " << r.bits << ", \"seconds\": " << r.seconds
        << ", \"spec_ok\": " << (r.spec_ok ? "true" : "false")
        << ", \"bound_ok\": " << (r.bound_ok ? "true" : "false") << "}"
        << (k + 1 < m.rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << out.str();

  const bool ok = m.spec_ok && m.bounds_ok && m.domination_ok;
  if (!ok) std::cerr << "FAIL: a zoo self-check failed\n";
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace eba::bench

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  return eba::bench::run(smoke);
}
