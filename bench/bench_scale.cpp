// Verification-at-scale benchmark (BENCH_scale.json) — the orbit-level
// run-reuse engine (sim/relabel.hpp, failure/orbit_sweep.hpp,
// kripke/system.hpp's RunReuse::relabel).
//
// Two families of points:
//
//   * reuse — add_all_runs with simulate-once-relabel-everywhere against
//     full re-simulation on the same context. The headline (γ_fip n = 8,
//     t = 1, drops in round 1) gates a >= 5x wall-time speedup; every row
//     pins the relabel path bit-identical to re-simulation: the same runs
//     in the same order (decisions included) and the same finalized Kripke
//     partition. "sims" is the number of simulations the relabel path
//     actually performs — one per (orbit × stabilizer preference class) —
//     versus "runs" for the re-simulation baseline.
//
//   * spec_scale — exhaustive EBA spec sweeps that only the
//     representative-world quotient makes affordable: P_opt on every
//     SO(1) adversary at n = 7 and n = 8 (drops in the first two rounds)
//     and P_opt_go on every GO(2) adversary at n = 5, with the world
//     weights certified to cover the unreduced (pattern × preference)
//     space.
//
// Output: machine-readable JSON on stdout (written verbatim to
// BENCH_scale.json by ci/run_benches.cmake); human-readable table on
// stderr. Exit code is nonzero when any self-check fails; ci/check_bench.py
// additionally gates the headline wall time against the committed baseline.
#include <chrono>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include "action/p_min.hpp"
#include "action/p_opt.hpp"
#include "action/p_opt_go.hpp"
#include "core/spec.hpp"
#include "exchange/fip.hpp"
#include "exchange/min.hpp"
#include "failure/canonical.hpp"
#include "failure/generators.hpp"
#include "failure/orbit_sweep.hpp"
#include "kripke/system.hpp"
#include "sim/drivers.hpp"
#include "stats/table.hpp"

namespace eba::bench {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct ReusePoint {
  std::string label;
  std::uint64_t runs = 0;           ///< materialized runs (both paths)
  std::uint64_t sims = 0;           ///< simulations the relabel path performs
  double resim_seconds = 0;
  double seconds = 0;               ///< relabel-path wall time
  double speedup = 0;
  bool decisions_match = true;
  bool knowledge_identical = true;
  [[nodiscard]] bool identical_to_resimulation() const {
    return decisions_match && knowledge_identical;
  }
};

/// add_all_runs under both reuse policies, pinned identical: same run list
/// (decisions compared explicitly), same finalized partition. Best-of-
/// `repeats` wall time per policy.
template <class X, class P>
ReusePoint reuse_point(const std::string& label, const X& x, const P& act,
                       int t, int horizon, const EnumerationConfig& cfg,
                       int repeats) {
  ReusePoint out;
  out.label = label;
  for_each_representative_world(
      cfg,
      [&](const FailurePattern&, const std::vector<Value>&, std::uint64_t) {
        ++out.sims;
        return true;
      });

  InterpretedSystem<X, P> resim(x, act, t, horizon);
  for (int r = 0; r < repeats; ++r) {
    InterpretedSystem<X, P> sys(x, act, t, horizon);
    const auto start = Clock::now();
    sys.add_all_runs(cfg, {.reuse = RunReuse::resimulate});
    const double s = seconds_since(start);
    if (r == 0 || s < out.resim_seconds) out.resim_seconds = s;
    if (r + 1 == repeats) resim = std::move(sys);
  }
  InterpretedSystem<X, P> relab(x, act, t, horizon);
  for (int r = 0; r < repeats; ++r) {
    InterpretedSystem<X, P> sys(x, act, t, horizon);
    const auto start = Clock::now();
    sys.add_all_runs(cfg, {.reuse = RunReuse::relabel});
    const double s = seconds_since(start);
    if (r == 0 || s < out.seconds) out.seconds = s;
    if (r + 1 == repeats) relab = std::move(sys);
  }
  out.speedup = out.seconds > 0 ? out.resim_seconds / out.seconds : 0;

  out.runs = static_cast<std::uint64_t>(resim.num_runs());
  if (resim.num_runs() != relab.num_runs()) out.decisions_match = false;
  for (int r = 0; out.decisions_match && r < resim.num_runs(); ++r) {
    if (!(resim.run(r) == relab.run(r))) out.decisions_match = false;
    for (AgentId i = 0; i < cfg.n; ++i)
      if (resim.run(r).record.decision(i) != relab.run(r).record.decision(i))
        out.decisions_match = false;
  }
  resim.finalize();
  relab.finalize();
  out.knowledge_identical = relab.same_partition(resim);
  return out;
}

struct SpecScalePoint {
  std::string label;
  std::uint64_t worlds = 0;   ///< representative worlds driven
  std::uint64_t covered = 0;  ///< Σ weights
  std::uint64_t space = 0;    ///< count_adversaries · 2^n
  double seconds = 0;
  bool spec_ok = true;
};

/// Exhaustive representative-world spec sweep of one driver over cfg.
SpecScalePoint spec_scale_point(const std::string& label,
                                const EnumerationConfig& cfg,
                                const RunDriver& drive) {
  SpecScalePoint out;
  out.label = label;
  out.space = count_adversaries(cfg) * (std::uint64_t{1} << cfg.n);
  const auto start = Clock::now();
  out.covered = for_each_representative_world(
      cfg, [&](const FailurePattern& alpha, const std::vector<Value>& p,
               std::uint64_t) {
        const RunSummary s = drive(alpha, p);
        ++out.worlds;
        if (!check_eba(s.record).ok_strict()) out.spec_ok = false;
        return out.spec_ok;
      });
  out.seconds = seconds_since(start);
  if (out.covered != out.space) out.spec_ok = false;
  return out;
}

int run() {
  constexpr double kMinSpeedup = 5.0;

  std::vector<ReusePoint> reuse;
  // Headline: the γ_fip context at a scale the re-simulating baseline can
  // still complete in bench time (260k runs). Simulation cost grows faster
  // with n than run size does, so this is also where reuse pays most.
  reuse.push_back(reuse_point("gamma_fip n=8 t=1 r=1", FipExchange(8),
                              POpt(8, 1), 1, 3,
                              EnumerationConfig{.n = 8, .t = 1, .rounds = 1},
                              2));
  // Identity rows: a mid-size γ_fip point plus other exchanges and the GO
  // model, all pinned bit-identical too.
  reuse.push_back(reuse_point("gamma_fip n=6 t=1 r=1", FipExchange(6),
                              POpt(6, 1), 1, 3,
                              EnumerationConfig{.n = 6, .t = 1, .rounds = 1},
                              2));
  reuse.push_back(reuse_point("gamma_min n=4 t=2 r=1", MinExchange(4),
                              PMin(4, 2), 2, 4,
                              EnumerationConfig{.n = 4, .t = 2, .rounds = 1},
                              3));
  reuse.push_back(reuse_point("gamma_fip_go n=3 t=1 r=1", FipExchange(3),
                              POptGo(3, 1), 1, 3, go_config(3, 1, 1), 3));
  const ReusePoint& headline = reuse.front();

  std::vector<SpecScalePoint> spec;
  spec.push_back(spec_scale_point("p_opt so n=7 t=1 r=2",
                                  {.n = 7, .t = 1, .rounds = 2},
                                  make_fip_driver(7, 1)));
  spec.push_back(spec_scale_point("p_opt so n=8 t=1 r=2",
                                  {.n = 8, .t = 1, .rounds = 2},
                                  make_fip_driver(8, 1)));
  spec.push_back(spec_scale_point("p_opt_go go n=5 t=2 r=1",
                                  go_config(5, 2, 1),
                                  make_go_driver(5, 2)));

  // Human-readable report (stderr).
  std::cerr << "=== bench_scale: orbit-level run reuse "
               "(simulate once, relabel everywhere) ===\n\n";
  Table rtable({"reuse point", "runs", "sims", "resim s", "relabel s",
                "speedup", "identical"});
  for (const auto& p : reuse)
    rtable.row(p.label, p.runs, p.sims,
               std::to_string(p.resim_seconds).substr(0, 8),
               std::to_string(p.seconds).substr(0, 8),
               std::to_string(p.speedup).substr(0, 6),
               p.identical_to_resimulation() ? "yes" : "NO");
  rtable.print(std::cerr);
  std::cerr << "\n";
  Table stable({"spec sweep", "worlds", "covered", "space", "seconds", "ok"});
  for (const auto& p : spec)
    stable.row(p.label, p.worlds, p.covered, p.space,
               std::to_string(p.seconds).substr(0, 8),
               p.spec_ok ? "yes" : "NO");
  stable.print(std::cerr);

  // Machine-readable report (stdout).
  const auto json_reuse = [](std::ostringstream& out, const ReusePoint& p) {
    out << "{\"label\": \"" << p.label << "\", \"runs\": " << p.runs
        << ", \"sims\": " << p.sims
        << ", \"resim_seconds\": " << p.resim_seconds
        << ", \"seconds\": " << p.seconds << ", \"speedup\": " << p.speedup
        << ", \"decisions_match\": " << (p.decisions_match ? "true" : "false")
        << ", \"knowledge_identical\": "
        << (p.knowledge_identical ? "true" : "false")
        << ", \"identical_to_resimulation\": "
        << (p.identical_to_resimulation() ? "true" : "false") << "}";
  };
  const auto json_spec = [](std::ostringstream& out, const SpecScalePoint& p) {
    out << "{\"label\": \"" << p.label << "\", \"worlds\": " << p.worlds
        << ", \"covered\": " << p.covered << ", \"space\": " << p.space
        << ", \"seconds\": " << p.seconds
        << ", \"spec_ok\": " << (p.spec_ok ? "true" : "false") << "}";
  };
  std::ostringstream out;
  out << "{\n  \"headline\": ";
  json_reuse(out, headline);
  out << ",\n  \"min_speedup\": " << kMinSpeedup;
  out << ",\n  \"reuse\": [\n";
  for (std::size_t i = 0; i < reuse.size(); ++i) {
    out << "    ";
    json_reuse(out, reuse[i]);
    out << (i + 1 < reuse.size() ? ",\n" : "\n");
  }
  out << "  ],\n  \"spec_scale\": [\n";
  for (std::size_t i = 0; i < spec.size(); ++i) {
    out << "    ";
    json_spec(out, spec[i]);
    out << (i + 1 < spec.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  std::cout << out.str();

  bool ok = true;
  if (headline.speedup < kMinSpeedup) {
    std::cerr << "\nFAIL: headline relabel speedup below " << kMinSpeedup
              << "x\n";
    ok = false;
  }
  for (const auto& p : reuse)
    if (!p.identical_to_resimulation()) {
      std::cerr << "\nFAIL: " << p.label
                << " relabel path diverges from re-simulation\n";
      ok = false;
    }
  for (const auto& p : spec)
    if (!p.spec_ok) {
      std::cerr << "\nFAIL: " << p.label << " spec sweep failed\n";
      ok = false;
    }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace eba::bench

int main() {
#if defined(__GLIBC__)
  // The headline point builds and tears down multi-GB run sets back to back;
  // with default glibc settings every teardown trims the heap and the next
  // build re-faults the pages, so both paths measure the kernel instead of
  // the algorithm. Keep freed memory in the arena for the bench's lifetime.
  mallopt(M_TRIM_THRESHOLD, std::numeric_limits<int>::max());
  mallopt(M_MMAP_THRESHOLD, std::numeric_limits<int>::max());
#endif
  return eba::bench::run();
}
