// Aggregate-throughput benchmark for the instance-oriented run engine
// (BENCH_throughput.json).
//
// Sweeps (instances × n × failure density × protocol) through the
// worker-pool workload driver (net/workload.hpp): every instance is one
// Stepper + one BusPool slot, all instances are concurrently in flight, and
// a fixed worker pool multiplexes them. Reports aggregate decided
// instances per second and p50/p99 admission-to-completion decision
// latency (stats/agg percentiles), plus the same workload pushed through
// the legacy sequential thread-per-agent `run_cluster_thread_per_agent`
// as the baseline the worker pool is measured against.
//
// Output: machine-readable JSON on stdout (written verbatim to
// BENCH_throughput.json by ci/run_benches.cmake and gated by
// ci/check_bench.py on the headline decided/sec); human-readable table on
// stderr.
#include <chrono>
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "action/p_basic.hpp"
#include "action/p_min.hpp"
#include "action/p_opt.hpp"
#include "exchange/basic.hpp"
#include "exchange/fip.hpp"
#include "exchange/min.hpp"
#include "failure/generators.hpp"
#include "net/cluster.hpp"
#include "net/workload.hpp"
#include "stats/agg.hpp"
#include "stats/rng.hpp"
#include "stats/table.hpp"

namespace eba::bench {
namespace {

struct PointResult {
  std::string protocol;
  int instances = 0;
  int n = 0;
  int t = 0;
  double density = 0;
  int workers = 0;
  int completed = 0;  ///< instances in which every nonfaulty agent decided
  double wall_seconds = 0;
  double decided_per_sec = 0;
  double p50_latency_us = 0;
  double p99_latency_us = 0;
  double mean_rounds = 0;
  Aggregate latency;  ///< per-instance latencies, for per-protocol merges
};

std::vector<InstanceSpec> make_specs(int instances, int n, int t,
                                     double density, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<InstanceSpec> specs;
  specs.reserve(static_cast<std::size_t>(instances));
  for (int k = 0; k < instances; ++k) {
    FailurePattern alpha = density > 0.0
                               ? sample_adversary(n, t, t + 2, density, rng)
                               : FailurePattern::failure_free(n);
    specs.push_back({std::move(alpha), sample_preferences(n, rng)});
  }
  return specs;
}

bool all_nonfaulty_decided(const RunRecord& record) {
  for (AgentId i : record.nonfaulty)
    if (!record.decision(i)) return false;
  return true;
}

template <class X, class P>
PointResult run_point(const X& x, const P& p, const std::string& protocol,
                      int instances, int t, double density,
                      std::uint64_t seed, int workers = 0) {
  const auto specs = make_specs(instances, x.n(), t, density, seed);
  WorkloadOptions opt;
  opt.workers = workers;
  const auto result = run_workload(x, p, std::span(specs), t, opt);

  PointResult point;
  point.protocol = protocol;
  point.instances = instances;
  point.n = x.n();
  point.t = t;
  point.density = density;
  point.workers = result.workers;
  point.wall_seconds = result.wall_seconds;
  double rounds = 0;
  for (std::size_t k = 0; k < result.instances.size(); ++k) {
    const RunRecord& record = result.instances[k].record;
    rounds += record.rounds;
    if (all_nonfaulty_decided(record)) {
      point.completed += 1;
      point.latency.add(result.latency_us[k]);
    }
  }
  point.decided_per_sec =
      point.wall_seconds > 0 ? point.completed / point.wall_seconds : 0;
  point.mean_rounds = instances > 0 ? rounds / instances : 0;
  if (point.latency.count() > 0) {
    point.p50_latency_us = point.latency.percentile(0.5);
    point.p99_latency_us = point.latency.percentile(0.99);
  }
  return point;
}

/// The seed's execution model, run sequentially: n threads spawned per
/// instance, one instance at a time. Same specs as the worker-pool point
/// it is compared against.
template <class X, class P>
PointResult run_thread_per_agent_baseline(const X& x, const P& p,
                                          const std::string& protocol,
                                          int instances, int t,
                                          double density,
                                          std::uint64_t seed) {
  const auto specs = make_specs(instances, x.n(), t, density, seed);
  PointResult point;
  point.protocol = protocol;
  point.instances = instances;
  point.n = x.n();
  point.t = t;
  point.density = density;
  point.workers = x.n();  // n agent threads, one instance at a time

  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  double rounds = 0;
  for (const InstanceSpec& spec : specs) {
    const auto res =
        run_cluster_thread_per_agent(x, p, spec.alpha, spec.inits, t);
    rounds += res.record.rounds;
    if (all_nonfaulty_decided(res.record)) {
      point.completed += 1;
      point.latency.add(
          std::chrono::duration<double, std::micro>(Clock::now() - start)
              .count());
    }
  }
  point.wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  point.decided_per_sec =
      point.wall_seconds > 0 ? point.completed / point.wall_seconds : 0;
  point.mean_rounds = instances > 0 ? rounds / instances : 0;
  if (point.latency.count() > 0) {
    point.p50_latency_us = point.latency.percentile(0.5);
    point.p99_latency_us = point.latency.percentile(0.99);
  }
  return point;
}

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

void json_point(std::ostringstream& out, const PointResult& p,
                const char* indent) {
  out << indent << "{\"protocol\": \"" << p.protocol
      << "\", \"instances\": " << p.instances << ", \"n\": " << p.n
      << ", \"t\": " << p.t << ", \"failure_density\": " << fmt(p.density)
      << ", \"workers\": " << p.workers
      << ", \"completed\": " << p.completed
      << ", \"wall_seconds\": " << fmt(p.wall_seconds)
      << ", \"decided_per_sec\": " << fmt(p.decided_per_sec)
      << ", \"p50_latency_us\": " << fmt(p.p50_latency_us)
      << ", \"p99_latency_us\": " << fmt(p.p99_latency_us)
      << ", \"mean_rounds\": " << fmt(p.mean_rounds) << "}";
}

}  // namespace
}  // namespace eba::bench

int main() {
  using namespace eba;
  using namespace eba::bench;

  const int workers =
      static_cast<int>(std::thread::hardware_concurrency());

  // --- sweep: instances × n × failure density × protocol ------------------
  std::vector<PointResult> sweep;
  for (double density : {0.0, 0.3}) {
    sweep.push_back(run_point(MinExchange(8), PMin(8, 2), "P_min", 1024, 2,
                              density, 11));
    sweep.push_back(run_point(BasicExchange(8), PBasic(8, 2), "P_basic", 1024,
                              2, density, 12));
    sweep.push_back(run_point(FipExchange(8), POpt(8, 2), "P_opt", 256, 2,
                              density, 13));
    sweep.push_back(run_point(FipExchange(8), POpt(8, 2), "P_opt", 1024, 2,
                              density, 14));
  }
  // Scale axes: smaller/larger agent counts under load.
  sweep.push_back(
      run_point(FipExchange(4), POpt(4, 1), "P_opt", 2048, 1, 0.3, 15));
  sweep.push_back(
      run_point(FipExchange(16), POpt(16, 4), "P_opt", 128, 4, 0.3, 16));

  // --- headline: ≥1000 concurrent P_opt instances under failures ----------
  const PointResult headline =
      run_point(FipExchange(8), POpt(8, 2), "P_opt", 1024, 2, 0.3, 17);

  // --- worker scaling: the headline point at pinned worker counts ---------
  // The workers:1 row is the blind spot the scaling gate closes: every
  // other point runs at hardware concurrency, so a scheduler regression
  // that only bites multi-worker configurations (or a pool that got SLOWER
  // than single-threaded) would otherwise go unmeasured. check_bench.py
  // gates multi-worker throughput against the workers:1 row (with a small
  // tolerance — single-core CI runners cannot beat 1 worker).
  std::vector<PointResult> scaling;
  for (int w : {1, 2, 4})
    scaling.push_back(
        run_point(FipExchange(8), POpt(8, 2), "P_opt", 256, 2, 0.3, 19, w));

  // --- baseline: the seed's sequential thread-per-agent model -------------
  // Both engines run the same 256 specs three times; each side keeps its
  // best run (the usual benchmarking defense against scheduler noise —
  // these points are only tens of milliseconds long).
  const std::uint64_t kBaselineSeed = 18;
  PointResult pooled_at_baseline;
  PointResult baseline;
  for (int rep = 0; rep < 3; ++rep) {
    PointResult pooled = run_point(FipExchange(8), POpt(8, 2), "P_opt", 256,
                                   2, 0.3, kBaselineSeed);
    if (pooled.decided_per_sec > pooled_at_baseline.decided_per_sec)
      pooled_at_baseline = std::move(pooled);
    PointResult threaded = run_thread_per_agent_baseline(
        FipExchange(8), POpt(8, 2), "P_opt", 256, 2, 0.3, kBaselineSeed);
    if (threaded.decided_per_sec > baseline.decided_per_sec)
      baseline = std::move(threaded);
  }
  const double speedup = baseline.decided_per_sec > 0
                             ? pooled_at_baseline.decided_per_sec /
                                   baseline.decided_per_sec
                             : 0;

  // --- per-protocol latency summaries (stats/agg merge) -------------------
  struct ProtocolSummary {
    std::string protocol;
    Aggregate latency;
  };
  std::vector<ProtocolSummary> summaries;
  for (const PointResult& p : sweep) {
    ProtocolSummary* s = nullptr;
    for (ProtocolSummary& existing : summaries)
      if (existing.protocol == p.protocol) s = &existing;
    if (!s) {
      summaries.push_back({p.protocol, {}});
      s = &summaries.back();
    }
    s->latency.merge(p.latency);
  }

  // --- human-readable report (stderr) -------------------------------------
  std::cerr << "=== bench_throughput: aggregate decided-instances/sec over "
               "the worker-pool workload driver ===\n\n";
  Table table({"protocol", "instances", "n", "density", "decided/s",
               "p50 us", "p99 us", "rounds"});
  for (const PointResult& p : sweep)
    table.row(p.protocol, p.instances, p.n, p.density, p.decided_per_sec,
              p.p50_latency_us, p.p99_latency_us, p.mean_rounds);
  table.print(std::cerr);
  std::cerr << "\nheadline: " << headline.completed << "/"
            << headline.instances
            << " concurrent P_opt instances decided, "
            << fmt(headline.decided_per_sec) << " decided/s over "
            << headline.workers << " workers\n";
  std::cerr << "baseline (sequential thread-per-agent run_cluster, "
            << baseline.instances << " instances, n=" << baseline.n
            << "): " << fmt(baseline.decided_per_sec)
            << " decided/s; worker pool is " << fmt(speedup)
            << "x faster on the same specs\n";
  std::cerr << "worker scaling (256 P_opt instances): ";
  for (const PointResult& p : scaling)
    std::cerr << p.workers << "w=" << fmt(p.decided_per_sec) << "/s ";
  std::cerr << "\n";

  // --- machine-readable JSON (stdout) -------------------------------------
  std::ostringstream out;
  out << "{\n";
  out << "  \"name\": \"bench_throughput\",\n";
  out << "  \"workers\": " << workers << ",\n";
  out << "  \"concurrent_instances\": " << headline.instances << ",\n";
  out << "  \"headline\": ";
  json_point(out, headline, "");
  out << ",\n";
  out << "  \"workload_at_baseline_point\": ";
  json_point(out, pooled_at_baseline, "");
  out << ",\n";
  out << "  \"baseline_thread_per_agent\": ";
  json_point(out, baseline, "");
  out << ",\n";
  out << "  \"speedup_vs_thread_per_agent\": " << fmt(speedup) << ",\n";
  out << "  \"worker_scaling\": [\n";
  for (std::size_t i = 0; i < scaling.size(); ++i) {
    json_point(out, scaling[i], "    ");
    out << (i + 1 < scaling.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"protocol_latency\": [\n";
  for (std::size_t i = 0; i < summaries.size(); ++i) {
    const auto& s = summaries[i];
    out << "    {\"protocol\": \"" << s.protocol
        << "\", \"count\": " << s.latency.count() << ", \"p50_latency_us\": "
        << fmt(s.latency.count() ? s.latency.percentile(0.5) : 0)
        << ", \"p99_latency_us\": "
        << fmt(s.latency.count() ? s.latency.percentile(0.99) : 0) << "}"
        << (i + 1 < summaries.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"sweep\": [\n";
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    json_point(out, sweep[i], "    ");
    out << (i + 1 < sweep.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
  std::cout << out.str();

  // The bench fails loudly if the engine stopped deciding or the pool lost
  // its edge: these are the acceptance invariants CI relies on.
  if (headline.completed < 1000) {
    std::cerr << "FAIL: fewer than 1000 concurrent instances completed\n";
    return 1;
  }
  if (speedup < 5.0) {
    std::cerr << "FAIL: worker pool < 5x sequential thread-per-agent\n";
    return 1;
  }
  return 0;
}
