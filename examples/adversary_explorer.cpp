// Adversary explorer: searches the SO(t) adversary space for the failure
// patterns that delay each protocol the most, and prints decision-round
// histograms.
//
//   $ ./adversary_explorer [n] [t] [samples] [seed]
//
// Defaults: n=10, t=4, samples=2000, seed=7. Exhaustive over preference
// regimes (all-ones, one-zero, random), sampled over adversaries, plus the
// canned worst cases (coordinated silence, hidden chain, crashes).
#include <cstdlib>
#include <iostream>

#include "core/spec.hpp"
#include "failure/generators.hpp"
#include "sim/drivers.hpp"
#include "stats/agg.hpp"
#include "stats/rng.hpp"
#include "stats/table.hpp"

namespace {

eba::FailurePattern hidden_chain(int n, int t, int horizon) {
  eba::AgentSet faulty;
  for (eba::AgentId k = 0; k < t; ++k) faulty.insert(k);
  eba::FailurePattern p(n, faulty.complement(n));
  for (eba::AgentId k = 0; k < t; ++k)
    for (int m = 0; m < horizon; ++m)
      for (eba::AgentId to = 0; to < n; ++to) {
        if (to == k || (m == k && to == k + 1)) continue;
        p.drop(m, k, to);
      }
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace eba;
  const int n = argc > 1 ? std::atoi(argv[1]) : 10;
  const int t = argc > 2 ? std::atoi(argv[2]) : 4;
  const int samples = argc > 3 ? std::atoi(argv[3]) : 2000;
  const std::uint64_t seed = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 7;
  if (n < 2 || t < 0 || n - t < 2 || n > kMaxAgents) {
    std::cerr << "usage: adversary_explorer [n] [t<=n-2] [samples] [seed]\n";
    return 2;
  }

  std::cout << "exploring SO(" << t << ") adversaries for n=" << n << ", "
            << samples << " samples, seed " << seed << "\n\n";

  Rng rng(seed);
  const auto drivers = paper_drivers(n, t);
  std::vector<IntHistogram> hist(drivers.size());
  std::vector<int> worst(drivers.size(), 0);
  std::vector<std::string> worst_desc(drivers.size(), "-");
  long spec_violations = 0;

  auto consider = [&](const FailurePattern& alpha,
                      const std::vector<Value>& prefs,
                      const std::string& desc) {
    for (std::size_t d = 0; d < drivers.size(); ++d) {
      const RunSummary s = drivers[d].run(alpha, prefs);
      if (!check_eba(s.record).ok()) ++spec_violations;
      for (AgentId i : alpha.nonfaulty()) {
        hist[d].add(s.round_of(i));
        if (s.round_of(i) > worst[d]) {
          worst[d] = s.round_of(i);
          worst_desc[d] = desc;
        }
      }
    }
  };

  // Canned worst cases first.
  consider(silent_agents_pattern(n, AgentSet::all(n).minus(AgentSet::all(n - t)),
                                 t + 2),
           std::vector<Value>(n, Value::one), "coordinated silence, all-1");
  if (t >= 1) {
    auto prefs = std::vector<Value>(n, Value::one);
    prefs[0] = Value::zero;
    consider(hidden_chain(n, t, t + 3), prefs, "hidden 0-chain");
  }

  // Random sampling over faulty counts, drop rates and preferences.
  for (int k = 0; k < samples; ++k) {
    const int faults = rng.below(t + 1);
    const double p = 0.1 + 0.8 * (k % 10) / 10.0;
    const auto alpha = sample_adversary(n, faults, t + 2, p, rng);
    consider(alpha, sample_preferences(n, rng), "random");
  }

  Table table({"protocol", "worst round", "bound t+2", "worst-case adversary",
               "median", "p99"});
  for (std::size_t d = 0; d < drivers.size(); ++d) {
    Aggregate agg;
    for (int r = 1; r <= hist[d].max_key(); ++r)
      for (std::size_t c = 0; c < hist[d].count(r); ++c)
        agg.add(r);
    table.row(drivers[d].name, worst[d], t + 2, worst_desc[d],
              agg.percentile(0.5), agg.percentile(0.99));
  }
  table.print(std::cout);

  std::cout << "\ndecision-round histogram (nonfaulty agents)\n";
  Table h({"round", drivers[0].name, drivers[1].name, drivers[2].name});
  int max_round = 0;
  for (const auto& x : hist) max_round = std::max(max_round, x.max_key());
  for (int r = 1; r <= max_round; ++r)
    h.row(r, hist[0].count(r), hist[1].count(r), hist[2].count(r));
  h.print(std::cout);

  std::cout << "\nspec violations: " << spec_violations << " (must be 0)\n";
  return spec_violations == 0 ? 0 : 1;
}
