// Cluster demo: the optimal full-information protocol P_opt running over
// the byte-level messaging layer — one agreement instance occupying a bus
// slot, its eight agents' graph payloads serialized, adversary-filtered
// and delivered each round — with an Example 7.1-style adversary injected
// (four faulty agents go silent). The nonfaulty agents detect all four
// faults in round 1, gain common knowledge of them in round 2, and decide
// in round 3 — nine rounds before the limited-information protocols
// would. A second act pushes 64 such instances through the worker-pool
// workload driver at once.
#include <iostream>

#include "action/p_opt.hpp"
#include "core/spec.hpp"
#include "exchange/fip.hpp"
#include "failure/generators.hpp"
#include "net/cluster.hpp"
#include "net/workload.hpp"

int main() {
  using namespace eba;
  const int n = 8;
  const int t = 4;

  AgentSet silent;
  for (AgentId i = 0; i < t; ++i) silent.insert(i);
  const FailurePattern alpha = silent_agents_pattern(n, silent, t + 3);
  const std::vector<Value> prefs(n, Value::one);

  std::cout << "running " << n << " agents over the bus (" << t
            << " faulty, silent)...\n";
  const auto result = run_cluster(FipExchange(n), POpt(n, t), alpha, prefs, t);

  std::cout << "cluster stopped after " << result.record.rounds << " rounds\n\n";
  for (AgentId i = 0; i < n; ++i) {
    const auto d = result.record.decision(i);
    std::cout << "agent " << i << (alpha.is_nonfaulty(i) ? "          " : " (faulty) ");
    if (d)
      std::cout << "decided " << to_string(d->value) << " in round " << d->round;
    else
      std::cout << "never decided (it was silenced before it could learn anything)";
    std::cout << '\n';
  }

  // What did a nonfaulty agent know, and when?
  const auto& g = result.final_states[static_cast<std::size_t>(t)].graph;
  std::cout << "\nagent " << t << "'s communication graph covers " << g.time()
            << " rounds, " << g.bit_size() << " bits\n";

  const SpecReport report = check_eba(result.record);
  std::cout << "EBA specification: "
            << (report.ok() ? "SATISFIED" : "VIOLATED") << '\n';
  if (!report.ok()) return 1;

  // Act two: the same scenario as a workload — 64 concurrent instances,
  // each one Stepper + one bus slot, multiplexed over the worker pool.
  std::vector<InstanceSpec> specs(64, {alpha, prefs});
  const auto workload =
      run_workload(FipExchange(n), POpt(n, t), std::span(specs), t);
  int ok = 0;
  for (const auto& inst : workload.instances)
    if (check_eba(inst.record).ok()) ++ok;
  std::cout << "\nworkload: " << ok << "/" << specs.size()
            << " concurrent instances satisfied the spec over "
            << workload.workers << " worker(s) in "
            << workload.wall_seconds * 1e3 << " ms\n";
  return ok == static_cast<int>(specs.size()) ? 0 : 1;
}
