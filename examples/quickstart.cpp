// Quickstart: run eventual Byzantine agreement among five agents, one of
// which is faulty and omits messages, using the basic information exchange
// E_basic and the action protocol P_basic.
//
//   $ ./quickstart
//
// Shows how to assemble (exchange, action protocol, failure pattern,
// preferences), run the simulator, inspect the per-round trace, and check
// the EBA specification.
#include <iostream>

#include "action/p_basic.hpp"
#include "core/spec.hpp"
#include "exchange/basic.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

int main() {
  using namespace eba;
  const int n = 5;  // agents
  const int t = 2;  // failure bound of the context (at most t faulty)

  // Agent 4 is faulty: its round-1 messages to agents 0 and 1 are omitted.
  FailurePattern alpha(n, /*nonfaulty=*/AgentSet{0, 1, 2, 3});
  alpha.drop(/*round m=*/0, /*from=*/4, /*to=*/0);
  alpha.drop(0, 4, 1);

  // Agent 2 prefers 0; everyone else prefers 1.
  std::vector<Value> prefs(n, Value::one);
  prefs[2] = Value::zero;

  const BasicExchange exchange(n);
  const PBasic protocol(n, t);
  const Run<BasicExchange> run = simulate(exchange, protocol, alpha, prefs, t);

  std::cout << "=== run timeline (x{j} marks an omitted delivery to j) ===\n"
            << format_run(run.record);

  const SpecReport report = check_eba(run.record);
  std::cout << "\nEBA specification: " << (report.ok_strict() ? "SATISFIED" : "VIOLATED")
            << "  (bits sent: " << run.bits_sent << ")\n";
  return report.ok_strict() ? 0 : 1;
}
