// Knowledge-based-program synthesis demo: derive a concrete protocol from
// the knowledge-based program P0 in the minimal context γ_min (n=3, t=1) by
// the round-by-round construction, print the synthesized decision table,
// and verify it coincides with the paper's hand-written P_min (Thm 6.5).
#include <algorithm>
#include <iostream>
#include <vector>

#include "action/p_min.hpp"
#include "failure/generators.hpp"
#include "kripke/synthesis.hpp"
#include "stats/table.hpp"

int main() {
  using namespace eba;
  const int n = 3;
  const int t = 1;

  // The context: every SO(1) adversary with drops in the first two rounds,
  // every preference vector.
  std::vector<std::pair<FailurePattern, std::vector<Value>>> worlds;
  const auto prefs = all_preference_vectors(n);
  enumerate_adversaries(EnumerationConfig{.n = n, .t = t, .rounds = 2},
                        [&](const FailurePattern& alpha) {
                          for (const auto& p : prefs)
                            worlds.emplace_back(alpha, p);
                          return true;
                        });
  std::cout << "synthesizing an implementation of P0 over " << worlds.size()
            << " worlds of gamma_min(n=3, t=1)...\n\n";

  KbpSynthesizer<MinExchange> synth(MinExchange(n), t, KbpProgram::p0);
  const auto result = synth.run(worlds, /*horizon=*/4);

  // Sort reachable states for a stable, readable table.
  std::vector<MinState> states;
  states.reserve(result.table.size());
  for (const auto& [s, a] : result.table) states.push_back(s);
  std::sort(states.begin(), states.end(), [](const MinState& a, const MinState& b) {
    auto key = [](const MinState& s) {
      auto enc = [](const std::optional<Value>& v) {
        return v ? 1 + to_int(*v) : 0;
      };
      return std::tuple(s.time, to_int(s.init), enc(s.decided), enc(s.jd));
    };
    return key(a) < key(b);
  });

  const PMin pmin(n, t);
  Table table({"time", "init", "decided", "jd", "synthesized from P0",
               "P_min (paper)", "match"});
  bool all_match = true;
  for (const MinState& s : states) {
    const Action synthesized = result.table.at(s);
    const Action paper = pmin(s);
    all_match = all_match && synthesized == paper;
    table.row(s.time, to_string(s.init), to_string(s.decided), to_string(s.jd),
              to_string(synthesized), to_string(paper),
              synthesized == paper ? "yes" : "NO");
  }
  table.print(std::cout);

  std::cout << "\n" << result.table.size() << " reachable local states; "
            << (all_match ? "the synthesized protocol IS P_min (Thm 6.5)."
                          : "MISMATCH with P_min — Thm 6.5 violated!")
            << '\n';
  return all_match ? 0 : 1;
}
