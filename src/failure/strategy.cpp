#include "failure/strategy.hpp"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <utility>
#include <vector>

#include "core/assert.hpp"
#include "failure/canonical.hpp"

namespace eba {

const char* to_string(SearchObjective o) {
  switch (o) {
    case SearchObjective::decision_round:
      return "decision_round";
    case SearchObjective::messages_suppressed:
      return "messages_suppressed";
    case SearchObjective::evidence_ambiguity:
      return "evidence_ambiguity";
  }
  return "?";
}

namespace {

using Clock = std::chrono::steady_clock;

double elapsed(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::uint64_t permute_bits(std::uint64_t mask,
                           const std::vector<AgentId>& perm) {
  std::uint64_t out = 0;
  for (AgentId i : AgentSet(mask))
    out |= std::uint64_t{1} << perm[static_cast<std::size_t>(i)];
  return out;
}

/// A non-identity element of the stabilizer S_k × S_{n-k} of the canonical
/// faulty set {0..k-1}: forward map (old id -> new id) plus its inverse.
/// Same group as failure/canonical.cpp's subgroup, rebuilt here because the
/// incremental prefix comparison below needs a different row order (round-
/// major, so that a comparison touches only assigned words).
struct PermPair {
  std::vector<AgentId> perm;
  std::vector<AgentId> inv;
};

std::vector<PermPair> stabilizer(int n, int k) {
  std::vector<AgentId> fa(static_cast<std::size_t>(k));
  std::vector<AgentId> nf(static_cast<std::size_t>(n - k));
  std::iota(fa.begin(), fa.end(), 0);
  std::iota(nf.begin(), nf.end(), k);
  std::vector<PermPair> out;
  std::vector<AgentId> fa0 = fa;
  do {
    std::vector<AgentId> nf0 = nf;
    do {
      std::vector<AgentId> perm(static_cast<std::size_t>(n));
      for (int i = 0; i < k; ++i)
        perm[static_cast<std::size_t>(i)] = fa0[static_cast<std::size_t>(i)];
      for (int i = k; i < n; ++i)
        perm[static_cast<std::size_t>(i)] =
            nf0[static_cast<std::size_t>(i - k)];
      bool identity = true;
      for (int i = 0; i < n; ++i)
        if (perm[static_cast<std::size_t>(i)] != i) identity = false;
      if (identity) continue;
      std::vector<AgentId> inv(static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i)
        inv[static_cast<std::size_t>(perm[static_cast<std::size_t>(i)])] = i;
      out.push_back({std::move(perm), std::move(inv)});
    } while (std::next_permutation(nf0.begin(), nf0.end()));
  } while (std::next_permutation(fa0.begin(), fa0.end()));
  return out;
}

std::vector<int> faulty_sizes(const SearchOptions& opt) {
  std::vector<int> ks;
  if (opt.num_faulty >= 0) {
    EBA_REQUIRE(opt.num_faulty <= opt.space.t, "num_faulty exceeds t");
    ks.push_back(opt.num_faulty);
  } else {
    for (int k = 0; k <= opt.space.t; ++k) ks.push_back(k);
  }
  return ks;
}

FailurePattern base_pattern_for(int n, int k) {
  AgentSet nonfaulty = AgentSet::all(n);
  for (AgentId s = 0; s < k; ++s) nonfaulty.erase(s);
  return FailurePattern(n, nonfaulty);
}

/// DFS state for branch_and_bound_worst_case, one faulty-set size at a time.
/// Drop words live at index (plane * rounds + m) * k + s — sender s's
/// receiver mask (plane 0) and receiver s's sender mask (plane 1) for round
/// m+1, mirroring AdversaryIterator's layout.
struct Searcher {
  const SearchOptions& opt;
  const PatternEvaluator& eval;
  int n;
  int rounds;
  int planes;
  SearchResult result;
  bool stop = false;

  int k = 0;
  std::vector<std::uint64_t> words;
  std::vector<PermPair> perms;

  [[nodiscard]] std::uint64_t word(int plane, int m, int s) const {
    return words[static_cast<std::size_t>((plane * rounds + m) * k + s)];
  }

  [[nodiscard]] FailurePattern materialize(int depth) const {
    FailurePattern p = base_pattern_for(n, k);
    for (int m = 0; m < depth; ++m)
      for (int s = 0; s < k; ++s) {
        for (AgentId r : AgentSet(word(0, m, s))) p.drop(m, s, r);
        if (planes == 2)
          for (AgentId r : AgentSet(word(1, m, s))) p.drop_receive(m, r, s);
      }
    return p;
  }

  /// True iff no stabilizer element maps the assigned prefix to a strictly
  /// lex-smaller one (round-major, plane, sender-ascending). A strictly
  /// smaller image dooms EVERY completion of this prefix to be non-minimal
  /// in its orbit, so the subtree is covered by a sibling.
  [[nodiscard]] bool prefix_is_lex_min(int depth) const {
    for (const PermPair& g : perms) {
      int cmp = 0;
      for (int m = 0; m < depth && cmp == 0; ++m)
        for (int plane = 0; plane < planes && cmp == 0; ++plane)
          for (int s = 0; s < k && cmp == 0; ++s) {
            const std::uint64_t image = permute_bits(
                word(plane, m, static_cast<int>(g.inv[static_cast<std::size_t>(s)])),
                g.perm);
            const std::uint64_t base = word(plane, m, s);
            if (image != base) cmp = image < base ? -1 : 1;
          }
      if (cmp < 0) return false;
    }
    return true;
  }

  void record_candidate(const FailurePattern& p, const PatternScore& sc) {
    if (sc.score > result.best_score) {
      result.best = p;
      result.best_score = sc.score;
      result.best_detail = sc;
      if (result.best_score >= opt.score_ceiling) {
        result.ceiling_reached = true;
        stop = true;
      }
    }
  }

  /// Visits the prefix of `depth` assigned rounds. `fresh` marks prefixes
  /// whose last block added at least one drop; a stale prefix materializes
  /// the same pattern as its parent, so the parent's score is inherited and
  /// the evaluator skipped.
  void visit(int depth, const PatternScore& inherited, bool fresh) {
    if (stop) return;
    ++result.stats.nodes;
    if (!perms.empty() && !prefix_is_lex_min(depth)) {
      ++result.stats.pruned_symmetry;
      return;
    }
    PatternScore sc = inherited;
    if (fresh) {
      const FailurePattern p = materialize(depth);
      sc = eval(p);
      ++result.stats.evaluations;
      record_candidate(p, sc);
    }
    if (stop || depth == rounds) return;
    if (sc.rounds_executed <= depth) {
      // No evaluated run executed past round `depth`, so pattern rounds
      // >= depth are never consulted: every extension is run-identical.
      ++result.stats.pruned_unreached;
      return;
    }
    if (opt.use_settled_pruning &&
        opt.objective == SearchObjective::decision_round &&
        sc.settled_round != kUnsettled && sc.settled_round <= depth + 1) {
      // With rounds 0..depth-1 fixed, decisions through round depth+1 are
      // fixed for every extension (drops at round depth first affect states
      // at time depth+1, hence decisions in round depth+2). Every nonfaulty
      // agent already decided by round depth+1, so the objective is settled.
      ++result.stats.pruned_settled;
      return;
    }
    assign_block(depth, 0, sc, false);
  }

  /// Enumerates round `depth`'s block (k send words, plus k receive words
  /// under GO) by chained submask odometers and recurses per assignment.
  void assign_block(int depth, int idx, const PatternScore& inherited,
                    bool any) {
    if (stop) return;
    if (idx == planes * k) {
      visit(depth + 1, inherited, any);
      return;
    }
    const int plane = idx / k;
    const int s = idx % k;
    const std::uint64_t allowed =
        AgentSet::all(n).bits() & ~(std::uint64_t{1} << s);
    const std::size_t slot =
        static_cast<std::size_t>((plane * rounds + depth) * k + s);
    std::uint64_t sub = 0;
    do {
      words[slot] = sub;
      assign_block(depth, idx + 1, inherited, any || sub != 0);
      if (stop) break;
      sub = (sub - allowed) & allowed;
    } while (sub != 0);
    words[slot] = 0;
  }

  void run_for_k(int kk) {
    k = kk;
    if (k == 0) {
      const FailurePattern p = FailurePattern::failure_free(n);
      ++result.stats.nodes;
      ++result.stats.evaluations;
      record_candidate(p, eval(p));
      return;
    }
    words.assign(static_cast<std::size_t>(planes * rounds * k), 0);
    perms.clear();
    if (opt.use_symmetry && n <= kMaxCanonicalAgents)
      perms = stabilizer(n, k);
    visit(0, PatternScore{}, true);
  }
};

}  // namespace

SearchResult greedy_worst_case(const SearchOptions& opt,
                               const PatternEvaluator& eval) {
  const auto start = Clock::now();
  const int n = opt.space.n;
  const int rounds = opt.space.rounds;
  const bool go = opt.space.model == FailureModel::general;
  EBA_REQUIRE(n >= 1 && n <= kMaxAgents, "agent count out of range");

  SearchResult result;
  auto record = [&](const FailurePattern& p, const PatternScore& sc) {
    if (sc.score > result.best_score) {
      result.best = p;
      result.best_score = sc.score;
      result.best_detail = sc;
      if (result.best_score >= opt.score_ceiling) result.ceiling_reached = true;
    }
  };

  for (int k : faulty_sizes(opt)) {
    if (result.ceiling_reached) break;
    FailurePattern cur = base_pattern_for(n, k);
    PatternScore cur_sc = eval(cur);
    ++result.stats.nodes;
    ++result.stats.evaluations;
    record(cur, cur_sc);
    bool improved = true;
    while (improved && !result.ceiling_reached) {
      improved = false;
      FailurePattern best_cand = cur;
      PatternScore best_sc = cur_sc;
      for (int m = 0; m < rounds; ++m)
        for (AgentId s = 0; s < k; ++s)
          for (AgentId r = 0; r < n; ++r) {
            if (r == s) continue;
            if (!cur.dropped(m, s).contains(r)) {
              FailurePattern cand = cur;
              cand.drop(m, s, r);
              const PatternScore sc = eval(cand);
              ++result.stats.evaluations;
              if (sc.score > best_sc.score) {
                best_cand = std::move(cand);
                best_sc = sc;
              }
            }
            if (go && !cur.dropped_receive(m, s).contains(r)) {
              FailurePattern cand = cur;
              cand.drop_receive(m, r, s);
              const PatternScore sc = eval(cand);
              ++result.stats.evaluations;
              if (sc.score > best_sc.score) {
                best_cand = std::move(cand);
                best_sc = sc;
              }
            }
          }
      if (best_sc.score > cur_sc.score) {
        cur = std::move(best_cand);
        cur_sc = best_sc;
        improved = true;
        ++result.stats.nodes;
        record(cur, cur_sc);
      }
    }
  }
  result.seconds = elapsed(start);
  return result;
}

SearchResult branch_and_bound_worst_case(const SearchOptions& opt,
                                         const PatternEvaluator& eval) {
  const auto start = Clock::now();
  EBA_REQUIRE(opt.space.n >= 1 && opt.space.n <= kMaxAgents,
              "agent count out of range");
  EBA_REQUIRE(opt.space.rounds >= 0, "negative round horizon");
  Searcher s{.opt = opt,
             .eval = eval,
             .n = opt.space.n,
             .rounds = opt.space.rounds,
             .planes = opt.space.model == FailureModel::general ? 2 : 1,
             .result = {},
             .stop = false,
             .k = 0,
             .words = {},
             .perms = {}};
  for (int k : faulty_sizes(opt)) {
    if (s.stop) break;
    s.run_for_k(k);
  }
  s.result.seconds = elapsed(start);
  return s.result;
}

}  // namespace eba
