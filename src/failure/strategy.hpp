// Worst-case adversary search over SO(t)/GO(t) pattern spaces.
//
// PRs 4-5 certify spec-satisfaction by sweeping EVERY canonical orbit; this
// layer answers the dual question — which pattern is WORST for a protocol —
// without visiting the whole space. Two searchers over the same fixed-shape
// space as AdversaryIterator (drops confined to the first `rounds` rounds,
// faulty set {0..k-1} WLOG):
//
//  * `greedy_worst_case` — hill climbing on single-drop additions: from the
//    drop-free pattern, repeatedly commit the one extra (round, from, to)
//    drop (either plane under GO) that improves the objective most, until no
//    single addition helps. Cheap (O(drops-per-step) evaluations per step)
//    and usually finds the analytic worst case, but can stall on plateaus —
//    a hidden chain only pays off once ALL of its hops are in place.
//  * `branch_and_bound_worst_case` — exact DFS over per-round drop blocks
//    with three sound prunings (see SearchStats): symmetry (only
//    lexicographically minimal prefixes under the stabilizer S_k × S_{n-k}
//    of the faulty set survive — the orbit argument of failure/canonical.hpp
//    applied incrementally), settled (decisions through round p+1 are fixed
//    once pattern rounds 0..p-1 are, so a prefix whose runs have every
//    nonfaulty agent decided cannot be improved by extension — valid for the
//    decision_round objective), and unreached (a prefix whose runs never
//    execute past round p is bit-identical to every extension). An optional
//    score ceiling (Prop 6.1's t+2 bound for decision rounds) turns the
//    exact search into first-witness search.
//
// The searcher is protocol-agnostic: it maximizes an injected
// `PatternEvaluator`, so this layer depends only on core/ and failure/
// (src/README.md layering). sim/objective.hpp builds evaluators from the
// shipped protocol drivers; the evaluated protocols must be renaming-
// equivariant (every shipped one is) for the WLOG faulty set and the
// symmetry pruning to be sound.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

#include "failure/adversary_iter.hpp"
#include "failure/pattern.hpp"

namespace eba {

/// What a worst-case search maximizes.
enum class SearchObjective : std::uint8_t {
  decision_round,       ///< latest nonfaulty decision round, worst preference
  messages_suppressed,  ///< sent-but-undelivered message count
  evidence_ambiguity,   ///< unattributed faults in final views (P_opt[_go])
};

[[nodiscard]] const char* to_string(SearchObjective o);

/// Sentinel for PatternScore::settled_round: some evaluated run left a
/// nonfaulty agent undecided within the horizon.
inline constexpr int kUnsettled = std::numeric_limits<int>::max();

/// One evaluation of a candidate pattern, aggregated over whatever
/// preference vectors the evaluator ranges over.
struct PatternScore {
  double score = 0;
  /// Largest nonfaulty decision round across the evaluated runs, or
  /// kUnsettled if any run left a nonfaulty agent undecided.
  int settled_round = kUnsettled;
  /// Largest number of rounds any evaluated run actually executed. Pattern
  /// round m is only consulted by a run executing round m+1, so drops added
  /// at rounds >= rounds_executed cannot change any of the runs.
  int rounds_executed = 0;
};

using PatternEvaluator = std::function<PatternScore(const FailurePattern&)>;

struct SearchOptions {
  /// The pattern space: n, t, recorded rounds, and the model (the receive
  /// plane is searched iff model == general).
  EnumerationConfig space;
  SearchObjective objective = SearchObjective::decision_round;
  /// Stop as soon as the incumbent reaches this score (an analytic upper
  /// bound makes the search a first-witness search; Prop 6.1 gives t+2 for
  /// decision_round). Infinity = exhaust the (pruned) space.
  double score_ceiling = std::numeric_limits<double>::infinity();
  /// Fix the faulty-set size; -1 = try every k in 0..t.
  int num_faulty = -1;
  /// Disable individual prunings (for the tests that certify the pruned
  /// search agrees with the unpruned one).
  bool use_symmetry = true;
  bool use_settled_pruning = true;
};

struct SearchStats {
  std::uint64_t nodes = 0;        ///< prefix assignments visited
  std::uint64_t evaluations = 0;  ///< PatternEvaluator invocations
  std::uint64_t pruned_symmetry = 0;
  std::uint64_t pruned_settled = 0;
  std::uint64_t pruned_unreached = 0;
};

struct SearchResult {
  FailurePattern best = FailurePattern::failure_free(1);
  double best_score = -std::numeric_limits<double>::infinity();
  /// The evaluator's full verdict on `best`.
  PatternScore best_detail;
  bool ceiling_reached = false;
  SearchStats stats;
  double seconds = 0;
};

/// Hill climbing on single-drop additions (see file comment).
[[nodiscard]] SearchResult greedy_worst_case(const SearchOptions& opt,
                                             const PatternEvaluator& eval);

/// Exact branch-and-bound over per-round drop blocks (see file comment).
/// Visits at least one element of every stabilizer orbit, so without a
/// ceiling the returned score equals the exhaustive-sweep maximum.
[[nodiscard]] SearchResult branch_and_bound_worst_case(
    const SearchOptions& opt, const PatternEvaluator& eval);

}  // namespace eba
