#include "failure/orbit_sweep.hpp"

#include "failure/canonical.hpp"
#include "failure/generators.hpp"

namespace eba {

std::uint64_t for_each_representative_world(
    const EnumerationConfig& cfg,
    const std::function<bool(const FailurePattern&, const std::vector<Value>&,
                             std::uint64_t)>& fn) {
  std::uint64_t covered = 0;
  enumerate_canonical_adversaries(
      cfg, [&](const FailurePattern& rep, std::uint64_t multiplicity) {
        for (const PreferenceClass& cls : preference_classes(rep)) {
          const std::uint64_t weight = multiplicity * cls.size;
          covered += weight;
          if (!fn(rep, preferences_of_mask(cls.mask, cfg.n), weight))
            return false;
        }
        return true;
      });
  return covered;
}

}  // namespace eba
