#include "failure/canonical.hpp"

#include <algorithm>
#include <bit>
#include <numeric>
#include <utility>

namespace eba {
namespace {

/// The stabilizer S_k × S_{n-k} of the canonical faulty set {0..k-1}:
/// every permutation of agent ids mapping {0..k-1} onto itself, as forward
/// maps plus their inverses. perms[0] is the identity.
struct Subgroup {
  std::vector<std::vector<AgentId>> perms;
  std::vector<std::vector<AgentId>> invs;
};

Subgroup make_subgroup(int n, int k) {
  EBA_REQUIRE(n >= 1 && n <= kMaxCanonicalAgents,
              "canonicalization is factorial in n; raise kMaxCanonicalAgents "
              "only with care");
  EBA_REQUIRE(k >= 0 && k <= n, "bad faulty-set size");
  std::vector<AgentId> fa(static_cast<std::size_t>(k));
  std::vector<AgentId> nf(static_cast<std::size_t>(n - k));
  std::iota(fa.begin(), fa.end(), 0);
  std::iota(nf.begin(), nf.end(), k);
  Subgroup g;
  std::vector<AgentId> fa0 = fa;
  do {
    std::vector<AgentId> nf0 = nf;
    do {
      std::vector<AgentId> perm(static_cast<std::size_t>(n));
      for (int i = 0; i < k; ++i)
        perm[static_cast<std::size_t>(i)] = fa0[static_cast<std::size_t>(i)];
      for (int i = k; i < n; ++i)
        perm[static_cast<std::size_t>(i)] =
            nf0[static_cast<std::size_t>(i - k)];
      std::vector<AgentId> inv(static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i)
        inv[static_cast<std::size_t>(perm[static_cast<std::size_t>(i)])] = i;
      g.perms.push_back(std::move(perm));
      g.invs.push_back(std::move(inv));
    } while (std::next_permutation(nf0.begin(), nf0.end()));
  } while (std::next_permutation(fa0.begin(), fa0.end()));
  return g;
}

std::uint64_t permute_bits(std::uint64_t mask,
                           const std::vector<AgentId>& perm) {
  std::uint64_t out = 0;
  for (AgentId i : AgentSet(mask))
    out |= std::uint64_t{1} << perm[static_cast<std::size_t>(i)];
  return out;
}

/// A fixed-partition drop tensor: faulty agents are {0..k-1} and
/// words[m * k + s] is the receiver mask send-dropped by sender s in round
/// m+1. For GO patterns (planes == 2) a receive block of the same shape
/// follows at offset rounds * k: words[rounds * k + m * k + s] is the
/// sender mask receive-dropped by receiver s in round m+1. The group acts
/// identically on every row, so the canonicalization loops below only care
/// about the flat row count planes * rounds.
struct Slice {
  int n = 0;
  int k = 0;
  int rounds = 0;
  int planes = 1;  ///< 1 = send plane only (SO), 2 = send + receive (GO)
  std::vector<std::uint64_t> words;
  [[nodiscard]] int rows() const { return planes * rounds; }
};

Slice slice_of(const FailurePattern& p) {
  Slice s;
  s.n = p.n();
  s.k = p.num_faulty();
  s.planes = p.has_receive_drops() ? 2 : 1;
  s.rounds = s.planes == 2 ? std::max(p.recorded_rounds(),
                                      p.recorded_receive_rounds())
                           : p.recorded_rounds();
  s.words.assign(static_cast<std::size_t>(s.rows()) *
                     static_cast<std::size_t>(s.k),
                 0);
  // Relabel faulty agents to {0..k-1} and nonfaulty to {k..n-1}, both in
  // ascending id order (any coset choice works: the subgroup min below is
  // invariant under it).
  std::vector<AgentId> map(static_cast<std::size_t>(s.n));
  std::vector<AgentId> senders;
  int next_f = 0;
  int next_n = s.k;
  for (AgentId i = 0; i < s.n; ++i) {
    if (p.is_nonfaulty(i)) {
      map[static_cast<std::size_t>(i)] = next_n++;
    } else {
      map[static_cast<std::size_t>(i)] = next_f++;
      senders.push_back(i);
    }
  }
  for (int m = 0; m < s.rounds; ++m)
    for (std::size_t j = 0; j < senders.size(); ++j)
      s.words[static_cast<std::size_t>(m) * static_cast<std::size_t>(s.k) +
              static_cast<std::size_t>(
                  map[static_cast<std::size_t>(senders[j])])] =
          permute_bits(p.dropped(m, senders[j]).bits(), map);
  if (s.planes == 2) {
    const std::size_t recv_base = static_cast<std::size_t>(s.rounds) *
                                  static_cast<std::size_t>(s.k);
    for (int m = 0; m < s.rounds; ++m)
      for (std::size_t j = 0; j < senders.size(); ++j)
        s.words[recv_base +
                static_cast<std::size_t>(m) * static_cast<std::size_t>(s.k) +
                static_cast<std::size_t>(
                    map[static_cast<std::size_t>(senders[j])])] =
            permute_bits(p.dropped_receive(m, senders[j]).bits(), map);
  }
  return s;
}

/// Lexicographic comparison (round-major, sender-ascending) of the image of
/// `s.words` under (perm, inv) against `s.words` itself, generated lazily
/// with early exit. Returns -1 / 0 / +1.
int compare_image(const Slice& s, const std::vector<AgentId>& perm,
                  const std::vector<AgentId>& inv) {
  for (int m = 0; m < s.rows(); ++m) {
    const std::size_t row =
        static_cast<std::size_t>(m) * static_cast<std::size_t>(s.k);
    for (int out = 0; out < s.k; ++out) {
      const std::uint64_t img = permute_bits(
          s.words[row + static_cast<std::size_t>(
                            inv[static_cast<std::size_t>(out)])],
          perm);
      const std::uint64_t ref = s.words[row + static_cast<std::size_t>(out)];
      if (img != ref) return img < ref ? -1 : 1;
    }
  }
  return 0;
}

/// One pass over the group: the stabilizer size if the slice is canonical
/// (lexicographically minimal under g), or nullopt as soon as some image is
/// strictly smaller.
std::optional<std::uint64_t> slice_canonical_stabilizer(const Slice& s,
                                                        const Subgroup& g) {
  std::uint64_t stab = 1;  // identity
  for (std::size_t gi = 1; gi < g.perms.size(); ++gi) {
    const int order = compare_image(s, g.perms[gi], g.invs[gi]);
    if (order < 0) return std::nullopt;
    if (order == 0) ++stab;
  }
  return stab;
}

bool slice_is_canonical(const Slice& s, const Subgroup& g) {
  for (std::size_t gi = 1; gi < g.perms.size(); ++gi)
    if (compare_image(s, g.perms[gi], g.invs[gi]) < 0) return false;
  return true;
}

std::uint64_t slice_stabilizer(const Slice& s, const Subgroup& g) {
  std::uint64_t stab = 1;  // identity
  for (std::size_t gi = 1; gi < g.perms.size(); ++gi)
    if (compare_image(s, g.perms[gi], g.invs[gi]) == 0) ++stab;
  return stab;
}

std::uint64_t choose(int n, int k) {
  std::uint64_t c = 1;
  for (int i = 0; i < k; ++i)
    c = c * static_cast<std::uint64_t>(n - i) /
        static_cast<std::uint64_t>(i + 1);
  return c;
}

/// Multiplicity of the orbit of the pattern behind `s`:
/// C(n, k) faulty sets × |subgroup| / |stabilizer| tensors per faulty set.
std::uint64_t slice_multiplicity(const Slice& s, const Subgroup& g) {
  return choose(s.n, s.k) *
         (static_cast<std::uint64_t>(g.perms.size()) /
          slice_stabilizer(s, g));
}

FailurePattern pattern_of_slice(int n, int k, int rounds, int planes,
                                const std::vector<std::uint64_t>& words) {
  AgentSet faulty;
  for (AgentId i = 0; i < k; ++i) faulty.insert(i);
  FailurePattern p(n, faulty.complement(n));
  for (int m = 0; m < rounds; ++m)
    for (int s = 0; s < k; ++s)
      for (AgentId to :
           AgentSet(words[static_cast<std::size_t>(m) *
                              static_cast<std::size_t>(k) +
                          static_cast<std::size_t>(s)]))
        p.drop(m, s, to);
  if (planes == 2) {
    const std::size_t recv_base =
        static_cast<std::size_t>(rounds) * static_cast<std::size_t>(k);
    for (int m = 0; m < rounds; ++m)
      for (int s = 0; s < k; ++s)
        for (AgentId from :
             AgentSet(words[recv_base +
                            static_cast<std::size_t>(m) *
                                static_cast<std::size_t>(k) +
                            static_cast<std::size_t>(s)]))
          p.drop_receive(m, from, s);
  }
  return p;
}

constexpr unsigned __int128 kU128Max = ~static_cast<unsigned __int128>(0);

}  // namespace

FailurePattern relabeled(const FailurePattern& p,
                         const std::vector<AgentId>& perm) {
  const int n = p.n();
  EBA_REQUIRE(static_cast<int>(perm.size()) == n, "permutation size mismatch");
  FailurePattern out(n, AgentSet(permute_bits(p.nonfaulty().bits(), perm)));
  for (int m = 0; m < p.recorded_rounds(); ++m)
    for (AgentId from : p.faulty())
      for (AgentId to : p.dropped(m, from))
        out.drop(m, perm[static_cast<std::size_t>(from)],
                 perm[static_cast<std::size_t>(to)]);
  for (int m = 0; m < p.recorded_receive_rounds(); ++m)
    for (AgentId to : p.faulty())
      for (AgentId from : p.dropped_receive(m, to))
        out.drop_receive(m, perm[static_cast<std::size_t>(from)],
                         perm[static_cast<std::size_t>(to)]);
  return out;
}

bool is_canonical(const FailurePattern& p) {
  const int k = p.num_faulty();
  AgentSet prefix;
  for (AgentId i = 0; i < k; ++i) prefix.insert(i);
  if (p.faulty() != prefix) return false;
  // k = 0 has an empty drop tensor: trivially canonical, and materializing
  // the full S_n stabilizer (n! permutations) would be pure waste.
  if (k == 0) return true;
  const Slice s = slice_of(p);
  return slice_is_canonical(s, make_subgroup(p.n(), k));
}

FailurePattern canonicalize(const FailurePattern& p) {
  if (p.num_faulty() == 0) return FailurePattern(p.n(), AgentSet::all(p.n()));
  const Slice s = slice_of(p);
  const Subgroup g = make_subgroup(s.n, s.k);
  std::vector<std::uint64_t> best = s.words;
  std::vector<std::uint64_t> img(s.words.size());
  for (std::size_t gi = 1; gi < g.perms.size(); ++gi) {
    for (int m = 0; m < s.rows(); ++m) {
      const std::size_t row =
          static_cast<std::size_t>(m) * static_cast<std::size_t>(s.k);
      for (int out = 0; out < s.k; ++out)
        img[row + static_cast<std::size_t>(out)] = permute_bits(
            s.words[row + static_cast<std::size_t>(
                              g.invs[gi][static_cast<std::size_t>(out)])],
            g.perms[gi]);
    }
    if (std::lexicographical_compare(img.begin(), img.end(), best.begin(),
                                     best.end()))
      best = img;
  }
  return pattern_of_slice(s.n, s.k, s.rounds, s.planes, best);
}

std::uint64_t orbit_size(const FailurePattern& p) {
  if (p.num_faulty() == 0) return 1;
  const Slice s = slice_of(p);
  return slice_multiplicity(s, make_subgroup(s.n, s.k));
}

std::uint64_t expand_orbit_perms(
    const FailurePattern& rep,
    const std::function<bool(const FailurePattern&,
                             const std::vector<AgentId>&)>& fn) {
  const int n = rep.n();
  if (rep.num_faulty() == 0) {
    std::vector<AgentId> identity(static_cast<std::size_t>(n));
    std::iota(identity.begin(), identity.end(), 0);
    fn(FailurePattern(n, AgentSet::all(n)), identity);
    return 1;
  }
  const Slice s = slice_of(rep);
  const Subgroup g = make_subgroup(s.n, s.k);
  AgentSet prefix;
  for (AgentId i = 0; i < s.k; ++i) prefix.insert(i);
  EBA_REQUIRE(rep.faulty() == prefix && slice_is_canonical(s, g),
              "expand_orbit needs a canonical representative");
  // Distinct drop tensors over the fixed partition {0..k-1} | {k..n-1},
  // each tagged with the smallest group index producing it, so the member's
  // renaming can be reconstructed. Sorting by (words, index) then deduping
  // on words keeps image order identical to the perm-less overloads.
  std::vector<std::pair<std::vector<std::uint64_t>, std::size_t>> images;
  std::vector<std::uint64_t> img(s.words.size());
  for (std::size_t gi = 0; gi < g.perms.size(); ++gi) {
    for (int m = 0; m < s.rows(); ++m) {
      const std::size_t row =
          static_cast<std::size_t>(m) * static_cast<std::size_t>(s.k);
      for (int out = 0; out < s.k; ++out)
        img[row + static_cast<std::size_t>(out)] = permute_bits(
            s.words[row + static_cast<std::size_t>(
                              g.invs[gi][static_cast<std::size_t>(out)])],
            g.perms[gi]);
    }
    images.emplace_back(img, gi);
  }
  std::sort(images.begin(), images.end());
  images.erase(std::unique(images.begin(), images.end(),
                           [](const auto& a, const auto& b) {
                             return a.first == b.first;
                           }),
               images.end());

  // One coset relabeling per faulty set: {0..k-1} -> F ascending and
  // {k..n-1} -> complement ascending maps each distinct fixed-partition
  // image to a distinct orbit member with faulty set F, covering the orbit
  // exactly once. The member's renaming composes the image's group element
  // with the coset map: member == relabeled(rep, map ∘ g.perm).
  std::uint64_t members = 0;
  std::vector<AgentId> idx(static_cast<std::size_t>(s.k));
  std::iota(idx.begin(), idx.end(), 0);
  std::vector<AgentId> compose(static_cast<std::size_t>(s.n));
  const bool some_subset = s.k > 0;
  for (;;) {
    std::vector<AgentId> map(static_cast<std::size_t>(s.n));
    AgentSet faulty;
    for (AgentId i : idx) faulty.insert(i);
    int next_f = 0;
    int next_n = s.k;
    // map is the inverse direction of slice_of's: canonical id -> orbit id.
    std::vector<AgentId> fs;
    std::vector<AgentId> ns;
    for (AgentId i = 0; i < s.n; ++i)
      (faulty.contains(i) ? fs : ns).push_back(i);
    for (AgentId i : fs) map[static_cast<std::size_t>(next_f++)] = i;
    for (AgentId i : ns) map[static_cast<std::size_t>(next_n++)] = i;
    for (const auto& [words, gi] : images) {
      FailurePattern p(s.n, faulty.complement(s.n));
      for (int m = 0; m < s.rounds; ++m)
        for (int snd = 0; snd < s.k; ++snd)
          for (AgentId to :
               AgentSet(words[static_cast<std::size_t>(m) *
                                  static_cast<std::size_t>(s.k) +
                              static_cast<std::size_t>(snd)]))
            p.drop(m, map[static_cast<std::size_t>(snd)],
                   map[static_cast<std::size_t>(to)]);
      if (s.planes == 2) {
        const std::size_t recv_base = static_cast<std::size_t>(s.rounds) *
                                      static_cast<std::size_t>(s.k);
        for (int m = 0; m < s.rounds; ++m)
          for (int rcv = 0; rcv < s.k; ++rcv)
            for (AgentId from :
                 AgentSet(words[recv_base +
                                static_cast<std::size_t>(m) *
                                    static_cast<std::size_t>(s.k) +
                                static_cast<std::size_t>(rcv)]))
              p.drop_receive(m, map[static_cast<std::size_t>(from)],
                             map[static_cast<std::size_t>(rcv)]);
      }
      for (int i = 0; i < s.n; ++i)
        compose[static_cast<std::size_t>(i)] = map[static_cast<std::size_t>(
            g.perms[gi][static_cast<std::size_t>(i)])];
      ++members;
      if (!fn(p, compose)) return members;
    }
    if (!some_subset || !detail::next_combination(idx, s.n)) break;
  }
  return members;
}

std::uint64_t expand_orbit(
    const FailurePattern& rep,
    const std::function<bool(const FailurePattern&)>& fn) {
  return expand_orbit_perms(
      rep, [&fn](const FailurePattern& p, const std::vector<AgentId>&) {
        return fn(p);
      });
}

std::vector<FailurePattern> expand_orbit(const FailurePattern& rep) {
  std::vector<FailurePattern> out;
  expand_orbit(rep, [&out](const FailurePattern& p) {
    out.push_back(p);
    return true;
  });
  return out;
}

std::vector<std::vector<AgentId>> orbit_stabilizer(const FailurePattern& rep) {
  const int n = rep.n();
  const int k = rep.num_faulty();
  Subgroup g = make_subgroup(n, k);
  // No drops to preserve: every renaming fixes the drop-free pattern.
  if (k == 0) return std::move(g.perms);
  AgentSet prefix;
  for (AgentId i = 0; i < k; ++i) prefix.insert(i);
  EBA_REQUIRE(rep.faulty() == prefix,
              "orbit_stabilizer needs a canonical representative");
  const Slice s = slice_of(rep);
  std::vector<std::vector<AgentId>> stab;
  stab.push_back(std::move(g.perms[0]));
  for (std::size_t gi = 1; gi < g.perms.size(); ++gi) {
    const int order = compare_image(s, g.perms[gi], g.invs[gi]);
    EBA_REQUIRE(order >= 0,
                "orbit_stabilizer needs a canonical representative");
    if (order == 0) stab.push_back(std::move(g.perms[gi]));
  }
  return stab;
}

PreferenceQuotient preference_quotient(const FailurePattern& rep) {
  const int n = rep.n();
  EBA_REQUIRE(n >= 1 && n <= kMaxCanonicalAgents,
              "agent count out of canonicalization range");
  const std::uint64_t P = std::uint64_t{1} << n;
  constexpr std::uint32_t kUnassigned = ~std::uint32_t{0};
  PreferenceQuotient q;
  q.class_of.assign(static_cast<std::size_t>(P), kUnassigned);
  q.sigma.resize(static_cast<std::size_t>(P));
  if (rep.num_faulty() == 0) {
    // Drop-free orbit: the stabilizer is all of S_n, so masks are classed by
    // popcount without materializing n! permutations. The representative of
    // popcount class pc is the low-bit mask 2^pc - 1; sigma routes its set
    // positions {0..pc-1} onto the mask's set positions (ascending) and the
    // rest onto the clear positions, which is the identity on the class
    // representative itself.
    q.classes.resize(static_cast<std::size_t>(n) + 1);
    for (int pc = 0; pc <= n; ++pc) {
      q.classes[static_cast<std::size_t>(pc)].mask =
          (std::uint64_t{1} << pc) - 1;
      q.classes[static_cast<std::size_t>(pc)].size = choose(n, pc);
    }
    for (std::uint64_t mask = 0; mask < P; ++mask) {
      const int pc = std::popcount(mask);
      q.class_of[static_cast<std::size_t>(mask)] =
          static_cast<std::uint32_t>(pc);
      std::vector<AgentId> sg(static_cast<std::size_t>(n));
      int next_set = 0;
      int next_clear = pc;
      for (AgentId i = 0; i < n; ++i) {
        if ((mask >> i) & 1)
          sg[static_cast<std::size_t>(next_set++)] = i;
        else
          sg[static_cast<std::size_t>(next_clear++)] = i;
      }
      q.sigma[static_cast<std::size_t>(mask)] = std::move(sg);
    }
    return q;
  }
  const auto stab = orbit_stabilizer(rep);
  for (std::uint64_t c = 0; c < P; ++c) {
    if (q.class_of[static_cast<std::size_t>(c)] != kUnassigned) continue;
    // c is the smallest unclassified mask, hence its class's lex minimum.
    const auto idx = static_cast<std::uint32_t>(q.classes.size());
    q.classes.push_back({c, 0});
    for (const auto& sg : stab) {
      const std::uint64_t m = permute_bits(c, sg);
      auto& cls = q.class_of[static_cast<std::size_t>(m)];
      if (cls != kUnassigned) continue;
      cls = idx;
      q.sigma[static_cast<std::size_t>(m)] = sg;
      ++q.classes[static_cast<std::size_t>(idx)].size;
    }
  }
  return q;
}

std::vector<PreferenceClass> preference_classes(const FailurePattern& rep) {
  return preference_quotient(rep).classes;
}

std::uint64_t enumerate_canonical_adversaries(
    const EnumerationConfig& cfg,
    const std::function<bool(const FailurePattern&, std::uint64_t)>& fn) {
  EBA_REQUIRE(cfg.n >= 1 && cfg.n <= kMaxCanonicalAgents,
              "agent count out of canonicalization range");
  EBA_REQUIRE(cfg.t >= 0 && cfg.t < cfg.n, "need 0 <= t < n");
  EBA_REQUIRE(cfg.rounds >= 0, "negative round prefix");
  std::uint64_t orbits = 0;
  for (int k = 0; k <= cfg.t; ++k) {
    if (k == 0) {
      // The single drop-free pattern is its own orbit; skip building S_n.
      ++orbits;
      if (!fn(FailurePattern(cfg.n, AgentSet::all(cfg.n)), 1)) return orbits;
      continue;
    }
    const Subgroup g = make_subgroup(cfg.n, k);
    Slice s;
    s.n = cfg.n;
    s.k = k;
    s.rounds = cfg.rounds;
    s.planes = cfg.model == FailureModel::general ? 2 : 1;
    s.words.assign(static_cast<std::size_t>(s.rows()) *
                       static_cast<std::size_t>(k),
                   0);
    std::vector<std::uint64_t> allowed(static_cast<std::size_t>(k));
    for (int snd = 0; snd < k; ++snd)
      allowed[static_cast<std::size_t>(snd)] =
          AgentSet::all(cfg.n).minus(AgentSet{snd}).bits();
    for (;;) {
      // Minimality and stabilizer size come from one scan of the subgroup.
      if (const auto stab = slice_canonical_stabilizer(s, g)) {
        ++orbits;
        const std::uint64_t multiplicity =
            choose(cfg.n, k) *
            (static_cast<std::uint64_t>(g.perms.size()) / *stab);
        if (!fn(pattern_of_slice(cfg.n, k, cfg.rounds, s.planes, s.words),
                multiplicity))
          return orbits;
      }
      if (!detail::advance_drop_words(s.words, allowed, k))
        break;  // wrapped: this k is exhausted
    }
  }
  return orbits;
}

std::optional<std::uint64_t> try_count_canonical_adversaries(
    const EnumerationConfig& cfg) {
  EBA_REQUIRE(cfg.n >= 1 && cfg.n <= kMaxCanonicalAgents,
              "agent count out of canonicalization range");
  EBA_REQUIRE(cfg.t >= 0 && cfg.t < cfg.n, "need 0 <= t < n");
  EBA_REQUIRE(cfg.rounds >= 0, "negative round prefix");
  unsigned __int128 total = 0;
  for (int k = 0; k <= cfg.t; ++k) {
    if (k == 0) {
      total += 1;  // the drop-free pattern, one orbit — no group needed
      continue;
    }
    const Subgroup g = make_subgroup(cfg.n, k);
    unsigned __int128 sum = 0;
    std::vector<char> visited;
    for (const auto& perm : g.perms) {
      // Cycles of the element's action on cells (s, r): s < k, r != s.
      visited.assign(static_cast<std::size_t>(k) *
                         static_cast<std::size_t>(cfg.n),
                     0);
      int cycles = 0;
      for (int snd = 0; snd < k; ++snd) {
        for (AgentId r = 0; r < cfg.n; ++r) {
          if (r == snd) continue;
          std::size_t cell = static_cast<std::size_t>(snd) *
                                 static_cast<std::size_t>(cfg.n) +
                             static_cast<std::size_t>(r);
          if (visited[cell]) continue;
          ++cycles;
          int cs = snd;
          AgentId cr = r;
          while (!visited[static_cast<std::size_t>(cs) *
                              static_cast<std::size_t>(cfg.n) +
                          static_cast<std::size_t>(cr)]) {
            visited[static_cast<std::size_t>(cs) *
                        static_cast<std::size_t>(cfg.n) +
                    static_cast<std::size_t>(cr)] = 1;
            cs = perm[static_cast<std::size_t>(cs)];
            cr = perm[static_cast<std::size_t>(cr)];
          }
        }
      }
      const long long exponent =
          static_cast<long long>(cfg.model == FailureModel::general ? 2 : 1) *
          cfg.rounds * cycles;
      if (exponent > 126) return std::nullopt;
      const unsigned __int128 fixed = static_cast<unsigned __int128>(1)
                                      << exponent;
      if (sum > kU128Max - fixed) return std::nullopt;
      sum += fixed;
    }
    const unsigned __int128 order =
        static_cast<unsigned __int128>(g.perms.size());
    EBA_ASSERT(sum % order == 0);  // Burnside: the average is an integer
    const unsigned __int128 orbits = sum / order;
    if (total > kU128Max - orbits) return std::nullopt;
    total += orbits;
  }
  if (total > static_cast<unsigned __int128>(~std::uint64_t{0}))
    return std::nullopt;
  return static_cast<std::uint64_t>(total);
}

std::uint64_t count_canonical_adversaries(const EnumerationConfig& cfg) {
  const auto count = try_count_canonical_adversaries(cfg);
  EBA_REQUIRE(count.has_value(),
              "orbit count overflows the checked 64-bit range");
  return *count;
}

}  // namespace eba
