#include "failure/pattern.hpp"

namespace eba {

FailurePattern::FailurePattern(int n, AgentSet nonfaulty)
    : n_(n), nonfaulty_(nonfaulty) {
  EBA_REQUIRE(n >= 1 && n <= kMaxAgents, "agent count out of range");
  EBA_REQUIRE(nonfaulty.subset_of(AgentSet::all(n)), "nonfaulty set out of range");
}

void FailurePattern::ensure_round(int m) {
  EBA_REQUIRE(m >= 0, "negative round");
  if (static_cast<int>(drops_.size()) <= m)
    drops_.resize(static_cast<std::size_t>(m) + 1,
                  std::vector<AgentSet>(static_cast<std::size_t>(n_)));
}

void FailurePattern::drop(int m, AgentId from, AgentId to) {
  EBA_REQUIRE(from >= 0 && from < n_ && to >= 0 && to < n_, "agent out of range");
  EBA_REQUIRE(from != to, "self-delivery cannot be dropped");
  EBA_REQUIRE(!nonfaulty_.contains(from),
              "sending omissions only affect faulty senders");
  ensure_round(m);
  drops_[static_cast<std::size_t>(m)][static_cast<std::size_t>(from)].insert(to);
}

void FailurePattern::silence(int m, AgentId from) {
  for (AgentId to = 0; to < n_; ++to)
    if (to != from) drop(m, from, to);
}

void FailurePattern::silence_forever(AgentId from, int rounds) {
  for (int m = 0; m < rounds; ++m) silence(m, from);
}

bool FailurePattern::delivered(int m, AgentId from, AgentId to) const {
  if (from == to) return true;
  if (m < 0 || m >= static_cast<int>(drops_.size())) return true;
  return !drops_[static_cast<std::size_t>(m)][static_cast<std::size_t>(from)]
              .contains(to);
}

AgentSet FailurePattern::dropped(int m, AgentId from) const {
  if (m < 0 || m >= static_cast<int>(drops_.size())) return {};
  return drops_[static_cast<std::size_t>(m)][static_cast<std::size_t>(from)];
}

bool FailurePattern::is_crash() const {
  // Crash semantics over the recorded prefix: an agent may drop an arbitrary
  // subset of receivers in its crash round, but from the next recorded round
  // onward it must drop everything.
  for (AgentId i = 0; i < n_; ++i) {
    bool crashed = false;
    for (int m = 0; m < static_cast<int>(drops_.size()); ++m) {
      const AgentSet d = dropped(m, i);
      if (crashed && d.size() != n_ - 1) return false;
      if (!d.empty()) crashed = true;
    }
  }
  return true;
}

}  // namespace eba
