#include "failure/pattern.hpp"

namespace eba {

FailurePattern::FailurePattern(int n, AgentSet nonfaulty)
    : n_(n), nonfaulty_(nonfaulty) {
  EBA_REQUIRE(n >= 1 && n <= kMaxAgents, "agent count out of range");
  EBA_REQUIRE(nonfaulty.subset_of(AgentSet::all(n)), "nonfaulty set out of range");
}

void FailurePattern::ensure_round(int m) {
  EBA_REQUIRE(m >= 0, "negative round");
  if (static_cast<int>(drops_.size()) <= m)
    drops_.resize(static_cast<std::size_t>(m) + 1,
                  std::vector<AgentSet>(static_cast<std::size_t>(n_)));
}

void FailurePattern::ensure_receive_round(int m) {
  EBA_REQUIRE(m >= 0, "negative round");
  if (static_cast<int>(recv_drops_.size()) <= m)
    recv_drops_.resize(static_cast<std::size_t>(m) + 1,
                       std::vector<AgentSet>(static_cast<std::size_t>(n_)));
}

void FailurePattern::drop(int m, AgentId from, AgentId to) {
  EBA_REQUIRE(from >= 0 && from < n_ && to >= 0 && to < n_, "agent out of range");
  EBA_REQUIRE(from != to, "self-delivery cannot be dropped");
  EBA_REQUIRE(!nonfaulty_.contains(from),
              "sending omissions only affect faulty senders");
  ensure_round(m);
  drops_[static_cast<std::size_t>(m)][static_cast<std::size_t>(from)].insert(to);
}

void FailurePattern::drop_receive(int m, AgentId from, AgentId to) {
  EBA_REQUIRE(from >= 0 && from < n_ && to >= 0 && to < n_, "agent out of range");
  EBA_REQUIRE(from != to, "self-delivery cannot be dropped");
  EBA_REQUIRE(!nonfaulty_.contains(to),
              "receive omissions only affect faulty receivers");
  ensure_receive_round(m);
  recv_drops_[static_cast<std::size_t>(m)][static_cast<std::size_t>(to)].insert(
      from);
}

void FailurePattern::silence(int m, AgentId from) {
  for (AgentId to = 0; to < n_; ++to)
    if (to != from) drop(m, from, to);
}

void FailurePattern::silence_forever(AgentId from, int rounds) {
  for (int m = 0; m < rounds; ++m) silence(m, from);
}

void FailurePattern::deafen(int m, AgentId to) {
  for (AgentId from = 0; from < n_; ++from)
    if (from != to) drop_receive(m, from, to);
}

void FailurePattern::deafen_forever(AgentId to, int rounds) {
  for (int m = 0; m < rounds; ++m) deafen(m, to);
}

bool FailurePattern::delivered(int m, AgentId from, AgentId to) const {
  if (from == to) return true;
  if (m >= 0 && m < static_cast<int>(drops_.size()) &&
      drops_[static_cast<std::size_t>(m)][static_cast<std::size_t>(from)]
          .contains(to))
    return false;
  if (m >= 0 && m < static_cast<int>(recv_drops_.size()) &&
      recv_drops_[static_cast<std::size_t>(m)][static_cast<std::size_t>(to)]
          .contains(from))
    return false;
  return true;
}

AgentSet FailurePattern::dropped(int m, AgentId from) const {
  if (m < 0 || m >= static_cast<int>(drops_.size())) return {};
  return drops_[static_cast<std::size_t>(m)][static_cast<std::size_t>(from)];
}

AgentSet FailurePattern::dropped_receive(int m, AgentId to) const {
  if (m < 0 || m >= static_cast<int>(recv_drops_.size())) return {};
  return recv_drops_[static_cast<std::size_t>(m)][static_cast<std::size_t>(to)];
}

bool FailurePattern::has_receive_drops() const {
  for (const auto& round : recv_drops_)
    for (const AgentSet& row : round)
      if (!row.empty()) return true;
  return false;
}

bool FailurePattern::is_crash() const {
  // Crash semantics over the recorded prefix: an agent may drop an arbitrary
  // subset of receivers in its crash round, but from the next recorded round
  // onward it must drop everything.
  for (AgentId i = 0; i < n_; ++i) {
    bool crashed = false;
    for (int m = 0; m < static_cast<int>(drops_.size()); ++m) {
      const AgentSet d = dropped(m, i);
      if (crashed && d.size() != n_ - 1) return false;
      if (!d.empty()) crashed = true;
    }
  }
  return true;
}

}  // namespace eba
