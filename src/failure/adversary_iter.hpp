// Lazy enumeration of the SO(t) and GO(t) adversary spaces.
//
// The seed enumerator packed the whole drop tensor of a pattern into one
// `uint64_t` counter, which capped exhaustive enumeration at 48 drop bits
// (n = 4 in practice). `AdversaryIterator` replaces the single counter with
// one drop *word* per (round, faulty sender) — a receiver mask cycled with
// the subset trick `next = (cur - allowed) & allowed` — chained little-endian
// like a multi-digit counter. The visiting order is identical to the seed's
// (faulty-set sizes ascending, faulty sets in combination order, drop bits
// counting up with (round 0, first faulty sender, first receiver slot) least
// significant), there is no ceiling on the total number of drop bits, and a
// pattern only ever exists one at a time, so early-stopping consumers pay
// for exactly what they visit.
//
// Under FailureModel::general the chain is doubled: after the send-plane
// words comes one receive-drop word per (round, faulty receiver) — a sender
// mask cycled with the same subset trick — so the GO(t) walk visits every
// (send plane, receive plane) combination. The send-plane block is less
// significant, which makes the first 2^(send bits) GO patterns of each
// faulty set exactly the SO patterns of that set (empty receive plane); the
// SO↔GO differential tests pin this prefix property.
#pragma once

#include <cstdint>
#include <vector>

#include "failure/pattern.hpp"

namespace eba {
namespace detail {

/// Advances `idx` to the next |idx|-combination of {0..n-1} in the standard
/// combination order; false when exhausted. Shared by the lazy iterator and
/// the orbit expansion so the enumeration order is defined in one place.
inline bool next_combination(std::vector<AgentId>& idx, int n) {
  const int k = static_cast<int>(idx.size());
  int pos = k - 1;
  while (pos >= 0 && idx[static_cast<std::size_t>(pos)] == n - k + pos) --pos;
  if (pos < 0) return false;
  ++idx[static_cast<std::size_t>(pos)];
  for (int j = pos + 1; j < k; ++j)
    idx[static_cast<std::size_t>(j)] = idx[static_cast<std::size_t>(j - 1)] + 1;
  return true;
}

/// Advances the little-endian chain of per-(round, sender) drop words: word
/// w cycles through the subsets of allowed[w % k] in compressed-counter
/// order via (cur - allowed) & allowed, and a wrap back to 0 carries into
/// word w+1. Returns false when every word wrapped (the chain is exhausted).
inline bool advance_drop_words(std::vector<std::uint64_t>& words,
                               const std::vector<std::uint64_t>& allowed,
                               int k) {
  for (std::size_t w = 0; w < words.size(); ++w) {
    const std::uint64_t a =
        allowed[w % static_cast<std::size_t>(k > 0 ? k : 1)];
    words[w] = (words[w] - a) & a;
    if (words[w] != 0) return true;
  }
  return false;
}

}  // namespace detail

/// Parameters for exhaustive enumeration. `rounds` bounds the prefix in
/// which drops may occur; later rounds are failure-free. The number of
/// patterns is sum over faulty sets F of 2^(|F| * (n-1) * rounds) for SO and
/// 2^(2 * |F| * (n-1) * rounds) for GO — there is no hard ceiling, but a
/// non-early-stopping walk of a large config simply never terminates, so
/// keep n, t and rounds small (or consume the symmetry-reduced enumeration
/// in failure/canonical.hpp).
struct EnumerationConfig {
  int n = 3;
  int t = 1;
  int rounds = 2;
  /// Which omission model's pattern space to walk. `sending` leaves every
  /// pre-GO call site byte-identical; `general` adds the receive plane.
  FailureModel model = FailureModel::sending;
};

/// The γ_go(n, t) context's adversary space: GO(t) patterns with drops (on
/// either plane) confined to the first `rounds` rounds.
[[nodiscard]] inline EnumerationConfig go_config(int n, int t, int rounds) {
  return EnumerationConfig{
      .n = n, .t = t, .rounds = rounds, .model = FailureModel::general};
}

/// Lazy iterator over every failure pattern of the configured model with
/// drops confined to the first `rounds` rounds.
///
///   AdversaryIterator it(cfg);
///   while (const FailurePattern* p = it.next()) consume(*p);
class AdversaryIterator {
 public:
  explicit AdversaryIterator(const EnumerationConfig& cfg);

  /// Advances to the next pattern. The returned pointer is owned by the
  /// iterator and valid until the next call; nullptr means exhausted.
  [[nodiscard]] const FailurePattern* next();

  /// Patterns yielded so far.
  [[nodiscard]] std::uint64_t yielded() const { return yielded_; }

 private:
  /// Starts the walk of drop words for the current faulty set.
  void start_faulty_set();
  /// Advances the (faulty set, drop words) state; false when k is exhausted.
  [[nodiscard]] bool advance_within_k();
  /// Builds current_ from faulty_ and words_.
  void materialize();

  EnumerationConfig cfg_;
  int k_ = 0;                    ///< current faulty-set size
  bool fresh_k_ = true;          ///< next() must emit the first pattern of k_
  bool done_ = false;
  std::vector<AgentId> idx_;     ///< combination walk over faulty sets
  AgentSet faulty_;
  /// Send block: words_[m * k + s] = receiver mask dropped by the s-th
  /// faulty agent in round m+1. Under FailureModel::general a receive block
  /// of the same shape follows at offset rounds * k: words_[rounds * k +
  /// m * k + s] = sender mask receive-dropped by the s-th faulty agent in
  /// round m+1. allowed_[s] = all agents except the s-th faulty agent, the
  /// legal mask for both of its blocks.
  std::vector<std::uint64_t> words_;
  std::vector<std::uint64_t> allowed_;
  FailurePattern current_;
  std::uint64_t yielded_ = 0;
};

}  // namespace eba
