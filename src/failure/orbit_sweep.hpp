// Representative-world sweeps: the quotient of the full verification
// context (all adversaries × all preference vectors) by agent renaming.
//
// A "world" here is one (failure pattern, preference vector) pair — exactly
// what the exhaustive spec/domination sweeps and the synthesizer's context
// builders iterate over. The renaming group acts diagonally: π carries
// (α, p) to (π·α, π·p), and by protocol equivariance the resulting run is
// the agent-relabeling of the original. Any per-run-invariant property —
// spec verdicts, worst decision rounds, message/bit totals — therefore has
// the same value on every world of an orbit, so a whole-space sweep may
// visit one representative per orbit and weight it by the orbit size.
//
// The orbit structure factors: pattern orbits come from
// enumerate_canonical_adversaries, and within one pattern orbit the
// diagonal action on preference cubes reduces to the representative
// pattern's stabilizer acting on preference masks (failure/canonical.hpp's
// PreferenceQuotient). Orbit size = pattern multiplicity × preference-class
// size, and the sizes over all representatives sum to exactly
// count_adversaries(cfg) × 2^n — each world of the context is covered by
// exactly one representative.
//
// NOT sound for epistemic checks: knowledge needs the full run set
// (kripke/system.hpp expands orbits back; this header is for the sweeps
// that don't).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "failure/adversary_iter.hpp"
#include "failure/pattern.hpp"

namespace eba {

/// Invokes `fn(pattern, prefs, weight)` once per orbit of the diagonal
/// renaming action on (adversary, preference vector) worlds of `cfg`, where
/// weight is the orbit size. Stops early when fn returns false. Returns the
/// total weight visited (== count_adversaries(cfg) * 2^n on a full sweep).
std::uint64_t for_each_representative_world(
    const EnumerationConfig& cfg,
    const std::function<bool(const FailurePattern&, const std::vector<Value>&,
                             std::uint64_t)>& fn);

}  // namespace eba
