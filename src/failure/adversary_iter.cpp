#include "failure/adversary_iter.hpp"

namespace eba {

AdversaryIterator::AdversaryIterator(const EnumerationConfig& cfg)
    : cfg_(cfg), current_(cfg.n >= 1 ? cfg.n : 1, AgentSet{}) {
  EBA_REQUIRE(cfg.n >= 1 && cfg.n <= kMaxAgents, "agent count out of range");
  EBA_REQUIRE(cfg.t >= 0 && cfg.t < cfg.n, "need 0 <= t < n");
  EBA_REQUIRE(cfg.rounds >= 0, "negative round prefix");
  start_faulty_set();
}

void AdversaryIterator::start_faulty_set() {
  idx_.assign(static_cast<std::size_t>(k_), 0);
  for (int i = 0; i < k_; ++i) idx_[static_cast<std::size_t>(i)] = i;
  faulty_ = AgentSet{};
  for (AgentId i : idx_) faulty_.insert(i);
  allowed_.assign(static_cast<std::size_t>(k_), 0);
  for (int s = 0; s < k_; ++s)
    allowed_[static_cast<std::size_t>(s)] =
        AgentSet::all(cfg_.n)
            .minus(AgentSet{idx_[static_cast<std::size_t>(s)]})
            .bits();
  const std::size_t planes = cfg_.model == FailureModel::general ? 2 : 1;
  words_.assign(planes * static_cast<std::size_t>(k_) *
                    static_cast<std::size_t>(cfg_.rounds),
                0);
}

bool AdversaryIterator::advance_within_k() {
  if (detail::advance_drop_words(words_, allowed_, k_)) return true;
  // All drop words wrapped: advance the faulty set (combination walk).
  if (!detail::next_combination(idx_, cfg_.n)) return false;
  faulty_ = AgentSet{};
  for (AgentId i : idx_) faulty_.insert(i);
  for (int s = 0; s < k_; ++s)
    allowed_[static_cast<std::size_t>(s)] =
        AgentSet::all(cfg_.n)
            .minus(AgentSet{idx_[static_cast<std::size_t>(s)]})
            .bits();
  for (auto& w : words_) w = 0;
  return true;
}

void AdversaryIterator::materialize() {
  current_ = FailurePattern(cfg_.n, faulty_.complement(cfg_.n));
  for (int m = 0; m < cfg_.rounds; ++m)
    for (int s = 0; s < k_; ++s) {
      const AgentId from = idx_[static_cast<std::size_t>(s)];
      const AgentSet dropped(
          words_[static_cast<std::size_t>(m) * static_cast<std::size_t>(k_) +
                 static_cast<std::size_t>(s)]);
      for (AgentId to : dropped) current_.drop(m, from, to);
    }
  if (cfg_.model != FailureModel::general) return;
  const std::size_t recv_base =
      static_cast<std::size_t>(cfg_.rounds) * static_cast<std::size_t>(k_);
  for (int m = 0; m < cfg_.rounds; ++m)
    for (int s = 0; s < k_; ++s) {
      const AgentId to = idx_[static_cast<std::size_t>(s)];
      const AgentSet dropped(
          words_[recv_base +
                 static_cast<std::size_t>(m) * static_cast<std::size_t>(k_) +
                 static_cast<std::size_t>(s)]);
      for (AgentId from : dropped) current_.drop_receive(m, from, to);
    }
}

const FailurePattern* AdversaryIterator::next() {
  if (done_) return nullptr;
  if (!fresh_k_ && !advance_within_k()) {
    ++k_;
    if (k_ > cfg_.t) {
      done_ = true;
      return nullptr;
    }
    start_faulty_set();
  }
  fresh_k_ = false;
  materialize();
  ++yielded_;
  return &current_;
}

}  // namespace eba
