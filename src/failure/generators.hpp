// Adversary generators: exhaustive enumeration of SO(t)/GO(t) patterns over
// a bounded round prefix (for model checking and small exhaustive tests),
// random sampling (for property tests and benches), and the canned scenarios
// used by the paper's examples. The model is selected by
// EnumerationConfig::model (adversary_iter.hpp); every counting function is
// overflow-checked for both models from day one — there is no silent wrap.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "failure/adversary_iter.hpp"
#include "failure/pattern.hpp"
#include "stats/rng.hpp"

namespace eba {

/// Invokes `fn` on every failure pattern of `config.model` with drops
/// confined to the first `rounds` rounds (lazily, via AdversaryIterator — no
/// ceiling on the drop-bit count). Returns the number of patterns visited.
/// If `fn` returns false, enumeration stops early.
///
/// The space is exponential; full walks are only feasible for small
/// (n, t, rounds). For relabeling-invariant sweeps, the symmetry-reduced
/// enumeration in failure/canonical.hpp visits one representative per
/// agent-renaming orbit instead.
std::uint64_t enumerate_adversaries(
    const EnumerationConfig& config,
    const std::function<bool(const FailurePattern&)>& fn);

/// Number of patterns enumerate_adversaries would visit — sum over k <= t of
/// C(n,k) * 2^(k*(n-1)*rounds) for SO and C(n,k) * 2^(2*k*(n-1)*rounds) for
/// GO — or nullopt if the count overflows uint64.
[[nodiscard]] std::optional<std::uint64_t> try_count_adversaries(
    const EnumerationConfig& config);

/// Throwing variant of try_count_adversaries: raises an explicit contract
/// error instead of silently wrapping when the count overflows uint64.
[[nodiscard]] std::uint64_t count_adversaries(const EnumerationConfig& config);

/// Convenience twins for the GO(t) space: the count of `config` with
/// model = general, regardless of what `config.model` says.
[[nodiscard]] std::optional<std::uint64_t> try_count_go_adversaries(
    const EnumerationConfig& config);
[[nodiscard]] std::uint64_t count_go_adversaries(
    const EnumerationConfig& config);

/// Samples an SO(t) pattern: chooses `num_faulty` distinct faulty agents
/// uniformly, then drops each (round, faulty sender, receiver) message
/// independently with probability `drop_prob`, over the first `rounds`
/// rounds.
[[nodiscard]] FailurePattern sample_adversary(int n, int num_faulty, int rounds,
                                              double drop_prob, Rng& rng);

/// Samples a GO(t) pattern: faulty agents as in sample_adversary, then each
/// (round, faulty sender, receiver) message is send-dropped with probability
/// `drop_prob` and each (round, sender, faulty receiver) message is
/// receive-dropped with probability `recv_drop_prob`, independently.
[[nodiscard]] FailurePattern sample_go_adversary(int n, int num_faulty,
                                                 int rounds, double drop_prob,
                                                 double recv_drop_prob,
                                                 Rng& rng);

/// All initial-preference vectors for n agents (2^n of them), in ascending
/// order of mask, where bit i of the mask is agent i's preference.
[[nodiscard]] std::vector<std::vector<Value>> all_preference_vectors(int n);

/// The single preference vector of a mask (bit i = agent i's preference):
/// preferences_of_mask(mask, n) == all_preference_vectors(n)[mask].
[[nodiscard]] std::vector<Value> preferences_of_mask(std::uint64_t mask, int n);

/// A random preference vector.
[[nodiscard]] std::vector<Value> sample_preferences(int n, Rng& rng);

/// Scenario of Example 7.1: the agents in `silent` are faulty and send no
/// messages during the first `rounds` rounds.
[[nodiscard]] FailurePattern silent_agents_pattern(int n, AgentSet silent,
                                                   int rounds);

/// The GO analogue of the Example 7.1 scenario: the agents in `silent` are
/// faulty and neither send nor receive during the first `rounds` rounds
/// (deaf and mute). Used by the Example71Go test and bench_go.
[[nodiscard]] FailurePattern deaf_mute_agents_pattern(int n, AgentSet silent,
                                                      int rounds);

/// Crash scenario: agent `who` crashes in round `round+1`, delivering only to
/// `survivors_of_round` in that round and nothing afterwards (through round
/// `rounds`).
[[nodiscard]] FailurePattern crash_pattern(int n, AgentId who, int round,
                                           AgentSet survivors_of_round,
                                           int rounds);

}  // namespace eba
