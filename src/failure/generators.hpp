// Adversary generators: exhaustive enumeration of SO(t) patterns over a
// bounded round prefix (for model checking and small exhaustive tests),
// random sampling (for property tests and benches), and the canned scenarios
// used by the paper's examples.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "failure/adversary_iter.hpp"
#include "failure/pattern.hpp"
#include "stats/rng.hpp"

namespace eba {

/// Invokes `fn` on every SO(t) failure pattern with drops confined to the
/// first `rounds` rounds (lazily, via AdversaryIterator — no ceiling on the
/// drop-bit count). Returns the number of patterns visited. If `fn` returns
/// false, enumeration stops early.
///
/// The space is exponential; full walks are only feasible for small
/// (n, t, rounds). For relabeling-invariant sweeps, the symmetry-reduced
/// enumeration in failure/canonical.hpp visits one representative per
/// agent-renaming orbit instead.
std::uint64_t enumerate_adversaries(
    const EnumerationConfig& config,
    const std::function<bool(const FailurePattern&)>& fn);

/// Number of patterns enumerate_adversaries would visit
/// (sum over k <= t of C(n,k) * 2^(k*(n-1)*rounds)), or nullopt if the
/// count overflows uint64.
[[nodiscard]] std::optional<std::uint64_t> try_count_adversaries(
    const EnumerationConfig& config);

/// Throwing variant of try_count_adversaries: raises an explicit contract
/// error instead of silently wrapping when the count overflows uint64.
[[nodiscard]] std::uint64_t count_adversaries(const EnumerationConfig& config);

/// Samples an SO(t) pattern: chooses `num_faulty` distinct faulty agents
/// uniformly, then drops each (round, faulty sender, receiver) message
/// independently with probability `drop_prob`, over the first `rounds`
/// rounds.
[[nodiscard]] FailurePattern sample_adversary(int n, int num_faulty, int rounds,
                                              double drop_prob, Rng& rng);

/// All initial-preference vectors for n agents (2^n of them).
[[nodiscard]] std::vector<std::vector<Value>> all_preference_vectors(int n);

/// A random preference vector.
[[nodiscard]] std::vector<Value> sample_preferences(int n, Rng& rng);

/// Scenario of Example 7.1: the agents in `silent` are faulty and send no
/// messages during the first `rounds` rounds.
[[nodiscard]] FailurePattern silent_agents_pattern(int n, AgentSet silent,
                                                   int rounds);

/// Crash scenario: agent `who` crashes in round `round+1`, delivering only to
/// `survivors_of_round` in that round and nothing afterwards (through round
/// `rounds`).
[[nodiscard]] FailurePattern crash_pattern(int n, AgentId who, int round,
                                           AgentSet survivors_of_round,
                                           int rounds);

}  // namespace eba
