// Symmetry reduction of the SO(t) and GO(t) adversary spaces (cf. ROADMAP
// "failure-pattern generator scaling"; the same lever epistemic model
// checkers like MCK use against state-space blowup).
//
// Why renaming is a symmetry: nothing in the SO(t)/GO(t) contexts
// distinguishes one agent id from another — the enumeration ranges over
// *all* faulty sets and *all* drop tensors, and the library's protocols
// (P_min, P_basic, P_opt, P_opt_go) treat agents symmetrically (their
// decisions depend on initial values and received messages, never on
// numeric ids). Relabeling the agents of a failure pattern α by any
// permutation π therefore yields a pattern π·α whose runs are the
// agent-relabeled runs of α: run(π·α, π·prefs) makes agent π(i) do exactly
// what agent i does in run(α, prefs) (tests/test_canonical.cpp checks this
// equivariance mechanically). Any whole-space sweep of a
// relabeling-invariant property — spec violations, worst decision rounds,
// message-bit totals — may consequently visit one representative per orbit
// of the S_n action and weight it by the orbit size, instead of visiting
// every pattern.
//
// In particular "renaming within the faulty/nonfaulty partition": every
// permutation maps the faulty set onto the image pattern's faulty set, so an
// orbit is determined by (a) the faulty-set size k — giving the C(n, k)
// factor — and (b) the orbit of the drop tensor under the stabilizer
// S_k × S_{n-k} of the canonical faulty set {0..k-1}, which permutes faulty
// senders among themselves and nonfaulty agents among themselves (receivers
// of either kind are relabeled along).
//
// Under general omissions the renaming acts on BOTH planes at once: π·α
// send-drops (m, π(i) → π(j)) iff α send-drops (m, i → j) and
// receive-drops (m, π(i) → π(j)) iff α receive-drops (m, i → j). An orbit
// is therefore an orbit of the *pair* of tensors, and two GO patterns with
// the same send plane but different receive planes are in different orbits
// (unless a permutation maps one pair onto the other). Since only faulty
// agents carry drops on either plane, the same S_k × S_{n-k} stabilizer
// machinery applies with the tensor doubled.
//
// The canonical representative of an orbit is the pattern with faulty set
// {0..k-1} whose drop tensor (per-(round, sender) receiver masks, compared
// round-major, with the receive-plane block after the send-plane block) is
// lexicographically minimal under S_k × S_{n-k}.
//
// NOTE for knowledge-based model checks: epistemic operators are NOT
// invariant under *dropping* orbit members — removing a run from an
// interpreted system removes a point agents must consider possible and
// manufactures spurious knowledge. Knowledge systems therefore expand each
// orbit back to all members (expand_orbit; see kripke/system.hpp); only
// per-run-invariant sweeps may consume bare representatives.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "failure/adversary_iter.hpp"
#include "failure/pattern.hpp"

namespace eba {

/// Largest n the canonicalization helpers accept: the canonical test is
/// factorial in max(k, n-k), so beyond this the exhaustive enumeration it
/// serves is unreachable anyway.
inline constexpr int kMaxCanonicalAgents = 10;

/// Relabels agents of `p` by `perm` (perm[i] = new id of agent i):
/// the image drops (m, perm(i) -> perm(j)) iff p drops (m, i -> j).
[[nodiscard]] FailurePattern relabeled(const FailurePattern& p,
                                       const std::vector<AgentId>& perm);

/// True iff `p` is the canonical representative of its orbit: its faulty
/// set is {0..k-1} and its drop tensor is lexicographically minimal under
/// S_k × S_{n-k}.
[[nodiscard]] bool is_canonical(const FailurePattern& p);

/// The canonical representative of p's orbit under agent renaming.
[[nodiscard]] FailurePattern canonicalize(const FailurePattern& p);

/// Size of p's orbit under the full S_n renaming action:
/// C(n, k) * |S_k × S_{n-k} orbit of the drop tensor| (orbit–stabilizer).
[[nodiscard]] std::uint64_t orbit_size(const FailurePattern& p);

/// Every distinct pattern of the orbit of canonical representative `rep`
/// (deterministic order: faulty sets in combination order, tensor images
/// sorted). Precondition: is_canonical(rep).
[[nodiscard]] std::vector<FailurePattern> expand_orbit(
    const FailurePattern& rep);

/// Streaming expand_orbit: invokes `fn(member)` once per distinct orbit
/// member, in exactly the materializing overload's order, without
/// allocating the member vector. Stops early when fn returns false.
/// Returns the number of members visited. Precondition: is_canonical(rep).
std::uint64_t expand_orbit(const FailurePattern& rep,
                           const std::function<bool(const FailurePattern&)>& fn);

/// As the streaming expand_orbit, but additionally hands fn a renaming π
/// with member == relabeled(rep, π) (perm[i] = new id of agent i). The
/// first member is rep itself under the identity renaming. This is the
/// run-level seam: by protocol equivariance, run(π·α, π·prefs) is the
/// agent-relabeling of run(α, prefs), so a consumer holding the
/// representative's simulated runs can produce every member's runs with
/// sim/relabel.hpp instead of re-simulating (kripke/system.hpp).
/// Precondition: is_canonical(rep).
std::uint64_t expand_orbit_perms(
    const FailurePattern& rep,
    const std::function<bool(const FailurePattern&,
                             const std::vector<AgentId>&)>& fn);

/// The stabilizer of canonical representative `rep` inside S_k × S_{n-k}:
/// every renaming σ with relabeled(rep, σ) == rep, identity first. For
/// k == 0 this is all of S_n (n! elements — prefer preference_quotient,
/// which special-cases the drop-free orbit). Precondition: is_canonical(rep).
[[nodiscard]] std::vector<std::vector<AgentId>> orbit_stabilizer(
    const FailurePattern& rep);

/// One equivalence class of preference-vector bitmasks (bit i set = agent i
/// prefers 1) under rep's stabilizer: the lexicographically smallest mask
/// of the class, and the class size.
struct PreferenceClass {
  std::uint64_t mask = 0;
  std::uint64_t size = 0;
  friend bool operator==(const PreferenceClass&,
                         const PreferenceClass&) = default;
};

/// The quotient of all 2^n preference masks by rep's stabilizer. Since
/// stabilizer elements fix the pattern, run(rep, σ·p) is the σ-relabeling
/// of run(rep, p): one simulation per class representative covers the whole
/// preference cube ("preference-vector quotienting"). Per-run-invariant
/// sweeps weight each class representative by its size; run-level reuse
/// relabels through `sigma`. Precondition: is_canonical(rep).
struct PreferenceQuotient {
  /// Classes in ascending order of representative mask; sizes sum to 2^n.
  std::vector<PreferenceClass> classes;
  /// class_of[mask] -> index into `classes`.
  std::vector<std::uint32_t> class_of;
  /// sigma[mask]: a stabilizer element with
  /// AgentSet(classes[class_of[mask]].mask).permuted(sigma[mask]) == mask
  /// (the identity for class representatives).
  std::vector<std::vector<AgentId>> sigma;
};

[[nodiscard]] PreferenceQuotient preference_quotient(const FailurePattern& rep);

/// Just the classes of preference_quotient(rep) (no per-mask tables).
[[nodiscard]] std::vector<PreferenceClass> preference_classes(
    const FailurePattern& rep);

/// Invokes `fn(representative, multiplicity)` once per orbit of the
/// cfg.model space of `cfg` (SO or GO), where multiplicity =
/// orbit_size(representative), so that the multiplicities over all visited
/// orbits sum to exactly count_adversaries(cfg). Stops early when fn returns
/// false. Returns the number of orbits visited.
std::uint64_t enumerate_canonical_adversaries(
    const EnumerationConfig& cfg,
    const std::function<bool(const FailurePattern&, std::uint64_t)>& fn);

/// Number of orbits enumerate_canonical_adversaries visits, computed in
/// closed form by Burnside's lemma (no enumeration): for each k,
/// (1/|S_k × S_{n-k}|) * sum over group elements of 2^(planes * rounds *
/// #cycles of the element's action on (sender, receiver) cells), where
/// planes is 1 for SO and 2 for GO (the action on receive-plane cells is
/// isomorphic to the action on send-plane cells, so the cycle count simply
/// doubles). Overflow-checked: nullopt when any intermediate exceeds the
/// checked 128-bit accumulator or the result exceeds uint64.
[[nodiscard]] std::optional<std::uint64_t> try_count_canonical_adversaries(
    const EnumerationConfig& cfg);

/// Throwing variant of try_count_canonical_adversaries.
[[nodiscard]] std::uint64_t count_canonical_adversaries(
    const EnumerationConfig& cfg);

}  // namespace eba
