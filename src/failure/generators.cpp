#include "failure/generators.hpp"

#include <algorithm>

namespace eba {
namespace {

/// Enumerates subsets of {0..n-1} of size exactly k, invoking fn(mask).
/// Returns false if fn requested early stop.
bool for_each_subset_of_size(int n, int k,
                             const std::function<bool(AgentSet)>& fn) {
  std::vector<AgentId> idx(static_cast<std::size_t>(k));
  // Standard combination walk.
  for (int i = 0; i < k; ++i) idx[static_cast<std::size_t>(i)] = i;
  if (k == 0) return fn(AgentSet{});
  while (true) {
    AgentSet s;
    for (AgentId i : idx) s.insert(i);
    if (!fn(s)) return false;
    int pos = k - 1;
    while (pos >= 0 &&
           idx[static_cast<std::size_t>(pos)] == n - k + pos)
      --pos;
    if (pos < 0) return true;
    ++idx[static_cast<std::size_t>(pos)];
    for (int j = pos + 1; j < k; ++j)
      idx[static_cast<std::size_t>(j)] = idx[static_cast<std::size_t>(j - 1)] + 1;
  }
}

/// Builds a pattern from a drop bitmap: bit index runs over
/// (round, faulty-sender-index, receiver-slot).
FailurePattern pattern_from_bits(int n, AgentSet faulty, int rounds,
                                 std::uint64_t bits) {
  FailurePattern p(n, faulty.complement(n));
  int bit = 0;
  for (int m = 0; m < rounds; ++m) {
    for (AgentId from : faulty) {
      for (AgentId to = 0; to < n; ++to) {
        if (to == from) continue;
        if ((bits >> bit) & 1u) p.drop(m, from, to);
        ++bit;
      }
    }
  }
  return p;
}

}  // namespace

std::uint64_t enumerate_adversaries(
    const EnumerationConfig& cfg,
    const std::function<bool(const FailurePattern&)>& fn) {
  EBA_REQUIRE(cfg.n >= 1 && cfg.t >= 0 && cfg.t < cfg.n, "bad config");
  std::uint64_t visited = 0;
  bool keep_going = true;
  for (int k = 0; k <= cfg.t && keep_going; ++k) {
    const int bits_per_pattern = k * (cfg.n - 1) * cfg.rounds;
    EBA_REQUIRE(bits_per_pattern < 48,
                "enumeration space too large; reduce n, t, or rounds");
    keep_going = for_each_subset_of_size(cfg.n, k, [&](AgentSet faulty) {
      const std::uint64_t combos = std::uint64_t{1} << bits_per_pattern;
      for (std::uint64_t bits = 0; bits < combos; ++bits) {
        ++visited;
        if (!fn(pattern_from_bits(cfg.n, faulty, cfg.rounds, bits)))
          return false;
      }
      return true;
    });
  }
  return visited;
}

std::uint64_t count_adversaries(const EnumerationConfig& cfg) {
  std::uint64_t total = 0;
  for (int k = 0; k <= cfg.t; ++k) {
    // C(n, k) faulty sets, each with 2^(k*(n-1)*rounds) drop combos.
    std::uint64_t choose = 1;
    for (int i = 0; i < k; ++i)
      choose = choose * static_cast<std::uint64_t>(cfg.n - i) /
               static_cast<std::uint64_t>(i + 1);
    total += choose << (k * (cfg.n - 1) * cfg.rounds);
  }
  return total;
}

FailurePattern sample_adversary(int n, int num_faulty, int rounds,
                                double drop_prob, Rng& rng) {
  EBA_REQUIRE(num_faulty >= 0 && num_faulty < n, "bad faulty count");
  // Floyd's algorithm for a uniform k-subset.
  AgentSet faulty;
  for (int j = n - num_faulty; j < n; ++j) {
    const AgentId candidate = rng.below(j + 1);
    if (faulty.contains(candidate))
      faulty.insert(j);
    else
      faulty.insert(candidate);
  }
  FailurePattern p(n, faulty.complement(n));
  for (int m = 0; m < rounds; ++m)
    for (AgentId from : faulty)
      for (AgentId to = 0; to < n; ++to)
        if (to != from && rng.chance(drop_prob)) p.drop(m, from, to);
  return p;
}

std::vector<std::vector<Value>> all_preference_vectors(int n) {
  EBA_REQUIRE(n >= 1 && n < 24, "too many preference vectors to materialize");
  std::vector<std::vector<Value>> out;
  out.reserve(std::size_t{1} << n);
  for (std::uint64_t bits = 0; bits < (std::uint64_t{1} << n); ++bits) {
    std::vector<Value> prefs(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
      prefs[static_cast<std::size_t>(i)] = value_of(static_cast<int>((bits >> i) & 1u));
    out.push_back(std::move(prefs));
  }
  return out;
}

std::vector<Value> sample_preferences(int n, Rng& rng) {
  std::vector<Value> prefs(static_cast<std::size_t>(n));
  for (auto& v : prefs) v = rng.chance(0.5) ? Value::one : Value::zero;
  return prefs;
}

FailurePattern silent_agents_pattern(int n, AgentSet silent, int rounds) {
  FailurePattern p(n, silent.complement(n));
  for (AgentId i : silent) p.silence_forever(i, rounds);
  return p;
}

FailurePattern crash_pattern(int n, AgentId who, int round,
                             AgentSet survivors_of_round, int rounds) {
  AgentSet faulty;
  faulty.insert(who);
  FailurePattern p(n, faulty.complement(n));
  for (AgentId to = 0; to < n; ++to)
    if (to != who && !survivors_of_round.contains(to)) p.drop(round, who, to);
  for (int m = round + 1; m < rounds; ++m) p.silence(m, who);
  return p;
}

}  // namespace eba
