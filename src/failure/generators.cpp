#include "failure/generators.hpp"

#include <algorithm>
#include <limits>

namespace eba {

std::uint64_t enumerate_adversaries(
    const EnumerationConfig& cfg,
    const std::function<bool(const FailurePattern&)>& fn) {
  AdversaryIterator it(cfg);
  while (const FailurePattern* p = it.next())
    if (!fn(*p)) break;
  return it.yielded();
}

std::optional<std::uint64_t> try_count_adversaries(
    const EnumerationConfig& cfg) {
  EBA_REQUIRE(cfg.n >= 1 && cfg.t >= 0 && cfg.t < cfg.n, "bad config");
  EBA_REQUIRE(cfg.rounds >= 0, "negative round prefix");
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  // 128-bit accumulation: with n <= 64 the binomial intermediates can wrap
  // uint64 even when the final count fits (e.g. C(63,31) * 32), and each
  // combos term stays < 2^124, so the running total is checked after every
  // addition and never overflows the accumulator.
  // GO doubles the drop bits per faulty agent: a send word and a receive
  // word per (round, faulty agent).
  const int planes = cfg.model == FailureModel::general ? 2 : 1;
  unsigned __int128 total = 0;
  for (int k = 0; k <= cfg.t; ++k) {
    // C(n, k) faulty sets, each with 2^(planes*k*(n-1)*rounds) drop combos.
    unsigned __int128 choose = 1;
    for (int i = 0; i < k; ++i)
      choose = choose * static_cast<unsigned>(cfg.n - i) /
               static_cast<unsigned>(i + 1);
    const long long shift =
        static_cast<long long>(planes) * k * (cfg.n - 1) * cfg.rounds;
    if (k > 0 && shift >= 64) return std::nullopt;  // 2^shift alone > uint64
    total += choose << shift;
    if (total > kMax) return std::nullopt;
  }
  return static_cast<std::uint64_t>(total);
}

std::uint64_t count_adversaries(const EnumerationConfig& cfg) {
  const auto count = try_count_adversaries(cfg);
  EBA_REQUIRE(count.has_value(),
              "adversary count overflows uint64; use try_count_adversaries "
              "or the orbit counts in failure/canonical.hpp");
  return *count;
}

std::optional<std::uint64_t> try_count_go_adversaries(
    const EnumerationConfig& cfg) {
  EnumerationConfig go = cfg;
  go.model = FailureModel::general;
  return try_count_adversaries(go);
}

std::uint64_t count_go_adversaries(const EnumerationConfig& cfg) {
  EnumerationConfig go = cfg;
  go.model = FailureModel::general;
  return count_adversaries(go);
}

FailurePattern sample_adversary(int n, int num_faulty, int rounds,
                                double drop_prob, Rng& rng) {
  EBA_REQUIRE(num_faulty >= 0 && num_faulty < n, "bad faulty count");
  // Floyd's algorithm for a uniform k-subset.
  AgentSet faulty;
  for (int j = n - num_faulty; j < n; ++j) {
    const AgentId candidate = rng.below(j + 1);
    if (faulty.contains(candidate))
      faulty.insert(j);
    else
      faulty.insert(candidate);
  }
  FailurePattern p(n, faulty.complement(n));
  for (int m = 0; m < rounds; ++m)
    for (AgentId from : faulty)
      for (AgentId to = 0; to < n; ++to)
        if (to != from && rng.chance(drop_prob)) p.drop(m, from, to);
  return p;
}

FailurePattern sample_go_adversary(int n, int num_faulty, int rounds,
                                   double drop_prob, double recv_drop_prob,
                                   Rng& rng) {
  FailurePattern p = sample_adversary(n, num_faulty, rounds, drop_prob, rng);
  for (int m = 0; m < rounds; ++m)
    for (AgentId to : p.faulty())
      for (AgentId from = 0; from < n; ++from)
        if (from != to && rng.chance(recv_drop_prob))
          p.drop_receive(m, from, to);
  return p;
}

std::vector<std::vector<Value>> all_preference_vectors(int n) {
  EBA_REQUIRE(n >= 1 && n < 24, "too many preference vectors to materialize");
  std::vector<std::vector<Value>> out;
  out.reserve(std::size_t{1} << n);
  for (std::uint64_t bits = 0; bits < (std::uint64_t{1} << n); ++bits) {
    std::vector<Value> prefs(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
      prefs[static_cast<std::size_t>(i)] = value_of(static_cast<int>((bits >> i) & 1u));
    out.push_back(std::move(prefs));
  }
  return out;
}

std::vector<Value> preferences_of_mask(std::uint64_t mask, int n) {
  EBA_REQUIRE(n >= 1 && n < 24, "agent count out of range");
  EBA_REQUIRE(mask < (std::uint64_t{1} << n), "mask has bits beyond agent n-1");
  std::vector<Value> prefs(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    prefs[static_cast<std::size_t>(i)] =
        value_of(static_cast<int>((mask >> i) & 1u));
  return prefs;
}

std::vector<Value> sample_preferences(int n, Rng& rng) {
  std::vector<Value> prefs(static_cast<std::size_t>(n));
  for (auto& v : prefs) v = rng.chance(0.5) ? Value::one : Value::zero;
  return prefs;
}

FailurePattern silent_agents_pattern(int n, AgentSet silent, int rounds) {
  FailurePattern p(n, silent.complement(n));
  for (AgentId i : silent) p.silence_forever(i, rounds);
  return p;
}

FailurePattern deaf_mute_agents_pattern(int n, AgentSet silent, int rounds) {
  FailurePattern p = silent_agents_pattern(n, silent, rounds);
  for (AgentId i : silent) p.deafen_forever(i, rounds);
  return p;
}

FailurePattern crash_pattern(int n, AgentId who, int round,
                             AgentSet survivors_of_round, int rounds) {
  AgentSet faulty;
  faulty.insert(who);
  FailurePattern p(n, faulty.complement(n));
  for (AgentId to = 0; to < n; ++to)
    if (to != who && !survivors_of_round.contains(to)) p.drop(round, who, to);
  for (int m = round + 1; m < rounds; ++m) p.silence(m, who);
  return p;
}

}  // namespace eba
