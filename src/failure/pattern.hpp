// Failure patterns (adversaries) and the sending-omissions model SO(t)
// (paper §3).
//
// A failure pattern is a pair (N, F): the set of nonfaulty agents and a map
// F(m, i, j) saying whether the message from i to j in round m+1 is
// delivered. In SO(t) at most t agents are faulty, and only faulty senders
// may have messages dropped. Self-delivery always succeeds (see DESIGN.md).
//
// Drops are stored explicitly for a finite prefix of rounds; beyond the
// stored prefix every message is delivered. This is without loss of
// generality for the protocols in this library, which all decide by round
// t+2.
#pragma once

#include <vector>

#include "core/types.hpp"

namespace eba {

class FailurePattern {
 public:
  /// Pattern with the given nonfaulty set and no drops yet.
  FailurePattern(int n, AgentSet nonfaulty);

  [[nodiscard]] static FailurePattern failure_free(int n) {
    return FailurePattern(n, AgentSet::all(n));
  }

  /// Marks the round-(m+1) message from `from` to `to` as omitted.
  /// Preconditions: `from` is faulty and `from != to`.
  void drop(int m, AgentId from, AgentId to);

  /// Drops every message from `from` to every other agent in round m+1.
  void silence(int m, AgentId from);

  /// Drops every message from `from` in rounds 1..rounds.
  void silence_forever(AgentId from, int rounds);

  [[nodiscard]] bool delivered(int m, AgentId from, AgentId to) const;

  /// Receivers (other than `from` itself) whose round-(m+1) message from
  /// `from` is dropped.
  [[nodiscard]] AgentSet dropped(int m, AgentId from) const;

  [[nodiscard]] int n() const { return n_; }
  [[nodiscard]] AgentSet nonfaulty() const { return nonfaulty_; }
  [[nodiscard]] AgentSet faulty() const { return nonfaulty_.complement(n_); }
  [[nodiscard]] int num_faulty() const { return faulty().size(); }
  [[nodiscard]] bool is_nonfaulty(AgentId i) const {
    return nonfaulty_.contains(i);
  }
  /// Number of round slots with recorded drops.
  [[nodiscard]] int recorded_rounds() const {
    return static_cast<int>(drops_.size());
  }

  /// True iff the pattern is in SO(t): at most t faulty agents (drops from
  /// nonfaulty senders are prevented by construction).
  [[nodiscard]] bool in_so(int t) const { return num_faulty() <= t; }

  /// True iff the pattern additionally satisfies the crash condition: once a
  /// message from i to some agent is dropped in round m+1, every message
  /// from i in all later recorded rounds is dropped.
  [[nodiscard]] bool is_crash() const;

  friend bool operator==(const FailurePattern&, const FailurePattern&) = default;

 private:
  void ensure_round(int m);

  int n_;
  AgentSet nonfaulty_;
  /// drops_[m][from] = receivers dropped in round m+1.
  std::vector<std::vector<AgentSet>> drops_;
};

}  // namespace eba
