// Failure patterns (adversaries) and the two omission failure models of the
// paper (§3): sending omissions SO(t) and general omissions GO(t).
//
// A failure pattern is a pair (N, F): the set of nonfaulty agents and a map
// F(m, i, j) saying whether the message from i to j in round m+1 is
// delivered. The pattern stores the map in two planes with the same chunked
// per-round word layout:
//
//   * the send plane  — drops_[m][from] = receivers whose round-(m+1)
//     message from `from` is dropped *by the sender*; only faulty senders
//     may appear (SO semantics);
//   * the receive plane — recv_drops_[m][to] = senders whose round-(m+1)
//     message to `to` is dropped *by the receiver*; only faulty receivers
//     may appear (the extra power of GO). A receive-dropped message is lost
//     even when the sender is nonfaulty.
//
// A message is delivered iff neither plane drops it. In SO(t) the receive
// plane is empty and at most t agents are faulty; in GO(t) both planes are
// in play. Self-delivery always succeeds in both models (see DESIGN.md).
//
// Drops are stored explicitly for a finite prefix of rounds; beyond the
// stored prefix every message is delivered. This is without loss of
// generality for the protocols in this library, which all decide by round
// t+2.
#pragma once

#include <vector>

#include "core/types.hpp"

namespace eba {

/// The paper's two omission failure models. `sending` = SO(t): only faulty
/// senders lose messages. `general` = GO(t): faulty agents may omit both to
/// send and to receive.
enum class FailureModel : std::uint8_t { sending = 0, general = 1 };

class FailurePattern {
 public:
  /// Pattern with the given nonfaulty set and no drops yet.
  FailurePattern(int n, AgentSet nonfaulty);

  [[nodiscard]] static FailurePattern failure_free(int n) {
    return FailurePattern(n, AgentSet::all(n));
  }

  /// Marks the round-(m+1) message from `from` to `to` as omitted by the
  /// sender. Preconditions: `from` is faulty and `from != to`.
  void drop(int m, AgentId from, AgentId to);

  /// Marks the round-(m+1) message from `from` to `to` as omitted by the
  /// receiver (a general-omission receive fault). Preconditions: `to` is
  /// faulty and `from != to`. The sender may be nonfaulty: the message is
  /// lost regardless.
  void drop_receive(int m, AgentId from, AgentId to);

  /// Drops every message from `from` to every other agent in round m+1.
  void silence(int m, AgentId from);

  /// Drops every message from `from` in rounds 1..rounds.
  void silence_forever(AgentId from, int rounds);

  /// Receive-drops every round-(m+1) message addressed to `to` (a deaf
  /// round of a receive-faulty agent).
  void deafen(int m, AgentId to);

  /// Receive-drops every message to `to` in rounds 1..rounds.
  void deafen_forever(AgentId to, int rounds);

  /// True iff the round-(m+1) message from `from` to `to` survives both
  /// planes.
  [[nodiscard]] bool delivered(int m, AgentId from, AgentId to) const;

  /// Receivers (other than `from` itself) whose round-(m+1) message from
  /// `from` is dropped on the send side.
  [[nodiscard]] AgentSet dropped(int m, AgentId from) const;

  /// Senders (other than `to` itself) whose round-(m+1) message to `to` is
  /// dropped on the receive side.
  [[nodiscard]] AgentSet dropped_receive(int m, AgentId to) const;

  [[nodiscard]] int n() const { return n_; }
  [[nodiscard]] AgentSet nonfaulty() const { return nonfaulty_; }
  [[nodiscard]] AgentSet faulty() const { return nonfaulty_.complement(n_); }
  [[nodiscard]] int num_faulty() const { return faulty().size(); }
  [[nodiscard]] bool is_nonfaulty(AgentId i) const {
    return nonfaulty_.contains(i);
  }
  /// Number of round slots with recorded send drops.
  [[nodiscard]] int recorded_rounds() const {
    return static_cast<int>(drops_.size());
  }
  /// Number of round slots with recorded receive drops.
  [[nodiscard]] int recorded_receive_rounds() const {
    return static_cast<int>(recv_drops_.size());
  }
  /// True iff the receive plane carries at least one drop. An empty receive
  /// plane makes a GO pattern behave bit-identically to the SO pattern with
  /// the same send plane (tests/test_go.cpp pins this).
  [[nodiscard]] bool has_receive_drops() const;

  /// True iff the pattern is in SO(t): at most t faulty agents and an empty
  /// receive plane (send drops from nonfaulty senders are prevented by
  /// construction).
  [[nodiscard]] bool in_so(int t) const {
    return num_faulty() <= t && !has_receive_drops();
  }

  /// True iff the pattern is in GO(t): at most t faulty agents. Plane
  /// validity — send drops only from faulty senders, receive drops only at
  /// faulty receivers — is enforced by construction, so the budget is the
  /// only residual condition. SO(t) ⊆ GO(t).
  [[nodiscard]] bool go_valid(int t) const { return num_faulty() <= t; }
  [[nodiscard]] bool in_go(int t) const { return go_valid(t); }

  /// True iff the pattern additionally satisfies the crash condition: once a
  /// message from i to some agent is dropped in round m+1, every message
  /// from i in all later recorded rounds is dropped. (A send-plane notion;
  /// receive drops are ignored.)
  [[nodiscard]] bool is_crash() const;

  friend bool operator==(const FailurePattern&, const FailurePattern&) = default;

 private:
  void ensure_round(int m);
  void ensure_receive_round(int m);

  int n_;
  AgentSet nonfaulty_;
  /// drops_[m][from] = receivers dropped by sender `from` in round m+1.
  std::vector<std::vector<AgentSet>> drops_;
  /// recv_drops_[m][to] = senders dropped by receiver `to` in round m+1.
  /// Kept empty (not merely all-zero) for SO patterns so that default
  /// equality and copying cost nothing on the SO-only paths.
  std::vector<std::vector<AgentSet>> recv_drops_;
};

}  // namespace eba
