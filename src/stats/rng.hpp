// Deterministic random source used throughout benches and samplers.
//
// A thin wrapper over std::mt19937_64 with convenience draws; every consumer
// takes an explicit Rng& so that experiments are reproducible from a seed.
#pragma once

#include <cstdint>
#include <random>

#include "core/assert.hpp"

namespace eba {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [0, bound).
  [[nodiscard]] int below(int bound) {
    EBA_REQUIRE(bound > 0, "empty range");
    return static_cast<int>(engine_() % static_cast<std::uint64_t>(bound));
  }

  /// Bernoulli draw with probability p.
  [[nodiscard]] bool chance(double p) {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_) < p;
  }

  [[nodiscard]] std::uint64_t raw() { return engine_(); }

  [[nodiscard]] std::mt19937_64& engine() { return engine_; }
  [[nodiscard]] const std::mt19937_64& engine() const { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace eba
