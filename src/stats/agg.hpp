// Streaming aggregation of scalar samples (min/max/mean/percentiles) used by
// the benchmark harness to summarize decision rounds and bit counts.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace eba {

class Aggregate {
 public:
  void add(double x);
  /// Adds a batch of samples (e.g. the per-instance latencies of one
  /// workload) in one call.
  void add_all(std::span<const double> xs);
  /// Folds another aggregate's samples into this one; `other` is unchanged.
  /// Used by the throughput bench to combine per-sweep-point latencies into
  /// per-protocol summaries.
  void merge(const Aggregate& other);

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;
  /// q in [0,1]; nearest-rank percentile.
  [[nodiscard]] double percentile(double q) const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  void ensure_sorted() const;
};

/// Histogram over small non-negative integer outcomes (e.g. decision rounds).
class IntHistogram {
 public:
  void add(int x);
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] std::size_t count(int x) const;
  [[nodiscard]] int max_key() const;

 private:
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace eba
