// Minimal aligned-column table printer for the benchmark harness, so every
// bench binary emits the paper-style rows in a uniform format.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace eba {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& add_row(std::vector<std::string> cells);

  /// Convenience: formats arithmetic cells with to_string.
  template <class... Ts>
  Table& row(const Ts&... cells) {
    return add_row({cell_string(cells)...});
  }

  void print(std::ostream& os) const;

 private:
  static std::string cell_string(const std::string& s) { return s; }
  static std::string cell_string(const char* s) { return s; }
  static std::string cell_string(double v);
  template <class T>
  static std::string cell_string(const T& v) {
    return std::to_string(v);
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace eba
