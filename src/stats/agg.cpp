#include "stats/agg.hpp"

#include <algorithm>
#include <cmath>

#include "core/assert.hpp"

namespace eba {

void Aggregate::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void Aggregate::add_all(std::span<const double> xs) {
  if (xs.empty()) return;
  samples_.insert(samples_.end(), xs.begin(), xs.end());
  sorted_ = false;
}

void Aggregate::merge(const Aggregate& other) {
  if (&other == this) {
    // Self-merge doubles the samples; copy first so add_all's insert
    // cannot reallocate the range it is reading.
    const std::vector<double> copy(samples_);
    add_all(copy);
    return;
  }
  add_all(other.samples_);
}

void Aggregate::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Aggregate::min() const {
  EBA_REQUIRE(!samples_.empty(), "no samples");
  ensure_sorted();
  return samples_.front();
}

double Aggregate::max() const {
  EBA_REQUIRE(!samples_.empty(), "no samples");
  ensure_sorted();
  return samples_.back();
}

double Aggregate::mean() const {
  EBA_REQUIRE(!samples_.empty(), "no samples");
  double sum = 0;
  for (double x : samples_) sum += x;
  return sum / static_cast<double>(samples_.size());
}

double Aggregate::percentile(double q) const {
  EBA_REQUIRE(!samples_.empty(), "no samples");
  EBA_REQUIRE(q >= 0.0 && q <= 1.0, "quantile out of range");
  ensure_sorted();
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(samples_.size())));
  return samples_[rank == 0 ? 0 : rank - 1];
}

void IntHistogram::add(int x) {
  EBA_REQUIRE(x >= 0, "histogram keys are non-negative");
  if (static_cast<std::size_t>(x) >= counts_.size())
    counts_.resize(static_cast<std::size_t>(x) + 1, 0);
  ++counts_[static_cast<std::size_t>(x)];
  ++total_;
}

std::size_t IntHistogram::count(int x) const {
  if (x < 0 || static_cast<std::size_t>(x) >= counts_.size()) return 0;
  return counts_[static_cast<std::size_t>(x)];
}

int IntHistogram::max_key() const {
  for (int x = static_cast<int>(counts_.size()) - 1; x >= 0; --x)
    if (counts_[static_cast<std::size_t>(x)] > 0) return x;
  return -1;
}

}  // namespace eba
