#include "stats/table.hpp"

#include <algorithm>
#include <cstdio>

#include "core/assert.hpp"

namespace eba {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::add_row(std::vector<std::string> cells) {
  EBA_REQUIRE(cells.size() == headers_.size(), "row width mismatch");
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::cell_string(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3g", v);
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << cells[c];
      if (c + 1 < cells.size())
        os << std::string(width[c] - cells[c].size() + 2, ' ');
    }
    os << '\n';
  };
  emit(headers_);
  std::string rule;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    rule += std::string(width[c], '-');
    if (c + 1 < headers_.size()) rule += "  ";
  }
  os << rule << '\n';
  for (const auto& row : rows_) emit(row);
}

}  // namespace eba
