// The synchronous runs-and-systems simulator (paper §3).
//
// Given an information-exchange protocol E, an action protocol P, a failure
// pattern α and initial preferences, the run is uniquely determined; this
// header computes it with the paper's round semantics: at each time k every
// agent performs P(s_i), the exchange chooses messages µ(s_i, a_i), the
// adversary filters them, and δ produces the time-(k+1) states.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "core/types.hpp"
#include "exchange/exchange.hpp"
#include "failure/pattern.hpp"

namespace eba {

/// A fully materialized run: the protocol-agnostic record plus the typed
/// state of every agent at every time.
template <ExchangeProtocol X>
struct Run {
  RunRecord record;
  /// states[m][i]: local state of agent i at time m, m in 0..record.rounds.
  std::vector<std::vector<typename X::State>> states;
  std::size_t bits_sent = 0;
  std::size_t messages_sent = 0;
};

struct SimulateOptions {
  int max_rounds = 0;                 ///< 0 = use t+4
  bool stop_when_all_decided = true;  ///< stop early once every agent decided
};

template <ExchangeProtocol X, class P>
Run<X> simulate(const X& x, const P& act, const FailurePattern& alpha,
                const std::vector<Value>& inits, int t,
                const SimulateOptions& opt = {}) {
  const int n = x.n();
  EBA_REQUIRE(alpha.n() == n, "pattern/exchange agent count mismatch");
  EBA_REQUIRE(static_cast<int>(inits.size()) == n, "inits size mismatch");
  const int max_rounds = opt.max_rounds > 0 ? opt.max_rounds : t + 4;

  Run<X> run;
  run.record.n = n;
  run.record.t = t;
  run.record.inits = inits;
  run.record.nonfaulty = alpha.nonfaulty();

  run.states.emplace_back();
  run.states.back().reserve(static_cast<std::size_t>(n));
  for (AgentId i = 0; i < n; ++i)
    run.states.back().push_back(
        x.initial_state(i, inits[static_cast<std::size_t>(i)]));

  std::vector<bool> decided(static_cast<std::size_t>(n), false);
  using Message = typename X::Message;

  for (int m = 0; m < max_rounds; ++m) {
    if (opt.stop_when_all_decided) {
      bool all = true;
      for (bool d : decided) all = all && d;
      if (all) break;
    }
    const auto& cur = run.states[static_cast<std::size_t>(m)];

    // 1. Actions.
    std::vector<Action> actions(static_cast<std::size_t>(n));
    for (AgentId i = 0; i < n; ++i) {
      actions[static_cast<std::size_t>(i)] = act(cur[static_cast<std::size_t>(i)]);
      if (actions[static_cast<std::size_t>(i)].is_decide())
        decided[static_cast<std::size_t>(i)] = true;
    }

    // 2. Messages (all exchanges in this library broadcast: µ is
    // destination-independent, so compute each sender's message once).
    std::vector<std::optional<Message>> outgoing(static_cast<std::size_t>(n));
    std::vector<AgentSet> sent(static_cast<std::size_t>(n));
    std::vector<AgentSet> delivered_to(static_cast<std::size_t>(n));
    for (AgentId i = 0; i < n; ++i) {
      outgoing[static_cast<std::size_t>(i)] =
          x.message(cur[static_cast<std::size_t>(i)],
                    actions[static_cast<std::size_t>(i)], /*dest=*/0);
      if (outgoing[static_cast<std::size_t>(i)]) {
        run.bits_sent +=
            static_cast<std::size_t>(n - 1) *
            x.message_bits(*outgoing[static_cast<std::size_t>(i)]);
        run.messages_sent += static_cast<std::size_t>(n - 1);
        sent[static_cast<std::size_t>(i)] =
            AgentSet::all(n).minus(AgentSet{i});
      }
    }

    // 3. Adversary filtering + delivery; self-delivery always succeeds.
    std::vector<std::vector<std::optional<Message>>> inbox(
        static_cast<std::size_t>(n),
        std::vector<std::optional<Message>>(static_cast<std::size_t>(n)));
    for (AgentId i = 0; i < n; ++i) {
      if (!outgoing[static_cast<std::size_t>(i)]) continue;
      for (AgentId j = 0; j < n; ++j) {
        if (!alpha.delivered(m, i, j)) continue;
        inbox[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] =
            outgoing[static_cast<std::size_t>(i)];
        if (j != i) delivered_to[static_cast<std::size_t>(i)].insert(j);
      }
    }

    // 4. State updates.
    run.states.emplace_back(cur);
    auto& next = run.states.back();
    for (AgentId i = 0; i < n; ++i)
      x.update(next[static_cast<std::size_t>(i)],
               actions[static_cast<std::size_t>(i)],
               std::span<const std::optional<Message>>(
                   inbox[static_cast<std::size_t>(i)]));

    run.record.actions.push_back(std::move(actions));
    run.record.sent.push_back(std::move(sent));
    run.record.delivered.push_back(std::move(delivered_to));
  }

  run.record.rounds = static_cast<int>(run.record.actions.size());
  return run;
}

}  // namespace eba
