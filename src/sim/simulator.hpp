// The synchronous runs-and-systems simulator (paper §3).
//
// Given an information-exchange protocol E, an action protocol P, a failure
// pattern α and initial preferences, the run is uniquely determined.
// `simulate()` computes it with the paper's round semantics — at each time k
// every agent performs P(s_i), the exchange chooses messages µ(s_i, a_i),
// the adversary filters them, and δ produces the time-(k+1) states — by
// driving the in-place `Stepper` (stepper.hpp) with a `MaterializingSink`,
// recovering the classic fully-materialized `Run<X>` (every agent's state at
// every time). Callers that only need the record should run a bare Stepper
// instead and skip the per-round state copies (sim/drivers.cpp does).
#pragma once

#include <utility>
#include <vector>

#include "core/types.hpp"
#include "exchange/exchange.hpp"
#include "failure/pattern.hpp"
#include "sim/stepper.hpp"

namespace eba {

/// A fully materialized run: the protocol-agnostic record plus the typed
/// state of every agent at every time.
template <ExchangeProtocol X>
struct Run {
  RunRecord record;
  /// states[m][i]: local state of agent i at time m, m in 0..record.rounds.
  std::vector<std::vector<typename X::State>> states;
  std::size_t bits_sent = 0;
  std::size_t messages_sent = 0;

  friend bool operator==(const Run&, const Run&) = default;
};

struct SimulateOptions {
  int max_rounds = 0;                 ///< 0 = use t+4
  bool stop_when_all_decided = true;  ///< stop early once every agent decided
};

template <ExchangeProtocol X, class P>
Run<X> simulate(const X& x, const P& act, const FailurePattern& alpha,
                const std::vector<Value>& inits, int t,
                const SimulateOptions& opt = {}) {
  StepperOptions sopt;
  sopt.max_rounds = opt.max_rounds;
  sopt.stop_when_all_decided = opt.stop_when_all_decided;
  MaterializingSink<X> sink;
  Stepper<X, P> stepper(x, act, alpha, inits, t, sopt, &sink);
  while (stepper.step()) {
  }

  Run<X> run;
  run.bits_sent = stepper.bits_sent();
  run.messages_sent = stepper.messages_sent();
  run.record = stepper.take_record();
  run.states = std::move(sink.states());
  return run;
}

}  // namespace eba
