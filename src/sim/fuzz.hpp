// Seeded spec-oracle fuzzing: drive (protocol × adversary × preferences)
// instances through the EBA spec checker (core/spec.hpp) as the oracle, at
// agent counts far beyond exhaustive reach (n = 8..64).
//
// Each case is derived purely from (config, index): a splitmix-style seed
// mix feeds one Rng that draws the faulty-set size, the SO/GO pattern and
// the preference vector. Replaying a failing index therefore reproduces the
// exact run — the FuzzFailure records the index and seed for that purpose,
// and tests/test_strategy.cpp pins the determinism.
//
// Failures shrink to a minimal counterexample before they are reported:
// single drops are removed while the violation persists, then drop-free
// faulty agents are demoted to nonfaulty, preferences are pushed toward
// all-zero, and finally the pattern is relabeled faulty-first so distinct
// failures collapse onto canonical-looking representatives. Every shrink
// step re-runs the oracle; a step that loses the violation is rolled back,
// so the shrunk case is failing by construction.
#pragma once

#include <cstdint>
#include <vector>

#include "core/spec.hpp"
#include "failure/pattern.hpp"
#include "sim/drivers.hpp"

namespace eba {

struct FuzzConfig {
  int n = 8;
  int t = 2;
  ProtocolKind protocol = ProtocolKind::p_opt;
  /// Adversary space to sample from. Must not exceed what the protocol is
  /// certified for (model_of): fuzzing an SO-only protocol under GO would
  /// report true-but-uninteresting violations.
  FailureModel model = FailureModel::sending;
  std::uint64_t base_seed = 0;
  int iterations = 200;
  int rounds = 0;  ///< drop-prefix length; 0 = t+2
  double drop_prob = 0.25;
  double recv_drop_prob = 0.15;  ///< GO receive plane only
  /// Oracle: ok() (the four EBA properties) or ok_strict() (additionally
  /// Prop 6.1's validity-for-all and the t+2 termination bound).
  bool strict = true;
  int max_failures = 3;  ///< stop collecting after this many
  bool shrink = true;
};

/// One derived case; pure function of (config, index).
struct FuzzCase {
  std::uint64_t index = 0;
  std::uint64_t seed = 0;  ///< the mixed per-case seed
  FailurePattern alpha = FailurePattern::failure_free(1);
  std::vector<Value> prefs;
};

[[nodiscard]] FuzzCase fuzz_case(const FuzzConfig& cfg, std::uint64_t index);

/// A spec violation, before and after shrinking. When cfg.shrink is false
/// the shrunk fields simply repeat the original case.
struct FuzzFailure {
  std::uint64_t index = 0;
  std::uint64_t seed = 0;
  FailurePattern alpha = FailurePattern::failure_free(1);
  std::vector<Value> prefs;
  SpecReport report;

  FailurePattern shrunk = FailurePattern::failure_free(1);
  std::vector<Value> shrunk_prefs;
  SpecReport shrunk_report;
  int shrink_steps = 0;  ///< accepted shrink steps (0 = already minimal)
};

struct FuzzReport {
  std::uint64_t runs = 0;
  std::uint64_t violations = 0;  ///< failing cases seen (collected or not)
  std::vector<FuzzFailure> failures;
  double seconds = 0;

  [[nodiscard]] bool ok() const { return violations == 0; }
};

/// Fuzzes an arbitrary driver (used by tests to aim the oracle at a
/// deliberately broken protocol). The driver must simulate at least t+2
/// rounds for undecided runs so the termination checks are meaningful —
/// drivers from make_driver with default options do.
[[nodiscard]] FuzzReport run_fuzz(const FuzzConfig& cfg,
                                  const RunDriver& driver);

/// Fuzzes cfg.protocol via make_driver.
[[nodiscard]] FuzzReport run_fuzz(const FuzzConfig& cfg);

/// The shrinking pass in isolation (exposed for tests): reduces a failing
/// (alpha, prefs) to a locally minimal failing case under the oracle
/// implied by cfg.strict. Requires that the input actually fails.
struct ShrinkResult {
  FailurePattern alpha = FailurePattern::failure_free(1);
  std::vector<Value> prefs;
  SpecReport report;
  int steps = 0;
};

[[nodiscard]] ShrinkResult shrink_failure(const FuzzConfig& cfg,
                                          const RunDriver& driver,
                                          const FailurePattern& alpha,
                                          const std::vector<Value>& prefs);

}  // namespace eba
