#include "sim/adaptive.hpp"

#include <sstream>

#include "action/authenticated.hpp"
#include "action/early_stop.hpp"
#include "action/p_basic.hpp"
#include "action/p_min.hpp"
#include "action/p_opt.hpp"
#include "action/p_opt_go.hpp"
#include "exchange/authenticated.hpp"
#include "exchange/basic.hpp"
#include "exchange/fip.hpp"
#include "exchange/min.hpp"
#include "exchange/report.hpp"
#include "sim/drivers.hpp"
#include "stats/rng.hpp"

namespace eba {
namespace {

/// Faulty set {0..k-1}: renaming-equivariance makes the choice WLOG, and it
/// keeps realized patterns directly comparable with the canonical
/// enumeration's representatives.
FailurePattern canonical_faulty_base(int n, int k) {
  AgentSet nonfaulty = AgentSet::all(n);
  for (AgentId s = 0; s < k; ++s) nonfaulty.erase(s);
  return FailurePattern(n, nonfaulty);
}

class DeafenDecider final : public AdversaryStrategy {
 public:
  DeafenDecider(int n, int t, FailureModel model)
      : n_(n), k_(t), model_(model) {
    EBA_REQUIRE(t >= 0 && t < n, "budget must leave a nonfaulty agent");
  }

  [[nodiscard]] std::string name() const override { return "deafen_decider"; }
  [[nodiscard]] FailureModel model() const override { return model_; }

  [[nodiscard]] FailurePattern base_pattern() override {
    return canonical_faulty_base(n_, k_);
  }

  void on_round(const StagedRound& obs, FailurePattern& alpha) override {
    for (AgentId g = 0; g < k_; ++g) {
      if (model_ == FailureModel::general)
        for (AgentId d : obs.deciding_now)
          if (d != g) alpha.drop_receive(obs.round, d, g);
      if (obs.deciding_now.contains(g)) alpha.silence(obs.round, g);
    }
  }

 private:
  int n_;
  int k_;
  FailureModel model_;
};

class IsolateChain final : public AdversaryStrategy {
 public:
  IsolateChain(int n, int t) : n_(n), k_(t) {
    EBA_REQUIRE(t >= 0 && t < n, "budget must leave a nonfaulty agent");
  }

  [[nodiscard]] std::string name() const override { return "isolate_chain"; }
  [[nodiscard]] FailureModel model() const override {
    return FailureModel::sending;
  }

  [[nodiscard]] FailurePattern base_pattern() override {
    return canonical_faulty_base(n_, k_);
  }

  void on_round(const StagedRound& obs, FailurePattern& alpha) override {
    const int m = obs.round;
    for (AgentId g = 0; g < k_; ++g) {
      if (g < m) {
        alpha.silence(m, g);  // crashed after its chain hop
      } else if (g == m) {
        // The hop: deliver only to the next chain member; the LAST hop's
        // target is chosen online — the lowest-id nonfaulty agent still
        // undecided at this round.
        const AgentId target = g + 1 < k_ ? g + 1 : victim(obs);
        for (AgentId r = 0; r < n_; ++r)
          if (r != g && r != target) alpha.drop(m, g, r);
      }
      // g > m: behaves correctly this round (the chain is still hidden).
    }
  }

 private:
  [[nodiscard]] AgentId victim(const StagedRound& obs) const {
    for (AgentId i = k_; i < n_; ++i)
      if (!obs.decided.contains(i)) return i;
    return k_;
  }

  int n_;
  int k_;
};

class RandomBudget final : public AdversaryStrategy {
 public:
  RandomBudget(int n, int t, FailureModel model, std::uint64_t seed,
               double drop_prob)
      : n_(n), model_(model), rng_(seed), drop_prob_(drop_prob) {
    EBA_REQUIRE(t >= 0 && t < n, "budget must leave a nonfaulty agent");
    k_ = t >= 1 ? 1 + rng_.below(t) : 0;
  }

  [[nodiscard]] std::string name() const override { return "random_budget"; }
  [[nodiscard]] FailureModel model() const override { return model_; }

  [[nodiscard]] FailurePattern base_pattern() override {
    return canonical_faulty_base(n_, k_);
  }

  // RNG consumption is observation-independent (same draws per round no
  // matter who decides), so a seed fully determines the realized pattern.
  void on_round(const StagedRound& obs, FailurePattern& alpha) override {
    for (AgentId g = 0; g < k_; ++g)
      for (AgentId r = 0; r < n_; ++r) {
        if (r == g) continue;
        if (rng_.chance(drop_prob_)) alpha.drop(obs.round, g, r);
        if (model_ == FailureModel::general && rng_.chance(drop_prob_))
          alpha.drop_receive(obs.round, r, g);
      }
  }

  // The engine position is the whole mutable state (k_ is immutable after
  // construction but is carried for a cross-check). std::mt19937_64's
  // stream operators serialize the full 312-word state, so a restored
  // strategy replays the exact post-checkpoint draws.
  [[nodiscard]] std::string checkpoint_state() const override {
    std::ostringstream os;
    os << k_ << ' ' << rng_.engine();
    return os.str();
  }

  void restore_state(const std::string& state) override {
    std::istringstream is(state);
    int k = -1;
    is >> k >> rng_.engine();
    EBA_REQUIRE(!is.fail() && k == k_,
                "random_budget checkpoint does not match this strategy");
  }

 private:
  int n_;
  int k_ = 0;
  FailureModel model_;
  Rng rng_;
  double drop_prob_;
};

}  // namespace

std::unique_ptr<AdversaryStrategy> make_deafen_decider_strategy(
    int n, int t, FailureModel model) {
  return std::make_unique<DeafenDecider>(n, t, model);
}

std::unique_ptr<AdversaryStrategy> make_isolate_chain_strategy(int n, int t) {
  return std::make_unique<IsolateChain>(n, t);
}

std::unique_ptr<AdversaryStrategy> make_random_budget_strategy(
    int n, int t, FailureModel model, std::uint64_t seed, double drop_prob) {
  return std::make_unique<RandomBudget>(n, t, model, seed, drop_prob);
}

std::vector<NamedStrategyFactory> shipped_strategies(int n, int t,
                                                     FailureModel model) {
  std::vector<NamedStrategyFactory> out;
  out.push_back({"deafen_decider", [n, t, model](std::uint64_t /*seed*/) {
                   return make_deafen_decider_strategy(n, t, model);
                 }});
  out.push_back({"isolate_chain", [n, t](std::uint64_t /*seed*/) {
                   return make_isolate_chain_strategy(n, t);
                 }});
  out.push_back({"random_budget", [n, t, model](std::uint64_t seed) {
                   return make_random_budget_strategy(n, t, model, seed);
                 }});
  return out;
}

AdversaryHook make_strategy_hook(AdversaryStrategy& strat, int t) {
  return [&strat, t](const StagedRound& obs, FailurePattern& alpha) {
    const FailurePattern before = alpha;
    strat.on_round(obs, alpha);
    EBA_REQUIRE(alpha.n() == before.n() &&
                    alpha.nonfaulty().bits() == before.nonfaulty().bits(),
                "adaptive strategy changed the agent population");
    EBA_REQUIRE(strat.model() == FailureModel::sending ? alpha.in_so(t)
                                                       : alpha.in_go(t),
                "adaptive strategy left its model/budget");
    for (int m = 0; m < obs.round; ++m)
      for (AgentId i = 0; i < alpha.n(); ++i)
        EBA_REQUIRE(
            alpha.dropped(m, i).bits() == before.dropped(m, i).bits() &&
                alpha.dropped_receive(m, i).bits() ==
                    before.dropped_receive(m, i).bits(),
            "adaptive strategy rewrote a completed round");
  };
}

AdaptiveDriver make_adaptive_driver(ProtocolKind k, int n, int t,
                                    AdaptiveRunOptions opt) {
  switch (k) {
    case ProtocolKind::p_min:
      return [=](AdversaryStrategy& s, const std::vector<Value>& inits) {
        return run_adaptive(MinExchange(n), PMin(n, t), s, inits, t, opt);
      };
    case ProtocolKind::p_basic:
      return [=](AdversaryStrategy& s, const std::vector<Value>& inits) {
        return run_adaptive(BasicExchange(n), PBasic(n, t), s, inits, t, opt);
      };
    case ProtocolKind::p_opt:
      return [=](AdversaryStrategy& s, const std::vector<Value>& inits) {
        return run_adaptive(FipExchange(n), POpt(n, t), s, inits, t, opt);
      };
    case ProtocolKind::p_opt_p0:
      return [=](AdversaryStrategy& s, const std::vector<Value>& inits) {
        return run_adaptive(FipExchange(n),
                            POpt(n, t, POpt::CommonKnowledge::disabled), s,
                            inits, t, opt);
      };
    case ProtocolKind::p_opt_go:
      return [=](AdversaryStrategy& s, const std::vector<Value>& inits) {
        return run_adaptive(FipExchange(n), POptGo(n, t), s, inits, t, opt);
      };
    case ProtocolKind::p_opt_go_p0:
      return [=](AdversaryStrategy& s, const std::vector<Value>& inits) {
        return run_adaptive(FipExchange(n),
                            POptGo(n, t, POptGo::CommonKnowledge::disabled),
                            s, inits, t, opt);
      };
    case ProtocolKind::early_stop:
      return [=](AdversaryStrategy& s, const std::vector<Value>& inits) {
        return run_adaptive(ReportExchange(n, t), PEarlyStop(n, t), s, inits,
                            t, opt);
      };
    case ProtocolKind::authenticated:
      return [=](AdversaryStrategy& s, const std::vector<Value>& inits) {
        return run_adaptive(AuthExchange(n, t, kDefaultAuthKey), PAuth(n, t),
                            s, inits, t, opt);
      };
  }
  EBA_REQUIRE(false, "unknown protocol kind");
  return {};
}

}  // namespace eba
