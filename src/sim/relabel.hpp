// Run relabeling under agent renamings: the simulate-once-relabel-everywhere
// engine behind orbit-level run reuse.
//
// Protocol equivariance (failure/canonical.hpp's symmetry argument, checked
// mechanically in tests/test_canonical.cpp and tests/test_relabel.cpp) says
// run(π·α, π·prefs) makes agent π(i) do exactly what agent i does in
// run(α, prefs). This file computes that relabeled run *directly* — permuting
// the record's per-agent columns, each AgentSet by a mask move, and each
// CommGraph plane word-parallel via CommGraph::relabeled — instead of
// re-simulating the member pattern. Relabeling costs O(rounds · n) word
// operations per run versus a full exchange/deliver/update simulation, which
// is what makes exhaustive verification reach n=7–8 (see kripke/system.hpp
// and bench/bench_scale.cpp; the outputs are pinned bit-identical to
// re-simulation there).
//
// Two renaming facts consumers rely on:
//   * relabel_run(run(α, p), π) == run(π·α, π·p)   (equivariance), and
//   * for σ in the stabilizer of α, π·α == α, so one simulation per
//     (orbit × preference class) covers the whole context
//     (failure/canonical.hpp's PreferenceQuotient).
#pragma once

#include <vector>

#include "core/renaming.hpp"
#include "core/types.hpp"
#include "exchange/basic.hpp"
#include "exchange/exchange.hpp"
#include "exchange/fip.hpp"
#include "exchange/min.hpp"
#include "exchange/relay.hpp"
#include "sim/simulator.hpp"

namespace eba {

/// π·prefs: agent π(i) starts with agent i's preference.
[[nodiscard]] inline std::vector<Value> relabel_prefs(
    const std::vector<Value>& prefs, const std::vector<AgentId>& perm) {
  EBA_REQUIRE(perm.size() == prefs.size(), "permutation size mismatch");
  std::vector<Value> out(prefs.size(), Value::zero);
  for (std::size_t i = 0; i < prefs.size(); ++i)
    out[static_cast<std::size_t>(perm[i])] = prefs[i];
  return out;
}

/// The protocol-agnostic record under the renaming: every per-agent column
/// moves from i to π(i) and every AgentSet field is permuted as a mask.
[[nodiscard]] inline RunRecord relabel_record(const RunRecord& rec,
                                              const Renaming& ren) {
  EBA_REQUIRE(static_cast<int>(ren.size()) == rec.n,
              "permutation size mismatch");
  RunRecord out;
  out.n = rec.n;
  out.t = rec.t;
  out.rounds = rec.rounds;
  out.inits.resize(rec.inits.size(), Value::zero);
  for (std::size_t i = 0; i < rec.inits.size(); ++i)
    out.inits[static_cast<std::size_t>(ren[i])] = rec.inits[i];
  out.nonfaulty = ren.map(rec.nonfaulty);
  out.actions.resize(rec.actions.size());
  out.sent.resize(rec.sent.size());
  out.delivered.resize(rec.delivered.size());
  for (std::size_t m = 0; m < rec.actions.size(); ++m) {
    out.actions[m].resize(rec.actions[m].size());
    out.sent[m].resize(rec.sent[m].size());
    out.delivered[m].resize(rec.delivered[m].size());
    for (std::size_t i = 0; i < rec.actions[m].size(); ++i) {
      const auto pi = static_cast<std::size_t>(ren[i]);
      out.actions[m][pi] = rec.actions[m][i];
      out.sent[m][pi] = ren.map(rec.sent[m][i]);
      out.delivered[m][pi] = ren.map(rec.delivered[m][i]);
    }
  }
  return out;
}

[[nodiscard]] inline RunRecord relabel_record(
    const RunRecord& rec, const std::vector<AgentId>& perm) {
  return relabel_record(rec, Renaming(perm));
}

// relabel_state: what agent π(i)'s local state looks like in the relabeled
// run, given agent i's state in the original. E_min / E_basic / E_relay
// states carry no agent ids or id-indexed content, so they move verbatim;
// the FIP state permutes its communication graph and self id (derived
// caches restart empty — they are excluded from state equality and refill
// lazily on first use).

[[nodiscard]] inline MinState relabel_state(const MinState& s,
                                            const Renaming&) {
  return s;
}

[[nodiscard]] inline BasicState relabel_state(const BasicState& s,
                                              const Renaming&) {
  return s;
}

[[nodiscard]] inline RelayState relabel_state(const RelayState& s,
                                              const Renaming&) {
  return s;
}

[[nodiscard]] inline FipState relabel_state(const FipState& s,
                                            const Renaming& ren) {
  FipState out{.time = s.time,
               .self = ren[static_cast<std::size_t>(s.self)],
               .init = s.init,
               .graph = s.graph.relabeled(ren),
               .decided = s.decided,
               .inferred = {},
               .knowledge = {}};
  return out;
}

/// The whole materialized run under a precompiled renaming. Bit/message
/// totals are renaming-invariant and copy through. The Renaming overload is
/// the hot path: add_all_runs compiles each orbit member's renaming once
/// and reuses it for every preference mask.
template <ExchangeProtocol X>
[[nodiscard]] Run<X> relabel_run(const Run<X>& run, const Renaming& ren) {
  const std::vector<AgentId>& inv = ren.inverse();
  Run<X> out;
  out.record = relabel_record(run.record, ren);
  out.bits_sent = run.bits_sent;
  out.messages_sent = run.messages_sent;
  out.states.reserve(run.states.size());
  for (const auto& row : run.states) {
    std::vector<typename X::State> orow;
    orow.reserve(row.size());
    // Fill in destination order (states need not be default-constructible):
    // slot j holds the relabeling of agent π⁻¹(j)'s state.
    for (std::size_t j = 0; j < row.size(); ++j)
      orow.push_back(
          relabel_state(row[static_cast<std::size_t>(inv[j])], ren));
    out.states.push_back(std::move(orow));
  }
  return out;
}

template <ExchangeProtocol X>
[[nodiscard]] Run<X> relabel_run(const Run<X>& run,
                                 const std::vector<AgentId>& perm) {
  return relabel_run(run, Renaming(perm));
}

}  // namespace eba
