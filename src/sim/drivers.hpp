// Type-erased protocol drivers: a uniform way for benches, examples and
// cross-protocol comparisons to run P_min, P_basic and P_opt on the same
// (failure pattern, preferences) inputs and read off decision rounds and
// message-bit totals.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/spec.hpp"
#include "core/types.hpp"
#include "failure/pattern.hpp"

namespace eba {

struct RunSummary {
  int n = 0;
  int rounds = 0;  ///< rounds actually simulated
  std::vector<std::optional<Decision>> decisions;
  std::size_t bits_sent = 0;
  std::size_t messages_sent = 0;
  RunRecord record;

  /// Largest decision round over nonfaulty agents; -1 if some never decide.
  [[nodiscard]] int last_nonfaulty_round() const;
  /// Decision round of agent i, or -1.
  [[nodiscard]] int round_of(AgentId i) const;
};

struct DriveOptions {
  int max_rounds = 0;  ///< 0 = t+4
};

using RunDriver =
    std::function<RunSummary(const FailurePattern&, const std::vector<Value>&)>;

RunDriver make_min_driver(int n, int t, DriveOptions opt = {});
RunDriver make_basic_driver(int n, int t, DriveOptions opt = {});
RunDriver make_fip_driver(int n, int t, DriveOptions opt = {});
/// Ablation: P0 over the full-information exchange (P_opt with the
/// common-knowledge lines disabled) — correct but not optimal.
RunDriver make_fip_p0_driver(int n, int t, DriveOptions opt = {});
/// P_opt_go over the full-information exchange — the general-omissions
/// optimal protocol. Correct on GO(t) patterns (and a fortiori on SO(t)).
RunDriver make_go_driver(int n, int t, DriveOptions opt = {});
/// Ablation: the GO evaluation of P0 (P_opt_go with the common-knowledge
/// lines disabled) — correct in γ_go but not optimal.
RunDriver make_go_p0_driver(int n, int t, DriveOptions opt = {});
/// P_es over E_report — the early-stopping baseline, deciding in
/// min(f+2, t+2) rounds where f is the realized fault count.
RunDriver make_early_stop_driver(int n, int t, DriveOptions opt = {});
/// P_auth over E_auth — the signature-authenticated variant of P_es, and
/// the library's first per-destination (non-broadcast) exchange. The
/// default master key is fixed; pass another to model key rotation.
RunDriver make_auth_driver(int n, int t, DriveOptions opt = {});

/// The shared master key the authenticated driver signs under when the
/// caller does not supply one.
inline constexpr std::uint64_t kDefaultAuthKey = 0x656261'617574'68ull;

/// Every shipped action protocol, for table-driven consumers (the fuzz
/// harness, the adversary benches, objective evaluators) that pick drivers
/// by value instead of by factory function.
enum class ProtocolKind : std::uint8_t {
  p_min,
  p_basic,
  p_opt,
  p_opt_p0,     ///< P0 over E_fip (common-knowledge lines ablated)
  p_opt_go,
  p_opt_go_p0,  ///< GO evaluation of P0
  // New kinds append here: the fuzz harness seeds runs with the enum value.
  early_stop,   ///< P_es over E_report (early stopping, min(f+2, t+2))
  authenticated,  ///< P_auth over E_auth (signed per-destination reports)
};

[[nodiscard]] const char* to_string(ProtocolKind k);

/// The failure model the protocol is certified for: GO(t) for the _go pair,
/// SO(t) otherwise.
[[nodiscard]] FailureModel model_of(ProtocolKind k);

/// The factory-function drivers above, dispatched on the enum.
[[nodiscard]] RunDriver make_driver(ProtocolKind k, int n, int t,
                                    DriveOptions opt = {});

struct NamedDriver {
  std::string name;
  RunDriver run;
};

/// The paper's three protocols, in the order P_min, P_basic, P_fip.
[[nodiscard]] std::vector<NamedDriver> paper_drivers(int n, int t,
                                                     DriveOptions opt = {});

}  // namespace eba
