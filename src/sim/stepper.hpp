// The instance-oriented run engine (paper §3).
//
// `Stepper<X, P>` advances the n agent states of ONE agreement instance
// round by round, **in place**: no per-round snapshot of all states is
// materialized unless a `TraceSink` opts in. `simulate()` (simulator.hpp)
// is a thin wrapper that attaches a materializing sink to recover the
// classic fully-materialized `Run<X>`; the drivers and the net-layer
// workload engine run the stepper bare, so a run costs O(n) state, not
// O(rounds · n).
//
// The stepper exposes two ways to run a round:
//
//  * `step()` — the whole round in memory: actions, µ, adversary
//    filtering per the instance's failure pattern, δ. This is the §3
//    semantics verbatim and what `simulate()` uses.
//  * `begin_round()` / `finish_round()` — the split-phase interface for
//    external transports: the caller reads the round's actions and states,
//    moves the messages through a real messaging layer (net/ serializes
//    them as byte payloads through a bus slot), and hands back the filtered
//    inboxes plus the sent/delivered logs. One instance = one stepper +
//    one bus slot in the net-layer workload engine.
//
// Exchanges may opt into two engine fast paths:
//
//  * `X::kBroadcast` — µ is destination-independent, so the engine computes
//    each sender's message once and fans it out. Exchanges without the
//    marker get a correct per-destination µ loop instead (the seed engine
//    silently assumed broadcast; see message() docs in exchange.hpp).
//  * `BorrowedRoundExchange` — the exchange lets the engine move a
//    snapshot of the mutable part of the state out as the round's
//    broadcast and rebuild the next state from borrowed snapshots. E_fip
//    uses this to eliminate its per-round message churn: the sender's
//    graph is *moved* into the round pipeline, receivers merge it by
//    const reference, and the sender copies it back only when the
//    adversary actually delivered it to someone else (copy-on-write on
//    delivery forks). No shared_ptr control blocks, no n² inbox of
//    refcounted messages.
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "core/types.hpp"
#include "exchange/exchange.hpp"
#include "failure/pattern.hpp"

namespace eba {

/// What an adaptive adversary observes when a round is staged: the actions
/// every agent is about to perform, plus the decide bookkeeping derived from
/// them. `round` is the pattern round index m (= the stepper's current
/// time), so drops recorded at round m filter exactly the messages staged
/// here — the broadcasts of protocol round m+1.
struct StagedRound {
  int round = 0;
  int t = 0;
  /// actions[i]: agent i's staged action this round.
  std::span<const Action> actions;
  /// Agents staging their *first* decide this round.
  AgentSet deciding_now;
  /// Agents decided in any round up to and including this one.
  AgentSet decided;
};

/// Online adversary callback, invoked by `Stepper::begin_round()` after the
/// round's actions are fixed and before any message moves. The hook may add
/// drops to the instance's pattern at rounds >= staged.round; both the
/// in-memory round paths and external transports (which must re-read
/// `pattern()` after begin_round — see net/workload.hpp) then filter the
/// staged messages with the updated pattern. sim/adaptive.hpp wraps
/// `AdversaryStrategy` objects into hooks and enforces the SO(t)/GO(t)
/// budget after every invocation.
using AdversaryHook = std::function<void(const StagedRound&, FailurePattern&)>;

/// Exchanges whose µ is destination-independent declare
/// `static constexpr bool kBroadcast = true`. The engine then computes one
/// message per sender per round; for every other exchange it evaluates
/// µ(s, a, dest) per destination, so a future non-broadcast exchange cannot
/// silently inherit broadcast fan-out.
template <class X>
concept BroadcastExchange = requires {
  { X::kBroadcast } -> std::convertible_to<bool>;
} && bool(X::kBroadcast);

/// Optional zero-copy round pipeline. An exchange models it by declaring
/// a `Snapshot` type plus:
///
///   Snapshot take_snapshot(State&)        — move the broadcast-relevant
///     part of the state out as this round's message-equivalent. The
///     exchange must broadcast every round (µ never ⊥) for this path.
///   std::size_t snapshot_bits(const Snapshot&) — Prop 8.1 accounting,
///     equal to message_bits(µ(s, a, dest)) on the same state.
///   void apply_round(State&, const Action&, Snapshot&& own, AgentSet
///     received, std::span<const Snapshot* const> merged) — δ rebuilt from
///     the agent's own snapshot (moved back, or a copy when the adversary
///     forked delivery) and the delivered senders' snapshots, borrowed in
///     ascending sender order. Must produce the same state as update() on
///     the equivalent inbox (tests/test_workload.cpp enforces this).
template <class X>
concept BorrowedRoundExchange =
    requires(const X x, typename X::State& s, const Action a, AgentSet rec) {
      typename X::Snapshot;
      { x.take_snapshot(s) } -> std::same_as<typename X::Snapshot>;
      {
        x.snapshot_bits(std::declval<const typename X::Snapshot&>())
      } -> std::convertible_to<std::size_t>;
      x.apply_round(s, a, std::declval<typename X::Snapshot>(), rec,
                    std::span<const typename X::Snapshot* const>{});
    };

/// Opt-in observer of the in-place engine: receives the state vector at
/// time 0 and after every completed round. `MaterializingSink` recovers the
/// seed simulator's full `states[m][i]` history for tests and examples.
template <ExchangeProtocol X>
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  /// `states[i]` is agent i's state at `time` (0 = initial).
  virtual void on_states(int time,
                         std::span<const typename X::State> states) = 0;
};

template <ExchangeProtocol X>
class MaterializingSink final : public TraceSink<X> {
 public:
  void on_states(int /*time*/,
                 std::span<const typename X::State> states) override {
    states_.emplace_back(states.begin(), states.end());
  }

  /// states()[m][i]: agent i's state at time m, exactly as the seed
  /// simulator materialized it.
  [[nodiscard]] std::vector<std::vector<typename X::State>>& states() {
    return states_;
  }

 private:
  std::vector<std::vector<typename X::State>> states_;
};

struct StepperOptions {
  int max_rounds = 0;                 ///< 0 = use t+4
  bool stop_when_all_decided = true;  ///< stop early once every agent decided
};

/// A mid-run cut of one instance, sufficient to resume it exactly where it
/// stopped: the completed-round count, every agent's state at that time, the
/// record accumulated so far and the wire accounting. Produced/consumed by
/// net/checkpoint.hpp; the decide bookkeeping (decided set, undecided
/// counter) is recomputed from the record, not stored.
template <ExchangeProtocol X>
struct ResumePoint {
  int time = 0;
  std::vector<typename X::State> states;
  RunRecord record;
  std::size_t bits_sent = 0;
  std::size_t messages_sent = 0;
};

template <ExchangeProtocol X, class P>
class Stepper {
 public:
  using State = typename X::State;
  using Message = typename X::Message;

  /// `x` and `act` are borrowed and must outlive the stepper; the pattern
  /// and preferences are copied so an instance owns its inputs (the
  /// workload engine keeps thousands of steppers alive at once).
  Stepper(const X& x, const P& act, FailurePattern alpha,
          std::vector<Value> inits, int t, const StepperOptions& opt = {},
          TraceSink<X>* sink = nullptr)
      : x_(&x),
        act_(&act),
        alpha_(std::move(alpha)),
        t_(t),
        max_rounds_(opt.max_rounds > 0 ? opt.max_rounds : t + 4),
        stop_when_all_decided_(opt.stop_when_all_decided),
        sink_(sink),
        n_(x.n()),
        undecided_(x.n()),
        decided_(static_cast<std::size_t>(x.n()), false) {
    EBA_REQUIRE(alpha_.n() == n_, "pattern/exchange agent count mismatch");
    EBA_REQUIRE(static_cast<int>(inits.size()) == n_, "inits size mismatch");
    record_.n = n_;
    record_.t = t_;
    record_.inits = std::move(inits);
    record_.nonfaulty = alpha_.nonfaulty();
    states_.reserve(static_cast<std::size_t>(n_));
    for (AgentId i = 0; i < n_; ++i)
      states_.push_back(
          x.initial_state(i, record_.inits[static_cast<std::size_t>(i)]));
    if (sink_) sink_->on_states(0, states_);
  }

  /// Resumes an instance from a mid-run cut (see ResumePoint): the stepper
  /// continues from `resume.time` exactly as if it had executed the recorded
  /// rounds itself — the differential tests in tests/test_recovery.cpp pin
  /// restored-and-continued runs record-for-record against uninterrupted
  /// ones. The decide bookkeeping is rebuilt by scanning the record for
  /// first decides, so a resume point cannot smuggle in inconsistent
  /// counters.
  Stepper(const X& x, const P& act, FailurePattern alpha,
          ResumePoint<X>&& resume, int t, const StepperOptions& opt = {},
          TraceSink<X>* sink = nullptr)
      : x_(&x),
        act_(&act),
        alpha_(std::move(alpha)),
        t_(t),
        max_rounds_(opt.max_rounds > 0 ? opt.max_rounds : t + 4),
        stop_when_all_decided_(opt.stop_when_all_decided),
        sink_(sink),
        n_(x.n()),
        time_(resume.time),
        start_time_(resume.time),
        undecided_(x.n()),
        decided_(static_cast<std::size_t>(x.n()), false),
        states_(std::move(resume.states)),
        record_(std::move(resume.record)),
        bits_sent_(resume.bits_sent),
        messages_sent_(resume.messages_sent) {
    EBA_REQUIRE(alpha_.n() == n_, "pattern/exchange agent count mismatch");
    EBA_REQUIRE(record_.n == n_ && record_.t == t_,
                "resume record does not match the context");
    EBA_REQUIRE(record_.rounds == time_ && time_ >= 0 && time_ <= max_rounds_,
                "resume time does not match the recorded rounds");
    EBA_REQUIRE(static_cast<int>(states_.size()) == n_,
                "resume states must cover every agent");
    EBA_REQUIRE(static_cast<int>(record_.inits.size()) == n_,
                "resume record inits size mismatch");
    for (int m = 0; m < time_; ++m)
      for (AgentId i = 0; i < n_; ++i)
        if (record_.actions[static_cast<std::size_t>(m)]
                           [static_cast<std::size_t>(i)]
                               .is_decide() &&
            !decided_[static_cast<std::size_t>(i)]) {
          decided_[static_cast<std::size_t>(i)] = true;
          decided_set_.insert(i);
          --undecided_;
        }
    if (sink_) sink_->on_states(time_, states_);
  }

  [[nodiscard]] int n() const { return n_; }
  [[nodiscard]] int t() const { return t_; }
  /// Rounds completed so far (= the current time).
  [[nodiscard]] int time() const { return time_; }
  [[nodiscard]] int max_rounds() const { return max_rounds_; }
  [[nodiscard]] bool stop_when_all_decided() const {
    return stop_when_all_decided_;
  }
  /// The time this stepper started at: 0 for a fresh instance, the resume
  /// point's time for a restored one.
  [[nodiscard]] int start_time() const { return start_time_; }
  /// Running count of agents that have not yet decided; maintained
  /// incrementally instead of rescanning all n agents every round.
  [[nodiscard]] int undecided() const { return undecided_; }
  [[nodiscard]] std::size_t bits_sent() const { return bits_sent_; }
  [[nodiscard]] std::size_t messages_sent() const { return messages_sent_; }
  [[nodiscard]] const std::vector<State>& states() const { return states_; }
  [[nodiscard]] const FailurePattern& pattern() const { return alpha_; }

  /// Installs an online adversary (see AdversaryHook above). Must be set
  /// before the stepper runs its first round — time 0 for a fresh instance,
  /// the resume time for a restored one (crash recovery reinstalls the hook
  /// from the rolled-back strategy; net/workload.hpp) — because replacing it
  /// mid-run would make the realized pattern unattributable to one strategy.
  void set_adversary_hook(AdversaryHook hook) {
    EBA_REQUIRE(time_ == start_time_ && !in_round_,
                "adversary hook must be installed before the first round");
    adversary_ = std::move(hook);
  }

  /// True between begin_round() and finish_round(). Checkpoints may only be
  /// cut at round boundaries (net/checkpoint.hpp asserts this).
  [[nodiscard]] bool in_round() const { return in_round_; }

  /// True when the instance will run no further round: the horizon is
  /// exhausted or (under early stopping) every agent has decided.
  [[nodiscard]] bool done() const {
    if (in_round_) return false;
    if (time_ >= max_rounds_) return true;
    return stop_when_all_decided_ && undecided_ == 0;
  }

  /// Runs one full round in memory. Returns false (and does nothing) when
  /// the instance is done.
  bool step() {
    const std::vector<Action>* actions = begin_round();
    if (!actions) return false;
    if constexpr (BorrowedRoundExchange<X>) {
      borrowed_round(*actions);
    } else {
      generic_round(*actions);
    }
    end_round();
    return true;
  }

  // -- Split-phase interface (external transports) --------------------------

  /// Starts a round: computes every agent's action and the decide
  /// bookkeeping. Returns nullptr when the instance is done. After a
  /// non-null return the caller must complete the round with
  /// finish_round() (or run_round_in_memory via step() is unavailable —
  /// phases must not be mixed).
  [[nodiscard]] const std::vector<Action>* begin_round() {
    EBA_REQUIRE(!in_round_, "begin_round called twice without finish_round");
    if (done()) return nullptr;
    actions_.assign(static_cast<std::size_t>(n_), Action::noop());
    AgentSet deciding_now;
    for (AgentId i = 0; i < n_; ++i) {
      const Action a = (*act_)(states_[static_cast<std::size_t>(i)]);
      actions_[static_cast<std::size_t>(i)] = a;
      if (a.is_decide() && !decided_[static_cast<std::size_t>(i)]) {
        decided_[static_cast<std::size_t>(i)] = true;
        decided_set_.insert(i);
        deciding_now.insert(i);
        --undecided_;
      }
    }
    if (adversary_)
      adversary_(StagedRound{.round = time_,
                             .t = t_,
                             .actions = actions_,
                             .deciding_now = deciding_now,
                             .decided = decided_set_},
                 alpha_);
    in_round_ = true;
    return &actions_;
  }

  /// Completes a round whose messages were moved by an external transport:
  /// applies δ with the filtered inboxes and appends the transport's
  /// sent/delivered logs and accounting to the record.
  void finish_round(
      std::span<const std::vector<std::optional<Message>>> inbox,
      std::vector<AgentSet> sent, std::vector<AgentSet> delivered,
      std::size_t bits, std::size_t messages) {
    EBA_REQUIRE(in_round_, "finish_round without begin_round");
    EBA_REQUIRE(static_cast<int>(inbox.size()) == n_, "inbox size mismatch");
    bits_sent_ += bits;
    messages_sent_ += messages;
    for (AgentId i = 0; i < n_; ++i)
      x_->update(states_[static_cast<std::size_t>(i)],
                 actions_[static_cast<std::size_t>(i)],
                 std::span<const std::optional<Message>>(
                     inbox[static_cast<std::size_t>(i)]));
    record_.sent.push_back(std::move(sent));
    record_.delivered.push_back(std::move(delivered));
    end_round();
  }

  /// The record accumulated so far; `record().rounds` is kept in sync after
  /// every completed round, so this is valid mid-run too.
  [[nodiscard]] const RunRecord& record() const { return record_; }
  [[nodiscard]] RunRecord take_record() {
    EBA_REQUIRE(!in_round_, "take_record mid-round");
    return std::move(record_);
  }
  [[nodiscard]] std::vector<State> take_states() {
    EBA_REQUIRE(!in_round_, "take_states mid-round");
    return std::move(states_);
  }

 private:
  void end_round() {
    record_.actions.push_back(std::move(actions_));
    actions_.clear();
    time_ += 1;
    record_.rounds = time_;
    in_round_ = false;
    if (sink_) sink_->on_states(time_, states_);
  }

  /// §3 round, messages as values: µ per sender (once for broadcast
  /// exchanges, per destination otherwise), adversary filtering, δ.
  void generic_round(const std::vector<Action>& actions) {
    const std::size_t un = static_cast<std::size_t>(n_);
    std::vector<AgentSet> sent(un);
    std::vector<AgentSet> delivered(un);
    inbox_.assign(un, std::vector<std::optional<Message>>(un));

    if constexpr (BroadcastExchange<X>) {
      for (AgentId i = 0; i < n_; ++i) {
        std::optional<Message> out = x_->message(
            states_[static_cast<std::size_t>(i)],
            actions[static_cast<std::size_t>(i)], /*dest=*/0);
        if (!out) continue;
        bits_sent_ +=
            static_cast<std::size_t>(n_ - 1) * x_->message_bits(*out);
        messages_sent_ += static_cast<std::size_t>(n_ - 1);
        sent[static_cast<std::size_t>(i)] =
            AgentSet::all(n_).minus(AgentSet{i});
        for (AgentId j = 0; j < n_; ++j) {
          if (!alpha_.delivered(time_, i, j)) continue;
          inbox_[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] =
              *out;
          if (j != i) delivered[static_cast<std::size_t>(i)].insert(j);
        }
      }
    } else {
      // Per-destination µ: correct for exchanges that address receivers
      // individually. Self-delivery of µ(s, a, self) always succeeds.
      for (AgentId i = 0; i < n_; ++i) {
        for (AgentId j = 0; j < n_; ++j) {
          std::optional<Message> out = x_->message(
              states_[static_cast<std::size_t>(i)],
              actions[static_cast<std::size_t>(i)], /*dest=*/j);
          if (!out) continue;
          if (j != i) {
            bits_sent_ += x_->message_bits(*out);
            messages_sent_ += 1;
            sent[static_cast<std::size_t>(i)].insert(j);
          }
          if (!alpha_.delivered(time_, i, j)) continue;
          inbox_[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] =
              std::move(*out);
          if (j != i) delivered[static_cast<std::size_t>(i)].insert(j);
        }
      }
    }

    for (AgentId i = 0; i < n_; ++i)
      x_->update(states_[static_cast<std::size_t>(i)],
                 actions[static_cast<std::size_t>(i)],
                 std::span<const std::optional<Message>>(
                     inbox_[static_cast<std::size_t>(i)]));
    record_.sent.push_back(std::move(sent));
    record_.delivered.push_back(std::move(delivered));
  }

  /// Zero-copy round for borrowed-round exchanges (E_fip): every agent's
  /// snapshot is moved out once, receivers merge it by reference, and a
  /// sender's own snapshot is moved back unless the adversary actually
  /// delivered it to another agent (then the fork forces one copy).
  void borrowed_round(const std::vector<Action>& actions)
    requires BorrowedRoundExchange<X>
  {
    using Snapshot = typename X::Snapshot;
    const std::size_t un = static_cast<std::size_t>(n_);
    std::vector<AgentSet> sent(un);
    std::vector<AgentSet> delivered(un);
    std::vector<AgentSet> received(un);

    std::vector<Snapshot> snaps;
    snaps.reserve(un);
    for (AgentId i = 0; i < n_; ++i)
      snaps.push_back(x_->take_snapshot(states_[static_cast<std::size_t>(i)]));

    for (AgentId i = 0; i < n_; ++i) {
      bits_sent_ += static_cast<std::size_t>(n_ - 1) *
                    x_->snapshot_bits(snaps[static_cast<std::size_t>(i)]);
      messages_sent_ += static_cast<std::size_t>(n_ - 1);
      sent[static_cast<std::size_t>(i)] = AgentSet::all(n_).minus(AgentSet{i});
      for (AgentId j = 0; j < n_; ++j) {
        if (!alpha_.delivered(time_, i, j)) continue;
        received[static_cast<std::size_t>(j)].insert(i);
        if (j != i) delivered[static_cast<std::size_t>(i)].insert(j);
      }
    }

    std::vector<const Snapshot*> merged;
    merged.reserve(un);
    for (AgentId j = 0; j < n_; ++j) {
      merged.clear();
      for (AgentId i : received[static_cast<std::size_t>(j)])
        if (i != j) merged.push_back(&snaps[static_cast<std::size_t>(i)]);
      // Copy-on-write: only a snapshot the adversary delivered elsewhere
      // must survive as a merge source; an unforked one is moved back.
      Snapshot base =
          delivered[static_cast<std::size_t>(j)].empty()
              ? std::move(snaps[static_cast<std::size_t>(j)])
              : snaps[static_cast<std::size_t>(j)];
      x_->apply_round(states_[static_cast<std::size_t>(j)],
                      actions[static_cast<std::size_t>(j)], std::move(base),
                      received[static_cast<std::size_t>(j)],
                      std::span<const Snapshot* const>(merged));
    }
    record_.sent.push_back(std::move(sent));
    record_.delivered.push_back(std::move(delivered));
  }

  const X* x_;
  const P* act_;
  FailurePattern alpha_;
  int t_;
  int max_rounds_;
  bool stop_when_all_decided_;
  TraceSink<X>* sink_;
  int n_;
  int time_ = 0;
  int start_time_ = 0;  ///< construction time (nonzero for restored instances)
  int undecided_;
  bool in_round_ = false;
  AdversaryHook adversary_;
  AgentSet decided_set_;  ///< same info as decided_, in the hook's currency
  std::vector<bool> decided_;
  std::vector<State> states_;
  std::vector<Action> actions_;  ///< the in-flight round's actions
  /// Reused across rounds to avoid an n² allocation per round.
  std::vector<std::vector<std::optional<Message>>> inbox_;
  RunRecord record_;
  std::size_t bits_sent_ = 0;
  std::size_t messages_sent_ = 0;
};

}  // namespace eba
