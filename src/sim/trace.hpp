// Human-readable run timelines: render a RunRecord as a per-agent table of
// round actions, delivery failures and decisions. Used by the examples and
// handy when debugging adversaries.
#pragma once

#include <string>

#include "core/types.hpp"

namespace eba {

struct TraceOptions {
  bool show_deliveries = true;  ///< annotate omitted deliveries per round
};

/// Multi-line rendering of the run; one row per agent, one column per round.
[[nodiscard]] std::string format_run(const RunRecord& record,
                                     const TraceOptions& opt = {});

}  // namespace eba
