// Adaptive omission adversaries (cf. Hajiaghayi–Kowalski–Olkowski,
// arXiv:2405.04762): strategy objects that watch each staged round through
// the Stepper's AdversaryHook and choose send/receive drops ONLINE, instead
// of committing a failure pattern up front.
//
// The hook contract (sim/stepper.hpp StagedRound) is the whole interface:
// at the top of every round the strategy sees the actions every agent is
// about to perform — in particular who is deciding — and may add drops to
// the instance's pattern at the current or later rounds. `make_strategy_hook`
// wraps a strategy with the legality checks that make it a *valid* GO(t)
// (resp. SO(t)) adversary: the realized pattern stays within the t-budget
// and the model's plane (no receive drops under SO), past rounds are never
// rewritten, and the faulty set is fixed at base_pattern() time. Plane
// validity per drop — only faulty agents omit — is enforced by
// FailurePattern itself.
//
// Shipped strategies (factories below; tests/test_strategy.cpp certifies
// validity, tests/test_workload.cpp the engine-identity):
//
//  * deafen-the-decider — every faulty agent receive-drops the broadcasts
//    of agents staging a decide (GO), and a faulty agent that is itself
//    deciding mutes its own announcement (both models): decisions spread
//    as slowly as the budget allows.
//  * isolate-a-chain    — the classic hidden-chain lower-bound adversary:
//    faulty agent m behaves correctly until round m+1, where it delivers
//    only to the next chain member and then crashes; the LAST chain hop is
//    chosen online — the lowest-id nonfaulty agent that has not decided
//    yet. Drives P_min-style protocols to the Prop 6.1 bound t+2.
//  * randomized-budget  — seeded per-round coin flips on every legal drop;
//    the RNG consumption is observation-independent, so a seed fully
//    determines the realized pattern (the fuzz harness and the engine
//    differential rely on this).
//
// Strategies are stateful (chain progress, RNG). Run each instance with a
// FRESH strategy object; the runners below take one by reference and
// `run_adaptive_workload` (net/workload.hpp) owns one per instance.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/types.hpp"
#include "failure/pattern.hpp"
#include "sim/drivers.hpp"
#include "sim/simulator.hpp"
#include "sim/stepper.hpp"

namespace eba {

class AdversaryStrategy {
 public:
  virtual ~AdversaryStrategy() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  /// The budget the strategy promises to respect: SO(t) forbids receive
  /// drops, GO(t) allows both planes.
  [[nodiscard]] virtual FailureModel model() const = 0;
  /// Called once before round 0: commits the faulty set (and any
  /// precommitted drops). The faulty set cannot change afterwards.
  [[nodiscard]] virtual FailurePattern base_pattern() = 0;
  /// Observes one staged round; may add drops at rounds >= obs.round.
  virtual void on_round(const StagedRound& obs, FailurePattern& alpha) = 0;

  /// Snapshot of the strategy's mutable state (RNG position, chain
  /// progress), opaque to callers. Restoring it must make the strategy
  /// replay the exact drops it produced after the checkpoint was taken —
  /// the crash/restore differential (tests/test_recovery.cpp) depends on
  /// it. Stateless strategies return/accept the empty string.
  [[nodiscard]] virtual std::string checkpoint_state() const { return {}; }
  virtual void restore_state(const std::string& state) {
    EBA_REQUIRE(state.empty(), "stateless strategy given a nonempty state");
  }
};

std::unique_ptr<AdversaryStrategy> make_deafen_decider_strategy(
    int n, int t, FailureModel model);
std::unique_ptr<AdversaryStrategy> make_isolate_chain_strategy(int n, int t);
std::unique_ptr<AdversaryStrategy> make_random_budget_strategy(
    int n, int t, FailureModel model, std::uint64_t seed,
    double drop_prob = 0.35);

struct NamedStrategyFactory {
  std::string name;
  std::function<std::unique_ptr<AdversaryStrategy>(std::uint64_t seed)> make;
};

/// Every shipped strategy applicable under `model`, as seedable factories
/// (the deterministic strategies ignore the seed).
[[nodiscard]] std::vector<NamedStrategyFactory> shipped_strategies(
    int n, int t, FailureModel model);

/// Wraps a strategy as a Stepper hook and enforces the validity contract
/// after every invocation: model/budget via in_so/in_go, and no rewriting
/// of rounds before the staged one.
[[nodiscard]] AdversaryHook make_strategy_hook(AdversaryStrategy& strat,
                                               int t);

struct AdaptiveRunOptions {
  int max_rounds = 0;                 ///< 0 = t+4
  bool stop_when_all_decided = true;
};

/// What an adaptive run leaves behind: the usual summary plus the pattern
/// the strategy actually realized (for validity assertions and for
/// replaying the run as a static adversary).
struct AdaptiveOutcome {
  RunSummary summary;
  FailurePattern realized = FailurePattern::failure_free(1);
};

/// Bare-Stepper adaptive run (the adaptive analogue of the drivers'
/// summarize loop).
template <ExchangeProtocol X, class P>
AdaptiveOutcome run_adaptive(const X& x, const P& act,
                             AdversaryStrategy& strat,
                             const std::vector<Value>& inits, int t,
                             const AdaptiveRunOptions& opt = {}) {
  FailurePattern base = strat.base_pattern();
  EBA_REQUIRE(base.n() == x.n(), "strategy/exchange agent count mismatch");
  EBA_REQUIRE(strat.model() == FailureModel::sending ? base.in_so(t)
                                                     : base.in_go(t),
              "strategy base pattern outside its model/budget");
  StepperOptions sopt;
  sopt.max_rounds = opt.max_rounds;
  sopt.stop_when_all_decided = opt.stop_when_all_decided;
  Stepper<X, P> stepper(x, act, std::move(base), inits, t, sopt);
  stepper.set_adversary_hook(make_strategy_hook(strat, t));
  while (stepper.step()) {
  }

  AdaptiveOutcome out;
  out.realized = stepper.pattern();
  out.summary.n = x.n();
  out.summary.rounds = stepper.time();
  out.summary.bits_sent = stepper.bits_sent();
  out.summary.messages_sent = stepper.messages_sent();
  out.summary.record = stepper.take_record();
  out.summary.decisions.reserve(static_cast<std::size_t>(out.summary.n));
  for (AgentId i = 0; i < out.summary.n; ++i)
    out.summary.decisions.push_back(out.summary.record.decision(i));
  return out;
}

/// `simulate()` against an adaptive adversary: full state materialization,
/// same realized-pattern side channel.
template <ExchangeProtocol X, class P>
Run<X> simulate_adaptive(const X& x, const P& act, AdversaryStrategy& strat,
                         const std::vector<Value>& inits, int t,
                         const SimulateOptions& opt = {},
                         FailurePattern* realized = nullptr) {
  FailurePattern base = strat.base_pattern();
  EBA_REQUIRE(base.n() == x.n(), "strategy/exchange agent count mismatch");
  StepperOptions sopt;
  sopt.max_rounds = opt.max_rounds;
  sopt.stop_when_all_decided = opt.stop_when_all_decided;
  MaterializingSink<X> sink;
  Stepper<X, P> stepper(x, act, std::move(base), inits, t, sopt, &sink);
  stepper.set_adversary_hook(make_strategy_hook(strat, t));
  while (stepper.step()) {
  }
  if (realized) *realized = stepper.pattern();

  Run<X> run;
  run.bits_sent = stepper.bits_sent();
  run.messages_sent = stepper.messages_sent();
  run.record = stepper.take_record();
  run.states = std::move(sink.states());
  return run;
}

/// Type-erased adaptive runner, dispatched on ProtocolKind like
/// make_driver.
using AdaptiveDriver =
    std::function<AdaptiveOutcome(AdversaryStrategy&, const std::vector<Value>&)>;

[[nodiscard]] AdaptiveDriver make_adaptive_driver(ProtocolKind k, int n,
                                                  int t,
                                                  AdaptiveRunOptions opt = {});

}  // namespace eba
