#include "sim/fuzz.hpp"

#include <chrono>
#include <utility>

#include "core/assert.hpp"
#include "failure/generators.hpp"
#include "stats/rng.hpp"

namespace eba {
namespace {

/// splitmix64 finalizer: decorrelates (base_seed, index) pairs so adjacent
/// indices do not feed the mt19937 near-identical seeds.
std::uint64_t mix_seed(std::uint64_t base, std::uint64_t index) {
  std::uint64_t z = base + 0x9e3779b97f4a7c15ull * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

int prefix_rounds(const FuzzConfig& cfg) {
  return cfg.rounds > 0 ? cfg.rounds : cfg.t + 2;
}

bool passes(const FuzzConfig& cfg, const SpecReport& report) {
  return cfg.strict ? report.ok_strict() : report.ok();
}

SpecReport run_oracle(const RunDriver& driver, const FailurePattern& alpha,
                      const std::vector<Value>& prefs) {
  return check_eba(driver(alpha, prefs).record);
}

/// One explicit drop bit of a pattern; `send` distinguishes the planes.
struct DropBit {
  bool send = true;
  int m = 0;
  AgentId from = 0;
  AgentId to = 0;
};

std::vector<DropBit> collect_drops(const FailurePattern& alpha) {
  std::vector<DropBit> bits;
  for (int m = 0; m < alpha.recorded_rounds(); ++m)
    for (AgentId from = 0; from < alpha.n(); ++from)
      for (AgentId to : alpha.dropped(m, from))
        bits.push_back({true, m, from, to});
  for (int m = 0; m < alpha.recorded_receive_rounds(); ++m)
    for (AgentId to = 0; to < alpha.n(); ++to)
      for (AgentId from : alpha.dropped_receive(m, to))
        bits.push_back({false, m, from, to});
  return bits;
}

FailurePattern rebuild(int n, AgentSet nonfaulty,
                       const std::vector<DropBit>& bits,
                       std::size_t skip = static_cast<std::size_t>(-1)) {
  FailurePattern alpha(n, nonfaulty);
  for (std::size_t b = 0; b < bits.size(); ++b) {
    if (b == skip) continue;
    if (bits[b].send)
      alpha.drop(bits[b].m, bits[b].from, bits[b].to);
    else
      alpha.drop_receive(bits[b].m, bits[b].from, bits[b].to);
  }
  return alpha;
}

/// Relabels agents so the faulty set becomes {0..k-1} (order-preserving
/// within each class). Shipped protocols are renaming-equivariant, so the
/// violation survives; the caller re-verifies and rolls back if not.
void relabel_faulty_first(FailurePattern& alpha, std::vector<Value>& prefs) {
  const int n = alpha.n();
  std::vector<AgentId> perm(static_cast<std::size_t>(n));
  AgentId next = 0;
  for (AgentId i = 0; i < n; ++i)
    if (!alpha.is_nonfaulty(i)) perm[static_cast<std::size_t>(i)] = next++;
  for (AgentId i = 0; i < n; ++i)
    if (alpha.is_nonfaulty(i)) perm[static_cast<std::size_t>(i)] = next++;

  AgentSet nonfaulty;
  for (AgentId i : alpha.nonfaulty()) nonfaulty.insert(perm[static_cast<std::size_t>(i)]);
  std::vector<DropBit> bits = collect_drops(alpha);
  for (DropBit& b : bits) {
    b.from = perm[static_cast<std::size_t>(b.from)];
    b.to = perm[static_cast<std::size_t>(b.to)];
  }
  std::vector<Value> relabeled(prefs.size());
  for (AgentId i = 0; i < n; ++i)
    relabeled[static_cast<std::size_t>(perm[static_cast<std::size_t>(i)])] =
        prefs[static_cast<std::size_t>(i)];

  alpha = rebuild(n, nonfaulty, bits);
  prefs = std::move(relabeled);
}

}  // namespace

FuzzCase fuzz_case(const FuzzConfig& cfg, std::uint64_t index) {
  EBA_REQUIRE(cfg.n >= 2 && cfg.t >= 0 && cfg.t < cfg.n,
              "fuzz config out of range");
  FuzzCase c;
  c.index = index;
  c.seed = mix_seed(cfg.base_seed, index);
  Rng rng(c.seed);
  const int k = cfg.t >= 1 ? rng.below(cfg.t + 1) : 0;
  const int rounds = prefix_rounds(cfg);
  c.alpha = cfg.model == FailureModel::sending
                ? sample_adversary(cfg.n, k, rounds, cfg.drop_prob, rng)
                : sample_go_adversary(cfg.n, k, rounds, cfg.drop_prob,
                                      cfg.recv_drop_prob, rng);
  c.prefs = sample_preferences(cfg.n, rng);
  return c;
}

ShrinkResult shrink_failure(const FuzzConfig& cfg, const RunDriver& driver,
                            const FailurePattern& alpha,
                            const std::vector<Value>& prefs) {
  ShrinkResult cur;
  cur.alpha = alpha;
  cur.prefs = prefs;
  cur.report = run_oracle(driver, cur.alpha, cur.prefs);
  EBA_REQUIRE(!passes(cfg, cur.report), "shrink_failure needs a failing case");

  // Pass 1 (to fixpoint): delete any single drop that keeps the violation.
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<DropBit> bits = collect_drops(cur.alpha);
    for (std::size_t b = 0; b < bits.size(); ++b) {
      FailurePattern candidate =
          rebuild(cur.alpha.n(), cur.alpha.nonfaulty(), bits, b);
      SpecReport rep = run_oracle(driver, candidate, cur.prefs);
      if (passes(cfg, rep)) continue;
      cur.alpha = std::move(candidate);
      cur.report = rep;
      cur.steps += 1;
      changed = true;
      break;  // bit indices shifted; re-collect
    }
  }

  // Pass 2: demote faulty agents that no longer carry any drops. (An agent
  // with drops cannot be demoted — plane validity would reject the bits.)
  for (AgentId g = 0; g < cur.alpha.n(); ++g) {
    if (cur.alpha.is_nonfaulty(g)) continue;
    const std::vector<DropBit> bits = collect_drops(cur.alpha);
    bool carries = false;
    for (const DropBit& b : bits)
      carries = carries || (b.send ? b.from == g : b.to == g);
    if (carries) continue;
    AgentSet nonfaulty = cur.alpha.nonfaulty();
    nonfaulty.insert(g);
    FailurePattern candidate = rebuild(cur.alpha.n(), nonfaulty, bits);
    SpecReport rep = run_oracle(driver, candidate, cur.prefs);
    if (passes(cfg, rep)) continue;
    cur.alpha = std::move(candidate);
    cur.report = rep;
    cur.steps += 1;
  }

  // Pass 3: push preferences toward all-zero, one agent at a time.
  for (std::size_t i = 0; i < cur.prefs.size(); ++i) {
    if (cur.prefs[i] == Value::zero) continue;
    std::vector<Value> candidate = cur.prefs;
    candidate[i] = Value::zero;
    SpecReport rep = run_oracle(driver, cur.alpha, candidate);
    if (passes(cfg, rep)) continue;
    cur.prefs = std::move(candidate);
    cur.report = rep;
    cur.steps += 1;
  }

  // Pass 4: canonicalize — relabel faulty-first so equal-shape failures
  // coincide. Equivariance should preserve the violation; verify anyway and
  // keep the unrelabeled case if it does not.
  {
    FailurePattern candidate = cur.alpha;
    std::vector<Value> cprefs = cur.prefs;
    relabel_faulty_first(candidate, cprefs);
    SpecReport rep = run_oracle(driver, candidate, cprefs);
    if (!passes(cfg, rep)) {
      if (!(candidate == cur.alpha)) cur.steps += 1;
      cur.alpha = std::move(candidate);
      cur.prefs = std::move(cprefs);
      cur.report = rep;
    }
  }
  return cur;
}

FuzzReport run_fuzz(const FuzzConfig& cfg, const RunDriver& driver) {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point start = Clock::now();

  FuzzReport out;
  for (int it = 0; it < cfg.iterations; ++it) {
    const FuzzCase c = fuzz_case(cfg, static_cast<std::uint64_t>(it));
    const SpecReport rep = run_oracle(driver, c.alpha, c.prefs);
    out.runs += 1;
    if (passes(cfg, rep)) continue;
    out.violations += 1;
    if (static_cast<int>(out.failures.size()) < cfg.max_failures) {
      FuzzFailure f;
      f.index = c.index;
      f.seed = c.seed;
      f.alpha = c.alpha;
      f.prefs = c.prefs;
      f.report = rep;
      if (cfg.shrink) {
        ShrinkResult s = shrink_failure(cfg, driver, c.alpha, c.prefs);
        f.shrunk = std::move(s.alpha);
        f.shrunk_prefs = std::move(s.prefs);
        f.shrunk_report = std::move(s.report);
        f.shrink_steps = s.steps;
      } else {
        f.shrunk = f.alpha;
        f.shrunk_prefs = f.prefs;
        f.shrunk_report = f.report;
      }
      out.failures.push_back(std::move(f));
    }
    if (static_cast<int>(out.failures.size()) >= cfg.max_failures) break;
  }
  out.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  return out;
}

FuzzReport run_fuzz(const FuzzConfig& cfg) {
  return run_fuzz(cfg, make_driver(cfg.protocol, cfg.n, cfg.t));
}

}  // namespace eba
