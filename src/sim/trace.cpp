#include "sim/trace.hpp"

#include <sstream>

#include "stats/table.hpp"

namespace eba {

std::string format_run(const RunRecord& r, const TraceOptions& opt) {
  EBA_REQUIRE(r.n > 0, "empty run record");
  std::vector<std::string> headers{"agent", "init", "fate"};
  for (int m = 0; m < r.rounds; ++m)
    headers.push_back("round " + std::to_string(m + 1));
  headers.emplace_back("decision");
  Table table(std::move(headers));

  for (AgentId i = 0; i < r.n; ++i) {
    std::vector<std::string> row;
    row.push_back(std::to_string(i));
    row.push_back(to_string(r.inits[static_cast<std::size_t>(i)]));
    row.emplace_back(r.nonfaulty.contains(i) ? "ok" : "faulty");
    for (int m = 0; m < r.rounds; ++m) {
      const Action a =
          r.actions[static_cast<std::size_t>(m)][static_cast<std::size_t>(i)];
      std::string cell = a.is_decide() ? to_string(a) : ".";
      if (opt.show_deliveries) {
        const AgentSet sent =
            r.sent[static_cast<std::size_t>(m)][static_cast<std::size_t>(i)];
        const AgentSet delivered =
            r.delivered[static_cast<std::size_t>(m)]
                       [static_cast<std::size_t>(i)];
        const AgentSet lost = sent.minus(delivered);
        if (!lost.empty()) {
          cell += " x{";
          bool first = true;
          for (AgentId j : lost) {
            if (!first) cell += ",";
            cell += std::to_string(j);
            first = false;
          }
          cell += "}";
        }
      }
      row.push_back(std::move(cell));
    }
    const auto d = r.decision(i);
    row.push_back(d ? (to_string(d->value) + " @ r" + std::to_string(d->round))
                    : "none");
    table.add_row(std::move(row));
  }

  std::ostringstream os;
  table.print(os);
  return os.str();
}

}  // namespace eba
