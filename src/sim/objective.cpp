#include "sim/objective.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "action/p_opt.hpp"
#include "action/p_opt_go.hpp"
#include "exchange/fip.hpp"
#include "failure/generators.hpp"
#include "sim/stepper.hpp"

namespace eba {
namespace {

/// Worst score over preference vectors plus the pruning side-channels
/// (failure/strategy.hpp PatternScore).
struct Accumulator {
  PatternScore out{.score = 0, .settled_round = 0, .rounds_executed = 0};

  void add(double score, int last_nonfaulty_round, int rounds) {
    out.score = std::max(out.score, score);
    if (out.settled_round != kUnsettled)
      out.settled_round =
          last_nonfaulty_round < 0
              ? kUnsettled
              : std::max(out.settled_round, last_nonfaulty_round);
    out.rounds_executed = std::max(out.rounds_executed, rounds);
  }
};

int last_nonfaulty(const RunRecord& rec) {
  int worst = 0;
  for (AgentId i : rec.nonfaulty) {
    const auto d = rec.decision(i);
    if (!d) return -1;
    worst = std::max(worst, d->round);
  }
  return worst;
}

std::size_t suppressed_messages(const RunRecord& rec) {
  std::size_t total = 0;
  for (std::size_t m = 0; m < rec.sent.size(); ++m)
    for (std::size_t i = 0; i < rec.sent[m].size(); ++i)
      total += static_cast<std::size_t>(
          rec.sent[m][i].minus(rec.delivered[m][i]).size());
  return total;
}

template <class P>
PatternScore ambiguity_score(const FipExchange& x, const P& act, int t,
                             int horizon,
                             const std::vector<std::vector<Value>>& prefs,
                             const FailurePattern& alpha) {
  Accumulator acc;
  for (const auto& pv : prefs) {
    StepperOptions sopt;
    sopt.max_rounds = horizon;
    Stepper<FipExchange, P> st(x, act, alpha, pv, t, sopt);
    while (st.step()) {
    }
    double amb = 0;
    for (AgentId i : alpha.nonfaulty())
      amb += P::evidence_ambiguity(st.states()[static_cast<std::size_t>(i)],
                                   t);
    acc.add(amb, last_nonfaulty(st.record()), st.time());
  }
  return acc.out;
}

}  // namespace

PatternEvaluator make_pattern_evaluator(ObjectiveConfig cfg) {
  EBA_REQUIRE(cfg.n >= 1 && cfg.n <= kMaxAgents, "agent count out of range");
  if (cfg.prefs.empty()) cfg.prefs = all_preference_vectors(cfg.n);
  const int horizon = cfg.max_rounds > 0 ? cfg.max_rounds : cfg.t + 4;

  if (cfg.objective == SearchObjective::evidence_ambiguity) {
    EBA_REQUIRE(cfg.protocol == ProtocolKind::p_opt ||
                    cfg.protocol == ProtocolKind::p_opt_go,
                "evidence_ambiguity needs the full-information protocols");
    auto x = std::make_shared<FipExchange>(cfg.n);
    if (cfg.protocol == ProtocolKind::p_opt) {
      auto p = std::make_shared<POpt>(cfg.n, cfg.t);
      return [cfg = std::move(cfg), x, p,
              horizon](const FailurePattern& alpha) {
        return ambiguity_score(*x, *p, cfg.t, horizon, cfg.prefs, alpha);
      };
    }
    auto p = std::make_shared<POptGo>(cfg.n, cfg.t);
    return
        [cfg = std::move(cfg), x, p, horizon](const FailurePattern& alpha) {
          return ambiguity_score(*x, *p, cfg.t, horizon, cfg.prefs, alpha);
        };
  }

  RunDriver drive = make_driver(cfg.protocol, cfg.n, cfg.t,
                                DriveOptions{.max_rounds = horizon});
  const bool round_objective =
      cfg.objective == SearchObjective::decision_round;
  return [cfg = std::move(cfg), drive = std::move(drive), horizon,
          round_objective](const FailurePattern& alpha) {
    Accumulator acc;
    for (const auto& pv : cfg.prefs) {
      const RunSummary s = drive(alpha, pv);
      const int last = s.last_nonfaulty_round();
      const double score =
          round_objective
              ? (last < 0 ? horizon + 1 : last)
              : static_cast<double>(suppressed_messages(s.record));
      acc.add(score, last, s.rounds);
    }
    return acc.out;
  };
}

}  // namespace eba
