// Objective evaluators for the worst-case adversary search.
//
// failure/strategy.hpp keeps the searchers protocol-agnostic by maximizing
// an injected PatternEvaluator; this is where the evaluators come from. An
// evaluator runs the chosen protocol on every configured preference vector
// against the candidate pattern and aggregates:
//
//   * decision_round       — max over preferences of the last nonfaulty
//                            decision round (undecided counts as horizon+1);
//   * messages_suppressed  — max over preferences of Σ |sent \ delivered|;
//   * evidence_ambiguity   — max over preferences of Σ_i unattributed
//                            faults in nonfaulty i's final view, via the
//                            POpt/POptGo::evidence_ambiguity accessors
//                            (restricted to the p_opt/p_opt_go kinds).
//
// Worst-case over preferences (not average) because the search certifies a
// guarantee: "no preference vector pushes the protocol past round r". The
// PatternScore side-channels (settled_round, rounds_executed) feed the
// searcher's prunings and are filled for every objective.
#pragma once

#include <vector>

#include "failure/strategy.hpp"
#include "sim/drivers.hpp"

namespace eba {

struct ObjectiveConfig {
  SearchObjective objective = SearchObjective::decision_round;
  ProtocolKind protocol = ProtocolKind::p_opt;
  int n = 0;
  int t = 0;
  /// Preference vectors to maximize over; empty = all 2^n of them.
  std::vector<std::vector<Value>> prefs;
  int max_rounds = 0;  ///< per-run horizon; 0 = t+4 (as DriveOptions)
};

[[nodiscard]] PatternEvaluator make_pattern_evaluator(ObjectiveConfig cfg);

}  // namespace eba
