#include "sim/drivers.hpp"

#include "action/authenticated.hpp"
#include "action/early_stop.hpp"
#include "action/p_basic.hpp"
#include "action/p_min.hpp"
#include "action/p_opt.hpp"
#include "action/p_opt_go.hpp"
#include "exchange/authenticated.hpp"
#include "exchange/basic.hpp"
#include "exchange/fip.hpp"
#include "exchange/min.hpp"
#include "exchange/report.hpp"
#include "sim/stepper.hpp"

namespace eba {

int RunSummary::last_nonfaulty_round() const {
  int worst = 0;
  for (AgentId i : record.nonfaulty) {
    const auto& d = decisions[static_cast<std::size_t>(i)];
    if (!d) return -1;
    worst = std::max(worst, d->round);
  }
  return worst;
}

int RunSummary::round_of(AgentId i) const {
  const auto& d = decisions[static_cast<std::size_t>(i)];
  return d ? d->round : -1;
}

namespace {

template <class X, class P>
RunSummary summarize(const X& x, const P& p, const FailurePattern& alpha,
                     const std::vector<Value>& inits, int t,
                     const DriveOptions& opt) {
  // A bare stepper: the drivers never read intermediate states, so the run
  // advances in place with no per-round state materialization.
  StepperOptions sopt;
  sopt.max_rounds = opt.max_rounds;
  Stepper<X, P> stepper(x, p, alpha, inits, t, sopt);
  while (stepper.step()) {
  }
  RunSummary s;
  s.n = x.n();
  s.rounds = stepper.time();
  s.bits_sent = stepper.bits_sent();
  s.messages_sent = stepper.messages_sent();
  s.record = stepper.take_record();
  s.decisions.reserve(static_cast<std::size_t>(s.n));
  for (AgentId i = 0; i < s.n; ++i) s.decisions.push_back(s.record.decision(i));
  return s;
}

}  // namespace

RunDriver make_min_driver(int n, int t, DriveOptions opt) {
  return [=](const FailurePattern& alpha, const std::vector<Value>& inits) {
    return summarize(MinExchange(n), PMin(n, t), alpha, inits, t, opt);
  };
}

RunDriver make_basic_driver(int n, int t, DriveOptions opt) {
  return [=](const FailurePattern& alpha, const std::vector<Value>& inits) {
    return summarize(BasicExchange(n), PBasic(n, t), alpha, inits, t, opt);
  };
}

RunDriver make_fip_driver(int n, int t, DriveOptions opt) {
  return [=](const FailurePattern& alpha, const std::vector<Value>& inits) {
    return summarize(FipExchange(n), POpt(n, t), alpha, inits, t, opt);
  };
}

RunDriver make_fip_p0_driver(int n, int t, DriveOptions opt) {
  return [=](const FailurePattern& alpha, const std::vector<Value>& inits) {
    return summarize(FipExchange(n),
                     POpt(n, t, POpt::CommonKnowledge::disabled), alpha, inits,
                     t, opt);
  };
}

RunDriver make_go_driver(int n, int t, DriveOptions opt) {
  return [=](const FailurePattern& alpha, const std::vector<Value>& inits) {
    return summarize(FipExchange(n), POptGo(n, t), alpha, inits, t, opt);
  };
}

RunDriver make_go_p0_driver(int n, int t, DriveOptions opt) {
  return [=](const FailurePattern& alpha, const std::vector<Value>& inits) {
    return summarize(FipExchange(n),
                     POptGo(n, t, POptGo::CommonKnowledge::disabled), alpha,
                     inits, t, opt);
  };
}

RunDriver make_early_stop_driver(int n, int t, DriveOptions opt) {
  return [=](const FailurePattern& alpha, const std::vector<Value>& inits) {
    return summarize(ReportExchange(n, t), PEarlyStop(n, t), alpha, inits, t,
                     opt);
  };
}

RunDriver make_auth_driver(int n, int t, DriveOptions opt) {
  return [=](const FailurePattern& alpha, const std::vector<Value>& inits) {
    return summarize(AuthExchange(n, t, kDefaultAuthKey), PAuth(n, t), alpha,
                     inits, t, opt);
  };
}

const char* to_string(ProtocolKind k) {
  switch (k) {
    case ProtocolKind::p_min:
      return "P_min";
    case ProtocolKind::p_basic:
      return "P_basic";
    case ProtocolKind::p_opt:
      return "P_opt";
    case ProtocolKind::p_opt_p0:
      return "P_opt_p0";
    case ProtocolKind::p_opt_go:
      return "P_opt_go";
    case ProtocolKind::p_opt_go_p0:
      return "P_opt_go_p0";
    case ProtocolKind::early_stop:
      return "P_es";
    case ProtocolKind::authenticated:
      return "P_auth";
  }
  return "?";
}

FailureModel model_of(ProtocolKind k) {
  return k == ProtocolKind::p_opt_go || k == ProtocolKind::p_opt_go_p0
             ? FailureModel::general
             : FailureModel::sending;
}

RunDriver make_driver(ProtocolKind k, int n, int t, DriveOptions opt) {
  switch (k) {
    case ProtocolKind::p_min:
      return make_min_driver(n, t, opt);
    case ProtocolKind::p_basic:
      return make_basic_driver(n, t, opt);
    case ProtocolKind::p_opt:
      return make_fip_driver(n, t, opt);
    case ProtocolKind::p_opt_p0:
      return make_fip_p0_driver(n, t, opt);
    case ProtocolKind::p_opt_go:
      return make_go_driver(n, t, opt);
    case ProtocolKind::p_opt_go_p0:
      return make_go_p0_driver(n, t, opt);
    case ProtocolKind::early_stop:
      return make_early_stop_driver(n, t, opt);
    case ProtocolKind::authenticated:
      return make_auth_driver(n, t, opt);
  }
  EBA_REQUIRE(false, "unknown protocol kind");
  return {};
}

std::vector<NamedDriver> paper_drivers(int n, int t, DriveOptions opt) {
  return {{"P_min", make_min_driver(n, t, opt)},
          {"P_basic", make_basic_driver(n, t, opt)},
          {"P_fip", make_fip_driver(n, t, opt)}};
}

}  // namespace eba
