// Orbit-annotated synthesis contexts: the full (adversary × preference)
// world list of a context, with every world tied to its renaming-orbit
// representative so KbpSynthesizer::run can evaluate knowledge tests on
// representatives only and relabel the rest (synthesis.hpp's WorldOrbit).
//
// The world list is exactly enumerate_adversaries × all_preference_vectors
// up to ordering — synthesis needs the FULL closed world set (knowledge is
// not invariant under dropping orbit members) — but it is emitted orbit by
// orbit so the annotation is free: within one pattern orbit the worlds are
// laid out member-major ((member index) × (preference mask)), the identity
// member comes first, and the representative of world (π·rep, p) is the
// identity-member world (rep, c) where c is the stabilizer class
// representative of π⁻¹·p. The annotation's renaming composes π with the
// stabilizer element carrying c to π⁻¹·p.
#pragma once

#include <cstddef>
#include <vector>

#include "failure/adversary_iter.hpp"
#include "kripke/synthesis.hpp"

namespace eba {

struct CanonicalContext {
  /// All worlds of the context, member-major per orbit.
  std::vector<std::pair<FailurePattern, std::vector<Value>>> worlds;
  /// orbits[w]: the representative world index and renaming of world w.
  std::vector<WorldOrbit> orbits;
  /// Number of representative worlds (== Σ per pattern orbit of its
  /// preference-class count) — the evaluation load of an orbit-reuse run.
  std::size_t representatives = 0;
};

/// The annotated context of cfg (SO or GO per cfg.model).
[[nodiscard]] CanonicalContext canonical_context_worlds(
    const EnumerationConfig& cfg);

}  // namespace eba
