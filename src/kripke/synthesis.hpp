// Round-by-round synthesis of concrete implementations from knowledge-based
// programs (paper §4; cf. the epistemic-synthesis direction discussed in §8).
//
// In a synchronous context the tests of P0/P1 at time m depend only on the
// system up to time m (the decide-1 test quantifies over *this* round's
// 0-decisions, which are themselves determined by tests about earlier
// times). The construction therefore proceeds inductively: build all runs up
// to time m, evaluate each agent's knowledge tests against the partial
// system, assign actions, advance one round. The result is a concrete
// protocol table on reachable local states — by construction an
// implementation of the program, which Theorems 6.5/6.6 predict equals
// P_min/P_basic in the corresponding contexts (verified in tests).
//
// Scaling (SynthesisOptions): the naive evaluation is world-by-world with a
// fresh common-knowledge BFS per test, which caps full contexts at n <= 4.
// Three observations make n = 5–6 and γ_fip contexts tractable, each gated
// by an option so the naive path stays available as a baseline
// (bench/bench_synthesis.cpp) and the equivalence of all option
// combinations is testable (tests/test_synthesis_opts.cpp):
//
//   * every knowledge test of P0/P1 is a function of the agent's
//     indistinguishability *class*, not of the (world, agent) pair — so each
//     test is evaluated once per class and shared by all member worlds
//     (`memoize`);
//   * the C_N(...) BFS result is a function of the reachable component: a
//     positive verdict transfers to every world reached (its reach set is a
//     subset that also passes), so components are explored once per round
//     per value, with early exit on a failed conjunct (`memoize`);
//   * worlds whose joint signature (per-agent classes, decision state,
//     jdecided-0 flag) coincides are indistinguishable to every test, so
//     only one representative per signature is evaluated and the actions are
//     copied to the duplicates (`dedup_worlds`);
//   * representatives are independent given the per-round tables, so their
//     evaluation — and the per-world state advance — fans out over the
//     shared worker pool of net/pool.hpp (`workers`).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "failure/pattern.hpp"
#include "net/pool.hpp"
#include "sim/relabel.hpp"
#include "sim/simulator.hpp"

namespace eba {

enum class KbpProgram { p0, p1 };

/// Ties world w to its renaming-orbit representative: world w equals world
/// `rep` relabeled by `perm` (pattern and preference vector both). A
/// representative has rep == its own index (perm is ignored there and may be
/// empty). Built by canonical_context_worlds (kripke/canonical_worlds.hpp).
struct WorldOrbit {
  std::size_t rep = 0;
  std::vector<AgentId> perm;
};

struct SynthesisOptions {
  /// Evaluate knowledge tests once per joint-signature class of worlds.
  bool dedup_worlds = true;
  /// Class-level memo of the P0 tests and component memo of the C_N BFS.
  bool memoize = true;
  /// Worker threads for per-round evaluation and state advance
  /// (0 = hardware concurrency, 1 = sequential). All settings produce
  /// identical results.
  int workers = 0;
};

/// Counters describing how much work the options saved (for benches/tests).
struct SynthesisStats {
  std::size_t worlds = 0;
  std::size_t world_rounds = 0;      ///< worlds × horizon
  std::size_t evaluated_rounds = 0;  ///< representative evaluations
  std::size_t common_bfs = 0;        ///< C_N component traversals
};

template <ExchangeProtocol X>
struct SynthesisResult {
  /// Synthesized action for every reachable local state.
  std::unordered_map<typename X::State, Action> table;
  /// Decision (if any) per world per agent, for spec checks.
  std::vector<std::vector<std::optional<Decision>>> decisions;
  SynthesisStats stats;
};

template <ExchangeProtocol X>
class KbpSynthesizer {
 public:
  using State = typename X::State;
  using World = std::pair<FailurePattern, std::vector<Value>>;

  KbpSynthesizer(X x, int t, KbpProgram program, SynthesisOptions opt = {})
      : x_(std::move(x)), t_(t), program_(program), opt_(opt) {}

  [[nodiscard]] SynthesisResult<X> run(const std::vector<World>& worlds,
                                       int horizon) {
    return run(worlds, horizon, {});
  }

  /// Orbit-reuse run: when `orbits` is non-empty it must annotate every
  /// world with its renaming-orbit representative, and the world list must
  /// be closed under the annotated renamings (canonical_context_worlds
  /// guarantees both). Knowledge tests are then evaluated on representative
  /// worlds only; member actions and advanced states are obtained by
  /// relabeling the representative's (sim/relabel.hpp).
  ///
  /// Soundness is the equivariance induction: member initial states equal
  /// the relabeled representative initial states by construction, and if
  /// states correspond under the renamings at time m then
  /// indistinguishability classes correspond too (relabeling is a bijection
  /// on the closed world list), so every knowledge test — a function of the
  /// class and of equivariant propositions — agrees, the copied actions are
  /// exactly what evaluation would have assigned, and advancing the
  /// representative commutes with relabeling. The synthesized table and
  /// per-world decisions are identical to the annotation-free run
  /// (tests/test_relabel.cpp pins this; bench_synthesis gates the γ_fip(5)
  /// point's decisions).
  [[nodiscard]] SynthesisResult<X> run(const std::vector<World>& worlds,
                                       int horizon,
                                       const std::vector<WorldOrbit>& orbits) {
    const int n = x_.n();
    const auto nw = worlds.size();
    orbits_ = orbits.empty() ? nullptr : &orbits;
    orbit_reps_.clear();
    orbit_members_.clear();
    if (orbits_) {
      EBA_REQUIRE(orbits.size() == nw, "orbit annotation shape mismatch");
      for (std::size_t w = 0; w < nw; ++w) {
        const WorldOrbit& ob = orbits[w];
        if (ob.rep == w) {
          orbit_reps_.push_back(w);
        } else {
          EBA_REQUIRE(ob.rep < nw && orbits[ob.rep].rep == ob.rep &&
                          static_cast<int>(ob.perm.size()) == n,
                      "malformed orbit annotation");
          orbit_members_.push_back(w);
        }
      }
    }
    states_.clear();
    decisions_.assign(nw, std::vector<std::optional<Decision>>(
                              static_cast<std::size_t>(n)));
    nonfaulty_.clear();
    inits_.clear();
    last_actions_.assign(nw, std::vector<Action>(static_cast<std::size_t>(n)));
    for (const auto& [alpha, inits] : worlds) {
      EBA_REQUIRE(alpha.n() == n && static_cast<int>(inits.size()) == n,
                  "world shape mismatch");
      std::vector<State> row;
      row.reserve(static_cast<std::size_t>(n));
      for (AgentId i = 0; i < n; ++i)
        row.push_back(x_.initial_state(i, inits[static_cast<std::size_t>(i)]));
      states_.push_back(std::move(row));
      nonfaulty_.push_back(alpha.nonfaulty());
      inits_.push_back(inits);
    }
    bfs_count_.store(0, std::memory_order_relaxed);

    SynthesisResult<X> result;
    result.decisions.assign(nw, std::vector<std::optional<Decision>>(
                                    static_cast<std::size_t>(n)));
    result.stats.worlds = nw;
    for (int m = 0; m < horizon; ++m) {
      build_classes();
      assign_actions(m, result.stats);
      // The synthesized table only needs representative worlds: a duplicate
      // world's states and actions are copies of its representative's, so
      // its records are byte-identical (and every world is its own
      // representative when dedup is off). Decisions are per world. Under
      // orbit reuse, member worlds' states are *relabelings* of their
      // representative's — distinct local states the table must still
      // cover — so every world is recorded there.
      if (orbits_) {
        for (std::size_t w = 0; w < nw; ++w)
          for (AgentId i = 0; i < n; ++i)
            record(result, states_[w][static_cast<std::size_t>(i)],
                   actions_[w][static_cast<std::size_t>(i)]);
      } else {
        for (const std::size_t w : reps_)
          for (AgentId i = 0; i < n; ++i)
            record(result, states_[w][static_cast<std::size_t>(i)],
                   actions_[w][static_cast<std::size_t>(i)]);
      }
      for (std::size_t w = 0; w < nw; ++w) {
        for (AgentId i = 0; i < n; ++i) {
          const Action a = actions_[w][static_cast<std::size_t>(i)];
          if (a.is_decide()) {
            decisions_[w][static_cast<std::size_t>(i)] =
                Decision{a.value(), m + 1};
            result.decisions[w][static_cast<std::size_t>(i)] =
                Decision{a.value(), m + 1};
          }
        }
      }
      advance_round(worlds, m);
      // actions_ is rebuilt from scratch next round; swapping hands the
      // current actions to last_actions_ without reallocating either.
      last_actions_.swap(actions_);
      result.stats.world_rounds += nw;
    }
    result.stats.common_bfs = bfs_count_.load(std::memory_order_relaxed);
    return result;
  }

 private:
  static constexpr std::size_t kGrain = 64;  ///< parallel_for chunk size

  /// Indistinguishability classes at the current time: for each agent, the
  /// set of worlds sharing its local state.
  void build_classes() {
    const int n = x_.n();
    classes_.assign(static_cast<std::size_t>(n), {});
    class_of_.assign(states_.size(),
                     std::vector<int>(static_cast<std::size_t>(n)));
    for (AgentId i = 0; i < n; ++i) {
      std::unordered_map<State, int> ids;
      ids.reserve(states_.size());
      for (std::size_t w = 0; w < states_.size(); ++w) {
        const State& s = states_[w][static_cast<std::size_t>(i)];
        auto [it, fresh] = ids.try_emplace(s, static_cast<int>(ids.size()));
        if (fresh) classes_[static_cast<std::size_t>(i)].emplace_back();
        class_of_[w][static_cast<std::size_t>(i)] = it->second;
        classes_[static_cast<std::size_t>(i)][static_cast<std::size_t>(it->second)]
            .push_back(static_cast<int>(w));
      }
    }
  }

  [[nodiscard]] const std::vector<int>& cls(std::size_t w, AgentId i) const {
    return classes_[static_cast<std::size_t>(i)]
                   [static_cast<std::size_t>(class_of_[w][static_cast<std::size_t>(i)])];
  }

  [[nodiscard]] bool decided(std::size_t w, AgentId i) const {
    return decisions_[w][static_cast<std::size_t>(i)].has_value();
  }

  /// jdecided_j = 0 at the current time in world w: j chose decide(0) in the
  /// previous round.
  [[nodiscard]] bool any_jdecided0(std::size_t w, int m) const {
    if (m == 0) return false;
    for (const Action& a : last_actions_[w])
      if (a.decides(Value::zero)) return true;
    return false;
  }

  /// The φ conjuncts of C_N(t-faulty ∧ no-decided_N(1-v) ∧ ∃v) local to one
  /// world (the t-faulty part is the reach-wide intersection test).
  [[nodiscard]] bool common_pred(std::size_t w, Value v) const {
    bool some_v = false;
    for (Value x : inits_[w]) some_v = some_v || x == v;
    if (!some_v) return false;
    const Value other = opposite(v);
    for (AgentId j : nonfaulty_[w]) {
      const auto& d = decisions_[w][static_cast<std::size_t>(j)];
      if (d && d->value == other) return false;
    }
    return true;
  }

  /// C_N(t-faulty ∧ no-decided_N(1-v) ∧ ∃v) over the partial system — the
  /// naive evaluation (full reach set, then the checks), kept verbatim as
  /// the pre-optimization baseline that `memoize` is measured against.
  [[nodiscard]] bool common_condition_uncached(std::size_t w0, Value v) const {
    const int n = x_.n();
    bfs_count_.fetch_add(1, std::memory_order_relaxed);
    // BFS over worlds through ~_j edges, j nonfaulty at the source world.
    std::vector<char> queued(states_.size(), 0);
    std::vector<int> frontier;
    std::vector<int> reached;
    auto expand = [&](int from) {
      for (AgentId j : nonfaulty_[static_cast<std::size_t>(from)])
        for (int w : cls(static_cast<std::size_t>(from), j))
          if (!queued[static_cast<std::size_t>(w)]) {
            queued[static_cast<std::size_t>(w)] = 1;
            frontier.push_back(w);
            reached.push_back(w);
          }
    };
    expand(static_cast<int>(w0));
    while (!frontier.empty()) {
      const int w = frontier.back();
      frontier.pop_back();
      expand(w);
    }
    // t-faulty: some t-set A is faulty at every reached world; equivalently
    // the intersection of the faulty sets over reached worlds has size >= t.
    AgentSet common_faulty = AgentSet::all(n);
    for (int w : reached)
      common_faulty = common_faulty.intersected(
          nonfaulty_[static_cast<std::size_t>(w)].complement(n));
    if (common_faulty.size() < t_) return false;
    for (int w : reached)
      if (!common_pred(static_cast<std::size_t>(w), v)) return false;
    return true;
  }

  /// Memoized C_N evaluation: one traversal per reachable component per
  /// round per value. A positive verdict is propagated to every reached
  /// world (its reach set is a subset whose conjuncts all hold and whose
  /// faulty intersection only grows); a failed conjunct aborts the
  /// traversal early and also condemns the failing world itself.
  [[nodiscard]] bool common_condition_cached(std::size_t w0, Value v) const {
    auto& memo = common_memo_[static_cast<std::size_t>(to_int(v))];
    {
      const signed char cached =
          memo[w0].load(std::memory_order_relaxed);
      if (cached >= 0) return cached == 1;
    }
    const int n = x_.n();
    bfs_count_.fetch_add(1, std::memory_order_relaxed);
    std::vector<char> queued(states_.size(), 0);
    std::vector<int> frontier;
    std::vector<int> reached;
    AgentSet common_faulty = AgentSet::all(n);
    bool result = true;
    // Checks a world the moment it is first reached; false return = abort.
    auto consider = [&](int w2) {
      if (!common_pred(static_cast<std::size_t>(w2), v)) {
        // w2 is in its own reach set, so its verdict is false too.
        memo[static_cast<std::size_t>(w2)].store(0, std::memory_order_relaxed);
        return false;
      }
      common_faulty = common_faulty.intersected(
          nonfaulty_[static_cast<std::size_t>(w2)].complement(n));
      return common_faulty.size() >= t_;  // monotone: can only shrink
    };
    auto expand = [&](int from) {
      for (AgentId j : nonfaulty_[static_cast<std::size_t>(from)])
        for (int w : cls(static_cast<std::size_t>(from), j))
          if (!queued[static_cast<std::size_t>(w)]) {
            queued[static_cast<std::size_t>(w)] = 1;
            if (!consider(w)) return false;
            frontier.push_back(w);
            reached.push_back(w);
          }
      return true;
    };
    result = expand(static_cast<int>(w0));
    while (result && !frontier.empty()) {
      const int w = frontier.back();
      frontier.pop_back();
      result = expand(w);
    }
    memo[w0].store(result ? 1 : 0, std::memory_order_relaxed);
    if (result)
      for (int w : reached)
        memo[static_cast<std::size_t>(w)].store(1, std::memory_order_relaxed);
    return result;
  }

  /// K_i C_N(...): all of the agent's indistinguishable worlds satisfy the
  /// common condition. Class-memoized when enabled.
  [[nodiscard]] bool knows_common(std::size_t w, AgentId i, Value v) const {
    if (!opt_.memoize) {
      for (int w2 : cls(w, i))
        if (!common_condition_uncached(static_cast<std::size_t>(w2), v))
          return false;
      return true;
    }
    const std::size_t c = static_cast<std::size_t>(
        class_of_[w][static_cast<std::size_t>(i)]);
    auto& cell = class_common_[static_cast<std::size_t>(to_int(v))]
                              [static_cast<std::size_t>(i)][c];
    const signed char cached = cell.load(std::memory_order_relaxed);
    if (cached >= 0) return cached == 1;
    bool all = true;
    for (int w2 : cls(w, i))
      if (!common_condition_cached(static_cast<std::size_t>(w2), v)) {
        all = false;
        break;
      }
    cell.store(all ? 1 : 0, std::memory_order_relaxed);
    return all;
  }

  /// K_i(∨_j jdecided_j = 0). Class-memoized when enabled.
  [[nodiscard]] bool knows_jd0(std::size_t w, AgentId i, int m) const {
    if (!opt_.memoize) {
      for (int w2 : cls(w, i))
        if (!any_jdecided0(static_cast<std::size_t>(w2), m)) return false;
      return true;
    }
    return class_jd0_[static_cast<std::size_t>(i)][static_cast<std::size_t>(
               class_of_[w][static_cast<std::size_t>(i)])] != 0;
  }

  /// Joint world signature for dedup: two worlds with equal per-agent
  /// classes (⇒ equal states), equal decision state and equal jdecided-0
  /// flag are assigned identical actions by every test.
  [[nodiscard]] bool same_signature(std::size_t a, std::size_t b) const {
    if (jd0_[a] != jd0_[b] || class_of_[a] != class_of_[b]) return false;
    for (std::size_t i = 0; i < decisions_[a].size(); ++i) {
      const auto& da = decisions_[a][i];
      const auto& db = decisions_[b][i];
      if (da.has_value() != db.has_value()) return false;
      if (da && da->value != db->value) return false;
    }
    return true;
  }

  /// Fills actions_ (and the stage bookkeeping) for round m+1. Buffers are
  /// members so round r+1 reuses round r's allocations.
  void assign_actions(int m, SynthesisStats& stats) {
    const int n = x_.n();
    const std::size_t nw = states_.size();
    actions_.resize(nw);
    assigned_.resize(nw);
    for (std::size_t w = 0; w < nw; ++w) {
      actions_[w].assign(static_cast<std::size_t>(n), Action{});
      assigned_[w].assign(static_cast<std::size_t>(n), 0);
    }

    jd0_.resize(nw);
    for (std::size_t w = 0; w < nw; ++w)
      jd0_[w] = any_jdecided0(w, m) ? 1 : 0;

    // Representatives: one world per joint signature among the eligible
    // worlds — all worlds normally, orbit representatives under orbit reuse
    // (members get relabeled copies, not evaluations; rep_of_ is only
    // meaningful for eligible worlds then). Duplicates inherit their
    // representative's action row.
    const std::size_t nelig = orbits_ ? orbit_reps_.size() : nw;
    auto eligible = [&](std::size_t idx) {
      return orbits_ ? orbit_reps_[idx] : idx;
    };
    reps_.clear();
    rep_of_.resize(nw);
    if (opt_.dedup_worlds) {
      std::unordered_map<std::uint64_t, std::vector<std::size_t>> buckets;
      for (std::size_t e = 0; e < nelig; ++e) {
        const std::size_t w = eligible(e);
        std::uint64_t h = jd0_[w] ? 0x9e3779b97f4a7c15ull : 0x2545f4914f6cdd1dull;
        for (int c : class_of_[w])
          h = (h ^ static_cast<std::uint64_t>(c)) * 0x100000001b3ull;
        for (const auto& d : decisions_[w])
          h = (h ^ (d ? 2u + static_cast<unsigned>(to_int(d->value)) : 1u)) *
              0x100000001b3ull;
        auto& bucket = buckets[h];
        std::size_t rep = nw;
        for (std::size_t cand : bucket)
          if (same_signature(cand, w)) {
            rep = cand;
            break;
          }
        if (rep == nw) {
          bucket.push_back(w);
          reps_.push_back(w);
          rep = w;
        }
        rep_of_[w] = rep;
      }
    } else {
      reps_.resize(nelig);
      for (std::size_t e = 0; e < nelig; ++e) {
        const std::size_t w = eligible(e);
        reps_[e] = w;
        rep_of_[w] = w;
      }
    }
    stats.evaluated_rounds += reps_.size();

    if (opt_.memoize) {
      // Eager class tables for the P0 decide-0 test.
      class_jd0_.assign(static_cast<std::size_t>(n), {});
      for (AgentId i = 0; i < n; ++i) {
        auto& row = class_jd0_[static_cast<std::size_t>(i)];
        row.assign(classes_[static_cast<std::size_t>(i)].size(), 1);
        for (std::size_t c = 0; c < row.size(); ++c)
          for (int w2 : classes_[static_cast<std::size_t>(i)][c])
            if (!jd0_[static_cast<std::size_t>(w2)]) {
              row[c] = 0;
              break;
            }
      }
      if (program_ == KbpProgram::p1) {
        for (auto v : {0, 1}) {
          reset_tristate(common_memo_[static_cast<std::size_t>(v)], nw);
          auto& per_agent = class_common_[static_cast<std::size_t>(v)];
          per_agent.resize(static_cast<std::size_t>(n));
          for (AgentId i = 0; i < n; ++i)
            reset_tristate(per_agent[static_cast<std::size_t>(i)],
                           classes_[static_cast<std::size_t>(i)].size());
        }
      }
    }

    // Stage 1: noop-if-decided, the common-knowledge lines of P1, and the
    // decide-0 line. All of these depend only on rounds < m+1.
    parallel_for(opt_.workers, reps_.size(), kGrain,
                 [&](std::size_t begin, std::size_t end) {
                   for (std::size_t r = begin; r < end; ++r)
                     eval_stage1(reps_[r], m);
                 });
    copy_rows_to_duplicates();
    // Orbit members need their stage-1 rows before anything reads peer
    // worlds' decide(0) actions: both the stage-2 memo tables below and the
    // sequential non-memoized stage-2 reads range over all worlds.
    copy_rows_to_orbit_members();

    // Stage 2: the decide-1 line. "deciding_j = 0 in round m+1" is now fully
    // determined by stage 1 (stage 2 itself never assigns decide(0), so its
    // reads of other worlds' actions are order-independent).
    if (opt_.memoize) {
      has_decider0_.resize(nw);
      for (std::size_t w = 0; w < nw; ++w) {
        char any = 0;
        for (const Action& a : actions_[w])
          if (a.decides(Value::zero)) {
            any = 1;
            break;
          }
        has_decider0_[w] = any;
      }
      class_no_decider0_.assign(static_cast<std::size_t>(n), {});
      for (AgentId i = 0; i < n; ++i) {
        auto& row = class_no_decider0_[static_cast<std::size_t>(i)];
        row.assign(classes_[static_cast<std::size_t>(i)].size(), 1);
        for (std::size_t c = 0; c < row.size(); ++c)
          for (int w2 : classes_[static_cast<std::size_t>(i)][c])
            if (has_decider0_[static_cast<std::size_t>(w2)]) {
              row[c] = 0;
              break;
            }
      }
    }
    // Without the memo tables, stage 2 reads peer worlds' stage-2 rows
    // directly (its writes are never decide(0), so the *order* is free),
    // which would race with parallel writers — run it sequentially then.
    parallel_for(opt_.memoize ? opt_.workers : 1, reps_.size(), kGrain,
                 [&](std::size_t begin, std::size_t end) {
                   for (std::size_t r = begin; r < end; ++r)
                     eval_stage2(reps_[r]);
                 });
    copy_rows_to_duplicates();
    copy_rows_to_orbit_members();
  }

  void eval_stage1(std::size_t w, int m) {
    const int n = x_.n();
    for (AgentId i = 0; i < n; ++i) {
      auto set = [&](Action a) {
        actions_[w][static_cast<std::size_t>(i)] = a;
        assigned_[w][static_cast<std::size_t>(i)] = 1;
      };
      if (decided(w, i)) {
        set(Action::noop());
        continue;
      }
      if (program_ == KbpProgram::p1) {
        if (knows_common(w, i, Value::zero)) {
          set(Action::decide(Value::zero));
          continue;
        }
        if (knows_common(w, i, Value::one)) {
          set(Action::decide(Value::one));
          continue;
        }
      }
      const bool init0 = inits_[w][static_cast<std::size_t>(i)] == Value::zero;
      if (init0 || knows_jd0(w, i, m)) set(Action::decide(Value::zero));
    }
  }

  void eval_stage2(std::size_t w) {
    const int n = x_.n();
    for (AgentId i = 0; i < n; ++i) {
      if (assigned_[w][static_cast<std::size_t>(i)]) continue;
      bool knows_no_decider = true;
      if (opt_.memoize) {
        knows_no_decider =
            class_no_decider0_[static_cast<std::size_t>(i)]
                              [static_cast<std::size_t>(class_of_[w][static_cast<std::size_t>(i)])] != 0;
      } else {
        for (int w2 : cls(w, i)) {
          for (AgentId j = 0; j < n && knows_no_decider; ++j)
            knows_no_decider =
                !actions_[static_cast<std::size_t>(w2)][static_cast<std::size_t>(j)]
                     .decides(Value::zero);
          if (!knows_no_decider) break;
        }
      }
      actions_[w][static_cast<std::size_t>(i)] =
          knows_no_decider ? Action::decide(Value::one) : Action::noop();
    }
  }

  void copy_rows_to_duplicates() {
    if (!opt_.dedup_worlds) return;
    auto copy = [&](std::size_t w) {
      if (rep_of_[w] != w) {
        actions_[w] = actions_[rep_of_[w]];
        assigned_[w] = assigned_[rep_of_[w]];
      }
    };
    // Under orbit reuse only orbit representatives carry signatures.
    if (orbits_) {
      for (std::size_t w : orbit_reps_) copy(w);
    } else {
      for (std::size_t w = 0; w < rep_of_.size(); ++w) copy(w);
    }
  }

  /// The equivariance copy: member world w == π · rep, so agent π(i) in w
  /// does what agent i does in rep.
  void copy_rows_to_orbit_members() {
    if (!orbits_) return;
    const int n = x_.n();
    parallel_for(
        opt_.workers, orbit_members_.size(), kGrain,
        [&](std::size_t begin, std::size_t end) {
          for (std::size_t k = begin; k < end; ++k) {
            const std::size_t w = orbit_members_[k];
            const WorldOrbit& ob = (*orbits_)[w];
            for (AgentId i = 0; i < n; ++i) {
              const auto pi = static_cast<std::size_t>(
                  ob.perm[static_cast<std::size_t>(i)]);
              actions_[w][pi] = actions_[ob.rep][static_cast<std::size_t>(i)];
              assigned_[w][pi] = assigned_[ob.rep][static_cast<std::size_t>(i)];
            }
          }
        });
  }

  void advance_round(const std::vector<World>& worlds, int m) {
    const int n = x_.n();
    using Message = typename X::Message;
    const std::size_t count = orbits_ ? orbit_reps_.size() : worlds.size();
    parallel_for(
        opt_.workers, count, kGrain,
        [&](std::size_t begin, std::size_t end) {
          // Chunk-local scratch: reset per world instead of reallocated.
          std::vector<std::optional<Message>> outgoing(
              static_cast<std::size_t>(n));
          std::vector<std::vector<std::optional<Message>>> inbox(
              static_cast<std::size_t>(n),
              std::vector<std::optional<Message>>(static_cast<std::size_t>(n)));
          for (std::size_t e = begin; e < end; ++e) {
            const std::size_t w = orbits_ ? orbit_reps_[e] : e;
            const FailurePattern& alpha = worlds[w].first;
            for (AgentId i = 0; i < n; ++i)
              for (AgentId j = 0; j < n; ++j)
                inbox[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]
                    .reset();
            for (AgentId i = 0; i < n; ++i)
              outgoing[static_cast<std::size_t>(i)] =
                  x_.message(states_[w][static_cast<std::size_t>(i)],
                             actions_[w][static_cast<std::size_t>(i)], 0);
            for (AgentId i = 0; i < n; ++i) {
              if (!outgoing[static_cast<std::size_t>(i)]) continue;
              for (AgentId j = 0; j < n; ++j)
                if (alpha.delivered(m, i, j))
                  inbox[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] =
                      outgoing[static_cast<std::size_t>(i)];
            }
            for (AgentId i = 0; i < n; ++i)
              x_.update(states_[w][static_cast<std::size_t>(i)],
                        actions_[w][static_cast<std::size_t>(i)],
                        std::span<const std::optional<Message>>(
                            inbox[static_cast<std::size_t>(i)]));
          }
        });
    // Member states are the renamed representative states — one relabel
    // per agent instead of a message exchange + update per world.
    if (orbits_) {
      parallel_for(
          opt_.workers, orbit_members_.size(), kGrain,
          [&](std::size_t begin, std::size_t end) {
            for (std::size_t k = begin; k < end; ++k) {
              const std::size_t w = orbit_members_[k];
              const WorldOrbit& ob = (*orbits_)[w];
              const Renaming ren(ob.perm);
              for (AgentId i = 0; i < n; ++i)
                states_[w][static_cast<std::size_t>(
                    ob.perm[static_cast<std::size_t>(i)])] =
                    relabel_state(
                        states_[ob.rep][static_cast<std::size_t>(i)], ren);
            }
          });
    }
  }

  void record(SynthesisResult<X>& result, const State& s, Action a) {
    auto [it, fresh] = result.table.try_emplace(s, a);
    EBA_REQUIRE(fresh || it->second == a,
                "knowledge tests assigned two actions to one local state");
  }

  static void reset_tristate(std::vector<std::atomic<signed char>>& cells,
                             std::size_t count) {
    cells = std::vector<std::atomic<signed char>>(count);
    for (auto& cell : cells) cell.store(-1, std::memory_order_relaxed);
  }

  X x_;
  int t_;
  KbpProgram program_;
  SynthesisOptions opt_;
  /// Orbit annotations of the current run (null = no orbit reuse), with the
  /// world indices split into representatives and members.
  const std::vector<WorldOrbit>* orbits_ = nullptr;
  std::vector<std::size_t> orbit_reps_;
  std::vector<std::size_t> orbit_members_;
  std::vector<std::vector<State>> states_;
  std::vector<std::vector<std::optional<Decision>>> decisions_;
  std::vector<AgentSet> nonfaulty_;
  std::vector<std::vector<Value>> inits_;
  std::vector<std::vector<Action>> last_actions_;
  std::vector<std::vector<std::vector<int>>> classes_;  ///< [agent][class]->worlds
  std::vector<std::vector<int>> class_of_;              ///< [world][agent]

  // Per-round scratch (rebuilt in assign_actions; buffers reused).
  std::vector<std::vector<Action>> actions_;     ///< round actions per world
  std::vector<std::vector<char>> assigned_;      ///< stage-1 assignment mask
  std::vector<char> jd0_;                        ///< any_jdecided0 per world
  std::vector<std::size_t> reps_;                ///< signature representatives
  std::vector<std::size_t> rep_of_;              ///< world -> representative
  std::vector<std::vector<char>> class_jd0_;     ///< [agent][class]
  std::vector<char> has_decider0_;               ///< per world, stage 2
  std::vector<std::vector<char>> class_no_decider0_;  ///< [agent][class]
  /// Tri-state memos (-1 unknown / 0 false / 1 true); atomics because
  /// representative evaluation races benignly (all writers store the same
  /// deterministic value).
  mutable std::array<std::vector<std::atomic<signed char>>, 2> common_memo_;
  mutable std::array<std::vector<std::vector<std::atomic<signed char>>>, 2>
      class_common_;
  mutable std::atomic<std::size_t> bfs_count_{0};
};

}  // namespace eba
