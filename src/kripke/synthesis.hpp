// Round-by-round synthesis of concrete implementations from knowledge-based
// programs (paper §4; cf. the epistemic-synthesis direction discussed in §8).
//
// In a synchronous context the tests of P0/P1 at time m depend only on the
// system up to time m (the decide-1 test quantifies over *this* round's
// 0-decisions, which are themselves determined by tests about earlier
// times). The construction therefore proceeds inductively: build all runs up
// to time m, evaluate each agent's knowledge tests against the partial
// system, assign actions, advance one round. The result is a concrete
// protocol table on reachable local states — by construction an
// implementation of the program, which Theorems 6.5/6.6 predict equals
// P_min/P_basic in the corresponding contexts (verified in tests).
#pragma once

#include <unordered_map>
#include <utility>
#include <vector>

#include "failure/pattern.hpp"
#include "sim/simulator.hpp"

namespace eba {

enum class KbpProgram { p0, p1 };

template <ExchangeProtocol X>
struct SynthesisResult {
  /// Synthesized action for every reachable local state.
  std::unordered_map<typename X::State, Action> table;
  /// Decision (if any) per world per agent, for spec checks.
  std::vector<std::vector<std::optional<Decision>>> decisions;
};

template <ExchangeProtocol X>
class KbpSynthesizer {
 public:
  using State = typename X::State;
  using World = std::pair<FailurePattern, std::vector<Value>>;

  KbpSynthesizer(X x, int t, KbpProgram program)
      : x_(std::move(x)), t_(t), program_(program) {}

  [[nodiscard]] SynthesisResult<X> run(const std::vector<World>& worlds,
                                       int horizon) {
    const int n = x_.n();
    const auto nw = worlds.size();
    states_.clear();
    decisions_.assign(nw, std::vector<std::optional<Decision>>(
                              static_cast<std::size_t>(n)));
    nonfaulty_.clear();
    inits_.clear();
    last_actions_.assign(nw, std::vector<Action>(static_cast<std::size_t>(n)));
    for (const auto& [alpha, inits] : worlds) {
      EBA_REQUIRE(alpha.n() == n && static_cast<int>(inits.size()) == n,
                  "world shape mismatch");
      std::vector<State> row;
      row.reserve(static_cast<std::size_t>(n));
      for (AgentId i = 0; i < n; ++i)
        row.push_back(x_.initial_state(i, inits[static_cast<std::size_t>(i)]));
      states_.push_back(std::move(row));
      nonfaulty_.push_back(alpha.nonfaulty());
      inits_.push_back(inits);
    }

    SynthesisResult<X> result;
    result.decisions.assign(nw, std::vector<std::optional<Decision>>(
                                    static_cast<std::size_t>(n)));
    for (int m = 0; m < horizon; ++m) {
      build_classes();
      const auto actions = assign_actions(m);
      for (std::size_t w = 0; w < nw; ++w) {
        for (AgentId i = 0; i < n; ++i) {
          const Action a = actions[w][static_cast<std::size_t>(i)];
          record(result, states_[w][static_cast<std::size_t>(i)], a);
          if (a.is_decide()) {
            decisions_[w][static_cast<std::size_t>(i)] =
                Decision{a.value(), m + 1};
            result.decisions[w][static_cast<std::size_t>(i)] =
                Decision{a.value(), m + 1};
          }
        }
      }
      advance_round(worlds, actions, m);
      last_actions_ = actions;
    }
    return result;
  }

 private:
  /// Indistinguishability classes at the current time: for each agent, the
  /// set of worlds sharing its local state.
  void build_classes() {
    const int n = x_.n();
    classes_.assign(static_cast<std::size_t>(n), {});
    class_of_.assign(states_.size(),
                     std::vector<int>(static_cast<std::size_t>(n)));
    for (AgentId i = 0; i < n; ++i) {
      std::unordered_map<State, int> ids;
      for (std::size_t w = 0; w < states_.size(); ++w) {
        const State& s = states_[w][static_cast<std::size_t>(i)];
        auto [it, fresh] = ids.try_emplace(s, static_cast<int>(ids.size()));
        if (fresh) classes_[static_cast<std::size_t>(i)].emplace_back();
        class_of_[w][static_cast<std::size_t>(i)] = it->second;
        classes_[static_cast<std::size_t>(i)][static_cast<std::size_t>(it->second)]
            .push_back(static_cast<int>(w));
      }
    }
  }

  [[nodiscard]] const std::vector<int>& cls(std::size_t w, AgentId i) const {
    return classes_[static_cast<std::size_t>(i)]
                   [static_cast<std::size_t>(class_of_[w][static_cast<std::size_t>(i)])];
  }

  [[nodiscard]] bool decided(std::size_t w, AgentId i) const {
    return decisions_[w][static_cast<std::size_t>(i)].has_value();
  }

  /// jdecided_j = 0 at the current time in world w: j chose decide(0) in the
  /// previous round.
  [[nodiscard]] bool any_jdecided0(std::size_t w, int m) const {
    if (m == 0) return false;
    for (const Action& a : last_actions_[w])
      if (a.decides(Value::zero)) return true;
    return false;
  }

  /// C_N(t-faulty ∧ no-decided_N(1-v) ∧ ∃v) over the partial system.
  [[nodiscard]] bool common_condition(std::size_t w0, Value v) const {
    const int n = x_.n();
    const Value other = opposite(v);
    // BFS over worlds through ~_j edges, j nonfaulty at the source world.
    std::vector<char> queued(states_.size(), 0);
    std::vector<int> frontier;
    std::vector<int> reached;
    auto expand = [&](int from) {
      for (AgentId j : nonfaulty_[static_cast<std::size_t>(from)])
        for (int w : cls(static_cast<std::size_t>(from), j))
          if (!queued[static_cast<std::size_t>(w)]) {
            queued[static_cast<std::size_t>(w)] = 1;
            frontier.push_back(w);
            reached.push_back(w);
          }
    };
    expand(static_cast<int>(w0));
    while (!frontier.empty()) {
      const int w = frontier.back();
      frontier.pop_back();
      expand(w);
    }
    // t-faulty: some t-set A is faulty at every reached world; equivalently
    // the intersection of the faulty sets over reached worlds has size >= t.
    AgentSet common_faulty = AgentSet::all(n);
    for (int w : reached)
      common_faulty = common_faulty.intersected(
          nonfaulty_[static_cast<std::size_t>(w)].complement(n));
    if (common_faulty.size() < t_) return false;
    for (int w : reached) {
      bool some_v = false;
      for (Value x : inits_[static_cast<std::size_t>(w)]) some_v = some_v || x == v;
      if (!some_v) return false;
      for (AgentId j : nonfaulty_[static_cast<std::size_t>(w)]) {
        const auto& d = decisions_[static_cast<std::size_t>(w)]
                                  [static_cast<std::size_t>(j)];
        if (d && d->value == other) return false;
      }
    }
    return true;
  }

  [[nodiscard]] std::vector<std::vector<Action>> assign_actions(int m) {
    const int n = x_.n();
    std::vector<std::vector<Action>> actions(
        states_.size(), std::vector<Action>(static_cast<std::size_t>(n)));
    std::vector<std::vector<char>> assigned(
        states_.size(), std::vector<char>(static_cast<std::size_t>(n), 0));

    // Stage 1: noop-if-decided, the common-knowledge lines of P1, and the
    // decide-0 line. All of these depend only on rounds < m+1.
    for (std::size_t w = 0; w < states_.size(); ++w) {
      for (AgentId i = 0; i < n; ++i) {
        auto set = [&](Action a) {
          actions[w][static_cast<std::size_t>(i)] = a;
          assigned[w][static_cast<std::size_t>(i)] = 1;
        };
        if (decided(w, i)) {
          set(Action::noop());
          continue;
        }
        if (program_ == KbpProgram::p1) {
          const auto& peers = cls(w, i);
          auto knows_common = [&](Value v) {
            for (int w2 : peers)
              if (!common_condition(static_cast<std::size_t>(w2), v))
                return false;
            return true;
          };
          if (knows_common(Value::zero)) {
            set(Action::decide(Value::zero));
            continue;
          }
          if (knows_common(Value::one)) {
            set(Action::decide(Value::one));
            continue;
          }
        }
        const bool init0 =
            inits_[w][static_cast<std::size_t>(i)] == Value::zero;
        bool knows_jd0 = true;
        for (int w2 : cls(w, i))
          knows_jd0 = knows_jd0 && any_jdecided0(static_cast<std::size_t>(w2), m);
        if (init0 || knows_jd0) set(Action::decide(Value::zero));
      }
    }

    // Stage 2: the decide-1 line. "deciding_j = 0 in round m+1" is now fully
    // determined by stage 1.
    for (std::size_t w = 0; w < states_.size(); ++w) {
      for (AgentId i = 0; i < n; ++i) {
        if (assigned[w][static_cast<std::size_t>(i)]) continue;
        bool knows_no_decider = true;
        for (int w2 : cls(w, i)) {
          for (AgentId j = 0; j < n && knows_no_decider; ++j)
            knows_no_decider =
                !actions[static_cast<std::size_t>(w2)][static_cast<std::size_t>(j)]
                     .decides(Value::zero);
          if (!knows_no_decider) break;
        }
        actions[w][static_cast<std::size_t>(i)] =
            knows_no_decider ? Action::decide(Value::one) : Action::noop();
      }
    }
    return actions;
  }

  void advance_round(const std::vector<World>& worlds,
                     const std::vector<std::vector<Action>>& actions, int m) {
    const int n = x_.n();
    using Message = typename X::Message;
    for (std::size_t w = 0; w < worlds.size(); ++w) {
      const FailurePattern& alpha = worlds[w].first;
      std::vector<std::optional<Message>> outgoing(static_cast<std::size_t>(n));
      for (AgentId i = 0; i < n; ++i)
        outgoing[static_cast<std::size_t>(i)] =
            x_.message(states_[w][static_cast<std::size_t>(i)],
                       actions[w][static_cast<std::size_t>(i)], 0);
      std::vector<std::vector<std::optional<Message>>> inbox(
          static_cast<std::size_t>(n),
          std::vector<std::optional<Message>>(static_cast<std::size_t>(n)));
      for (AgentId i = 0; i < n; ++i) {
        if (!outgoing[static_cast<std::size_t>(i)]) continue;
        for (AgentId j = 0; j < n; ++j)
          if (alpha.delivered(m, i, j))
            inbox[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] =
                outgoing[static_cast<std::size_t>(i)];
      }
      for (AgentId i = 0; i < n; ++i)
        x_.update(states_[w][static_cast<std::size_t>(i)],
                  actions[w][static_cast<std::size_t>(i)],
                  std::span<const std::optional<Message>>(
                      inbox[static_cast<std::size_t>(i)]));
    }
  }

  void record(SynthesisResult<X>& result, const State& s, Action a) {
    auto [it, fresh] = result.table.try_emplace(s, a);
    EBA_REQUIRE(fresh || it->second == a,
                "knowledge tests assigned two actions to one local state");
  }

  X x_;
  int t_;
  KbpProgram program_;
  std::vector<std::vector<State>> states_;
  std::vector<std::vector<std::optional<Decision>>> decisions_;
  std::vector<AgentSet> nonfaulty_;
  std::vector<std::vector<Value>> inits_;
  std::vector<std::vector<Action>> last_actions_;
  std::vector<std::vector<std::vector<int>>> classes_;  ///< [agent][class]->worlds
  std::vector<std::vector<int>> class_of_;              ///< [world][agent]
};

}  // namespace eba
