#include "kripke/canonical_worlds.hpp"

#include "failure/canonical.hpp"
#include "failure/generators.hpp"

namespace eba {

CanonicalContext canonical_context_worlds(const EnumerationConfig& cfg) {
  CanonicalContext ctx;
  const std::size_t P = std::size_t{1} << cfg.n;
  enumerate_canonical_adversaries(
      cfg, [&](const FailurePattern& rep, std::uint64_t /*multiplicity*/) {
        const PreferenceQuotient q = preference_quotient(rep);
        ctx.representatives += q.classes.size();
        const std::size_t orbit_base = ctx.worlds.size();
        std::size_t mi = 0;
        expand_orbit_perms(
            rep,
            [&](const FailurePattern& member, const std::vector<AgentId>& pi) {
              std::vector<AgentId> inv(pi.size());
              for (std::size_t i = 0; i < pi.size(); ++i)
                inv[static_cast<std::size_t>(pi[i])] = static_cast<AgentId>(i);
              for (std::size_t mask = 0; mask < P; ++mask) {
                ctx.worlds.emplace_back(member,
                                        preferences_of_mask(mask, cfg.n));
                // World (π·rep, mask) = (π ∘ σ) · (rep, c): undo π on the
                // preference mask, take its stabilizer class representative
                // c, and compose the renamings.
                const std::uint64_t underlying =
                    AgentSet(mask).permuted(inv).bits();
                const std::uint64_t c =
                    q.classes[q.class_of[static_cast<std::size_t>(underlying)]]
                        .mask;
                WorldOrbit ob;
                ob.rep = orbit_base + static_cast<std::size_t>(c);
                if (mi == 0 && mask == c) {
                  // The representative world itself (identity member, class
                  // representative mask).
                } else {
                  const std::vector<AgentId>& sigma =
                      q.sigma[static_cast<std::size_t>(underlying)];
                  ob.perm.resize(pi.size());
                  for (std::size_t i = 0; i < pi.size(); ++i)
                    ob.perm[i] = pi[static_cast<std::size_t>(
                        sigma[static_cast<std::size_t>(i)])];
                }
                ctx.orbits.push_back(std::move(ob));
              }
              ++mi;
              return true;
            });
        return true;
      });
  return ctx;
}

}  // namespace eba
