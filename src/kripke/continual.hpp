// Continual common knowledge C⊡_S (Halpern–Moses–Waarts 2001; paper §7).
//
// A point (r', m') is S-⊡-reachable from (r, m) if there is a chain of
// runs r = r^0, r^1, ..., r^k = r' where consecutive runs are linked by an
// agent i_j that belongs to S at both endpoints and has equal local states
// there — and, crucially, the chain may *slide in time* freely within each
// run. C⊡_S φ holds at (r, m) iff φ holds at every S-⊡-reachable point.
//
// Two structural facts make this computable:
//   * slides mean reachability only depends on the starting run, and once a
//     run is reached every point of it is;
//   * the linking relation is symmetric, so the reachable-run sets are the
//     connected components of a union-find over runs, with edges
//     contributed by every (time, agent ∈ S) indistinguishability class.
//
// This is the operator in the Halpern–Moses–Waarts optimality
// characterization (Theorem 7.5), which tests/test_continual.cpp checks for
// P_opt.
#pragma once

#include <numeric>
#include <vector>

#include "kripke/system.hpp"

namespace eba {

template <class Sys>
class BoxReachability {
 public:
  /// Builds the S-⊡ components of the system. `S` maps a Point to the
  /// indexical AgentSet (e.g. N ∧ O, the nonfaulty agents that decided or
  /// are deciding 1).
  template <class SetFn>
  BoxReachability(const Sys& I, const SetFn& S) : parent_(make_iota(I.num_runs())) {
    for (int m = 0; m <= I.horizon(); ++m) {
      for (int r = 0; r < I.num_runs(); ++r) {
        const Point p{r, m};
        for (AgentId j : S(p)) {
          for (int r2 : I.indistinguishable_runs(j, p)) {
            if (S(Point{r2, m}).contains(j)) unite(r, r2);
          }
        }
      }
    }
  }

  /// True iff (r2, any time) is S-⊡-reachable from (r1, any time).
  [[nodiscard]] bool reachable(int r1, int r2) const {
    return find(r1) == find(r2);
  }

  /// C⊡_S φ at any point of run r: φ must hold at every point of every run
  /// in r's component (the component always contains r itself, matching the
  /// k = 0 slide case of the definition).
  template <class Pred>
  [[nodiscard]] bool continual_common_knowledge(const Sys& I, int r,
                                                const Pred& phi) const {
    const int root = find(r);
    for (int r2 = 0; r2 < I.num_runs(); ++r2) {
      if (find(r2) != root) continue;
      for (int m = 0; m <= I.horizon(); ++m)
        if (!phi(Point{r2, m})) return false;
    }
    return true;
  }

 private:
  static std::vector<int> make_iota(int n) {
    std::vector<int> v(static_cast<std::size_t>(n));
    std::iota(v.begin(), v.end(), 0);
    return v;
  }
  [[nodiscard]] int find(int x) const {
    while (parent_[static_cast<std::size_t>(x)] != x)
      x = parent_[static_cast<std::size_t>(x)] =
          parent_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(x)])];
    return x;
  }
  void unite(int a, int b) {
    a = find(a);
    b = find(b);
    if (a != b) parent_[static_cast<std::size_t>(b)] = a;
  }

  mutable std::vector<int> parent_;
};

/// The indexical set N ∧ O of the paper (for v = 1) and N ∧ Z (for v = 0):
/// the nonfaulty agents that have decided v or are about to decide v.
template <class Sys>
[[nodiscard]] auto nonfaulty_deciders_indexical(const Sys& I, Value v) {
  return [&I, v](Point q) {
    AgentSet out;
    for (AgentId j : I.nonfaulty_set(q))
      if (I.decided(q, j) == v || I.deciding(q, j, v)) out.insert(j);
    return out;
  };
}

}  // namespace eba
