// File-backed streaming trace writer.
//
// Wraps audit/trace_file.hpp's TraceWriter and streams each appended frame
// straight to a Vfs file, so a long run never holds more than the in-memory
// container it would have built anyway, and a crash leaves a prefix of a
// valid EBTR container on disk (unterminated — read_trace rejects it as
// missing its certificate, which is exactly the signal that the run never
// finished). `finish` flushes the certificate frame and fsyncs: when it
// returns, the complete trace is durable, and the on-disk bytes are pinned
// identical to the in-memory writer's output (tests/test_store.cpp).
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "audit/trace_file.hpp"
#include "store/vfs.hpp"

namespace eba {

class FileTraceWriter {
 public:
  FileTraceWriter(Vfs& vfs, const std::string& path, std::uint64_t instance_id,
                  int n, int t, AgentSet nonfaulty,
                  const std::vector<Value>& inits, std::uint64_t key = 0)
      : writer_(instance_id, n, t, nonfaulty, inits, key),
        file_(vfs.create(path)) {
    flush();
  }

  void add_round(const std::vector<Action>& actions,
                 const std::vector<AgentSet>& sent,
                 const std::vector<AgentSet>& delivered) {
    writer_.add_round(actions, sent, delivered);
    flush();
  }

  void add_record_rounds(const RunRecord& record, int from_round = 0) {
    writer_.add_record_rounds(record, from_round);
    flush();
  }

  [[nodiscard]] int rounds_written() const { return writer_.rounds_written(); }

  /// Appends the certificate frame, flushes it, fsyncs, and returns the
  /// finished container (identical to what reading the file back yields).
  [[nodiscard]] Bytes finish(const DecisionCertificate& cert) {
    Bytes out = writer_.finish(cert);
    file_->append(out.data() + flushed_, out.size() - flushed_);
    flushed_ = out.size();
    file_->sync();
    return out;
  }

 private:
  void flush() {
    const Bytes& bytes = writer_.bytes_so_far();
    file_->append(bytes.data() + flushed_, bytes.size() - flushed_);
    flushed_ = bytes.size();
  }

  TraceWriter writer_;
  std::unique_ptr<File> file_;
  std::size_t flushed_ = 0;
};

}  // namespace eba
