#include "store/run_log.hpp"

namespace eba {
namespace {

using Kind = DecodeError::Kind;

std::uint8_t action_byte(const Action& a) {
  if (!a.is_decide()) return 0;
  return a.value() == Value::zero ? 1 : 2;
}

Action action_of(std::uint8_t b) {
  switch (b) {
    case 0: return Action::noop();
    case 1: return Action::decide(Value::zero);
    case 2: return Action::decide(Value::one);
    default:
      throw DecodeError(Kind::malformed, "bad action byte in run log record");
  }
}

/// Shared preamble of both payloads: round index and population size.
std::pair<int, int> decode_round_n(Reader& r) {
  const int round = static_cast<int>(r.u32());
  const int n = static_cast<int>(r.u32());
  if (round < 0 || round > (1 << 20) || n < 1 || n > kMaxAgents)
    throw DecodeError(Kind::malformed, "bad run log round/population header");
  return {round, n};
}

std::vector<Action> decode_actions(Reader& r, int n) {
  std::vector<Action> actions;
  actions.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) actions.push_back(action_of(r.u8()));
  return actions;
}

std::vector<AgentSet> decode_rows(Reader& r, int n, bool forbid_self) {
  const int row_bytes = (n + 7) / 8;
  const std::uint64_t full = AgentSet::all(n).bits();
  std::vector<AgentSet> rows;
  rows.reserve(static_cast<std::size_t>(n));
  for (AgentId i = 0; i < n; ++i) {
    const std::uint64_t row = r.word(row_bytes);
    if ((row & ~full) != 0 || (forbid_self && ((row >> i) & 1u)))
      throw DecodeError(Kind::malformed,
                        "run log plane row outside the population");
    rows.push_back(AgentSet(row));
  }
  return rows;
}

void encode_rows(Writer& w, const std::vector<AgentSet>& rows, int n) {
  const int row_bytes = (n + 7) / 8;
  for (const AgentSet& s : rows) w.word(s.bits(), row_bytes);
}

}  // namespace

void encode_delta(Writer& w, const DeltaPayload& delta) {
  const int n = static_cast<int>(delta.actions.size());
  EBA_REQUIRE(static_cast<int>(delta.sent.size()) == n &&
                  static_cast<int>(delta.delivered.size()) == n,
              "delta planes must cover every agent");
  w.u32(static_cast<std::uint32_t>(delta.round));
  w.u32(static_cast<std::uint32_t>(n));
  for (const Action& a : delta.actions) w.u8(action_byte(a));
  encode_rows(w, delta.sent, n);
  encode_rows(w, delta.delivered, n);
}

DeltaPayload decode_delta(Reader& r) {
  DeltaPayload delta;
  const auto [round, n] = decode_round_n(r);
  delta.round = round;
  delta.actions = decode_actions(r, n);
  delta.sent = decode_rows(r, n, /*forbid_self=*/true);
  delta.delivered = decode_rows(r, n, /*forbid_self=*/false);
  for (int i = 0; i < n; ++i) {
    const std::size_t ui = static_cast<std::size_t>(i);
    if (!delta.delivered[ui].subset_of(delta.sent[ui]))
      throw DecodeError(Kind::malformed,
                        "delta delivered row not a subset of sent");
  }
  return delta;
}

void encode_intent(Writer& w, const IntentPayload& intent) {
  const int n = static_cast<int>(intent.actions.size());
  EBA_REQUIRE(static_cast<int>(intent.dropped_send.size()) == n &&
                  static_cast<int>(intent.dropped_receive.size()) == n,
              "intent planes must cover every agent");
  w.u32(static_cast<std::uint32_t>(intent.round));
  w.u32(static_cast<std::uint32_t>(n));
  for (const Action& a : intent.actions) w.u8(action_byte(a));
  encode_rows(w, intent.dropped_send, n);
  encode_rows(w, intent.dropped_receive, n);
}

IntentPayload decode_intent(Reader& r) {
  IntentPayload intent;
  const auto [round, n] = decode_round_n(r);
  intent.round = round;
  intent.actions = decode_actions(r, n);
  intent.dropped_send = decode_rows(r, n, /*forbid_self=*/true);
  intent.dropped_receive = decode_rows(r, n, /*forbid_self=*/true);
  return intent;
}

DeltaPayload delta_of_record(const RunRecord& record, int m) {
  EBA_REQUIRE(m >= 0 && m < record.rounds,
              "delta round outside the recorded run");
  const std::size_t um = static_cast<std::size_t>(m);
  DeltaPayload delta;
  delta.round = m;
  delta.actions = record.actions[um];
  delta.sent = record.sent[um];
  delta.delivered = record.delivered[um];
  return delta;
}

RunLog::RunLog(Journal&& journal) : journal_(std::move(journal)) {
  for (const JournalRecord& rec : journal_.records())
    if (rec.kind == kRunLogCheckpoint) checkpoint_seqs_.push_back(rec.seq);
}

RunLog RunLog::create(Vfs& vfs, const std::string& dir,
                      const JournalOptions& opt) {
  return RunLog(Journal::create(vfs, dir, opt));
}

RunLog RunLog::open(Vfs& vfs, const std::string& dir,
                    const JournalOptions& opt) {
  return RunLog(Journal::open(vfs, dir, opt));
}

void RunLog::log_checkpoint(const Bytes& checkpoint_bytes) {
  checkpoint_seqs_.push_back(
      journal_.append(kRunLogCheckpoint, checkpoint_bytes));
  journal_.sync();
}

void RunLog::log_delta(const DeltaPayload& delta) {
  Writer w;
  encode_delta(w, delta);
  journal_.append(kRunLogDelta, w.take());
  journal_.sync();
}

void RunLog::log_intent(const IntentPayload& intent) {
  Writer w;
  encode_intent(w, intent);
  journal_.append(kRunLogIntent, w.take());
  journal_.sync();
}

void RunLog::gc_keep_checkpoints(int keep) {
  EBA_REQUIRE(keep >= 1, "retention must keep at least one checkpoint");
  if (checkpoint_seqs_.size() <= static_cast<std::size_t>(keep)) return;
  const std::uint64_t min_seq =
      checkpoint_seqs_[checkpoint_seqs_.size() - static_cast<std::size_t>(keep)];
  journal_.gc(min_seq);
  checkpoint_seqs_.erase(
      checkpoint_seqs_.begin(),
      checkpoint_seqs_.end() - static_cast<std::ptrdiff_t>(keep));
}

}  // namespace eba
