// Durable per-instance run log: full checkpoints, delta rounds, and a
// mid-round write-ahead intent record, layered on the journal.
//
// The workload engine (net/workload.hpp) gives each instance one RunLog.
// Three record kinds flow through its journal:
//
//   FULL_CHECKPOINT (1)  an EBCK container (net/checkpoint.hpp) verbatim —
//                        the recovery root, written at the snapshot cadence.
//   DELTA (2)            one completed round's planes (round index, action
//                        bytes, sent/delivered word rows): the incremental
//                        checkpoint. Replaying deltas from the last full
//                        checkpoint is pinned byte-identical to having run
//                        the rounds, because the engine is deterministic
//                        (paper §3) — recover_run() verifies every replayed
//                        round against its logged delta and refuses to
//                        return a diverging instance.
//   INTENT (3)           the write-ahead log of a round in flight: the
//                        staged actions plus the pattern's drop rows for the
//                        round, appended (and fsynced) after the adversary
//                        hook ran but before any message moves. A crash
//                        between intent and delta recovers by re-running the
//                        round from replayed state and checking the realized
//                        actions/drops against the intent — this is what
//                        lets CrashSchedule fire mid-round.
//
// Retention: every FULL_CHECKPOINT starts a new recovery root; once a newer
// root is durable, records older than the last `keep` roots are dead weight
// and `gc_keep_checkpoints` lets the journal drop the sealed segments that
// hold only them.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "net/checkpoint.hpp"
#include "sim/adaptive.hpp"
#include "store/journal.hpp"

namespace eba {

inline constexpr std::uint8_t kRunLogCheckpoint = 1;
inline constexpr std::uint8_t kRunLogDelta = 2;
inline constexpr std::uint8_t kRunLogIntent = 3;

/// One completed round, as logged incrementally.
struct DeltaPayload {
  int round = 0;  ///< pattern round index m (the round just completed)
  std::vector<Action> actions;
  std::vector<AgentSet> sent;
  std::vector<AgentSet> delivered;
};

/// One staged (in-flight) round: what is about to happen, durably, before
/// any message moves.
struct IntentPayload {
  int round = 0;  ///< pattern round index m (the round being staged)
  std::vector<Action> actions;
  /// dropped_send[i] = receivers the pattern drops from sender i this round.
  std::vector<AgentSet> dropped_send;
  /// dropped_receive[i] = senders receiver i drops this round.
  std::vector<AgentSet> dropped_receive;
};

void encode_delta(Writer& w, const DeltaPayload& delta);
[[nodiscard]] DeltaPayload decode_delta(Reader& r);
void encode_intent(Writer& w, const IntentPayload& intent);
[[nodiscard]] IntentPayload decode_intent(Reader& r);

/// Extracts a DeltaPayload for round `m` straight from a run record.
[[nodiscard]] DeltaPayload delta_of_record(const RunRecord& record, int m);

/// The durable log of one instance. Every log_* call appends and fsyncs:
/// when it returns, the record survives a power cut.
class RunLog {
 public:
  [[nodiscard]] static RunLog create(Vfs& vfs, const std::string& dir,
                                     const JournalOptions& opt = {});
  [[nodiscard]] static RunLog open(Vfs& vfs, const std::string& dir,
                                   const JournalOptions& opt = {});

  void log_checkpoint(const Bytes& checkpoint_bytes);
  void log_delta(const DeltaPayload& delta);
  void log_intent(const IntentPayload& intent);

  /// Lets the journal drop segments that only hold records older than the
  /// newest `keep` full checkpoints. `keep` >= 1.
  void gc_keep_checkpoints(int keep);

  [[nodiscard]] const Journal& journal() const { return journal_; }
  [[nodiscard]] Journal& journal() { return journal_; }

 private:
  explicit RunLog(Journal&& journal);

  Journal journal_;
  std::vector<std::uint64_t> checkpoint_seqs_;
};

/// The outcome of recover_run: a live stepper positioned exactly where the
/// crashed instance was, plus what the recovery had to do to get there.
template <ExchangeProtocol X, class P>
struct RecoveredRun {
  Stepper<X, P> stepper;
  int replayed_rounds = 0;    ///< rounds re-executed past the checkpoint
  bool finished_intent = false;  ///< a trailing INTENT round was completed
};

/// Rebuilds an instance from the records a reopened RunLog journal
/// recovered: restore the newest FULL_CHECKPOINT, roll the adversary
/// strategy back with its blob and reinstall the hook (when `strategy` is
/// given), then re-run every subsequent DELTA round — verifying each
/// replayed round byte-for-byte against its logged planes — and finally
/// complete a trailing INTENT round, verifying the realized actions and
/// drop rows against the write-ahead record. Any divergence or structural
/// break throws DecodeError; a diverging instance is never returned.
///
/// IMPORTANT: when `finished_intent` is set, the caller owns re-logging the
/// completed round as a DELTA (delta_of_record on the recovered record)
/// before appending anything else — otherwise a second crash would find two
/// intents with no delta between them and refuse the log as malformed.
template <ExchangeProtocol X, class P>
[[nodiscard]] RecoveredRun<X, P> recover_run(
    const X& x, const P& act, const std::vector<JournalRecord>& records,
    AdversaryStrategy* strategy = nullptr, TraceSink<X>* sink = nullptr) {
  using Kind = DecodeError::Kind;

  std::size_t root = records.size();
  for (std::size_t k = records.size(); k-- > 0;)
    if (records[k].kind == kRunLogCheckpoint) {
      root = k;
      break;
    }
  if (root == records.size())
    throw DecodeError(Kind::missing_frame, "run log has no full checkpoint");

  std::string blob;
  Stepper<X, P> stepper =
      restore_stepper<X, P>(x, act, records[root].payload, sink, &blob);
  if (strategy) {
    strategy->restore_state(blob);
    stepper.set_adversary_hook(make_strategy_hook(*strategy, stepper.t()));
  }

  RecoveredRun<X, P> out{std::move(stepper), 0, false};
  std::optional<IntentPayload> pending;

  const auto check_round_planes = [&](const DeltaPayload& delta) {
    const RunRecord& rec = out.stepper.record();
    const std::size_t um = static_cast<std::size_t>(delta.round);
    if (rec.actions[um] != delta.actions || rec.sent[um] != delta.sent ||
        rec.delivered[um] != delta.delivered)
      throw DecodeError(Kind::malformed,
                        "replay diverges from the logged delta at round " +
                            std::to_string(delta.round + 1));
  };

  for (std::size_t k = root + 1; k < records.size(); ++k) {
    const JournalRecord& rec = records[k];
    Reader r(rec.payload);
    switch (rec.kind) {
      case kRunLogCheckpoint:
        throw DecodeError(Kind::malformed,
                          "checkpoint after the chosen recovery root");
      case kRunLogDelta: {
        const DeltaPayload delta = decode_delta(r);
        if (delta.round != out.stepper.time())
          throw DecodeError(Kind::malformed,
                            "run log delta out of order at round " +
                                std::to_string(delta.round + 1));
        if (pending) {
          // Cross-check the write-ahead intent against what the round
          // actually did, plane by plane: delivered must equal sent minus
          // the intent's send-side and receive-side drop rows.
          if (pending->round != delta.round ||
              pending->actions != delta.actions)
            throw DecodeError(Kind::malformed,
                              "intent and delta disagree at round " +
                                  std::to_string(delta.round + 1));
          const int n = out.stepper.n();
          for (AgentId i = 0; i < n; ++i) {
            const std::size_t ui = static_cast<std::size_t>(i);
            AgentSet expect = delta.sent[ui].minus(pending->dropped_send[ui]);
            for (AgentId j = 0; j < n; ++j)
              if (pending->dropped_receive[static_cast<std::size_t>(j)]
                      .contains(i))
                expect.erase(j);
            if (expect != delta.delivered[ui])
              throw DecodeError(
                  Kind::malformed,
                  "intent drop rows do not explain the delta's delivered "
                  "plane at round " +
                      std::to_string(delta.round + 1));
          }
          pending.reset();
        }
        if (!out.stepper.step())
          throw DecodeError(Kind::malformed,
                            "run log delta beyond the instance horizon");
        check_round_planes(delta);
        out.replayed_rounds += 1;
        break;
      }
      case kRunLogIntent: {
        if (pending)
          throw DecodeError(Kind::malformed,
                            "two intents with no delta between them");
        IntentPayload intent = decode_intent(r);
        if (intent.round != out.stepper.time())
          throw DecodeError(Kind::malformed,
                            "run log intent out of order at round " +
                                std::to_string(intent.round + 1));
        pending = std::move(intent);
        break;
      }
      default:
        throw DecodeError(Kind::malformed, "unknown run log record kind " +
                                               std::to_string(rec.kind));
    }
    if (rec.kind != kRunLogCheckpoint && !r.exhausted())
      throw DecodeError(Kind::trailing,
                        "run log payload has unconsumed bytes");
  }

  if (pending) {
    // The crash hit mid-round: the WAL intent is the round's durable
    // representation. Determinism re-derives the round; the intent's
    // actions and drop rows must match what the re-run realized.
    const int m = pending->round;
    if (!out.stepper.step())
      throw DecodeError(Kind::malformed,
                        "run log intent beyond the instance horizon");
    const RunRecord& rec = out.stepper.record();
    if (rec.actions[static_cast<std::size_t>(m)] != pending->actions)
      throw DecodeError(Kind::malformed,
                        "replayed actions diverge from the intent at round " +
                            std::to_string(m + 1));
    const FailurePattern& alpha = out.stepper.pattern();
    for (AgentId i = 0; i < out.stepper.n(); ++i) {
      const std::size_t ui = static_cast<std::size_t>(i);
      if (alpha.dropped(m, i) != pending->dropped_send[ui] ||
          alpha.dropped_receive(m, i) != pending->dropped_receive[ui])
        throw DecodeError(
            Kind::malformed,
            "replayed drop rows diverge from the intent at round " +
                std::to_string(m + 1));
    }
    out.replayed_rounds += 1;
    out.finished_intent = true;
  }

  return out;
}

}  // namespace eba
