// Filesystem seam for the durable storage engine (src/store/).
//
// The journal (store/journal.hpp) never touches the OS directly: every
// byte goes through this `Vfs`/`File` abstraction, which models exactly
// the primitives a crash-safe log needs — append, fsync, atomic rename,
// directory fsync — and nothing else. Two implementations:
//
//  * `MemVfs` — the fault-injecting shim. It tracks, per file, which
//    prefix was durable at the last fsync and, per namespace, which
//    creations/renames/removals a directory fsync has committed. A
//    `power_cut()` rolls the world back to the durable view: unsynced
//    bytes vanish, unsynced creations disappear, unsynced renames
//    revert. A `TearSpec` optionally lets the cut keep part of the
//    unsynced tail (a partially persisted page) and corrupt its final
//    byte — the torn-write case recovery must detect. `fail_appends_after`
//    makes the Nth append fail with a typed `IoError` after a partial
//    write, the way a full disk or yanked cable fails. Every recovery
//    path in tests/test_store.cpp is driven by these injected faults,
//    not by hand-mutated byte vectors.
//  * `DiskVfs` — real POSIX files with real fsync/rename/directory-fsync,
//    so the same journal code runs against an actual filesystem (one
//    tier-1 test and a bench row exercise it; power cuts cannot be
//    injected there, so `power_cut` is a no-op).
//
// The durability contract both implementations honor: bytes appended to a
// file are durable only after `File::sync()`; a namespace change (create,
// rename, remove) is durable only after `Vfs::sync_dir()` on its
// directory. `rename` is atomic in the live view either way — what the
// power cut decides is whether it happened at all.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace eba {

/// Typed I/O failure: injected write faults and real OS errors. Distinct
/// from DecodeError (corrupt bytes) and EBA_REQUIRE (caller bugs).
class IoError : public std::runtime_error {
 public:
  explicit IoError(const std::string& what)
      : std::runtime_error("io error: " + what) {}
};

/// An append-only file handle. Writes land in the live view immediately;
/// only `sync()` makes them durable against a power cut.
class File {
 public:
  virtual ~File() = default;
  virtual void append(const std::uint8_t* data, std::size_t len) = 0;
  void append(const std::vector<std::uint8_t>& b) {
    append(b.data(), b.size());
  }
  /// fsync: everything appended so far survives a power cut.
  virtual void sync() = 0;
  [[nodiscard]] virtual std::uint64_t size() const = 0;
};

/// A torn write: how much of the cut file's unsynced tail survived the
/// power cut, and whether its final surviving byte was corrupted mid-write.
struct TearSpec {
  std::string path;       ///< the file whose tail is torn
  std::size_t keep = 0;   ///< unsynced bytes that made it to the platter
  bool corrupt = false;   ///< flip the last kept byte (half-written sector)
};

class Vfs {
 public:
  virtual ~Vfs() = default;

  /// Opens `path` for appending, creating it empty if absent.
  [[nodiscard]] virtual std::unique_ptr<File> open_append(
      const std::string& path) = 0;
  /// Creates (or truncates) `path` and opens it for appending.
  [[nodiscard]] virtual std::unique_ptr<File> create(
      const std::string& path) = 0;
  /// Whole-file read. Throws IoError when the file does not exist.
  [[nodiscard]] virtual std::vector<std::uint8_t> read(
      const std::string& path) const = 0;
  [[nodiscard]] virtual bool exists(const std::string& path) const = 0;
  /// Atomic replace: `to` is either its old content or `from`'s, never a
  /// mixture. Durable only after sync_dir().
  virtual void rename(const std::string& from, const std::string& to) = 0;
  virtual void remove(const std::string& path) = 0;
  /// Truncates `path` to `size` bytes (torn-tail amputation on recovery).
  virtual void truncate(const std::string& path, std::uint64_t size) = 0;
  /// Every path under `prefix`, sorted. (Flat namespace: a "directory" is
  /// a path prefix, which is all the journal needs.)
  [[nodiscard]] virtual std::vector<std::string> list(
      const std::string& prefix) const = 0;
  /// fsync of the directory: namespace changes under `prefix` become
  /// durable.
  virtual void sync_dir(const std::string& prefix) = 0;
  /// Creates the directory chain for `dir` (no-op where meaningless).
  virtual void make_dirs(const std::string& dir) = 0;

  /// Simulated power cut over every path under `prefix` (see TearSpec).
  /// Only MemVfs implements it; on a real filesystem this is a no-op.
  virtual void power_cut(const std::string& prefix,
                         const std::optional<TearSpec>& tear = {}) {
    (void)prefix;
    (void)tear;
  }
};

/// In-memory VFS with power-cut and write-fault injection. Thread-safe:
/// the workload engine drives many instances' journals (disjoint path
/// prefixes) through one shared MemVfs from its worker pool.
class MemVfs final : public Vfs {
 public:
  [[nodiscard]] std::unique_ptr<File> open_append(
      const std::string& path) override;
  [[nodiscard]] std::unique_ptr<File> create(const std::string& path) override;
  [[nodiscard]] std::vector<std::uint8_t> read(
      const std::string& path) const override;
  [[nodiscard]] bool exists(const std::string& path) const override;
  void rename(const std::string& from, const std::string& to) override;
  void remove(const std::string& path) override;
  void truncate(const std::string& path, std::uint64_t size) override;
  [[nodiscard]] std::vector<std::string> list(
      const std::string& prefix) const override;
  void sync_dir(const std::string& prefix) override;
  void make_dirs(const std::string& /*dir*/) override {}

  void power_cut(const std::string& prefix,
                 const std::optional<TearSpec>& tear = {}) override;

  /// The next `n` appends succeed; the one after writes half its bytes and
  /// throws IoError. Pass a negative count to disarm.
  void fail_appends_after(long n) {
    const std::lock_guard<std::mutex> lock(mu_);
    fail_after_ = n;
  }

  /// Total successful File::sync() calls (bench/test accounting).
  [[nodiscard]] std::size_t sync_count() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return syncs_;
  }

 private:
  struct Inode {
    std::vector<std::uint8_t> data;
    std::size_t synced = 0;  ///< durable prefix length as of the last sync
  };
  friend class MemFile;

  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<Inode>> live_;
  /// The namespace as of each path's last covering sync_dir(): which name
  /// durably maps to which inode. Content durability lives in the inode.
  std::map<std::string, std::shared_ptr<Inode>> durable_;
  long fail_after_ = -1;
  std::size_t syncs_ = 0;
};

/// Real POSIX files: open/write/fsync/rename plus directory fsync. Paths
/// are ordinary OS paths; callers own the temp-dir hygiene.
class DiskVfs final : public Vfs {
 public:
  [[nodiscard]] std::unique_ptr<File> open_append(
      const std::string& path) override;
  [[nodiscard]] std::unique_ptr<File> create(const std::string& path) override;
  [[nodiscard]] std::vector<std::uint8_t> read(
      const std::string& path) const override;
  [[nodiscard]] bool exists(const std::string& path) const override;
  void rename(const std::string& from, const std::string& to) override;
  void remove(const std::string& path) override;
  void truncate(const std::string& path, std::uint64_t size) override;
  [[nodiscard]] std::vector<std::string> list(
      const std::string& prefix) const override;
  void sync_dir(const std::string& prefix) override;
  void make_dirs(const std::string& dir) override;
};

}  // namespace eba
