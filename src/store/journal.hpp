// Append-only, segment-based journal with power-cut-safe recovery.
//
// The journal is the durable substrate for run logs (store/run_log.hpp) and
// file-backed traces. Records are CRC-framed, keyed-digest-authenticated,
// and zero-padded to page multiples so every record starts on a page
// boundary; a torn final page can never smear into an earlier record.
//
// On-disk layout (all integers little-endian):
//
//   <dir>/MANIFEST      magic "EBMF", u32 version = 1, then one CRC frame
//                       (kind 1): u64 key_check, u32 page_size,
//                       u32 segment count, count x (u64 segment id,
//                       u64 first seq of the segment). The per-segment
//                       first seqs let a GC'd journal reopen (sequences
//                       no longer start at 1) and let open() detect a
//                       sealed segment that lost committed records.
//   <dir>/seg-NNNNNN    consecutive records, each:
//                         magic "EBJR" (4 bytes)
//                         u64 seq        strictly increasing from 1,
//                                        continuing across segments
//                         u8 kind, u32 payload length, payload
//                         u64 auth       KeyedDigest64(key) over
//                                        seq/kind/len/payload
//                         u32 crc        CRC32 over all prior record bytes
//                       then zero padding to the next page_size multiple.
//
// Fsync discipline: `append` only buffers into the OS; `sync` makes the
// appended records durable. A segment roll syncs the full old segment
// first, then creates + syncs the new segment, then commits the new
// manifest by write-temp -> atomic rename -> directory fsync. The manifest
// therefore never names a segment whose preceding records are not durable.
//
// Open-time recovery scans every manifest segment in order. In the final
// (active) segment, the first invalid record — bad magic, short header,
// CRC mismatch, sequence break — is treated as a torn tail: the segment is
// repaired back to the page-aligned end of the last valid record and the
// journal continues from there. In a sealed (non-final) segment the same
// condition is real corruption, not a power cut, and raises a typed
// DecodeError instead of silently dropping committed records. A record
// whose CRC verifies but whose keyed digest does not was written under a
// different key and always raises DecodeError::Kind::key_mismatch.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/serialize.hpp"
#include "store/vfs.hpp"

namespace eba {

struct JournalOptions {
  std::uint64_t key = 0;            ///< keyed-digest key; 0 = unkeyed
  std::uint32_t page_size = 4096;   ///< record alignment quantum
  std::uint64_t segment_bytes = 1u << 20;  ///< roll threshold per segment
};

/// One recovered record: its journal-wide sequence number, caller-chosen
/// kind byte, and payload bytes exactly as appended.
struct JournalRecord {
  std::uint64_t seq = 0;
  std::uint8_t kind = 0;
  Bytes payload;
};

class Journal {
 public:
  /// Starts a fresh journal in `dir` (created if missing): empty first
  /// segment plus a durable manifest. Any older journal state in `dir` is
  /// superseded by the new manifest.
  [[nodiscard]] static Journal create(Vfs& vfs, const std::string& dir,
                                      const JournalOptions& opt = {});

  /// Opens an existing journal, running torn-tail recovery (see header
  /// comment). Throws DecodeError::Kind::missing_frame when no manifest
  /// survived, key_mismatch when `opt.key` does not match the manifest's
  /// key fingerprint or any record's auth word.
  [[nodiscard]] static Journal open(Vfs& vfs, const std::string& dir,
                                    const JournalOptions& opt = {});

  Journal(Journal&&) = default;
  Journal& operator=(Journal&&) = default;
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Appends one record; returns its sequence number. Durable only after
  /// the next sync(). Rolls to a new segment when the active one is full.
  std::uint64_t append(std::uint8_t kind, const Bytes& payload);

  /// fsync of the active segment: every appended record becomes durable.
  void sync();

  /// The records recovered when this journal was opened (empty for a
  /// freshly created journal). Records appended afterwards are not echoed
  /// here — reopen to read them back.
  [[nodiscard]] const std::vector<JournalRecord>& records() const {
    return records_;
  }

  /// Sequence number of the newest record (0 when the journal is empty).
  [[nodiscard]] std::uint64_t last_seq() const { return last_seq_; }

  /// Drops every sealed segment whose records all have seq < min_seq
  /// (manifest rewrite first, then file removal, so a crash in between
  /// leaves only a stray file that the next open cleans up). The active
  /// segment is never dropped.
  void gc(std::uint64_t min_seq);

  [[nodiscard]] std::size_t segment_count() const { return seg_ids_.size(); }
  [[nodiscard]] const std::string& dir() const { return dir_; }
  [[nodiscard]] const JournalOptions& options() const { return opt_; }

 private:
  Journal(Vfs& vfs, std::string dir, JournalOptions opt)
      : vfs_(&vfs), dir_(std::move(dir)), opt_(opt) {}

  void write_manifest();
  void roll_segment();
  [[nodiscard]] std::string seg_path(std::uint64_t id) const;

  Vfs* vfs_;
  std::string dir_;
  JournalOptions opt_;
  std::vector<std::uint64_t> seg_ids_;
  /// seg_first_seq_[i] = seq the i-th segment's first record has (or would
  /// have, for an empty segment); parallel to seg_ids_. Segment i's records
  /// are exactly [seg_first_seq_[i], seg_first_seq_[i+1]).
  std::vector<std::uint64_t> seg_first_seq_;
  std::vector<JournalRecord> records_;
  std::unique_ptr<File> active_;
  std::uint64_t active_size_ = 0;
  std::uint64_t last_seq_ = 0;
};

}  // namespace eba
