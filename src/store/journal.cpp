#include "store/journal.hpp"

#include <algorithm>
#include <cstdio>
#include <set>
#include <utility>

#include "audit/digest.hpp"

namespace eba {

namespace {

constexpr std::uint8_t kRecordMagic[4] = {'E', 'B', 'J', 'R'};
constexpr std::uint8_t kManifestMagic[4] = {'E', 'B', 'M', 'F'};
constexpr std::uint32_t kManifestVersion = 1;
constexpr std::uint8_t kManifestFrame = 1;
constexpr std::size_t kHeaderBytes = 4 + 8 + 1 + 4;  // magic, seq, kind, len
constexpr std::size_t kTrailerBytes = 8 + 4;         // auth, crc
constexpr std::uint32_t kMaxPayload = 1u << 28;

void put_u32(Bytes& b, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8)
    b.push_back(static_cast<std::uint8_t>((v >> shift) & 0xffu));
}

void put_u64(Bytes& b, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8)
    b.push_back(static_cast<std::uint8_t>((v >> shift) & 0xffu));
}

[[nodiscard]] std::uint32_t get_u32(const Bytes& b, std::size_t pos) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(b[pos + i]) << (8 * i);
  return v;
}

[[nodiscard]] std::uint64_t get_u64(const Bytes& b, std::size_t pos) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(b[pos + i]) << (8 * i);
  return v;
}

[[nodiscard]] std::uint64_t auth_of(std::uint64_t key, std::uint64_t seq,
                                    std::uint8_t kind, const Bytes& payload) {
  KeyedDigest64 d(key);
  d.u64(seq);
  d.u8(kind);
  d.u32(static_cast<std::uint32_t>(payload.size()));
  for (const std::uint8_t byte : payload) d.u8(byte);
  return d.value();
}

[[nodiscard]] std::uint64_t round_up(std::uint64_t v, std::uint64_t quantum) {
  return (v + quantum - 1) / quantum * quantum;
}

/// Scans one segment's bytes, appending valid records to `out` and advancing
/// `next_seq`. Returns the page-aligned end of the last valid record (which
/// may exceed data.size() when only the padding was torn). In a sealed
/// segment any invalid record is corruption and throws; in the active
/// segment it is a torn tail and the scan just stops there.
std::uint64_t scan_segment(const Bytes& data, const JournalOptions& opt,
                           bool sealed, std::uint64_t& next_seq,
                           std::vector<JournalRecord>& out) {
  std::uint64_t aligned_end = 0;
  std::size_t off = 0;
  const auto torn = [sealed](DecodeError::Kind kind, const char* what) {
    if (sealed)
      throw DecodeError(kind, std::string("sealed segment: ") + what);
  };
  while (off < data.size()) {
    const std::size_t rem = data.size() - off;
    if (rem < kHeaderBytes + kTrailerBytes) {
      torn(DecodeError::Kind::truncated, "record cut short");
      break;
    }
    if (!std::equal(kRecordMagic, kRecordMagic + 4, data.begin() + off)) {
      torn(DecodeError::Kind::bad_magic, "record magic damaged");
      break;
    }
    const std::uint64_t seq = get_u64(data, off + 4);
    const std::uint8_t kind = data[off + 12];
    const std::uint32_t len = get_u32(data, off + 13);
    if (len > kMaxPayload || rem < kHeaderBytes + len + kTrailerBytes) {
      torn(DecodeError::Kind::truncated, "record body cut short");
      break;
    }
    const std::size_t crc_at = off + kHeaderBytes + len + 8;
    if (crc32(data.data() + off, kHeaderBytes + len + 8) !=
        get_u32(data, crc_at)) {
      torn(DecodeError::Kind::crc_mismatch, "record checksum damaged");
      break;
    }
    if (seq != next_seq) {
      torn(DecodeError::Kind::malformed, "sequence break");
      break;
    }
    Bytes payload(data.begin() + off + kHeaderBytes,
                  data.begin() + off + kHeaderBytes + len);
    // CRC-valid but auth-bad is not a torn write — the record was written
    // under a different key. Hard error in every segment.
    if (auth_of(opt.key, seq, kind, payload) !=
        get_u64(data, off + kHeaderBytes + len))
      throw DecodeError(DecodeError::Kind::key_mismatch,
                        "journal record written under a different key");
    out.push_back(JournalRecord{seq, kind, std::move(payload)});
    next_seq += 1;
    const std::uint64_t padded =
        round_up(kHeaderBytes + len + kTrailerBytes, opt.page_size);
    aligned_end = off + padded;
    off += static_cast<std::size_t>(padded);
  }
  return aligned_end;
}

}  // namespace

std::string Journal::seg_path(std::uint64_t id) const {
  char digits[24];
  std::snprintf(digits, sizeof digits, "%06llu",
                static_cast<unsigned long long>(id));
  std::string path = dir_;
  path += "/seg-";
  path += digits;
  return path;
}

void Journal::write_manifest() {
  Bytes payload;
  put_u64(payload, KeyedDigest64::key_check_word(opt_.key));
  put_u32(payload, opt_.page_size);
  put_u32(payload, static_cast<std::uint32_t>(seg_ids_.size()));
  for (std::size_t i = 0; i < seg_ids_.size(); ++i) {
    put_u64(payload, seg_ids_[i]);
    put_u64(payload, seg_first_seq_[i]);
  }

  Bytes out(kManifestMagic, kManifestMagic + 4);
  put_u32(out, kManifestVersion);
  write_frame(out, kManifestFrame, payload);

  const std::string tmp = dir_ + "/MANIFEST.tmp";
  auto file = vfs_->create(tmp);
  file->append(out);
  file->sync();
  vfs_->rename(tmp, dir_ + "/MANIFEST");
  vfs_->sync_dir(dir_ + "/");
}

Journal Journal::create(Vfs& vfs, const std::string& dir,
                        const JournalOptions& opt) {
  Journal j(vfs, dir, opt);
  vfs.make_dirs(dir);
  j.seg_ids_ = {1};
  j.seg_first_seq_ = {1};
  j.active_ = vfs.create(j.seg_path(1));
  j.active_->sync();
  j.write_manifest();
  return j;
}

Journal Journal::open(Vfs& vfs, const std::string& dir,
                      const JournalOptions& opt) {
  const std::string manifest_path = dir + "/MANIFEST";
  if (!vfs.exists(manifest_path))
    throw DecodeError(DecodeError::Kind::missing_frame,
                      "journal manifest missing in " + dir);
  const Bytes mb = vfs.read(manifest_path);
  if (mb.size() < 8 ||
      !std::equal(kManifestMagic, kManifestMagic + 4, mb.begin()))
    throw DecodeError(DecodeError::Kind::bad_magic,
                      "manifest does not start with EBMF");
  if (get_u32(mb, 4) != kManifestVersion)
    throw DecodeError(DecodeError::Kind::bad_version,
                      "manifest version unknown to this build");
  std::size_t pos = 8;
  const Frame frame = read_frame(mb, pos);
  if (frame.kind != kManifestFrame)
    throw DecodeError(DecodeError::Kind::missing_frame,
                      "manifest frame has the wrong kind");
  if (pos != mb.size())
    throw DecodeError(DecodeError::Kind::trailing,
                      "manifest has trailing bytes");

  Journal j(vfs, dir, opt);
  {
    Reader r(frame.payload);
    const std::uint64_t key_check = r.u64();
    if (key_check != KeyedDigest64::key_check_word(opt.key))
      throw DecodeError(DecodeError::Kind::key_mismatch,
                        "journal was written under a different key");
    j.opt_.page_size = r.u32();
    if (j.opt_.page_size == 0)
      throw DecodeError(DecodeError::Kind::malformed,
                        "manifest page size is zero");
    const std::uint32_t count = r.u32();
    if (count == 0 || count > (1u << 20))
      throw DecodeError(DecodeError::Kind::malformed,
                        "manifest segment count out of range");
    std::uint64_t prev = 0;
    std::uint64_t prev_seq = 0;
    for (std::uint32_t i = 0; i < count; ++i) {
      const std::uint64_t id = r.u64();
      const std::uint64_t first_seq = r.u64();
      if (id <= prev)
        throw DecodeError(DecodeError::Kind::malformed,
                          "manifest segment ids not increasing");
      // A rolled-but-empty segment repeats its predecessor's first seq;
      // anything decreasing (or a zero) is a corrupt manifest.
      if (first_seq == 0 || first_seq < prev_seq)
        throw DecodeError(DecodeError::Kind::malformed,
                          "manifest segment seqs not monotone");
      j.seg_ids_.push_back(id);
      j.seg_first_seq_.push_back(first_seq);
      prev = id;
      prev_seq = first_seq;
    }
    if (!r.exhausted())
      throw DecodeError(DecodeError::Kind::trailing,
                        "manifest frame has unconsumed bytes");
  }

  // Stray files — a segment created but never committed to the manifest, a
  // manifest temp the rename never covered — are leftovers of interrupted
  // operations. Drop them before they shadow a future segment id.
  {
    const std::set<std::string> known = [&] {
      std::set<std::string> s;
      for (const std::uint64_t id : j.seg_ids_) s.insert(j.seg_path(id));
      return s;
    }();
    bool removed = false;
    for (const std::string& path : vfs.list(dir + "/seg-"))
      if (known.count(path) == 0) {
        vfs.remove(path);
        removed = true;
      }
    if (vfs.exists(dir + "/MANIFEST.tmp")) {
      vfs.remove(dir + "/MANIFEST.tmp");
      removed = true;
    }
    if (removed) vfs.sync_dir(dir + "/");
  }

  std::uint64_t next_seq = j.seg_first_seq_.front();
  for (std::size_t i = 0; i < j.seg_ids_.size(); ++i) {
    const std::string path = j.seg_path(j.seg_ids_[i]);
    if (!vfs.exists(path))
      throw DecodeError(DecodeError::Kind::missing_frame,
                        "manifest names a missing segment: " + path);
    const Bytes data = vfs.read(path);
    const bool sealed = i + 1 != j.seg_ids_.size();
    if (next_seq != j.seg_first_seq_[i])
      throw DecodeError(DecodeError::Kind::malformed,
                        "segment does not start at its manifest seq");
    const std::uint64_t aligned_end =
        scan_segment(data, j.opt_, sealed, next_seq, j.records_);
    // A sealed segment must account for every seq up to its successor's
    // start: committed records cannot silently vanish from the middle.
    if (sealed && next_seq != j.seg_first_seq_[i + 1])
      throw DecodeError(DecodeError::Kind::malformed,
                        "sealed segment is missing committed records");
    if (!sealed) {
      // Repair the active segment back to the page-aligned end of its last
      // valid record: amputate a torn tail, or re-grow padding the cut ate.
      bool repaired = false;
      if (aligned_end < data.size()) {
        vfs.truncate(path, aligned_end);
        repaired = true;
      }
      j.active_ = vfs.open_append(path);
      if (aligned_end > data.size()) {
        const Bytes zeros(static_cast<std::size_t>(aligned_end - data.size()),
                          0);
        j.active_->append(zeros);
        repaired = true;
      }
      if (repaired) j.active_->sync();
      j.active_size_ = aligned_end;
    }
  }
  j.last_seq_ = next_seq - 1;
  return j;
}

std::uint64_t Journal::append(std::uint8_t kind, const Bytes& payload) {
  if (payload.size() > kMaxPayload)
    throw IoError("journal payload too large");
  if (active_size_ >= opt_.segment_bytes) roll_segment();
  const std::uint64_t seq = last_seq_ + 1;
  Bytes rec(kRecordMagic, kRecordMagic + 4);
  put_u64(rec, seq);
  rec.push_back(kind);
  put_u32(rec, static_cast<std::uint32_t>(payload.size()));
  rec.insert(rec.end(), payload.begin(), payload.end());
  put_u64(rec, auth_of(opt_.key, seq, kind, payload));
  put_u32(rec, crc32(rec));
  rec.resize(static_cast<std::size_t>(round_up(rec.size(), opt_.page_size)),
             0);
  active_->append(rec);
  active_size_ += rec.size();
  last_seq_ = seq;
  return seq;
}

void Journal::sync() { active_->sync(); }

void Journal::roll_segment() {
  // Records already in the old segment must be durable before the manifest
  // names its successor — the manifest is the recovery root.
  active_->sync();
  const std::uint64_t id = seg_ids_.back() + 1;
  auto fresh = vfs_->create(seg_path(id));
  fresh->sync();
  seg_ids_.push_back(id);
  seg_first_seq_.push_back(last_seq_ + 1);
  write_manifest();
  active_ = std::move(fresh);
  active_size_ = 0;
}

void Journal::gc(std::uint64_t min_seq) {
  std::size_t drop = 0;
  while (drop + 1 < seg_ids_.size() && seg_first_seq_[drop + 1] <= min_seq)
    drop += 1;
  if (drop == 0) return;
  std::vector<std::string> doomed;
  for (std::size_t i = 0; i < drop; ++i)
    doomed.push_back(seg_path(seg_ids_[i]));
  seg_ids_.erase(seg_ids_.begin(), seg_ids_.begin() + drop);
  seg_first_seq_.erase(seg_first_seq_.begin(), seg_first_seq_.begin() + drop);
  write_manifest();
  for (const std::string& path : doomed) vfs_->remove(path);
  vfs_->sync_dir(dir_ + "/");
}

}  // namespace eba
