#include "store/vfs.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <utility>

namespace eba {

// -- MemVfs ------------------------------------------------------------------

/// Handle over a MemVfs inode. The handle holds the inode, not the name:
/// like a POSIX fd, it survives renames and keeps writing to the same
/// storage. Fault injection lives in the owning MemVfs so one counter
/// spans all open files.
class MemFile final : public File {
 public:
  MemFile(MemVfs* vfs, std::shared_ptr<MemVfs::Inode> inode)
      : vfs_(vfs), inode_(std::move(inode)) {}

  void append(const std::uint8_t* data, std::size_t len) override {
    const std::lock_guard<std::mutex> lock(vfs_->mu_);
    if (vfs_->fail_after_ >= 0) {
      if (vfs_->fail_after_ == 0) {
        // A failed write is not atomic: half the buffer lands before the
        // error surfaces, exactly the garbage recovery must cope with.
        inode_->data.insert(inode_->data.end(), data, data + len / 2);
        vfs_->fail_after_ = -1;
        throw IoError("injected write failure");
      }
      vfs_->fail_after_ -= 1;
    }
    inode_->data.insert(inode_->data.end(), data, data + len);
  }

  void sync() override {
    const std::lock_guard<std::mutex> lock(vfs_->mu_);
    inode_->synced = inode_->data.size();
    vfs_->syncs_ += 1;
  }

  [[nodiscard]] std::uint64_t size() const override {
    const std::lock_guard<std::mutex> lock(vfs_->mu_);
    return inode_->data.size();
  }

 private:
  MemVfs* vfs_;
  std::shared_ptr<MemVfs::Inode> inode_;
};

std::unique_ptr<File> MemVfs::open_append(const std::string& path) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = live_.find(path);
  if (it == live_.end())
    it = live_.emplace(path, std::make_shared<Inode>()).first;
  return std::make_unique<MemFile>(this, it->second);
}

std::unique_ptr<File> MemVfs::create(const std::string& path) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto inode = std::make_shared<Inode>();
  live_[path] = inode;
  return std::make_unique<MemFile>(this, std::move(inode));
}

std::vector<std::uint8_t> MemVfs::read(const std::string& path) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = live_.find(path);
  if (it == live_.end()) throw IoError("no such file: " + path);
  return it->second->data;
}

bool MemVfs::exists(const std::string& path) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return live_.count(path) != 0;
}

void MemVfs::rename(const std::string& from, const std::string& to) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = live_.find(from);
  if (it == live_.end()) throw IoError("rename source missing: " + from);
  live_[to] = it->second;
  live_.erase(from);
}

void MemVfs::remove(const std::string& path) {
  const std::lock_guard<std::mutex> lock(mu_);
  live_.erase(path);
}

void MemVfs::truncate(const std::string& path, std::uint64_t size) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = live_.find(path);
  if (it == live_.end()) throw IoError("truncate target missing: " + path);
  Inode& inode = *it->second;
  if (size > inode.data.size())
    throw IoError("truncate cannot extend: " + path);
  inode.data.resize(static_cast<std::size_t>(size));
  inode.synced = std::min(inode.synced, inode.data.size());
}

std::vector<std::string> MemVfs::list(const std::string& prefix) const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [path, inode] : live_)
    if (path.compare(0, prefix.size(), prefix) == 0) out.push_back(path);
  return out;
}

void MemVfs::sync_dir(const std::string& prefix) {
  const std::lock_guard<std::mutex> lock(mu_);
  // The namespace under `prefix` becomes durable: durable names are
  // replaced by the live names. File CONTENT durability is per-inode and
  // unchanged — a name committed by the dir fsync still only keeps the
  // bytes its own fsync covered.
  for (auto it = durable_.begin(); it != durable_.end();) {
    if (it->first.compare(0, prefix.size(), prefix) == 0)
      it = durable_.erase(it);
    else
      ++it;
  }
  for (const auto& [path, inode] : live_)
    if (path.compare(0, prefix.size(), prefix) == 0) durable_[path] = inode;
}

void MemVfs::power_cut(const std::string& prefix,
                       const std::optional<TearSpec>& tear) {
  const std::lock_guard<std::mutex> lock(mu_);
  // 1. The live namespace under `prefix` reverts to the durable one:
  //    unsynced creations vanish, unsynced renames/removes roll back.
  for (auto it = live_.begin(); it != live_.end();) {
    if (it->first.compare(0, prefix.size(), prefix) == 0)
      it = live_.erase(it);
    else
      ++it;
  }
  for (const auto& [path, inode] : durable_)
    if (path.compare(0, prefix.size(), prefix) == 0) live_[path] = inode;

  // 2. Every surviving file's content reverts to its synced prefix —
  //    except the torn file, which keeps `keep` extra bytes of its
  //    unsynced tail (and optionally a corrupted final byte).
  for (const auto& [path, inode] : live_) {
    if (path.compare(0, prefix.size(), prefix) != 0) continue;
    std::size_t survive = inode->synced;
    const bool torn = tear && tear->path == path;
    if (torn) survive = std::min(inode->synced + tear->keep,
                                 inode->data.size());
    inode->data.resize(survive);
    inode->synced = std::min(inode->synced, survive);
    if (torn && tear->corrupt && survive > inode->synced)
      inode->data[survive - 1] ^= 0x5A;
  }
}

// -- DiskVfs -----------------------------------------------------------------

namespace {

class DiskFile final : public File {
 public:
  explicit DiskFile(int fd) : fd_(fd) {}
  ~DiskFile() override {
    if (fd_ >= 0) ::close(fd_);
  }
  DiskFile(const DiskFile&) = delete;
  DiskFile& operator=(const DiskFile&) = delete;

  void append(const std::uint8_t* data, std::size_t len) override {
    while (len > 0) {
      const ssize_t wrote = ::write(fd_, data, len);
      if (wrote < 0) {
        if (errno == EINTR) continue;
        throw IoError(std::string("write: ") + std::strerror(errno));
      }
      data += wrote;
      len -= static_cast<std::size_t>(wrote);
    }
  }

  void sync() override {
    if (::fsync(fd_) != 0)
      throw IoError(std::string("fsync: ") + std::strerror(errno));
  }

  [[nodiscard]] std::uint64_t size() const override {
    struct ::stat st{};
    if (::fstat(fd_, &st) != 0)
      throw IoError(std::string("fstat: ") + std::strerror(errno));
    return static_cast<std::uint64_t>(st.st_size);
  }

 private:
  int fd_;
};

int open_or_throw(const std::string& path, int flags) {
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0)
    throw IoError("open " + path + ": " + std::strerror(errno));
  return fd;
}

}  // namespace

std::unique_ptr<File> DiskVfs::open_append(const std::string& path) {
  return std::make_unique<DiskFile>(
      open_or_throw(path, O_WRONLY | O_CREAT | O_APPEND));
}

std::unique_ptr<File> DiskVfs::create(const std::string& path) {
  return std::make_unique<DiskFile>(
      open_or_throw(path, O_WRONLY | O_CREAT | O_TRUNC | O_APPEND));
}

std::vector<std::uint8_t> DiskVfs::read(const std::string& path) const {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw IoError("open " + path + ": " + std::strerror(errno));
  std::vector<std::uint8_t> out;
  std::uint8_t buf[1 << 16];
  for (;;) {
    const ssize_t got = ::read(fd, buf, sizeof buf);
    if (got < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      throw IoError(std::string("read: ") + std::strerror(errno));
    }
    if (got == 0) break;
    out.insert(out.end(), buf, buf + got);
  }
  ::close(fd);
  return out;
}

bool DiskVfs::exists(const std::string& path) const {
  return std::filesystem::exists(path);
}

void DiskVfs::rename(const std::string& from, const std::string& to) {
  if (::rename(from.c_str(), to.c_str()) != 0)
    throw IoError("rename " + from + ": " + std::strerror(errno));
}

void DiskVfs::remove(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove(path, ec);
  if (ec) throw IoError("remove " + path + ": " + ec.message());
}

void DiskVfs::truncate(const std::string& path, std::uint64_t size) {
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0)
    throw IoError("truncate " + path + ": " + std::strerror(errno));
}

std::vector<std::string> DiskVfs::list(const std::string& prefix) const {
  // A prefix is "<dir>/<name-prefix>"; scan the directory component.
  const std::size_t slash = prefix.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : prefix.substr(0, slash);
  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string path = entry.path().string();
    if (path.compare(0, prefix.size(), prefix) == 0) out.push_back(path);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void DiskVfs::sync_dir(const std::string& prefix) {
  const std::size_t slash = prefix.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : prefix.substr(0, slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0)
    throw IoError("open dir " + dir + ": " + std::strerror(errno));
  if (::fsync(fd) != 0) {
    ::close(fd);
    throw IoError(std::string("fsync dir: ") + std::strerror(errno));
  }
  ::close(fd);
}

void DiskVfs::make_dirs(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) throw IoError("mkdir " + dir + ": " + ec.message());
}

}  // namespace eba
