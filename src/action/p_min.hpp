// P_min: the standard action protocol implementing P0 in the minimal
// context γ_min (paper §6, Thm 6.5):
//
//   if decided        -> noop
//   if init=0 or jd=0 -> decide(0)
//   if time = t+1     -> decide(1)
//   otherwise         -> noop
#pragma once

#include "core/types.hpp"
#include "exchange/min.hpp"

namespace eba {

class PMin {
 public:
  /// Requires n - t >= 2, the hypothesis of Theorem 6.5.
  PMin(int n, int t) : t_(t) {
    EBA_REQUIRE(t >= 0 && n - t >= 2, "P_min requires 0 <= t <= n-2");
  }

  [[nodiscard]] Action operator()(const MinState& s) const {
    if (s.decided) return Action::noop();
    if (s.init == Value::zero || s.jd == Value::zero)
      return Action::decide(Value::zero);
    if (s.time == t_ + 1) return Action::decide(Value::one);
    return Action::noop();
  }

  [[nodiscard]] int t() const { return t_; }

 private:
  int t_;
};

}  // namespace eba
