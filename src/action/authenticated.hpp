// P_auth: the early-stopping rule over the authenticated exchange E_auth.
//
// The decision rule is early_stop_rule verbatim — authentication changes
// what the *exchange* accepts (a bad signature becomes an omission), not
// what the evidence means. Under pure omission failures nobody forges, so
// P_auth decides in exactly the rounds P_es does while paying 64 extra
// bits per message; the comparison matrix in bench_zoo quantifies that.
#pragma once

#include "action/early_stop.hpp"
#include "core/types.hpp"
#include "exchange/authenticated.hpp"

namespace eba {

class PAuth {
 public:
  PAuth(int n, int t) : n_(n), t_(t) {
    EBA_REQUIRE(t >= 0 && n - t >= 2, "P_auth requires 0 <= t <= n-2");
  }

  [[nodiscard]] Action operator()(const AuthState& s) const {
    return early_stop_rule(s, n_, t_);
  }

 private:
  int n_;
  int t_;
};

}  // namespace eba
