#include "action/p_opt.hpp"

#include <algorithm>

#include "graph/knowledge.hpp"

namespace eba {
namespace {

/// d(j, m, G): an inferred-action lookup gated by reachability in the graph
/// under evaluation. (j, m) outside the cone of (owner, time) yields
/// `unknown` even if the shared table knows the true action.
class DOracle {
 public:
  DOracle(const Cone& cone, const ActionTable& known)
      : cone_(cone), known_(known) {}

  [[nodiscard]] KnownAction d(AgentId j, int m) const {
    return cone_.contains(j, m) ? known_.get(j, m) : KnownAction::unknown;
  }

  /// True iff j is not known to have decided by the last time it was heard
  /// from (so j could still occupy a later position on a hidden 0-chain).
  [[nodiscard]] bool undecided_when_last_heard(AgentId j) const {
    const int last = cone_.last_heard(j);
    for (int m = 0; m <= last; ++m)
      if (is_decide(d(j, m))) return false;
    return true;
  }

  [[nodiscard]] const Cone& cone() const { return cone_; }

 private:
  const Cone& cone_;
  const ActionTable& known_;
};

}  // namespace

bool POpt::common_test(const CommGraph& g, AgentId self, Value v, int t,
                       const ActionTable& known) {
  const int m = g.time();
  if (m < 1) return false;

  const auto f = known_faults_table(g);
  const AgentSet f_self =
      f[static_cast<std::size_t>(m)][static_cast<std::size_t>(self)];
  const AgentSet candidates = f_self.complement(g.n());

  // (a) The possibly-nonfaulty agents must have had distributed knowledge of
  // exactly t faulty agents at time m-1 (Lemma A.20: equivalent to
  // C_N(t-faulty) holding now).
  AgentSet dist;
  for (AgentId j : candidates)
    dist = dist.united(
        f[static_cast<std::size_t>(m - 1)][static_cast<std::size_t>(j)]);
  if (dist.size() != t) return false;

  // (b) No possibly-nonfaulty agent may be known to have decided 1-v
  // (otherwise no-decided_N(1-v) cannot be common knowledge).
  const Cone cone(g, self, m);
  const DOracle oracle(cone, known);
  const Value other = opposite(v);
  const KnownAction bad =
      other == Value::zero ? KnownAction::decide0 : KnownAction::decide1;
  for (AgentId j : candidates)
    for (int m2 = 0; m2 < m; ++m2)
      if (oracle.d(j, m2) == bad) return false;

  // (c) Some agent believed nonfaulty at time m-1 must have known ∃v then
  // (Prop A.2(c): C_N(t-faulty ∧ ∃v) ⇔ C_N(t-faulty) ∧ ⊖(∨_{j∈N} K_j ∃v)).
  for (AgentId j : dist.complement(g.n())) {
    for (Value known_value : known_values(g, j, m - 1, cone))
      if (known_value == v) return true;
  }
  return false;
}

bool POpt::cond0_test(const CommGraph& g, AgentId self, Value init,
                      const ActionTable& known) {
  const int m = g.time();
  if (m == 0) return init == Value::zero;
  for (AgentId j = 0; j < g.n(); ++j) {
    if (j == self) continue;
    if (known.get(j, m - 1) == KnownAction::decide0 &&
        g.label(m - 1, j, self) == Label::present)
      return true;
  }
  return false;
}

bool POpt::cond1_test(const CommGraph& g, AgentId self,
                      const ActionTable& known) {
  const int m = g.time();
  if (m == 0) return false;

  const Cone cone(g, self, m);
  const DOracle oracle(cone, known);

  // len: the longest 0-chain position the agent knows about (-1 if none).
  int len = -1;
  for (int m2 = 0; m2 < m; ++m2)
    for (AgentId j = 0; j < g.n(); ++j)
      if (oracle.d(j, m2) == KnownAction::decide0) len = std::max(len, m2);

  // Prop A.7 (contrapositive): the agent knows no one can be deciding 0 iff
  // for some chain position m2 in (len, m] there are fewer potential
  // extenders (agents last heard from before m2 and not known decided) than
  // the hidden chain would need. Because the extender sets are nested in m2,
  // this is exactly Hall's condition for the hidden chain.
  for (int m2 = len + 1; m2 <= m; ++m2) {
    int extenders = 0;
    for (AgentId j = 0; j < g.n(); ++j) {
      if (cone.last_heard(j) < m2 && oracle.undecided_when_last_heard(j))
        ++extenders;
    }
    if (extenders < m2 - len) return true;
  }
  return false;
}

Action POpt::decide_rule(const CommGraph& g, AgentId self, Value init,
                         bool decided, int t, const ActionTable& known,
                         bool use_common) {
  if (decided) return Action::noop();
  if (use_common) {
    if (common_test(g, self, Value::zero, t, known))
      return Action::decide(Value::zero);
    if (common_test(g, self, Value::one, t, known))
      return Action::decide(Value::one);
  }
  if (cond0_test(g, self, init, known)) return Action::decide(Value::zero);
  if (cond1_test(g, self, known)) return Action::decide(Value::one);
  return Action::noop();
}

void POpt::infer_actions(const FipState& s) const {
  s.inferred.ensure(n_, s.time);
  const Cone cone(s.graph, s.self, s.time);
  for (int m = 0; m <= s.time; ++m) {
    for (AgentId j : cone.at(m)) {
      if (j == s.self && m == s.time) continue;  // the action being computed
      if (s.inferred.get(j, m) != KnownAction::unknown) continue;
      const CommGraph view = extract_view(s.graph, j, m);
      EBA_REQUIRE(view.pref(j) != PrefLabel::unknown,
                  "reachable node with unknown own preference");
      const Value init_j =
          view.pref(j) == PrefLabel::zero ? Value::zero : Value::one;
      const bool decided_before = s.inferred.decided_by(j, m - 1);
      const Action a = decide_rule(view, j, init_j, decided_before, t_,
                                   s.inferred, use_common_);
      s.inferred.set(j, m, to_known(a));
    }
  }
}

Action POpt::operator()(const FipState& s) const {
  EBA_REQUIRE(s.graph.n() == n_, "state from a different system");
  infer_actions(s);
  return decide_rule(s.graph, s.self, s.init, s.decided.has_value(), t_,
                     s.inferred, use_common_);
}

}  // namespace eba
