#include "action/p_opt.hpp"

#include <algorithm>

#include "graph/knowledge.hpp"

namespace eba {

// The paper's d(j, m, G) oracle — an inferred-action lookup gated by
// reachability in the graph under evaluation — is realized below as whole
// mask intersections: cone.at(m) ∩ ActionTable decider masks enumerate every
// (j, m) with a reachable, known decision in one word op per round.

bool POpt::common_test(const CommGraph& g, AgentId self, Value v, int t,
                       const ActionTable& known) {
  KnowledgeCache cache;
  return common_test(g, self, v, t, known, cache);
}

bool POpt::common_test(const CommGraph& g, AgentId self, Value v, int t,
                       const ActionTable& known, KnowledgeCache& cache) {
  const int m = g.time();
  if (m < 1) return false;

  const AgentSet f_self =
      cache.fault_row(g, m)[static_cast<std::size_t>(self)];
  const AgentSet candidates = f_self.complement(g.n());

  // (a) The possibly-nonfaulty agents must have had distributed knowledge of
  // exactly t faulty agents at time m-1 (Lemma A.20: equivalent to
  // C_N(t-faulty) holding now).
  const auto f_prev = cache.fault_row(g, m - 1);
  AgentSet dist;
  for (AgentId j : candidates)
    dist = dist.united(f_prev[static_cast<std::size_t>(j)]);
  if (dist.size() != t) return false;

  // (b) No possibly-nonfaulty agent may be known to have decided 1-v
  // (otherwise no-decided_N(1-v) cannot be common knowledge). d(j, m2) is
  // gated by cone membership, so one cone-level ∩ decider-mask ∩ candidates
  // intersection per round covers every (j, m2) probe of the old triple loop.
  const Cone& cone = cache.cone(g, self, m);
  const Value other = opposite(v);
  for (int m2 = 0; m2 < m; ++m2) {
    const AgentSet bad = other == Value::zero ? known.deciders0(m2)
                                              : known.deciders1(m2);
    if (!candidates.intersected(cone.at(m2)).intersected(bad).empty())
      return false;
  }

  // (c) Some agent believed nonfaulty at time m-1 must have known ∃v then
  // (Prop A.2(c): C_N(t-faulty ∧ ∃v) ⇔ C_N(t-faulty) ∧ ⊖(∨_{j∈N} K_j ∃v)).
  for (AgentId j : dist.complement(g.n())) {
    for (Value known_value : known_values(g, j, m - 1, cone))
      if (known_value == v) return true;
  }
  return false;
}

bool POpt::cond0_test(const CommGraph& g, AgentId self, Value init,
                      const ActionTable& known) {
  const int m = g.time();
  if (m == 0) return init == Value::zero;
  // Only senders whose round-m message reached `self` can have shown it a
  // fresh 0-decision; the packed receiver row enumerates exactly those.
  for (AgentId j : g.present_senders(m - 1, self)) {
    if (j == self) continue;
    if (known.get(j, m - 1) == KnownAction::decide0) return true;
  }
  return false;
}

bool POpt::cond1_test(const CommGraph& g, AgentId self,
                      const ActionTable& known) {
  KnowledgeCache cache;
  return cond1_test(g, self, known, cache);
}

bool POpt::cond1_test(const CommGraph& g, AgentId self,
                      const ActionTable& known, KnowledgeCache& cache) {
  const int m = g.time();
  if (m == 0) return false;

  const Cone& cone = cache.cone(g, self, m);

  // len: the longest 0-chain position the agent knows about (-1 if none).
  // d(j, m2) = decide0 iff j is both in the cone level and the decide0 mask.
  int len = -1;
  for (int m2 = 0; m2 < m; ++m2)
    if (!cone.at(m2).intersected(known.deciders0(m2)).empty()) len = m2;

  // Agents known (at some cone node) to have decided. j ∈ cone.at(m2)
  // implies m2 <= last_heard(j), so this union is exactly the complement of
  // the old per-agent undecided_when_last_heard scan.
  AgentSet known_decided;
  for (int m2 = 0; m2 <= m; ++m2)
    known_decided =
        known_decided.united(cone.at(m2).intersected(known.deciders(m2)));

  // Bucket the potential extenders by last_heard: buckets[k] counts the
  // undecided agents with last_heard = k - 1, so the number of extenders at
  // chain position m2 (agents last heard before m2 and not known decided) is
  // the prefix sum up to bucket m2.
  std::vector<int> buckets(static_cast<std::size_t>(m) + 2, 0);
  for (AgentId j : known_decided.complement(g.n()))
    ++buckets[static_cast<std::size_t>(cone.last_heard(j)) + 1];

  // Prop A.7 (contrapositive): the agent knows no one can be deciding 0 iff
  // for some chain position m2 in (len, m] there are fewer potential
  // extenders than the hidden chain would need. Because the extender sets
  // are nested in m2, this is exactly Hall's condition for the hidden chain.
  int extenders = 0;
  for (int m2 = 0; m2 <= m; ++m2) {
    extenders += buckets[static_cast<std::size_t>(m2)];
    if (m2 > len && extenders < m2 - len) return true;
  }
  return false;
}

Action POpt::decide_rule(const CommGraph& g, AgentId self, Value init,
                         bool decided, int t, const ActionTable& known,
                         bool use_common, KnowledgeCache& cache) {
  if (decided) return Action::noop();
  if (use_common) {
    if (common_test(g, self, Value::zero, t, known, cache))
      return Action::decide(Value::zero);
    if (common_test(g, self, Value::one, t, known, cache))
      return Action::decide(Value::one);
  }
  if (cond0_test(g, self, init, known)) return Action::decide(Value::zero);
  if (cond1_test(g, self, known, cache)) return Action::decide(Value::one);
  return Action::noop();
}

void POpt::infer_actions(const FipState& s) const {
  s.inferred.ensure(n_, s.time);
  const Cone& cone = s.knowledge.cone(s.graph, s.self, s.time);
  for (int m = 0; m <= s.time; ++m) {
    for (AgentId j : cone.at(m)) {
      if (j == s.self && m == s.time) continue;  // the action being computed
      if (s.inferred.get(j, m) != KnownAction::unknown) continue;
      // Plain extract_view: each (j, m) node is extracted exactly once over
      // the state's lifetime, so memoizing its cone would be pure overhead.
      const CommGraph view = extract_view(s.graph, j, m);
      EBA_REQUIRE(view.pref(j) != PrefLabel::unknown,
                  "reachable node with unknown own preference");
      const Value init_j =
          view.pref(j) == PrefLabel::zero ? Value::zero : Value::one;
      const bool decided_before = s.inferred.decided_by(j, m - 1);
      // The view is consulted up to three times (two common tests + cond_1);
      // a view-local cache shares its cone and fault table across them.
      KnowledgeCache view_cache;
      const Action a = decide_rule(view, j, init_j, decided_before, t_,
                                   s.inferred, use_common_, view_cache);
      s.inferred.set(j, m, to_known(a));
    }
  }
}

Action POpt::operator()(const FipState& s) const {
  EBA_REQUIRE(s.graph.n() == n_, "state from a different system");
  infer_actions(s);
  return decide_rule(s.graph, s.self, s.init, s.decided.has_value(), t_,
                     s.inferred, use_common_, s.knowledge);
}

int POpt::evidence_ambiguity(const FipState& s, int t) {
  const AgentSet known =
      s.knowledge.fault_row(s.graph, s.time)[static_cast<std::size_t>(s.self)];
  return std::max(0, t - known.size());
}

}  // namespace eba
