#include "action/p_opt_go.hpp"

#include <vector>

#include "action/p_opt.hpp"
#include "graph/knowledge.hpp"

namespace eba {
namespace {

/// True iff S covers every clause of `ev` (every definite-absent edge has a
/// faulty endpoint in S).
bool covers(const OmissionEvidence& ev, AgentSet s) {
  for (AgentId a = 0; a < ev.n(); ++a)
    if (!s.contains(a) && !ev.adj(a).subset_of(s)) return false;
  return true;
}

/// Invokes fn(S) for every S with |S| <= t; stops early when fn returns
/// true. Returns whether any call did.
template <class Fn>
bool any_fault_set(int n, int t, const Fn& fn) {
  AgentSet s;
  auto rec = [&](auto&& self, AgentId next, int left) -> bool {
    if (fn(s)) return true;
    if (left == 0) return false;
    for (AgentId a = next; a < n; ++a) {
      s.insert(a);
      if (self(self, a + 1, left - 1)) return true;
      s.erase(a);
    }
    return false;
  };
  return rec(rec, 0, t);
}

}  // namespace

// ---------------------------------------------------------------------------
// go_cond1_test — K_i "no agent can be deciding 0 in round m+1" over GO(t).
//
// An agent could be deciding 0 in round m+1 of some consistent world iff a
// chain of fresh 0-decisions runs from an origin (an init-0 agent, or the
// longest 0-decision position `len` the observer already knows about)
// through every position len+1..m, each position m2 held by a distinct
// agent that decides 0 in round m2+1. The observer's graph pins down:
//
//   * the fault sets the world may use: exactly the <= t covers S of the
//     observer's missing-edge evidence (every other drop the world needs is
//     on edges the observer has no definite label for);
//   * which agents may hold position m2: agents not known to have decided,
//     last heard before m2 (otherwise the observer would know their round-
//     (m2+1) action — the classic extender condition);
//   * HOW an occupant can have stayed ignorant of 0 until round m2. A
//     faulty occupant (∈ S) simply receive-drops every earlier 0-broadcast.
//     A NONfaulty occupant hears everything nonfaulty agents send, so it
//     works only if every earlier 0-source is in S — and once one nonfaulty
//     agent holds/decides 0, its broadcast infects every nonfaulty agent
//     one round later. Nonfaulty occupants therefore form a single "cascade
//     window" of at most two consecutive positions (the initiator, then a
//     peer that just heard it), after which the chain must continue inside
//     S. If the observer knows a 0-decider OUTSIDE S at position q, the
//     cascade is already forced at q: the only possible nonfaulty occupant
//     sits at position q+1 (= len+1, since q <= len and a later window
//     would contradict the known decider's broadcast).
//
// Note which consistency checks are NOT coded here because the evidence
// cover already enforces them: a hidden occupant's silence toward every
// visible agent is a set of definite-absent edges (clauses), so a nonfaulty
// occupant automatically forces all late cone members — including the
// observer itself — into S. That is why a nonfaulty window before position
// m exists only for observers that are themselves possibly receive-faulty.
//
// Matching positions to occupants is a Hall-type problem with pools nested
// increasing in m2, so per (S, window) a prefix count decides feasibility.
// ---------------------------------------------------------------------------
bool POptGo::go_cond1_test(const CommGraph& g, AgentId self, int t,
                           const ActionTable& known, KnowledgeCache& cache) {
  const int m = g.time();
  if (m == 0) return false;
  const int n = g.n();
  const Cone& cone = cache.cone(g, self, m);

  // Known 0-deciders per position, the longest known position, and the
  // agents with any known decision (never chain occupants).
  std::vector<AgentSet> zero_at(static_cast<std::size_t>(m));
  int len = -1;
  for (int m2 = 0; m2 < m; ++m2) {
    zero_at[static_cast<std::size_t>(m2)] =
        cone.at(m2).intersected(known.deciders0(m2));
    if (!zero_at[static_cast<std::size_t>(m2)].empty()) len = m2;
  }
  AgentSet known_decided;
  for (int m2 = 0; m2 <= m; ++m2)
    known_decided =
        known_decided.united(cone.at(m2).intersected(known.deciders(m2)));

  const OmissionEvidence& ev = cache.go_evidence_row(g, m)[
      static_cast<std::size_t>(self)];

  const int first = len + 1;  // chain positions first..m
  // undecided[j]: may occupy a position; position m2 additionally needs
  // last_heard(j) < m2.
  const AgentSet undecided = known_decided.complement(n);

  // Cumulative extender counts, split by membership in S, are recomputed
  // per S below from these buckets: bucket[k] = undecided agents with
  // last_heard = k-1.
  const auto chain_feasible = [&](AgentSet s) -> bool {
    if (!covers(ev, s)) return false;
    // q: earliest known 0-decision position outside S.
    int q = -1;
    for (int m2 = 0; m2 < m && q < 0; ++m2)
      if (!zero_at[static_cast<std::size_t>(m2)].minus(s).empty()) q = m2;

    // Per-position counts of available occupants (prefix over last_heard).
    std::vector<int> s_cnt(static_cast<std::size_t>(m) + 2, 0);
    std::vector<int> ns_cnt(static_cast<std::size_t>(m) + 2, 0);
    for (AgentId j : undecided) {
      auto& cnt = s.contains(j) ? s_cnt : ns_cnt;
      ++cnt[static_cast<std::size_t>(cone.last_heard(j)) + 1];
    }
    for (int m2 = 1; m2 <= m + 1; ++m2) {
      s_cnt[static_cast<std::size_t>(m2)] +=
          s_cnt[static_cast<std::size_t>(m2) - 1];
      ns_cnt[static_cast<std::size_t>(m2)] +=
          ns_cnt[static_cast<std::size_t>(m2) - 1];
    }
    // s_cnt[m2] now = |{o ∈ S, undecided, last_heard < m2}|; same for ns.
    const auto savail = [&](int m2) {
      return s_cnt[static_cast<std::size_t>(m2)];
    };
    const auto nsavail = [&](int m2) {
      return ns_cnt[static_cast<std::size_t>(m2)];
    };

    // Candidate nonfaulty-cascade windows: lists of positions held by
    // occupants outside S.
    std::vector<std::pair<int, int>> windows;  // [lo, hi] inclusive; lo>hi = none
    windows.emplace_back(1, 0);                // no window
    if (q >= 0) {
      // Forced cascade at q: the only possible non-S occupant is at q+1.
      if (q + 1 >= first) windows.emplace_back(q + 1, q + 1);
    } else {
      for (int p = first; p <= m; ++p) windows.emplace_back(p, p);
      for (int p = first; p < m; ++p) windows.emplace_back(p, p + 1);
    }

    for (const auto& [lo, hi] : windows) {
      if (lo <= hi) {
        // Need hi-lo+1 distinct non-S occupants, nested pools.
        bool ok = true;
        for (int p = lo; p <= hi; ++p)
          if (nsavail(p) < p - lo + 1) ok = false;
        if (!ok) continue;
      }
      // Remaining positions take distinct S occupants (Hall prefix check).
      bool ok = true;
      int needed = 0;
      for (int m2 = first; m2 <= m && ok; ++m2) {
        if (m2 >= lo && m2 <= hi) continue;
        ++needed;
        if (savail(m2) < needed) ok = false;
      }
      if (ok) return true;
    }
    return false;
  };

  // K_i(no deciding 0) fails iff SOME consistent fault set admits a chain.
  return !any_fault_set(n, t, chain_feasible);
}

// ---------------------------------------------------------------------------
// go_common_test — the GO evaluation of K_i(C_N(t-faulty ∧ no-decided_N(1-v)
// ∧ ∃v)), mirroring POpt::common_test with clause-based fault attribution.
//
// (a) Budget exhaustion: the pooled missing-edge evidence the observer
//     knows its possibly-nonfaulty peers had at time m-1 must FORCE exactly
//     t faults (lie in every <= t cover). The pooled evidence is a subset
//     of the observer's own, so when it forces t agents the observer's
//     candidate set equals the true nonfaulty set in every consistent
//     world, every contributor is provably nonfaulty, and — nonfaulty
//     pairs exchanging reliably under GO — the t-fault fact was distributed
//     knowledge of N at m-1 and hence common knowledge at m (the GO
//     analogue of Lemma A.20).
// (b) No possibly-nonfaulty agent may be known to have decided 1-v.
// (c) Some agent outside the forced fault set must have known ∃v at m-1.
// ---------------------------------------------------------------------------
bool POptGo::go_common_test(const CommGraph& g, AgentId self, Value v, int t,
                            const ActionTable& known, KnowledgeCache& cache) {
  const int m = g.time();
  if (m < 1) return false;

  const AgentSet f_self = go_known_faults(
      cache.go_evidence_row(g, m)[static_cast<std::size_t>(self)], t);
  const AgentSet candidates = f_self.complement(g.n());

  const auto ev_prev = cache.go_evidence_row(g, m - 1);
  OmissionEvidence pooled(g.n());
  for (AgentId j : candidates)
    pooled.unite(ev_prev[static_cast<std::size_t>(j)]);
  const AgentSet dist = go_known_faults(pooled, t);
  if (dist.size() != t) return false;

  // (b) as in the SO test: one cone-level ∩ decider-mask ∩ candidates
  // intersection per round covers every (j, m2) probe.
  const Cone& cone = cache.cone(g, self, m);
  const Value other = opposite(v);
  for (int m2 = 0; m2 < m; ++m2) {
    const AgentSet bad = other == Value::zero ? known.deciders0(m2)
                                              : known.deciders1(m2);
    if (!candidates.intersected(cone.at(m2)).intersected(bad).empty())
      return false;
  }

  // (c) some agent believed nonfaulty must have known ∃v at time m-1.
  for (AgentId j : dist.complement(g.n())) {
    for (Value known_value : known_values(g, j, m - 1, cone))
      if (known_value == v) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// go_cond0_test — the GO evaluation of init=0 ∨ K_i(∨_j jdecided_j = 0).
//
// The direct clause is the SO one: a delivered round-m message from a
// sender whose round-m action is an inferred decide(0). GO adds an indirect
// clause. Suppose the observer's evidence leaves some agents in NO <= t
// cover — they are provably nonfaulty in every consistent world (typically
// because the observer has proven itself receive-faulty and exhausted the
// budget). Nonfaulty pairs exchange reliably, so a known 0-decision by a
// provably-nonfaulty y in round m-1 (position m-2) reached every
// provably-nonfaulty z in that round; a z known to be still undecided
// through round m-1 (its actions through time m-2 are inferred noops)
// therefore decides 0 in round m — in EVERY consistent world — even though
// the observer saw neither the broadcast nor the decision. Earlier known
// 0-decisions by provably-nonfaulty agents need no clause: a real run can
// never show a provably-nonfaulty agent still undecided two rounds after
// one (the cascade would already have reached it visibly).
// ---------------------------------------------------------------------------
bool POptGo::go_cond0_test(const CommGraph& g, AgentId self, Value init,
                           int t, const ActionTable& known,
                           KnowledgeCache& cache) {
  if (POpt::cond0_test(g, self, init, known)) return true;
  const int m = g.time();
  if (m < 2) return false;

  const OmissionEvidence& ev = cache.go_evidence_row(g, m)[
      static_cast<std::size_t>(self)];
  const AgentSet known_nonfaulty =
      go_possibly_faulty(ev, t).complement(g.n());
  if (known_nonfaulty.empty()) return false;

  const Cone& cone = cache.cone(g, self, m);
  if (cone.at(m - 2)
          .intersected(known.deciders0(m - 2))
          .intersected(known_nonfaulty)
          .empty())
    return false;
  for (AgentId z : known_nonfaulty) {
    if (z == self) continue;
    if (cone.last_heard(z) >= m - 2 && !known.decided_by(z, m - 2))
      return true;
  }
  return false;
}

Action POptGo::decide_rule(const CommGraph& g, AgentId self, Value init,
                           bool decided, int t, const ActionTable& known,
                           bool use_common, KnowledgeCache& cache) {
  if (decided) return Action::noop();
  if (use_common) {
    if (go_common_test(g, self, Value::zero, t, known, cache))
      return Action::decide(Value::zero);
    if (go_common_test(g, self, Value::one, t, known, cache))
      return Action::decide(Value::one);
  }
  if (go_cond0_test(g, self, init, t, known, cache))
    return Action::decide(Value::zero);
  if (go_cond1_test(g, self, t, known, cache)) return Action::decide(Value::one);
  return Action::noop();
}

void POptGo::infer_actions(const FipState& s) const {
  s.inferred.ensure(n_, s.time);
  const Cone& cone = s.knowledge.cone(s.graph, s.self, s.time);
  for (int m = 0; m <= s.time; ++m) {
    for (AgentId j : cone.at(m)) {
      if (j == s.self && m == s.time) continue;  // the action being computed
      if (s.inferred.get(j, m) != KnownAction::unknown) continue;
      const CommGraph view = extract_view(s.graph, j, m);
      EBA_REQUIRE(view.pref(j) != PrefLabel::unknown,
                  "reachable node with unknown own preference");
      const Value init_j =
          view.pref(j) == PrefLabel::zero ? Value::zero : Value::one;
      const bool decided_before = s.inferred.decided_by(j, m - 1);
      KnowledgeCache view_cache;
      const Action a = decide_rule(view, j, init_j, decided_before, t_,
                                   s.inferred, use_common_, view_cache);
      s.inferred.set(j, m, to_known(a));
    }
  }
}

Action POptGo::operator()(const FipState& s) const {
  EBA_REQUIRE(s.graph.n() == n_, "state from a different system");
  infer_actions(s);
  return decide_rule(s.graph, s.self, s.init, s.decided.has_value(), t_,
                     s.inferred, use_common_, s.knowledge);
}

int POptGo::evidence_ambiguity(const FipState& s, int t) {
  const OmissionEvidence& e = s.knowledge.go_evidence_row(
      s.graph, s.time)[static_cast<std::size_t>(s.self)];
  return go_possibly_faulty(e, t).minus(go_known_faults(e, t)).size();
}

}  // namespace eba
