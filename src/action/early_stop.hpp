// P_es: the early-stopping EBA baseline over E_report (per the
// Abraham–Dolev early-stopping line, PAPERS.md), deciding in
// min(f+2, t+2) rounds where f is the number of *realized* faults:
//
//   if decided                                  -> noop
//   if time >= 1 and budget_common              -> decide(1)
//   if init=0 or jd=0                           -> decide(0)
//   if jd=1                                     -> decide(1)
//   if time >= 1 and |faults ∪ zeros| < time    -> decide(1)
//   if #1 > n - time                            -> decide(1)
//   if time = t+1                               -> decide(1)
//   otherwise                                   -> noop
//
// The count test is the early-stopping engine: a hidden 0-chain alive at
// time m has m distinct members, and every one of them is either convicted
// faulty (all its 0-bearing reports were dropped — µ never sends ⊥) or in
// the zeros set (a sticky 0-report arrived non-freshly; a fresh one would
// have decided us at the jd rule). So |faults ∪ zeros| < time refutes every
// chain. The #1 test is P_basic's positive-evidence twin (p_basic.hpp),
// needed so P_es dominates P_basic pointwise: the chain's first m members
// all carry decided_ever = 0 by round m, so > n - m reports without it
// refute every chain directly — even when the realized faults already
// exhaust the |faults ∪ zeros| < time budget (e.g. f = t agents each
// dropping a single edge in round 1). The budget_common test fires *above*
// the jd rules, mirroring
// P_opt's common-before-conditional ordering: when it fires it fires
// simultaneously at every nonfaulty agent (the bit depends only on the
// candidate report matrix, identical everywhere in SO), so a faulty chain
// tail delivering a last-instant jd=0 to one agent cannot split the
// outcome. See docs/PROTOCOL_ZOO.md for the full arguments and the round
// numbering (decided *round* ≤ min(f+2, t+2); decided *time* — the state
// time at which the decision is chosen — ≤ min(f+1, t+1)).
#pragma once

#include "core/types.hpp"
#include "exchange/report.hpp"

namespace eba {

/// The decision rule, shared verbatim by P_es over E_report and P_auth over
/// E_auth (the authenticated state embeds the same evidence fields).
template <class S>
[[nodiscard]] Action early_stop_rule(const S& s, int n, int t) {
  if (s.decided) return Action::noop();
  if (s.time >= 1 && s.budget_common) return Action::decide(Value::one);
  if (s.init == Value::zero || s.jd == Value::zero)
    return Action::decide(Value::zero);
  if (s.jd == Value::one) return Action::decide(Value::one);
  if (s.time >= 1 && s.faults.united(s.zeros).size() < s.time)
    return Action::decide(Value::one);
  if (s.ones > n - s.time) return Action::decide(Value::one);
  if (s.time == t + 1) return Action::decide(Value::one);
  return Action::noop();
}

class PEarlyStop {
 public:
  PEarlyStop(int n, int t) : n_(n), t_(t) {
    EBA_REQUIRE(t >= 0 && n - t >= 2, "P_es requires 0 <= t <= n-2");
  }

  [[nodiscard]] Action operator()(const ReportState& s) const {
    return early_stop_rule(s, n_, t_);
  }

 private:
  int n_;
  int t_;
};

}  // namespace eba
