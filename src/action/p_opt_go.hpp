// P_opt_go: the paper's optimal-protocol construction instantiated for the
// general-omissions context γ_go(n, t) — the GO analogue of P_opt.
//
// The knowledge-based programs P0/P1 are model-agnostic; what changes under
// general omissions is how their knowledge tests are *implemented* on the
// agent's communication graph, because an absent edge no longer convicts
// its sender:
//
//   * fault attribution is clause reasoning: each definite-absent edge
//     (a → b) contributes the clause "a faulty ∨ b faulty", the consistent
//     fault sets are exactly the <= t vertex covers of the clause set, and
//     an agent *knows* x is faulty iff x lies in every such cover
//     (graph/knowledge.hpp: OmissionEvidence, go_known_faults). In
//     particular an agent can come to know that it is itself faulty (a
//     receive-omitter that misses more senders than the budget explains);
//   * the common-knowledge test pools the candidates' clause evidence
//     instead of unioning per-agent fault sets: C_N(t-faulty) holds one
//     round after the possibly-nonfaulty agents' pooled evidence *forces*
//     exactly t faults (the GO analogue of Lemma A.20 — nonfaulty agents
//     still exchange reliably among themselves, since neither endpoint of a
//     nonfaulty pair may drop);
//   * the decide-1 test must range over the *larger* GO world set: a hidden
//     0-chain may be sustained by receive-faulty agents, and conversely the
//     t budget prunes chains that sending-omissions reasoning would admit
//     (every hidden chain occupant needs its ignorance paid for by some
//     fault). go_cond1_test enumerates the consistent fault sets (the <= t
//     covers of the agent's own evidence) and asks, per fault set, whether
//     a hidden chain assignment exists — a Hall-type counting refined with
//     a "nonfaulty cascade window" (see p_opt_go.cpp for the derivation).
//
//   if decided                                   -> noop
//   if go_common_0                               -> decide(0)
//   if go_common_1                               -> decide(1)
//   if cond_0   (init=0 or a just-received 0-decision, unchanged) -> decide(0)
//   if go_cond_1 (K_i "no agent can be deciding 0" in GO(t))      -> decide(1)
//   otherwise                                    -> noop
//
// tests/test_go.cpp verifies against the semantic machinery that P_opt_go
// implements P1 in γ_go on exhaustively enumerated small contexts, that the
// synthesizer-derived decisions match, and that the EBA spec holds over all
// canonical GO orbits at n = 4 (t = 1, 2).
#pragma once

#include "core/types.hpp"
#include "exchange/fip.hpp"
#include "graph/action_table.hpp"
#include "graph/comm_graph.hpp"
#include "graph/knowledge.hpp"

namespace eba {

class POptGo {
 public:
  /// Ablation switch mirroring POpt's: with `use_common_knowledge = false`
  /// the two common-knowledge lines are skipped, leaving the GO evaluation
  /// of P0 over the full-information exchange — still a correct EBA
  /// protocol in γ_go but no longer optimal.
  enum class CommonKnowledge { enabled, disabled };

  /// Requires n - t >= 2 (as for P_opt).
  POptGo(int n, int t, CommonKnowledge ck = CommonKnowledge::enabled)
      : n_(n), t_(t), use_common_(ck == CommonKnowledge::enabled) {
    EBA_REQUIRE(t >= 0 && n - t >= 2, "P_opt_go requires 0 <= t <= n-2");
  }

  [[nodiscard]] Action operator()(const FipState& s) const;

  // The individual graph tests, exposed for unit tests and for the
  // model-checker cross-validation against P1 in γ_go.

  /// go_common_v: K_i(C_N(t-faulty ∧ no-decided_N(1-v) ∧ ∃v)) at time
  /// g.time(), evaluated with GO fault attribution.
  [[nodiscard]] static bool go_common_test(const CommGraph& g, AgentId self,
                                           Value v, int t,
                                           const ActionTable& known,
                                           KnowledgeCache& cache);

  /// go_cond_0: init=0, or K_i(some agent decided 0 in round time) under GO
  /// semantics. Beyond the direct clause (a delivered message from a
  /// just-decided sender, as in SO), GO adds a budget-forced cascade
  /// inference: once the observer's evidence proves agents y and z
  /// NONfaulty (they lie in no <= t cover — e.g. because the observer has
  /// proven ITSELF receive-faulty), a known 0-decision by y at time m-2
  /// forces the undecided z to have heard it and decided 0 in round m, even
  /// though the observer saw neither the broadcast nor z's decision.
  [[nodiscard]] static bool go_cond0_test(const CommGraph& g, AgentId self,
                                          Value init, int t,
                                          const ActionTable& known,
                                          KnowledgeCache& cache);

  /// go_cond_1: K_i "no agent can be deciding 0 in round time+1" over the
  /// GO(t) worlds consistent with g.
  [[nodiscard]] static bool go_cond1_test(const CommGraph& g, AgentId self,
                                          int t, const ActionTable& known,
                                          KnowledgeCache& cache);

  /// Fills s.inferred with d(j, m) for every node in the hears-from cone of
  /// (s.self, s.time), re-deriving peers' GO decisions from their views.
  void infer_actions(const FipState& s) const;

  /// Strategy-facing accessor (failure/strategy.hpp objectives): agents
  /// whose fault status the agent's clause evidence leaves open at (s.self,
  /// s.time) — possibly faulty but not in every <= t cover. A worst-case GO
  /// adversary maximizes this unresolved set.
  [[nodiscard]] static int evidence_ambiguity(const FipState& s, int t);

  [[nodiscard]] int t() const { return t_; }

 private:
  [[nodiscard]] static Action decide_rule(const CommGraph& g, AgentId self,
                                          Value init, bool decided, int t,
                                          const ActionTable& known,
                                          bool use_common,
                                          KnowledgeCache& cache);

  int n_;
  int t_;
  bool use_common_;
};

}  // namespace eba
