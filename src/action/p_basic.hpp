// P_basic: the action protocol implementing P0 in the basic context γ_basic
// (paper §6, Thm 6.6):
//
//   if decided                  -> noop
//   if init=0 or jd=0           -> decide(0)
//   if #1 > n - time or jd=1    -> decide(1)
//   otherwise                   -> noop
//
// The #1 test detects that too few agents remain silent for a hidden
// 0-chain of the current length to exist.
#pragma once

#include "core/types.hpp"
#include "exchange/basic.hpp"

namespace eba {

class PBasic {
 public:
  /// Requires n - t >= 2, the hypothesis of Theorem 6.6.
  PBasic(int n, int t) : n_(n) {
    EBA_REQUIRE(t >= 0 && n - t >= 2, "P_basic requires 0 <= t <= n-2");
  }

  [[nodiscard]] Action operator()(const BasicState& s) const {
    if (s.decided) return Action::noop();
    if (s.init == Value::zero || s.jd == Value::zero)
      return Action::decide(Value::zero);
    if (s.ones > n_ - s.time || s.jd == Value::one)
      return Action::decide(Value::one);
    return Action::noop();
  }

 private:
  int n_;
};

}  // namespace eba
