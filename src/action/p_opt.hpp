// P_opt: the polynomial-time implementation of the knowledge-based program
// P1 with respect to the full-information exchange (paper §7, Def. A.19,
// Thm A.21, Prop 7.9). This settles the Halpern–Moses–Waarts open problem:
// an optimal EBA protocol for omission failures that is computable in
// polynomial time.
//
//   if decided                              -> noop
//   if common_0 (K_i C_N(t-faulty ∧ no-decided_N(1) ∧ ∃0)) -> decide(0)
//   if common_1 (K_i C_N(t-faulty ∧ no-decided_N(0) ∧ ∃1)) -> decide(1)
//   if cond_0   (init=0 or a just-received 0-decision)     -> decide(0)
//   if cond_1   (K_i "no agent can be deciding 0")         -> decide(1)
//   otherwise                               -> noop
//
// All tests are evaluated on the agent's communication graph using the
// operators f, D, V, d of §A.2.7; the d (inferred action) entries are
// memoized in the state's ActionTable, each node being inferred exactly once
// when it first enters the hears-from cone.
#pragma once

#include "core/types.hpp"
#include "exchange/fip.hpp"
#include "graph/action_table.hpp"
#include "graph/comm_graph.hpp"
#include "graph/knowledge.hpp"

namespace eba {

class POpt {
 public:
  /// Ablation switch: with `use_common_knowledge = false` the two
  /// common-knowledge lines are skipped, leaving P0 evaluated over the
  /// full-information exchange — still a correct EBA protocol (Prop 6.1
  /// holds in every EBA context) but no longer optimal: it forfeits the
  /// Example 7.1 round-3 shortcut. bench_ablation quantifies the gap.
  enum class CommonKnowledge { enabled, disabled };

  /// Requires n - t >= 2 (Thm A.21 hypothesis).
  POpt(int n, int t, CommonKnowledge ck = CommonKnowledge::enabled)
      : n_(n), t_(t), use_common_(ck == CommonKnowledge::enabled) {
    EBA_REQUIRE(t >= 0 && n - t >= 2, "P_opt requires 0 <= t <= n-2");
  }

  [[nodiscard]] Action operator()(const FipState& s) const;

  // The individual graph tests, exposed for unit tests and for the
  // model-checker cross-validation of Thm A.21. `known` is an inferred
  // action table valid for every node reachable in `g`; lookups are gated by
  // reachability in `g` internally.

  /// common_v: K_i(C_N(t-faulty ∧ no-decided_N(1-v) ∧ ∃v)) at time g.time().
  /// The cache-less overload builds a throwaway KnowledgeCache; the cached
  /// overload reuses `cache`, which must belong to `g` (see KnowledgeCache).
  [[nodiscard]] static bool common_test(const CommGraph& g, AgentId self,
                                        Value v, int t,
                                        const ActionTable& known);
  [[nodiscard]] static bool common_test(const CommGraph& g, AgentId self,
                                        Value v, int t,
                                        const ActionTable& known,
                                        KnowledgeCache& cache);

  /// cond_0: init=0 at time 0, or a delivered message from an agent that
  /// just decided 0.
  [[nodiscard]] static bool cond0_test(const CommGraph& g, AgentId self,
                                       Value init, const ActionTable& known);

  /// cond_1: the Hall-type counting test of Prop A.7 — true iff no hidden
  /// 0-chain can reach the present round.
  [[nodiscard]] static bool cond1_test(const CommGraph& g, AgentId self,
                                       const ActionTable& known);
  [[nodiscard]] static bool cond1_test(const CommGraph& g, AgentId self,
                                       const ActionTable& known,
                                       KnowledgeCache& cache);

  /// Fills s.inferred with d(j, m) for every node in the hears-from cone of
  /// (s.self, s.time). Exposed for tests; operator() calls it.
  void infer_actions(const FipState& s) const;

  /// Strategy-facing accessor (failure/strategy.hpp objectives): how much of
  /// the fault budget is still unattributed in the agent's view — t minus
  /// the number of senders its f-table convicts at (s.self, s.time). A
  /// worst-case adversary maximizes this to stay hidden from P_opt's
  /// common-knowledge tests.
  [[nodiscard]] static int evidence_ambiguity(const FipState& s, int t);

  [[nodiscard]] int t() const { return t_; }

 private:
  [[nodiscard]] static Action decide_rule(const CommGraph& g, AgentId self,
                                          Value init, bool decided, int t,
                                          const ActionTable& known,
                                          bool use_common,
                                          KnowledgeCache& cache);

  int n_;
  int t_;
  bool use_common_;
};

}  // namespace eba
