// The classic 0-biased action protocol over E_relay (paper §1):
//
//   if decided          -> noop
//   if knows0           -> decide(0)     (decide 0 as soon as ∃0 is learned)
//   if time = t+1       -> decide(1)
//   otherwise           -> noop
//
// Under crash failures this is a correct EBA protocol (hearing about a 0 can
// only happen through live relays, so knowledge of ∃0 among nonfaulty agents
// is uniform by time t+1). Under sending-omission failures it is NOT: a
// faulty agent can withhold the 0 and release it to exactly one agent in
// round t+1, splitting the nonfaulty decisions — the paper's introductory
// impossibility argument, reproduced in tests/test_impossibility.cpp.
#pragma once

#include "core/types.hpp"
#include "exchange/relay.hpp"

namespace eba {

class PZeroBiased {
 public:
  PZeroBiased(int n, int t) : t_(t) {
    EBA_REQUIRE(t >= 0 && n - t >= 2, "requires 0 <= t <= n-2");
  }

  [[nodiscard]] Action operator()(const RelayState& s) const {
    if (s.decided) return Action::noop();
    if (s.knows0) return Action::decide(Value::zero);
    if (s.time == t_ + 1) return Action::decide(Value::one);
    return Action::noop();
  }

 private:
  int t_;
};

}  // namespace eba
