// Contract-checking macro used across the library.
//
// Violations indicate caller bugs (broken preconditions) or internal
// invariant breakage; both throw so that tests can observe them and
// applications fail loudly instead of silently corrupting a run.
#pragma once

#include <stdexcept>
#include <string>

namespace eba::detail {

[[noreturn]] inline void contract_failure(const char* expr, const char* file,
                                          int line, const std::string& msg) {
  throw std::logic_error(std::string("EBA contract violated: ") + expr + " at " +
                         file + ":" + std::to_string(line) +
                         (msg.empty() ? "" : (" — " + msg)));
}

}  // namespace eba::detail

#define EBA_REQUIRE(expr, msg)                                        \
  do {                                                                \
    if (!(expr)) ::eba::detail::contract_failure(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

#define EBA_ASSERT(expr) EBA_REQUIRE(expr, "")
