// Fundamental value and action types of the EBA problem (paper §3, §5).
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "core/agent_set.hpp"

namespace eba {

/// Binary consensus value.
enum class Value : std::uint8_t { zero = 0, one = 1 };

[[nodiscard]] constexpr Value opposite(Value v) {
  return v == Value::zero ? Value::one : Value::zero;
}
[[nodiscard]] constexpr int to_int(Value v) { return static_cast<int>(v); }
[[nodiscard]] constexpr Value value_of(int x) {
  return x == 0 ? Value::zero : Value::one;
}

/// An agent's per-round action: `noop` or `decide(v)` (paper §5).
class Action {
 public:
  constexpr Action() = default;  // noop
  static constexpr Action noop() { return Action(); }
  static constexpr Action decide(Value v) { return Action(true, v); }

  [[nodiscard]] constexpr bool is_decide() const { return decide_; }
  [[nodiscard]] constexpr bool decides(Value v) const {
    return decide_ && value_ == v;
  }
  /// Precondition: is_decide().
  [[nodiscard]] Value value() const {
    EBA_REQUIRE(decide_, "noop action has no value");
    return value_;
  }

  friend constexpr bool operator==(Action, Action) = default;

 private:
  constexpr Action(bool d, Value v) : decide_(d), value_(v) {}
  bool decide_ = false;
  Value value_ = Value::zero;
};

/// A recorded decision: the value and the round in which it was performed.
/// An action selected at state time m is performed "in round m+1".
struct Decision {
  Value value;
  int round;
  friend bool operator==(const Decision&, const Decision&) = default;
};

[[nodiscard]] std::string to_string(Value v);
[[nodiscard]] std::string to_string(const Action& a);
[[nodiscard]] std::string to_string(const std::optional<Value>& v);

std::ostream& operator<<(std::ostream& os, Value v);
std::ostream& operator<<(std::ostream& os, const Action& a);

/// Protocol-agnostic record of one synchronous run, sufficient for checking
/// the EBA specification and for 0-chain analysis. Produced by the simulator
/// and by the threaded runtime.
struct RunRecord {
  int n = 0;           ///< number of agents
  int t = 0;           ///< failure bound of the context
  int rounds = 0;      ///< number of simulated rounds (times 0..rounds)
  std::vector<Value> inits;  ///< initial preferences, size n
  AgentSet nonfaulty;        ///< N(r)

  /// actions[m][i]: action performed by i in round m+1 (chosen at time m).
  std::vector<std::vector<Action>> actions;
  /// sent[m][i]: receivers to which i addressed a non-bot message in round m+1.
  std::vector<std::vector<AgentSet>> sent;
  /// delivered[m][i]: subset of sent[m][i] actually delivered by the adversary.
  std::vector<std::vector<AgentSet>> delivered;

  [[nodiscard]] bool faulty(AgentId i) const { return !nonfaulty.contains(i); }

  /// First round in which i decides, or nullopt.
  [[nodiscard]] std::optional<Decision> decision(AgentId i) const;

  friend bool operator==(const RunRecord&, const RunRecord&) = default;
};

}  // namespace eba
