#include "core/types.hpp"

namespace eba {

std::string to_string(Value v) { return v == Value::zero ? "0" : "1"; }

std::string to_string(const Action& a) {
  return a.is_decide() ? ("decide(" + to_string(a.value()) + ")") : "noop";
}

std::string to_string(const std::optional<Value>& v) {
  return v.has_value() ? to_string(*v) : "⊥";
}

std::ostream& operator<<(std::ostream& os, Value v) { return os << to_string(v); }
std::ostream& operator<<(std::ostream& os, const Action& a) {
  return os << to_string(a);
}

std::optional<Decision> RunRecord::decision(AgentId i) const {
  EBA_REQUIRE(i >= 0 && i < n, "agent id out of range");
  for (int m = 0; m < static_cast<int>(actions.size()); ++m) {
    const Action& a = actions[m][static_cast<std::size_t>(i)];
    if (a.is_decide()) return Decision{a.value(), m + 1};
  }
  return std::nullopt;
}

}  // namespace eba
