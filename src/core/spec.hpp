// Checker for the four EBA correctness properties (paper §5):
// Unique Decision, Agreement, Validity, Termination, plus the round-(t+2)
// termination bound of Proposition 6.1.
#pragma once

#include <string>
#include <vector>

#include "core/types.hpp"

namespace eba {

/// Result of checking one run against the EBA specification. `ok()` is true
/// iff all four properties hold; individual flags and human-readable
/// violation messages are available for diagnostics.
struct SpecReport {
  bool unique_decision = true;
  bool agreement = true;
  bool validity = true;           ///< checked for nonfaulty deciders
  bool validity_all = true;       ///< Prop 6.1: Validity even for faulty agents
  bool termination = true;        ///< all nonfaulty agents decide in the run
  bool termination_bound = true;  ///< ... and no later than round t+2

  std::vector<std::string> violations;

  [[nodiscard]] bool ok() const {
    return unique_decision && agreement && validity && termination;
  }
  [[nodiscard]] bool ok_strict() const {
    return ok() && validity_all && termination_bound;
  }
};

/// Checks `record` against the EBA specification. The record must cover at
/// least t+2 rounds for the termination checks to be meaningful.
[[nodiscard]] SpecReport check_eba(const RunRecord& record);

}  // namespace eba
