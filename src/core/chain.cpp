#include "core/chain.hpp"

#include <algorithm>

namespace eba {
namespace {

/// first_decide0[i] = state time m at which i's first decide(0) was chosen
/// (so the decision is performed in round m+1), or -1.
std::vector<int> first_decide0_times(const RunRecord& r) {
  std::vector<int> out(static_cast<std::size_t>(r.n), -1);
  for (AgentId i = 0; i < r.n; ++i) {
    auto d = r.decision(i);
    if (d && d->value == Value::zero)
      out[static_cast<std::size_t>(i)] = d->round - 1;
  }
  return out;
}

}  // namespace

ZeroChainAnalysis analyze_zero_chains(const RunRecord& r) {
  const std::vector<int> t0 = first_decide0_times(r);
  ZeroChainAnalysis out;
  out.chain_end_time.assign(static_cast<std::size_t>(r.n), -1);

  // on_chain[i] = true if i occupies position t0[i] of some 0-chain.
  // Position 0 requires init 0; position k requires a delivered round-k
  // decision message from an on-chain agent at position k-1. Distinctness is
  // automatic: an agent has a single first-decision time.
  std::vector<char> on_chain(static_cast<std::size_t>(r.n), 0);
  const int max_time = r.rounds;
  for (int m = 0; m < max_time; ++m) {
    for (AgentId i = 0; i < r.n; ++i) {
      if (t0[static_cast<std::size_t>(i)] != m) continue;
      bool ok = false;
      if (m == 0) {
        ok = r.inits[static_cast<std::size_t>(i)] == Value::zero;
      } else {
        for (AgentId j = 0; j < r.n; ++j) {
          if (j == i || !on_chain[static_cast<std::size_t>(j)]) continue;
          if (t0[static_cast<std::size_t>(j)] != m - 1) continue;
          if (r.delivered[static_cast<std::size_t>(m - 1)]
                         [static_cast<std::size_t>(j)]
                  .contains(i)) {
            ok = true;
            break;
          }
        }
      }
      if (ok) {
        on_chain[static_cast<std::size_t>(i)] = 1;
        out.chain_end_time[static_cast<std::size_t>(i)] = m;
        out.longest = std::max(out.longest, m);
      }
    }
  }
  return out;
}

std::vector<AgentId> longest_zero_chain(const RunRecord& r) {
  const ZeroChainAnalysis a = analyze_zero_chains(r);
  if (a.longest < 0) return {};

  // Walk backwards from an agent ending a longest chain: the predecessor at
  // position m-1 is any on-chain agent whose round-m decision message reached
  // the current agent.
  std::vector<AgentId> chain(static_cast<std::size_t>(a.longest + 1), -1);
  AgentId cur = -1;
  for (AgentId i = 0; i < r.n && cur < 0; ++i)
    if (a.chain_end_time[static_cast<std::size_t>(i)] == a.longest) cur = i;
  EBA_ASSERT(cur >= 0);
  chain[static_cast<std::size_t>(a.longest)] = cur;
  for (int m = a.longest; m > 0; --m) {
    AgentId prev = -1;
    for (AgentId j = 0; j < r.n && prev < 0; ++j) {
      if (j == cur) continue;
      if (a.chain_end_time[static_cast<std::size_t>(j)] == m - 1 &&
          r.delivered[static_cast<std::size_t>(m - 1)]
                     [static_cast<std::size_t>(j)]
              .contains(cur))
        prev = j;
    }
    EBA_ASSERT(prev >= 0);
    chain[static_cast<std::size_t>(m - 1)] = prev;
    cur = prev;
  }
  return chain;
}

}  // namespace eba
