// A precompiled agent renaming: byte-sliced lookup tables mapping a 64-bit
// agent mask to its image in ceil(n/8) table lookups instead of a per-bit
// scatter. The relabel engine (sim/relabel.hpp) permutes thousands of mask
// words per run — every CommGraph row, every delivery set — so the renaming
// is compiled once per permutation and reused across all of them.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "core/agent_set.hpp"

namespace eba {

class Renaming {
 public:
  explicit Renaming(std::vector<AgentId> perm) : perm_(std::move(perm)) {
    const std::size_t n = perm_.size();
    EBA_REQUIRE(n <= static_cast<std::size_t>(kMaxAgents),
                "renaming larger than the agent-id space");
    inv_.resize(n);
    for (std::size_t i = 0; i < n; ++i)
      inv_[static_cast<std::size_t>(perm_[i])] = static_cast<AgentId>(i);
    const std::size_t nbytes = (n + 7) / 8;
    tables_.assign(nbytes * 256, 0);
    for (std::size_t b = 0; b < nbytes; ++b) {
      std::uint64_t* tab = tables_.data() + b * 256;
      // tab[v] = image of byte value v in slice b; built incrementally from
      // the value with its lowest bit cleared.
      for (std::uint32_t v = 1; v < 256; ++v) {
        const std::size_t i =
            b * 8 + static_cast<std::size_t>(std::countr_zero(v));
        std::uint64_t image = 0;
        if (i < n) {
          EBA_REQUIRE(perm_[i] >= 0 && perm_[i] < kMaxAgents,
                      "renaming image out of range");
          image = std::uint64_t{1} << perm_[i];
        }
        tab[v] = tab[v & (v - 1)] | image;
      }
    }
  }

  [[nodiscard]] const std::vector<AgentId>& perm() const { return perm_; }
  [[nodiscard]] std::size_t size() const { return perm_.size(); }
  [[nodiscard]] AgentId operator[](std::size_t i) const { return perm_[i]; }

  /// The inverse permutation (perm[i] = j implies inverse[j] = i),
  /// precomputed at construction so hot relabel loops can borrow it.
  [[nodiscard]] const std::vector<AgentId>& inverse() const { return inv_; }

  /// The image {perm[i] : bit i set} of a mask. Precondition: every set bit
  /// indexes into the renaming.
  [[nodiscard]] std::uint64_t map_bits(std::uint64_t bits) const {
    EBA_REQUIRE(perm_.size() >= 64 || (bits >> perm_.size()) == 0,
                "agent id outside the renaming");
    std::uint64_t out = 0;
    std::size_t b = 0;
    for (std::uint64_t rest = bits; rest; rest >>= 8, ++b)
      out |= tables_[b * 256 + (rest & 0xff)];
    return out;
  }

  [[nodiscard]] AgentSet map(AgentSet s) const {
    return AgentSet(map_bits(s.bits()));
  }

 private:
  std::vector<AgentId> perm_;
  std::vector<AgentId> inv_;
  std::vector<std::uint64_t> tables_;
};

}  // namespace eba
