#include "core/spec.hpp"

#include <optional>

namespace eba {
namespace {

std::string agent(AgentId i) { return "agent " + std::to_string(i); }

}  // namespace

SpecReport check_eba(const RunRecord& r) {
  EBA_REQUIRE(r.n > 0, "empty run record");
  EBA_REQUIRE(static_cast<int>(r.inits.size()) == r.n, "inits size mismatch");
  SpecReport rep;

  // Unique Decision: at most one decide action per agent.
  for (AgentId i = 0; i < r.n; ++i) {
    int decides = 0;
    for (const auto& round : r.actions)
      if (round[static_cast<std::size_t>(i)].is_decide()) ++decides;
    if (decides > 1) {
      rep.unique_decision = false;
      rep.violations.push_back(agent(i) + " decided " + std::to_string(decides) +
                               " times");
    }
  }

  // Agreement: nonfaulty deciders agree.
  std::optional<Value> nonfaulty_value;
  for (AgentId i : r.nonfaulty) {
    auto d = r.decision(i);
    if (!d) continue;
    if (!nonfaulty_value) {
      nonfaulty_value = d->value;
    } else if (*nonfaulty_value != d->value) {
      rep.agreement = false;
      rep.violations.push_back("nonfaulty agents decided both values");
    }
  }

  // Validity: a decider's value must be some agent's initial preference.
  auto exists_init = [&](Value v) {
    for (Value x : r.inits)
      if (x == v) return true;
    return false;
  };
  for (AgentId i = 0; i < r.n; ++i) {
    auto d = r.decision(i);
    if (!d || exists_init(d->value)) continue;
    if (r.nonfaulty.contains(i)) {
      rep.validity = false;
      rep.violations.push_back(agent(i) + " (nonfaulty) decided " +
                               to_string(d->value) + " but no agent prefers it");
    } else {
      rep.validity_all = false;
      rep.violations.push_back(agent(i) + " (faulty) decided " +
                               to_string(d->value) + " but no agent prefers it");
    }
  }

  // Termination: every nonfaulty agent decides; bound: by round t+2.
  for (AgentId i : r.nonfaulty) {
    auto d = r.decision(i);
    if (!d) {
      rep.termination = false;
      rep.termination_bound = false;
      rep.violations.push_back(agent(i) + " (nonfaulty) never decided in " +
                               std::to_string(r.rounds) + " rounds");
    } else if (d->round > r.t + 2) {
      rep.termination_bound = false;
      rep.violations.push_back(agent(i) + " decided in round " +
                               std::to_string(d->round) + " > t+2 = " +
                               std::to_string(r.t + 2));
    }
  }

  return rep;
}

}  // namespace eba
