// 0-chain analysis (paper §6).
//
// A sequence of distinct agents i_0, ..., i_m is a 0-chain of length m in a
// run if (a) init_{i_0} = 0, (b) agent i_k first decides 0 in round k+1, and
// (c) for k >= 1, agent i_k learns in round k that i_{k-1} just decided 0
// (operationally: it received i_{k-1}'s round-k decision message).
//
// These functions analyse a recorded run; they are used by the spec-level
// tests and by the safety-condition checks of Proposition 6.4.
#pragma once

#include <optional>
#include <vector>

#include "core/types.hpp"

namespace eba {

/// Per-agent 0-chain facts for one run.
struct ZeroChainAnalysis {
  /// chain_end_time[i] = m if a 0-chain of length m ends with agent i
  /// (equivalently, i "receives a 0-chain in round m"), or -1.
  std::vector<int> chain_end_time;
  /// Longest 0-chain in the run, or -1 if there is none.
  int longest = -1;

  [[nodiscard]] bool receives_chain(AgentId i, int m) const {
    return chain_end_time[static_cast<std::size_t>(i)] == m;
  }
};

/// Computes 0-chains from the decision/delivery structure of a run.
[[nodiscard]] ZeroChainAnalysis analyze_zero_chains(const RunRecord& record);

/// The agents forming one longest 0-chain (positions 0..longest), or empty if
/// the run has no 0-chain. Useful for diagnostics and tests.
[[nodiscard]] std::vector<AgentId> longest_zero_chain(const RunRecord& record);

}  // namespace eba
