// Small, value-semantic set of agent ids backed by a 64-bit mask.
//
// The library supports up to kMaxAgents agents; every subset of agents that
// the protocols reason about (nonfaulty sets, delivery sets, knowledge sets)
// is an AgentSet. Iteration yields ids in increasing order.
#pragma once

#include <bit>
#include <cstdint>
#include <initializer_list>
#include <vector>

#include "core/assert.hpp"

namespace eba {

using AgentId = int;

inline constexpr int kMaxAgents = 64;

class AgentSet {
 public:
  constexpr AgentSet() = default;
  constexpr explicit AgentSet(std::uint64_t bits) : bits_(bits) {}
  AgentSet(std::initializer_list<AgentId> ids) {
    for (AgentId id : ids) insert(id);
  }

  /// The full set {0, ..., n-1}.
  static AgentSet all(int n) {
    EBA_REQUIRE(n >= 0 && n <= kMaxAgents, "agent count out of range");
    return n == kMaxAgents ? AgentSet(~std::uint64_t{0})
                           : AgentSet((std::uint64_t{1} << n) - 1);
  }

  void insert(AgentId id) {
    EBA_REQUIRE(id >= 0 && id < kMaxAgents, "agent id out of range");
    bits_ |= std::uint64_t{1} << id;
  }
  void erase(AgentId id) {
    EBA_REQUIRE(id >= 0 && id < kMaxAgents, "agent id out of range");
    bits_ &= ~(std::uint64_t{1} << id);
  }
  [[nodiscard]] bool contains(AgentId id) const {
    return id >= 0 && id < kMaxAgents && (bits_ >> id) & 1u;
  }
  [[nodiscard]] int size() const { return std::popcount(bits_); }
  [[nodiscard]] bool empty() const { return bits_ == 0; }
  [[nodiscard]] std::uint64_t bits() const { return bits_; }

  [[nodiscard]] AgentSet united(AgentSet o) const { return AgentSet(bits_ | o.bits_); }
  [[nodiscard]] AgentSet intersected(AgentSet o) const { return AgentSet(bits_ & o.bits_); }
  [[nodiscard]] AgentSet minus(AgentSet o) const { return AgentSet(bits_ & ~o.bits_); }
  [[nodiscard]] AgentSet complement(int n) const { return all(n).minus(*this); }
  [[nodiscard]] bool subset_of(AgentSet o) const { return (bits_ & ~o.bits_) == 0; }

  /// The image {perm[i] : i ∈ this} under an agent renaming (perm[i] = new
  /// id of agent i). Precondition: every member indexes into perm.
  [[nodiscard]] AgentSet permuted(const std::vector<AgentId>& perm) const {
    AgentSet out;
    for (AgentId i : *this) {
      EBA_REQUIRE(static_cast<std::size_t>(i) < perm.size(),
                  "agent id outside the renaming");
      out.insert(perm[static_cast<std::size_t>(i)]);
    }
    return out;
  }

  friend bool operator==(AgentSet, AgentSet) = default;

  /// Forward iterator over member ids in increasing order.
  class iterator {
   public:
    constexpr explicit iterator(std::uint64_t rest) : rest_(rest) {}
    AgentId operator*() const { return std::countr_zero(rest_); }
    iterator& operator++() {
      rest_ &= rest_ - 1;
      return *this;
    }
    friend bool operator==(iterator, iterator) = default;

   private:
    std::uint64_t rest_;
  };
  [[nodiscard]] iterator begin() const { return iterator(bits_); }
  [[nodiscard]] iterator end() const { return iterator(0); }

 private:
  std::uint64_t bits_ = 0;
};

}  // namespace eba
