// Moses–Tuttle communication graphs (paper §7, §A.2.7): the compact
// representation of a full-information exchange.
//
// The graph of agent i at time m records, for every round m' + 1 <= m and
// every ordered pair (j, k), whether i knows the round-(m'+1) message from j
// to k was delivered (label 1), knows it was omitted (label 0), or does not
// know (?). It also records the initial preferences i knows.
//
// Labels encode *delivery* knowledge: under sending omissions, a sender does
// not learn whether its own messages were omitted, so an agent's outgoing
// edges stay `?` until some receiver's report is relayed back. Incoming
// edges are always 0/1 (a synchronous receiver detects absence).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/types.hpp"

namespace eba {

/// Delivery knowledge for one (round, sender, receiver) edge.
enum class Label : std::uint8_t { absent = 0, present = 1, unknown = 2 };

/// Knowledge of one agent's initial preference.
enum class PrefLabel : std::uint8_t { zero = 0, one = 1, unknown = 2 };

[[nodiscard]] constexpr PrefLabel pref_of(Value v) {
  return v == Value::zero ? PrefLabel::zero : PrefLabel::one;
}

class CommGraph {
 public:
  /// The time-0 graph of `self`, knowing only its own preference.
  CommGraph(int n, AgentId self, Value own_init);

  [[nodiscard]] int n() const { return n_; }
  /// Number of rounds covered: edges exist for rounds 1..time().
  [[nodiscard]] int time() const { return time_; }

  /// Label of the edge (from, m) -> (to, m+1), i.e. the round-(m+1) message.
  /// Precondition: 0 <= m < time().
  [[nodiscard]] Label label(int m, AgentId from, AgentId to) const {
    return labels_[index(m, from, to)];
  }
  void set_label(int m, AgentId from, AgentId to, Label l) {
    labels_[index(m, from, to)] = l;
  }

  [[nodiscard]] PrefLabel pref(AgentId j) const {
    return prefs_[static_cast<std::size_t>(j)];
  }
  void set_pref(AgentId j, PrefLabel p) {
    prefs_[static_cast<std::size_t>(j)] = p;
  }

  /// Extends the graph by one round: `self` observed exactly the messages
  /// from `received_from` (self-delivery is implicit). All other new edges
  /// are unknown.
  void advance_round(AgentId self, AgentSet received_from);

  /// Merges another agent's graph (a FIP message) into this one. The other
  /// graph may cover fewer rounds. Conflicting definite labels indicate a
  /// protocol bug and throw.
  void merge(const CommGraph& other);

  /// Uninformative graph of the given shape, used by view extraction.
  static CommGraph blank(int n, int time);

  friend bool operator==(const CommGraph&, const CommGraph&) = default;

  [[nodiscard]] std::size_t hash() const;

  /// Serialized size in bits: two bits per edge label plus two per
  /// preference label (used for Prop 8.1 accounting).
  [[nodiscard]] std::size_t bit_size() const {
    return 2 * labels_.size() + 2 * prefs_.size();
  }

 private:
  [[nodiscard]] std::size_t index(int m, AgentId from, AgentId to) const;

  int n_;
  int time_;
  std::vector<Label> labels_;     ///< time * n * n, round-major
  std::vector<PrefLabel> prefs_;  ///< n
};

}  // namespace eba
