// Moses–Tuttle communication graphs (paper §7, §A.2.7): the compact
// representation of a full-information exchange.
//
// The graph of agent i at time m records, for every round m' + 1 <= m and
// every ordered pair (j, k), whether i knows the round-(m'+1) message from j
// to k was delivered (label 1), knows it was omitted (label 0), or does not
// know (?). It also records the initial preferences i knows.
//
// Labels encode *delivery* knowledge, and the same representation serves
// both omission models; what differs per model is the fault attribution a
// label supports, not the label itself:
//
//   * In either model a sender does not learn whether its own messages
//     arrived, so an agent's outgoing edges stay `?` until some receiver's
//     report is relayed back, and incoming edges are always 0/1 (a
//     synchronous receiver detects absence).
//   * Under sending omissions SO(t), a 0 label convicts the SENDER — only
//     faulty senders lose messages — which is what the f/D fault operators
//     (graph/knowledge.hpp) exploit.
//   * Under general omissions GO(t), a 0 label only proves "sender or
//     receiver faulty" (the message may have been receive-dropped), so
//     fault knowledge becomes clause/vertex-cover reasoning over the same
//     labels (OmissionEvidence / go_known_faults in graph/knowledge.hpp).
//
// Storage is bit-packed in two planes, round-major with one n-bit row per
// (round, receiver):
//
//   known[m][to] — bit `from` set iff the label of (from, m) -> (to, m+1)
//                  is definite (0 or 1),
//   value[m][to] — bit `from` set iff that label is 1 (present).
//
// Since kMaxAgents == 64, each row is exactly one uint64_t word, so a
// receiver row doubles as an AgentSet mask: merge is a handful of word ops
// per row, and the knowledge operators (cone frontiers, fault rows) consume
// whole rows instead of individual labels. The representation is canonical —
// value bits are only ever set under known bits — so default word-wise
// equality and the word-mixing hash agree with label-level equality.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/renaming.hpp"
#include "core/types.hpp"

namespace eba {

/// Delivery knowledge for one (round, sender, receiver) edge.
enum class Label : std::uint8_t { absent = 0, present = 1, unknown = 2 };

/// Knowledge of one agent's initial preference.
enum class PrefLabel : std::uint8_t { zero = 0, one = 1, unknown = 2 };

[[nodiscard]] constexpr PrefLabel pref_of(Value v) {
  return v == Value::zero ? PrefLabel::zero : PrefLabel::one;
}

class CommGraph {
 public:
  /// The time-0 graph of `self`, knowing only its own preference.
  CommGraph(int n, AgentId self, Value own_init);

  [[nodiscard]] int n() const { return n_; }
  /// Number of rounds covered: edges exist for rounds 1..time().
  [[nodiscard]] int time() const { return time_; }

  /// Label of the edge (from, m) -> (to, m+1), i.e. the round-(m+1) message.
  /// Precondition: 0 <= m < time().
  [[nodiscard]] Label label(int m, AgentId from, AgentId to) const {
    const std::uint64_t bit = sender_bit(from);
    const std::size_t r = row(m, to);
    if (!(known_[r] & bit)) return Label::unknown;
    return (value_[r] & bit) ? Label::present : Label::absent;
  }
  void set_label(int m, AgentId from, AgentId to, Label l) {
    const std::uint64_t bit = sender_bit(from);
    const std::size_t r = row(m, to);
    known_[r] &= ~bit;
    value_[r] &= ~bit;
    if (l != Label::unknown) {
      known_[r] |= bit;
      if (l == Label::present) value_[r] |= bit;
    }
    ++revision_;
  }

  [[nodiscard]] PrefLabel pref(AgentId j) const {
    const std::uint64_t bit = sender_bit(j);
    if (!(pref_known_ & bit)) return PrefLabel::unknown;
    return (pref_value_ & bit) ? PrefLabel::one : PrefLabel::zero;
  }
  void set_pref(AgentId j, PrefLabel p) {
    const std::uint64_t bit = sender_bit(j);
    pref_known_ &= ~bit;
    pref_value_ &= ~bit;
    if (p != PrefLabel::unknown) {
      pref_known_ |= bit;
      if (p == PrefLabel::one) pref_value_ |= bit;
    }
    ++revision_;
  }

  // Whole-row accessors: the packed planes as AgentSet masks. These are what
  // the knowledge operators consume; `to`-rows make a cone frontier step one
  // OR per member and a fault-row update one OR per definite-absent row.

  /// Senders whose round-(m+1) message to `to` has a definite label.
  [[nodiscard]] AgentSet known_senders(int m, AgentId to) const {
    return AgentSet(known_[row(m, to)]);
  }
  /// Senders whose round-(m+1) message to `to` is known delivered.
  [[nodiscard]] AgentSet present_senders(int m, AgentId to) const {
    return AgentSet(value_[row(m, to)]);
  }
  /// Senders whose round-(m+1) message to `to` is known omitted.
  [[nodiscard]] AgentSet absent_senders(int m, AgentId to) const {
    const std::size_t r = row(m, to);
    return AgentSet(known_[r] & ~value_[r]);
  }
  /// Overwrites one receiver row. Preconditions: present ⊆ known ⊆ {0..n-1}.
  void set_row(int m, AgentId to, AgentSet known, AgentSet present) {
    EBA_REQUIRE(known.subset_of(AgentSet::all(n_)) && present.subset_of(known),
                "malformed receiver row");
    const std::size_t r = row(m, to);
    known_[r] = known.bits();
    value_[r] = present.bits();
    ++revision_;
  }

  /// Agents whose initial preference is known / known to be 1.
  [[nodiscard]] AgentSet known_prefs() const { return AgentSet(pref_known_); }
  [[nodiscard]] AgentSet one_prefs() const { return AgentSet(pref_value_); }

  /// Extends the graph by one round: `self` observed exactly the messages
  /// from `received_from` (self-delivery is implicit). All other new edges
  /// are unknown.
  void advance_round(AgentId self, AgentSet received_from);

  /// Merges another agent's graph (a FIP message) into this one. The other
  /// graph may cover fewer rounds. Conflicting definite labels indicate a
  /// protocol bug and throw.
  void merge(const CommGraph& other);

  /// Uninformative graph of the given shape, used by view extraction.
  static CommGraph blank(int n, int time);

  /// The graph under the agent renaming π (perm[i] = new id of agent i):
  /// edge (π(from), m) -> (π(to), m+1) carries the label of (from, m) ->
  /// (to, m+1), and π(j)'s preference label is j's. Word-parallel — each
  /// receiver row is one permuted mask move — so relabeling a whole run is
  /// orders of magnitude cheaper than re-simulating it (sim/relabel.hpp).
  [[nodiscard]] CommGraph relabeled(const std::vector<AgentId>& perm) const;

  /// Same renaming through a precompiled Renaming: each mask word moves in
  /// ceil(n/8) table lookups. The relabel engine compiles the renaming once
  /// per run and reuses it for every graph plane (sim/relabel.hpp).
  [[nodiscard]] CommGraph relabeled(const Renaming& ren) const;

  /// Mutation counter: bumped by every set_label/set_pref/set_row/
  /// advance_round/merge. KnowledgeCache keys its memoized cones and fault
  /// tables on (graph address, revision), so derived knowledge is recomputed
  /// only when the graph actually changed.
  [[nodiscard]] std::uint64_t revision() const { return revision_; }

  friend bool operator==(const CommGraph& a, const CommGraph& b) {
    return a.n_ == b.n_ && a.time_ == b.time_ &&
           a.pref_known_ == b.pref_known_ && a.pref_value_ == b.pref_value_ &&
           a.known_ == b.known_ && a.value_ == b.value_;
  }

  [[nodiscard]] std::size_t hash() const;

  /// Serialized size in bits: two bits per edge label plus two per
  /// preference label (used for Prop 8.1 accounting). Independent of the
  /// packed in-memory layout.
  [[nodiscard]] std::size_t bit_size() const {
    return 2 * static_cast<std::size_t>(time_) * static_cast<std::size_t>(n_) *
               static_cast<std::size_t>(n_) +
           2 * static_cast<std::size_t>(n_);
  }

 private:
  [[nodiscard]] std::size_t row(int m, AgentId to) const {
    EBA_REQUIRE(m >= 0 && m < time_, "round out of range");
    EBA_REQUIRE(to >= 0 && to < n_, "agent out of range");
    return static_cast<std::size_t>(m) * static_cast<std::size_t>(n_) +
           static_cast<std::size_t>(to);
  }
  [[nodiscard]] std::uint64_t sender_bit(AgentId from) const {
    EBA_REQUIRE(from >= 0 && from < n_, "agent out of range");
    return std::uint64_t{1} << from;
  }

  int n_;
  int time_;
  std::uint64_t pref_known_ = 0;  ///< bit j: pref of j is definite
  std::uint64_t pref_value_ = 0;  ///< bit j: pref of j is 1 (under known)
  std::uint64_t revision_ = 0;    ///< excluded from equality and hashing
  std::vector<std::uint64_t> known_;  ///< time * n rows, round-major by receiver
  std::vector<std::uint64_t> value_;  ///< same shape; value ⊆ known per row
};

}  // namespace eba
