#include "graph/knowledge.hpp"

namespace eba {

Cone::Cone(const CommGraph& g, AgentId target, int m_top) : m_top_(m_top) {
  EBA_REQUIRE(m_top >= 0 && m_top <= g.time(), "cone top out of range");
  EBA_REQUIRE(target >= 0 && target < g.n(), "agent id out of range");
  members_.assign(static_cast<std::size_t>(m_top) + 1, AgentSet{});
  members_[static_cast<std::size_t>(m_top)].insert(target);
  for (int m = m_top; m > 0; --m) {
    for (AgentId to : members_[static_cast<std::size_t>(m)]) {
      for (AgentId from = 0; from < g.n(); ++from) {
        if (g.label(m - 1, from, to) == Label::present)
          members_[static_cast<std::size_t>(m - 1)].insert(from);
      }
    }
  }
}

int Cone::last_heard(AgentId j) const {
  for (int m = m_top_; m >= 0; --m)
    if (members_[static_cast<std::size_t>(m)].contains(j)) return m;
  return -1;
}

CommGraph extract_view(const CommGraph& g, AgentId j, int m) {
  const Cone cone(g, j, m);
  CommGraph view = CommGraph::blank(g.n(), m);
  for (int m2 = 1; m2 <= m; ++m2) {
    for (AgentId to : cone.at(m2)) {
      for (AgentId from = 0; from < g.n(); ++from) {
        const Label l = g.label(m2 - 1, from, to);
        EBA_REQUIRE(l != Label::unknown,
                    "extract_view target is not in the owner's cone");
        view.set_label(m2 - 1, from, to, l);
      }
    }
  }
  for (AgentId k : cone.at(0)) view.set_pref(k, g.pref(k));
  return view;
}

AgentSet known_faults(const CommGraph& g, AgentId j, int m) {
  EBA_REQUIRE(m >= 0 && m <= g.time(), "time out of range");
  return known_faults_table(g)[static_cast<std::size_t>(m)]
                              [static_cast<std::size_t>(j)];
}

std::vector<std::vector<AgentSet>> known_faults_table(const CommGraph& g) {
  std::vector<std::vector<AgentSet>> f(
      static_cast<std::size_t>(g.time()) + 1,
      std::vector<AgentSet>(static_cast<std::size_t>(g.n())));
  for (int m = 1; m <= g.time(); ++m) {
    for (AgentId j = 0; j < g.n(); ++j) {
      AgentSet acc = f[static_cast<std::size_t>(m - 1)][static_cast<std::size_t>(j)];
      for (AgentId from = 0; from < g.n(); ++from) {
        switch (g.label(m - 1, from, j)) {
          case Label::absent:
            acc.insert(from);
            break;
          case Label::present:
            acc = acc.united(
                f[static_cast<std::size_t>(m - 1)][static_cast<std::size_t>(from)]);
            break;
          case Label::unknown:
            break;
        }
      }
      f[static_cast<std::size_t>(m)][static_cast<std::size_t>(j)] = acc;
    }
  }
  return f;
}

AgentSet distributed_faults(const CommGraph& g, AgentSet s, int m) {
  const auto table = known_faults_table(g);
  AgentSet out;
  for (AgentId k : s)
    out = out.united(table[static_cast<std::size_t>(m)][static_cast<std::size_t>(k)]);
  return out;
}

std::vector<Value> known_values(const CommGraph& g, AgentId j, int m,
                                const Cone& owner_cone) {
  std::vector<Value> out;
  if (!owner_cone.contains(j, m)) return out;
  const Cone jc(g, j, m);
  bool saw0 = false;
  bool saw1 = false;
  for (AgentId k : jc.at(0)) {
    if (g.pref(k) == PrefLabel::zero) saw0 = true;
    if (g.pref(k) == PrefLabel::one) saw1 = true;
  }
  if (saw0) out.push_back(Value::zero);
  if (saw1) out.push_back(Value::one);
  return out;
}

}  // namespace eba
