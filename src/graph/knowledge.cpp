#include "graph/knowledge.hpp"

namespace eba {
namespace {

/// Fault-table rows 0..up_to (inclusive), flat row-major with stride n —
/// the single implementation of the f recurrence, shared by the free query
/// functions and KnowledgeCache. Row m is derived from row m-1 with
/// whole-row masks: the definite-absent senders of (m-1, j) join f(j, m) as
/// one OR, and each definite-present sender contributes its previous row.
std::vector<AgentSet> fault_rows_flat(const CommGraph& g, int up_to) {
  const std::size_t n = static_cast<std::size_t>(g.n());
  std::vector<AgentSet> f((static_cast<std::size_t>(up_to) + 1) * n);
  for (int m = 1; m <= up_to; ++m) {
    const AgentSet* prev = f.data() + (static_cast<std::size_t>(m) - 1) * n;
    AgentSet* cur = f.data() + static_cast<std::size_t>(m) * n;
    for (AgentId j = 0; j < g.n(); ++j) {
      AgentSet acc = prev[j].united(g.absent_senders(m - 1, j));
      for (AgentId from : g.present_senders(m - 1, j))
        acc = acc.united(prev[from]);
      cur[j] = acc;
    }
  }
  return f;
}

/// Evidence-table rows 0..up_to (inclusive), flat row-major with stride n —
/// the GO twin of fault_rows_flat. Row m derives from row m-1 the same way:
/// j's definite-absent round-(m-1→m) senders join as fresh clauses, and each
/// definite-present sender contributes its previous evidence.
std::vector<OmissionEvidence> go_evidence_rows_flat(const CommGraph& g,
                                                    int up_to) {
  const std::size_t n = static_cast<std::size_t>(g.n());
  std::vector<OmissionEvidence> e((static_cast<std::size_t>(up_to) + 1) * n,
                                  OmissionEvidence(g.n()));
  for (int m = 1; m <= up_to; ++m) {
    const OmissionEvidence* prev =
        e.data() + (static_cast<std::size_t>(m) - 1) * n;
    OmissionEvidence* cur = e.data() + static_cast<std::size_t>(m) * n;
    for (AgentId j = 0; j < g.n(); ++j) {
      OmissionEvidence acc = prev[j];
      acc.add_senders(g.absent_senders(m - 1, j), j);
      for (AgentId from : g.present_senders(m - 1, j))
        acc.unite(prev[from]);
      cur[j] = std::move(acc);
    }
  }
  return e;
}

/// Branch-on-an-uncovered-clause search for a <= budget cover avoiding
/// `avoid`. `removed` = endpoints already placed in the cover.
bool cover_search(const OmissionEvidence& e, AgentSet removed, AgentSet avoid,
                  int budget) {
  for (AgentId a = 0; a < e.n(); ++a) {
    if (removed.contains(a)) continue;
    const AgentSet rest = e.adj(a).minus(removed);
    if (rest.empty()) continue;
    if (budget == 0) return false;
    const AgentId b = *rest.begin();
    // The clause {a, b} must be covered by a or b.
    if (!avoid.contains(a) &&
        cover_search(e, removed.united(AgentSet{a}), avoid, budget - 1))
      return true;
    if (!avoid.contains(b) &&
        cover_search(e, removed.united(AgentSet{b}), avoid, budget - 1))
      return true;
    return false;
  }
  return true;  // every clause covered
}

}  // namespace

bool go_cover_exists(const OmissionEvidence& e, int budget, AgentSet avoid) {
  EBA_REQUIRE(budget >= 0, "negative fault budget");
  return cover_search(e, AgentSet{}, avoid, budget);
}

AgentSet go_known_faults(const OmissionEvidence& e, int t) {
  EBA_REQUIRE(go_cover_exists(e, t, AgentSet{}),
              "omission evidence is inconsistent with the GO(t) budget");
  AgentSet forced;
  for (AgentId x : e.implicated())
    if (!go_cover_exists(e, t, AgentSet{x})) forced.insert(x);
  return forced;
}

AgentSet go_possibly_faulty(const OmissionEvidence& e, int t) {
  EBA_REQUIRE(t >= 0, "negative fault budget");
  AgentSet possible;
  if (t == 0) return possible;
  for (AgentId x = 0; x < e.n(); ++x)
    // A cover containing x: x covers its own clauses, the rest must be
    // coverable with the remaining budget.
    if (cover_search(e, AgentSet{x}, AgentSet{}, t - 1)) possible.insert(x);
  return possible;
}

OmissionEvidence go_evidence(const CommGraph& g, AgentId j, int m) {
  EBA_REQUIRE(m >= 0 && m <= g.time(), "time out of range");
  EBA_REQUIRE(j >= 0 && j < g.n(), "agent id out of range");
  const auto rows = go_evidence_rows_flat(g, m);
  return rows[static_cast<std::size_t>(m) * static_cast<std::size_t>(g.n()) +
              static_cast<std::size_t>(j)];
}

std::vector<std::vector<OmissionEvidence>> go_evidence_table(
    const CommGraph& g) {
  const std::size_t n = static_cast<std::size_t>(g.n());
  const auto flat = go_evidence_rows_flat(g, g.time());
  std::vector<std::vector<OmissionEvidence>> e(
      static_cast<std::size_t>(g.time()) + 1);
  for (std::size_t m = 0; m < e.size(); ++m)
    e[m].assign(flat.begin() + static_cast<std::ptrdiff_t>(m * n),
                flat.begin() + static_cast<std::ptrdiff_t>((m + 1) * n));
  return e;
}

Cone::Cone(const CommGraph& g, AgentId target, int m_top)
    : m_top_(m_top), last_heard_(static_cast<std::size_t>(g.n()), -1) {
  EBA_REQUIRE(m_top >= 0 && m_top <= g.time(), "cone top out of range");
  EBA_REQUIRE(target >= 0 && target < g.n(), "agent id out of range");
  members_.assign(static_cast<std::size_t>(m_top) + 1, AgentSet{});
  members_[static_cast<std::size_t>(m_top)].insert(target);
  for (int m = m_top; m > 0; --m) {
    AgentSet frontier;
    for (AgentId to : members_[static_cast<std::size_t>(m)])
      frontier = frontier.united(g.present_senders(m - 1, to));
    members_[static_cast<std::size_t>(m - 1)] = frontier;
  }
  AgentSet unseen = AgentSet::all(g.n());
  for (int m = m_top; m >= 0 && !unseen.empty(); --m) {
    for (AgentId j : members_[static_cast<std::size_t>(m)].intersected(unseen))
      last_heard_[static_cast<std::size_t>(j)] = m;
    unseen = unseen.minus(members_[static_cast<std::size_t>(m)]);
  }
}

void KnowledgeCache::sync(const CommGraph& g) {
  if (graph_ == &g && revision_ == g.revision()) return;
  graph_ = &g;
  revision_ = g.revision();
  have_faults_ = false;
  faults_.clear();
  have_go_evidence_ = false;
  go_evidence_.clear();
  cones_.clear();
}

std::span<const AgentSet> KnowledgeCache::fault_row(const CommGraph& g, int m) {
  sync(g);
  const std::size_t n = static_cast<std::size_t>(g.n());
  if (!have_faults_) {
    faults_ = fault_rows_flat(g, g.time());
    have_faults_ = true;
  }
  EBA_REQUIRE(m >= 0 && m <= g.time(), "time out of range");
  return {faults_.data() + static_cast<std::size_t>(m) * n, n};
}

std::span<const OmissionEvidence> KnowledgeCache::go_evidence_row(
    const CommGraph& g, int m) {
  sync(g);
  const std::size_t n = static_cast<std::size_t>(g.n());
  if (!have_go_evidence_) {
    go_evidence_ = go_evidence_rows_flat(g, g.time());
    have_go_evidence_ = true;
  }
  EBA_REQUIRE(m >= 0 && m <= g.time(), "time out of range");
  return {go_evidence_.data() + static_cast<std::size_t>(m) * n, n};
}

const Cone& KnowledgeCache::cone(const CommGraph& g, AgentId target, int m_top) {
  sync(g);
  if (cones_.empty()) {
    cone_stride_ = g.time() + 1;
    cones_.resize(static_cast<std::size_t>(g.n()) *
                  static_cast<std::size_t>(cone_stride_));
  }
  EBA_REQUIRE(target >= 0 && target < g.n(), "agent out of range");
  EBA_REQUIRE(m_top >= 0 && m_top < cone_stride_, "time out of range");
  auto& cell = cones_[static_cast<std::size_t>(target) *
                          static_cast<std::size_t>(cone_stride_) +
                      static_cast<std::size_t>(m_top)];
  if (!cell) cell.emplace(g, target, m_top);
  return *cell;
}

namespace {

CommGraph extract_view_from_cone(const CommGraph& g, const Cone& cone, int m) {
  CommGraph view = CommGraph::blank(g.n(), m);
  const AgentSet full = AgentSet::all(g.n());
  for (int m2 = 1; m2 <= m; ++m2) {
    for (AgentId to : cone.at(m2)) {
      const AgentSet known = g.known_senders(m2 - 1, to);
      EBA_REQUIRE(known == full,
                  "extract_view target is not in the owner's cone");
      view.set_row(m2 - 1, to, known, g.present_senders(m2 - 1, to));
    }
  }
  for (AgentId k : cone.at(0)) view.set_pref(k, g.pref(k));
  return view;
}

}  // namespace

CommGraph extract_view(const CommGraph& g, AgentId j, int m) {
  return extract_view_from_cone(g, Cone(g, j, m), m);
}

CommGraph extract_view(const CommGraph& g, AgentId j, int m,
                       KnowledgeCache& cache) {
  return extract_view_from_cone(g, cache.cone(g, j, m), m);
}

AgentSet known_faults(const CommGraph& g, AgentId j, int m) {
  EBA_REQUIRE(m >= 0 && m <= g.time(), "time out of range");
  EBA_REQUIRE(j >= 0 && j < g.n(), "agent id out of range");
  const auto rows = fault_rows_flat(g, m);
  return rows[static_cast<std::size_t>(m) * static_cast<std::size_t>(g.n()) +
              static_cast<std::size_t>(j)];
}

std::vector<std::vector<AgentSet>> known_faults_table(const CommGraph& g) {
  const std::size_t n = static_cast<std::size_t>(g.n());
  const auto flat = fault_rows_flat(g, g.time());
  std::vector<std::vector<AgentSet>> f(static_cast<std::size_t>(g.time()) + 1);
  for (std::size_t m = 0; m < f.size(); ++m)
    f[m].assign(flat.begin() + static_cast<std::ptrdiff_t>(m * n),
                flat.begin() + static_cast<std::ptrdiff_t>((m + 1) * n));
  return f;
}

AgentSet distributed_faults(const CommGraph& g, AgentSet s, int m) {
  EBA_REQUIRE(m >= 0 && m <= g.time(), "time out of range");
  const auto rows = fault_rows_flat(g, m);
  const AgentSet* row =
      rows.data() + static_cast<std::size_t>(m) * static_cast<std::size_t>(g.n());
  AgentSet out;
  for (AgentId k : s) out = out.united(row[k]);
  return out;
}

AgentSet cone_roots(const CommGraph& g, AgentId j, int m) {
  EBA_REQUIRE(m >= 0 && m <= g.time(), "cone top out of range");
  EBA_REQUIRE(j >= 0 && j < g.n(), "agent id out of range");
  AgentSet frontier{j};
  for (int m2 = m; m2 > 0; --m2) {
    AgentSet next;
    for (AgentId to : frontier) next = next.united(g.present_senders(m2 - 1, to));
    frontier = next;
  }
  return frontier;
}

std::vector<Value> known_values(const CommGraph& g, AgentId j, int m,
                                const Cone& owner_cone) {
  std::vector<Value> out;
  if (!owner_cone.contains(j, m)) return out;
  const AgentSet roots = cone_roots(g, j, m);
  const AgentSet zeros = roots.intersected(g.known_prefs().minus(g.one_prefs()));
  const AgentSet ones = roots.intersected(g.known_prefs().intersected(g.one_prefs()));
  if (!zeros.empty()) out.push_back(Value::zero);
  if (!ones.empty()) out.push_back(Value::one);
  return out;
}

}  // namespace eba
