#include "graph/comm_graph.hpp"

namespace eba {

CommGraph::CommGraph(int n, AgentId self, Value own_init)
    : n_(n), time_(0), prefs_(static_cast<std::size_t>(n), PrefLabel::unknown) {
  EBA_REQUIRE(n >= 1 && n <= kMaxAgents, "agent count out of range");
  EBA_REQUIRE(self >= 0 && self < n, "agent id out of range");
  prefs_[static_cast<std::size_t>(self)] = pref_of(own_init);
}

CommGraph CommGraph::blank(int n, int time) {
  CommGraph g(n, 0, Value::zero);
  g.prefs_.assign(static_cast<std::size_t>(n), PrefLabel::unknown);
  g.time_ = time;
  g.labels_.assign(static_cast<std::size_t>(time) * static_cast<std::size_t>(n) *
                       static_cast<std::size_t>(n),
                   Label::unknown);
  return g;
}

std::size_t CommGraph::index(int m, AgentId from, AgentId to) const {
  EBA_REQUIRE(m >= 0 && m < time_, "round out of range");
  EBA_REQUIRE(from >= 0 && from < n_ && to >= 0 && to < n_, "agent out of range");
  return (static_cast<std::size_t>(m) * static_cast<std::size_t>(n_) +
          static_cast<std::size_t>(from)) *
             static_cast<std::size_t>(n_) +
         static_cast<std::size_t>(to);
}

void CommGraph::advance_round(AgentId self, AgentSet received_from) {
  EBA_REQUIRE(self >= 0 && self < n_, "agent id out of range");
  const int m = time_;
  time_ += 1;
  labels_.resize(static_cast<std::size_t>(time_) * static_cast<std::size_t>(n_) *
                     static_cast<std::size_t>(n_),
                 Label::unknown);
  for (AgentId from = 0; from < n_; ++from) {
    const bool got = from == self || received_from.contains(from);
    set_label(m, from, self, got ? Label::present : Label::absent);
  }
}

void CommGraph::merge(const CommGraph& other) {
  EBA_REQUIRE(other.n_ == n_, "merging graphs of different systems");
  EBA_REQUIRE(other.time_ <= time_, "merging a graph from the future");
  for (int m = 0; m < other.time_; ++m) {
    for (AgentId from = 0; from < n_; ++from) {
      for (AgentId to = 0; to < n_; ++to) {
        const Label theirs = other.label(m, from, to);
        if (theirs == Label::unknown) continue;
        const Label mine = label(m, from, to);
        EBA_REQUIRE(mine == Label::unknown || mine == theirs,
                    "inconsistent delivery observations");
        set_label(m, from, to, theirs);
      }
    }
  }
  for (AgentId j = 0; j < n_; ++j) {
    const PrefLabel theirs = other.pref(j);
    if (theirs == PrefLabel::unknown) continue;
    const PrefLabel mine = pref(j);
    EBA_REQUIRE(mine == PrefLabel::unknown || mine == theirs,
                "inconsistent preference observations");
    set_pref(j, theirs);
  }
}

std::size_t CommGraph::hash() const {
  std::size_t h = static_cast<std::size_t>(n_) * 1315423911u +
                  static_cast<std::size_t>(time_);
  for (Label l : labels_) h = h * 1099511628211ull + static_cast<std::size_t>(l);
  for (PrefLabel p : prefs_) h = h * 1099511628211ull + static_cast<std::size_t>(p);
  return h;
}

}  // namespace eba
