#include "graph/comm_graph.hpp"

namespace eba {
namespace {

/// splitmix64 finalizer: one multiply-xorshift round per 64-bit word, a far
/// better mixer per cycle than the old byte-at-a-time FNV walk over labels.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

CommGraph::CommGraph(int n, AgentId self, Value own_init) : n_(n), time_(0) {
  EBA_REQUIRE(n >= 1 && n <= kMaxAgents, "agent count out of range");
  EBA_REQUIRE(self >= 0 && self < n, "agent id out of range");
  set_pref(self, pref_of(own_init));
}

CommGraph CommGraph::blank(int n, int time) {
  CommGraph g(n, 0, Value::zero);
  g.pref_known_ = 0;
  g.pref_value_ = 0;
  g.time_ = time;
  g.known_.assign(static_cast<std::size_t>(time) * static_cast<std::size_t>(n), 0);
  g.value_.assign(static_cast<std::size_t>(time) * static_cast<std::size_t>(n), 0);
  return g;
}

void CommGraph::advance_round(AgentId self, AgentSet received_from) {
  EBA_REQUIRE(self >= 0 && self < n_, "agent id out of range");
  const int m = time_;
  time_ += 1;
  const std::size_t words =
      static_cast<std::size_t>(time_) * static_cast<std::size_t>(n_);
  known_.resize(words, 0);
  value_.resize(words, 0);
  // Every incoming edge of `self` becomes definite in one row write:
  // delivered senders (plus the implicit self-loop) present, the rest absent.
  const std::size_t r = row(m, self);
  known_[r] = AgentSet::all(n_).bits();
  value_[r] = (received_from.bits() | (std::uint64_t{1} << self)) &
              AgentSet::all(n_).bits();
  ++revision_;
}

void CommGraph::merge(const CommGraph& other) {
  EBA_REQUIRE(other.n_ == n_, "merging graphs of different systems");
  EBA_REQUIRE(other.time_ <= time_, "merging a graph from the future");
  // Rows are round-major with identical n, so the other graph's words align
  // with the prefix of ours. Per word: a conflict is a sender bit both sides
  // know with different values; absent that, the union is two ORs.
  const std::size_t words =
      static_cast<std::size_t>(other.time_) * static_cast<std::size_t>(n_);
  for (std::size_t i = 0; i < words; ++i) {
    EBA_REQUIRE(
        (known_[i] & other.known_[i] & (value_[i] ^ other.value_[i])) == 0,
        "inconsistent delivery observations");
    known_[i] |= other.known_[i];
    value_[i] |= other.value_[i];
  }
  EBA_REQUIRE((pref_known_ & other.pref_known_ &
               (pref_value_ ^ other.pref_value_)) == 0,
              "inconsistent preference observations");
  pref_known_ |= other.pref_known_;
  pref_value_ |= other.pref_value_;
  ++revision_;
}

CommGraph CommGraph::relabeled(const std::vector<AgentId>& perm) const {
  EBA_REQUIRE(static_cast<int>(perm.size()) == n_,
              "permutation size mismatch");
  CommGraph out(*this);
  out.pref_known_ = AgentSet(pref_known_).permuted(perm).bits();
  out.pref_value_ = AgentSet(pref_value_).permuted(perm).bits();
  for (int m = 0; m < time_; ++m)
    for (AgentId to = 0; to < n_; ++to) {
      const std::size_t dst = out.row(m, perm[static_cast<std::size_t>(to)]);
      const std::size_t src = row(m, to);
      out.known_[dst] = AgentSet(known_[src]).permuted(perm).bits();
      out.value_[dst] = AgentSet(value_[src]).permuted(perm).bits();
    }
  ++out.revision_;
  return out;
}

CommGraph CommGraph::relabeled(const Renaming& ren) const {
  EBA_REQUIRE(static_cast<int>(ren.size()) == n_,
              "permutation size mismatch");
  CommGraph out(*this);
  out.pref_known_ = ren.map_bits(pref_known_);
  out.pref_value_ = ren.map_bits(pref_value_);
  for (int m = 0; m < time_; ++m)
    for (AgentId to = 0; to < n_; ++to) {
      const std::size_t dst = out.row(m, ren[static_cast<std::size_t>(to)]);
      const std::size_t src = row(m, to);
      out.known_[dst] = ren.map_bits(known_[src]);
      out.value_[dst] = ren.map_bits(value_[src]);
    }
  ++out.revision_;
  return out;
}

std::size_t CommGraph::hash() const {
  std::uint64_t h = mix64((static_cast<std::uint64_t>(n_) << 32) |
                          static_cast<std::uint64_t>(time_));
  for (std::uint64_t w : known_) h = mix64(h ^ w);
  for (std::uint64_t w : value_) h = mix64(h ^ w);
  h = mix64(h ^ pref_known_);
  h = mix64(h ^ pref_value_);
  return static_cast<std::size_t>(h);
}

}  // namespace eba
