// Inferred-action table d(j, m, G) (paper §A.2.7).
//
// In a full-information exchange, an agent that hears from (j, m) can
// reconstruct j's local state at time m and — because the action protocol is
// deterministic — re-derive j's action in round m+1. This table caches those
// inferences: entry (j, m) is the action j performs in round m+1, or
// `unknown` if it has not been inferred. Lookups must be gated by
// reachability in the graph being evaluated (d(j, m, G) = ? when (j, m) is
// not in G's cone); see POpt.
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.hpp"

namespace eba {

enum class KnownAction : std::uint8_t { unknown = 0, noop, decide0, decide1 };

[[nodiscard]] constexpr KnownAction to_known(const Action& a) {
  if (!a.is_decide()) return KnownAction::noop;
  return a.value() == Value::zero ? KnownAction::decide0 : KnownAction::decide1;
}

[[nodiscard]] constexpr bool is_decide(KnownAction a) {
  return a == KnownAction::decide0 || a == KnownAction::decide1;
}

class ActionTable {
 public:
  /// Grows the table to cover agents 0..n-1 and times 0..time.
  void ensure(int n, int time) {
    rows_.resize(static_cast<std::size_t>(n));
    for (auto& row : rows_)
      if (static_cast<int>(row.size()) <= time)
        row.resize(static_cast<std::size_t>(time) + 1, KnownAction::unknown);
  }

  [[nodiscard]] KnownAction get(AgentId j, int m) const {
    if (j < 0 || static_cast<std::size_t>(j) >= rows_.size() || m < 0 ||
        static_cast<std::size_t>(m) >= rows_[static_cast<std::size_t>(j)].size())
      return KnownAction::unknown;
    return rows_[static_cast<std::size_t>(j)][static_cast<std::size_t>(m)];
  }

  void set(AgentId j, int m, KnownAction a) {
    EBA_REQUIRE(j >= 0 && static_cast<std::size_t>(j) < rows_.size() && m >= 0,
                "action table index out of range");
    EBA_REQUIRE(static_cast<std::size_t>(m) < rows_[static_cast<std::size_t>(j)].size(),
                "action table time out of range");
    rows_[static_cast<std::size_t>(j)][static_cast<std::size_t>(m)] = a;
  }

  /// True iff j is known to have performed a decision in some round <= m+1
  /// (i.e. an inferred decide action at a time <= m). m may be -1.
  [[nodiscard]] bool decided_by(AgentId j, int m) const {
    for (int m2 = 0; m2 <= m; ++m2)
      if (is_decide(get(j, m2))) return true;
    return false;
  }

 private:
  std::vector<std::vector<KnownAction>> rows_;
};

}  // namespace eba
