// Inferred-action table d(j, m, G) (paper §A.2.7).
//
// In a full-information exchange, an agent that hears from (j, m) can
// reconstruct j's local state at time m and — because the action protocol is
// deterministic — re-derive j's action in round m+1. This table caches those
// inferences: entry (j, m) is the action j performs in round m+1, or
// `unknown` if it has not been inferred. Lookups must be gated by
// reachability in the graph being evaluated (d(j, m, G) = ? when (j, m) is
// not in G's cone); see POpt.
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.hpp"

namespace eba {

enum class KnownAction : std::uint8_t { unknown = 0, noop, decide0, decide1 };

[[nodiscard]] constexpr KnownAction to_known(const Action& a) {
  if (!a.is_decide()) return KnownAction::noop;
  return a.value() == Value::zero ? KnownAction::decide0 : KnownAction::decide1;
}

[[nodiscard]] constexpr bool is_decide(KnownAction a) {
  return a == KnownAction::decide0 || a == KnownAction::decide1;
}

class ActionTable {
 public:
  /// Grows the table to cover agents 0..n-1 and times 0..time. The agent
  /// count is fixed by the first call; storage is time-major (one n-entry
  /// slab per time) so growth appends slabs without relayout and a state
  /// snapshot copies one flat vector instead of n nested ones.
  void ensure(int n, int time) {
    EBA_REQUIRE(n_ == 0 || n_ == n, "action table agent count changed");
    n_ = n;
    if (static_cast<int>(decide0_.size()) <= time) {
      entries_.resize((static_cast<std::size_t>(time) + 1) *
                          static_cast<std::size_t>(n),
                      KnownAction::unknown);
      decide0_.resize(static_cast<std::size_t>(time) + 1);
      decide1_.resize(static_cast<std::size_t>(time) + 1);
    }
  }

  [[nodiscard]] KnownAction get(AgentId j, int m) const {
    if (j < 0 || j >= n_ || m < 0 ||
        static_cast<std::size_t>(m) >= decide0_.size())
      return KnownAction::unknown;
    return entries_[index(j, m)];
  }

  void set(AgentId j, int m, KnownAction a) {
    EBA_REQUIRE(j >= 0 && j < n_ && m >= 0 &&
                    static_cast<std::size_t>(m) < decide0_.size(),
                "action table index out of range");
    entries_[index(j, m)] = a;
    decide0_[static_cast<std::size_t>(m)].erase(j);
    decide1_[static_cast<std::size_t>(m)].erase(j);
    if (a == KnownAction::decide0) decide0_[static_cast<std::size_t>(m)].insert(j);
    if (a == KnownAction::decide1) decide1_[static_cast<std::size_t>(m)].insert(j);
  }

  /// Agents with an inferred decide(0) / decide(1) entry at time m, as a
  /// mask — lets the P_opt tests intersect whole rounds against cone levels
  /// instead of probing (j, m) pairs one by one. Out-of-range m is empty.
  [[nodiscard]] AgentSet deciders0(int m) const {
    return m >= 0 && static_cast<std::size_t>(m) < decide0_.size()
               ? decide0_[static_cast<std::size_t>(m)]
               : AgentSet{};
  }
  [[nodiscard]] AgentSet deciders1(int m) const {
    return m >= 0 && static_cast<std::size_t>(m) < decide1_.size()
               ? decide1_[static_cast<std::size_t>(m)]
               : AgentSet{};
  }
  [[nodiscard]] AgentSet deciders(int m) const {
    return deciders0(m).united(deciders1(m));
  }

  /// True iff j is known to have performed a decision in some round <= m+1
  /// (i.e. an inferred decide action at a time <= m). m may be -1.
  [[nodiscard]] bool decided_by(AgentId j, int m) const {
    for (int m2 = 0; m2 <= m; ++m2)
      if (is_decide(get(j, m2))) return true;
    return false;
  }

 private:
  [[nodiscard]] std::size_t index(AgentId j, int m) const {
    return static_cast<std::size_t>(m) * static_cast<std::size_t>(n_) +
           static_cast<std::size_t>(j);
  }

  int n_ = 0;
  std::vector<KnownAction> entries_;  ///< (time+1) * n, time-major
  std::vector<AgentSet> decide0_;     ///< by time: mask of decide0 entries
  std::vector<AgentSet> decide1_;     ///< by time: mask of decide1 entries
};

}  // namespace eba
