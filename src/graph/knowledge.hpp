// Knowledge operators over communication graphs (paper §A.2.7):
//
//   cone         — the hears-from cone of a node (Def. A.1)
//   extract_view — G_{j,m'}: the graph agent j had at time m', reconstructed
//                  from the graph of an agent that heard from (j, m')
//   known_faults — f(j, m', G): faulty agents the graph owner knows that j
//                  knew about at time m'
//   distributed_faults — D(S, m', G)
//   known_values — V(j, m', G): initial values the owner knows j knew
//   last_heard   — last_{ij}: the last time m' with (j, m') in the cone
//
// All of these are polynomial-time in the size of the graph; they are the
// machinery behind the polynomial-time optimal FIP P_opt (Prop. 7.9). They
// consume the graph's packed receiver rows word-parallel: a cone frontier
// step is one OR per frontier member and a fault-row update one OR per
// definite-absent row.
//
// KnowledgeCache memoizes cones and the fault table per graph *revision*, so
// the P_opt tests — which interrogate the same graph several times per round
// — rebuild derived knowledge only when the graph actually changes.
#pragma once

#include <span>
#include <unordered_map>
#include <vector>

#include "graph/comm_graph.hpp"

namespace eba {

/// The hears-from cone of (target, m_top): cone.at(m') is the set of agents j
/// with (j, m') ->_r (target, m_top), where the relation follows label-1
/// edges forward in time. Contains (target, m_top) itself.
///
/// Built by backward frontier propagation: the frontier at time m'-1 is the
/// union of the present-sender rows of the frontier members at m', one word
/// OR per member. last_{ij} is precomputed for all j during construction.
class Cone {
 public:
  Cone(const CommGraph& g, AgentId target, int m_top);

  [[nodiscard]] bool contains(AgentId j, int m) const {
    return m >= 0 && m <= m_top_ && members_[static_cast<std::size_t>(m)].contains(j);
  }
  [[nodiscard]] AgentSet at(int m) const {
    EBA_REQUIRE(m >= 0 && m <= m_top_, "time out of range");
    return members_[static_cast<std::size_t>(m)];
  }
  [[nodiscard]] int top() const { return m_top_; }

  /// last_{ij}: the greatest m with (j, m) in the cone, or -1 if j was never
  /// heard from. O(1): precomputed during construction.
  [[nodiscard]] int last_heard(AgentId j) const {
    EBA_REQUIRE(j >= 0 && static_cast<std::size_t>(j) < last_heard_.size(),
                "agent id out of range");
    return last_heard_[static_cast<std::size_t>(j)];
  }

 private:
  int m_top_;
  std::vector<AgentSet> members_;  ///< by time 0..m_top
  std::vector<int> last_heard_;    ///< by agent, -1 if absent everywhere
};

/// Revision-keyed memo of the derived knowledge of ONE graph: the f table
/// and the cones already requested. Methods take the graph so the cache can
/// detect staleness via CommGraph::revision() and rebuild lazily; a cache
/// must only ever be used with the graph it lives next to (FipState owns one
/// per agent graph).
///
/// Copies start empty: the simulator snapshots agent states every round, and
/// duplicating memoized cones into history would cost more than recomputing
/// the rare entries a copy ever asks for. Moves keep their contents.
class KnowledgeCache {
 public:
  KnowledgeCache() = default;
  KnowledgeCache(const KnowledgeCache&) {}
  KnowledgeCache& operator=(const KnowledgeCache&) {
    graph_ = nullptr;
    have_faults_ = false;
    faults_.clear();
    cones_.clear();
    return *this;
  }
  KnowledgeCache(KnowledgeCache&&) = default;
  KnowledgeCache& operator=(KnowledgeCache&&) = default;

  /// Row m of the f table of `g` (entry [j] = f(j, m, g)). The whole table
  /// is computed at most once per graph revision, flat in one allocation.
  [[nodiscard]] std::span<const AgentSet> fault_row(const CommGraph& g, int m);

  /// The cone of (target, m_top) in `g`, memoized per (target, m_top) until
  /// the graph changes. Worth it only for cones consulted repeatedly (the
  /// P_opt tests all interrogate (self, time)); one-shot cones are cheaper
  /// built directly.
  [[nodiscard]] const Cone& cone(const CommGraph& g, AgentId target, int m_top);

 private:
  void sync(const CommGraph& g);

  /// Graph identity + revision at the last sync. The address is only ever
  /// compared, never dereferenced, so a cache outliving its graph is safe
  /// (it just invalidates). Distinct graphs routinely share revision values
  /// (agents mutate in lockstep), so the address check is what catches a
  /// cache handed a different graph than the one it memoized.
  const CommGraph* graph_ = nullptr;
  std::uint64_t revision_ = 0;
  bool have_faults_ = false;
  std::vector<AgentSet> faults_;  ///< (time+1) rows of n, row-major
  std::unordered_map<std::uint64_t, Cone> cones_;  ///< key: target << 32 | m_top
};

/// Reconstructs G_{j,m'} from `g`. Precondition: (j, m') is in the cone of
/// g's owner (i.e. `owner_cone.contains(j, m')`), so every edge into the
/// extracted cone carries a definite label in `g`.
[[nodiscard]] CommGraph extract_view(const CommGraph& g, AgentId j, int m);
/// As above, but reuses/memoizes the (j, m) cone through `cache`.
[[nodiscard]] CommGraph extract_view(const CommGraph& g, AgentId j, int m,
                                     KnowledgeCache& cache);

/// f(j, m, g): the faulty agents the owner of g knows that j knew about at
/// time m (paper §7). f(j, 0, g) is empty; for m > 0 it is the union of the
/// senders whose round-m messages to j are known omitted, the knowledge of
/// the senders whose round-m messages to j are known delivered, and
/// f(j, m-1, g). Computes only rows 0..m, not the full table.
[[nodiscard]] AgentSet known_faults(const CommGraph& g, AgentId j, int m);

/// The full f table: entry [m][j] = f(j, m, g), for m in 0..g.time().
[[nodiscard]] std::vector<std::vector<AgentSet>> known_faults_table(
    const CommGraph& g);

/// D(S, m, g) = union over k in S of f(k, m, g). Computes rows 0..m only.
[[nodiscard]] AgentSet distributed_faults(const CommGraph& g, AgentSet s, int m);

/// The time-0 level of the cone of (j, m): the agents whose initial values
/// reached (j, m). A plain backward frontier walk — no cone object, no
/// allocations — for callers that only need the roots (known_values).
[[nodiscard]] AgentSet cone_roots(const CommGraph& g, AgentId j, int m);

/// V(j, m, g): the set of initial values the owner knows j knew at time m.
/// Per the paper this is empty unless (j, m) is in the owner's cone; the
/// caller supplies the owner's cone to enforce that.
[[nodiscard]] std::vector<Value> known_values(const CommGraph& g, AgentId j,
                                              int m, const Cone& owner_cone);

}  // namespace eba
