// Knowledge operators over communication graphs (paper §A.2.7):
//
//   cone         — the hears-from cone of a node (Def. A.1)
//   extract_view — G_{j,m'}: the graph agent j had at time m', reconstructed
//                  from the graph of an agent that heard from (j, m')
//   known_faults — f(j, m', G): faulty agents the graph owner knows that j
//                  knew about at time m' (sending-omissions attribution: an
//                  absent edge convicts its sender)
//   distributed_faults — D(S, m', G)
//   known_values — V(j, m', G): initial values the owner knows j knew
//   last_heard   — last_{ij}: the last time m' with (j, m') in the cone
//
// plus the general-omissions fault machinery: under GO an absent edge
// (i → j) only proves "i or j is faulty", so fault knowledge is clause
// (vertex-cover) reasoning instead of direct sender blame:
//
//   OmissionEvidence   — the symmetric missing-edge clause set an agent has
//                        accumulated (one clause {sender, receiver} per
//                        definite-absent edge it knows of)
//   go_evidence / go_evidence_rows — the GO analogue of the f recurrence:
//                        the clause set the owner knows j had at time m'
//   go_cover_exists    — is the evidence explainable by <= budget faults
//                        avoiding a given agent set?
//   go_known_faults    — agents in *every* <= t cover of the evidence (the
//                        faults an agent provably knows under GO(t))
//
// All of these are polynomial-time in the size of the graph for fixed t
// (the cover search branches two ways per spent budget unit, so it costs
// O(2^t · n) word operations per query); they are the machinery behind the
// polynomial-time protocols P_opt (Prop. 7.9) and its GO variant. They
// consume the graph's packed receiver rows word-parallel: a cone frontier
// step is one OR per frontier member and a fault-row or evidence-row update
// one OR per definite-absent row.
//
// KnowledgeCache memoizes cones, the fault table and the GO evidence table
// per graph *revision*, so the P_opt tests — which interrogate the same
// graph several times per round — rebuild derived knowledge only when the
// graph actually changes.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "graph/comm_graph.hpp"

namespace eba {

/// The hears-from cone of (target, m_top): cone.at(m') is the set of agents j
/// with (j, m') ->_r (target, m_top), where the relation follows label-1
/// edges forward in time. Contains (target, m_top) itself.
///
/// Built by backward frontier propagation: the frontier at time m'-1 is the
/// union of the present-sender rows of the frontier members at m', one word
/// OR per member. last_{ij} is precomputed for all j during construction.
class Cone {
 public:
  Cone(const CommGraph& g, AgentId target, int m_top);

  [[nodiscard]] bool contains(AgentId j, int m) const {
    return m >= 0 && m <= m_top_ && members_[static_cast<std::size_t>(m)].contains(j);
  }
  [[nodiscard]] AgentSet at(int m) const {
    EBA_REQUIRE(m >= 0 && m <= m_top_, "time out of range");
    return members_[static_cast<std::size_t>(m)];
  }
  [[nodiscard]] int top() const { return m_top_; }

  /// last_{ij}: the greatest m with (j, m) in the cone, or -1 if j was never
  /// heard from. O(1): precomputed during construction.
  [[nodiscard]] int last_heard(AgentId j) const {
    EBA_REQUIRE(j >= 0 && static_cast<std::size_t>(j) < last_heard_.size(),
                "agent id out of range");
    return last_heard_[static_cast<std::size_t>(j)];
  }

 private:
  int m_top_;
  std::vector<AgentSet> members_;  ///< by time 0..m_top
  std::vector<int> last_heard_;    ///< by agent, -1 if absent everywhere
};

/// Symmetric missing-edge evidence under general omissions: one clause
/// {a, b} per definite-absent edge (a → b) the evidence holder knows of,
/// stored as an adjacency mask per agent (adj(a) contains b iff some clause
/// pairs them). The round of the missing edge is deliberately dropped: a
/// fault set explains the evidence iff it covers every clause, regardless
/// of when the drop happened.
class OmissionEvidence {
 public:
  OmissionEvidence() = default;
  explicit OmissionEvidence(int n)
      : adj_(static_cast<std::size_t>(n)) {}

  [[nodiscard]] int n() const { return static_cast<int>(adj_.size()); }
  [[nodiscard]] AgentSet adj(AgentId a) const {
    return adj_[static_cast<std::size_t>(a)];
  }
  /// Agents appearing in at least one clause.
  [[nodiscard]] AgentSet implicated() const {
    AgentSet out;
    for (AgentId a = 0; a < n(); ++a)
      if (!adj_[static_cast<std::size_t>(a)].empty()) out.insert(a);
    return out;
  }
  [[nodiscard]] bool empty() const { return implicated().empty(); }

  void add(AgentId a, AgentId b) {
    adj_[static_cast<std::size_t>(a)].insert(b);
    adj_[static_cast<std::size_t>(b)].insert(a);
  }
  /// Adds the clause {s, receiver} for every s in `senders`.
  void add_senders(AgentSet senders, AgentId receiver) {
    adj_[static_cast<std::size_t>(receiver)] =
        adj_[static_cast<std::size_t>(receiver)].united(senders);
    for (AgentId s : senders) adj_[static_cast<std::size_t>(s)].insert(receiver);
  }
  void unite(const OmissionEvidence& o) {
    for (std::size_t a = 0; a < adj_.size(); ++a)
      adj_[a] = adj_[a].united(o.adj_[a]);
  }

  friend bool operator==(const OmissionEvidence&,
                         const OmissionEvidence&) = default;

 private:
  std::vector<AgentSet> adj_;
};

/// True iff some fault set S with |S| <= budget and S ∩ avoid = ∅ covers
/// every clause of `e` (every missing edge has an endpoint in S). Branches
/// two ways per budget unit: O(2^budget · n) word operations.
[[nodiscard]] bool go_cover_exists(const OmissionEvidence& e, int budget,
                                   AgentSet avoid);

/// The agents contained in EVERY fault set of size <= t that covers `e` —
/// exactly the agents the evidence holder knows to be faulty under GO(t).
/// Precondition: some <= t cover exists (true for evidence drawn from any
/// run of a GO(t) pattern); violating it throws.
[[nodiscard]] AgentSet go_known_faults(const OmissionEvidence& e, int t);

/// The agents contained in SOME fault set of size <= t that covers `e`.
/// The complement is the set of agents the evidence holder knows to be
/// NONFAULTY — nonempty only once the evidence pins faults down (with
/// slack in the budget, any agent might be an additional silent fault).
[[nodiscard]] AgentSet go_possibly_faulty(const OmissionEvidence& e, int t);

/// The GO analogue of the f recurrence: the clause set the owner of g knows
/// agent j had at time m. go_evidence(g, j, 0) is empty; for m > 0 it is
/// the union of j's definite-absent round-m clauses, the evidence of the
/// senders whose round-m messages to j are known delivered, and
/// go_evidence(g, j, m-1). Computes rows 0..m only.
[[nodiscard]] OmissionEvidence go_evidence(const CommGraph& g, AgentId j,
                                           int m);

/// The full evidence table: entry [m][j] = go_evidence(g, j, m).
[[nodiscard]] std::vector<std::vector<OmissionEvidence>> go_evidence_table(
    const CommGraph& g);

/// Revision-keyed memo of the derived knowledge of ONE graph: the f table,
/// the GO evidence table and the cones already requested. Methods take the
/// graph so the cache can
/// detect staleness via CommGraph::revision() and rebuild lazily; a cache
/// must only ever be used with the graph it lives next to (FipState owns one
/// per agent graph).
///
/// Copies start empty: the simulator snapshots agent states every round, and
/// duplicating memoized cones into history would cost more than recomputing
/// the rare entries a copy ever asks for. Moves keep their contents.
class KnowledgeCache {
 public:
  KnowledgeCache() = default;
  KnowledgeCache(const KnowledgeCache&) {}
  KnowledgeCache& operator=(const KnowledgeCache&) {
    graph_ = nullptr;
    have_faults_ = false;
    faults_.clear();
    have_go_evidence_ = false;
    go_evidence_.clear();
    cones_.clear();
    return *this;
  }
  KnowledgeCache(KnowledgeCache&&) = default;
  KnowledgeCache& operator=(KnowledgeCache&&) = default;

  /// Row m of the f table of `g` (entry [j] = f(j, m, g)). The whole table
  /// is computed at most once per graph revision, flat in one allocation.
  [[nodiscard]] std::span<const AgentSet> fault_row(const CommGraph& g, int m);

  /// Row m of the GO evidence table of `g` (entry [j] = go_evidence(g, j,
  /// m)). Like fault_row, the whole table is computed at most once per
  /// graph revision.
  [[nodiscard]] std::span<const OmissionEvidence> go_evidence_row(
      const CommGraph& g, int m);

  /// The cone of (target, m_top) in `g`, memoized per (target, m_top) until
  /// the graph changes. Worth it only for cones consulted repeatedly (the
  /// P_opt tests all interrogate (self, time)); one-shot cones are cheaper
  /// built directly.
  [[nodiscard]] const Cone& cone(const CommGraph& g, AgentId target, int m_top);

 private:
  void sync(const CommGraph& g);

  /// Graph identity + revision at the last sync. The address is only ever
  /// compared, never dereferenced, so a cache outliving its graph is safe
  /// (it just invalidates). Distinct graphs routinely share revision values
  /// (agents mutate in lockstep), so the address check is what catches a
  /// cache handed a different graph than the one it memoized.
  const CommGraph* graph_ = nullptr;
  std::uint64_t revision_ = 0;
  bool have_faults_ = false;
  std::vector<AgentSet> faults_;  ///< (time+1) rows of n, row-major
  bool have_go_evidence_ = false;
  std::vector<OmissionEvidence> go_evidence_;  ///< (time+1) rows of n
  /// Flat (target, m_top) memo, lazily sized to n * (time+1) on first cone()
  /// after a sync: index target * cone_stride_ + m_top. The dense direct
  /// index replaces a hash lookup that showed up in every cached
  /// common_test; optional because Cone has no default constructor.
  std::vector<std::optional<Cone>> cones_;
  int cone_stride_ = 0;  ///< time+1 at the sizing sync
};

/// Reconstructs G_{j,m'} from `g`. Precondition: (j, m') is in the cone of
/// g's owner (i.e. `owner_cone.contains(j, m')`), so every edge into the
/// extracted cone carries a definite label in `g`.
[[nodiscard]] CommGraph extract_view(const CommGraph& g, AgentId j, int m);
/// As above, but reuses/memoizes the (j, m) cone through `cache`.
[[nodiscard]] CommGraph extract_view(const CommGraph& g, AgentId j, int m,
                                     KnowledgeCache& cache);

/// f(j, m, g): the faulty agents the owner of g knows that j knew about at
/// time m (paper §7). f(j, 0, g) is empty; for m > 0 it is the union of the
/// senders whose round-m messages to j are known omitted, the knowledge of
/// the senders whose round-m messages to j are known delivered, and
/// f(j, m-1, g). Computes only rows 0..m, not the full table.
[[nodiscard]] AgentSet known_faults(const CommGraph& g, AgentId j, int m);

/// The full f table: entry [m][j] = f(j, m, g), for m in 0..g.time().
[[nodiscard]] std::vector<std::vector<AgentSet>> known_faults_table(
    const CommGraph& g);

/// D(S, m, g) = union over k in S of f(k, m, g). Computes rows 0..m only.
[[nodiscard]] AgentSet distributed_faults(const CommGraph& g, AgentSet s, int m);

/// The time-0 level of the cone of (j, m): the agents whose initial values
/// reached (j, m). A plain backward frontier walk — no cone object, no
/// allocations — for callers that only need the roots (known_values).
[[nodiscard]] AgentSet cone_roots(const CommGraph& g, AgentId j, int m);

/// V(j, m, g): the set of initial values the owner knows j knew at time m.
/// Per the paper this is empty unless (j, m) is in the owner's cone; the
/// caller supplies the owner's cone to enforce that.
[[nodiscard]] std::vector<Value> known_values(const CommGraph& g, AgentId j,
                                              int m, const Cone& owner_cone);

}  // namespace eba
