// Knowledge operators over communication graphs (paper §A.2.7):
//
//   cone         — the hears-from cone of a node (Def. A.1)
//   extract_view — G_{j,m'}: the graph agent j had at time m', reconstructed
//                  from the graph of an agent that heard from (j, m')
//   known_faults — f(j, m', G): faulty agents the graph owner knows that j
//                  knew about at time m'
//   distributed_faults — D(S, m', G)
//   known_values — V(j, m', G): initial values the owner knows j knew
//   last_heard   — last_{ij}: the last time m' with (j, m') in the cone
//
// All of these are polynomial-time in the size of the graph; they are the
// machinery behind the polynomial-time optimal FIP P_opt (Prop. 7.9).
#pragma once

#include <vector>

#include "graph/comm_graph.hpp"

namespace eba {

/// The hears-from cone of (target, m_top): cone.at(m') is the set of agents j
/// with (j, m') ->_r (target, m_top), where the relation follows label-1
/// edges forward in time. Contains (target, m_top) itself.
class Cone {
 public:
  Cone(const CommGraph& g, AgentId target, int m_top);

  [[nodiscard]] bool contains(AgentId j, int m) const {
    return m >= 0 && m <= m_top_ && members_[static_cast<std::size_t>(m)].contains(j);
  }
  [[nodiscard]] AgentSet at(int m) const {
    EBA_REQUIRE(m >= 0 && m <= m_top_, "time out of range");
    return members_[static_cast<std::size_t>(m)];
  }
  [[nodiscard]] int top() const { return m_top_; }

  /// last_{ij}: the greatest m with (j, m) in the cone, or -1 if j was never
  /// heard from.
  [[nodiscard]] int last_heard(AgentId j) const;

 private:
  int m_top_;
  std::vector<AgentSet> members_;  ///< by time 0..m_top
};

/// Reconstructs G_{j,m'} from `g`. Precondition: (j, m') is in the cone of
/// g's owner (i.e. `owner_cone.contains(j, m')`), so every edge into the
/// extracted cone carries a definite label in `g`.
[[nodiscard]] CommGraph extract_view(const CommGraph& g, AgentId j, int m);

/// f(j, m, g): the faulty agents the owner of g knows that j knew about at
/// time m (paper §7). f(j, 0, g) is empty; for m > 0 it is the union of the
/// senders whose round-m messages to j are known omitted, the knowledge of
/// the senders whose round-m messages to j are known delivered, and
/// f(j, m-1, g).
[[nodiscard]] AgentSet known_faults(const CommGraph& g, AgentId j, int m);

/// The full f table: entry [m][j] = f(j, m, g), for m in 0..g.time().
[[nodiscard]] std::vector<std::vector<AgentSet>> known_faults_table(
    const CommGraph& g);

/// D(S, m, g) = union over k in S of f(k, m, g).
[[nodiscard]] AgentSet distributed_faults(const CommGraph& g, AgentSet s, int m);

/// V(j, m, g): the set of initial values the owner knows j knew at time m.
/// Per the paper this is empty unless (j, m) is in the owner's cone; the
/// caller supplies the owner's cone to enforce that.
[[nodiscard]] std::vector<Value> known_values(const CommGraph& g, AgentId j,
                                              int m, const Cone& owner_cone);

}  // namespace eba
