// Many-instance workload driver: thousands of concurrent agreement
// instances multiplexed over a fixed worker pool and a BusPool.
//
// Each instance is one `Stepper` (sim/stepper.hpp) plus one bus slot: the
// stepper holds the n agent states and the run record, the slot carries the
// instance's byte payloads through the adversary. Scheduling is
// round-sliced — a worker pops an instance, advances it by exactly one
// round (serialize µ → slot.exchange_round → deserialize → δ), and requeues
// it — so every admitted instance is concurrently in flight from admission
// to completion, none owns a thread, and the worker count bounds CPU use,
// not the instance count. This replaces the seed's thread-per-agent cluster
// (n threads per run) as the execution model for cluster workloads;
// `run_cluster` (net/cluster.hpp) is the single-instance wrapper.
//
// Two entry points share the scheduler and the wire path:
//
//  * `run_workload` — static adversaries: each instance's FailurePattern is
//    fixed up front (InstanceSpec).
//  * `run_adaptive_workload` — adaptive adversaries (sim/adaptive.hpp):
//    each instance owns a strategy object whose hook adds drops online in
//    begin_round(); the worker then mirrors the stepper's updated pattern
//    into the bus slot before the round's payloads move, so the byte-level
//    filter sees the same drops the in-memory engines do.
//
// Per-instance results are RunRecord-identical to `simulate()` (static) or
// `simulate_adaptive()` (adaptive, same-seeded strategy) on the same
// inputs — enforced by tests/test_workload.cpp.
//
// The driver is also the crash-recovery harness (tests/test_recovery.cpp,
// bench_recovery): with a snapshot cadence each instance checkpoints itself
// (net/checkpoint.hpp) at round boundaries, a `CrashSchedule` kills the
// instance's "process" at seeded rounds — slot released, in-memory state
// discarded, stepper rebuilt from the last checkpoint, adaptive strategy
// rolled back, slot re-acquired at the resume round — and, by engine
// determinism, the crashed-and-restored run finishes with the exact record
// an uninterrupted run produces. `record_traces` streams one EBTR trace
// (audit/trace_file.hpp) per instance, re-opened from the restored record
// after every crash.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "audit/certificate.hpp"
#include "audit/trace_file.hpp"
#include "core/types.hpp"
#include "exchange/exchange.hpp"
#include "net/bus.hpp"
#include "net/checkpoint.hpp"
#include "net/pool.hpp"
#include "net/serialize.hpp"
#include "sim/adaptive.hpp"
#include "sim/stepper.hpp"
#include "stats/rng.hpp"
#include "store/run_log.hpp"
#include "store/vfs.hpp"

namespace eba {

/// Result of one instance: the protocol-agnostic record plus every agent's
/// final typed state. (Also what `run_cluster` returns.)
template <ExchangeProtocol X>
struct ClusterResult {
  RunRecord record;
  std::vector<typename X::State> final_states;
};

/// One agreement instance: its adversary and initial preferences.
struct InstanceSpec {
  FailurePattern alpha;
  std::vector<Value> inits;
};

/// One adaptive instance: the strategy that will choose drops online, plus
/// the initial preferences. Strategies are stateful (RNG draws, chain
/// progress), so each instance owns a fresh one.
struct AdaptiveInstanceSpec {
  std::unique_ptr<AdversaryStrategy> strategy;
  std::vector<Value> inits;
};

/// When instance k's "process" dies: after completing round `rounds[k][j]`,
/// before starting the next one. Each scheduled crash fires exactly once —
/// a restored instance re-executes the crashed rounds without re-dying at
/// them, so every schedule terminates. Rounds must be sorted and >= 1.
///
/// `mid_rounds[k]` schedules crashes *inside* a round instead: the process
/// dies while round r is staged — its write-ahead intent is durable, no
/// message has moved. Mid-round crashes require a durable store
/// (WorkloadOptions::store): recovery replays the run log and completes the
/// interrupted round from its intent record.
struct CrashSchedule {
  std::vector<std::vector<int>> rounds;
  std::vector<std::vector<int>> mid_rounds;

  /// A seeded crash storm: each instance crashes `crashes_per_instance`
  /// times at uniform rounds in [1, horizon].
  [[nodiscard]] static CrashSchedule seeded(std::size_t instances, int horizon,
                                            std::uint64_t seed,
                                            int crashes_per_instance = 1) {
    EBA_REQUIRE(horizon >= 1, "crash storm needs a positive horizon");
    EBA_REQUIRE(crashes_per_instance >= 0, "negative crash count");
    CrashSchedule out;
    out.rounds.resize(instances);
    Rng rng(seed);
    for (auto& mine : out.rounds) {
      for (int c = 0; c < crashes_per_instance; ++c)
        mine.push_back(1 + rng.below(horizon));
      std::sort(mine.begin(), mine.end());
      mine.erase(std::unique(mine.begin(), mine.end()), mine.end());
    }
    return out;
  }

  /// A seeded mid-round crash storm: like seeded(), but every crash fires
  /// inside the chosen round (see mid_rounds above).
  [[nodiscard]] static CrashSchedule seeded_mid_round(
      std::size_t instances, int horizon, std::uint64_t seed,
      int crashes_per_instance = 1) {
    CrashSchedule out = seeded(instances, horizon, seed, crashes_per_instance);
    out.mid_rounds = std::move(out.rounds);
    out.rounds.clear();
    out.rounds.resize(instances);
    return out;
  }
};

/// Attaches the durable storage engine (src/store/) to a workload: each
/// instance writes a RunLog journal under `root` + "/inst-<k>" — full
/// checkpoints at the snapshot cadence, one delta per completed round, one
/// write-ahead intent per staged round. Crashes then recover by power-cut +
/// journal replay instead of from an in-memory byte vector, and mid-round
/// crash points (CrashSchedule::mid_rounds) become available.
struct DurableStoreOptions {
  Vfs* vfs = nullptr;       ///< borrowed; MemVfs injects the power cuts
  std::string root;         ///< directory holding the per-instance logs
  JournalOptions journal;   ///< key / page size / segment roll threshold
  int keep_checkpoints = 1; ///< GC retention: newest full checkpoints kept
};

struct WorkloadOptions {
  int workers = 0;     ///< worker threads; 0 = hardware concurrency
  int max_rounds = 0;  ///< per-instance horizon; 0 = t+4
  /// Checkpoint cadence in rounds (0 = never). With a cadence, every
  /// instance snapshots at time 0 and after each `snapshot_every`-th
  /// completed round; crashes restore from the latest snapshot.
  int snapshot_every = 0;
  /// Crash-injection schedule (borrowed; may be null). Scheduling any crash
  /// requires a snapshot cadence.
  const CrashSchedule* crashes = nullptr;
  /// Stream one durable EBTR trace per instance (WorkloadResult::traces).
  bool record_traces = false;
  /// Durable storage engine (borrowed; may be null). Requires a snapshot
  /// cadence; mandatory for mid-round crash schedules.
  const DurableStoreOptions* store = nullptr;
};

template <ExchangeProtocol X>
struct WorkloadResult {
  /// instances[k] corresponds to specs[k], regardless of completion order.
  std::vector<ClusterResult<X>> instances;
  /// Admission-to-completion latency per instance, in microseconds. All
  /// instances are admitted (occupy a bus slot) when the workload starts,
  /// so queueing delay under load is part of the latency.
  std::vector<double> latency_us;
  double wall_seconds = 0;
  int workers = 0;
  /// Instances concurrently in flight (= slots held) throughout the run.
  std::size_t concurrent_instances = 0;
  /// traces[k]: instance k's finished trace container (instance_id = k),
  /// present iff WorkloadOptions::record_traces.
  std::vector<Bytes> traces;
  std::size_t snapshots_taken = 0;
  std::size_t crashes_injected = 0;
};

namespace detail {

/// How one wire-round attempt ended: the instance completed (or was already
/// done), the round ran but the instance continues, or the caller's staging
/// hook aborted the round before any message moved (the stepper is then
/// still mid-round and must be discarded — crash injection does exactly
/// that).
enum class RoundOutcome { completed, in_progress, aborted };

/// Moves one staged round of `stepper` through its bus slot: serialize µ,
/// exchange through the slot's adversary filter, decode each sender's
/// payload once, δ. With `sync_pattern` the slot's pattern is refreshed
/// from the stepper after begin_round() — the adaptive hook may have just
/// added drops for exactly this round. `on_staged(actions)` runs at the
/// staging point — after the actions and the round's pattern are fixed,
/// before any payload moves — which is where the durable intent record is
/// cut and where a mid-round power cut strikes; returning false aborts the
/// round.
template <ExchangeProtocol X, class P, class OnStaged>
RoundOutcome advance_wire_round_staged(const X& x, Stepper<X, P>& stepper,
                                       BusPool& pool, BusPool::SlotId slot,
                                       bool sync_pattern,
                                       OnStaged&& on_staged) {
  using Message = typename X::Message;
  const int n = x.n();
  const std::vector<Action>* actions = stepper.begin_round();
  if (!actions) return RoundOutcome::completed;
  if (sync_pattern) pool.update_pattern(slot, stepper.pattern());
  if (!on_staged(*actions)) return RoundOutcome::aborted;

  std::size_t bits = 0;
  std::size_t messages = 0;
  BusPool::RoundResult res;
  if constexpr (BroadcastExchange<X>) {
    std::vector<std::optional<Bytes>> outbox(static_cast<std::size_t>(n));
    for (AgentId i = 0; i < n; ++i) {
      const std::optional<Message> m =
          x.message(stepper.states()[static_cast<std::size_t>(i)],
                    (*actions)[static_cast<std::size_t>(i)], /*dest=*/0);
      if (!m) continue;
      bits += static_cast<std::size_t>(n - 1) * x.message_bits(*m);
      messages += static_cast<std::size_t>(n - 1);
      outbox[static_cast<std::size_t>(i)] = to_bytes(*m);
    }
    res = pool.exchange_round(slot, std::move(outbox));
  } else {
    // Per-destination staging: µ is evaluated once per (sender, receiver)
    // edge and each edge ships its own payload, mirroring the stepper's
    // per-destination loop (generic_round) — same bit/message accounting
    // (self-addressed payloads are free), same always-delivered self edge.
    std::vector<std::vector<std::optional<Bytes>>> outbox(
        static_cast<std::size_t>(n),
        std::vector<std::optional<Bytes>>(static_cast<std::size_t>(n)));
    for (AgentId i = 0; i < n; ++i) {
      for (AgentId j = 0; j < n; ++j) {
        const std::optional<Message> m =
            x.message(stepper.states()[static_cast<std::size_t>(i)],
                      (*actions)[static_cast<std::size_t>(i)], /*dest=*/j);
        if (!m) continue;
        if (j != i) {
          bits += x.message_bits(*m);
          messages += 1;
        }
        outbox[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
            to_bytes(*m);
      }
    }
    res = pool.exchange_round(slot, std::move(outbox));
  }

  // Every receiver's copy of a broadcast payload is bit-identical, so
  // each sender's payload is decoded once and the decoded value shared
  // across its receivers — exactly as the abstract simulator shares µ's
  // result (the thread-per-agent model decoded per receiver by necessity).
  // Per-destination payloads are distinct by construction and decode once
  // per delivered edge.
  std::vector<std::vector<std::optional<Message>>> inbox(
      static_cast<std::size_t>(n),
      std::vector<std::optional<Message>>(static_cast<std::size_t>(n)));
  for (AgentId from = 0; from < n; ++from) {
    if constexpr (BroadcastExchange<X>) {
      std::optional<Message> decoded;
      for (AgentId to = 0; to < n; ++to) {
        const auto& payload = res.inbox[static_cast<std::size_t>(to)]
                                       [static_cast<std::size_t>(from)];
        if (!payload) continue;
        if (!decoded) decoded = from_bytes<Message>(*payload);
        inbox[static_cast<std::size_t>(to)][static_cast<std::size_t>(from)] =
            *decoded;
      }
    } else {
      for (AgentId to = 0; to < n; ++to) {
        const auto& payload = res.inbox[static_cast<std::size_t>(to)]
                                       [static_cast<std::size_t>(from)];
        if (!payload) continue;
        inbox[static_cast<std::size_t>(to)][static_cast<std::size_t>(from)] =
            from_bytes<Message>(*payload);
      }
    }
  }
  stepper.finish_round(inbox, std::move(res.sent), std::move(res.delivered),
                       bits, messages);
  return stepper.done() ? RoundOutcome::completed : RoundOutcome::in_progress;
}

/// The plain variant: no staging hook. Returns true when the instance has
/// completed (including "was already done").
template <ExchangeProtocol X, class P>
bool advance_wire_round(const X& x, Stepper<X, P>& stepper, BusPool& pool,
                        BusPool::SlotId slot, bool sync_pattern) {
  return advance_wire_round_staged<X, P>(
             x, stepper, pool, slot, sync_pattern,
             [](const std::vector<Action>&) { return true; }) !=
         RoundOutcome::in_progress;
}

/// Round-sliced scheduler shared by both workload entry points: workers
/// claim small batches of instance indices, advance each by one round via
/// `step_one(idx)` (true = instance completed, already harvested), and
/// requeue survivors. Workers claim kBatch indices per queue access: a
/// round of a small instance is microseconds, so per-round locking would
/// dominate.
template <class StepOne>
void drive_round_sliced(std::size_t count, int workers, StepOne&& step_one) {
  constexpr std::size_t kBatch = 8;

  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::size_t> ready;
  for (std::size_t k = 0; k < count; ++k) ready.push_back(k);
  std::size_t remaining = count;
  bool aborted = false;

  auto worker_main = [&] {
    try {
      std::vector<std::size_t> batch;
      std::vector<std::size_t> requeue;
      batch.reserve(kBatch);
      requeue.reserve(kBatch);
      for (;;) {
        batch.clear();
        {
          std::unique_lock lock(mu);
          cv.wait(lock, [&] { return !ready.empty() || remaining == 0; });
          if (ready.empty()) return;
          while (!ready.empty() && batch.size() < kBatch) {
            batch.push_back(ready.front());
            ready.pop_front();
          }
        }
        requeue.clear();
        std::size_t completed_now = 0;
        for (std::size_t idx : batch) {
          if (step_one(idx))
            completed_now += 1;
          else
            requeue.push_back(idx);
        }
        std::lock_guard lock(mu);
        // Another worker may have aborted (cleared the queue and zeroed
        // `remaining`) while this batch ran; touching the counter then
        // would underflow it and deadlock the pool.
        if (aborted) return;
        for (std::size_t idx : requeue) ready.push_back(idx);
        remaining -= completed_now;
        if (remaining == 0)
          cv.notify_all();
        else if (!requeue.empty())
          cv.notify_one();
      }
    } catch (...) {
      // Unblock peers before letting run_workers capture the exception.
      {
        std::lock_guard lock(mu);
        aborted = true;
        ready.clear();
        remaining = 0;
      }
      cv.notify_all();
      throw;
    }
  };

  run_workers(workers, [&](int /*worker*/) { worker_main(); });
}

/// One scheduled instance with its durability state: the live stepper and
/// slot, the last checkpoint (crash-restore source), the instance's crash
/// schedule position, and the streaming trace writer.
template <ExchangeProtocol X, class P>
struct ManagedInstance {
  ManagedInstance(Stepper<X, P> s, BusPool::SlotId sl,
                  AdversaryStrategy* strat = nullptr)
      : stepper(std::move(s)), slot(sl), strategy(strat) {}

  Stepper<X, P> stepper;
  BusPool::SlotId slot = 0;
  AdversaryStrategy* strategy = nullptr;  ///< adaptive instances only
  Bytes checkpoint;                       ///< latest EBCK snapshot
  std::span<const int> crash_rounds;      ///< borrowed from the schedule
  std::size_t next_crash = 0;             ///< each entry fires once
  std::span<const int> mid_crash_rounds;  ///< mid-round entries (store only)
  std::size_t next_mid_crash = 0;
  std::optional<TraceWriter> trace;
  std::optional<RunLog> log;  ///< durable run log when a store is attached
  std::string log_dir;
};

/// Instance k's validated crash rounds (empty when none are scheduled).
inline std::span<const int> validated_crash_rounds(
    const std::vector<std::vector<int>>& all, std::size_t idx) {
  if (idx >= all.size()) return {};
  const std::vector<int>& mine = all[idx];
  for (std::size_t k = 0; k < mine.size(); ++k)
    EBA_REQUIRE(mine[k] >= 1 && (k == 0 || mine[k] > mine[k - 1]),
                "crash rounds must be strictly increasing and >= 1");
  return mine;
}

inline std::span<const int> crash_rounds_for(const CrashSchedule* crashes,
                                             std::size_t idx) {
  if (!crashes) return {};
  return validated_crash_rounds(crashes->rounds, idx);
}

/// Shared durability setup: attaches crash schedules, opens the streaming
/// trace writers, and cuts every instance's time-0 checkpoint.
template <ExchangeProtocol X, class P>
void prepare_durability(std::vector<ManagedInstance<X, P>>& instances,
                        const WorkloadOptions& opt,
                        WorkloadResult<X>& result) {
  EBA_REQUIRE(opt.snapshot_every >= 0, "negative snapshot cadence");
  bool any_crashes = false;
  bool any_mid_crashes = false;
  for (std::size_t k = 0; k < instances.size(); ++k) {
    instances[k].crash_rounds = crash_rounds_for(opt.crashes, k);
    any_crashes = any_crashes || !instances[k].crash_rounds.empty();
    if (opt.crashes)
      instances[k].mid_crash_rounds =
          validated_crash_rounds(opt.crashes->mid_rounds, k);
    any_mid_crashes = any_mid_crashes || !instances[k].mid_crash_rounds.empty();
  }
  EBA_REQUIRE(!(any_crashes || any_mid_crashes) || opt.snapshot_every > 0,
              "crash injection requires a snapshot cadence "
              "(WorkloadOptions::snapshot_every)");
  EBA_REQUIRE(!any_mid_crashes || opt.store != nullptr,
              "mid-round crash injection requires a durable store "
              "(WorkloadOptions::store)");
  if (opt.store) {
    EBA_REQUIRE(opt.store->vfs != nullptr && !opt.store->root.empty(),
                "durable store needs a vfs and a root directory");
    EBA_REQUIRE(opt.store->keep_checkpoints >= 1,
                "durable store must retain at least one checkpoint");
    EBA_REQUIRE(opt.snapshot_every > 0,
                "a durable store requires a snapshot cadence");
  }
  if (opt.record_traces) {
    result.traces.resize(instances.size());
    for (std::size_t k = 0; k < instances.size(); ++k) {
      const RunRecord& rec = instances[k].stepper.record();
      instances[k].trace.emplace(static_cast<std::uint64_t>(k), rec.n, rec.t,
                                 rec.nonfaulty, rec.inits);
    }
  }
  if (opt.snapshot_every > 0) {
    for (auto& inst : instances) {
      inst.checkpoint = checkpoint_stepper(
          inst.stepper,
          inst.strategy ? inst.strategy->checkpoint_state() : std::string{});
      result.snapshots_taken += 1;
    }
  }
  if (opt.store) {
    for (std::size_t k = 0; k < instances.size(); ++k) {
      auto& inst = instances[k];
      inst.log_dir = opt.store->root;
      inst.log_dir += "/inst-";
      inst.log_dir += std::to_string(k);
      inst.log.emplace(
          RunLog::create(*opt.store->vfs, inst.log_dir, opt.store->journal));
      inst.log->log_checkpoint(inst.checkpoint);
    }
  }
}

/// The body shared by run_workload and run_adaptive_workload once every
/// instance's stepper and slot exist: schedule, inject crashes, snapshot,
/// harvest, time.
template <ExchangeProtocol X, class P>
void drive_workload(const X& x, const P& act, int t, BusPool& pool,
                    std::vector<ManagedInstance<X, P>>& instances, int workers,
                    bool sync_pattern, const WorkloadOptions& opt,
                    WorkloadResult<X>& result) {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point admitted = Clock::now();
  std::atomic<std::size_t> snapshots{0};
  std::atomic<std::size_t> crashes{0};

  // Store-backed crash recovery: the power cut erases everything the
  // instance's log did not fsync, then the journal is reopened (torn-tail
  // scan), the newest full checkpoint restored, every logged delta round
  // replayed-and-verified, and a trailing write-ahead intent completed.
  // recover_run throws on any divergence, so a recovered instance is
  // guaranteed byte-identical to the pre-crash one up to its durable edge.
  auto restore_from_store = [&](auto& inst, std::size_t idx) {
    const DurableStoreOptions& store = *opt.store;
    store.vfs->power_cut(inst.log_dir + "/");
    inst.log.emplace(RunLog::open(*store.vfs, inst.log_dir, store.journal));
    RecoveredRun<X, P> recovered = recover_run<X, P>(
        x, act, inst.log->journal().records(), inst.strategy);
    if (recovered.finished_intent)
      // Re-log the round the intent's replay completed, so a second crash
      // never finds two intents with no delta between them.
      inst.log->log_delta(delta_of_record(recovered.stepper.record(),
                                          recovered.stepper.time() - 1));
    inst.stepper = std::move(recovered.stepper);
    inst.slot = pool.acquire(inst.stepper.pattern(), inst.stepper.time());
    if (inst.trace) {
      const RunRecord& rec = inst.stepper.record();
      inst.trace.emplace(static_cast<std::uint64_t>(idx), rec.n, rec.t,
                         rec.nonfaulty, rec.inits);
      inst.trace->add_record_rounds(rec);
    }
  };

  auto step_one = [&](std::size_t idx) -> bool {
    auto& inst = instances[idx];

    // Crash injection: the instance's "process" dies here and a fresh one
    // restores from the last durable snapshot. Everything in-memory — the
    // stepper, the slot, the strategy's mutable state, the unfinished trace
    // stream — is torn down and rebuilt exactly as real recovery would.
    if (inst.next_crash < inst.crash_rounds.size() &&
        inst.stepper.time() >= inst.crash_rounds[inst.next_crash]) {
      inst.next_crash += 1;
      crashes.fetch_add(1, std::memory_order_relaxed);
      pool.release(inst.slot);
      if (opt.store) {
        restore_from_store(inst, idx);
        return false;  // requeue: continue from the recovered round
      }
      std::string strategy_state;
      inst.stepper = restore_stepper<X, P>(x, act, inst.checkpoint,
                                           /*sink=*/nullptr, &strategy_state);
      inst.slot = pool.acquire(inst.stepper.pattern(), inst.stepper.time());
      if (inst.strategy) {
        inst.strategy->restore_state(strategy_state);
        inst.stepper.set_adversary_hook(make_strategy_hook(*inst.strategy, t));
      }
      if (inst.trace) {
        const RunRecord& rec = inst.stepper.record();
        inst.trace.emplace(static_cast<std::uint64_t>(idx), rec.n, rec.t,
                           rec.nonfaulty, rec.inits);
        inst.trace->add_record_rounds(rec);
      }
      return false;  // requeue: re-execute from the snapshot
    }

    // Staging hook: cut the round's durable intent record, and let a
    // scheduled mid-round crash strike while it is the only durable trace
    // of the round.
    const auto on_staged = [&](const std::vector<Action>& actions) -> bool {
      if (!inst.log) return true;
      const int m = inst.stepper.time();
      IntentPayload intent;
      intent.round = m;
      intent.actions = actions;
      const FailurePattern& alpha = inst.stepper.pattern();
      const int n = inst.stepper.n();
      intent.dropped_send.reserve(static_cast<std::size_t>(n));
      intent.dropped_receive.reserve(static_cast<std::size_t>(n));
      for (AgentId i = 0; i < n; ++i) {
        intent.dropped_send.push_back(alpha.dropped(m, i));
        intent.dropped_receive.push_back(alpha.dropped_receive(m, i));
      }
      inst.log->log_intent(intent);
      if (inst.next_mid_crash < inst.mid_crash_rounds.size() &&
          m + 1 == inst.mid_crash_rounds[inst.next_mid_crash]) {
        inst.next_mid_crash += 1;
        return false;  // die mid-round: intent durable, no message moved
      }
      return true;
    };

    const int before = inst.stepper.time();
    const RoundOutcome outcome = advance_wire_round_staged<X, P>(
        x, inst.stepper, pool, inst.slot, sync_pattern, on_staged);
    if (outcome == RoundOutcome::aborted) {
      crashes.fetch_add(1, std::memory_order_relaxed);
      pool.release(inst.slot);
      restore_from_store(inst, idx);
      return false;  // requeue: recovery completed the interrupted round
    }
    const bool finished = outcome == RoundOutcome::completed;
    const bool advanced = inst.stepper.time() > before;
    if (advanced && inst.log)
      inst.log->log_delta(delta_of_record(inst.stepper.record(), before));
    if (advanced && inst.trace) {
      const RunRecord& rec = inst.stepper.record();
      inst.trace->add_round(rec.actions.back(), rec.sent.back(),
                            rec.delivered.back());
    }
    if (!finished) {
      if (opt.snapshot_every > 0 && advanced &&
          inst.stepper.time() % opt.snapshot_every == 0) {
        inst.checkpoint = checkpoint_stepper(
            inst.stepper,
            inst.strategy ? inst.strategy->checkpoint_state() : std::string{});
        if (inst.log) {
          inst.log->log_checkpoint(inst.checkpoint);
          inst.log->gc_keep_checkpoints(opt.store->keep_checkpoints);
        }
        snapshots.fetch_add(1, std::memory_order_relaxed);
      }
      return false;
    }

    result.latency_us[idx] =
        std::chrono::duration<double, std::micro>(Clock::now() - admitted)
            .count();
    RunRecord record = inst.stepper.take_record();
    if (inst.trace)
      result.traces[idx] = inst.trace->finish(
          build_certificate(record, static_cast<std::uint64_t>(idx)));
    result.instances[idx].record = std::move(record);
    result.instances[idx].final_states = inst.stepper.take_states();
    pool.release(inst.slot);
    return true;
  };
  drive_round_sliced(instances.size(), workers, step_one);

  result.snapshots_taken += snapshots.load();
  result.crashes_injected = crashes.load();
  result.wall_seconds =
      std::chrono::duration<double>(Clock::now() - admitted).count();
}

}  // namespace detail

template <ExchangeProtocol X, class P>
WorkloadResult<X> run_workload(const X& x, const P& act,
                               std::span<const InstanceSpec> specs, int t,
                               const WorkloadOptions& opt = {}) {
  // Broadcast exchanges stage one payload per sender per round; exchanges
  // with destination-dependent µ (E_auth) stage one per (sender, receiver)
  // edge through the bus's per-destination overload. Both paths mirror the
  // stepper's in-memory accounting exactly (tests/test_zoo.cpp pins the
  // three-engine equality for the per-destination path).
  WorkloadResult<X> result;
  result.instances.resize(specs.size());
  result.latency_us.assign(specs.size(), 0.0);
  result.concurrent_instances = specs.size();
  if (specs.empty()) return result;

  StepperOptions sopt;
  sopt.max_rounds = opt.max_rounds;

  BusPool pool(specs.size());
  std::vector<detail::ManagedInstance<X, P>> instances;
  instances.reserve(specs.size());
  for (const InstanceSpec& spec : specs)
    instances.push_back({Stepper<X, P>(x, act, spec.alpha, spec.inits, t, sopt),
                         pool.acquire(spec.alpha)});
  detail::prepare_durability(instances, opt, result);

  const int workers = resolve_workers(opt.workers, specs.size());
  result.workers = workers;
  detail::drive_workload<X, P>(x, act, t, pool, instances, workers,
                               /*sync_pattern=*/false, opt, result);
  return result;
}

/// The adaptive-adversary workload: same scheduler and wire path, but each
/// instance's pattern grows online. The stepper's hook (installed here from
/// the instance's strategy) adds drops in begin_round(); advance_wire_round
/// then mirrors the updated pattern into the slot, so wire-path filtering
/// is bit-identical to the in-memory engines on the same seeded strategy.
template <ExchangeProtocol X, class P>
WorkloadResult<X> run_adaptive_workload(const X& x, const P& act,
                                        std::span<AdaptiveInstanceSpec> specs,
                                        int t,
                                        const WorkloadOptions& opt = {}) {
  WorkloadResult<X> result;
  result.instances.resize(specs.size());
  result.latency_us.assign(specs.size(), 0.0);
  result.concurrent_instances = specs.size();
  if (specs.empty()) return result;

  StepperOptions sopt;
  sopt.max_rounds = opt.max_rounds;

  BusPool pool(specs.size());
  std::vector<detail::ManagedInstance<X, P>> instances;
  instances.reserve(specs.size());
  for (AdaptiveInstanceSpec& spec : specs) {
    EBA_REQUIRE(spec.strategy != nullptr, "instance without a strategy");
    FailurePattern base = spec.strategy->base_pattern();
    EBA_REQUIRE(spec.strategy->model() == FailureModel::sending
                    ? base.in_so(t)
                    : base.in_go(t),
                "strategy base pattern outside its model/budget");
    instances.push_back(
        {Stepper<X, P>(x, act, base, spec.inits, t, sopt),
         pool.acquire(std::move(base)), spec.strategy.get()});
    instances.back().stepper.set_adversary_hook(
        make_strategy_hook(*spec.strategy, t));
  }
  detail::prepare_durability(instances, opt, result);

  const int workers = resolve_workers(opt.workers, specs.size());
  result.workers = workers;
  detail::drive_workload<X, P>(x, act, t, pool, instances, workers,
                               /*sync_pattern=*/true, opt, result);
  return result;
}

}  // namespace eba
