// Many-instance workload driver: thousands of concurrent agreement
// instances multiplexed over a fixed worker pool and a BusPool.
//
// Each instance is one `Stepper` (sim/stepper.hpp) plus one bus slot: the
// stepper holds the n agent states and the run record, the slot carries the
// instance's byte payloads through the adversary. Scheduling is
// round-sliced — a worker pops an instance, advances it by exactly one
// round (serialize µ → slot.exchange_round → deserialize → δ), and requeues
// it — so every admitted instance is concurrently in flight from admission
// to completion, none owns a thread, and the worker count bounds CPU use,
// not the instance count. This replaces the seed's thread-per-agent cluster
// (n threads per run) as the execution model for cluster workloads;
// `run_cluster` (net/cluster.hpp) is the single-instance wrapper.
//
// Per-instance results are RunRecord-identical to `simulate()` on the same
// (pattern, preferences) — enforced by tests/test_workload.cpp.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "core/types.hpp"
#include "exchange/exchange.hpp"
#include "net/bus.hpp"
#include "net/pool.hpp"
#include "net/serialize.hpp"
#include "sim/stepper.hpp"

namespace eba {

/// Result of one instance: the protocol-agnostic record plus every agent's
/// final typed state. (Also what `run_cluster` returns.)
template <ExchangeProtocol X>
struct ClusterResult {
  RunRecord record;
  std::vector<typename X::State> final_states;
};

/// One agreement instance: its adversary and initial preferences.
struct InstanceSpec {
  FailurePattern alpha;
  std::vector<Value> inits;
};

struct WorkloadOptions {
  int workers = 0;     ///< worker threads; 0 = hardware concurrency
  int max_rounds = 0;  ///< per-instance horizon; 0 = t+4
};

template <ExchangeProtocol X>
struct WorkloadResult {
  /// instances[k] corresponds to specs[k], regardless of completion order.
  std::vector<ClusterResult<X>> instances;
  /// Admission-to-completion latency per instance, in microseconds. All
  /// instances are admitted (occupy a bus slot) when the workload starts,
  /// so queueing delay under load is part of the latency.
  std::vector<double> latency_us;
  double wall_seconds = 0;
  int workers = 0;
  /// Instances concurrently in flight (= slots held) throughout the run.
  std::size_t concurrent_instances = 0;
};

template <ExchangeProtocol X, class P>
WorkloadResult<X> run_workload(const X& x, const P& act,
                               std::span<const InstanceSpec> specs, int t,
                               const WorkloadOptions& opt = {}) {
  // The byte bus fans one payload out to every receiver; an exchange whose
  // µ depends on the destination would silently send wrong payloads here.
  static_assert(BroadcastExchange<X>,
                "run_workload requires a broadcast exchange (X::kBroadcast)");
  using Message = typename X::Message;
  using Clock = std::chrono::steady_clock;

  WorkloadResult<X> result;
  result.instances.resize(specs.size());
  result.latency_us.assign(specs.size(), 0.0);
  result.concurrent_instances = specs.size();
  if (specs.empty()) return result;

  const int n = x.n();
  StepperOptions sopt;
  sopt.max_rounds = opt.max_rounds;

  struct Instance {
    Stepper<X, P> stepper;
    BusPool::SlotId slot;
  };

  BusPool pool(specs.size());
  std::vector<Instance> instances;
  instances.reserve(specs.size());
  for (const InstanceSpec& spec : specs)
    instances.push_back({Stepper<X, P>(x, act, spec.alpha, spec.inits, t, sopt),
                         pool.acquire(spec.alpha)});

  const int workers = resolve_workers(opt.workers, specs.size());
  result.workers = workers;

  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::size_t> ready;
  for (std::size_t k = 0; k < specs.size(); ++k) ready.push_back(k);
  std::size_t remaining = specs.size();
  bool aborted = false;

  const Clock::time_point admitted = Clock::now();

  // Advances one instance by one round over the wire. Returns true when the
  // instance has completed (including "was already done").
  auto advance = [&](Instance& inst) -> bool {
    const std::vector<Action>* actions = inst.stepper.begin_round();
    if (!actions) return true;

    std::vector<std::optional<Bytes>> outbox(static_cast<std::size_t>(n));
    std::size_t bits = 0;
    std::size_t messages = 0;
    for (AgentId i = 0; i < n; ++i) {
      const std::optional<Message> m =
          x.message(inst.stepper.states()[static_cast<std::size_t>(i)],
                    (*actions)[static_cast<std::size_t>(i)], /*dest=*/0);
      if (!m) continue;
      bits += static_cast<std::size_t>(n - 1) * x.message_bits(*m);
      messages += static_cast<std::size_t>(n - 1);
      outbox[static_cast<std::size_t>(i)] = to_bytes(*m);
    }

    BusPool::RoundResult res =
        pool.exchange_round(inst.slot, std::move(outbox));

    // Every receiver's copy of a broadcast payload is bit-identical, so
    // each sender's payload is decoded once and the decoded value shared
    // across its receivers — exactly as the abstract simulator shares µ's
    // result (the thread-per-agent model decoded per receiver by necessity).
    std::vector<std::vector<std::optional<Message>>> inbox(
        static_cast<std::size_t>(n),
        std::vector<std::optional<Message>>(static_cast<std::size_t>(n)));
    for (AgentId from = 0; from < n; ++from) {
      std::optional<Message> decoded;
      for (AgentId to = 0; to < n; ++to) {
        const auto& payload = res.inbox[static_cast<std::size_t>(to)]
                                       [static_cast<std::size_t>(from)];
        if (!payload) continue;
        if (!decoded) decoded = from_bytes<Message>(*payload);
        inbox[static_cast<std::size_t>(to)][static_cast<std::size_t>(from)] =
            *decoded;
      }
    }
    inst.stepper.finish_round(inbox, std::move(res.sent),
                              std::move(res.delivered), bits, messages);
    return inst.stepper.done();
  };

  // Workers claim a small batch of instances per queue access: a round of
  // a small instance is microseconds, so per-round locking would dominate.
  constexpr std::size_t kBatch = 8;

  auto worker_main = [&] {
    try {
      std::vector<std::size_t> batch;
      std::vector<std::size_t> requeue;
      batch.reserve(kBatch);
      requeue.reserve(kBatch);
      for (;;) {
        batch.clear();
        {
          std::unique_lock lock(mu);
          cv.wait(lock, [&] { return !ready.empty() || remaining == 0; });
          if (ready.empty()) return;
          while (!ready.empty() && batch.size() < kBatch) {
            batch.push_back(ready.front());
            ready.pop_front();
          }
        }
        requeue.clear();
        std::size_t completed_now = 0;
        for (std::size_t idx : batch) {
          Instance& inst = instances[idx];
          if (advance(inst)) {
            result.latency_us[idx] =
                std::chrono::duration<double, std::micro>(Clock::now() -
                                                          admitted)
                    .count();
            result.instances[idx].record = inst.stepper.take_record();
            result.instances[idx].final_states = inst.stepper.take_states();
            pool.release(inst.slot);
            completed_now += 1;
          } else {
            requeue.push_back(idx);
          }
        }
        std::lock_guard lock(mu);
        // Another worker may have aborted (cleared the queue and zeroed
        // `remaining`) while this batch ran; touching the counter then
        // would underflow it and deadlock the pool.
        if (aborted) return;
        for (std::size_t idx : requeue) ready.push_back(idx);
        remaining -= completed_now;
        if (remaining == 0)
          cv.notify_all();
        else if (!requeue.empty())
          cv.notify_one();
      }
    } catch (...) {
      // Unblock peers before letting run_workers capture the exception.
      {
        std::lock_guard lock(mu);
        aborted = true;
        ready.clear();
        remaining = 0;
      }
      cv.notify_all();
      throw;
    }
  };

  run_workers(workers, [&](int /*worker*/) { worker_main(); });

  result.wall_seconds =
      std::chrono::duration<double>(Clock::now() - admitted).count();
  return result;
}

}  // namespace eba
