// Shared fixed-size worker-pool primitives.
//
// Factored out of net/workload.hpp so every fan-out user — the
// many-instance workload driver and the KBP synthesizer's per-round test
// evaluation (kripke/synthesis.hpp) — shares one spawn/join/error-propagate
// implementation instead of each hand-rolling thread management:
//
//   * resolve_workers — turns a requested count (0 = hardware concurrency)
//     into an actual one, clamped to the number of work items;
//   * run_workers     — runs one worker body per thread, joins all, and
//     rethrows the first exception (single-worker calls run inline);
//   * parallel_for    — dynamic chunked loop over an index range, for
//     callers whose items are independent (no requeue semantics).
//
// Schedulers with richer queue behavior (the workload driver requeues
// instances after every round) keep their own queue and build on
// run_workers for the thread lifecycle.
#pragma once

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace eba {

/// Resolves a requested worker count: 0 (or negative) = hardware
/// concurrency, and never more workers than work items (minimum 1).
[[nodiscard]] inline int resolve_workers(int requested, std::size_t items) {
  int workers = requested > 0
                    ? requested
                    : static_cast<int>(std::thread::hardware_concurrency());
  if (workers < 1) workers = 1;
  if (items > 0 && static_cast<std::size_t>(workers) > items)
    workers = static_cast<int>(items);
  return workers;
}

/// Runs `body(worker_index)` on `workers` threads, joins them all, and
/// rethrows the first exception any worker threw. With one worker the body
/// runs inline on the calling thread (same semantics, no spawn cost).
///
/// A body that can leave shared state in a “peers would block forever”
/// condition must signal its peers before throwing (see run_workload).
template <class Body>
void run_workers(int workers, Body&& body) {
  if (workers <= 1) {
    body(0);
    return;
  }
  std::mutex mu;
  std::exception_ptr first_error;
  {
    std::vector<std::jthread> threads;
    threads.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w)
      threads.emplace_back([&body, &mu, &first_error, w] {
        try {
          body(w);
        } catch (...) {
          std::lock_guard lock(mu);
          if (!first_error) first_error = std::current_exception();
        }
      });
  }
  if (first_error) std::rethrow_exception(first_error);
}

/// Applies `fn(begin, end)` over [0, count) in dynamically claimed chunks of
/// `grain` indices across `workers` threads (resolve_workers applied).
/// Deterministic provided fn writes only to per-index slots.
template <class Fn>
void parallel_for(int workers, std::size_t count, std::size_t grain,
                  Fn&& fn) {
  if (count == 0) return;
  workers = resolve_workers(workers, count);
  if (grain == 0) grain = 1;
  if (workers == 1) {
    fn(std::size_t{0}, count);
    return;
  }
  std::atomic<std::size_t> next{0};
  run_workers(workers, [&next, &fn, count, grain](int /*worker*/) {
    for (;;) {
      const std::size_t begin =
          next.fetch_add(grain, std::memory_order_relaxed);
      if (begin >= count) return;
      fn(begin, std::min(begin + grain, count));
    }
  });
}

}  // namespace eba
