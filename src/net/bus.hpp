// Round-synchronized message bus with omission fault injection.
//
// The threaded runtime's agents each call exchange() once per round with
// their broadcast payload; the call blocks until every agent has submitted,
// applies the failure pattern to decide which copies are delivered, and
// returns each agent's inbox. This realizes the paper's synchronous
// round structure over real threads.
#pragma once

#include <condition_variable>
#include <mutex>
#include <optional>
#include <vector>

#include "failure/pattern.hpp"
#include "net/serialize.hpp"

namespace eba {

class RoundBus {
 public:
  struct RoundResult {
    int round = 0;
    /// inbox[j]: payload received from agent j (self-delivery included).
    std::vector<std::optional<Bytes>> inbox;
    /// True iff every agent reported `decided` when submitting this round.
    bool all_decided = false;
  };

  RoundBus(int n, FailurePattern alpha);

  /// Submits agent `i`'s broadcast for the current round (nullopt = ⊥) and
  /// its decision status, blocks for the round barrier, and returns the
  /// filtered inbox. Every agent must call this exactly once per round.
  [[nodiscard]] RoundResult exchange(AgentId i, std::optional<Bytes> broadcast,
                                     bool decided);

  /// Delivery log: delivered(m)[i] = receivers (other than i) that got i's
  /// round-(m+1) payload. Only valid after the round completed.
  [[nodiscard]] std::vector<AgentSet> delivered_log(int round) const;
  [[nodiscard]] std::vector<AgentSet> sent_log(int round) const;
  [[nodiscard]] int completed_rounds() const;

 private:
  const int n_;
  const FailurePattern alpha_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::uint64_t generation_ = 0;
  int round_ = 0;
  int submitted_ = 0;
  std::vector<std::optional<Bytes>> outbox_;
  std::vector<char> decided_;
  std::vector<RoundResult> results_;  ///< per receiver, for the finished round
  std::vector<std::vector<AgentSet>> sent_log_;
  std::vector<std::vector<AgentSet>> delivered_log_;
};

}  // namespace eba
