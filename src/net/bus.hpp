// Byte-level message buses with omission fault injection.
//
// Two realizations of the paper's synchronous round structure over real
// byte payloads:
//
//  * `BusPool` — the instance-oriented bus. A pool of slots, each hosting
//    one agreement instance's rounds: the slot owns the instance's failure
//    pattern and stages its payloads, and `exchange_round()` moves one full
//    round of broadcasts through the adversary filter synchronously. Slots
//    own no threads; whichever worker is currently advancing the instance
//    (net/workload.hpp multiplexes thousands of instances over a fixed
//    worker pool) drives the slot. Distinct slots may be driven
//    concurrently; one slot must be driven by one worker at a time.
//  * `RoundBus` — the thread-per-agent bus kept for the legacy cluster
//    runtime and barrier tests: each of n agent threads calls exchange()
//    once per round, the call blocks until every agent submitted, and each
//    thread gets its filtered inbox back.
#pragma once

#include <condition_variable>
#include <mutex>
#include <optional>
#include <vector>

#include "failure/pattern.hpp"
#include "net/serialize.hpp"

namespace eba {

/// A pool of threadless bus slots for concurrent agreement instances.
class BusPool {
 public:
  using SlotId = std::size_t;

  /// One completed round as seen by the whole instance.
  struct RoundResult {
    int round = 0;  ///< the round index that was just exchanged (0-based)
    /// inbox[to][from]: payload received (self-delivery included).
    std::vector<std::vector<std::optional<Bytes>>> inbox;
    /// sent[from]: receivers (excluding `from`) addressed by a non-⊥ payload.
    std::vector<AgentSet> sent;
    /// delivered[from]: subset of sent[from] the adversary delivered.
    std::vector<AgentSet> delivered;
  };

  explicit BusPool(std::size_t capacity);

  /// Claims a free slot for an instance governed by `alpha`. Throws when the
  /// pool is exhausted — admission control is the caller's job.
  /// `resume_round` seeds the slot's round counter: a crashed instance that
  /// is restored from a round-`m` checkpoint re-acquires a slot with
  /// resume_round = m so the wire path filters with the right round index.
  [[nodiscard]] SlotId acquire(FailurePattern alpha, int resume_round = 0);
  /// Returns a slot to the pool; the slot's round counter resets.
  void release(SlotId id);

  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }
  [[nodiscard]] std::size_t in_use() const;

  /// Moves one round of broadcast payloads (outbox[i] = agent i's payload,
  /// nullopt = ⊥) through the slot's failure pattern and returns every
  /// agent's inbox plus the sent/delivered logs. Synchronous: the caller is
  /// the instance's current worker and submits all n payloads at once.
  [[nodiscard]] RoundResult exchange_round(
      SlotId id, std::vector<std::optional<Bytes>> outbox);

  /// Per-destination variant for non-broadcast exchanges (outbox[from][to] =
  /// the payload `from` addresses to `to`, nullopt = ⊥). sent[from] collects
  /// the receivers (excluding `from`) with a non-⊥ payload; delivery is
  /// filtered per (from, to) edge, and a payload addressed to self always
  /// arrives — the semantics of the stepper's per-destination µ loop
  /// (sim/stepper.hpp generic_round), which the wire path must mirror
  /// bit-for-bit.
  [[nodiscard]] RoundResult exchange_round(
      SlotId id, std::vector<std::vector<std::optional<Bytes>>> outbox);

  /// Replaces the slot's failure pattern mid-instance. The adaptive
  /// workload driver (net/workload.hpp run_adaptive_workload) mirrors each
  /// stepper's online drops into the slot after begin_round(), before the
  /// round's payloads move — without this the byte-level filter would run
  /// on the strategy's base pattern. Same threading contract as
  /// exchange_round: the caller is the slot's current worker.
  void update_pattern(SlotId id, const FailurePattern& alpha);

  /// Rounds completed by the instance currently occupying the slot.
  [[nodiscard]] int completed_rounds(SlotId id) const;

 private:
  struct Slot {
    bool busy = false;
    int round = 0;
    std::optional<FailurePattern> alpha;
  };

  mutable std::mutex mu_;  ///< guards acquire/release bookkeeping only
  std::vector<Slot> slots_;
  std::vector<SlotId> free_;
};

class RoundBus {
 public:
  struct RoundResult {
    int round = 0;
    /// inbox[j]: payload received from agent j (self-delivery included).
    std::vector<std::optional<Bytes>> inbox;
    /// True iff every agent reported `decided` when submitting this round.
    bool all_decided = false;
  };

  RoundBus(int n, FailurePattern alpha);

  /// Submits agent `i`'s broadcast for the current round (nullopt = ⊥) and
  /// its decision status, blocks for the round barrier, and returns the
  /// filtered inbox. Every agent must call this exactly once per round.
  [[nodiscard]] RoundResult exchange(AgentId i, std::optional<Bytes> broadcast,
                                     bool decided);

  /// Delivery log: delivered(m)[i] = receivers (other than i) that got i's
  /// round-(m+1) payload. A round's log exists only once the round has
  /// completed (all n agents returned from exchange()); asking for a round
  /// that has not completed throws, it never returns a partial log.
  [[nodiscard]] std::vector<AgentSet> delivered_log(int round) const;
  /// Same completion contract as delivered_log().
  [[nodiscard]] std::vector<AgentSet> sent_log(int round) const;
  [[nodiscard]] int completed_rounds() const;

 private:
  const int n_;
  const FailurePattern alpha_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::uint64_t generation_ = 0;
  int round_ = 0;
  int submitted_ = 0;
  std::vector<std::optional<Bytes>> outbox_;
  std::vector<char> decided_;
  std::vector<RoundResult> results_;  ///< per receiver, for the finished round
  std::vector<std::vector<AgentSet>> sent_log_;
  std::vector<std::vector<AgentSet>> delivered_log_;
};

}  // namespace eba
