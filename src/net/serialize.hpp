// Byte-level wire format for protocol messages and durable artifacts.
//
// The abstract model treats messages as values; the threaded runtime sends
// real byte payloads. Each exchange's message alphabet gets an encoder and a
// decoder; CommGraph payloads carry their full label matrix. On top of the
// message codecs this layer provides the building blocks the durability
// subsystem (src/audit, net/checkpoint.hpp) shares: failure-pattern,
// run-record and exchange-state codecs, CRC32, and CRC-guarded frames.
//
// Every decode failure on untrusted bytes throws `DecodeError` — a typed
// error distinct from EBA_REQUIRE's std::logic_error, which stays reserved
// for caller bugs. Malformed, truncated, bit-flipped and over-length buffers
// must land in DecodeError, never UB (tests/test_net.cpp fuzzes this).
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "exchange/authenticated.hpp"
#include "exchange/basic.hpp"
#include "exchange/fip.hpp"
#include "exchange/min.hpp"
#include "exchange/report.hpp"
#include "failure/pattern.hpp"
#include "graph/comm_graph.hpp"

namespace eba {

using Bytes = std::vector<std::uint8_t>;

/// Typed failure for any decoder fed untrusted bytes. `kind()` classifies
/// the rejection so tools can print actionable diagnostics (and tests can
/// assert the right path fired) without string matching.
class DecodeError : public std::runtime_error {
 public:
  enum class Kind : std::uint8_t {
    truncated,     ///< buffer ended before the value it promised
    trailing,      ///< value decoded but unconsumed bytes remain
    malformed,     ///< a field holds a value outside its domain
    bad_magic,     ///< container does not start with the expected magic
    bad_version,   ///< container version unknown to this build
    crc_mismatch,  ///< frame checksum does not match its payload
    missing_frame, ///< a required frame (header, certificate) is absent
    key_mismatch,  ///< keyed digest does not verify under the supplied key
  };

  DecodeError(Kind kind, const std::string& what)
      : std::runtime_error("decode error (" + std::string(kind_name(kind)) +
                           "): " + what),
        kind_(kind) {}

  [[nodiscard]] Kind kind() const { return kind_; }

  [[nodiscard]] static const char* kind_name(Kind k) {
    switch (k) {
      case Kind::truncated: return "truncated";
      case Kind::trailing: return "trailing bytes";
      case Kind::malformed: return "malformed";
      case Kind::bad_magic: return "bad magic";
      case Kind::bad_version: return "unsupported version";
      case Kind::crc_mismatch: return "crc mismatch";
      case Kind::missing_frame: return "missing frame";
      case Kind::key_mismatch: return "key mismatch";
    }
    return "unknown";
  }

 private:
  Kind kind_;
};

class Writer {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// Low `nbytes` bytes of `v`, little-endian. Used for the packed n-bit
  /// rows of communication graphs (nbytes = ceil(n / 8)).
  void word(std::uint64_t v, int nbytes);
  [[nodiscard]] Bytes take() { return std::move(out_); }

 private:
  Bytes out_;
};

class Reader {
 public:
  explicit Reader(const Bytes& data) : data_(data) {}
  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::uint64_t word(int nbytes);
  [[nodiscard]] bool exhausted() const { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t position() const { return pos_; }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

 private:
  const Bytes& data_;
  std::size_t pos_ = 0;
};

// -- CRC32 and frames --------------------------------------------------------

/// CRC-32 (IEEE 802.3 polynomial, reflected). Guards every durable frame;
/// detects all single-bit flips and all burst errors up to 32 bits.
[[nodiscard]] std::uint32_t crc32(const std::uint8_t* data, std::size_t len);
[[nodiscard]] inline std::uint32_t crc32(const Bytes& b) {
  return crc32(b.data(), b.size());
}

/// One CRC-guarded frame inside a durable container: kind byte, u32 payload
/// length, payload bytes, u32 CRC over (kind, length, payload).
struct Frame {
  std::uint8_t kind = 0;
  Bytes payload;
};

/// Appends `payload` to `out` as a frame of the given kind.
void write_frame(Bytes& out, std::uint8_t kind, const Bytes& payload);

/// Reads the frame starting at `pos` (advanced past it on success). Throws
/// DecodeError on truncation or CRC mismatch.
[[nodiscard]] Frame read_frame(const Bytes& buf, std::size_t& pos);

// -- Message codecs ----------------------------------------------------------

// E_min messages (a bare Value).
void encode_message(Writer& w, Value m);
void decode_message(Reader& r, Value& m);

// E_basic messages.
void encode_message(Writer& w, BasicMsg m);
void decode_message(Reader& r, BasicMsg& m);

// E_fip messages (a full communication graph).
void encode_message(Writer& w, const std::shared_ptr<const CommGraph>& m);
void decode_message(Reader& r, std::shared_ptr<const CommGraph>& m);

// E_report messages (fault/zero report).
void encode_message(Writer& w, const ReportMsg& m);
void decode_message(Reader& r, ReportMsg& m);

// E_auth messages (signed report). The decoder checks the container shape
// only; signature verification belongs to δ, which maps a bad signature to
// an omission rather than a decode failure.
void encode_message(Writer& w, const AuthMsg& m);
void decode_message(Reader& r, AuthMsg& m);

void encode_graph(Writer& w, const CommGraph& g);
[[nodiscard]] CommGraph decode_graph(Reader& r);

// -- Failure patterns and run records ----------------------------------------

/// Both planes of a failure pattern, chunked per-round word rows. The
/// decoder revalidates plane membership (send drops only from faulty
/// senders, receive drops only at faulty receivers, never self) so a
/// tampered buffer cannot materialize a pattern the constructors forbid.
void encode_pattern(Writer& w, const FailurePattern& alpha);
[[nodiscard]] FailurePattern decode_pattern(Reader& r);

/// The full protocol-agnostic run record: header, inits, and the per-round
/// action / sent / delivered planes (actions one byte each, plane rows as
/// packed words). delivered ⊆ sent is revalidated on decode.
void encode_record(Writer& w, const RunRecord& record);
[[nodiscard]] RunRecord decode_record(Reader& r);

// -- Exchange-state codecs (checkpointing) -----------------------------------
//
// Serialize the SEMANTIC part of each exchange state — the fields equality
// compares. FipState's lazily filled caches (inferred actions, knowledge)
// are derived data keyed on the graph; a restored state starts with empty
// caches and refills them on demand, observably identically.

void encode_state(Writer& w, const MinState& s);
void decode_state(Reader& r, MinState& s);
void encode_state(Writer& w, const BasicState& s);
void decode_state(Reader& r, BasicState& s);
void encode_state(Writer& w, const FipState& s);
void decode_state(Reader& r, FipState& s);
void encode_state(Writer& w, const ReportState& s);
void decode_state(Reader& r, ReportState& s);
void encode_state(Writer& w, const AuthState& s);
void decode_state(Reader& r, AuthState& s);

template <class Message>
[[nodiscard]] Bytes to_bytes(const Message& m) {
  Writer w;
  encode_message(w, m);
  return w.take();
}

template <class Message>
[[nodiscard]] Message from_bytes(const Bytes& b) {
  Reader r(b);
  Message m;
  decode_message(r, m);
  if (!r.exhausted())
    throw DecodeError(DecodeError::Kind::trailing,
                      "message payload has unconsumed bytes");
  return m;
}

}  // namespace eba
