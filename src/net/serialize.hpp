// Byte-level wire format for protocol messages.
//
// The abstract model treats messages as values; the threaded runtime sends
// real byte payloads. Each exchange's message alphabet gets an encoder and a
// decoder; CommGraph payloads carry their full label matrix.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/types.hpp"
#include "exchange/basic.hpp"
#include "exchange/fip.hpp"
#include "graph/comm_graph.hpp"

namespace eba {

using Bytes = std::vector<std::uint8_t>;

class Writer {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u32(std::uint32_t v);
  /// Low `nbytes` bytes of `v`, little-endian. Used for the packed n-bit
  /// rows of communication graphs (nbytes = ceil(n / 8)).
  void word(std::uint64_t v, int nbytes);
  [[nodiscard]] Bytes take() { return std::move(out_); }

 private:
  Bytes out_;
};

class Reader {
 public:
  explicit Reader(const Bytes& data) : data_(data) {}
  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t word(int nbytes);
  [[nodiscard]] bool exhausted() const { return pos_ == data_.size(); }

 private:
  const Bytes& data_;
  std::size_t pos_ = 0;
};

// E_min messages (a bare Value).
void encode_message(Writer& w, Value m);
void decode_message(Reader& r, Value& m);

// E_basic messages.
void encode_message(Writer& w, BasicMsg m);
void decode_message(Reader& r, BasicMsg& m);

// E_fip messages (a full communication graph).
void encode_message(Writer& w, const std::shared_ptr<const CommGraph>& m);
void decode_message(Reader& r, std::shared_ptr<const CommGraph>& m);

void encode_graph(Writer& w, const CommGraph& g);
[[nodiscard]] CommGraph decode_graph(Reader& r);

template <class Message>
[[nodiscard]] Bytes to_bytes(const Message& m) {
  Writer w;
  encode_message(w, m);
  return w.take();
}

template <class Message>
[[nodiscard]] Message from_bytes(const Bytes& b) {
  Reader r(b);
  Message m;
  decode_message(r, m);
  EBA_REQUIRE(r.exhausted(), "trailing bytes in message payload");
  return m;
}

}  // namespace eba
