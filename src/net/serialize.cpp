#include "net/serialize.hpp"

namespace eba {

void Writer::u32(std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8)
    out_.push_back(static_cast<std::uint8_t>((v >> shift) & 0xffu));
}

std::uint8_t Reader::u8() {
  EBA_REQUIRE(pos_ < data_.size(), "message payload truncated");
  return data_[pos_++];
}

std::uint32_t Reader::u32() {
  std::uint32_t v = 0;
  for (int shift = 0; shift < 32; shift += 8)
    v |= static_cast<std::uint32_t>(u8()) << shift;
  return v;
}

void encode_message(Writer& w, Value m) {
  w.u8(static_cast<std::uint8_t>(to_int(m)));
}
void decode_message(Reader& r, Value& m) {
  const std::uint8_t b = r.u8();
  EBA_REQUIRE(b <= 1, "bad Value byte");
  m = value_of(b);
}

void encode_message(Writer& w, BasicMsg m) {
  w.u8(static_cast<std::uint8_t>(m));
}
void decode_message(Reader& r, BasicMsg& m) {
  const std::uint8_t b = r.u8();
  EBA_REQUIRE(b <= static_cast<std::uint8_t>(BasicMsg::init1), "bad BasicMsg byte");
  m = static_cast<BasicMsg>(b);
}

void encode_graph(Writer& w, const CommGraph& g) {
  w.u32(static_cast<std::uint32_t>(g.n()));
  w.u32(static_cast<std::uint32_t>(g.time()));
  for (int m = 0; m < g.time(); ++m)
    for (AgentId from = 0; from < g.n(); ++from)
      for (AgentId to = 0; to < g.n(); ++to)
        w.u8(static_cast<std::uint8_t>(g.label(m, from, to)));
  for (AgentId j = 0; j < g.n(); ++j)
    w.u8(static_cast<std::uint8_t>(g.pref(j)));
}

CommGraph decode_graph(Reader& r) {
  const int n = static_cast<int>(r.u32());
  const int time = static_cast<int>(r.u32());
  EBA_REQUIRE(n >= 1 && n <= kMaxAgents && time >= 0 && time <= 4096,
              "bad graph header");
  CommGraph g = CommGraph::blank(n, time);
  for (int m = 0; m < time; ++m)
    for (AgentId from = 0; from < n; ++from)
      for (AgentId to = 0; to < n; ++to) {
        const std::uint8_t b = r.u8();
        EBA_REQUIRE(b <= static_cast<std::uint8_t>(Label::unknown), "bad label");
        g.set_label(m, from, to, static_cast<Label>(b));
      }
  for (AgentId j = 0; j < n; ++j) {
    const std::uint8_t b = r.u8();
    EBA_REQUIRE(b <= static_cast<std::uint8_t>(PrefLabel::unknown), "bad pref");
    g.set_pref(j, static_cast<PrefLabel>(b));
  }
  return g;
}

void encode_message(Writer& w, const std::shared_ptr<const CommGraph>& m) {
  EBA_REQUIRE(m != nullptr, "null graph message");
  encode_graph(w, *m);
}
void decode_message(Reader& r, std::shared_ptr<const CommGraph>& m) {
  m = std::make_shared<const CommGraph>(decode_graph(r));
}

}  // namespace eba
