#include "net/serialize.hpp"

#include <array>

namespace eba {

namespace {

using Kind = DecodeError::Kind;

[[noreturn]] void reject(Kind kind, const std::string& what) {
  throw DecodeError(kind, what);
}

/// Decoded optional<Value> tag: 0 = unset, 1 = zero, 2 = one.
std::uint8_t opt_value_tag(const std::optional<Value>& v) {
  if (!v) return 0;
  return *v == Value::zero ? 1 : 2;
}

std::optional<Value> opt_value_of(std::uint8_t tag, const char* field) {
  switch (tag) {
    case 0: return std::nullopt;
    case 1: return Value::zero;
    case 2: return Value::one;
    default: reject(Kind::malformed, std::string("bad ") + field + " tag");
  }
}

}  // namespace

void Writer::u32(std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8)
    out_.push_back(static_cast<std::uint8_t>((v >> shift) & 0xffu));
}

void Writer::u64(std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8)
    out_.push_back(static_cast<std::uint8_t>((v >> shift) & 0xffu));
}

std::uint8_t Reader::u8() {
  if (pos_ >= data_.size())
    reject(Kind::truncated, "payload ended at byte " + std::to_string(pos_));
  return data_[pos_++];
}

std::uint32_t Reader::u32() {
  std::uint32_t v = 0;
  for (int shift = 0; shift < 32; shift += 8)
    v |= static_cast<std::uint32_t>(u8()) << shift;
  return v;
}

std::uint64_t Reader::u64() {
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 8)
    v |= static_cast<std::uint64_t>(u8()) << shift;
  return v;
}

void Writer::word(std::uint64_t v, int nbytes) {
  for (int b = 0; b < nbytes; ++b)
    out_.push_back(static_cast<std::uint8_t>((v >> (8 * b)) & 0xffu));
}

std::uint64_t Reader::word(int nbytes) {
  std::uint64_t v = 0;
  for (int b = 0; b < nbytes; ++b)
    v |= static_cast<std::uint64_t>(u8()) << (8 * b);
  return v;
}

// -- CRC32 and frames --------------------------------------------------------

std::uint32_t crc32(const std::uint8_t* data, std::size_t len) {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xffffffffu;
  for (std::size_t i = 0; i < len; ++i)
    crc = table[(crc ^ data[i]) & 0xffu] ^ (crc >> 8);
  return crc ^ 0xffffffffu;
}

void write_frame(Bytes& out, std::uint8_t kind, const Bytes& payload) {
  const std::size_t start = out.size();
  Writer w;
  w.u8(kind);
  w.u32(static_cast<std::uint32_t>(payload.size()));
  const Bytes head = w.take();
  out.insert(out.end(), head.begin(), head.end());
  out.insert(out.end(), payload.begin(), payload.end());
  const std::uint32_t crc = crc32(out.data() + start, out.size() - start);
  Writer tail;
  tail.u32(crc);
  const Bytes t = tail.take();
  out.insert(out.end(), t.begin(), t.end());
}

Frame read_frame(const Bytes& buf, std::size_t& pos) {
  if (buf.size() - pos < 5)
    reject(Kind::truncated, "frame header ends at byte " + std::to_string(pos));
  const std::size_t start = pos;
  const std::uint8_t kind = buf[pos];
  std::uint32_t len = 0;
  for (int b = 0; b < 4; ++b)
    len |= static_cast<std::uint32_t>(buf[pos + 1 + static_cast<std::size_t>(b)])
           << (8 * b);
  pos += 5;
  if (buf.size() - pos < static_cast<std::size_t>(len) + 4)
    reject(Kind::truncated,
           "frame payload of " + std::to_string(len) + " bytes ends at byte " +
               std::to_string(buf.size()));
  Frame f;
  f.kind = kind;
  f.payload.assign(buf.begin() + static_cast<std::ptrdiff_t>(pos),
                   buf.begin() + static_cast<std::ptrdiff_t>(pos + len));
  pos += len;
  const std::uint32_t want = crc32(buf.data() + start, 5 + len);
  std::uint32_t got = 0;
  for (int b = 0; b < 4; ++b)
    got |= static_cast<std::uint32_t>(buf[pos + static_cast<std::size_t>(b)])
           << (8 * b);
  pos += 4;
  if (got != want)
    reject(Kind::crc_mismatch, "frame kind " + std::to_string(kind) +
                                   " at byte " + std::to_string(start));
  return f;
}

// -- Message codecs ----------------------------------------------------------

void encode_message(Writer& w, Value m) {
  w.u8(static_cast<std::uint8_t>(to_int(m)));
}
void decode_message(Reader& r, Value& m) {
  const std::uint8_t b = r.u8();
  if (b > 1) reject(Kind::malformed, "bad Value byte");
  m = value_of(b);
}

void encode_message(Writer& w, BasicMsg m) {
  w.u8(static_cast<std::uint8_t>(m));
}
void decode_message(Reader& r, BasicMsg& m) {
  const std::uint8_t b = r.u8();
  if (b > static_cast<std::uint8_t>(BasicMsg::init1))
    reject(Kind::malformed, "bad BasicMsg byte");
  m = static_cast<BasicMsg>(b);
}

void encode_message(Writer& w, const ReportMsg& m) {
  w.u8(opt_value_tag(m.fresh_decide));
  w.u8(opt_value_tag(m.decided_ever));
  w.u64(m.zeros.bits());
  w.u64(m.faults.bits());
}
void decode_message(Reader& r, ReportMsg& m) {
  m.fresh_decide = opt_value_of(r.u8(), "fresh_decide");
  m.decided_ever = opt_value_of(r.u8(), "decided_ever");
  m.zeros = AgentSet(r.u64());
  m.faults = AgentSet(r.u64());
  // A fresh decision is sticky by construction; a payload claiming a fresh
  // decide without the matching decided_ever never left a real µ.
  if (m.fresh_decide && m.decided_ever != m.fresh_decide)
    reject(Kind::malformed, "fresh_decide without matching decided_ever");
}

void encode_message(Writer& w, const AuthMsg& m) {
  encode_message(w, m.payload);
  w.u64(m.sig);
}
void decode_message(Reader& r, AuthMsg& m) {
  decode_message(r, m.payload);
  m.sig = r.u64();
}

// Packed graph payload: header (n, time), then for each receiver row in
// round-major order the known and value planes as ceil(n/8)-byte words, then
// the two preference plane words. This ships the in-memory representation
// directly — 2 bits per edge on the wire, matching bit_size()'s Prop 8.1
// accounting — instead of the old byte-per-label walk.
void encode_graph(Writer& w, const CommGraph& g) {
  const int row_bytes = (g.n() + 7) / 8;
  w.u32(static_cast<std::uint32_t>(g.n()));
  w.u32(static_cast<std::uint32_t>(g.time()));
  for (int m = 0; m < g.time(); ++m)
    for (AgentId to = 0; to < g.n(); ++to) {
      w.word(g.known_senders(m, to).bits(), row_bytes);
      w.word(g.present_senders(m, to).bits(), row_bytes);
    }
  w.word(g.known_prefs().bits(), row_bytes);
  w.word(g.one_prefs().bits(), row_bytes);
}

CommGraph decode_graph(Reader& r) {
  const int n = static_cast<int>(r.u32());
  const int time = static_cast<int>(r.u32());
  if (!(n >= 1 && n <= kMaxAgents && time >= 0 && time <= 4096))
    reject(Kind::malformed, "bad graph header (n=" + std::to_string(n) +
                                ", time=" + std::to_string(time) + ")");
  const int row_bytes = (n + 7) / 8;
  const std::uint64_t full = AgentSet::all(n).bits();
  CommGraph g = CommGraph::blank(n, time);
  for (int m = 0; m < time; ++m)
    for (AgentId to = 0; to < n; ++to) {
      const std::uint64_t known = r.word(row_bytes);
      const std::uint64_t value = r.word(row_bytes);
      if ((known & ~full) != 0 || (value & ~known) != 0)
        reject(Kind::malformed, "bad label row");
      g.set_row(m, to, AgentSet(known), AgentSet(value));
    }
  const std::uint64_t pk = r.word(row_bytes);
  const std::uint64_t pv = r.word(row_bytes);
  if ((pk & ~full) != 0 || (pv & ~pk) != 0)
    reject(Kind::malformed, "bad pref rows");
  for (AgentId j : AgentSet(pk))
    g.set_pref(j, (pv >> j) & 1u ? PrefLabel::one : PrefLabel::zero);
  return g;
}

void encode_message(Writer& w, const std::shared_ptr<const CommGraph>& m) {
  EBA_REQUIRE(m != nullptr, "null graph message");
  encode_graph(w, *m);
}
void decode_message(Reader& r, std::shared_ptr<const CommGraph>& m) {
  m = std::make_shared<const CommGraph>(decode_graph(r));
}

// -- Failure patterns and run records ----------------------------------------

void encode_pattern(Writer& w, const FailurePattern& alpha) {
  const int n = alpha.n();
  const int row_bytes = (n + 7) / 8;
  w.u32(static_cast<std::uint32_t>(n));
  w.word(alpha.nonfaulty().bits(), row_bytes);
  w.u32(static_cast<std::uint32_t>(alpha.recorded_rounds()));
  for (int m = 0; m < alpha.recorded_rounds(); ++m)
    for (AgentId from = 0; from < n; ++from)
      w.word(alpha.dropped(m, from).bits(), row_bytes);
  w.u32(static_cast<std::uint32_t>(alpha.recorded_receive_rounds()));
  for (int m = 0; m < alpha.recorded_receive_rounds(); ++m)
    for (AgentId to = 0; to < n; ++to)
      w.word(alpha.dropped_receive(m, to).bits(), row_bytes);
}

FailurePattern decode_pattern(Reader& r) {
  const int n = static_cast<int>(r.u32());
  if (!(n >= 1 && n <= kMaxAgents))
    reject(Kind::malformed, "bad pattern agent count " + std::to_string(n));
  const int row_bytes = (n + 7) / 8;
  const std::uint64_t full = AgentSet::all(n).bits();
  const std::uint64_t nonfaulty = r.word(row_bytes);
  if ((nonfaulty & ~full) != 0)
    reject(Kind::malformed, "nonfaulty set outside the population");
  FailurePattern alpha(n, AgentSet(nonfaulty));

  const int send_rounds = static_cast<int>(r.u32());
  if (send_rounds < 0 || send_rounds > 4096)
    reject(Kind::malformed, "bad send-plane round count");
  for (int m = 0; m < send_rounds; ++m)
    for (AgentId from = 0; from < n; ++from) {
      const std::uint64_t row = r.word(row_bytes);
      if (row == 0) continue;
      if ((row & ~full) != 0 || (row >> from) & 1u)
        reject(Kind::malformed, "send-drop row outside the population");
      if (alpha.nonfaulty().contains(from))
        reject(Kind::malformed, "send drops from a nonfaulty sender");
      for (AgentId to : AgentSet(row)) alpha.drop(m, from, to);
    }

  const int recv_rounds = static_cast<int>(r.u32());
  if (recv_rounds < 0 || recv_rounds > 4096)
    reject(Kind::malformed, "bad receive-plane round count");
  for (int m = 0; m < recv_rounds; ++m)
    for (AgentId to = 0; to < n; ++to) {
      const std::uint64_t row = r.word(row_bytes);
      if (row == 0) continue;
      if ((row & ~full) != 0 || (row >> to) & 1u)
        reject(Kind::malformed, "receive-drop row outside the population");
      if (alpha.nonfaulty().contains(to))
        reject(Kind::malformed, "receive drops at a nonfaulty receiver");
      for (AgentId from : AgentSet(row)) alpha.drop_receive(m, from, to);
    }
  return alpha;
}

namespace {

std::uint8_t action_byte(const Action& a) {
  if (!a.is_decide()) return 0;
  return a.value() == Value::zero ? 1 : 2;
}

Action action_of(std::uint8_t b) {
  switch (b) {
    case 0: return Action::noop();
    case 1: return Action::decide(Value::zero);
    case 2: return Action::decide(Value::one);
    default: reject(Kind::malformed, "bad action byte");
  }
}

}  // namespace

void encode_record(Writer& w, const RunRecord& record) {
  const int n = record.n;
  const int row_bytes = (n + 7) / 8;
  w.u32(static_cast<std::uint32_t>(n));
  w.u32(static_cast<std::uint32_t>(record.t));
  w.u32(static_cast<std::uint32_t>(record.rounds));
  w.word(record.nonfaulty.bits(), row_bytes);
  for (Value v : record.inits) w.u8(static_cast<std::uint8_t>(to_int(v)));
  for (int m = 0; m < record.rounds; ++m) {
    const std::size_t um = static_cast<std::size_t>(m);
    for (AgentId i = 0; i < n; ++i)
      w.u8(action_byte(record.actions[um][static_cast<std::size_t>(i)]));
    for (AgentId i = 0; i < n; ++i)
      w.word(record.sent[um][static_cast<std::size_t>(i)].bits(), row_bytes);
    for (AgentId i = 0; i < n; ++i)
      w.word(record.delivered[um][static_cast<std::size_t>(i)].bits(),
             row_bytes);
  }
}

RunRecord decode_record(Reader& r) {
  RunRecord record;
  record.n = static_cast<int>(r.u32());
  record.t = static_cast<int>(r.u32());
  record.rounds = static_cast<int>(r.u32());
  if (!(record.n >= 1 && record.n <= kMaxAgents))
    reject(Kind::malformed, "bad record agent count");
  if (!(record.t >= 0 && record.t < record.n))
    reject(Kind::malformed, "bad record failure bound");
  if (!(record.rounds >= 0 && record.rounds <= 4096))
    reject(Kind::malformed, "bad record round count");
  const int n = record.n;
  const int row_bytes = (n + 7) / 8;
  const std::uint64_t full = AgentSet::all(n).bits();
  const std::uint64_t nonfaulty = r.word(row_bytes);
  if ((nonfaulty & ~full) != 0)
    reject(Kind::malformed, "record nonfaulty set outside the population");
  record.nonfaulty = AgentSet(nonfaulty);
  record.inits.reserve(static_cast<std::size_t>(n));
  for (AgentId i = 0; i < n; ++i) {
    const std::uint8_t b = r.u8();
    if (b > 1) reject(Kind::malformed, "bad init byte");
    record.inits.push_back(value_of(b));
  }
  record.actions.reserve(static_cast<std::size_t>(record.rounds));
  record.sent.reserve(static_cast<std::size_t>(record.rounds));
  record.delivered.reserve(static_cast<std::size_t>(record.rounds));
  for (int m = 0; m < record.rounds; ++m) {
    std::vector<Action> actions;
    actions.reserve(static_cast<std::size_t>(n));
    for (AgentId i = 0; i < n; ++i) actions.push_back(action_of(r.u8()));
    std::vector<AgentSet> sent;
    sent.reserve(static_cast<std::size_t>(n));
    for (AgentId i = 0; i < n; ++i) {
      const std::uint64_t row = r.word(row_bytes);
      if ((row & ~full) != 0 || (row >> i) & 1u)
        reject(Kind::malformed, "sent row outside the population");
      sent.push_back(AgentSet(row));
    }
    std::vector<AgentSet> delivered;
    delivered.reserve(static_cast<std::size_t>(n));
    for (AgentId i = 0; i < n; ++i) {
      const std::uint64_t row = r.word(row_bytes);
      if ((row & ~sent[static_cast<std::size_t>(i)].bits()) != 0)
        reject(Kind::malformed, "delivered row not a subset of sent");
      delivered.push_back(AgentSet(row));
    }
    record.actions.push_back(std::move(actions));
    record.sent.push_back(std::move(sent));
    record.delivered.push_back(std::move(delivered));
  }
  return record;
}

// -- Exchange-state codecs ---------------------------------------------------

void encode_state(Writer& w, const MinState& s) {
  w.u32(static_cast<std::uint32_t>(s.time));
  w.u8(static_cast<std::uint8_t>(to_int(s.init)));
  w.u8(opt_value_tag(s.decided));
  w.u8(opt_value_tag(s.jd));
}

void decode_state(Reader& r, MinState& s) {
  s.time = static_cast<int>(r.u32());
  if (s.time < 0 || s.time > 4096) reject(Kind::malformed, "bad state time");
  const std::uint8_t init = r.u8();
  if (init > 1) reject(Kind::malformed, "bad state init byte");
  s.init = value_of(init);
  s.decided = opt_value_of(r.u8(), "decided");
  s.jd = opt_value_of(r.u8(), "jd");
}

void encode_state(Writer& w, const BasicState& s) {
  w.u32(static_cast<std::uint32_t>(s.time));
  w.u8(static_cast<std::uint8_t>(to_int(s.init)));
  w.u8(opt_value_tag(s.decided));
  w.u8(opt_value_tag(s.jd));
  w.u32(static_cast<std::uint32_t>(s.ones));
}

void decode_state(Reader& r, BasicState& s) {
  s.time = static_cast<int>(r.u32());
  if (s.time < 0 || s.time > 4096) reject(Kind::malformed, "bad state time");
  const std::uint8_t init = r.u8();
  if (init > 1) reject(Kind::malformed, "bad state init byte");
  s.init = value_of(init);
  s.decided = opt_value_of(r.u8(), "decided");
  s.jd = opt_value_of(r.u8(), "jd");
  s.ones = static_cast<int>(r.u32());
  if (s.ones < 0 || s.ones > kMaxAgents)
    reject(Kind::malformed, "bad ones count");
}

void encode_state(Writer& w, const FipState& s) {
  w.u32(static_cast<std::uint32_t>(s.time));
  w.u8(static_cast<std::uint8_t>(s.self));
  w.u8(static_cast<std::uint8_t>(to_int(s.init)));
  w.u8(opt_value_tag(s.decided));
  encode_graph(w, s.graph);
}

void decode_state(Reader& r, FipState& s) {
  s.time = static_cast<int>(r.u32());
  if (s.time < 0 || s.time > 4096) reject(Kind::malformed, "bad state time");
  const std::uint8_t self = r.u8();
  if (self >= kMaxAgents) reject(Kind::malformed, "bad state agent id");
  s.self = static_cast<AgentId>(self);
  const std::uint8_t init = r.u8();
  if (init > 1) reject(Kind::malformed, "bad state init byte");
  s.init = value_of(init);
  s.decided = opt_value_of(r.u8(), "decided");
  s.graph = decode_graph(r);
  // Derived caches restart empty; they are keyed on the graph and refill
  // lazily with identical contents (excluded from state equality).
  s.inferred = {};
  s.knowledge = {};
}

namespace {

void encode_report_core(Writer& w, const ReportState& s) {
  w.u32(static_cast<std::uint32_t>(s.time));
  w.u8(static_cast<std::uint8_t>(to_int(s.init)));
  w.u8(opt_value_tag(s.decided));
  w.u8(opt_value_tag(s.jd));
  w.u64(s.zeros.bits());
  w.u64(s.faults.bits());
  w.u8(s.budget_common ? 1 : 0);
  w.u8(static_cast<std::uint8_t>(s.ones));
}

void decode_report_core(Reader& r, ReportState& s) {
  s.time = static_cast<int>(r.u32());
  if (s.time < 0 || s.time > 4096) reject(Kind::malformed, "bad state time");
  const std::uint8_t init = r.u8();
  if (init > 1) reject(Kind::malformed, "bad state init byte");
  s.init = value_of(init);
  s.decided = opt_value_of(r.u8(), "decided");
  s.jd = opt_value_of(r.u8(), "jd");
  s.zeros = AgentSet(r.u64());
  s.faults = AgentSet(r.u64());
  const std::uint8_t budget = r.u8();
  if (budget > 1) reject(Kind::malformed, "bad budget_common byte");
  s.budget_common = budget != 0;
  const std::uint8_t ones = r.u8();
  if (ones > kMaxAgents) reject(Kind::malformed, "bad ones count");
  s.ones = ones;
}

}  // namespace

void encode_state(Writer& w, const ReportState& s) {
  encode_report_core(w, s);
}

void decode_state(Reader& r, ReportState& s) { decode_report_core(r, s); }

void encode_state(Writer& w, const AuthState& s) {
  // AuthState is ReportState's evidence plus the agent's own id.
  encode_report_core(w, ReportState{.time = s.time,
                                    .init = s.init,
                                    .decided = s.decided,
                                    .jd = s.jd,
                                    .zeros = s.zeros,
                                    .faults = s.faults,
                                    .budget_common = s.budget_common,
                                    .ones = s.ones});
  w.u8(static_cast<std::uint8_t>(s.self));
}

void decode_state(Reader& r, AuthState& s) {
  ReportState core;
  decode_report_core(r, core);
  s.time = core.time;
  s.init = core.init;
  s.decided = core.decided;
  s.jd = core.jd;
  s.zeros = core.zeros;
  s.faults = core.faults;
  s.budget_common = core.budget_common;
  s.ones = core.ones;
  const std::uint8_t self = r.u8();
  if (self >= kMaxAgents) reject(Kind::malformed, "bad state agent id");
  s.self = static_cast<AgentId>(self);
}

}  // namespace eba
