#include "net/serialize.hpp"

namespace eba {

void Writer::u32(std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8)
    out_.push_back(static_cast<std::uint8_t>((v >> shift) & 0xffu));
}

std::uint8_t Reader::u8() {
  EBA_REQUIRE(pos_ < data_.size(), "message payload truncated");
  return data_[pos_++];
}

std::uint32_t Reader::u32() {
  std::uint32_t v = 0;
  for (int shift = 0; shift < 32; shift += 8)
    v |= static_cast<std::uint32_t>(u8()) << shift;
  return v;
}

void Writer::word(std::uint64_t v, int nbytes) {
  for (int b = 0; b < nbytes; ++b)
    out_.push_back(static_cast<std::uint8_t>((v >> (8 * b)) & 0xffu));
}

std::uint64_t Reader::word(int nbytes) {
  std::uint64_t v = 0;
  for (int b = 0; b < nbytes; ++b)
    v |= static_cast<std::uint64_t>(u8()) << (8 * b);
  return v;
}

void encode_message(Writer& w, Value m) {
  w.u8(static_cast<std::uint8_t>(to_int(m)));
}
void decode_message(Reader& r, Value& m) {
  const std::uint8_t b = r.u8();
  EBA_REQUIRE(b <= 1, "bad Value byte");
  m = value_of(b);
}

void encode_message(Writer& w, BasicMsg m) {
  w.u8(static_cast<std::uint8_t>(m));
}
void decode_message(Reader& r, BasicMsg& m) {
  const std::uint8_t b = r.u8();
  EBA_REQUIRE(b <= static_cast<std::uint8_t>(BasicMsg::init1), "bad BasicMsg byte");
  m = static_cast<BasicMsg>(b);
}

// Packed graph payload: header (n, time), then for each receiver row in
// round-major order the known and value planes as ceil(n/8)-byte words, then
// the two preference plane words. This ships the in-memory representation
// directly — 2 bits per edge on the wire, matching bit_size()'s Prop 8.1
// accounting — instead of the old byte-per-label walk.
void encode_graph(Writer& w, const CommGraph& g) {
  const int row_bytes = (g.n() + 7) / 8;
  w.u32(static_cast<std::uint32_t>(g.n()));
  w.u32(static_cast<std::uint32_t>(g.time()));
  for (int m = 0; m < g.time(); ++m)
    for (AgentId to = 0; to < g.n(); ++to) {
      w.word(g.known_senders(m, to).bits(), row_bytes);
      w.word(g.present_senders(m, to).bits(), row_bytes);
    }
  w.word(g.known_prefs().bits(), row_bytes);
  w.word(g.one_prefs().bits(), row_bytes);
}

CommGraph decode_graph(Reader& r) {
  const int n = static_cast<int>(r.u32());
  const int time = static_cast<int>(r.u32());
  EBA_REQUIRE(n >= 1 && n <= kMaxAgents && time >= 0 && time <= 4096,
              "bad graph header");
  const int row_bytes = (n + 7) / 8;
  const std::uint64_t full = AgentSet::all(n).bits();
  CommGraph g = CommGraph::blank(n, time);
  for (int m = 0; m < time; ++m)
    for (AgentId to = 0; to < n; ++to) {
      const std::uint64_t known = r.word(row_bytes);
      const std::uint64_t value = r.word(row_bytes);
      EBA_REQUIRE((known & ~full) == 0 && (value & ~known) == 0,
                  "bad label row");
      g.set_row(m, to, AgentSet(known), AgentSet(value));
    }
  const std::uint64_t pk = r.word(row_bytes);
  const std::uint64_t pv = r.word(row_bytes);
  EBA_REQUIRE((pk & ~full) == 0 && (pv & ~pk) == 0, "bad pref rows");
  for (AgentId j : AgentSet(pk))
    g.set_pref(j, (pv >> j) & 1u ? PrefLabel::one : PrefLabel::zero);
  return g;
}

void encode_message(Writer& w, const std::shared_ptr<const CommGraph>& m) {
  EBA_REQUIRE(m != nullptr, "null graph message");
  encode_graph(w, *m);
}
void decode_message(Reader& r, std::shared_ptr<const CommGraph>& m) {
  m = std::make_shared<const CommGraph>(decode_graph(r));
}

}  // namespace eba
