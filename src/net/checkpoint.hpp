// Snapshot/restore for live agreement instances ("EBCK" containers).
//
// `checkpoint_stepper` serializes a Stepper at a round boundary — run
// context, realized failure pattern, the record so far, every agent's
// exchange state, wire accounting, and an opaque adversary-strategy blob —
// into one CRC-guarded container. `restore_stepper` rebuilds an equivalent
// Stepper via the ResumePoint constructor; the restored instance continues
// from the checkpoint round and (by engine determinism) replays the exact
// record an uninterrupted run would have produced, which
// tests/test_recovery.cpp pins record-for-record across every protocol.
//
// Container layout (little-endian, like the EBTR trace format):
//
//   magic "EBCK" · u32 version (=1) · one frame (kind 1, CRC-guarded):
//     u32 n · u32 t · u32 max_rounds · u8 stop_when_all_decided ·
//     u32 time · u64 bits_sent · u64 messages_sent ·
//     pattern · record · n × exchange state ·
//     u32 adversary-state length · adversary-state bytes
//
// The pattern is the pattern AT the checkpoint — for adaptive runs it
// already contains every drop the strategy committed so far, so re-filtering
// the remaining rounds (stepper or bus slot) starts from the right planes.
// The adversary blob is AdversaryStrategy::checkpoint_state(), opaque here;
// the caller rolls the strategy back with restore_state() and reinstalls
// the hook before stepping (net/workload.hpp does this on crash recovery).
//
// Invariants enforced on restore (beyond per-codec validation): magic,
// version and frame CRC; record.rounds == time; the context fields match
// the exchange/protocol the caller passes in. Corrupt or truncated
// checkpoints throw DecodeError — never UB, never a half-restored instance.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "net/serialize.hpp"
#include "sim/stepper.hpp"

namespace eba {

inline constexpr std::uint32_t kCheckpointFormatVersion = 1;
inline constexpr char kCheckpointMagic[4] = {'E', 'B', 'C', 'K'};

namespace detail {
inline constexpr std::uint8_t kCheckpointFrame = 1;
}  // namespace detail

/// Serializes a stepper's full resume state. Must be called at a round
/// boundary; the stepper itself is not modified.
template <ExchangeProtocol X, class P>
[[nodiscard]] Bytes checkpoint_stepper(const Stepper<X, P>& stepper,
                                       const std::string& adversary_state = {}) {
  EBA_REQUIRE(!stepper.in_round(),
              "checkpoints are cut at round boundaries only");
  Writer w;
  w.u32(static_cast<std::uint32_t>(stepper.n()));
  w.u32(static_cast<std::uint32_t>(stepper.t()));
  w.u32(static_cast<std::uint32_t>(stepper.max_rounds()));
  w.u8(stepper.stop_when_all_decided() ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(stepper.time()));
  w.u64(stepper.bits_sent());
  w.u64(stepper.messages_sent());
  encode_pattern(w, stepper.pattern());
  encode_record(w, stepper.record());
  for (const auto& s : stepper.states()) encode_state(w, s);
  w.u32(static_cast<std::uint32_t>(adversary_state.size()));
  for (char c : adversary_state) w.u8(static_cast<std::uint8_t>(c));

  Bytes out;
  for (char c : kCheckpointMagic) out.push_back(static_cast<std::uint8_t>(c));
  Writer v;
  v.u32(kCheckpointFormatVersion);
  const Bytes vb = v.take();
  out.insert(out.end(), vb.begin(), vb.end());
  write_frame(out, detail::kCheckpointFrame, w.take());
  return out;
}

/// Rebuilds a live stepper from checkpoint bytes. `x`/`act` must be the
/// same exchange/protocol the checkpointed instance ran (the context fields
/// are cross-checked). The adversary blob, if any, is handed back through
/// `adversary_state` for the caller to roll its strategy back with before
/// reinstalling the hook. Throws DecodeError on any corruption.
template <ExchangeProtocol X, class P>
[[nodiscard]] Stepper<X, P> restore_stepper(
    const X& x, const P& act, const Bytes& bytes,
    TraceSink<X>* sink = nullptr, std::string* adversary_state = nullptr) {
  using Kind = DecodeError::Kind;
  if (bytes.size() < 8)
    throw DecodeError(Kind::truncated, "checkpoint shorter than its preamble");
  for (std::size_t k = 0; k < 4; ++k)
    if (bytes[k] != static_cast<std::uint8_t>(kCheckpointMagic[k]))
      throw DecodeError(Kind::bad_magic, "not an EBCK checkpoint container");
  std::uint32_t version = 0;
  for (int b = 0; b < 4; ++b)
    version |= static_cast<std::uint32_t>(bytes[4 + static_cast<std::size_t>(b)])
               << (8 * b);
  if (version != kCheckpointFormatVersion)
    throw DecodeError(Kind::bad_version,
                      "checkpoint version " + std::to_string(version) +
                          " (this build reads version " +
                          std::to_string(kCheckpointFormatVersion) + ")");
  std::size_t pos = 8;
  const Frame frame = read_frame(bytes, pos);
  if (frame.kind != detail::kCheckpointFrame)
    throw DecodeError(Kind::malformed, "unexpected checkpoint frame kind");
  if (pos != bytes.size())
    throw DecodeError(Kind::trailing, "bytes after the checkpoint frame");

  Reader r(frame.payload);
  const int n = static_cast<int>(r.u32());
  const int t = static_cast<int>(r.u32());
  const int max_rounds = static_cast<int>(r.u32());
  const std::uint8_t stop_tag = r.u8();
  if (stop_tag > 1)
    throw DecodeError(Kind::malformed, "bad stop-when-all-decided tag");
  const int time = static_cast<int>(r.u32());
  if (!(n >= 1 && n <= kMaxAgents) || t < 0 || t >= n || max_rounds < 1 ||
      time < 0 || time > max_rounds)
    throw DecodeError(Kind::malformed, "bad checkpoint context fields");
  if (n != x.n())
    throw DecodeError(Kind::malformed,
                      "checkpoint agent count does not match the exchange");

  ResumePoint<X> resume;
  resume.time = time;
  resume.bits_sent = r.u64();
  resume.messages_sent = r.u64();
  FailurePattern alpha = decode_pattern(r);
  if (alpha.n() != n)
    throw DecodeError(Kind::malformed,
                      "checkpoint pattern agent count mismatch");
  resume.record = decode_record(r);
  if (resume.record.n != n || resume.record.t != t ||
      resume.record.rounds != time)
    throw DecodeError(Kind::malformed,
                      "checkpoint record does not match its context");
  resume.states.reserve(static_cast<std::size_t>(n));
  for (AgentId i = 0; i < n; ++i) {
    // Seed with a throwaway initial state (not every State type is
    // default-constructible); decode_state overwrites every semantic field.
    typename X::State s = x.initial_state(i, Value::zero);
    decode_state(r, s);
    resume.states.push_back(std::move(s));
  }
  const std::uint32_t blob_len = r.u32();
  if (blob_len > r.remaining())
    throw DecodeError(Kind::truncated, "adversary-state blob cut short");
  std::string blob;
  blob.reserve(blob_len);
  for (std::uint32_t k = 0; k < blob_len; ++k)
    blob.push_back(static_cast<char>(r.u8()));
  if (!r.exhausted())
    throw DecodeError(Kind::trailing,
                      "checkpoint frame has unconsumed bytes");
  if (adversary_state) *adversary_state = std::move(blob);

  StepperOptions opt;
  opt.max_rounds = max_rounds;
  opt.stop_when_all_decided = stop_tag != 0;
  return Stepper<X, P>(x, act, std::move(alpha), std::move(resume), t, opt,
                       sink);
}

}  // namespace eba
