#include "net/bus.hpp"

namespace eba {

BusPool::BusPool(std::size_t capacity) : slots_(capacity) {
  EBA_REQUIRE(capacity >= 1, "bus pool needs at least one slot");
  free_.reserve(capacity);
  // Stack of free ids, lowest id on top: deterministic slot assignment for
  // single-threaded callers.
  for (std::size_t id = capacity; id > 0; --id) free_.push_back(id - 1);
}

BusPool::SlotId BusPool::acquire(FailurePattern alpha, int resume_round) {
  std::lock_guard lock(mu_);
  EBA_REQUIRE(resume_round >= 0, "resume round cannot be negative");
  EBA_REQUIRE(!free_.empty(), "bus pool exhausted");
  const SlotId id = free_.back();
  free_.pop_back();
  Slot& slot = slots_[id];
  slot.busy = true;
  slot.round = resume_round;
  slot.alpha = std::move(alpha);
  return id;
}

void BusPool::release(SlotId id) {
  std::lock_guard lock(mu_);
  EBA_REQUIRE(id < slots_.size() && slots_[id].busy,
              "releasing a slot that is not in use");
  slots_[id].busy = false;
  slots_[id].alpha.reset();
  free_.push_back(id);
}

std::size_t BusPool::in_use() const {
  std::lock_guard lock(mu_);
  return slots_.size() - free_.size();
}

BusPool::RoundResult BusPool::exchange_round(
    SlotId id, std::vector<std::optional<Bytes>> outbox) {
  // No lock: a slot is driven by exactly one worker at a time (the pool
  // mutex in acquire/release orders successive owners), and this touches
  // only per-slot state.
  EBA_REQUIRE(id < slots_.size() && slots_[id].busy,
              "exchange_round on a slot that is not in use");
  Slot& slot = slots_[id];
  const FailurePattern& alpha = *slot.alpha;
  const int n = alpha.n();
  EBA_REQUIRE(static_cast<int>(outbox.size()) == n, "outbox size mismatch");

  RoundResult res;
  res.round = slot.round;
  res.inbox.assign(
      static_cast<std::size_t>(n),
      std::vector<std::optional<Bytes>>(static_cast<std::size_t>(n)));
  res.sent.assign(static_cast<std::size_t>(n), AgentSet{});
  res.delivered.assign(static_cast<std::size_t>(n), AgentSet{});
  for (AgentId from = 0; from < n; ++from) {
    const auto& payload = outbox[static_cast<std::size_t>(from)];
    if (!payload) continue;
    res.sent[static_cast<std::size_t>(from)] =
        AgentSet::all(n).minus(AgentSet{from});
    for (AgentId to = 0; to < n; ++to) {
      if (!alpha.delivered(slot.round, from, to)) continue;
      res.inbox[static_cast<std::size_t>(to)][static_cast<std::size_t>(from)] =
          *payload;
      if (to != from) res.delivered[static_cast<std::size_t>(from)].insert(to);
    }
  }
  slot.round += 1;
  return res;
}

BusPool::RoundResult BusPool::exchange_round(
    SlotId id, std::vector<std::vector<std::optional<Bytes>>> outbox) {
  // Same threading contract as the broadcast overload: no lock, one worker
  // per slot at a time.
  EBA_REQUIRE(id < slots_.size() && slots_[id].busy,
              "exchange_round on a slot that is not in use");
  Slot& slot = slots_[id];
  const FailurePattern& alpha = *slot.alpha;
  const int n = alpha.n();
  EBA_REQUIRE(static_cast<int>(outbox.size()) == n, "outbox size mismatch");

  RoundResult res;
  res.round = slot.round;
  res.inbox.assign(
      static_cast<std::size_t>(n),
      std::vector<std::optional<Bytes>>(static_cast<std::size_t>(n)));
  res.sent.assign(static_cast<std::size_t>(n), AgentSet{});
  res.delivered.assign(static_cast<std::size_t>(n), AgentSet{});
  for (AgentId from = 0; from < n; ++from) {
    auto& row = outbox[static_cast<std::size_t>(from)];
    EBA_REQUIRE(static_cast<int>(row.size()) == n, "outbox row size mismatch");
    for (AgentId to = 0; to < n; ++to) {
      auto& payload = row[static_cast<std::size_t>(to)];
      if (!payload) continue;
      if (to != from) res.sent[static_cast<std::size_t>(from)].insert(to);
      if (!alpha.delivered(slot.round, from, to)) continue;
      res.inbox[static_cast<std::size_t>(to)][static_cast<std::size_t>(from)] =
          std::move(*payload);
      if (to != from) res.delivered[static_cast<std::size_t>(from)].insert(to);
    }
  }
  slot.round += 1;
  return res;
}

void BusPool::update_pattern(SlotId id, const FailurePattern& alpha) {
  // No lock, as in exchange_round: only the slot's current worker calls in.
  EBA_REQUIRE(id < slots_.size() && slots_[id].busy,
              "update_pattern on a slot that is not in use");
  Slot& slot = slots_[id];
  EBA_REQUIRE(slot.alpha && slot.alpha->n() == alpha.n(),
              "update_pattern must keep the agent count");
  slot.alpha = alpha;
}

int BusPool::completed_rounds(SlotId id) const {
  EBA_REQUIRE(id < slots_.size() && slots_[id].busy,
              "completed_rounds on a slot that is not in use");
  return slots_[id].round;
}

RoundBus::RoundBus(int n, FailurePattern alpha)
    : n_(n),
      alpha_(std::move(alpha)),
      outbox_(static_cast<std::size_t>(n)),
      decided_(static_cast<std::size_t>(n), 0),
      results_(static_cast<std::size_t>(n)) {
  EBA_REQUIRE(alpha_.n() == n, "pattern/bus agent count mismatch");
}

RoundBus::RoundResult RoundBus::exchange(AgentId i,
                                         std::optional<Bytes> broadcast,
                                         bool decided) {
  std::unique_lock lock(mu_);
  EBA_REQUIRE(i >= 0 && i < n_, "agent id out of range");
  outbox_[static_cast<std::size_t>(i)] = std::move(broadcast);
  decided_[static_cast<std::size_t>(i)] = decided ? 1 : 0;
  ++submitted_;
  const std::uint64_t gen = generation_;

  if (submitted_ == n_) {
    bool all = true;
    for (char d : decided_) all = all && d != 0;

    std::vector<AgentSet> sent(static_cast<std::size_t>(n_));
    std::vector<AgentSet> delivered(static_cast<std::size_t>(n_));
    for (AgentId j = 0; j < n_; ++j) {
      auto& res = results_[static_cast<std::size_t>(j)];
      res.round = round_;
      res.all_decided = all;
      res.inbox.assign(static_cast<std::size_t>(n_), std::nullopt);
    }
    for (AgentId from = 0; from < n_; ++from) {
      const auto& payload = outbox_[static_cast<std::size_t>(from)];
      if (!payload) continue;
      sent[static_cast<std::size_t>(from)] =
          AgentSet::all(n_).minus(AgentSet{from});
      for (AgentId to = 0; to < n_; ++to) {
        if (!alpha_.delivered(round_, from, to)) continue;
        results_[static_cast<std::size_t>(to)]
            .inbox[static_cast<std::size_t>(from)] = *payload;
        if (to != from) delivered[static_cast<std::size_t>(from)].insert(to);
      }
    }
    sent_log_.push_back(std::move(sent));
    delivered_log_.push_back(std::move(delivered));

    for (auto& slot : outbox_) slot.reset();
    submitted_ = 0;
    ++round_;
    ++generation_;
    cv_.notify_all();
  } else {
    cv_.wait(lock, [&] { return generation_ != gen; });
  }
  return std::move(results_[static_cast<std::size_t>(i)]);
}

std::vector<AgentSet> RoundBus::delivered_log(int round) const {
  std::lock_guard lock(mu_);
  EBA_REQUIRE(round >= 0 && round < static_cast<int>(delivered_log_.size()),
              "round not completed");
  return delivered_log_[static_cast<std::size_t>(round)];
}

std::vector<AgentSet> RoundBus::sent_log(int round) const {
  std::lock_guard lock(mu_);
  EBA_REQUIRE(round >= 0 && round < static_cast<int>(sent_log_.size()),
              "round not completed");
  return sent_log_[static_cast<std::size_t>(round)];
}

int RoundBus::completed_rounds() const {
  std::lock_guard lock(mu_);
  return static_cast<int>(delivered_log_.size());
}

}  // namespace eba
