// Cluster runtime: runs an (exchange, action-protocol) pair over the
// byte-payload messaging layer, producing the same RunRecord as the
// abstract simulator for the same inputs (tested).
//
// `run_cluster` is a single-instance wrapper over the instance-oriented
// workload engine (net/workload.hpp): one Stepper + one bus slot, driven by
// one worker. For many concurrent instances call `run_workload` directly.
//
// `run_cluster_thread_per_agent` keeps the seed's thread-per-agent model —
// n agent threads synchronizing on the RoundBus barrier every round — as a
// reference implementation: the equivalence tests pin the new engine
// against it, and bench_throughput uses it as the aggregate-throughput
// baseline. It spawns n threads per call; do not use it for workloads.
#pragma once

#include <thread>
#include <vector>

#include "core/types.hpp"
#include "exchange/exchange.hpp"
#include "net/bus.hpp"
#include "net/serialize.hpp"
#include "net/workload.hpp"

namespace eba {

template <ExchangeProtocol X, class P>
ClusterResult<X> run_cluster(const X& x, const P& act,
                             const FailurePattern& alpha,
                             const std::vector<Value>& inits, int t,
                             int max_rounds = 0) {
  InstanceSpec spec{alpha, inits};
  WorkloadOptions opt;
  opt.workers = 1;
  opt.max_rounds = max_rounds;
  WorkloadResult<X> result =
      run_workload(x, act, std::span<const InstanceSpec>(&spec, 1), t, opt);
  return std::move(result.instances.front());
}

template <ExchangeProtocol X, class P>
ClusterResult<X> run_cluster_thread_per_agent(const X& x, const P& act,
                                              const FailurePattern& alpha,
                                              const std::vector<Value>& inits,
                                              int t, int max_rounds = 0) {
  // The RoundBus broadcasts one payload per agent per round; an exchange
  // whose µ depends on the destination cannot ride it (see stepper.hpp).
  static_assert(BroadcastExchange<X>,
                "the thread-per-agent bus requires a broadcast exchange");
  const int n = x.n();
  EBA_REQUIRE(alpha.n() == n, "pattern/exchange agent count mismatch");
  EBA_REQUIRE(static_cast<int>(inits.size()) == n, "inits size mismatch");
  if (max_rounds <= 0) max_rounds = t + 4;

  RoundBus bus(n, alpha);

  // Each (round, agent) slot is written by exactly one thread.
  std::vector<std::vector<Action>> actions(
      static_cast<std::size_t>(max_rounds),
      std::vector<Action>(static_cast<std::size_t>(n)));
  std::vector<typename X::State> final_states;
  final_states.reserve(static_cast<std::size_t>(n));
  for (AgentId i = 0; i < n; ++i)
    final_states.push_back(x.initial_state(i, inits[static_cast<std::size_t>(i)]));
  std::vector<int> rounds_run(static_cast<std::size_t>(n), 0);

  auto agent_main = [&](AgentId i) {
    using Message = typename X::Message;
    typename X::State& state = final_states[static_cast<std::size_t>(i)];
    bool decided = false;
    for (int m = 0; m < max_rounds; ++m) {
      const Action a = act(state);
      if (a.is_decide()) decided = true;
      actions[static_cast<std::size_t>(m)][static_cast<std::size_t>(i)] = a;

      std::optional<Bytes> payload;
      if (auto msg = x.message(state, a, /*dest=*/0)) payload = to_bytes(*msg);

      RoundBus::RoundResult res = bus.exchange(i, std::move(payload), decided);

      std::vector<std::optional<Message>> inbox(static_cast<std::size_t>(n));
      for (AgentId j = 0; j < n; ++j)
        if (res.inbox[static_cast<std::size_t>(j)])
          inbox[static_cast<std::size_t>(j)] =
              from_bytes<Message>(*res.inbox[static_cast<std::size_t>(j)]);

      x.update(state, a,
               std::span<const std::optional<Message>>(inbox));
      rounds_run[static_cast<std::size_t>(i)] = m + 1;
      if (res.all_decided) break;
    }
  };

  {
    std::vector<std::jthread> threads;
    threads.reserve(static_cast<std::size_t>(n));
    for (AgentId i = 0; i < n; ++i) threads.emplace_back(agent_main, i);
  }

  const int rounds = rounds_run.empty() ? 0 : rounds_run[0];
  for (int r : rounds_run)
    EBA_REQUIRE(r == rounds, "agents disagree on round count");

  ClusterResult<X> out;
  out.record.n = n;
  out.record.t = t;
  out.record.rounds = rounds;
  out.record.inits = inits;
  out.record.nonfaulty = alpha.nonfaulty();
  actions.resize(static_cast<std::size_t>(rounds));
  out.record.actions = std::move(actions);
  for (int m = 0; m < rounds; ++m) {
    out.record.sent.push_back(bus.sent_log(m));
    out.record.delivered.push_back(bus.delivered_log(m));
  }
  out.final_states = std::move(final_states);
  return out;
}

}  // namespace eba
