#include "exchange/report.hpp"

namespace eba {

std::size_t hash_value(const ReportState& s) {
  auto enc = [](const std::optional<Value>& v) -> std::size_t {
    return v ? (*v == Value::zero ? 1u : 2u) : 0u;
  };
  std::size_t h = static_cast<std::size_t>(s.time);
  h = h * 31 + static_cast<std::size_t>(to_int(s.init));
  h = h * 31 + enc(s.decided);
  h = h * 31 + enc(s.jd);
  h = h * 1000003 + static_cast<std::size_t>(s.zeros.bits());
  h = h * 1000003 + static_cast<std::size_t>(s.faults.bits());
  h = h * 31 + static_cast<std::size_t>(s.budget_common);
  h = h * 31 + static_cast<std::size_t>(s.ones);
  return h;
}

void ReportExchange::update(State& s, const Action& a,
                            std::span<const std::optional<Message>> inbox) const {
  EBA_REQUIRE(static_cast<int>(inbox.size()) == n_, "inbox size mismatch");
  detail::accumulate_report_round(n_, t_, s, a, [&](AgentId j) {
    const auto& m = inbox[static_cast<std::size_t>(j)];
    return m ? &*m : nullptr;
  });
}

}  // namespace eba
