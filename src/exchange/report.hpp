// E_report(n, t): the fault-report exchange behind the early-stopping
// baseline (cf. Abraham–Dolev's early-stopping line, PAPERS.md).
//
// Unlike E_min/E_basic, µ never returns ⊥: every agent broadcasts a report
// every round, so a missing inbox slot convicts the sender of a sending
// omission on the spot. Reports carry the sender's fresh decision (so jd
// works as everywhere else), its sticky decided-ever value, and two gossip
// sets — agents it knows to have decided 0 and agents it knows to be faulty.
// Local states accumulate both sets plus the `budget_common` bit: the
// round's reports prove the faulty set is exactly of size t, every
// remaining agent already knew that set, and none of them has (or reports)
// a 0-decision — a simultaneous all-clear for deciding 1 (see
// docs/PROTOCOL_ZOO.md for the safety argument).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>

#include "core/agent_set.hpp"
#include "core/types.hpp"
#include "exchange/exchange.hpp"

namespace eba {

/// One per-round report. `fresh_decide` is set exactly in the sender's
/// decision round (the EBA-context jd channel); `decided_ever` is sticky.
struct ReportMsg {
  std::optional<Value> fresh_decide;
  std::optional<Value> decided_ever;
  AgentSet zeros;   ///< agents the sender knows to have decided 0
  AgentSet faults;  ///< agents the sender knows to be faulty

  friend bool operator==(const ReportMsg&, const ReportMsg&) = default;
};

struct ReportState {
  int time = 0;
  Value init = Value::zero;
  std::optional<Value> decided;
  std::optional<Value> jd;
  AgentSet zeros;   ///< agents known to have decided 0
  AgentSet faults;  ///< agents known to be faulty (convicted or gossiped)
  bool budget_common = false;  ///< last round proved the t-fault all-clear
  /// "#1": last round's delivered reports with decided_ever ≠ 0. An
  /// undecided sender necessarily has init 1 (init-0 agents decide at time
  /// 0), so this is E_report's analog of E_basic's init1 count and feeds
  /// the same `ones > n - time` hidden-chain test (action/early_stop.hpp).
  int ones = 0;

  friend bool operator==(const ReportState&, const ReportState&) = default;
};

[[nodiscard]] std::size_t hash_value(const ReportState& s);

class ReportExchange {
 public:
  using State = ReportState;
  using Message = ReportMsg;
  /// µ ignores the destination: reports are broadcast.
  static constexpr bool kBroadcast = true;

  ReportExchange(int n, int t) : n_(n), t_(t) {
    EBA_REQUIRE(n >= 1 && n <= kMaxAgents, "agent count out of range");
    EBA_REQUIRE(t >= 0 && n - t >= 2, "E_report requires 0 <= t <= n-2");
  }

  [[nodiscard]] int n() const { return n_; }
  [[nodiscard]] int t() const { return t_; }

  [[nodiscard]] State initial_state(AgentId /*i*/, Value init) const {
    return State{.time = 0,
                 .init = init,
                 .decided = {},
                 .jd = {},
                 .zeros = {},
                 .faults = {},
                 .budget_common = false,
                 .ones = 0};
  }

  /// Never ⊥: silence is a conviction, so even decided agents keep
  /// broadcasting their sticky report.
  [[nodiscard]] std::optional<Message> message(const State& s, const Action& a,
                                               AgentId /*dest*/) const {
    Message m;
    if (a.is_decide()) m.fresh_decide = a.value();
    m.decided_ever = a.is_decide() ? std::optional<Value>(a.value()) : s.decided;
    m.zeros = s.zeros;
    m.faults = s.faults;
    return m;
  }

  /// Two optional-value tags (2 bits each) plus two n-bit agent sets.
  [[nodiscard]] std::size_t message_bits(const Message& /*m*/) const {
    return 2 * static_cast<std::size_t>(n_) + 4;
  }

  void update(State& s, const Action& a,
              std::span<const std::optional<Message>> inbox) const;

 private:
  int n_;
  int t_;
};

namespace detail {

/// The δ core shared by E_report and E_auth (authenticated.hpp): `msg_at(j)`
/// yields the round's report from agent j as a `const ReportMsg*`, or
/// nullptr for ⊥ — E_auth maps signature-check failures to nullptr, so a
/// forged payload is indistinguishable from an omission. `S` must expose
/// the ReportState evidence fields (time, decided, jd, zeros, faults,
/// budget_common).
template <class S, class Lookup>
void accumulate_report_round(int n, int t, S& s, const Action& a,
                             Lookup&& msg_at) {
  s.time += 1;
  if (a.is_decide()) {
    EBA_REQUIRE(!s.decided, "double decision reached the exchange");
    s.decided = a.value();
  }

  // Conviction: µ never returns ⊥, so an empty slot means the sender
  // dropped a send (it is faulty in SO). Self-delivery always succeeds, so
  // an agent never convicts itself here. Gossiped faults are sound by
  // induction on rounds.
  bool heard0 = false;
  bool heard1 = false;
  int ones = 0;
  AgentSet faults = s.faults;
  AgentSet zeros = s.zeros;
  for (AgentId j = 0; j < n; ++j) {
    const ReportMsg* m = msg_at(j);
    if (!m) {
      faults.insert(j);
      continue;
    }
    if (m->fresh_decide == Value::zero) heard0 = true;
    if (m->fresh_decide == Value::one) heard1 = true;
    faults = faults.united(m->faults);
    zeros = zeros.united(m->zeros);
    if (m->decided_ever == Value::zero)
      zeros.insert(j);
    else
      ones += 1;
  }
  s.jd = jd_from_decisions(heard0, heard1);
  s.ones = ones;

  // The budget-common bit: the faulty set is pinned at exactly t, and every
  // candidate (= agent outside it, including self) delivered a report that
  // already named that exact set and carried no trace of a 0-decision.
  // When |faults| == t, faults is the true faulty set (conviction is
  // sound), so the candidates are exactly the nonfaulty agents, whose
  // broadcasts reach every receiver in SO — the bit is computed from an
  // identical report matrix everywhere and fires simultaneously.
  bool budget = faults.size() == t;
  if (budget) {
    for (AgentId j : faults.complement(n)) {
      const ReportMsg* m = msg_at(j);
      if (!m || m->faults != faults || !m->zeros.empty() ||
          m->decided_ever == Value::zero) {
        budget = false;
        break;
      }
    }
  }
  s.budget_common = budget;
  s.faults = faults;
  s.zeros = zeros;
}

}  // namespace detail

}  // namespace eba

template <>
struct std::hash<eba::ReportState> {
  std::size_t operator()(const eba::ReportState& s) const noexcept {
    return eba::hash_value(s);
  }
};
